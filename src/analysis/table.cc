#include "analysis/table.hh"

#include <algorithm>
#include <cstdarg>

#include "sim/logging.hh"

namespace aw::analysis {

TableWriter::TableWriter(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    if (_headers.empty())
        sim::panic("TableWriter: need at least one column");
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size()) {
        sim::panic("TableWriter: row has %zu cells, expected %zu",
                   cells.size(), _headers.size());
    }
    _rows.push_back(std::move(cells));
}

std::string
TableWriter::render() const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto fmt_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
            if (c + 1 < row.size())
                line += "  ";
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        line += '\n';
        return line;
    };

    std::string out = fmt_row(_headers);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out.append(rule, '-');
    out += '\n';
    for (const auto &row : _rows)
        out += fmt_row(row);
    return out;
}

void
TableWriter::print(std::FILE *out) const
{
    const std::string s = render();
    std::fwrite(s.data(), 1, s.size(), out);
}

std::string
cell(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = sim::vstrprintf(fmt, args);
    va_end(args);
    return s;
}

} // namespace aw::analysis
