#include "analysis/power_model.hh"

#include <algorithm>

#include "core/ufpg.hh"
#include "sim/logging.hh"

namespace aw::analysis {

using cstate::CStateId;

power::Watts
CStatePowerModel::statePower(CStateId id) const
{
    if (id == CStateId::C0)
        return _powers.activeP1;
    return _powers.idle[cstate::index(id)];
}

power::Watts
CStatePowerModel::baselineAvgPower(
    const cstate::ResidencySnapshot &r) const
{
    power::Watts avg = 0.0;
    for (std::size_t i = 0; i < cstate::kNumCStates; ++i)
        avg += r.share[i] * statePower(static_cast<CStateId>(i));
    return avg;
}

cstate::ResidencySnapshot
CStatePowerModel::remapForAw(const cstate::ResidencySnapshot &r,
                             double scalability,
                             double transitions_per_sec) const
{
    cstate::ResidencySnapshot out = r;

    // (1) Move the C1/C1E shares onto C6A/C6AE.
    auto move = [&out](CStateId from, CStateId to) {
        out.share[cstate::index(to)] +=
            out.share[cstate::index(from)];
        out.share[cstate::index(from)] = 0.0;
        out.entries[cstate::index(to)] +=
            out.entries[cstate::index(from)];
        out.entries[cstate::index(from)] = 0;
    };
    move(CStateId::C1, CStateId::C6A);
    move(CStateId::C1E, CStateId::C6AE);

    // (2) Frequency degradation: active time grows by the loss
    // weighted by the workload's frequency scalability; the growth
    // is stolen from the idle shares proportionally.
    const double c0_growth = out.share[cstate::index(CStateId::C0)] *
                             core::Ufpg::kFrequencyDegradation *
                             scalability;

    // (3) Extra transition latency: each transition spends an
    // additional ~100 ns outside the idle state.
    const double transition_growth =
        transitions_per_sec *
        sim::toSec(kAwTransitionDelta);

    double steal = c0_growth + transition_growth;
    double idle_total = 0.0;
    for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
        if (static_cast<CStateId>(i) != CStateId::C0)
            idle_total += out.share[i];
    }
    if (idle_total > 0.0) {
        steal = std::min(steal, idle_total);
        for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
            if (static_cast<CStateId>(i) == CStateId::C0)
                continue;
            out.share[i] -= steal * (out.share[i] / idle_total);
        }
        out.share[cstate::index(CStateId::C0)] += steal;
    }
    return out;
}

power::Watts
CStatePowerModel::awAvgPower(
    const cstate::ResidencySnapshot &remapped) const
{
    return baselineAvgPower(remapped);
}

double
CStatePowerModel::awSavingsVsMeasured(
    const cstate::ResidencySnapshot &r,
    power::Watts measured_avg_power) const
{
    if (measured_avg_power <= 0.0)
        sim::panic("awSavingsVsMeasured: bad measured power %f",
                   measured_avg_power);
    const double r_c1 = r.shareOf(CStateId::C1);
    const double r_c1e = r.shareOf(CStateId::C1E);
    const power::Watts savings =
        r_c1 * (statePower(CStateId::C1) -
                statePower(CStateId::C6A)) +
        r_c1e * (statePower(CStateId::C1E) -
                 statePower(CStateId::C6AE));
    return savings / measured_avg_power;
}

double
CStatePowerModel::idealDeepStateSavings(
    const cstate::ResidencySnapshot &r) const
{
    const power::Watts baseline = baselineAvgPower(r);
    if (baseline <= 0.0)
        return 0.0;
    const power::Watts savings =
        r.shareOf(CStateId::C1) *
        (statePower(CStateId::C1) - statePower(CStateId::C6));
    return savings / baseline;
}

LatencyDegradation
awLatencyDegradation(double avg_latency_us, double avg_service_us,
                     double network_us, double scalability,
                     double transitions_per_req)
{
    LatencyDegradation d;
    if (avg_latency_us <= 0.0)
        return d;

    const double delta_us =
        sim::toUs(CStatePowerModel::kAwTransitionDelta);
    const double freq_term =
        avg_service_us * core::Ufpg::kFrequencyDegradation *
        scalability;

    const double worst_added = delta_us + freq_term;
    const double expected_added =
        transitions_per_req * delta_us + freq_term;

    d.worstCaseServerFrac = worst_added / avg_latency_us;
    d.expectedServerFrac = expected_added / avg_latency_us;
    d.worstCaseE2eFrac =
        worst_added / (avg_latency_us + network_us);
    d.expectedE2eFrac =
        expected_added / (avg_latency_us + network_us);
    return d;
}

} // namespace aw::analysis
