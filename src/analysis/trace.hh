/**
 * @file
 * Request-path tracing and tail-latency attribution.
 *
 * RequestTracer implements server::TelemetryObserver and turns the
 * per-request lifecycle callbacks into fixed-size span records --
 * one per completed request, decomposing its server latency into
 *
 *     latency = routing + queue_wait + wake(fromState) + service
 *
 * tick-exactly (the components tile the [arrival, completion]
 * interval with no gap or overlap). Wake attribution leans on a
 * structural invariant of CoreSim: a core never goes idle with
 * queued work, so at most one wake episode overlaps any request's
 * wait, and the per-request wake stall is the overlap of the core's
 * most recent wake episode with [arrival, serviceStart].
 *
 * The tracer is strictly passive (no events scheduled, no
 * simulation RNG drawn; the awperf fleet_sweep_trace scenario pins
 * identical kernel event counts in CI) and its hot path is
 * allocation-free in steady state: spans land in a preallocated
 * keep-newest ring (`dropped` counts overwritten records) and the
 * per-core pending queues are reusable circular buffers that only
 * grow past their high-water mark.
 *
 * TailAttribution is the consumer the paper's story needs: for the
 * full population and the p99/p99.9 cohorts (nearest-rank
 * thresholds, like sim::PercentileTracker) it reports each
 * component's mean and share of total latency plus a per-from-state
 * wake-cost histogram -- the number that proves (or falsifies)
 * "C6A removes wake from the tail" on every config.
 *
 * Serialized forms: the versioned `aw-trace/1` span CSV /
 * attribution JSON (docs/TRACING.md) and a Chrome trace_event JSON
 * loadable in Perfetto or chrome://tracing (one track per core,
 * wake spans colored by from-state).
 */

#ifndef AW_ANALYSIS_TRACE_HH
#define AW_ANALYSIS_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "server/telemetry.hh"
#include "sim/types.hh"

namespace aw::analysis {

/** Version tag of the trace artifact schemas. Changing the span CSV
 *  columns, the attribution JSON keys or their semantics is a
 *  schema change: bump this and docs/TRACING.md together. */
inline constexpr const char *kTraceSchema = "aw-trace/1";

/**
 * Tracer knobs.
 */
struct TraceConfig
{
    /** Span/episode ring capacity: the newest `capacity` records
     *  are retained, older ones are overwritten and counted as
     *  dropped. Must be > 0. The default comfortably holds every
     *  measured request of the golden sweep points (tests assert
     *  dropped == 0 there). */
    std::size_t capacity = std::size_t(1) << 17;
};

/**
 * One completed request, fully attributed. Times are absolute sim
 * ticks; the component accessors return tick-exact durations that
 * sum to latency().
 */
struct RequestSpan
{
    std::uint64_t id = 0;     //!< core-local arrival sequence
    std::uint32_t server = 0; //!< fleet server index (0 standalone)
    std::uint32_t core = 0;

    sim::Tick arrival = 0;      //!< entered the core's queue
    sim::Tick dispatch = 0;     //!< balancer/dispatcher decision
    sim::Tick serviceStart = 0; //!< popped for service
    sim::Tick completion = 0;

    /** Wake stall attributed to this request: overlap of the core's
     *  wake episode with [arrival, serviceStart]. Zero when the
     *  core was already awake (or polling in C0). */
    sim::Tick wake = 0;
    cstate::CStateId wakeFrom = cstate::CStateId::C0;

    sim::Tick latency() const { return completion - arrival; }
    sim::Tick routing() const { return dispatch - arrival; }
    sim::Tick service() const { return completion - serviceStart; }
    sim::Tick queueWait() const
    {
        return serviceStart - dispatch - wake;
    }
};

/** One core wake episode (onWakeStart..onWakeEnd), for the
 *  per-core Chrome track. */
struct WakeEpisode
{
    std::uint32_t server = 0;
    std::uint32_t core = 0;
    sim::Tick start = 0;
    sim::Tick end = 0;
    cstate::CStateId from = cstate::CStateId::C0;
};

/** One fleet balancer routing decision (measured window only). */
struct RoutingDecision
{
    sim::Tick at = 0;
    std::uint32_t server = 0;
};

/**
 * A recorded trace: retained spans and wake episodes over the
 * measured window, plus (fleet runs) the balancer decisions.
 */
struct TraceSeries
{
    sim::Tick origin = 0; //!< measurement start
    sim::Tick end = 0;    //!< measurement end
    unsigned servers = 1;
    unsigned cores = 0; //!< cores per server

    std::uint64_t emitted = 0; //!< spans recorded over the window
    std::uint64_t dropped = 0; //!< overwritten by ring overflow

    /** Oldest retained to newest; completion-ordered (merged fleet
     *  series: stable by completion, server index breaking ties). */
    std::vector<RequestSpan> spans;

    std::uint64_t wakesEmitted = 0;
    std::uint64_t wakesDropped = 0;
    /** Wake episodes, end-ordered like spans. */
    std::vector<WakeEpisode> wakes;

    std::uint64_t routingEmitted = 0;
    std::uint64_t routingDropped = 0;
    /** Balancer decisions in the measured window (fleet runs). */
    std::vector<RoutingDecision> routing;
};

/**
 * The observer: attach to a ServerSim before run(); read series()
 * after. Records exactly one measured window.
 */
class RequestTracer final : public server::TelemetryObserver
{
  public:
    /** @param cores  number of cores the observed server runs. */
    RequestTracer(const TraceConfig &cfg, unsigned cores);

    /** @{ TelemetryObserver. */
    void onMeasurementStart(sim::Tick now) override;
    void onMeasurementEnd(sim::Tick now) override;
    void onRequestArrival(unsigned core, std::uint64_t id,
                          sim::Tick now) override;
    void onRequestDispatch(unsigned core, std::uint64_t id,
                           sim::Tick now) override;
    void onWakeStart(unsigned core, sim::Tick now,
                     cstate::CStateId from) override;
    void onWakeEnd(unsigned core, sim::Tick now) override;
    void onServiceStart(unsigned core, std::uint64_t id,
                        sim::Tick now) override;
    void onComplete(unsigned core, std::uint64_t id, sim::Tick now,
                    double latency_us) override;
    /** @} */

    /** The recorded trace; valid after onMeasurementEnd. */
    const TraceSeries &series() const;

  private:
    /** A request between arrival and completion. */
    struct Pending
    {
        std::uint64_t id = 0;
        sim::Tick arrival = 0;
        sim::Tick dispatch = 0;
        sim::Tick serviceStart = 0;
        sim::Tick wake = 0;
        cstate::CStateId wakeFrom = cstate::CStateId::C0;
    };

    /** Per-core pending FIFO (circular, grow-on-demand) plus the
     *  wake-episode bookkeeping the attribution keys off. */
    struct CoreTrack
    {
        std::vector<Pending> fifo;
        std::size_t head = 0;
        std::size_t count = 0;

        bool wakeOpen = false;
        sim::Tick wakeStart = 0;
        cstate::CStateId wakeFromState = cstate::CStateId::C0;

        /** Most recently *closed* episode. */
        sim::Tick lastWakeStart = 0;
        sim::Tick lastWakeEnd = 0;
        cstate::CStateId lastWakeFrom = cstate::CStateId::C0;
    };

    Pending &pendingFor(CoreTrack &track, unsigned core,
                        std::uint64_t id);
    void pushPending(CoreTrack &track, const Pending &p);

    std::size_t _capacity = 0;
    std::vector<CoreTrack> _tracks;

    /** @{ Keep-newest rings (slot = emitted % capacity). */
    std::vector<RequestSpan> _spanRing;
    std::uint64_t _spansEmitted = 0;
    std::vector<WakeEpisode> _wakeRing;
    std::uint64_t _wakesEmitted = 0;
    /** @} */

    sim::Tick _origin = 0;
    bool _measuring = false;
    bool _done = false;

    TraceSeries _series;
};

/**
 * Merge per-server traces into one fleet trace: spans/episodes are
 * stamped with their server index and interleaved by completion
 * (stable, so equal ticks keep server order) -- deterministic
 * regardless of how the parts were produced. All parts must share
 * the same window and core count. Routing decisions are attached
 * separately by the fleet driver.
 */
TraceSeries mergeTraces(const std::vector<TraceSeries> &parts);

/**
 * Component statistics over one cohort of spans.
 */
struct CohortStats
{
    std::uint64_t count = 0;
    double thresholdUs = 0.0; //!< cohort latency cutoff (0 = all)

    /** @{ Per-component means over the cohort (microseconds). */
    double meanLatencyUs = 0.0;
    double meanRoutingUs = 0.0;
    double meanQueueUs = 0.0;
    double meanWakeUs = 0.0;
    double meanServiceUs = 0.0;
    /** @} */

    /** @{ Component share of the cohort's total latency
     *  (sum(component) / sum(latency); the four sum to 1). */
    double routingShare = 0.0;
    double queueShare = 0.0;
    double wakeShare = 0.0;
    double serviceShare = 0.0;
    /** @} */

    /** @{ Wake-cost histogram by from-state: how many cohort
     *  requests woke a core sleeping in state s, their mean wake
     *  stall, and that state's share of the cohort's latency. */
    std::array<std::uint64_t, cstate::kNumCStates> wakeCount{};
    std::array<double, cstate::kNumCStates> wakeMeanUs{};
    std::array<double, cstate::kNumCStates> wakeShareOfLatency{};
    /** @} */
};

/**
 * Tail attribution over a trace: the full population plus the p99
 * and p99.9 cohorts (spans with latency >= the nearest-rank
 * percentile of the retained spans).
 */
struct TailAttribution
{
    std::uint64_t spans = 0;   //!< retained (= attributed) spans
    std::uint64_t emitted = 0; //!< spans recorded over the window
    std::uint64_t dropped = 0;

    double p99Us = 0.0;  //!< nearest-rank over retained spans
    double p999Us = 0.0;

    CohortStats all;
    CohortStats p99;
    CohortStats p999;
};

/** Attribute @p series (empty series => all-zero attribution). */
TailAttribution attributeTail(const TraceSeries &series);

/** @{ aw-trace/1 rendering. The span CSV column schema:
 *
 *   server,core,id,arrival_s,routing_us,queue_us,wake_us,
 *   wake_from,service_us,latency_us
 *
 *  traceCsv() prefixes the `# aw-trace/1` schema line; arrival_s is
 *  seconds relative to the series origin, durations are
 *  microseconds, numbers render with the schedule-independent
 *  "%.10g". */
std::string traceCsvHeader();
std::string traceCsvRow(const TraceSeries &series,
                        const RequestSpan &span);
std::string traceCsv(const TraceSeries &series);

/** JSON fragment ("{...}" object with all/p99/p999 cohort keys)
 *  reused by the sweep emitters. */
std::string attributionCohortsJson(const TailAttribution &attr);

/** A standalone attribution JSON document for one series
 *  (awsim --trace-requests-json). */
std::string attributionJson(const TraceSeries &series,
                            const std::string &label);

/**
 * Chrome trace_event JSON (the format chrome://tracing and
 * Perfetto load): one process per server, one thread track per
 * core, complete ("X") events for service spans and wake episodes
 * (colored by from-state), instant ("i") events for balancer
 * routing decisions. Timestamps are microseconds relative to the
 * series origin. Every event carries the pinned ph/pid/tid/ts keys.
 */
std::string chromeTraceJson(const TraceSeries &series);
/** @} */

} // namespace aw::analysis

#endif // AW_ANALYSIS_TRACE_HH
