#include "analysis/validation.hh"

#include <cmath>

namespace aw::analysis {

double
ValidationPoint::accuracyPercent() const
{
    if (measured <= 0.0)
        return 0.0;
    return 100.0 * (1.0 - std::abs(estimated - measured) / measured);
}

double
ValidationSummary::meanAccuracyPercent() const
{
    if (points.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : points)
        sum += p.accuracyPercent();
    return sum / static_cast<double>(points.size());
}

double
ValidationSummary::worstAccuracyPercent() const
{
    if (points.empty())
        return 0.0;
    double worst = 100.0;
    for (const auto &p : points)
        worst = std::min(worst, p.accuracyPercent());
    return worst;
}

ValidationPoint
validateRun(const CStatePowerModel &model,
            const server::RunResult &run)
{
    ValidationPoint p;
    p.workload = run.workloadName;
    p.qps = run.offeredQps;
    p.measured = run.avgCorePower;
    p.estimated = model.baselineAvgPower(run.residency);
    return p;
}

ValidationSummary
validateWorkload(const server::ServerConfig &cfg,
                 const workload::WorkloadProfile &profile)
{
    ValidationSummary summary;
    summary.workload = profile.name();
    const auto results =
        server::sweepRates(cfg, profile, profile.rateLevels());
    // All cores share the same constants; build the model once.
    core::AwCoreModel aw;
    const CStatePowerModel model(
        server::StatePowers::fromModels(aw.ppa()));
    for (const auto &run : results)
        summary.points.push_back(validateRun(model, run));
    return summary;
}

} // namespace aw::analysis
