#include "analysis/sampler.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace aw::analysis {

namespace {

/** Schedule-independent double rendering (same as the sweep
 *  emitters'). */
std::string
num(double v)
{
    return sim::strprintf("%.10g", v);
}

/** Nearest-rank p99 over a *sorted* sample vector (matches
 *  sim::PercentileTracker::percentile semantics). */
double
p99Sorted(const std::vector<double> &sorted)
{
    if (sorted.empty())
        return 0.0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(0.99 * n));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

} // namespace

// -------------------------------------------------- TimelineRecorder

TimelineRecorder::TimelineRecorder(const TimelineConfig &cfg,
                                   unsigned cores)
{
    if (!(cfg.intervalSeconds > 0.0))
        sim::fatal("TimelineRecorder: interval must be positive "
                   "(got %g s)",
                   cfg.intervalSeconds);
    if (cfg.capacity == 0)
        sim::fatal("TimelineRecorder: ring capacity must be > 0");
    if (cores == 0)
        sim::fatal("TimelineRecorder: need at least one core");
    _interval = sim::fromSec(cfg.intervalSeconds);
    if (_interval == 0)
        sim::fatal("TimelineRecorder: interval %g s rounds to zero "
                   "ticks",
                   cfg.intervalSeconds);
    _capacity = cfg.capacity;
    _retainLatencies = cfg.retainLatencies;

    // Preallocate everything the hot path touches: the ring, the
    // per-core tracks/analyzers and the per-interval latency
    // scratch (which only regrows past its high-water mark).
    _cores.resize(cores);
    _analyzers.resize(cores);
    _ring.resize(_capacity);
    if (_retainLatencies)
        _ringLatencies.resize(_capacity);
    _latencies.reserve(256);
    _intervalEnd = _interval;
}

void
TimelineRecorder::accrueCore(unsigned core, sim::Tick now)
{
    CoreTrack &t = _cores[core];
    if (_measuring && now > t.last) {
        const sim::Tick dt = now - t.last;
        _stateTicks[cstate::index(t.state)] += dt;
        _energyJ += t.power * sim::toSec(dt);
        _freqGhzSec += t.freqHz * 1e-9 * sim::toSec(dt);
    }
    t.last = now;
}

void
TimelineRecorder::accrueUncore(sim::Tick now)
{
    if (_measuring && now > _uncoreLast)
        _energyJ += _uncorePower * sim::toSec(now - _uncoreLast);
    _uncoreLast = now;
}

void
TimelineRecorder::accrueThrottle(sim::Tick now)
{
    if (_measuring && _throttled && now > _throttleLast)
        _throttleTicks += now - _throttleLast;
    _throttleLast = now;
}

void
TimelineRecorder::closeInterval(sim::Tick t1)
{
    for (unsigned c = 0; c < _cores.size(); ++c)
        accrueCore(c, t1);
    accrueUncore(t1);
    accrueThrottle(t1);

    IntervalSample s;
    s.index = _emitted;
    s.t0 = _intervalStart;
    s.t1 = t1;
    s.requests = _requests;
    const double sec = sim::toSec(t1 - _intervalStart);
    s.powerW = sec > 0.0 ? _energyJ / sec : 0.0;
    std::sort(_latencies.begin(), _latencies.end());
    s.p99Us = p99Sorted(_latencies);
    const double core_time = sec * static_cast<double>(_cores.size());
    for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
        s.residency[i] =
            core_time > 0.0 ? sim::toSec(_stateTicks[i]) / core_time
                            : 0.0;
    }
    s.freqGhz = core_time > 0.0 ? _freqGhzSec / core_time : 0.0;
    s.tempC = _tempC;
    s.throttledShare =
        sec > 0.0 ? sim::toSec(_throttleTicks) / sec : 0.0;

    const std::size_t slot = _emitted % _capacity;
    _ring[slot] = s;
    if (_retainLatencies) {
        // Swap, don't copy: capacities circulate between the slot
        // and the scratch, so a wrapped ring allocates nothing new.
        std::swap(_ringLatencies[slot], _latencies);
    }
    _latencies.clear();
    ++_emitted;

    _requests = 0;
    _stateTicks.fill(0);
    _energyJ = 0.0;
    _freqGhzSec = 0.0;
    _throttleTicks = 0;
    _intervalStart = t1;
    _intervalEnd = t1 + _interval;
}

void
TimelineRecorder::advanceTo(sim::Tick now)
{
    if (!_measuring)
        return;
    // Lazy boundary closing: an event exactly on a boundary first
    // closes [t0, boundary), then lands in the next interval.
    while (_intervalEnd <= now)
        closeInterval(_intervalEnd);
}

void
TimelineRecorder::onMeasurementStart(sim::Tick now)
{
    _origin = now;
    _intervalStart = now;
    _intervalEnd = now + _interval;
    _stateTicks.fill(0);
    _energyJ = 0.0;
    _freqGhzSec = 0.0;
    _requests = 0;
    _latencies.clear();
    _emitted = 0;
    for (unsigned c = 0; c < _cores.size(); ++c) {
        _cores[c].last = now;
        _analyzers[c].reset(now, _cores[c].state);
    }
    _uncoreLast = now;
    _throttleLast = now;
    _throttleTicks = 0;
    _idleObservations = 0;
    _idleObservedTotal = 0;
    _idleObservationMismatches = 0;
    _measuring = true;
    _done = false;
}

void
TimelineRecorder::onMeasurementEnd(sim::Tick now)
{
    advanceTo(now);
    if (_measuring && now > _intervalStart)
        closeInterval(now); // non-empty partial final interval
    for (unsigned c = 0; c < _cores.size(); ++c) {
        accrueCore(c, now);
        _analyzers[c].finish(now);
    }
    _measuring = false;
    _done = true;

    _series = TimelineSeries{};
    _series.origin = _origin;
    _series.interval = _interval;
    _series.cores = static_cast<unsigned>(_cores.size());
    _series.emitted = _emitted;
    _series.dropped =
        _emitted > _capacity ? _emitted - _capacity : 0;
    const std::uint64_t retained = _emitted - _series.dropped;
    _series.samples.reserve(retained);
    if (_retainLatencies)
        _series.latencies.reserve(retained);
    for (std::uint64_t k = _series.dropped; k < _emitted; ++k) {
        _series.samples.push_back(_ring[k % _capacity]);
        if (_retainLatencies)
            _series.latencies.push_back(
                _ringLatencies[k % _capacity]);
    }
    for (const auto &a : _analyzers)
        _series.transitions.merge(a);
    _series.idleObservations = _idleObservations;
    _series.idleObservedTotal = _idleObservedTotal;
    _series.idleObservationMismatches = _idleObservationMismatches;
}

void
TimelineRecorder::onCStateEnter(unsigned core, sim::Tick now,
                                cstate::CStateId state)
{
    advanceTo(now);
    accrueCore(core, now);
    if (_measuring)
        _analyzers[core].enter(state, now);
    _cores[core].state = state;
}

void
TimelineRecorder::onCorePower(unsigned core, sim::Tick now,
                              power::Watts watts)
{
    advanceTo(now);
    accrueCore(core, now);
    _cores[core].power = watts;
}

void
TimelineRecorder::onUncorePower(sim::Tick now, power::Watts watts)
{
    advanceTo(now);
    accrueUncore(now);
    _uncorePower = watts;
}

void
TimelineRecorder::onFreqChange(unsigned core, sim::Tick now,
                               double hz)
{
    advanceTo(now);
    accrueCore(core, now);
    _cores[core].freqHz = hz;
}

void
TimelineRecorder::onTemperature(sim::Tick now, double celsius)
{
    advanceTo(now);
    _tempC = celsius;
}

void
TimelineRecorder::onCapThrottle(sim::Tick now, std::size_t level_cap,
                                double forced_idle_share,
                                bool throttled)
{
    (void)level_cap;
    (void)forced_idle_share;
    advanceTo(now);
    accrueThrottle(now);
    _throttled = throttled;
}

void
TimelineRecorder::onIdleStart(unsigned core, sim::Tick now)
{
    advanceTo(now);
    _cores[core].idleStart = now;
}

void
TimelineRecorder::onIdleObserved(unsigned core, sim::Tick now,
                                 sim::Tick idle)
{
    advanceTo(now);
    ++_idleObservations;
    _idleObservedTotal += idle;
    // Ground truth: the governor's observation must equal the time
    // since this core's beginIdle (promotions preserve the period's
    // start, so the whole gap is one observation).
    const sim::Tick start = _cores[core].idleStart;
    if (start == sim::kMaxTick || now < start ||
        idle != now - start) {
        ++_idleObservationMismatches;
    }
}

void
TimelineRecorder::onComplete(unsigned core, std::uint64_t id,
                             sim::Tick now, double latency_us)
{
    (void)core;
    (void)id;
    advanceTo(now);
    if (_measuring) {
        ++_requests;
        _latencies.push_back(latency_us);
    }
}

const TimelineSeries &
TimelineRecorder::series() const
{
    if (!_done)
        sim::fatal("TimelineRecorder: series() before the run "
                   "finished");
    return _series;
}

const TransitionAnalyzer &
TimelineRecorder::coreTransitions(unsigned core) const
{
    if (core >= _analyzers.size())
        sim::fatal("TimelineRecorder: core %u out of range", core);
    return _analyzers[core];
}

// ------------------------------------------------------------- fold

TimelineSeries
foldTimelines(const std::vector<TimelineSeries> &parts)
{
    if (parts.empty())
        sim::fatal("foldTimelines: no series to fold");

    const TimelineSeries &first = parts.front();
    TimelineSeries out;
    out.origin = first.origin;
    out.interval = first.interval;
    out.emitted = first.emitted;
    out.dropped = first.dropped;

    std::vector<double> pooled;
    for (const auto &p : parts) {
        if (p.origin != first.origin ||
            p.interval != first.interval ||
            p.emitted != first.emitted ||
            p.samples.size() != first.samples.size())
            sim::fatal("foldTimelines: mismatched interval grids "
                       "(servers must share duration, warmup and "
                       "interval)");
        if (p.latencies.size() != p.samples.size())
            sim::fatal("foldTimelines: per-interval latencies "
                       "missing; record with retainLatencies");
        out.cores += p.cores;
        out.transitions.merge(p.transitions);
        out.idleObservations += p.idleObservations;
        out.idleObservedTotal += p.idleObservedTotal;
        out.idleObservationMismatches +=
            p.idleObservationMismatches;
    }

    out.samples.resize(first.samples.size());
    for (std::size_t i = 0; i < first.samples.size(); ++i) {
        IntervalSample &s = out.samples[i];
        s.index = first.samples[i].index;
        s.t0 = first.samples[i].t0;
        s.t1 = first.samples[i].t1;
        pooled.clear();
        for (const auto &p : parts) {
            const IntervalSample &ps = p.samples[i];
            if (ps.t0 != s.t0 || ps.t1 != s.t1)
                sim::fatal("foldTimelines: interval %zu boundaries "
                           "disagree across servers",
                           i);
            s.requests += ps.requests;
            s.powerW += ps.powerW;
            for (std::size_t r = 0; r < cstate::kNumCStates; ++r)
                s.residency[r] += ps.residency[r] * p.cores;
            s.freqGhz += ps.freqGhz * p.cores;
            // Fleet temperature is the hottest server (the thermal
            // constraint binds per package); throttling folds as a
            // core-weighted mean like residency.
            s.tempC = std::max(s.tempC, ps.tempC);
            s.throttledShare += ps.throttledShare * p.cores;
            pooled.insert(pooled.end(), p.latencies[i].begin(),
                          p.latencies[i].end());
        }
        for (std::size_t r = 0; r < cstate::kNumCStates; ++r)
            s.residency[r] /= static_cast<double>(out.cores);
        s.freqGhz /= static_cast<double>(out.cores);
        s.throttledShare /= static_cast<double>(out.cores);
        std::sort(pooled.begin(), pooled.end());
        s.p99Us = p99Sorted(pooled);
    }
    return out;
}

// ------------------------------------------------------ aw-timeline/3

std::string
timelineCsvHeader()
{
    return "interval,t0_s,t1_s,requests,achieved_qps,power_w,"
           "p99_us,res_c0,res_c1,res_c1e,res_c6a,res_c6ae,res_c6,"
           "freq_ghz,temp_c,throttled_share";
}

std::string
timelineCsvRow(const TimelineSeries &series,
               const IntervalSample &sample)
{
    std::string out = sim::strprintf(
        "%llu,%s,%s,%llu",
        static_cast<unsigned long long>(sample.index),
        num(sim::toSec(sample.t0 - series.origin)).c_str(),
        num(sim::toSec(sample.t1 - series.origin)).c_str(),
        static_cast<unsigned long long>(sample.requests));
    for (const double v :
         {sample.achievedQps(), sample.powerW, sample.p99Us}) {
        out += ',';
        out += num(v);
    }
    for (const double share : sample.residency) {
        out += ',';
        out += num(share);
    }
    for (const double v :
         {sample.freqGhz, sample.tempC, sample.throttledShare}) {
        out += ',';
        out += num(v);
    }
    return out;
}

std::string
timelineCsv(const TimelineSeries &series)
{
    std::string out = sim::strprintf("# %s\n", kTimelineSchema);
    if (series.dropped > 0) {
        // The keep-newest ring overflowed: the oldest intervals are
        // gone and every downstream consumer sees a biased (recent)
        // subset. Flag it in the artifact and on stderr -- silence
        // here is how a lossy timeline gets read as a complete one.
        out += sim::strprintf(
            "# emitted %llu dropped %llu (ring overflow: oldest "
            "intervals missing)\n",
            static_cast<unsigned long long>(series.emitted),
            static_cast<unsigned long long>(series.dropped));
        sim::warn("aw-timeline/3: interval ring overflowed "
                  "(%llu of %llu intervals dropped); raise "
                  "TimelineConfig::capacity or widen the interval",
                  static_cast<unsigned long long>(series.dropped),
                  static_cast<unsigned long long>(series.emitted));
    }
    out += timelineCsvHeader();
    out += '\n';
    for (const auto &s : series.samples) {
        out += timelineCsvRow(series, s);
        out += '\n';
    }
    return out;
}

std::string
timelineIntervalsJson(const TimelineSeries &series)
{
    std::string out = "[";
    for (std::size_t i = 0; i < series.samples.size(); ++i) {
        const auto &s = series.samples[i];
        out += i ? ",\n      {" : "\n      {";
        out += sim::strprintf(
            "\"interval\": %llu, \"t0_s\": %s, \"t1_s\": %s, "
            "\"requests\": %llu, \"achieved_qps\": %s, "
            "\"power_w\": %s, \"p99_us\": %s",
            static_cast<unsigned long long>(s.index),
            num(sim::toSec(s.t0 - series.origin)).c_str(),
            num(sim::toSec(s.t1 - series.origin)).c_str(),
            static_cast<unsigned long long>(s.requests),
            num(s.achievedQps()).c_str(), num(s.powerW).c_str(),
            num(s.p99Us).c_str());
        out += ", \"residency\": [";
        for (std::size_t r = 0; r < s.residency.size(); ++r) {
            if (r)
                out += ", ";
            out += num(s.residency[r]);
        }
        out += "]";
        out += ", \"freq_ghz\": " + num(s.freqGhz);
        out += ", \"temp_c\": " + num(s.tempC);
        out += ", \"throttled_share\": " + num(s.throttledShare);
        out += "}";
    }
    out += series.samples.empty() ? "]" : "\n    ]";
    return out;
}

std::string
timelineTransitionsJson(const TransitionAnalyzer &map)
{
    std::string out = "[";
    bool any = false;
    for (std::size_t f = 0; f < cstate::kNumCStates; ++f) {
        for (std::size_t t = 0; t < cstate::kNumCStates; ++t) {
            const auto from = static_cast<cstate::CStateId>(f);
            const auto to = static_cast<cstate::CStateId>(t);
            const TransitionStats &p = map.pair(from, to);
            if (p.count == 0)
                continue;
            out += any ? ",\n      {" : "\n      {";
            any = true;
            out += sim::strprintf(
                "\"from\": \"%s\", \"to\": \"%s\", "
                "\"count\": %llu, \"mean_us\": %s, \"max_us\": %s",
                cstate::name(from), cstate::name(to),
                static_cast<unsigned long long>(p.count),
                num(p.meanLifetimeUs()).c_str(),
                num(sim::toUs(p.maxLifetime)).c_str());
            // Sparse log2 histogram: [bucket, count] pairs; bucket
            // b holds lifetimes in [2^(b-1), 2^b) picoseconds.
            out += ", \"hist\": [";
            bool first = true;
            for (std::size_t b = 0; b < kLifetimeBuckets; ++b) {
                if (p.histogram[b] == 0)
                    continue;
                if (!first)
                    out += ", ";
                first = false;
                out += sim::strprintf(
                    "[%zu, %llu]", b,
                    static_cast<unsigned long long>(p.histogram[b]));
            }
            out += "]}";
        }
    }
    out += any ? "\n    ]" : "]";
    return out;
}

std::string
timelineJson(const TimelineSeries &series, const std::string &label)
{
    std::string out = "{\n";
    out += sim::strprintf("  \"schema\": \"%s\",\n",
                          kTimelineSchema);
    out += sim::strprintf("  \"label\": \"%s\",\n", label.c_str());
    out += sim::strprintf("  \"interval_s\": %s,\n",
                          num(sim::toSec(series.interval)).c_str());
    out += sim::strprintf("  \"cores\": %u,\n", series.cores);
    out += sim::strprintf(
        "  \"intervals_emitted\": %llu,\n"
        "  \"intervals_dropped\": %llu,\n",
        static_cast<unsigned long long>(series.emitted),
        static_cast<unsigned long long>(series.dropped));
    out += sim::strprintf(
        "  \"idle_observations\": %llu,\n"
        "  \"idle_observation_mismatches\": %llu,\n",
        static_cast<unsigned long long>(series.idleObservations),
        static_cast<unsigned long long>(
            series.idleObservationMismatches));
    out += "  \"intervals\": " + timelineIntervalsJson(series) +
           ",\n";
    out += "  \"transitions\": " +
           timelineTransitionsJson(series.transitions) + "\n";
    out += "}\n";
    return out;
}

} // namespace aw::analysis
