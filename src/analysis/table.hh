/**
 * @file
 * Plain-text table writer used by the benchmark harnesses to print
 * the paper's tables/series with aligned columns.
 */

#ifndef AW_ANALYSIS_TABLE_HH
#define AW_ANALYSIS_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace aw::analysis {

/**
 * Column-aligned text table.
 */
class TableWriter
{
  public:
    explicit TableWriter(std::vector<std::string> headers);

    /** Append a row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Render to a string. */
    std::string render() const;

    /** Print to @p out (defaults to stdout). */
    void print(std::FILE *out = stdout) const;

    std::size_t rows() const { return _rows.size(); }
    std::size_t columns() const { return _headers.size(); }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

/** printf-convenience for building cells. */
std::string cell(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace aw::analysis

#endif // AW_ANALYSIS_TABLE_HH
