/**
 * @file
 * State-transition analytics over a core's C-state entry stream.
 *
 * For every (from-state, to-state) pair the analyzer records the
 * transition count, the total and maximum lifetime spent in the
 * from-state before the switch, and a log2-bucketed lifetime
 * histogram -- the time-in-state telemetry idiom of cpuidle
 * statistics, applied to the simulator's exact event stream. The
 * lifetime distribution is the quantity the paper's argument rests
 * on: C6A only pays off because most idle episodes are too short to
 * amortize legacy C6's entry/exit flows (Sec 1/Fig 2).
 *
 * Conservation invariants (pinned by tests/test_transitions.cc):
 *
 *   - sum of pair counts == totalTransitions()
 *   - sum of pair lifetimes + censored tails == observed window
 *   - timeIn(s) == ResidencyCounters::timeIn(s) for every state
 *
 * The analyzer is driven by TelemetryObserver::onCStateEnter
 * mirrors of ResidencyCounters::recordEnter, so it sees exactly the
 * residency accounting's state stream (transition windows count as
 * C0, like the residency counters).
 */

#ifndef AW_ANALYSIS_TRANSITIONS_HH
#define AW_ANALYSIS_TRANSITIONS_HH

#include <array>
#include <cstdint>

#include "cstate/cstate.hh"
#include "sim/types.hh"

namespace aw::analysis {

/** Lifetime histogram buckets: bucket i counts lifetimes with
 *  bit_width(ticks) == i, i.e. lifetimes in [2^(i-1), 2^i) ticks
 *  (bucket 0 = zero-length). 64 buckets cover the full Tick range. */
inline constexpr std::size_t kLifetimeBuckets = 64;

/** Per-(from,to) transition statistics. */
struct TransitionStats
{
    std::uint64_t count = 0;
    sim::Tick totalLifetime = 0; //!< sum of from-state lifetimes
    sim::Tick maxLifetime = 0;
    std::array<std::uint64_t, kLifetimeBuckets> histogram{};

    /** Mean from-state lifetime in microseconds (0 when empty). */
    double meanLifetimeUs() const;

    /** Record one completed from-state lifetime. */
    void observe(sim::Tick lifetime);

    /** Accumulate @p other (fold across cores/servers). */
    void merge(const TransitionStats &other);
};

/**
 * Streaming (from-state, to-state) transition map for one core's
 * C-state entry stream; merge() folds maps across cores.
 */
class TransitionAnalyzer
{
  public:
    TransitionAnalyzer() = default;

    /** Restart accounting at @p now in @p initial (stats reset). */
    void reset(sim::Tick now, cstate::CStateId initial);

    /** The state stream enters @p to at @p now. Re-entering the
     *  current state is not a transition: the open lifetime simply
     *  continues (mirrors residency accounting, where e.g. back-to-
     *  back C0 windows merge). */
    void enter(cstate::CStateId to, sim::Tick now);

    /** Close the window at @p now: the still-open lifetime is
     *  censored into the per-state tail (it ended with the window,
     *  not with a transition, so it joins no pair). */
    void finish(sim::Tick now);

    /** Statistics of the @p from -> @p to pair. */
    const TransitionStats &pair(cstate::CStateId from,
                                cstate::CStateId to) const;

    /** Total recorded transitions (== sum of pair counts). */
    std::uint64_t totalTransitions() const;

    /** Censored end-of-window residue of @p state. */
    sim::Tick tail(cstate::CStateId state) const;

    /** Time attributed to @p state: completed lifetimes + tail.
     *  Cross-checks ResidencyCounters::timeIn exactly. */
    sim::Tick timeIn(cstate::CStateId state) const;

    /** Sum of all pair lifetimes and tails (== window length once
     *  finished). */
    sim::Tick totalLifetime() const;

    /** State currently open (meaningless after finish()). */
    cstate::CStateId current() const { return _current; }

    /** Fold @p other's pairs and tails into this map. */
    void merge(const TransitionAnalyzer &other);

  private:
    static std::size_t pairIndex(cstate::CStateId from,
                                 cstate::CStateId to)
    {
        return cstate::index(from) * cstate::kNumCStates +
               cstate::index(to);
    }

    std::array<TransitionStats,
               cstate::kNumCStates * cstate::kNumCStates>
        _pairs{};
    std::array<sim::Tick, cstate::kNumCStates> _tails{};
    cstate::CStateId _current = cstate::CStateId::C0;
    sim::Tick _since = 0;
    bool _finished = false;
};

} // namespace aw::analysis

#endif // AW_ANALYSIS_TRANSITIONS_HH
