#include "analysis/trace.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace aw::analysis {

namespace {

/** Schedule-independent double rendering (same as the sweep
 *  emitters'). */
std::string
num(double v)
{
    return sim::strprintf("%.10g", v);
}

/** Nearest-rank percentile over a *sorted* tick vector (matches
 *  sim::PercentileTracker::percentile semantics). */
sim::Tick
percentileSorted(const std::vector<sim::Tick> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank == 0)
        rank = 1;
    return sorted[rank - 1];
}

} // namespace

// ---------------------------------------------------- RequestTracer

RequestTracer::RequestTracer(const TraceConfig &cfg, unsigned cores)
{
    if (cfg.capacity == 0)
        sim::fatal("RequestTracer: ring capacity must be > 0");
    if (cores == 0)
        sim::fatal("RequestTracer: need at least one core");
    _capacity = cfg.capacity;
    // Preallocate everything the hot path touches: the rings and a
    // small per-core pending buffer (regrows only past its
    // high-water mark, i.e. queue depths the run never revisits).
    _spanRing.resize(_capacity);
    _wakeRing.resize(_capacity);
    _tracks.resize(cores);
    for (auto &t : _tracks)
        t.fifo.resize(16);
}

void
RequestTracer::pushPending(CoreTrack &track, const Pending &p)
{
    if (track.count == track.fifo.size()) {
        // Grow by relaying out in FIFO order; amortized, and only
        // when the core's queue outgrows every depth seen so far.
        std::vector<Pending> bigger(track.fifo.size() * 2);
        for (std::size_t k = 0; k < track.count; ++k) {
            bigger[k] = track.fifo[(track.head + k) %
                                   track.fifo.size()];
        }
        track.fifo = std::move(bigger);
        track.head = 0;
    }
    track.fifo[(track.head + track.count) % track.fifo.size()] = p;
    ++track.count;
}

RequestTracer::Pending &
RequestTracer::pendingFor(CoreTrack &track, unsigned core,
                          std::uint64_t id)
{
    // Same-tick callbacks are not phase-ordered (a dispatch can
    // land after the service start it caused), so correlate by id:
    // head first (service/completion order), then newest (dispatch
    // follows arrival), then scan.
    if (track.count == 0)
        sim::panic("RequestTracer: core %u has no pending request "
                   "(id %llu)",
                   core, static_cast<unsigned long long>(id));
    const std::size_t size = track.fifo.size();
    Pending &head = track.fifo[track.head];
    if (head.id == id)
        return head;
    Pending &tail =
        track.fifo[(track.head + track.count - 1) % size];
    if (tail.id == id)
        return tail;
    for (std::size_t k = 1; k + 1 < track.count; ++k) {
        Pending &p = track.fifo[(track.head + k) % size];
        if (p.id == id)
            return p;
    }
    sim::panic("RequestTracer: core %u id %llu is not pending", core,
               static_cast<unsigned long long>(id));
}

void
RequestTracer::onMeasurementStart(sim::Tick now)
{
    if (_done)
        sim::fatal("RequestTracer: records exactly one run");
    // Requests in flight at the window start stay pending: their
    // completions land inside the window and count, mirroring the
    // server's latency tracker.
    _measuring = true;
    _origin = now;
    _spansEmitted = 0;
    _wakesEmitted = 0;
}

void
RequestTracer::onRequestArrival(unsigned core, std::uint64_t id,
                                sim::Tick now)
{
    Pending p;
    p.id = id;
    p.arrival = now;
    // Self-generated streams have no dispatcher; the routing
    // component degenerates to zero unless a dispatch follows.
    p.dispatch = now;
    pushPending(_tracks[core], p);
}

void
RequestTracer::onRequestDispatch(unsigned core, std::uint64_t id,
                                 sim::Tick now)
{
    pendingFor(_tracks[core], core, id).dispatch = now;
}

void
RequestTracer::onWakeStart(unsigned core, sim::Tick now,
                           cstate::CStateId from)
{
    CoreTrack &track = _tracks[core];
    if (track.wakeOpen)
        sim::panic("RequestTracer: core %u wake episode already "
                   "open",
                   core);
    track.wakeOpen = true;
    track.wakeStart = now;
    track.wakeFromState = from;
}

void
RequestTracer::onWakeEnd(unsigned core, sim::Tick now)
{
    CoreTrack &track = _tracks[core];
    if (!track.wakeOpen)
        sim::panic("RequestTracer: core %u wake end without start",
                   core);
    track.wakeOpen = false;
    track.lastWakeStart = track.wakeStart;
    track.lastWakeEnd = now;
    track.lastWakeFrom = track.wakeFromState;
    if (!_measuring)
        return;
    WakeEpisode &slot = _wakeRing[_wakesEmitted % _capacity];
    slot.server = 0;
    slot.core = core;
    slot.start = track.wakeStart;
    slot.end = now;
    slot.from = track.wakeFromState;
    ++_wakesEmitted;
}

void
RequestTracer::onServiceStart(unsigned core, std::uint64_t id,
                              sim::Tick now)
{
    CoreTrack &track = _tracks[core];
    Pending &p = pendingFor(track, core, id);
    p.serviceStart = now;
    // At most one wake episode can overlap this request's wait (a
    // core never idles with queued work), and it has closed by now
    // (service only runs on an awake core): the stall is the
    // overlap of the most recent episode with [arrival, now].
    const sim::Tick from = std::max(track.lastWakeStart, p.arrival);
    if (track.lastWakeEnd > from) {
        p.wake = track.lastWakeEnd - from;
        p.wakeFrom = track.lastWakeFrom;
    } else {
        p.wake = 0;
        p.wakeFrom = cstate::CStateId::C0;
    }
}

void
RequestTracer::onComplete(unsigned core, std::uint64_t id,
                          sim::Tick now, double latency_us)
{
    (void)latency_us;
    CoreTrack &track = _tracks[core];
    if (track.count == 0 || track.fifo[track.head].id != id) {
        sim::panic("RequestTracer: core %u completed id %llu out of "
                   "FIFO order",
                   core, static_cast<unsigned long long>(id));
    }
    const Pending p = track.fifo[track.head];
    track.head = (track.head + 1) % track.fifo.size();
    --track.count;
    if (!_measuring)
        return;
    RequestSpan &slot = _spanRing[_spansEmitted % _capacity];
    slot.id = p.id;
    slot.server = 0;
    slot.core = core;
    slot.arrival = p.arrival;
    slot.dispatch = p.dispatch;
    slot.serviceStart = p.serviceStart;
    slot.completion = now;
    slot.wake = p.wake;
    slot.wakeFrom = p.wakeFrom;
    ++_spansEmitted;
}

void
RequestTracer::onMeasurementEnd(sim::Tick now)
{
    _measuring = false;
    _done = true;
    _series = TraceSeries();
    _series.origin = _origin;
    _series.end = now;
    _series.servers = 1;
    _series.cores = static_cast<unsigned>(_tracks.size());
    _series.emitted = _spansEmitted;
    _series.wakesEmitted = _wakesEmitted;

    const std::uint64_t kept =
        std::min<std::uint64_t>(_spansEmitted, _capacity);
    _series.dropped = _spansEmitted - kept;
    _series.spans.reserve(kept);
    for (std::uint64_t k = 0; k < kept; ++k) {
        const std::uint64_t first = _spansEmitted - kept;
        _series.spans.push_back(
            _spanRing[(first + k) % _capacity]);
    }
    const std::uint64_t wkept =
        std::min<std::uint64_t>(_wakesEmitted, _capacity);
    _series.wakesDropped = _wakesEmitted - wkept;
    _series.wakes.reserve(wkept);
    for (std::uint64_t k = 0; k < wkept; ++k) {
        const std::uint64_t first = _wakesEmitted - wkept;
        _series.wakes.push_back(
            _wakeRing[(first + k) % _capacity]);
    }
}

const TraceSeries &
RequestTracer::series() const
{
    if (!_done)
        sim::fatal("RequestTracer: series() before the run ended");
    return _series;
}

// ------------------------------------------------------ mergeTraces

TraceSeries
mergeTraces(const std::vector<TraceSeries> &parts)
{
    if (parts.empty())
        sim::fatal("mergeTraces: no parts");
    TraceSeries out;
    out.origin = parts.front().origin;
    out.end = parts.front().end;
    out.cores = parts.front().cores;
    out.servers = static_cast<unsigned>(parts.size());

    std::size_t spans = 0;
    std::size_t wakes = 0;
    for (const auto &part : parts) {
        if (part.origin != out.origin || part.end != out.end ||
            part.cores != out.cores) {
            sim::fatal("mergeTraces: parts disagree on window or "
                       "core count");
        }
        spans += part.spans.size();
        wakes += part.wakes.size();
    }
    out.spans.reserve(spans);
    out.wakes.reserve(wakes);
    for (std::size_t s = 0; s < parts.size(); ++s) {
        const auto server = static_cast<std::uint32_t>(s);
        for (RequestSpan span : parts[s].spans) {
            span.server = server;
            out.spans.push_back(span);
        }
        for (WakeEpisode w : parts[s].wakes) {
            w.server = server;
            out.wakes.push_back(w);
        }
        out.emitted += parts[s].emitted;
        out.dropped += parts[s].dropped;
        out.wakesEmitted += parts[s].wakesEmitted;
        out.wakesDropped += parts[s].wakesDropped;
    }
    // Per-part order is already completion order; a stable sort
    // interleaves deterministically (ties keep server order).
    std::stable_sort(out.spans.begin(), out.spans.end(),
                     [](const RequestSpan &a, const RequestSpan &b) {
                         return a.completion < b.completion;
                     });
    std::stable_sort(out.wakes.begin(), out.wakes.end(),
                     [](const WakeEpisode &a, const WakeEpisode &b) {
                         return a.end < b.end;
                     });
    return out;
}

// ---------------------------------------------------- attributeTail

namespace {

/** Accumulate @p span counts/sums into @p stats (tick sums carried
 *  in the mean fields until finalize). */
struct CohortAccum
{
    std::uint64_t count = 0;
    std::uint64_t latency = 0;
    std::uint64_t routing = 0;
    std::uint64_t queue = 0;
    std::uint64_t wake = 0;
    std::uint64_t service = 0;
    std::array<std::uint64_t, cstate::kNumCStates> wakeCount{};
    std::array<std::uint64_t, cstate::kNumCStates> wakeTicks{};

    void
    add(const RequestSpan &span)
    {
        ++count;
        latency += span.latency();
        routing += span.routing();
        queue += span.queueWait();
        wake += span.wake;
        service += span.service();
        if (span.wake > 0) {
            const auto s = cstate::index(span.wakeFrom);
            ++wakeCount[s];
            wakeTicks[s] += span.wake;
        }
    }

    CohortStats
    finalize(double threshold_us) const
    {
        CohortStats st;
        st.count = count;
        st.thresholdUs = threshold_us;
        if (count == 0)
            return st;
        const auto n = static_cast<double>(count);
        st.meanLatencyUs = sim::toUs(latency) / n;
        st.meanRoutingUs = sim::toUs(routing) / n;
        st.meanQueueUs = sim::toUs(queue) / n;
        st.meanWakeUs = sim::toUs(wake) / n;
        st.meanServiceUs = sim::toUs(service) / n;
        if (latency > 0) {
            const auto total = static_cast<double>(latency);
            st.routingShare = static_cast<double>(routing) / total;
            st.queueShare = static_cast<double>(queue) / total;
            st.wakeShare = static_cast<double>(wake) / total;
            st.serviceShare = static_cast<double>(service) / total;
            for (std::size_t s = 0; s < cstate::kNumCStates; ++s) {
                st.wakeShareOfLatency[s] =
                    static_cast<double>(wakeTicks[s]) / total;
            }
        }
        for (std::size_t s = 0; s < cstate::kNumCStates; ++s) {
            st.wakeCount[s] = wakeCount[s];
            if (wakeCount[s] > 0) {
                st.wakeMeanUs[s] =
                    sim::toUs(wakeTicks[s]) /
                    static_cast<double>(wakeCount[s]);
            }
        }
        return st;
    }
};

} // namespace

TailAttribution
attributeTail(const TraceSeries &series)
{
    TailAttribution attr;
    attr.spans = series.spans.size();
    attr.emitted = series.emitted;
    attr.dropped = series.dropped;
    if (series.spans.empty())
        return attr;

    std::vector<sim::Tick> latencies;
    latencies.reserve(series.spans.size());
    for (const auto &span : series.spans)
        latencies.push_back(span.latency());
    std::sort(latencies.begin(), latencies.end());
    const sim::Tick p99 = percentileSorted(latencies, 99.0);
    const sim::Tick p999 = percentileSorted(latencies, 99.9);
    attr.p99Us = sim::toUs(p99);
    attr.p999Us = sim::toUs(p999);

    CohortAccum all;
    CohortAccum tail99;
    CohortAccum tail999;
    for (const auto &span : series.spans) {
        const sim::Tick lat = span.latency();
        all.add(span);
        if (lat >= p99)
            tail99.add(span);
        if (lat >= p999)
            tail999.add(span);
    }
    attr.all = all.finalize(0.0);
    attr.p99 = tail99.finalize(attr.p99Us);
    attr.p999 = tail999.finalize(attr.p999Us);
    return attr;
}

// --------------------------------------------------------- emitters

std::string
traceCsvHeader()
{
    return "server,core,id,arrival_s,routing_us,queue_us,wake_us,"
           "wake_from,service_us,latency_us\n";
}

std::string
traceCsvRow(const TraceSeries &series, const RequestSpan &span)
{
    std::string out;
    out += sim::strprintf("%u,%u,%llu,", span.server, span.core,
                          static_cast<unsigned long long>(span.id));
    // A span can straddle the warmup boundary (arrival during
    // warmup, completion measured): render a negative arrival_s
    // rather than wrapping the unsigned tick difference.
    out += num(span.arrival >= series.origin
                   ? sim::toSec(span.arrival - series.origin)
                   : -sim::toSec(series.origin - span.arrival));
    out += ',';
    out += num(sim::toUs(span.routing()));
    out += ',';
    out += num(sim::toUs(span.queueWait()));
    out += ',';
    out += num(sim::toUs(span.wake));
    out += ',';
    out += cstate::name(span.wakeFrom);
    out += ',';
    out += num(sim::toUs(span.service()));
    out += ',';
    out += num(sim::toUs(span.latency()));
    out += '\n';
    return out;
}

std::string
traceCsv(const TraceSeries &series)
{
    std::string out = sim::strprintf("# %s\n", kTraceSchema);
    if (series.dropped > 0) {
        // Same contract as the timeline renderer: a wrapped span
        // ring means the artifact holds a keep-newest subset, and
        // both the file and stderr must say so.
        out += sim::strprintf(
            "# emitted %llu dropped %llu (ring overflow: oldest "
            "spans missing)\n",
            static_cast<unsigned long long>(series.emitted),
            static_cast<unsigned long long>(series.dropped));
        sim::warn("aw-trace/1: span ring overflowed (%llu of %llu "
                  "spans dropped); raise TraceConfig::capacity",
                  static_cast<unsigned long long>(series.dropped),
                  static_cast<unsigned long long>(series.emitted));
    }
    out += traceCsvHeader();
    for (const auto &span : series.spans)
        out += traceCsvRow(series, span);
    return out;
}

namespace {

std::string
cohortJson(const CohortStats &st, const char *indent)
{
    std::string out = "{\n";
    const std::string in(indent);
    out += in + "  \"count\": " +
           sim::strprintf(
               "%llu", static_cast<unsigned long long>(st.count)) +
           ",\n";
    out += in + "  \"threshold_us\": " + num(st.thresholdUs) + ",\n";
    out +=
        in + "  \"mean_latency_us\": " + num(st.meanLatencyUs) +
        ",\n";
    out +=
        in + "  \"mean_routing_us\": " + num(st.meanRoutingUs) +
        ",\n";
    out += in + "  \"mean_queue_us\": " + num(st.meanQueueUs) + ",\n";
    out += in + "  \"mean_wake_us\": " + num(st.meanWakeUs) + ",\n";
    out +=
        in + "  \"mean_service_us\": " + num(st.meanServiceUs) +
        ",\n";
    out += in + "  \"routing_share\": " + num(st.routingShare) + ",\n";
    out += in + "  \"queue_share\": " + num(st.queueShare) + ",\n";
    out += in + "  \"wake_share\": " + num(st.wakeShare) + ",\n";
    out += in + "  \"service_share\": " + num(st.serviceShare) + ",\n";
    out += in + "  \"wake_by_state\": [\n";
    for (std::size_t s = 0; s < cstate::kNumCStates; ++s) {
        out += in + "    {\"state\": \"" +
               cstate::name(static_cast<cstate::CStateId>(s)) +
               "\", \"count\": " +
               sim::strprintf("%llu",
                              static_cast<unsigned long long>(
                                  st.wakeCount[s])) +
               ", \"mean_wake_us\": " + num(st.wakeMeanUs[s]) +
               ", \"share_of_latency\": " +
               num(st.wakeShareOfLatency[s]) + "}";
        out += s + 1 < cstate::kNumCStates ? ",\n" : "\n";
    }
    out += in + "  ]\n";
    out += in + "}";
    return out;
}

} // namespace

std::string
attributionCohortsJson(const TailAttribution &attr)
{
    std::string out = "{\n";
    out += "      \"all\": " + cohortJson(attr.all, "      ") + ",\n";
    out += "      \"p99\": " + cohortJson(attr.p99, "      ") + ",\n";
    out +=
        "      \"p999\": " + cohortJson(attr.p999, "      ") + "\n";
    out += "    }";
    return out;
}

std::string
attributionJson(const TraceSeries &series, const std::string &label)
{
    const TailAttribution attr = attributeTail(series);
    std::string out = "{\n";
    out += sim::strprintf("  \"schema\": \"%s\",\n", kTraceSchema);
    out += sim::strprintf("  \"label\": \"%s\",\n", label.c_str());
    out += sim::strprintf("  \"servers\": %u,\n", series.servers);
    out += sim::strprintf("  \"cores\": %u,\n", series.cores);
    out += "  \"window_s\": " +
           num(sim::toSec(series.end - series.origin)) + ",\n";
    out += sim::strprintf(
        "  \"spans\": %llu,\n",
        static_cast<unsigned long long>(series.spans.size()));
    out += sim::strprintf(
        "  \"emitted\": %llu,\n",
        static_cast<unsigned long long>(series.emitted));
    out += sim::strprintf(
        "  \"dropped\": %llu,\n",
        static_cast<unsigned long long>(series.dropped));
    out += sim::strprintf(
        "  \"wake_episodes\": %llu,\n",
        static_cast<unsigned long long>(series.wakesEmitted));
    out += sim::strprintf(
        "  \"routing_decisions\": %llu,\n",
        static_cast<unsigned long long>(series.routingEmitted));
    out += "  \"p99_us\": " + num(attr.p99Us) + ",\n";
    out += "  \"p999_us\": " + num(attr.p999Us) + ",\n";
    out += "  \"cohorts\": {\n";
    out += "    \"all\": " + cohortJson(attr.all, "    ") + ",\n";
    out += "    \"p99\": " + cohortJson(attr.p99, "    ") + ",\n";
    out += "    \"p999\": " + cohortJson(attr.p999, "    ") + "\n";
    out += "  }\n";
    out += "}\n";
    return out;
}

namespace {

/** Chrome trace color name per wake from-state: the AW states in
 *  calm colors, legacy C6 in the loudest one the palette has. */
const char *
wakeColor(cstate::CStateId s)
{
    switch (s) {
      case cstate::CStateId::C0:
        return "white";
      case cstate::CStateId::C1:
        return "good";
      case cstate::CStateId::C1E:
        return "yellow";
      case cstate::CStateId::C6A:
        return "olive";
      case cstate::CStateId::C6AE:
        return "grey";
      case cstate::CStateId::C6:
        return "terrible";
      default:
        break;
    }
    return "white";
}

} // namespace

std::string
chromeTraceJson(const TraceSeries &series)
{
    // Timestamps: microseconds relative to the series origin (the
    // trace_event format's native unit).
    const auto ts = [&](sim::Tick t) {
        // A wake episode carried over from warmup can start before
        // the origin: render a (tiny) negative timestamp.
        return num(t >= series.origin
                       ? sim::toUs(t - series.origin)
                       : -sim::toUs(series.origin - t));
    };
    std::string out = "{\n";
    out += "\"displayTimeUnit\": \"ns\",\n";
    out += sim::strprintf(
        "\"otherData\": {\"schema\": \"%s\"},\n", kTraceSchema);
    out += "\"traceEvents\": [\n";
    std::string events;
    const auto push = [&](const std::string &ev) {
        if (!events.empty())
            events += ",\n";
        events += ev;
    };
    // Process/thread naming metadata: one process per server, one
    // thread track per core, plus a balancer process for fleet
    // routing instants.
    for (unsigned s = 0; s < series.servers; ++s) {
        push(sim::strprintf(
            "{\"name\": \"process_name\", \"ph\": \"M\", "
            "\"pid\": %u, \"tid\": 0, \"ts\": 0, "
            "\"args\": {\"name\": \"server %u\"}}",
            s, s));
        for (unsigned c = 0; c < series.cores; ++c) {
            push(sim::strprintf(
                "{\"name\": \"thread_name\", \"ph\": \"M\", "
                "\"pid\": %u, \"tid\": %u, \"ts\": 0, "
                "\"args\": {\"name\": \"core %u\"}}",
                s, c, c));
        }
    }
    if (!series.routing.empty()) {
        push(sim::strprintf(
            "{\"name\": \"process_name\", \"ph\": \"M\", "
            "\"pid\": %u, \"tid\": 0, \"ts\": 0, "
            "\"args\": {\"name\": \"balancer\"}}",
            series.servers));
    }
    for (const auto &w : series.wakes) {
        push(sim::strprintf(
                 "{\"name\": \"wake %s\", \"cat\": \"wake\", "
                 "\"ph\": \"X\", \"pid\": %u, \"tid\": %u, ",
                 cstate::name(w.from), w.server, w.core) +
             "\"ts\": " + ts(w.start) +
             ", \"dur\": " + num(sim::toUs(w.end - w.start)) +
             sim::strprintf(", \"cname\": \"%s\", "
                            "\"args\": {\"from\": \"%s\"}}",
                            wakeColor(w.from),
                            cstate::name(w.from)));
    }
    for (const auto &span : series.spans) {
        push(sim::strprintf(
                 "{\"name\": \"service\", \"cat\": \"request\", "
                 "\"ph\": \"X\", \"pid\": %u, \"tid\": %u, ",
                 span.server, span.core) +
             "\"ts\": " + ts(span.serviceStart) +
             ", \"dur\": " + num(sim::toUs(span.service())) +
             sim::strprintf(
                 ", \"args\": {\"id\": %llu, ",
                 static_cast<unsigned long long>(span.id)) +
             "\"queue_us\": " + num(sim::toUs(span.queueWait())) +
             ", \"wake_us\": " + num(sim::toUs(span.wake)) +
             sim::strprintf(", \"wake_from\": \"%s\", ",
                            cstate::name(span.wakeFrom)) +
             "\"latency_us\": " + num(sim::toUs(span.latency())) +
             "}}");
    }
    for (const auto &r : series.routing) {
        push(sim::strprintf("{\"name\": \"route s%u\", "
                            "\"cat\": \"routing\", \"ph\": \"i\", "
                            "\"pid\": %u, \"tid\": 0, ",
                            r.server, series.servers) +
             "\"ts\": " + ts(r.at) + ", \"s\": \"p\"}");
    }
    out += events;
    out += "\n]\n}\n";
    return out;
}

} // namespace aw::analysis
