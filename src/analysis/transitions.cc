#include "analysis/transitions.hh"

#include <bit>

#include "sim/logging.hh"

namespace aw::analysis {

double
TransitionStats::meanLifetimeUs() const
{
    if (count == 0)
        return 0.0;
    return sim::toUs(totalLifetime) / static_cast<double>(count);
}

void
TransitionStats::observe(sim::Tick lifetime)
{
    ++count;
    totalLifetime += lifetime;
    if (lifetime > maxLifetime)
        maxLifetime = lifetime;
    const auto bucket = static_cast<std::size_t>(
        std::bit_width(static_cast<std::uint64_t>(lifetime)));
    histogram[bucket < kLifetimeBuckets ? bucket
                                        : kLifetimeBuckets - 1] += 1;
}

void
TransitionStats::merge(const TransitionStats &other)
{
    count += other.count;
    totalLifetime += other.totalLifetime;
    if (other.maxLifetime > maxLifetime)
        maxLifetime = other.maxLifetime;
    for (std::size_t i = 0; i < kLifetimeBuckets; ++i)
        histogram[i] += other.histogram[i];
}

void
TransitionAnalyzer::reset(sim::Tick now, cstate::CStateId initial)
{
    for (auto &p : _pairs)
        p = TransitionStats{};
    _tails.fill(0);
    _current = initial;
    _since = now;
    _finished = false;
}

void
TransitionAnalyzer::enter(cstate::CStateId to, sim::Tick now)
{
    if (_finished)
        sim::panic("TransitionAnalyzer: enter() after finish()");
    if (now < _since)
        sim::panic("TransitionAnalyzer: time went backwards");
    if (to == _current)
        return; // re-entry continues the open lifetime
    _pairs[pairIndex(_current, to)].observe(now - _since);
    _current = to;
    _since = now;
}

void
TransitionAnalyzer::finish(sim::Tick now)
{
    if (_finished)
        return;
    if (now < _since)
        sim::panic("TransitionAnalyzer: time went backwards");
    _tails[cstate::index(_current)] += now - _since;
    _since = now;
    _finished = true;
}

const TransitionStats &
TransitionAnalyzer::pair(cstate::CStateId from,
                         cstate::CStateId to) const
{
    return _pairs[pairIndex(from, to)];
}

std::uint64_t
TransitionAnalyzer::totalTransitions() const
{
    std::uint64_t n = 0;
    for (const auto &p : _pairs)
        n += p.count;
    return n;
}

sim::Tick
TransitionAnalyzer::tail(cstate::CStateId state) const
{
    return _tails[cstate::index(state)];
}

sim::Tick
TransitionAnalyzer::timeIn(cstate::CStateId state) const
{
    sim::Tick t = _tails[cstate::index(state)];
    for (std::size_t to = 0; to < cstate::kNumCStates; ++to)
        t += _pairs[cstate::index(state) * cstate::kNumCStates + to]
                 .totalLifetime;
    return t;
}

sim::Tick
TransitionAnalyzer::totalLifetime() const
{
    sim::Tick t = 0;
    for (const auto &p : _pairs)
        t += p.totalLifetime;
    for (const sim::Tick tail : _tails)
        t += tail;
    return t;
}

void
TransitionAnalyzer::merge(const TransitionAnalyzer &other)
{
    for (std::size_t i = 0; i < _pairs.size(); ++i)
        _pairs[i].merge(other._pairs[i]);
    for (std::size_t i = 0; i < _tails.size(); ++i)
        _tails[i] += other._tails[i];
}

} // namespace aw::analysis
