/**
 * @file
 * Streaming interval sampler: time-resolved telemetry over a
 * simulated run.
 *
 * TimelineRecorder implements server::TelemetryObserver and folds
 * the observer callbacks into fixed sim-time intervals -- per
 * interval: completed requests, achieved QPS, average package power
 * (exact energy integral over the interval), pooled p99 latency,
 * per-state residency shares and the core-time mean effective
 * frequency (the DVFS operating point integrated over every core,
 * from onFreqChange) -- emitted into a preallocated ring
 * buffer so the hot path stays allocation-free. A per-core
 * TransitionAnalyzer rides along on the same callback stream and a
 * ground-truth cross-check validates every governor observeIdle
 * feedback against the recorder's own idle-period bookkeeping.
 *
 * The recorder is strictly passive: it schedules no events and
 * draws no randomness, so a run with telemetry enabled executes
 * the exact same event stream as one without (the golden
 * byte-identity suites pin this).
 *
 * Interval semantics (pinned by tests/test_sampler.cc):
 *
 *   - intervals are [t0, t1) anchored at the measurement start;
 *     boundaries are closed lazily by the next observation, so an
 *     event exactly on a boundary lands in the *next* interval;
 *   - the final interval is emitted as a partial [t0, end) only
 *     when non-empty (a run ending exactly on a boundary emits no
 *     zero-length interval);
 *   - on overflow the ring keeps the newest `capacity` intervals
 *     and counts the overwritten ones in `dropped` (the total
 *     `emitted` keeps counting).
 *
 * Serialized form: the versioned `aw-timeline/3` CSV/JSON schema
 * (docs/TELEMETRY.md), stable like `aw-perf/1`. (/2 appended the
 * freq_ghz column to /1; /3 appended temp_c and throttled_share;
 * there is no in-place schema evolution -- see the versioning
 * policy in docs/TELEMETRY.md.)
 */

#ifndef AW_ANALYSIS_SAMPLER_HH
#define AW_ANALYSIS_SAMPLER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/transitions.hh"
#include "power/units.hh"
#include "server/telemetry.hh"
#include "sim/types.hh"

namespace aw::analysis {

/** Version tag of the timeline artifact schema. Changing the CSV
 *  columns or JSON keys is a schema change: bump this and
 *  docs/TELEMETRY.md together. */
inline constexpr const char *kTimelineSchema = "aw-timeline/3";

/**
 * Sampler knobs.
 */
struct TimelineConfig
{
    /** Fixed interval length (sim seconds); must be > 0. */
    double intervalSeconds = 0.01;

    /** Ring capacity in intervals: the newest `capacity` samples
     *  are retained, older ones are overwritten and counted as
     *  dropped. Must be > 0. */
    std::size_t capacity = 4096;

    /** Keep each interval's raw latency samples in the series so a
     *  fleet fold can pool exact per-interval percentiles. */
    bool retainLatencies = false;
};

/**
 * One closed interval [t0, t1).
 */
struct IntervalSample
{
    std::uint64_t index = 0; //!< interval number since stats start
    sim::Tick t0 = 0;        //!< absolute sim time
    sim::Tick t1 = 0;

    std::uint64_t requests = 0;
    double powerW = 0.0; //!< mean package power (cores + uncore)
    double p99Us = 0.0;  //!< pooled p99 server latency (0 if none)
    std::array<double, cstate::kNumCStates> residency{};

    /** Core-time mean effective frequency (GHz): the operating
     *  point each core last announced via onFreqChange, integrated
     *  over the interval across all cores (idle time included --
     *  this is the P-state the core would execute at, not a
     *  utilization-weighted clock). */
    double freqGhz = 0.0;

    /** Junction temperature (deg C) at the interval close: the last
     *  value the cap subsystem's RC thermal model announced via
     *  onTemperature. 0 while the thermal model is off. */
    double tempC = 0.0;

    /** Share of the interval a power-cap/thermal throttle was in
     *  effect (onCapThrottle edges integrated over the interval).
     *  0 while the cap subsystem is off. */
    double throttledShare = 0.0;

    /** Completions per second over the interval. */
    double achievedQps() const
    {
        const double sec = sim::toSec(t1 - t0);
        return sec > 0.0 ? static_cast<double>(requests) / sec : 0.0;
    }
};

/**
 * A recorded timeline: the retained samples plus the run-wide
 * transition map and idle ground-truth counters.
 */
struct TimelineSeries
{
    sim::Tick origin = 0;   //!< measurement start (t0_s zero point)
    sim::Tick interval = 0; //!< configured interval (ticks)
    unsigned cores = 0;

    std::uint64_t emitted = 0; //!< intervals closed over the run
    std::uint64_t dropped = 0; //!< overwritten by ring overflow

    /** Oldest retained to newest. */
    std::vector<IntervalSample> samples;

    /** Per-interval latency samples (sorted), parallel to samples;
     *  empty unless TimelineConfig::retainLatencies. */
    std::vector<std::vector<double>> latencies;

    /** Transition map folded over every core. */
    TransitionAnalyzer transitions;

    /** @{ Governor observeIdle ground truth: every observation is
     *  checked against the recorder's own idle-start bookkeeping. */
    std::uint64_t idleObservations = 0;
    sim::Tick idleObservedTotal = 0;
    std::uint64_t idleObservationMismatches = 0;
    /** @} */
};

/**
 * The observer: attach to a ServerSim before run(); read series()
 * after.
 */
class TimelineRecorder final : public server::TelemetryObserver
{
  public:
    /** @param cores  number of cores the observed server runs. */
    TimelineRecorder(const TimelineConfig &cfg, unsigned cores);

    /** @{ TelemetryObserver. */
    void onMeasurementStart(sim::Tick now) override;
    void onMeasurementEnd(sim::Tick now) override;
    void onCStateEnter(unsigned core, sim::Tick now,
                       cstate::CStateId state) override;
    void onCorePower(unsigned core, sim::Tick now,
                     power::Watts watts) override;
    void onUncorePower(sim::Tick now, power::Watts watts) override;
    void onFreqChange(unsigned core, sim::Tick now,
                      double hz) override;
    void onTemperature(sim::Tick now, double celsius) override;
    void onCapThrottle(sim::Tick now, std::size_t level_cap,
                       double forced_idle_share,
                       bool throttled) override;
    void onIdleStart(unsigned core, sim::Tick now) override;
    void onIdleObserved(unsigned core, sim::Tick now,
                        sim::Tick idle) override;
    void onComplete(unsigned core, std::uint64_t id, sim::Tick now,
                    double latency_us) override;
    /** @} */

    /** The recorded timeline; valid after onMeasurementEnd. */
    const TimelineSeries &series() const;

    /** Core @p core's transition map (valid after the run). */
    const TransitionAnalyzer &coreTransitions(unsigned core) const;

  private:
    /** Attribute core @p core's elapsed residency/energy up to
     *  @p now (boundaries must already be closed). */
    void accrueCore(unsigned core, sim::Tick now);
    void accrueUncore(sim::Tick now);
    void accrueThrottle(sim::Tick now);

    /** Close every interval boundary <= @p now. */
    void advanceTo(sim::Tick now);

    /** Close the current interval at @p t1 and emit it. */
    void closeInterval(sim::Tick t1);

    struct CoreTrack
    {
        cstate::CStateId state = cstate::CStateId::C0;
        sim::Tick last = 0; //!< accrued-up-to timestamp
        power::Watts power = 0.0;
        double freqHz = 0.0; //!< last announced operating point
        sim::Tick idleStart = sim::kMaxTick;
    };

    sim::Tick _interval = 0;
    std::size_t _capacity = 0;
    bool _retainLatencies = false;

    std::vector<CoreTrack> _cores;
    std::vector<TransitionAnalyzer> _analyzers;
    power::Watts _uncorePower = 0.0;
    sim::Tick _uncoreLast = 0;

    /** @{ Cap subsystem tracks (quiet while it is disabled). */
    double _tempC = 0.0;       //!< last announced temperature
    bool _throttled = false;   //!< current throttle state
    sim::Tick _throttleLast = 0;
    sim::Tick _throttleTicks = 0; //!< current-interval throttled time
    /** @} */

    /** @{ Current-interval accumulators. */
    sim::Tick _intervalStart = 0;
    sim::Tick _intervalEnd = 0;
    std::array<sim::Tick, cstate::kNumCStates> _stateTicks{};
    double _energyJ = 0.0;
    double _freqGhzSec = 0.0; //!< freq x core-time integral
    std::uint64_t _requests = 0;
    std::vector<double> _latencies; //!< scratch, capacity reused
    /** @} */

    /** @{ Ring of retained samples. */
    std::vector<IntervalSample> _ring;
    std::vector<std::vector<double>> _ringLatencies;
    std::uint64_t _emitted = 0;
    /** @} */

    sim::Tick _origin = 0;
    bool _measuring = false;
    bool _done = false;

    std::uint64_t _idleObservations = 0;
    sim::Tick _idleObservedTotal = 0;
    std::uint64_t _idleObservationMismatches = 0;

    TimelineSeries _series;
};

/**
 * Fold per-server timelines into one fleet timeline: requests and
 * power sum, residency is core-weighted, p99 is pooled exactly from
 * the retained per-interval latencies (every part must have been
 * recorded with retainLatencies), transition maps merge. All parts
 * must share the same interval grid.
 */
TimelineSeries
foldTimelines(const std::vector<TimelineSeries> &parts);

/** @{ aw-timeline/3 rendering. The CSV column schema:
 *
 *   interval,t0_s,t1_s,requests,achieved_qps,power_w,p99_us,
 *   res_c0,res_c1,res_c1e,res_c6a,res_c6ae,res_c6,freq_ghz,
 *   temp_c,throttled_share
 *
 *  timelineCsv() prefixes the `# aw-timeline/3` schema line;
 *  timestamps are seconds relative to the series origin, numbers
 *  render with the schedule-independent "%.10g". */
std::string timelineCsvHeader();
std::string timelineCsvRow(const TimelineSeries &series,
                           const IntervalSample &sample);
std::string timelineCsv(const TimelineSeries &series);

/** JSON fragments ("[...]" arrays) reused by the sweep emitters. */
std::string timelineIntervalsJson(const TimelineSeries &series);
std::string timelineTransitionsJson(const TransitionAnalyzer &map);

/** A standalone JSON document for one series (awsim --timeline-json). */
std::string timelineJson(const TimelineSeries &series,
                         const std::string &label);
/** @} */

} // namespace aw::analysis

#endif // AW_ANALYSIS_SAMPLER_HH
