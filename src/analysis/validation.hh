/**
 * @file
 * Power-model validation (Sec 6.3): compare the analytical model's
 * average-power estimate against the "measured" (simulated energy
 * meter) value for a run, and report accuracy.
 */

#ifndef AW_ANALYSIS_VALIDATION_HH
#define AW_ANALYSIS_VALIDATION_HH

#include <string>
#include <vector>

#include "analysis/power_model.hh"
#include "server/server_sim.hh"

namespace aw::analysis {

/** One validation data point. */
struct ValidationPoint
{
    std::string workload;
    double qps = 0.0;
    power::Watts measured = 0.0;
    power::Watts estimated = 0.0;

    /** Accuracy in percent: 100 * (1 - |est - meas| / meas). */
    double accuracyPercent() const;
};

/** Summary over a workload's sweep. */
struct ValidationSummary
{
    std::string workload;
    std::vector<ValidationPoint> points;

    double meanAccuracyPercent() const;
    double worstAccuracyPercent() const;
};

/**
 * Validate the analytical model against one run result.
 */
ValidationPoint validateRun(const CStatePowerModel &model,
                            const server::RunResult &run);

/**
 * Run a config across a workload's rate levels and validate each
 * point.
 */
ValidationSummary
validateWorkload(const server::ServerConfig &cfg,
                 const workload::WorkloadProfile &profile);

} // namespace aw::analysis

#endif // AW_ANALYSIS_VALIDATION_HH
