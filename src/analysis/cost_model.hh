/**
 * @file
 * Datacenter cost model (Sec 7.6 / Table 5): operational savings
 * from lower average CPU power, scaled by fleet size and PUE.
 */

#ifndef AW_ANALYSIS_COST_MODEL_HH
#define AW_ANALYSIS_COST_MODEL_HH

#include "power/units.hh"

namespace aw::analysis {

/**
 * Fleet-level energy cost accounting.
 */
class CostModel
{
  public:
    struct Params
    {
        /** Electricity price ($/kWh); paper uses $0.125. */
        double usdPerKwh = 0.125;

        /** Power usage effectiveness multiplier (1.0 = IT power
         *  only; savings grow proportionally to PUE). */
        double pue = 1.0;

        /** Fleet size (paper: per 100K servers). */
        double servers = 100e3;

        /** CPUs (sockets) per server. */
        double socketsPerServer = 1.0;
    };

    explicit CostModel(Params params) : _params(params) {}

    CostModel() : CostModel(Params{}) {}

    const Params &params() const { return _params; }

    /** Seconds in a (non-leap) year. */
    static constexpr double kSecondsPerYear = 365.0 * 24 * 3600;

    /** Dollars per joule at the configured price and PUE. */
    double
    usdPerJoule() const
    {
        return _params.usdPerKwh / 3.6e6 * _params.pue;
    }

    /**
     * Yearly cost of running one CPU at @p avg_power continuously.
     */
    double
    yearlyCostUsd(power::Watts avg_power) const
    {
        return avg_power * kSecondsPerYear * usdPerJoule();
    }

    /**
     * Table 5: yearly fleet savings (in dollars) from reducing the
     * average CPU power from @p baseline to @p with_aw.
     */
    double
    yearlySavingsUsd(power::Watts baseline,
                     power::Watts with_aw) const
    {
        const double per_cpu =
            yearlyCostUsd(baseline) - yearlyCostUsd(with_aw);
        return per_cpu * _params.servers * _params.socketsPerServer;
    }

  private:
    Params _params;
};

} // namespace aw::analysis

#endif // AW_ANALYSIS_COST_MODEL_HH
