/**
 * @file
 * The paper's analytical core-power model (Sec 6.2, Eqs. 1-4).
 *
 * Average core power is the residency-weighted sum of per-state
 * powers. The AgileWatts estimate re-maps the C1/C1E residencies
 * onto C6A/C6AE, after scaling the residencies for (i) the ~1%
 * power-gate frequency loss weighted by the workload's frequency
 * scalability and (ii) the extra ~100 ns per C-state transition.
 */

#ifndef AW_ANALYSIS_POWER_MODEL_HH
#define AW_ANALYSIS_POWER_MODEL_HH

#include "cstate/residency.hh"
#include "power/units.hh"
#include "server/core_sim.hh"
#include "sim/types.hh"

namespace aw::analysis {

/**
 * Analytical C-state power model.
 */
class CStatePowerModel
{
  public:
    explicit CStatePowerModel(server::StatePowers powers)
        : _powers(powers)
    {}

    const server::StatePowers &powers() const { return _powers; }

    /**
     * Eq. 2: baseline average core power from residencies.
     * C0 is charged at the active P1 power.
     */
    power::Watts
    baselineAvgPower(const cstate::ResidencySnapshot &r) const;

    /**
     * The residency re-mapping of Sec 6.2: replace C1 -> C6A and
     * C1E -> C6AE, inflate C0 by the frequency-degradation term and
     * charge the extra transition latency against the idle shares.
     *
     * @param r                    baseline residencies
     * @param scalability          workload frequency scalability
     *                             (Fig 8d), in [0, 1]
     * @param transitions_per_sec  C-state transitions per second
     */
    cstate::ResidencySnapshot
    remapForAw(const cstate::ResidencySnapshot &r, double scalability,
               double transitions_per_sec) const;

    /** Eq. 3: AW average core power from re-mapped residencies. */
    power::Watts
    awAvgPower(const cstate::ResidencySnapshot &remapped) const;

    /**
     * Eq. 4 (Turbo enabled): power savings from replacing C1/C1E
     * with C6A/C6AE, relative to a *measured* baseline average
     * power (RAPL in the paper, the energy meter here).
     *
     * @return savings fraction in [0, 1).
     */
    double
    awSavingsVsMeasured(const cstate::ResidencySnapshot &r,
                        power::Watts measured_avg_power) const;

    /**
     * Eq. 1: the motivational upper bound -- savings if C1 time
     * became C6-power time with no transition cost.
     */
    double
    idealDeepStateSavings(const cstate::ResidencySnapshot &r) const;

    /** The extra transition latency of C6A/C6AE over C1/C1E. */
    static constexpr sim::Tick kAwTransitionDelta =
        100 * sim::kTicksPerNs;

  private:
    power::Watts statePower(cstate::CStateId id) const;

    server::StatePowers _powers;
};

/**
 * AW latency-degradation model (Fig 8c): worst case assumes one
 * C-state transition per query; expected case uses the observed
 * transition rate.
 */
struct LatencyDegradation
{
    double worstCaseServerFrac = 0.0;
    double expectedServerFrac = 0.0;
    double worstCaseE2eFrac = 0.0;
    double expectedE2eFrac = 0.0;
};

/**
 * @param avg_latency_us      baseline server-side average latency
 * @param avg_service_us      mean service time (frequency-scaled part)
 * @param network_us          client-side network constant
 * @param scalability         workload frequency scalability [0,1]
 * @param transitions_per_req observed transitions per request
 */
LatencyDegradation
awLatencyDegradation(double avg_latency_us, double avg_service_us,
                     double network_us, double scalability,
                     double transitions_per_req);

} // namespace aw::analysis

#endif // AW_ANALYSIS_POWER_MODEL_HH
