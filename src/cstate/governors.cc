#include "cstate/governors.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aw::cstate {

// ------------------------------------------------------ TeoGovernor

TeoGovernor::TeoGovernor(CStateConfig config)
    : GovernorPolicy(std::move(config)),
      _bins(fitTable().count(), 0)
{}

void
TeoGovernor::observeIdle(sim::Tick idle)
{
    const auto &fit = fitTable();
    if (fit.count() == 0)
        return;
    // The state that would have been the right call for this
    // interval: deepest whose target residency it covers (bin 0 --
    // the shallowest -- catches everything shorter).
    std::size_t bin = 0;
    for (std::size_t i = 0; i < fit.count(); ++i) {
        if (fit.target(i) <= idle)
            bin = i;
    }
    for (auto &b : _bins)
        b -= b / kDecayDiv;
    _bins[bin] += kPulse;
}

CStateId
TeoGovernor::select(sim::Tick now)
{
    (void)now;
    const auto &fit = fitTable();
    if (fit.count() == 0)
        return CStateId::C0;
    std::uint64_t total = 0;
    for (const auto b : _bins)
        total += b;
    if (total == 0)
        return fit.state(0); // no history yet: be conservative

    // Deepest state whose own-or-deeper bins hold at least half the
    // retained history; the mass in shallower bins is the recent
    // "intercept" evidence vetoing a deeper entry.
    std::uint64_t deep_mass = 0;
    for (std::size_t i = fit.count(); i-- > 0;) {
        deep_mass += _bins[i];
        if (2 * deep_mass >= total)
            return fit.state(i);
    }
    return fit.state(0);
}

void
TeoGovernor::reset()
{
    std::fill(_bins.begin(), _bins.end(), 0);
}

std::unique_ptr<GovernorPolicy>
TeoGovernor::clone() const
{
    return std::make_unique<TeoGovernor>(config());
}

// --------------------------------------------------- LadderGovernor

LadderGovernor::LadderGovernor(CStateConfig config)
    : GovernorPolicy(std::move(config))
{}

CStateId
LadderGovernor::select(sim::Tick now)
{
    (void)now;
    const auto &fit = fitTable();
    if (fit.count() == 0)
        return CStateId::C0;
    return fit.state(_rung);
}

void
LadderGovernor::observeIdle(sim::Tick idle)
{
    const auto &fit = fitTable();
    if (fit.count() == 0)
        return;
    if (idle >= fit.target(_rung)) {
        if (++_hits >= kPromoteHits) {
            _hits = 0;
            if (_rung + 1 < fit.count())
                ++_rung;
        }
    } else {
        _hits = 0;
        if (_rung > 0)
            --_rung;
    }
}

void
LadderGovernor::reset()
{
    _rung = 0;
    _hits = 0;
}

std::unique_ptr<GovernorPolicy>
LadderGovernor::clone() const
{
    return std::make_unique<LadderGovernor>(config());
}

// --------------------------------------------------- StaticGovernor

StaticGovernor::StaticGovernor(CStateConfig config,
                               const std::string &state_arg)
    : GovernorPolicy(std::move(config)), _state(CStateId::C0),
      _arg(state_arg)
{
    const auto &cfg = this->config();
    if (state_arg == "deepest") {
        _state = cfg.deepestEnabled();
    } else if (state_arg == "shallowest") {
        _state = cfg.shallowestEnabled();
    } else if (state_arg.empty()) {
        sim::fatal("static governor needs a state, e.g. "
                   "'static:C6' or 'static:deepest'");
    } else {
        CStateId id;
        if (!cstateFromName(state_arg, id))
            sim::fatal("static governor: unknown C-state '%s' "
                       "(C1|C1E|C6A|C6AE|C6|deepest|shallowest)",
                       state_arg.c_str());
        if (id != CStateId::C0 && !cfg.enabled(id))
            sim::fatal("static:%s requires %s enabled, but the "
                       "C-state config is %s",
                       name(id), name(id), cfg.describe().c_str());
        _state = id;
    }
}

std::string
StaticGovernor::spec() const
{
    return "static:" + _arg;
}

CStateId
StaticGovernor::select(sim::Tick now)
{
    (void)now;
    return _state;
}

std::unique_ptr<GovernorPolicy>
StaticGovernor::clone() const
{
    return std::make_unique<StaticGovernor>(config(), _arg);
}

// --------------------------------------------------- OracleGovernor

CStateId
OracleGovernor::select(sim::Tick now)
{
    if (!_oracle)
        sim::panic("oracle governor selected with no foreknowledge "
                   "installed (host must call setOracle())");
    const sim::Tick true_idle = _oracle(now);
    if (!_cost)
        return _lastChoice = deepestFitting(true_idle);

    // Least estimated energy over the known interval; ties break to
    // the shallower state (cheaper wake for free). C0 -- polling at
    // active power with an instant wake -- is a real candidate: for
    // an idle shorter than even C1's transition flows, not idling
    // at all is the cheapest choice.
    CStateId best = CStateId::C0;
    double best_energy = _cost(best, true_idle);
    for (const auto id : _states) {
        const double energy = _cost(id, true_idle);
        if (energy < best_energy) {
            best = id;
            best_energy = energy;
        }
    }
    return _lastChoice = best;
}

std::unique_ptr<GovernorPolicy>
OracleGovernor::clone() const
{
    // The clairvoyant callback is per-core state the host installs
    // on each clone; never share it.
    return std::make_unique<OracleGovernor>(config());
}

// ------------------------------------------------- GovernorRegistry

GovernorSpec
parseGovernorSpec(const std::string &spec)
{
    GovernorSpec parsed;
    const auto colon = spec.find(':');
    parsed.kind = spec.substr(0, colon);
    if (colon != std::string::npos)
        parsed.arg = spec.substr(colon + 1);
    if (parsed.kind.empty())
        sim::fatal("empty governor spec");
    return parsed;
}

namespace {

/** Argless kinds reject a stray ":arg" instead of silently running
 *  unparameterized under a mislabeled spec. */
void
requireNoArg(const char *kind, const std::string &arg)
{
    if (!arg.empty())
        sim::fatal("governor '%s' takes no argument (got '%s:%s')",
                   kind, kind, arg.c_str());
}

} // namespace

GovernorRegistry::GovernorRegistry()
{
    add("menu", "menu-style predictor (default)",
        [](const std::string &arg, const CStateConfig &config) {
            requireNoArg("menu", arg);
            return std::make_unique<MenuGovernor>(config);
        });
    add("teo", "timer-events-oriented recent-intercept bins",
        [](const std::string &arg, const CStateConfig &config) {
            requireNoArg("teo", arg);
            return std::make_unique<TeoGovernor>(config);
        });
    add("ladder", "step up on consecutive hits, down on a miss",
        [](const std::string &arg, const CStateConfig &config) {
            requireNoArg("ladder", arg);
            return std::make_unique<LadderGovernor>(config);
        });
    add("static",
        "always static:<state> (C1|...|C6|deepest|shallowest)",
        [](const std::string &arg, const CStateConfig &config) {
            return std::make_unique<StaticGovernor>(config, arg);
        });
    add("oracle", "clairvoyant upper bound (single-server only)",
        [](const std::string &arg, const CStateConfig &config) {
            requireNoArg("oracle", arg);
            return std::make_unique<OracleGovernor>(config);
        });
}

GovernorRegistry &
GovernorRegistry::instance()
{
    static GovernorRegistry registry;
    return registry;
}

void
GovernorRegistry::add(const std::string &kind,
                      const std::string &summary, Factory factory)
{
    for (const auto &k : _kinds)
        if (k == kind)
            sim::fatal("governor kind '%s' registered twice",
                       kind.c_str());
    _kinds.push_back(kind);
    _entries.push_back(Entry{summary, std::move(factory)});
}

std::unique_ptr<GovernorPolicy>
GovernorRegistry::make(const std::string &spec,
                       const CStateConfig &config) const
{
    const auto parsed = parseGovernorSpec(spec);
    for (std::size_t i = 0; i < _kinds.size(); ++i)
        if (_kinds[i] == parsed.kind)
            return _entries[i].factory(parsed.arg, config);
    sim::fatal("unknown governor '%s' (%s)", spec.c_str(),
               describeKinds().c_str());
}

std::string
GovernorRegistry::summary(const std::string &kind) const
{
    for (std::size_t i = 0; i < _kinds.size(); ++i)
        if (_kinds[i] == kind)
            return _entries[i].summary;
    return "";
}

std::string
GovernorRegistry::describeKinds() const
{
    std::string out;
    for (const auto &kind : _kinds) {
        if (!out.empty())
            out += '|';
        out += kind;
        if (kind == "static")
            out += ":<state>";
    }
    return out;
}

std::unique_ptr<GovernorPolicy>
makeGovernor(const std::string &spec, const CStateConfig &config)
{
    return GovernorRegistry::instance().make(spec, config);
}

const std::vector<std::string> &
governorKinds()
{
    return GovernorRegistry::instance().kinds();
}

} // namespace aw::cstate
