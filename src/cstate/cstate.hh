/**
 * @file
 * C-state identifiers and descriptors: the per-state attributes of
 * Table 1 (latency, target residency, power) and Table 2 (component
 * states), for both the legacy Skylake hierarchy and AgileWatts'
 * C6A/C6AE.
 */

#ifndef AW_CSTATE_CSTATE_HH
#define AW_CSTATE_CSTATE_HH

#include <array>
#include <cstdint>
#include <string>

#include "power/units.hh"
#include "sim/types.hh"

namespace aw::cstate {

/**
 * Core C-states. Order encodes depth: a numerically larger enum is
 * a deeper (lower-power) state. C6A/C6AE slot between C1E and C6 in
 * depth-of-savings but replace C1/C1E in the AW configuration.
 */
enum class CStateId : std::uint8_t
{
    C0 = 0,   //!< active
    C1,       //!< clock-gated (halt)
    C1E,      //!< clock-gated at minimum voltage/frequency
    C6A,      //!< AW: power-gated w/ in-place retention (at P1)
    C6AE,     //!< AW: C6A + minimum voltage/frequency
    C6,       //!< power-gated, caches flushed, context in S/R SRAM
    NumStates,
};

constexpr std::size_t kNumCStates =
    static_cast<std::size_t>(CStateId::NumStates);

/** Index helper for arrays over C-states. */
constexpr std::size_t
index(CStateId id)
{
    return static_cast<std::size_t>(id);
}

/** Printable name ("C0", "C1E", "C6A", ...). */
const char *name(CStateId id);

/** Inverse of name(): parse a C-state by its printable name
 *  (case-insensitive). Returns false on unknown names. */
bool cstateFromName(const std::string &name, CStateId &out);

/** @{ Table 2 component-state attributes. */
enum class ClockState { Running, Stopped };
enum class PllState { On, Off };
enum class CacheState { Coherent, Flushed };
enum class VoltageState
{
    Active,        //!< nominal operating voltage
    MinVF,         //!< minimum operational voltage/frequency (Pn)
    PgRetActive,   //!< PG'd units + retention + active caches (C6A)
    PgRetMinVF,    //!< PG'd units + retention + min V/F (C6AE)
    ShutOff,       //!< core rail at 0V (C6)
};
enum class ContextState
{
    Maintained,    //!< live in flops
    InPlaceSR,     //!< retained in place across power gating (AW)
    SramSR,        //!< saved to the uncore S/R SRAM (C6)
};

const char *name(ClockState s);
const char *name(PllState s);
const char *name(CacheState s);
const char *name(VoltageState s);
const char *name(ContextState s);
/** @} */

/**
 * Static description of one C-state.
 */
struct CStateDescriptor
{
    CStateId id = CStateId::C0;

    /** @{ Table 2 columns. */
    ClockState clocks = ClockState::Running;
    PllState pll = PllState::On;
    CacheState caches = CacheState::Coherent;
    VoltageState voltage = VoltageState::Active;
    ContextState context = ContextState::Maintained;
    /** @} */

    /**
     * Worst-case software+hardware transition time (entry + exit to
     * first instruction), as reported in Table 1.
     */
    sim::Tick transitionTime = 0;

    /** Minimum residency for the transition to pay off (Table 1). */
    sim::Tick targetResidency = 0;

    /** Core power while resident in this state (Table 1). */
    power::Watts corePower = 0.0;

    /** True if the state runs (or idles) at the Pn voltage point. */
    bool atPn = false;

    /** True for the AgileWatts states. */
    bool isAgileWatts = false;

    /** Depth ordering key: higher saves more power. */
    int depth = 0;
};

/**
 * The descriptor set for the modeled Skylake server core, with the
 * paper's Table 1 constants. AW state power is filled from the PPA
 * model's midpoints by core::awCStateDescriptors(); the defaults
 * here carry the paper's headline ~0.3 W / ~0.23 W.
 */
const CStateDescriptor &descriptor(CStateId id);

/** All descriptors, indexed by index(id). */
const std::array<CStateDescriptor, kNumCStates> &allDescriptors();

/** Power of the active state at the two frequency points. */
constexpr power::Watts kC0PowerP1 = 4.0;
constexpr power::Watts kC0PowerPn = 1.0;

} // namespace aw::cstate

#endif // AW_CSTATE_CSTATE_HH
