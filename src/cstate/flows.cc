#include "cstate/flows.hh"

#include "sim/logging.hh"

namespace aw::cstate {

const char *
name(LegacyPhase p)
{
    switch (p) {
      case LegacyPhase::C0: return "C0";
      case LegacyPhase::C1ClockGate: return "c1.clock_gate";
      case LegacyPhase::C1Resident: return "c1.resident";
      case LegacyPhase::C1SnoopServe: return "c1.snoop_serve";
      case LegacyPhase::C1ClockUngate: return "c1.clock_ungate";
      case LegacyPhase::C6SaveContext: return "c6.save_context";
      case LegacyPhase::C6FlushCaches: return "c6.flush";
      case LegacyPhase::C6GateAndOff: return "c6.gate_and_off";
      case LegacyPhase::C6Resident: return "c6.resident";
      case LegacyPhase::C6PowerOn: return "c6.power_on";
      case LegacyPhase::C6RestoreContext: return "c6.restore";
      case LegacyPhase::C6Resume: return "c6.resume";
      default: return "?";
    }
}

LegacyFlowEngine::LegacyFlowEngine(uarch::PrivateCaches &caches,
                                   const uarch::CoreContext &context,
                                   const TransitionEngine &engine)
    : _caches(caches), _context(context), _engine(engine)
{
}

void
LegacyFlowEngine::advance(sim::Simulator &simr, LegacyPhase next)
{
    _trace.push_back(PhaseRecord{_phase, _phaseStart, simr.now()});
    _phase = next;
    _phaseStart = simr.now();
}

void
LegacyFlowEngine::step(sim::Simulator &simr, LegacyPhase current,
                       sim::Tick dur, LegacyPhase next,
                       std::function<void()> cont)
{
    if (_phase != current) {
        sim::panic("LegacyFlowEngine: expected phase %s, in %s",
                   name(current), name(_phase));
    }
    simr.scheduleIn(dur, [this, &simr, next,
                          cont = std::move(cont)]() mutable {
        advance(simr, next);
        if (cont)
            cont();
    });
}

void
LegacyFlowEngine::runC1Entry(sim::Simulator &simr,
                             sim::Frequency freq,
                             std::function<void()> done)
{
    if (_phase != LegacyPhase::C0)
        sim::panic("runC1Entry from phase %s", name(_phase));
    _phaseStart = simr.now();
    advance(simr, LegacyPhase::C1ClockGate);
    const sim::Tick gate =
        _engine.hardwareLatency(CStateId::C1, freq).entry;
    _caches.setState(uarch::CacheDomainState::ClockGated);
    step(simr, LegacyPhase::C1ClockGate, gate,
         LegacyPhase::C1Resident, std::move(done));
}

void
LegacyFlowEngine::runC1Exit(sim::Simulator &simr,
                            sim::Frequency freq,
                            std::function<void()> done)
{
    if (_phase != LegacyPhase::C1Resident)
        sim::panic("runC1Exit from phase %s", name(_phase));
    advance(simr, LegacyPhase::C1ClockUngate);
    const sim::Tick ungate =
        _engine.hardwareLatency(CStateId::C1, freq).exit;
    _caches.setState(uarch::CacheDomainState::Active);
    step(simr, LegacyPhase::C1ClockUngate, ungate, LegacyPhase::C0,
         std::move(done));
}

void
LegacyFlowEngine::runC1Snoop(sim::Simulator &simr,
                             sim::Frequency freq,
                             sim::Tick serve_time,
                             std::function<void()> done)
{
    if (_phase != LegacyPhase::C1Resident)
        sim::panic("runC1Snoop from phase %s", name(_phase));
    advance(simr, LegacyPhase::C1SnoopServe);
    // Clock-ungate L1/L2 (2 cycles), serve, re-gate (2 cycles).
    const sim::Tick window =
        freq.cycles(4) + serve_time;
    step(simr, LegacyPhase::C1SnoopServe, window,
         LegacyPhase::C1Resident, std::move(done));
}

void
LegacyFlowEngine::runC6Entry(sim::Simulator &simr,
                             sim::Frequency freq,
                             std::function<void()> done)
{
    if (_phase != LegacyPhase::C0)
        sim::panic("runC6Entry from phase %s", name(_phase));
    _phaseStart = simr.now();
    const auto breakdown = _engine.c6EntryBreakdown(freq);
    advance(simr, LegacyPhase::C6SaveContext);
    step(simr, LegacyPhase::C6SaveContext, breakdown.contextSave,
         LegacyPhase::C6FlushCaches,
         [this, &simr, breakdown, done = std::move(done)]() mutable {
        _caches.flush();
        step(simr, LegacyPhase::C6FlushCaches, breakdown.flush,
             LegacyPhase::C6GateAndOff,
             [this, &simr, breakdown,
              done = std::move(done)]() mutable {
            step(simr, LegacyPhase::C6GateAndOff,
                 breakdown.controller, LegacyPhase::C6Resident,
                 std::move(done));
        });
    });
}

void
LegacyFlowEngine::runC6Exit(sim::Simulator &simr,
                            sim::Frequency freq,
                            std::function<void()> done)
{
    if (_phase != LegacyPhase::C6Resident)
        sim::panic("runC6Exit from phase %s", name(_phase));
    const auto breakdown = _engine.c6ExitBreakdown(freq);
    advance(simr, LegacyPhase::C6PowerOn);
    step(simr, LegacyPhase::C6PowerOn, breakdown.hwWake,
         LegacyPhase::C6RestoreContext,
         [this, &simr, breakdown, done = std::move(done)]() mutable {
        step(simr, LegacyPhase::C6RestoreContext,
             breakdown.contextRestore + breakdown.microcodeReinit,
             LegacyPhase::C6Resume,
             [this, &simr, breakdown,
              done = std::move(done)]() mutable {
            _caches.setState(uarch::CacheDomainState::Active);
            step(simr, LegacyPhase::C6Resume, breakdown.resumeTail,
                 LegacyPhase::C0, std::move(done));
        });
    });
}

} // namespace aw::cstate
