/**
 * @file
 * C-state transition latency engine.
 *
 * Derives per-state entry and exit latencies from the underlying
 * microarchitecture models (cache flush time, context save/restore,
 * DVFS ramp, PLL relock, power-gate wake) rather than hard-coding
 * them; the Table 1 envelope numbers then fall out of the models and
 * the unit tests assert they do.
 *
 * Latency is split into:
 *  - software overhead: the MWAIT/OS entry path and the interrupt
 *    delivery/resume path, shared across states of the same class;
 *  - hardware latency: the state-specific flows of Fig 3 / Fig 6.
 */

#ifndef AW_CSTATE_TRANSITION_HH
#define AW_CSTATE_TRANSITION_HH

#include <optional>

#include "cstate/cstate.hh"
#include "sim/types.hh"
#include "uarch/cache.hh"
#include "uarch/context.hh"

namespace aw::cstate {

/** Entry/exit latency pair (software + hardware combined). */
struct TransitionLatency
{
    sim::Tick entry = 0;
    sim::Tick exit = 0;

    sim::Tick total() const { return entry + exit; }
};

/**
 * Hardware latencies of the AgileWatts states, computed by
 * core::C6aController and injected here (the cstate layer must not
 * depend on the core layer). The PMA clock is fixed, so these do not
 * vary with the core frequency.
 */
struct AwHardwareLatencies
{
    TransitionLatency c6a;
    TransitionLatency c6ae;
};

/**
 * Computes transition latencies for every C-state.
 *
 * The engine owns references to the core's cache and context models
 * and reads the *current* cache dirty fraction when computing C6
 * entry, so flush cost follows workload behaviour.
 */
class TransitionEngine
{
  public:
    /** @{ Software overheads (worst-case OS+microcode path).
     * Shallow states (C1/C6A): ~1 us each way, matching the 2 us
     * worst-case sw+hw envelope of Table 1.
     * Pn states (C1E/C6AE) add the V/F ramp: ~5 us entering (DVFS
     * to Pn) and ~3 us on the wake ramp, matching the 10 us
     * envelope. C6 adds a longer microcode/OS path (~8 us each
     * way), matching the 133 us envelope. */
    static constexpr sim::Tick kSwShallow = 1 * sim::kTicksPerUs;
    static constexpr sim::Tick kDvfsEntryRamp = 5 * sim::kTicksPerUs;
    static constexpr sim::Tick kDvfsExitRamp = 3 * sim::kTicksPerUs;
    static constexpr sim::Tick kSwC6 = 8 * sim::kTicksPerUs;
    /** @} */

    /** Power-gate controller overhead on the C6 entry path. */
    static constexpr sim::Tick kC6PgControllerOverhead =
        3 * sim::kTicksPerUs;

    /** C6 exit: power-ungate + PLL relock + reset/fuse propagation. */
    static constexpr sim::Tick kC6HwWake = 10 * sim::kTicksPerUs;

    /** C6 exit: resume-microcode tail after context restore. */
    static constexpr sim::Tick kC6ResumeTail = 2 * sim::kTicksPerUs;

    /**
     * @param caches     the core's private caches (flush source)
     * @param context    the core's retained context
     * @param aw         AgileWatts hardware latencies (omit for
     *                   legacy-only configurations)
     */
    TransitionEngine(const uarch::PrivateCaches &caches,
                     const uarch::CoreContext &context,
                     std::optional<AwHardwareLatencies> aw =
                         std::nullopt);

    /** Attach/replace the AW hardware latencies. */
    void
    setAwLatencies(const AwHardwareLatencies &aw)
    {
        _aw = aw;
    }

    bool hasAwLatencies() const { return _aw.has_value(); }

    /**
     * Full (software + hardware) latency for entering+exiting
     * @p state with the core clocked at @p freq.
     */
    TransitionLatency latency(CStateId state,
                              sim::Frequency freq) const;

    /** Hardware-only latency (no OS/microcode software path). */
    TransitionLatency hardwareLatency(CStateId state,
                                      sim::Frequency freq) const;

    /**
     * C6 hardware entry decomposition, for reporting: flush, context
     * save, controller overhead.
     */
    struct C6EntryBreakdown
    {
        sim::Tick flush = 0;
        sim::Tick contextSave = 0;
        sim::Tick controller = 0;

        sim::Tick
        total() const
        {
            return flush + contextSave + controller;
        }
    };

    C6EntryBreakdown c6EntryBreakdown(sim::Frequency freq) const;

    /** C6 hardware exit: wake + restore + microcode + resume. */
    struct C6ExitBreakdown
    {
        sim::Tick hwWake = 0;
        sim::Tick contextRestore = 0;
        sim::Tick microcodeReinit = 0;
        sim::Tick resumeTail = 0;

        sim::Tick
        total() const
        {
            return hwWake + contextRestore + microcodeReinit +
                   resumeTail;
        }
    };

    C6ExitBreakdown c6ExitBreakdown(sim::Frequency freq) const;

  private:
    const uarch::PrivateCaches &_caches;
    const uarch::CoreContext &_context;
    std::optional<AwHardwareLatencies> _aw;
};

} // namespace aw::cstate

#endif // AW_CSTATE_TRANSITION_HH
