#include "cstate/residency.hh"

#include "sim/logging.hh"

namespace aw::cstate {

std::uint64_t
ResidencySnapshot::idleTransitions() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kNumCStates; ++i) {
        if (static_cast<CStateId>(i) != CStateId::C0)
            total += entries[i];
    }
    return total;
}

double
ResidencySnapshot::totalShare() const
{
    double total = 0.0;
    for (const double s : share)
        total += s;
    return total;
}

void
ResidencyCounters::reset(sim::Tick now, CStateId initial)
{
    _time.fill(0);
    _entries.fill(0);
    _current = initial;
    _since = now;
    _start = now;
}

void
ResidencyCounters::recordEnter(CStateId state, sim::Tick now)
{
    if (now < _since)
        sim::panic("ResidencyCounters: time went backwards");
    _time[index(_current)] += now - _since;
    _current = state;
    _since = now;
    ++_entries[index(state)];
}

sim::Tick
ResidencyCounters::timeIn(CStateId state, sim::Tick now) const
{
    sim::Tick t = _time[index(state)];
    if (state == _current && now > _since)
        t += now - _since;
    return t;
}

ResidencySnapshot
ResidencyCounters::snapshot(sim::Tick now) const
{
    ResidencySnapshot snap;
    snap.window = now > _start ? now - _start : 0;
    snap.entries = _entries;
    if (snap.window == 0)
        return snap;
    for (std::size_t i = 0; i < kNumCStates; ++i) {
        const auto id = static_cast<CStateId>(i);
        snap.share[i] = static_cast<double>(timeIn(id, now)) /
                        static_cast<double>(snap.window);
    }
    return snap;
}

} // namespace aw::cstate
