#include "cstate/transition.hh"

#include "power/regulators.hh"
#include "sim/logging.hh"

namespace aw::cstate {

TransitionEngine::TransitionEngine(const uarch::PrivateCaches &caches,
                                   const uarch::CoreContext &context,
                                   std::optional<AwHardwareLatencies> aw)
    : _caches(caches), _context(context), _aw(std::move(aw))
{
}

TransitionEngine::C6EntryBreakdown
TransitionEngine::c6EntryBreakdown(sim::Frequency freq) const
{
    C6EntryBreakdown b;
    b.flush = _caches.flushTime(freq);
    b.contextSave = _context.externalTransferTime(freq);
    b.controller = kC6PgControllerOverhead;
    return b;
}

TransitionEngine::C6ExitBreakdown
TransitionEngine::c6ExitBreakdown(sim::Frequency freq) const
{
    C6ExitBreakdown b;
    b.hwWake = kC6HwWake;
    b.contextRestore = _context.externalTransferTime(freq);
    b.microcodeReinit = _context.microcodeReinitTime(freq);
    b.resumeTail = kC6ResumeTail;
    return b;
}

TransitionLatency
TransitionEngine::hardwareLatency(CStateId state,
                                  sim::Frequency freq) const
{
    TransitionLatency lat;
    switch (state) {
      case CStateId::C0:
        break;
      case CStateId::C1:
      case CStateId::C1E:
        // Clock gating/ungating: a couple of core cycles each way
        // (the C1 hardware latency is "a few nanoseconds").
        lat.entry = freq.cycles(2);
        lat.exit = freq.cycles(2);
        break;
      case CStateId::C6A:
        if (!_aw)
            sim::panic("TransitionEngine: C6A requested without AW "
                       "latencies configured");
        lat = _aw->c6a;
        break;
      case CStateId::C6AE:
        if (!_aw)
            sim::panic("TransitionEngine: C6AE requested without AW "
                       "latencies configured");
        lat = _aw->c6ae;
        break;
      case CStateId::C6:
        lat.entry = c6EntryBreakdown(freq).total();
        lat.exit = c6ExitBreakdown(freq).total();
        break;
      default:
        sim::panic("TransitionEngine: bad state %d",
                   static_cast<int>(state));
    }
    return lat;
}

TransitionLatency
TransitionEngine::latency(CStateId state, sim::Frequency freq) const
{
    TransitionLatency lat = hardwareLatency(state, freq);
    switch (state) {
      case CStateId::C0:
        break;
      case CStateId::C1:
      case CStateId::C6A:
        lat.entry += kSwShallow;
        lat.exit += kSwShallow;
        break;
      case CStateId::C1E:
      case CStateId::C6AE:
        lat.entry += kSwShallow + kDvfsEntryRamp;
        lat.exit += kSwShallow + kDvfsExitRamp;
        break;
      case CStateId::C6:
        lat.entry += kSwC6;
        lat.exit += kSwC6;
        break;
      default:
        sim::panic("TransitionEngine: bad state %d",
                   static_cast<int>(state));
    }
    return lat;
}

} // namespace aw::cstate
