#include "cstate/governor.hh"

#include <algorithm>
#include <cmath>

namespace aw::cstate {

sim::Tick
IdlePredictor::predict() const
{
    if (!_seeded)
        return 0;
    const std::size_t n = std::min(_next, kWindow);
    std::array<double, kWindow> vals{};
    for (std::size_t i = 0; i < n; ++i)
        vals[i] = static_cast<double>(_window[i]);
    std::sort(vals.begin(), vals.begin() + n);

    // Discard the largest samples while the remainder is still
    // high-variance, but keep at least half the window.
    std::size_t keep = n;
    double mean = 0.0;
    while (true) {
        double sum = 0.0, sumsq = 0.0;
        for (std::size_t i = 0; i < keep; ++i) {
            sum += vals[i];
            sumsq += vals[i] * vals[i];
        }
        mean = sum / static_cast<double>(keep);
        const double var =
            sumsq / static_cast<double>(keep) - mean * mean;
        const double stddev = std::sqrt(std::max(0.0, var));
        if (keep <= (n + 1) / 2 || keep <= 1 ||
            (mean > 0.0 && stddev / mean <= _cvThreshold)) {
            break;
        }
        --keep;
    }

    const auto typical = static_cast<sim::Tick>(mean);
    return typical < _last ? typical : _last;
}

CStateId
GovernorPolicy::deepestFitting(sim::Tick predicted_idle) const
{
    const auto states = _config.enabledStates();
    if (states.empty())
        return CStateId::C0;

    CStateId chosen = states.front();
    for (const auto id : states) {
        if (descriptor(id).targetResidency <= predicted_idle)
            chosen = id;
    }
    return chosen;
}

} // namespace aw::cstate
