#include "cstate/governor.hh"

#include <algorithm>
#include <cmath>

namespace aw::cstate {

sim::Tick
IdlePredictor::predict() const
{
    if (!_seeded)
        return 0;
    const std::size_t n = std::min(_next, kWindow);
    // observe() maintains the sorted mirror incrementally, so the
    // per-idle-period cost here is one pass of prefix sums instead
    // of a sort.
    const auto &vals = _sortedVals;

    // Discard the largest samples while the remainder is still
    // high-variance, but keep at least half the window. Prefix sums
    // make each candidate "keep" an O(1) lookup; the running sums
    // accumulate in the same index order as a direct loop over
    // vals[0..keep), so every mean/variance is the exact double the
    // naive recomputation would produce.
    std::array<double, kWindow + 1> sum{};
    std::array<double, kWindow + 1> sumsq{};
    for (std::size_t i = 0; i < n; ++i) {
        sum[i + 1] = sum[i] + vals[i];
        sumsq[i + 1] = sumsq[i] + vals[i] * vals[i];
    }

    std::size_t keep = n;
    double mean = 0.0;
    while (true) {
        mean = sum[keep] / static_cast<double>(keep);
        const double var =
            sumsq[keep] / static_cast<double>(keep) - mean * mean;
        const double stddev = std::sqrt(std::max(0.0, var));
        if (keep <= (n + 1) / 2 || keep <= 1 ||
            (mean > 0.0 && stddev / mean <= _cvThreshold)) {
            break;
        }
        --keep;
    }

    const auto typical = static_cast<sim::Tick>(mean);
    return typical < _last ? typical : _last;
}

FitTable::FitTable(const CStateConfig &config)
{
    _count = config.sortedCount();
    for (std::size_t i = 0; i < _count; ++i) {
        const CStateId id = config.sorted()[i];
        _states[i] = id;
        _targets[i] = descriptor(id).targetResidency;
        _depths[i] = descriptor(id).depth;
    }
    for (std::size_t s = 0; s < kNumCStates; ++s) {
        const int depth =
            descriptor(static_cast<CStateId>(s)).depth;
        sim::Tick first = sim::kMaxTick;
        for (std::size_t i = 0; i < _count; ++i) {
            if (_depths[i] > depth && _targets[i] < first)
                first = _targets[i];
        }
        _firstDeeper[s] = first;
    }
}

} // namespace aw::cstate
