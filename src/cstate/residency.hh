/**
 * @file
 * Per-core C-state residency accounting -- the simulator's analogue
 * of the hardware residency-reporting MSR counters the paper reads.
 */

#ifndef AW_CSTATE_RESIDENCY_HH
#define AW_CSTATE_RESIDENCY_HH

#include <array>
#include <cstdint>

#include "cstate/cstate.hh"
#include "sim/types.hh"

namespace aw::cstate {

/**
 * Residency snapshot: fraction of time per state plus transition
 * counts.
 */
struct ResidencySnapshot
{
    std::array<double, kNumCStates> share{};
    std::array<std::uint64_t, kNumCStates> entries{};
    sim::Tick window = 0;

    double
    shareOf(CStateId id) const
    {
        return share[index(id)];
    }

    std::uint64_t
    entriesOf(CStateId id) const
    {
        return entries[index(id)];
    }

    /** Total number of idle-state entries (transitions into any
     *  non-C0 state). */
    std::uint64_t idleTransitions() const;

    /** Sum of all shares (~1.0 for a complete window). */
    double totalShare() const;
};

/**
 * Running residency counters.
 *
 * recordEnter(state, now) closes the previous state's interval and
 * opens the new one; snapshot(now) reports shares over the window
 * since the last reset.
 */
class ResidencyCounters
{
  public:
    explicit ResidencyCounters(sim::Tick start = 0,
                               CStateId initial = CStateId::C0)
    {
        reset(start, initial);
    }

    /** Restart accounting at @p now in state @p initial. */
    void reset(sim::Tick now, CStateId initial = CStateId::C0);

    /** Transition into @p state at time @p now. */
    void recordEnter(CStateId state, sim::Tick now);

    /** State currently being accumulated. */
    CStateId current() const { return _current; }

    /** Time accumulated in @p state up to @p now. */
    sim::Tick timeIn(CStateId state, sim::Tick now) const;

    /** Number of entries into @p state. */
    std::uint64_t entries(CStateId state) const
    {
        return _entries[index(state)];
    }

    /** Residency shares over [start, now]. */
    ResidencySnapshot snapshot(sim::Tick now) const;

  private:
    std::array<sim::Tick, kNumCStates> _time{};
    std::array<std::uint64_t, kNumCStates> _entries{};
    CStateId _current = CStateId::C0;
    sim::Tick _since = 0;
    sim::Tick _start = 0;
};

} // namespace aw::cstate

#endif // AW_CSTATE_RESIDENCY_HH
