#include "cstate/cstate.hh"

#include <cctype>

#include "sim/logging.hh"

namespace aw::cstate {

const char *
name(CStateId id)
{
    switch (id) {
      case CStateId::C0: return "C0";
      case CStateId::C1: return "C1";
      case CStateId::C1E: return "C1E";
      case CStateId::C6A: return "C6A";
      case CStateId::C6AE: return "C6AE";
      case CStateId::C6: return "C6";
      default: return "?";
    }
}

bool
cstateFromName(const std::string &name_str, CStateId &out)
{
    std::string upper;
    upper.reserve(name_str.size());
    for (const char c : name_str)
        upper += static_cast<char>(std::toupper(
            static_cast<unsigned char>(c)));
    for (std::size_t i = 0; i < kNumCStates; ++i) {
        const auto id = static_cast<CStateId>(i);
        if (upper == name(id)) {
            out = id;
            return true;
        }
    }
    return false;
}

const char *
name(ClockState s)
{
    return s == ClockState::Running ? "Running" : "Stopped";
}

const char *
name(PllState s)
{
    return s == PllState::On ? "On" : "Off";
}

const char *
name(CacheState s)
{
    return s == CacheState::Coherent ? "Coherent" : "Flushed";
}

const char *
name(VoltageState s)
{
    switch (s) {
      case VoltageState::Active: return "Active";
      case VoltageState::MinVF: return "Min V/F";
      case VoltageState::PgRetActive: return "PG/Ret/Active";
      case VoltageState::PgRetMinVF: return "PG/Ret/Min V/F";
      case VoltageState::ShutOff: return "Shut-off";
      default: return "?";
    }
}

const char *
name(ContextState s)
{
    switch (s) {
      case ContextState::Maintained: return "Maintained";
      case ContextState::InPlaceSR: return "In-place S/R";
      case ContextState::SramSR: return "S/R SRAM";
      default: return "?";
    }
}

namespace {

std::array<CStateDescriptor, kNumCStates>
makeDescriptors()
{
    std::array<CStateDescriptor, kNumCStates> d{};

    auto &c0 = d[index(CStateId::C0)];
    c0.id = CStateId::C0;
    c0.clocks = ClockState::Running;
    c0.pll = PllState::On;
    c0.caches = CacheState::Coherent;
    c0.voltage = VoltageState::Active;
    c0.context = ContextState::Maintained;
    c0.transitionTime = 0;
    c0.targetResidency = 0;
    c0.corePower = kC0PowerP1;
    c0.depth = 0;

    auto &c1 = d[index(CStateId::C1)];
    c1.id = CStateId::C1;
    c1.clocks = ClockState::Stopped;
    c1.pll = PllState::On;
    c1.caches = CacheState::Coherent;
    c1.voltage = VoltageState::Active;
    c1.context = ContextState::Maintained;
    c1.transitionTime = sim::fromUs(2.0);
    c1.targetResidency = sim::fromUs(2.0);
    c1.corePower = 1.44;
    c1.depth = 1;

    auto &c1e = d[index(CStateId::C1E)];
    c1e.id = CStateId::C1E;
    c1e.clocks = ClockState::Stopped;
    c1e.pll = PllState::On;
    c1e.caches = CacheState::Coherent;
    c1e.voltage = VoltageState::MinVF;
    c1e.context = ContextState::Maintained;
    c1e.transitionTime = sim::fromUs(10.0);
    c1e.targetResidency = sim::fromUs(20.0);
    c1e.corePower = 0.88;
    c1e.atPn = true;
    c1e.depth = 2;

    auto &c6a = d[index(CStateId::C6A)];
    c6a.id = CStateId::C6A;
    c6a.clocks = ClockState::Stopped;
    c6a.pll = PllState::On;
    c6a.caches = CacheState::Coherent;
    c6a.voltage = VoltageState::PgRetActive;
    c6a.context = ContextState::InPlaceSR;
    // Table 1 reports the same worst-case sw+hw envelope as the
    // state it replaces (C1); the hardware-only latency is <100 ns
    // and comes from core::C6aController.
    c6a.transitionTime = sim::fromUs(2.0);
    c6a.targetResidency = sim::fromUs(2.0);
    c6a.corePower = 0.3;
    c6a.isAgileWatts = true;
    c6a.depth = 3;

    auto &c6ae = d[index(CStateId::C6AE)];
    c6ae.id = CStateId::C6AE;
    c6ae.clocks = ClockState::Stopped;
    c6ae.pll = PllState::On;
    c6ae.caches = CacheState::Coherent;
    c6ae.voltage = VoltageState::PgRetMinVF;
    c6ae.context = ContextState::InPlaceSR;
    c6ae.transitionTime = sim::fromUs(10.0);
    c6ae.targetResidency = sim::fromUs(20.0);
    c6ae.corePower = 0.23;
    c6ae.atPn = true;
    c6ae.isAgileWatts = true;
    c6ae.depth = 4;

    auto &c6 = d[index(CStateId::C6)];
    c6.id = CStateId::C6;
    c6.clocks = ClockState::Stopped;
    c6.pll = PllState::Off;
    c6.caches = CacheState::Flushed;
    c6.voltage = VoltageState::ShutOff;
    c6.context = ContextState::SramSR;
    c6.transitionTime = sim::fromUs(133.0);
    c6.targetResidency = sim::fromUs(600.0);
    c6.corePower = 0.1;
    c6.depth = 5;

    return d;
}

} // namespace

const std::array<CStateDescriptor, kNumCStates> &
allDescriptors()
{
    static const auto descriptors = makeDescriptors();
    return descriptors;
}

const CStateDescriptor &
descriptor(CStateId id)
{
    if (id >= CStateId::NumStates)
        sim::panic("descriptor: bad C-state id %d",
                   static_cast<int>(id));
    return allDescriptors()[index(id)];
}

} // namespace aw::cstate
