/**
 * @file
 * C-state configuration: which idle states the platform exposes.
 *
 * Mirrors the BIOS/OS knobs the paper's evaluation toggles
 * (disabling C6, disabling C1E, replacing C1/C1E with C6A/C6AE).
 *
 * The enabled set is precomputed depth-sorted on every set() call,
 * so the queries the idle-governance hot path issues per idle period
 * (deepest/shallowest/ordered iteration) are O(1) array reads with
 * no allocation -- set() is a handful of configuration-time calls,
 * select() runs millions of times per simulated second.
 */

#ifndef AW_CSTATE_CONFIG_HH
#define AW_CSTATE_CONFIG_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "cstate/cstate.hh"

namespace aw::cstate {

/**
 * The set of enabled idle states.
 */
class CStateConfig
{
  public:
    CStateConfig() { _enabled.fill(false); }

    /** Enable (or disable) one idle state. */
    CStateConfig &
    set(CStateId id, bool on = true)
    {
        _enabled.at(index(id)) = on;
        rebuildCache();
        return *this;
    }

    bool enabled(CStateId id) const { return _enabled.at(index(id)); }

    /** All enabled idle states, shallowest first (materialized; for
     *  iteration on hot paths prefer sorted()/sortedCount()). */
    std::vector<CStateId> enabledStates() const;

    /** @{ Allocation-free view of the enabled set, shallowest
     *  first: sorted()[0 .. sortedCount()). */
    const std::array<CStateId, kNumCStates> &sorted() const
    {
        return _sorted;
    }
    std::size_t sortedCount() const { return _count; }
    /** @} */

    /** Deepest enabled idle state (C0 if none). */
    CStateId deepestEnabled() const { return _deepest; }

    /** Shallowest enabled idle state (C0 if none). */
    CStateId shallowestEnabled() const { return _shallowest; }

    /** True if any idle state is enabled. */
    bool anyEnabled() const { return _count > 0; }

    /** True if an AgileWatts state is enabled. */
    bool usesAgileWatts() const { return _anyAw; }

    /** @{ Named presets used throughout the evaluation.
     *
     * Legacy = the Skylake hierarchy; Aw = C1/C1E replaced by
     * C6A/C6AE. The No-suffix variants mirror the paper's tuned
     * configurations (NT_No_C6 etc. combine these with the Turbo
     * flag held by server::ServerConfig). */
    static CStateConfig legacyBaseline();  //!< C1, C1E, C6
    static CStateConfig legacyNoC6();      //!< C1, C1E
    static CStateConfig legacyNoC6NoC1E(); //!< C1 only
    static CStateConfig legacyC1C6();      //!< C1, C6 (MySQL/Kafka baseline)
    static CStateConfig aw();              //!< C6A, C6AE, C6
    static CStateConfig awNoC6();          //!< C6A, C6AE
    static CStateConfig awNoC6NoC1E();     //!< C6A only
    /** @} */

    /** Human-readable list, e.g. "C1+C1E+C6". */
    std::string describe() const;

  private:
    /** Recompute the depth-sorted enabled set and the derived
     *  scalars; called on every set(). */
    void rebuildCache();

    std::array<bool, kNumCStates> _enabled;

    /** @{ Cache derived from _enabled. */
    std::array<CStateId, kNumCStates> _sorted{};
    std::size_t _count = 0;
    CStateId _deepest = CStateId::C0;
    CStateId _shallowest = CStateId::C0;
    bool _anyAw = false;
    /** @} */
};

} // namespace aw::cstate

#endif // AW_CSTATE_CONFIG_HH
