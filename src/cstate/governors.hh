/**
 * @file
 * The built-in idle-governance policies beyond "menu", and the
 * string-keyed registry that builds any policy from a spec.
 *
 * Spec grammar: `kind[:arg]`. The built-in kinds:
 *
 *   menu             menu-style predictor (the default; see
 *                    cstate/governor.hh)
 *   teo              timer-events-oriented: recent idle intervals
 *                    are binned per enabled state and the deepest
 *                    state backed by a majority of recent history
 *                    wins (models modern Linux's teo governor)
 *   ladder           step up one state after consecutive hits,
 *                    step down immediately on a miss (Linux's
 *                    periodic-tick ladder governor)
 *   static:<state>   always the named state ("static:C6",
 *                    "static:C6A", ...); `deepest`/`shallowest`
 *                    resolve against the enabled set -- the paper's
 *                    "always C6" / "always C1" endpoints
 *   oracle           clairvoyant: told the true upcoming idle
 *                    length by the simulator; the upper bound that
 *                    isolates governor error from transition cost
 *
 * New policies register a factory under a new kind (see
 * GovernorRegistry::add and docs/GOVERNORS.md).
 */

#ifndef AW_CSTATE_GOVERNORS_HH
#define AW_CSTATE_GOVERNORS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cstate/governor.hh"

namespace aw::cstate {

/**
 * Timer-events-oriented governor, in the spirit of Linux's teo.
 *
 * Keeps one decaying hit counter per enabled state, binning each
 * observed idle interval under the state that would have been the
 * right call for it. Selection walks from the deepest state down
 * and picks the first whose bin -- together with all deeper bins --
 * accounts for at least half of the retained history; i.e. a state
 * is only entered when recent wakeup patterns say the sleep usually
 * lasts long enough ("intercepts" of shallower bins veto deep
 * entries).
 */
class TeoGovernor : public GovernorPolicy
{
  public:
    /** Weight added to a bin per observation. */
    static constexpr std::uint64_t kPulse = 256;
    /** Per-observation decay: bins lose 1/kDecayDiv of their mass. */
    static constexpr std::uint64_t kDecayDiv = 4;

    explicit TeoGovernor(CStateConfig config);

    std::string spec() const override { return "teo"; }
    CStateId select(sim::Tick now) override;
    void observeIdle(sim::Tick idle) override;
    void reset() override;
    std::unique_ptr<GovernorPolicy> clone() const override;

  private:
    /** One bin per enabled state (bin i <-> fitTable().state(i),
     *  shallowest first). */
    std::vector<std::uint64_t> _bins;
};

/**
 * Ladder governor: a rung per enabled state. Consecutive idle
 * intervals that cover the current rung's target residency promote
 * one rung; a single interval below it demotes one rung. Cheap and
 * history-light, like Linux's periodic-tick ladder.
 */
class LadderGovernor : public GovernorPolicy
{
  public:
    /** Consecutive hits required to climb one rung. */
    static constexpr unsigned kPromoteHits = 4;

    explicit LadderGovernor(CStateConfig config);

    std::string spec() const override { return "ladder"; }
    CStateId select(sim::Tick now) override;
    void observeIdle(sim::Tick idle) override;
    void reset() override;
    std::unique_ptr<GovernorPolicy> clone() const override;

    /** Current rung index into the enabled states (tests). */
    std::size_t rung() const { return _rung; }

  private:
    std::size_t _rung = 0;
    unsigned _hits = 0;
};

/**
 * Static governor: always the named state, no prediction at all --
 * the paper's "always C6" / "always C1" endpoints. Construction is
 * fatal() if the named state is not enabled in the configuration;
 * the `deepest` / `shallowest` aliases resolve against the enabled
 * set so a sweep can name the endpoints without knowing each
 * config's hierarchy.
 */
class StaticGovernor : public GovernorPolicy
{
  public:
    /** @param state_arg  C-state name, "deepest" or "shallowest" */
    StaticGovernor(CStateConfig config, const std::string &state_arg);

    std::string spec() const override;
    CStateId select(sim::Tick now) override;
    std::unique_ptr<GovernorPolicy> clone() const override;

    /** Never move off the pinned state at promotion ticks. */
    CStateId
    reselect(sim::Tick now, sim::Tick elapsed) override
    {
        (void)now;
        (void)elapsed;
        return _state;
    }
    bool canPromote() const override { return false; }

    CStateId state() const { return _state; }

  private:
    CStateId _state;
    std::string _arg; //!< spec round-trip ("deepest" stays symbolic)
};

/**
 * Oracle governor: the simulator tells it the true length of the
 * idle period that is starting, and it enters the state with the
 * least estimated energy over that interval (host cost model; C0 /
 * polling is a candidate too; ties break shallow to spare
 * latency). Never mispredicts,
 * by construction -- the upper bound that separates governor error
 * from intrinsic transition cost. Without a cost model it falls
 * back to target-residency selection over the true length.
 *
 * Needs foreknowledge: the host core must install the clairvoyant
 * callback via setOracle() (only possible where the simulator
 * actually knows the core's next arrival, i.e. per-core synthetic
 * arrival streams under static dispatch).
 */
class OracleGovernor : public GovernorPolicy
{
  public:
    explicit OracleGovernor(CStateConfig config)
        : GovernorPolicy(std::move(config)),
          _states(this->config().enabledStates())
    {}

    std::string spec() const override { return "oracle"; }
    CStateId select(sim::Tick now) override;
    std::unique_ptr<GovernorPolicy> clone() const override;

    /** The select()-time choice was already optimal for the whole
     *  (known) interval: promotion ticks must never move off it,
     *  and the host need not schedule them at all. */
    CStateId
    reselect(sim::Tick now, sim::Tick elapsed) override
    {
        (void)now;
        (void)elapsed;
        return _lastChoice;
    }
    bool canPromote() const override { return false; }

    bool needsOracle() const override { return true; }
    void setOracle(OracleFn fn) override { _oracle = std::move(fn); }
    void setCostModel(CostFn fn) override { _cost = std::move(fn); }

  private:
    OracleFn _oracle;
    CostFn _cost;
    /** Enabled states cached shallow-first (select() is hot). */
    std::vector<CStateId> _states;
    CStateId _lastChoice = CStateId::C0;
};

/**
 * A parsed governor spec: `kind[:arg]`.
 */
struct GovernorSpec
{
    std::string kind;
    std::string arg;
};

/** Split a spec string at the first ':' (fatal on empty kind). */
GovernorSpec parseGovernorSpec(const std::string &spec);

/**
 * Name -> factory registry for idle-governance policies. The five
 * built-ins are pre-registered; extensions add a kind once at
 * startup and every consumer of specs (ServerConfig, ExperimentSpec
 * axes, awsim/awsweep flags) can build it.
 */
class GovernorRegistry
{
  public:
    /** Build a policy for @p config from the spec's argument part. */
    using Factory = std::function<std::unique_ptr<GovernorPolicy>(
        const std::string &arg, const CStateConfig &config)>;

    /** The process-wide registry (built-ins pre-registered). */
    static GovernorRegistry &instance();

    /**
     * Register a policy kind. @p summary is the one-line help text
     * CLIs print. Duplicate kinds are fatal().
     */
    void add(const std::string &kind, const std::string &summary,
             Factory factory);

    /** Build a policy from a spec like "menu" or "static:C6A";
     *  unknown kinds are fatal() with the known list. */
    std::unique_ptr<GovernorPolicy>
    make(const std::string &spec, const CStateConfig &config) const;

    /** Registered kinds, in registration order. */
    const std::vector<std::string> &kinds() const { return _kinds; }

    /** One-line summary for @p kind (empty if unknown). */
    std::string summary(const std::string &kind) const;

    /** "menu|teo|ladder|static:<state>|oracle" for diagnostics. */
    std::string describeKinds() const;

  private:
    GovernorRegistry();

    struct Entry
    {
        std::string summary;
        Factory factory;
    };

    std::vector<std::string> _kinds;
    std::vector<Entry> _entries; //!< parallel to _kinds
};

/** Convenience: GovernorRegistry::instance().make(spec, config). */
std::unique_ptr<GovernorPolicy>
makeGovernor(const std::string &spec, const CStateConfig &config);

/** Convenience: the registered kinds. */
const std::vector<std::string> &governorKinds();

} // namespace aw::cstate

#endif // AW_CSTATE_GOVERNORS_HH
