/**
 * @file
 * OS idle governor: predicts the length of the next idle interval
 * and selects the deepest enabled C-state whose target residency the
 * prediction covers (Linux menu-governor in spirit).
 */

#ifndef AW_CSTATE_GOVERNOR_HH
#define AW_CSTATE_GOVERNOR_HH

#include <array>
#include <cstddef>

#include "cstate/config.hh"
#include "cstate/cstate.hh"
#include "sim/types.hh"

namespace aw::cstate {

/**
 * Idle-interval predictor in the spirit of the Linux menu governor.
 *
 * Keeps the last eight observed idle intervals and derives a
 * "typical interval": repeatedly discard the largest sample while
 * the coefficient of variation stays high, then average what
 * remains. The prediction is the minimum of the typical interval
 * and the most recent observation. For the irregular (high-
 * variance) request streams of latency-critical services this is
 * deliberately pessimistic -- which is exactly why real servers
 * "rarely enter a deep idle power state" (Sec 1): a deep entry that
 * wakes immediately pays the full transition.
 */
class IdlePredictor
{
  public:
    /** Window of retained observations (menu governor: 8). */
    static constexpr std::size_t kWindow = 8;

    /**
     * @param cv_threshold  keep discarding the largest sample while
     *                      stddev/mean exceeds this
     */
    explicit IdlePredictor(double cv_threshold = 0.5)
        : _cvThreshold(cv_threshold)
    {}

    /** Record an observed idle interval. */
    void
    observe(sim::Tick idle)
    {
        _window[_next % kWindow] = idle;
        ++_next;
        _last = idle;
        _seeded = true;
    }

    /** Predicted length of the next idle interval. */
    sim::Tick predict() const;

    bool seeded() const { return _seeded; }
    double cvThreshold() const { return _cvThreshold; }

    void
    reset()
    {
        _seeded = false;
        _next = 0;
        _last = 0;
    }

  private:
    double _cvThreshold;
    std::array<sim::Tick, kWindow> _window{};
    std::size_t _next = 0;
    sim::Tick _last = 0;
    bool _seeded = false;
};

/**
 * The governor proper: state selection given a prediction.
 */
class IdleGovernor
{
  public:
    explicit IdleGovernor(CStateConfig config,
                          double cv_threshold = 0.5)
        : _config(std::move(config)), _predictor(cv_threshold)
    {}

    const CStateConfig &config() const { return _config; }
    IdlePredictor &predictor() { return _predictor; }

    /**
     * Select the idle state for a core going idle now.
     *
     * Deepest enabled state whose target residency is <= the
     * predicted idle length; falls back to the shallowest enabled
     * state (there is always something shallower than the
     * prediction horizon to halt in), or C0 (poll) if no idle state
     * is enabled.
     */
    CStateId select() const;

    /** select() with an explicit prediction (for tests/model use). */
    CStateId selectFor(sim::Tick predicted_idle) const;

    /** Feed an observed idle interval back into the predictor. */
    void
    observeIdle(sim::Tick idle)
    {
        _predictor.observe(idle);
    }

  private:
    CStateConfig _config;
    IdlePredictor _predictor;
};

} // namespace aw::cstate

#endif // AW_CSTATE_GOVERNOR_HH
