/**
 * @file
 * Idle-governance policy API.
 *
 * Idle-state selection is a pluggable policy: GovernorPolicy is the
 * abstract per-core decision maker (which C-state should a core
 * going idle now enter?), and MenuGovernor is the default concrete
 * implementation -- a Linux-menu-style predictor feeding a
 * deepest-affordable-state selection. The other built-in policies
 * (teo, ladder, static:<state>, oracle) live in
 * cstate/governors.hh together with the string-keyed registry that
 * builds any of them from a spec like "menu" or "static:C6A".
 *
 * The paper's core claim (Sec 1) is that servers "rarely enter a
 * deep idle power state" because the OS governor's mispredictions
 * make deep entries too risky -- and that AgileWatts' fast C6A wake
 * makes the *quality* of this policy far less critical. Making the
 * policy an axis lets the simulator quantify exactly that
 * sensitivity.
 */

#ifndef AW_CSTATE_GOVERNOR_HH
#define AW_CSTATE_GOVERNOR_HH

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "cstate/config.hh"
#include "cstate/cstate.hh"
#include "sim/types.hh"

namespace aw::cstate {

/**
 * Idle-interval predictor in the spirit of the Linux menu governor.
 *
 * Keeps the last eight observed idle intervals and derives a
 * "typical interval": repeatedly discard the largest sample while
 * the coefficient of variation stays high, then average what
 * remains. The prediction is the minimum of the typical interval
 * and the most recent observation. For the irregular (high-
 * variance) request streams of latency-critical services this is
 * deliberately pessimistic -- which is exactly why real servers
 * "rarely enter a deep idle power state" (Sec 1): a deep entry that
 * wakes immediately pays the full transition.
 */
class IdlePredictor
{
  public:
    /** Window of retained observations (menu governor: 8). */
    static constexpr std::size_t kWindow = 8;

    /**
     * @param cv_threshold  keep discarding the largest sample while
     *                      stddev/mean exceeds this
     */
    explicit IdlePredictor(double cv_threshold = 0.5)
        : _cvThreshold(cv_threshold)
    {}

    /** Record an observed idle interval. */
    void
    observe(sim::Tick idle)
    {
        const std::size_t n = std::min(_next, kWindow);
        const double incoming = static_cast<double>(idle);
        if (_next >= kWindow) {
            // Ring is full: swap the evicted sample out of the
            // sorted mirror (any instance of an equal value leaves
            // the same multiset).
            const double evicted =
                static_cast<double>(_window[_next % kWindow]);
            std::size_t i = 0;
            while (_sortedVals[i] != evicted)
                ++i;
            while (i + 1 < n) {
                _sortedVals[i] = _sortedVals[i + 1];
                ++i;
            }
            insertSorted(incoming, n - 1);
        } else {
            insertSorted(incoming, n);
        }
        _window[_next % kWindow] = idle;
        ++_next;
        _last = idle;
        _seeded = true;
    }

    /** Predicted length of the next idle interval. */
    sim::Tick predict() const;

    bool seeded() const { return _seeded; }
    double cvThreshold() const { return _cvThreshold; }

    void
    reset()
    {
        // Zero the sample window too: predict() only reads the
        // first min(_next, kWindow) slots, but stale samples
        // surviving a reset are a landmine for any future reader
        // that walks the whole window.
        _window.fill(0);
        _sortedVals.fill(0.0);
        _seeded = false;
        _next = 0;
        _last = 0;
    }

  private:
    /** Shift-insert @p v into the first @p n sorted slots. */
    void
    insertSorted(double v, std::size_t n)
    {
        std::size_t i = n;
        while (i > 0 && _sortedVals[i - 1] > v) {
            _sortedVals[i] = _sortedVals[i - 1];
            --i;
        }
        _sortedVals[i] = v;
    }

    double _cvThreshold;
    std::array<sim::Tick, kWindow> _window{};
    /** The window's samples kept sorted ascending (as doubles), so
     *  predict() -- called once per idle period -- never re-sorts. */
    std::array<double, kWindow> _sortedVals{};
    std::size_t _next = 0;
    sim::Tick _last = 0;
    bool _seeded = false;
};

/**
 * Per-policy cache of the enabled states' selection attributes
 * (depth-sorted ids + target residencies), so the per-idle-period
 * deepest-fitting scan reads a flat 2x8-word array instead of
 * materializing vectors and chasing the descriptor table. Built once
 * at policy construction -- a policy's CStateConfig is immutable.
 */
class FitTable
{
  public:
    FitTable() = default;
    explicit FitTable(const CStateConfig &config);

    std::size_t count() const { return _count; }
    CStateId state(std::size_t i) const { return _states[i]; }
    sim::Tick target(std::size_t i) const { return _targets[i]; }
    int depth(std::size_t i) const { return _depths[i]; }

    /** Deepest state whose target residency @p idle covers;
     *  fallback to the shallowest (or C0 when the table is empty). */
    CStateId
    deepestFitting(sim::Tick idle) const
    {
        if (_count == 0)
            return CStateId::C0;
        CStateId chosen = _states[0];
        for (std::size_t i = 0; i < _count; ++i) {
            if (_targets[i] <= idle)
                chosen = _states[i];
        }
        return chosen;
    }

    /** Smallest target residency among enabled states strictly
     *  deeper than @p current (kMaxTick if none) -- the idle length
     *  at which deepestFitting() starts outranking @p current.
     *  Precomputed per state; this is read once per idle period. */
    sim::Tick
    firstDeeperTarget(CStateId current) const
    {
        return _firstDeeper[index(current)];
    }

  private:
    std::array<CStateId, kNumCStates> _states{};
    std::array<sim::Tick, kNumCStates> _targets{};
    std::array<int, kNumCStates> _depths{};
    std::array<sim::Tick, kNumCStates> _firstDeeper{};
    std::size_t _count = 0;
};

/**
 * Abstract idle-governance policy: one instance per core.
 *
 * The core simulator drives the policy with exactly three events:
 * select() when the core runs out of work, observeIdle() with the
 * realized idle interval when it wakes, and reselect() at OS-tick
 * promotion points while it stays idle. Policies are built once per
 * server from a registry spec and then clone()d per core, so no
 * mutable prediction state is ever shared between cores.
 */
class GovernorPolicy
{
  public:
    /** A clairvoyant callback: the true length of the idle period
     *  that starts at @p now (what an oracle is "told" by the
     *  simulator). */
    using OracleFn = std::function<sim::Tick(sim::Tick now)>;

    /** Host-supplied energy estimate (J) of idling in @p state for
     *  a known interval: transition flows at active power plus the
     *  resident window at state power, from the live transition-
     *  latency and power models. Lets a clairvoyant policy pick the
     *  truly cheapest state instead of trusting the descriptor's
     *  conservative target residencies. */
    using CostFn =
        std::function<double(CStateId state, sim::Tick idle_len)>;

    explicit GovernorPolicy(CStateConfig config)
        : _config(std::move(config)), _fit(_config)
    {}
    virtual ~GovernorPolicy() = default;

    /** Enabled idle states this policy selects from. */
    const CStateConfig &config() const { return _config; }

    /** The registry spec that rebuilds this policy, e.g. "menu" or
     *  "static:C6A". */
    virtual std::string spec() const = 0;

    /** Select the idle state for a core going idle at @p now. */
    virtual CStateId select(sim::Tick now) = 0;

    /** Feed back the realized length of an idle interval once the
     *  core wakes (or a wake arrives mid-entry). */
    virtual void observeIdle(sim::Tick idle) { (void)idle; }

    /** Forget all learned history (fresh-boot state). */
    virtual void reset() {}

    /** Fresh per-core instance: same configuration and parameters,
     *  no shared mutable state. */
    virtual std::unique_ptr<GovernorPolicy> clone() const = 0;

    /**
     * cpuidle-style OS-tick re-selection: the core has already been
     * idle for @p elapsed and is still idle, so the observed
     * interval can only grow. Default: the deepest enabled state
     * whose target residency @p elapsed already covers.
     */
    virtual CStateId
    reselect(sim::Tick now, sim::Tick elapsed)
    {
        (void)now;
        return deepestFitting(elapsed);
    }

    /** True if reselect() can ever deepen a choice: lets the host
     *  skip scheduling OS promotion ticks entirely for policies
     *  that are pinned (static) or already optimal (oracle), so an
     *  idle core does not churn the event queue for nothing. */
    virtual bool canPromote() const { return true; }

    /**
     * Smallest realized idle length at which reselect() could pick a
     * state deeper than @p current, or kMaxTick if no deeper enabled
     * state exists. Lets the host batch OS-tick promotion checks: it
     * schedules one tick at the first multiple of the promotion
     * interval past this horizon instead of re-ticking an idle core
     * through checks that cannot change anything. The default
     * matches the default reselect() (target-residency thresholds);
     * a policy that overrides reselect() with different dynamics
     * must override this too -- returning 0 restores the
     * conservative check-every-tick behavior.
     */
    virtual sim::Tick
    promotionHorizon(CStateId current) const
    {
        return _fit.firstDeeperTarget(current);
    }

    /** True if select() needs the simulator's clairvoyant callback
     *  (the oracle policy). The host must setOracle() before the
     *  first select(), and must refuse to run the policy when it
     *  has no foreknowledge to offer. */
    virtual bool needsOracle() const { return false; }

    /** Install the clairvoyant callback (no-op for real policies). */
    virtual void setOracle(OracleFn fn) { (void)fn; }

    /** Install the per-state energy estimate (no-op for real
     *  policies; optional even for the oracle, which falls back to
     *  target-residency selection without it). */
    virtual void setCostModel(CostFn fn) { (void)fn; }

  protected:
    /**
     * Deepest enabled state whose target residency is <= the
     * predicted idle length; falls back to the shallowest enabled
     * state (there is always something shallower than the
     * prediction horizon to halt in), or C0 (poll) if no idle state
     * is enabled.
     */
    CStateId
    deepestFitting(sim::Tick predicted_idle) const
    {
        return _fit.deepestFitting(predicted_idle);
    }

    /** The cached selection attributes of the enabled states. */
    const FitTable &fitTable() const { return _fit; }

  private:
    CStateConfig _config;
    FitTable _fit;
};

/**
 * The default policy: menu-style prediction feeding deepest-
 * affordable selection (the repo's original IdleGovernor, verbatim
 * -- "menu" in the registry and the behavior-preserving default of
 * every ServerConfig).
 */
class MenuGovernor : public GovernorPolicy
{
  public:
    explicit MenuGovernor(CStateConfig config,
                          double cv_threshold = 0.5)
        : GovernorPolicy(std::move(config)), _predictor(cv_threshold)
    {}

    std::string spec() const override { return "menu"; }

    CStateId
    select(sim::Tick now) override
    {
        (void)now;
        return selectFor(_predictor.predict());
    }

    void
    observeIdle(sim::Tick idle) override
    {
        _predictor.observe(idle);
    }

    void reset() override { _predictor.reset(); }

    std::unique_ptr<GovernorPolicy>
    clone() const override
    {
        return std::make_unique<MenuGovernor>(
            config(), _predictor.cvThreshold());
    }

    /** select() with an explicit prediction (for tests/model use). */
    CStateId
    selectFor(sim::Tick predicted_idle) const
    {
        return deepestFitting(predicted_idle);
    }

    IdlePredictor &predictor() { return _predictor; }

  private:
    IdlePredictor _predictor;
};

} // namespace aw::cstate

#endif // AW_CSTATE_GOVERNOR_HH
