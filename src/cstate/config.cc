#include "cstate/config.hh"

#include <algorithm>

namespace aw::cstate {

std::vector<CStateId>
CStateConfig::enabledStates() const
{
    std::vector<CStateId> out;
    for (std::size_t i = 0; i < kNumCStates; ++i) {
        const auto id = static_cast<CStateId>(i);
        if (id == CStateId::C0 || !_enabled[i])
            continue;
        out.push_back(id);
    }
    std::sort(out.begin(), out.end(),
              [](CStateId a, CStateId b) {
                  return descriptor(a).depth < descriptor(b).depth;
              });
    return out;
}

CStateId
CStateConfig::deepestEnabled() const
{
    const auto states = enabledStates();
    return states.empty() ? CStateId::C0 : states.back();
}

CStateId
CStateConfig::shallowestEnabled() const
{
    const auto states = enabledStates();
    return states.empty() ? CStateId::C0 : states.front();
}

bool
CStateConfig::anyEnabled() const
{
    return !enabledStates().empty();
}

bool
CStateConfig::usesAgileWatts() const
{
    for (const auto id : enabledStates()) {
        if (descriptor(id).isAgileWatts)
            return true;
    }
    return false;
}

CStateConfig
CStateConfig::legacyBaseline()
{
    return CStateConfig()
        .set(CStateId::C1)
        .set(CStateId::C1E)
        .set(CStateId::C6);
}

CStateConfig
CStateConfig::legacyNoC6()
{
    return CStateConfig().set(CStateId::C1).set(CStateId::C1E);
}

CStateConfig
CStateConfig::legacyNoC6NoC1E()
{
    return CStateConfig().set(CStateId::C1);
}

CStateConfig
CStateConfig::legacyC1C6()
{
    return CStateConfig().set(CStateId::C1).set(CStateId::C6);
}

CStateConfig
CStateConfig::aw()
{
    return CStateConfig()
        .set(CStateId::C6A)
        .set(CStateId::C6AE)
        .set(CStateId::C6);
}

CStateConfig
CStateConfig::awNoC6()
{
    return CStateConfig().set(CStateId::C6A).set(CStateId::C6AE);
}

CStateConfig
CStateConfig::awNoC6NoC1E()
{
    return CStateConfig().set(CStateId::C6A);
}

std::string
CStateConfig::describe() const
{
    std::string out;
    for (const auto id : enabledStates()) {
        if (!out.empty())
            out += "+";
        out += name(id);
    }
    return out.empty() ? "none" : out;
}

} // namespace aw::cstate
