#include "cstate/config.hh"

#include <algorithm>

namespace aw::cstate {

void
CStateConfig::rebuildCache()
{
    _count = 0;
    _anyAw = false;
    for (std::size_t i = 0; i < kNumCStates; ++i) {
        const auto id = static_cast<CStateId>(i);
        if (id == CStateId::C0 || !_enabled[i])
            continue;
        _sorted[_count++] = id;
        _anyAw = _anyAw || descriptor(id).isAgileWatts;
    }
    std::sort(_sorted.begin(), _sorted.begin() + _count,
              [](CStateId a, CStateId b) {
                  return descriptor(a).depth < descriptor(b).depth;
              });
    _shallowest = _count ? _sorted[0] : CStateId::C0;
    _deepest = _count ? _sorted[_count - 1] : CStateId::C0;
}

std::vector<CStateId>
CStateConfig::enabledStates() const
{
    return std::vector<CStateId>(_sorted.begin(),
                                 _sorted.begin() + _count);
}

CStateConfig
CStateConfig::legacyBaseline()
{
    return CStateConfig()
        .set(CStateId::C1)
        .set(CStateId::C1E)
        .set(CStateId::C6);
}

CStateConfig
CStateConfig::legacyNoC6()
{
    return CStateConfig().set(CStateId::C1).set(CStateId::C1E);
}

CStateConfig
CStateConfig::legacyNoC6NoC1E()
{
    return CStateConfig().set(CStateId::C1);
}

CStateConfig
CStateConfig::legacyC1C6()
{
    return CStateConfig().set(CStateId::C1).set(CStateId::C6);
}

CStateConfig
CStateConfig::aw()
{
    return CStateConfig()
        .set(CStateId::C6A)
        .set(CStateId::C6AE)
        .set(CStateId::C6);
}

CStateConfig
CStateConfig::awNoC6()
{
    return CStateConfig().set(CStateId::C6A).set(CStateId::C6AE);
}

CStateConfig
CStateConfig::awNoC6NoC1E()
{
    return CStateConfig().set(CStateId::C6A);
}

std::string
CStateConfig::describe() const
{
    std::string out;
    for (std::size_t i = 0; i < _count; ++i) {
        if (!out.empty())
            out += "+";
        out += name(_sorted[i]);
    }
    return out.empty() ? "none" : out;
}

} // namespace aw::cstate
