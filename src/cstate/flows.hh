/**
 * @file
 * Event-driven legacy C-state entry/exit flows (Fig 3).
 *
 * The AgileWatts C6A flow has its own controller (core::C6aController,
 * Fig 6); this engine gives the *legacy* states the same treatment:
 * the C1/C1E and C6 flows execute phase by phase on the simulator,
 * with a trace, and their end-to-end timing equals the
 * TransitionEngine's hardware latencies by construction (asserted in
 * tests). This is what Fig 3 depicts.
 */

#ifndef AW_CSTATE_FLOWS_HH
#define AW_CSTATE_FLOWS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cstate/cstate.hh"
#include "cstate/transition.hh"
#include "sim/event_queue.hh"
#include "uarch/cache.hh"
#include "uarch/context.hh"

namespace aw::cstate {

/** Phases of the legacy flows (Fig 3a and 3b). */
enum class LegacyPhase : std::uint8_t
{
    C0,
    // --- C1/C1E (Fig 3a) ---
    C1ClockGate,     //!< clock-gate all domains, keep PLL on
    C1Resident,      //!< in C1/C1E
    C1SnoopServe,    //!< clock-ungate L1/L2, handle snoops
    C1ClockUngate,   //!< exit: clock-ungate all domains
    // --- C6 (Fig 3b) ---
    C6SaveContext,   //!< save context to the S/R SRAM
    C6FlushCaches,   //!< flush L1/L2
    C6GateAndOff,    //!< clock-gate, PLL off, voltage off
    C6Resident,      //!< in C6
    C6PowerOn,       //!< voltage on, PLL relock, reset units
    C6RestoreContext,//!< restore from S/R SRAM + ucode re-init
    C6Resume,        //!< resume microcode
};

const char *name(LegacyPhase p);

/**
 * Executes the Fig 3 flows on a simulator with phase tracing.
 */
class LegacyFlowEngine
{
  public:
    struct PhaseRecord
    {
        LegacyPhase phase;
        sim::Tick start;
        sim::Tick end;
    };

    /**
     * @param caches   the core's private caches (flushed by C6)
     * @param context  the core's context (streamed by C6)
     * @param engine   latency source (must outlive this object)
     */
    LegacyFlowEngine(uarch::PrivateCaches &caches,
                     const uarch::CoreContext &context,
                     const TransitionEngine &engine);

    /** Run the C1 (or C1E) entry flow of Fig 3a. */
    void runC1Entry(sim::Simulator &simr, sim::Frequency freq,
                    std::function<void()> done);

    /** Run the C1 exit flow. */
    void runC1Exit(sim::Simulator &simr, sim::Frequency freq,
                   std::function<void()> done);

    /** Run the C1 snoop service loop (ungate, serve, re-gate). */
    void runC1Snoop(sim::Simulator &simr, sim::Frequency freq,
                    sim::Tick serve_time,
                    std::function<void()> done);

    /** Run the C6 entry flow of Fig 3b (flushes the caches). */
    void runC6Entry(sim::Simulator &simr, sim::Frequency freq,
                    std::function<void()> done);

    /** Run the C6 exit flow of Fig 3b. */
    void runC6Exit(sim::Simulator &simr, sim::Frequency freq,
                   std::function<void()> done);

    LegacyPhase phase() const { return _phase; }
    const std::vector<PhaseRecord> &trace() const { return _trace; }
    void clearTrace() { _trace.clear(); }

  private:
    void advance(sim::Simulator &simr, LegacyPhase next);
    void step(sim::Simulator &simr, LegacyPhase current,
              sim::Tick dur, LegacyPhase next,
              std::function<void()> cont);

    uarch::PrivateCaches &_caches;
    const uarch::CoreContext &_context;
    const TransitionEngine &_engine;
    LegacyPhase _phase = LegacyPhase::C0;
    sim::Tick _phaseStart = 0;
    std::vector<PhaseRecord> _trace;
};

} // namespace aw::cstate

#endif // AW_CSTATE_FLOWS_HH
