/**
 * @file
 * Deterministic random number generation and the distributions the
 * workload models need (exponential, lognormal, bounded Pareto, Zipf).
 *
 * Every stochastic component takes an explicit seed so whole-server
 * simulations are reproducible run to run.
 */

#ifndef AW_SIM_RANDOM_HH
#define AW_SIM_RANDOM_HH

#include <cstdint>
#include <random>
#include <vector>

namespace aw::sim {

/**
 * SplitMix64 finalizer: one bijective avalanche step over a 64-bit
 * word. Used to whiten seeds before they reach the Mersenne Twister.
 */
std::uint64_t splitmix64(std::uint64_t x);

/**
 * Derive the seed for sub-stream @p stream of a component seeded
 * with @p base (splitmix-style stream splitting). Distinct streams
 * of the same base are decorrelated, and the mapping is pure, so a
 * fleet of simulators can hand each member an independent stream
 * while the whole ensemble stays reproducible from one top seed.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream);

/**
 * A seeded pseudo-random source with convenience draws.
 *
 * Wraps a 64-bit Mersenne Twister. Not thread-safe; use one Rng per
 * simulated component.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1) : _gen(seed) {}

    /** Re-seed, restarting the stream. */
    void seed(std::uint64_t s) { _gen.seed(s); }

    /** Uniform real in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(_gen);
    }

    /** Uniform real in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(_gen);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(_gen);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(_gen);
    }

    /** Exponential with the given mean (not rate). */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(_gen);
    }

    /** Normal draw. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(_gen);
    }

    /**
     * Lognormal parameterized by the *target* mean and coefficient of
     * variation (cv = stddev/mean) of the resulting distribution.
     */
    double lognormalMeanCv(double mean, double cv);

    /** Lognormal draw from precomputed (mu, sigma) parameters (see
     *  LognormalParams) -- the allocation- and libm-free hot path
     *  the service models use; consumes the identical engine
     *  outputs as lognormalMeanCv with the matching mean/cv. */
    double
    lognormal(double mu, double sigma)
    {
        return std::lognormal_distribution<double>(mu, sigma)(_gen);
    }

    /**
     * Bounded Pareto on [lo, hi] with tail index @p alpha.
     * Heavy-tailed service demand for the OLTP-like workloads.
     */
    double boundedPareto(double lo, double hi, double alpha);

    /** Access to the raw engine for std distributions. */
    std::mt19937_64 &engine() { return _gen; }

  private:
    std::mt19937_64 _gen;
};

/**
 * Precomputed (mu, sigma) parameterization of a lognormal given its
 * target mean and coefficient of variation. The conversion costs two
 * logs and a square root; models that draw millions of times from a
 * fixed (mean, cv) hoist it here once -- Rng::lognormal(mu, sigma)
 * then produces the exact sequence lognormalMeanCv(mean, cv) would.
 */
struct LognormalParams
{
    double mu = 0.0;
    double sigma = 0.0;
    /** cv <= 0 requests no variation: draw() returns mean as-is
     *  without consuming engine output (lognormalMeanCv's contract). */
    bool degenerate = true;
    double mean = 0.0;

    LognormalParams() = default;
    LognormalParams(double mean, double cv);

    double
    draw(Rng &rng) const
    {
        return degenerate ? mean : rng.lognormal(mu, sigma);
    }
};

/**
 * Zipf-distributed integer draws over {0, ..., n-1} with skew s.
 *
 * Uses a precomputed CDF with binary search; construction is O(n),
 * draws are O(log n). Used for key-popularity in the key-value
 * workload profile.
 */
class ZipfDistribution
{
  public:
    /**
     * @param n    support size (must be >= 1)
     * @param s    skew exponent (s = 0 gives uniform)
     */
    ZipfDistribution(std::size_t n, double s);

    /** Draw one value in [0, n). */
    std::size_t operator()(Rng &rng) const;

    std::size_t support() const { return _cdf.size(); }
    double skew() const { return _skew; }

  private:
    std::vector<double> _cdf;
    double _skew;
};

} // namespace aw::sim

#endif // AW_SIM_RANDOM_HH
