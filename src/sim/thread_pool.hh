/**
 * @file
 * Work-stealing thread pool.
 *
 * Each worker owns a deque; submissions are distributed round-robin
 * and an idle worker steals from the front of a peer's deque. The
 * pool lives in the base sim layer so both the experiment engine
 * (sweep points across a grid) and the cluster layer (servers within
 * one fleet point) can partition independent work without an
 * exp -> cluster dependency cycle.
 */

#ifndef AW_SIM_THREAD_POOL_HH
#define AW_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace aw::sim {

/**
 * Work-stealing thread pool. submit() may only be called from the
 * thread that owns the pool; tasks must not throw.
 */
class ThreadPool
{
  public:
    /** @param threads  worker count; 0 = hardware concurrency. */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned threads() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /** The worker count a thread argument resolves to. */
    static unsigned resolveThreads(unsigned threads);

  private:
    struct Worker
    {
        std::deque<std::function<void()>> queue;
        std::mutex mtx;
    };

    void workerLoop(std::size_t self);
    std::optional<std::function<void()>> take(std::size_t self);
    bool haveWork() const;

    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;
    std::size_t _nextWorker = 0; //!< round-robin submission cursor

    std::mutex _mtx;
    std::condition_variable _workCv; //!< wakes idle workers
    std::condition_variable _doneCv; //!< wakes wait()
    std::size_t _pending = 0;        //!< submitted, not yet finished
    bool _stop = false;
};

} // namespace aw::sim

#endif // AW_SIM_THREAD_POOL_HH
