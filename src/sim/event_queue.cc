#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace aw::sim {

EventId
Simulator::schedule(Tick when, EventQueue::Callback cb)
{
    if (when < _now) {
        panic("scheduling event in the past: when=%llu now=%llu",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    }
    return _queue.schedule(when, std::move(cb));
}

Tick
Simulator::run(Tick horizon)
{
    while (!_queue.empty()) {
        if (_queue.nextTick() > horizon) {
            _now = horizon;
            return _now;
        }
        auto ev = _queue.pop();
        _now = ev.when;
        ++_executed;
        ev.cb();
    }
    if (horizon != kMaxTick && horizon > _now)
        _now = horizon;
    return _now;
}

} // namespace aw::sim
