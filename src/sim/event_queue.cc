#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace aw::sim {

void
Simulator::panicScheduledInPast(Tick when, Tick now)
{
    panic("scheduling event in the past: when=%llu now=%llu",
          static_cast<unsigned long long>(when),
          static_cast<unsigned long long>(now));
}

Tick
Simulator::run(Tick horizon)
{
    // Events fire in place inside the queue's slab -- the clock
    // advances via the pre-invoke hook, and no closure is ever
    // moved or copied on the way to its invocation.
    while (_queue.fireNext(horizon, [this](Tick when) {
        _now = when;
        ++_executed;
    })) {
    }
    if (!_queue.empty()) {
        // Stopped by the horizon with events still pending.
        _now = horizon;
        return _now;
    }
    if (horizon != kMaxTick && horizon > _now)
        _now = horizon;
    return _now;
}

} // namespace aw::sim
