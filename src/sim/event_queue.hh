/**
 * @file
 * Discrete-event scheduling: EventQueue and Simulator.
 *
 * The kernel is deliberately small: events are closures scheduled at
 * absolute ticks; ties are broken by a monotonic sequence number so
 * same-tick events fire in scheduling order as a structural
 * guarantee, not an accident of heap layout. Events can be cancelled
 * through the EventId returned at scheduling time.
 *
 * Layout is optimized for the simulator's hot loop:
 *
 *  - a 4-ary min-heap orders small POD keys (tick, sequence, slot),
 *    so sifts touch 24-byte keys in a flat array -- never the
 *    closures -- and the tree is half as deep as a binary heap's;
 *  - closures live in a chunked slab with stable addresses and are
 *    constructed, invoked and destroyed in place (zero moves and
 *    zero allocations per steady-state event; see sim/callback.hh);
 *  - cancellation is an O(1) slot invalidation -- no hash table
 *    anywhere in the kernel.
 *
 * The pop order is the strict total order (when, seq), so none of
 * these layout choices can affect simulation results.
 */

#ifndef AW_SIM_EVENT_QUEUE_HH
#define AW_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace aw::sim {

/** Opaque handle identifying a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel id returned for "no event". */
constexpr EventId kInvalidEventId = 0;

/**
 * A time-ordered queue of closures.
 *
 * Events scheduled for the same tick fire in scheduling order (FIFO,
 * enforced by a per-queue monotonic sequence counter). Cancellation
 * invalidates the event's slot immediately -- the callback is
 * destroyed right away -- and the stale heap key is skipped when it
 * surfaces. Cancelling an id that already fired (or was never
 * scheduled) is a harmless no-op.
 */
class EventQueue
{
  public:
    using Callback = UniqueCallback;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p fn to run at absolute tick @p when. The closure is
     * constructed directly into its slab slot (no intermediate
     * moves).
     *
     * @return an id usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Tick when, F &&fn)
    {
        const std::uint32_t slot = allocSlot();
        Slot &s = slotAt(slot);
        s.cb.emplace(std::forward<F>(fn));
        s.live = true;
        _heap.push_back(Key{when, ++_seq, slot});
        siftUp(_heap.size() - 1);
        ++_live;
        return makeId(slot, s.gen);
    }

    /** Cancel a previously scheduled event (no-op if not pending). */
    void
    cancel(EventId id)
    {
        const std::uint32_t slot = slotOf(id);
        if (slot >= _slotCount)
            return;
        Slot &s = slotAt(slot);
        if (!s.live || s.gen != genOf(id))
            return;
        // Invalidate now (the callback and its captures die here);
        // the heap key is skipped lazily when it reaches the top.
        s.live = false;
        ++s.gen;
        s.cb.reset();
        --_live;
    }

    /** @return true if a schedule()d event has neither fired nor been
     *  cancelled. */
    bool
    pending(EventId id) const
    {
        const std::uint32_t slot = slotOf(id);
        if (slot >= _slotCount)
            return false;
        const Slot &s = slotAt(slot);
        return s.live && s.gen == genOf(id);
    }

    /** @return true if no live (non-cancelled) events remain. */
    bool empty() const { return _live == 0; }

    /** Number of live events still queued. */
    std::size_t size() const { return _live; }

    /**
     * Tick of the next live event.
     * @return kMaxTick when the queue is empty.
     */
    Tick
    nextTick() const
    {
        const_cast<EventQueue *>(this)->skipCancelled();
        return _heap.empty() ? kMaxTick : _heap.front().when;
    }

    /** Result of pop(): when/id/callback of the fired event. */
    struct Popped
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    /**
     * Pop and return the next live event.
     * @pre !empty()
     */
    Popped
    pop()
    {
        skipCancelled();
        const Key top = _heap.front();
        removeTop();
        Slot &s = slotAt(top.slot);
        Popped out{top.when, makeId(top.slot, s.gen),
                   std::move(s.cb)};
        s.live = false;
        ++s.gen;
        _freeSlots.push_back(top.slot);
        --_live;
        return out;
    }

    /**
     * Fused fire path for the driver's hot loop: if the next live
     * event is due at or before @p horizon, invoke it *in place* --
     * no move out of the slab -- after calling @p before(when) so
     * the driver can advance its clock first. Returns false (queue
     * untouched) when nothing is due.
     *
     * The slot is unpublished (id invalidated) before the closure
     * runs, so a closure cancelling its own id or scheduling new
     * events mid-flight behaves exactly as with pop().
     */
    template <typename BeforeFn>
    bool
    fireNext(Tick horizon, BeforeFn &&before)
    {
        skipCancelled();
        if (_heap.empty() || _heap.front().when > horizon)
            return false;
        const Key top = _heap.front();
        removeTop();
        Slot &s = slotAt(top.slot);
        s.live = false; // the id dies before the closure runs
        ++s.gen;
        --_live;
        before(top.when);
        s.cb(); // stable slab address: safe against new schedules
        s.cb.reset();
        _freeSlots.push_back(top.slot);
        return true;
    }

  private:
    /** Heap key: 24 bytes, trivially copyable, sifted without ever
     *  touching the closures. */
    struct Key
    {
        Tick when;
        std::uint64_t seq; //!< monotonic FIFO tie-breaker
        std::uint32_t slot;
    };

    /** "a fires before b": the strict total event order. */
    static bool
    fires_before(const Key &a, const Key &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /** One closure slot; gen guards stale EventIds across reuse. */
    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 1;
        bool live = false;
    };

    /** Slab chunking: stable addresses so closures can run in place
     *  while new events grow the slab underneath them. */
    static constexpr std::size_t kSlotChunkShift = 6;
    static constexpr std::size_t kSlotChunk = 1 << kSlotChunkShift;

    static EventId
    makeId(std::uint32_t slot, std::uint32_t gen)
    {
        return (static_cast<EventId>(slot) << 32) | gen;
    }

    static std::uint32_t
    slotOf(EventId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    static std::uint32_t
    genOf(EventId id)
    {
        return static_cast<std::uint32_t>(id);
    }

    Slot &
    slotAt(std::uint32_t slot)
    {
        return _chunks[slot >> kSlotChunkShift]
                      [slot & (kSlotChunk - 1)];
    }

    const Slot &
    slotAt(std::uint32_t slot) const
    {
        return _chunks[slot >> kSlotChunkShift]
                      [slot & (kSlotChunk - 1)];
    }

    std::uint32_t
    allocSlot()
    {
        if (!_freeSlots.empty()) {
            const std::uint32_t slot = _freeSlots.back();
            _freeSlots.pop_back();
            return slot;
        }
        if (_slotCount == _chunks.size() * kSlotChunk)
            _chunks.push_back(
                std::make_unique<Slot[]>(kSlotChunk));
        return static_cast<std::uint32_t>(_slotCount++);
    }

    /** @{ 4-ary min-heap over Keys (root at 0; children of i are
     *  4i+1 .. 4i+4). Shape never affects pop order -- fires_before
     *  is a strict total order. */
    void
    siftUp(std::size_t i)
    {
        const Key k = _heap[i];
        while (i > 0) {
            const std::size_t parent = (i - 1) >> 2;
            if (!fires_before(k, _heap[parent]))
                break;
            _heap[i] = _heap[parent];
            i = parent;
        }
        _heap[i] = k;
    }

    void
    siftDown(std::size_t i)
    {
        const std::size_t n = _heap.size();
        const Key k = _heap[i];
        while (true) {
            const std::size_t first = (i << 2) + 1;
            if (first >= n)
                break;
            std::size_t best = first;
            const std::size_t last = std::min(first + 4, n);
            for (std::size_t c = first + 1; c < last; ++c) {
                if (fires_before(_heap[c], _heap[best]))
                    best = c;
            }
            if (!fires_before(_heap[best], k))
                break;
            _heap[i] = _heap[best];
            i = best;
        }
        _heap[i] = k;
    }

    void
    removeTop()
    {
        _heap.front() = _heap.back();
        _heap.pop_back();
        if (!_heap.empty())
            siftDown(0);
    }
    /** @} */

    /** Drop cancelled keys sitting at the top of the heap. */
    void
    skipCancelled()
    {
        while (!_heap.empty() &&
               !slotAt(_heap.front().slot).live) {
            _freeSlots.push_back(_heap.front().slot);
            removeTop();
        }
    }

    std::vector<Key> _heap;
    std::vector<std::unique_ptr<Slot[]>> _chunks;
    std::size_t _slotCount = 0;
    std::vector<std::uint32_t> _freeSlots;
    std::uint64_t _seq = 0;
    std::size_t _live = 0;
};

/**
 * The simulation driver: owns the event queue and the current time.
 *
 * Components hold a reference to the Simulator, schedule relative or
 * absolute events, and read now(). run() drains events until the
 * queue is empty or a horizon is reached.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p fn at absolute time @p when (>= now()). */
    template <typename F>
    EventId
    schedule(Tick when, F &&fn)
    {
        if (when < _now)
            panicScheduledInPast(when, _now);
        return _queue.schedule(when, std::forward<F>(fn));
    }

    /** Schedule @p fn @p delay ticks from now. */
    template <typename F>
    EventId
    scheduleIn(Tick delay, F &&fn)
    {
        return schedule(_now + delay, std::forward<F>(fn));
    }

    /** Cancel a pending event. */
    void cancel(EventId id) { _queue.cancel(id); }

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p horizon. Events scheduled exactly at the horizon still run.
     *
     * @return the final simulated time (== horizon if it was hit).
     */
    Tick run(Tick horizon = kMaxTick);

    /** @return true if no events remain. */
    bool idle() const { return _queue.empty(); }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return _executed; }

    /** Direct access for tests. */
    EventQueue &queue() { return _queue; }

  private:
    [[noreturn]] static void panicScheduledInPast(Tick when,
                                                  Tick now);

    EventQueue _queue;
    Tick _now = 0;
    std::uint64_t _executed = 0;
};

} // namespace aw::sim

#endif // AW_SIM_EVENT_QUEUE_HH
