/**
 * @file
 * Discrete-event scheduling: EventQueue and Simulator.
 *
 * The kernel is deliberately small: events are closures scheduled at
 * absolute ticks; ties are broken by insertion order so simulations
 * are deterministic. Events can be cancelled through the EventId
 * returned at scheduling time.
 */

#ifndef AW_SIM_EVENT_QUEUE_HH
#define AW_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace aw::sim {

/** Opaque handle identifying a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel id returned for "no event". */
constexpr EventId kInvalidEventId = 0;

/**
 * A time-ordered queue of closures.
 *
 * Events scheduled for the same tick fire in scheduling order.
 * Cancellation is lazy: cancelled ids are skipped when popped, which
 * keeps schedule/cancel cheap. Cancelling an id that already fired
 * (or was never scheduled) is a harmless no-op.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * @return an id usable with cancel().
     */
    EventId
    schedule(Tick when, Callback cb)
    {
        const EventId id = ++_nextId;
        _heap.push(Entry{when, id, std::move(cb)});
        _pending.insert(id);
        return id;
    }

    /** Cancel a previously scheduled event (no-op if not pending). */
    void
    cancel(EventId id)
    {
        _pending.erase(id);
    }

    /** @return true if a schedule()d event has neither fired nor been
     *  cancelled. */
    bool pending(EventId id) const { return _pending.count(id) != 0; }

    /** @return true if no live (non-cancelled) events remain. */
    bool empty() const { return _pending.empty(); }

    /** Number of live events still queued. */
    std::size_t size() const { return _pending.size(); }

    /**
     * Tick of the next live event.
     * @return kMaxTick when the queue is empty.
     */
    Tick
    nextTick() const
    {
        const_cast<EventQueue *>(this)->skipCancelled();
        return _heap.empty() ? kMaxTick : _heap.top().when;
    }

    /** Result of pop(): when/id/callback of the fired event. */
    struct Popped
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    /**
     * Pop and return the next live event.
     * @pre !empty()
     */
    Popped
    pop()
    {
        skipCancelled();
        Popped out{_heap.top().when, _heap.top().id,
                   std::move(const_cast<Entry &>(_heap.top()).cb)};
        _heap.pop();
        _pending.erase(out.id);
        return out;
    }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id;
        }
    };

    /** Drop cancelled entries sitting at the top of the heap. */
    void
    skipCancelled()
    {
        while (!_heap.empty() && !_pending.count(_heap.top().id))
            _heap.pop();
    }

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> _heap;
    std::unordered_set<EventId> _pending;
    EventId _nextId = kInvalidEventId;
};

/**
 * The simulation driver: owns the event queue and the current time.
 *
 * Components hold a reference to the Simulator, schedule relative or
 * absolute events, and read now(). run() drains events until the
 * queue is empty or a horizon is reached.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p cb at absolute time @p when (>= now()). */
    EventId schedule(Tick when, EventQueue::Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    EventId
    scheduleIn(Tick delay, EventQueue::Callback cb)
    {
        return schedule(_now + delay, std::move(cb));
    }

    /** Cancel a pending event. */
    void cancel(EventId id) { _queue.cancel(id); }

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p horizon. Events scheduled exactly at the horizon still run.
     *
     * @return the final simulated time (== horizon if it was hit).
     */
    Tick run(Tick horizon = kMaxTick);

    /** @return true if no events remain. */
    bool idle() const { return _queue.empty(); }

    /** Number of events executed so far. */
    std::uint64_t eventsExecuted() const { return _executed; }

    /** Direct access for tests. */
    EventQueue &queue() { return _queue; }

  private:
    EventQueue _queue;
    Tick _now = 0;
    std::uint64_t _executed = 0;
};

} // namespace aw::sim

#endif // AW_SIM_EVENT_QUEUE_HH
