/**
 * @file
 * UniqueCallback: a move-only callable with inline storage.
 *
 * The discrete-event kernel schedules millions of closures per
 * simulated second. std::function heap-allocates any capture larger
 * than its tiny SBO (16 bytes on libstdc++) -- and the hottest
 * closure in the simulator, the service-completion event, captures a
 * 48-byte Request. UniqueCallback gives every kernel closure 64
 * bytes of inline storage, so the steady-state event loop performs
 * no per-event allocation at all; larger captures (rare, cold paths
 * only) transparently fall back to the heap.
 *
 * Move-only on purpose: events fire exactly once, so the copyability
 * std::function demands of its targets buys nothing and forbids
 * move-only captures.
 */

#ifndef AW_SIM_CALLBACK_HH
#define AW_SIM_CALLBACK_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace aw::sim {

/**
 * A move-only `void()` callable with 64 bytes of inline storage.
 */
class UniqueCallback
{
  public:
    /** Captures up to this size are stored inline (no allocation). */
    static constexpr std::size_t kInlineBytes = 64;

    UniqueCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, UniqueCallback>>>
    UniqueCallback(F &&fn) // NOLINT: implicit like std::function
    {
        emplace(std::forward<F>(fn));
    }

    UniqueCallback(UniqueCallback &&other) noexcept
    {
        if (other._ops) {
            other._ops->relocate(_buf, other._buf);
            _ops = other._ops;
            other._ops = nullptr;
        }
    }

    UniqueCallback &
    operator=(UniqueCallback &&other) noexcept
    {
        if (this != &other) {
            destroy();
            if (other._ops) {
                other._ops->relocate(_buf, other._buf);
                _ops = other._ops;
                other._ops = nullptr;
            }
        }
        return *this;
    }

    UniqueCallback(const UniqueCallback &) = delete;
    UniqueCallback &operator=(const UniqueCallback &) = delete;

    ~UniqueCallback() { destroy(); }

    /** Construct a callable directly in this object's storage,
     *  replacing any current target -- the zero-move path the event
     *  kernel uses to build closures straight into their slab slot. */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (std::is_same_v<Fn, UniqueCallback>) {
            *this = std::forward<F>(fn);
            return;
        }
        destroy();
        _ops = nullptr;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(_buf))
                Fn(std::forward<F>(fn));
            _ops = &inlineOps<Fn>;
        } else {
            ::new (static_cast<void *>(_buf))
                Fn *(new Fn(std::forward<F>(fn)));
            _ops = &heapOps<Fn>;
        }
    }

    /** Invoke the stored callable. @pre *this is non-empty. */
    void operator()() { _ops->invoke(_buf); }

    explicit operator bool() const noexcept { return _ops != nullptr; }

    /** Drop the stored callable (back to the empty state). */
    void
    reset() noexcept
    {
        destroy();
        _ops = nullptr;
    }

  private:
    /** Type-erased operations; one static table per stored type. */
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage) noexcept;
    };

    template <typename Fn>
    static constexpr Ops inlineOps{
        [](void *s) { (*std::launder(reinterpret_cast<Fn *>(s)))(); },
        [](void *dst, void *src) noexcept {
            Fn *from = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*from));
            from->~Fn();
        },
        [](void *s) noexcept {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops heapOps{
        [](void *s) {
            (**std::launder(reinterpret_cast<Fn **>(s)))();
        },
        [](void *dst, void *src) noexcept {
            ::new (dst) Fn *(
                *std::launder(reinterpret_cast<Fn **>(src)));
        },
        [](void *s) noexcept {
            delete *std::launder(reinterpret_cast<Fn **>(s));
        },
    };

    void
    destroy() noexcept
    {
        if (_ops)
            _ops->destroy(_buf);
    }

    alignas(std::max_align_t) unsigned char _buf[kInlineBytes];
    const Ops *_ops = nullptr;
};

} // namespace aw::sim

#endif // AW_SIM_CALLBACK_HH
