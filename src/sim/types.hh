/**
 * @file
 * Fundamental simulation types: ticks (picosecond time), durations and
 * clock frequencies.
 *
 * The whole library uses a single integral time base of one picosecond
 * per tick. A picosecond base lets every clock of interest be expressed
 * as an exact integral period (e.g., a 500 MHz power-management agent
 * clock is exactly 2000 ticks) while a 64-bit counter still covers
 * more than 100 days of simulated time.
 */

#ifndef AW_SIM_TYPES_HH
#define AW_SIM_TYPES_HH

#include <cstdint>

namespace aw::sim {

/** Simulation time in picoseconds. */
using Tick = std::uint64_t;

/** Signed tick difference, for deltas that may be negative. */
using TickDelta = std::int64_t;

/** The maximum representable tick; used as "never". */
constexpr Tick kMaxTick = ~Tick(0);

/** @{ Ticks per common time unit (1 tick == 1 ps). */
constexpr Tick kTicksPerPs = 1;
constexpr Tick kTicksPerNs = 1000;
constexpr Tick kTicksPerUs = 1000 * 1000;
constexpr Tick kTicksPerMs = 1000ull * 1000 * 1000;
constexpr Tick kTicksPerSec = 1000ull * 1000 * 1000 * 1000;
/** @} */

/** @{ Convert a duration in a given unit into ticks. */
constexpr Tick
fromPs(double ps)
{
    return static_cast<Tick>(ps * static_cast<double>(kTicksPerPs) + 0.5);
}

constexpr Tick
fromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

constexpr Tick
fromUs(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kTicksPerUs) + 0.5);
}

constexpr Tick
fromMs(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kTicksPerMs) + 0.5);
}

constexpr Tick
fromSec(double sec)
{
    return static_cast<Tick>(sec * static_cast<double>(kTicksPerSec) + 0.5);
}
/** @} */

/** @{ Convert ticks back to floating-point durations. */
constexpr double
toNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerNs);
}

constexpr double
toUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerUs);
}

constexpr double
toMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerMs);
}

constexpr double
toSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSec);
}
/** @} */

/**
 * A clock frequency. Stored in hertz; exposes the period in ticks.
 *
 * Periods are rounded to the nearest picosecond, which is exact for
 * every frequency that divides 1 THz (all the clocks this library
 * models: 0.8, 1.0, 2.0, 2.2, 2.5, 3.0 GHz cores and the 500 MHz PMA).
 */
class Frequency
{
  public:
    constexpr Frequency() : _hz(0.0) {}
    explicit constexpr Frequency(double hz) : _hz(hz) {}

    static constexpr Frequency
    ghz(double f)
    {
        return Frequency(f * 1e9);
    }

    static constexpr Frequency
    mhz(double f)
    {
        return Frequency(f * 1e6);
    }

    constexpr double hz() const { return _hz; }
    constexpr double gigahertz() const { return _hz / 1e9; }
    constexpr double megahertz() const { return _hz / 1e6; }

    constexpr bool valid() const { return _hz > 0.0; }

    /** Clock period in ticks (picoseconds), rounded to nearest. */
    constexpr Tick
    period() const
    {
        return static_cast<Tick>(1e12 / _hz + 0.5);
    }

    /** Duration of @p n clock cycles in ticks. */
    constexpr Tick
    cycles(std::uint64_t n) const
    {
        return period() * n;
    }

    constexpr bool
    operator==(const Frequency &other) const
    {
        return _hz == other._hz;
    }

    constexpr auto operator<=>(const Frequency &other) const
    {
        return _hz <=> other._hz;
    }

  private:
    double _hz;
};

} // namespace aw::sim

#endif // AW_SIM_TYPES_HH
