/**
 * @file
 * Error and status reporting in the spirit of gem5's base/logging.hh.
 *
 * - panic():  an internal invariant was violated (a library bug);
 *             aborts so a debugger/core dump can capture state.
 * - fatal():  the simulation cannot continue due to a user error
 *             (bad configuration, invalid argument); exits cleanly.
 * - warn():   something is suspicious but the run continues.
 * - inform(): status messages.
 *
 * All functions take printf-style format strings. strprintf() is the
 * underlying printf-into-std::string helper, exposed for reuse.
 */

#ifndef AW_SIM_LOGGING_HH
#define AW_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace aw::sim {

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/** Report an internal bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious condition; the run continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an informational message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (tests use this). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() are currently silenced. */
bool quiet();

} // namespace aw::sim

#endif // AW_SIM_LOGGING_HH
