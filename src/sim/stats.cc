#include "sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace aw::sim {

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

double
Accumulator::cv() const
{
    const double m = mean();
    return m != 0.0 ? stddev() / m : 0.0;
}

double
PercentileTracker::percentile(double p) const
{
    if (p < 0.0 || p > 100.0)
        panic("percentile out of range: %f", p);
    if (_samples.empty())
        return 0.0;
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
    if (p == 0.0)
        return _samples.front();
    // Nearest-rank: ceil(p/100 * N), 1-based.
    const auto n = static_cast<double>(_samples.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank == 0)
        rank = 1;
    return _samples[rank - 1];
}

double
PercentileTracker::mean() const
{
    if (_samples.empty())
        return 0.0;
    double sum = 0.0;
    for (double s : _samples)
        sum += s;
    return sum / static_cast<double>(_samples.size());
}

Histogram::Histogram(double lo, double hi, std::size_t nbins)
    : _lo(lo), _hi(hi), _counts(nbins, 0)
{
    if (nbins == 0)
        panic("Histogram: need at least one bin");
    if (hi <= lo)
        panic("Histogram: hi (%f) must exceed lo (%f)", hi, lo);
    _width = (hi - lo) / static_cast<double>(nbins);
}

void
Histogram::add(double x, std::uint64_t weight)
{
    _total += weight;
    if (x < _lo) {
        _underflow += weight;
        return;
    }
    if (x >= _hi) {
        _overflow += weight;
        return;
    }
    auto idx = static_cast<std::size_t>((x - _lo) / _width);
    if (idx >= _counts.size())
        idx = _counts.size() - 1; // guard FP rounding at the upper edge
    _counts[idx] += weight;
}

double
Histogram::binLo(std::size_t i) const
{
    return _lo + _width * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return _lo + _width * static_cast<double>(i + 1);
}

void
Histogram::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _underflow = _overflow = _total = 0;
}

void
WeightedShares::reset()
{
    std::fill(_weights.begin(), _weights.end(), 0.0);
    _total = 0.0;
}

} // namespace aw::sim
