#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace aw::sim {

namespace {

bool quietFlag = false;

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed <= 0)
        return std::string();
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    emit("panic", s);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    emit("fatal", s);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    emit("warn", s);
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    emit("info", s);
}

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

} // namespace aw::sim
