#include "sim/random.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace aw::sim {

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    // Advance the SplitMix64 counter by the stream index, then
    // finalize: equivalent to taking the (stream+1)-th output of a
    // SplitMix64 generator seeded with splitmix64 state `base`.
    return splitmix64(base + stream * 0x9E3779B97F4A7C15ull);
}

LognormalParams::LognormalParams(double mean, double cv)
    : mean(mean)
{
    if (mean <= 0.0)
        panic("LognormalParams: mean must be positive (got %f)",
              mean);
    if (cv <= 0.0) {
        // Degenerate: no variation requested.
        degenerate = true;
        return;
    }
    // For lognormal(mu, sigma): mean = exp(mu + sigma^2/2) and
    // cv^2 = exp(sigma^2) - 1, so sigma^2 = ln(1 + cv^2).
    const double sigma2 = std::log(1.0 + cv * cv);
    mu = std::log(mean) - 0.5 * sigma2;
    sigma = std::sqrt(sigma2);
    degenerate = false;
}

double
Rng::lognormalMeanCv(double mean, double cv)
{
    return LognormalParams(mean, cv).draw(*this);
}

double
Rng::boundedPareto(double lo, double hi, double alpha)
{
    if (lo <= 0.0 || hi <= lo)
        panic("boundedPareto: need 0 < lo < hi (lo=%f hi=%f)", lo, hi);
    if (alpha <= 0.0)
        panic("boundedPareto: alpha must be positive (got %f)", alpha);
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    // Inverse CDF of the bounded Pareto distribution.
    const double x = -(u * ha - u * la - ha) / (ha * la);
    return std::pow(x, -1.0 / alpha);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : _skew(s)
{
    if (n == 0)
        panic("ZipfDistribution: empty support");
    _cdf.resize(n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
        _cdf[i] = sum;
    }
    for (std::size_t i = 0; i < n; ++i)
        _cdf[i] /= sum;
}

std::size_t
ZipfDistribution::operator()(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(_cdf.begin(), _cdf.end(), u);
    if (it == _cdf.end())
        return _cdf.size() - 1;
    return static_cast<std::size_t>(it - _cdf.begin());
}

} // namespace aw::sim
