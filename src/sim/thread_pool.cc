#include "sim/thread_pool.hh"

namespace aw::sim {

unsigned
ThreadPool::resolveThreads(unsigned threads)
{
    if (threads > 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = resolveThreads(threads);
    _workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _workers.push_back(std::make_unique<Worker>());
    _threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(_mtx);
        _stop = true;
    }
    _workCv.notify_all();
    for (auto &t : _threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    Worker &w = *_workers[_nextWorker];
    _nextWorker = (_nextWorker + 1) % _workers.size();
    {
        // Push and account under _mtx so (a) a worker that races
        // the push cannot decrement _pending before the increment
        // and (b) the state change is ordered against the sleep in
        // workerLoop (lock order is always _mtx then queue mutex).
        std::lock_guard<std::mutex> lock(_mtx);
        {
            std::lock_guard<std::mutex> qlock(w.mtx);
            w.queue.push_back(std::move(task));
        }
        ++_pending;
    }
    _workCv.notify_one();
}

std::optional<std::function<void()>>
ThreadPool::take(std::size_t self)
{
    // Own queue first (back: newest, cache-warm) ...
    {
        Worker &w = *_workers[self];
        std::lock_guard<std::mutex> qlock(w.mtx);
        if (!w.queue.empty()) {
            auto task = std::move(w.queue.back());
            w.queue.pop_back();
            return task;
        }
    }
    // ... then steal from a peer (front: oldest).
    for (std::size_t off = 1; off < _workers.size(); ++off) {
        Worker &w = *_workers[(self + off) % _workers.size()];
        std::lock_guard<std::mutex> qlock(w.mtx);
        if (!w.queue.empty()) {
            auto task = std::move(w.queue.front());
            w.queue.pop_front();
            return task;
        }
    }
    return std::nullopt;
}

bool
ThreadPool::haveWork() const
{
    for (const auto &w : _workers) {
        std::lock_guard<std::mutex> qlock(w->mtx);
        if (!w->queue.empty())
            return true;
    }
    return false;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    while (true) {
        auto task = take(self);
        if (!task) {
            // submit() pushes under _mtx, so holding _mtx across
            // the haveWork() probe and the sleep closes the
            // lost-wakeup window.
            std::unique_lock<std::mutex> lock(_mtx);
            _workCv.wait(lock,
                         [&] { return _stop || haveWork(); });
            if (_stop)
                return;
            continue;
        }
        (*task)();
        {
            std::lock_guard<std::mutex> lock(_mtx);
            --_pending;
            if (_pending == 0)
                _doneCv.notify_all();
        }
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mtx);
    _doneCv.wait(lock, [&] { return _pending == 0; });
}

} // namespace aw::sim
