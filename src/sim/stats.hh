/**
 * @file
 * Statistics collection: accumulators, histograms and percentile
 * trackers used by the latency/power reporting machinery.
 */

#ifndef AW_SIM_STATS_HH
#define AW_SIM_STATS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace aw::sim {

/**
 * Streaming scalar statistics: count, sum, min, max, mean and
 * variance (Welford's algorithm, numerically stable).
 */
class Accumulator
{
  public:
    Accumulator() { reset(); }

    void
    reset()
    {
        _count = 0;
        _sum = 0.0;
        _min = std::numeric_limits<double>::infinity();
        _max = -std::numeric_limits<double>::infinity();
        _mean = 0.0;
        _m2 = 0.0;
    }

    void
    add(double x)
    {
        ++_count;
        _sum += x;
        if (x < _min)
            _min = x;
        if (x > _max)
            _max = x;
        const double delta = x - _mean;
        _mean += delta / static_cast<double>(_count);
        _m2 += delta * (x - _mean);
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const { return _count ? _mean : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        return _count ? _m2 / static_cast<double>(_count) : 0.0;
    }

    double stddev() const;

    /** Coefficient of variation (stddev / mean), 0 if mean == 0. */
    double cv() const;

  private:
    std::uint64_t _count;
    double _sum;
    double _min;
    double _max;
    double _mean;
    double _m2;
};

/**
 * Exact percentile tracking by sample retention.
 *
 * Stores every sample; percentile() sorts lazily and caches until the
 * next add(). Suitable for the request counts this library simulates
 * (millions of samples at most per run).
 */
class PercentileTracker
{
  public:
    PercentileTracker() = default;

    /** Pre-allocate for an expected sample count. */
    void reserve(std::size_t n) { _samples.reserve(n); }

    void
    add(double x)
    {
        _samples.push_back(x);
        _sorted = false;
    }

    std::size_t count() const { return _samples.size(); }

    bool empty() const { return _samples.empty(); }

    /**
     * The p-th percentile (p in [0, 100]) using nearest-rank on the
     * sorted samples. An empty tracker reports 0.0 for every
     * percentile (like the empty Accumulator's accessors), so
     * aggregation paths need no special case for windows that
     * completed no requests. p outside [0, 100] is a panic.
     */
    double percentile(double p) const;

    /** Convenience accessors. */
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }
    double p999() const { return percentile(99.9); }

    double mean() const;

    /** Append every sample of @p other; lets aggregators pool
     *  per-component trackers into exact global percentiles. */
    void
    merge(const PercentileTracker &other)
    {
        _samples.insert(_samples.end(), other._samples.begin(),
                        other._samples.end());
        _sorted = false;
    }

    void
    reset()
    {
        _samples.clear();
        _sorted = false;
    }

  private:
    mutable std::vector<double> _samples;
    mutable bool _sorted = false;
};

/**
 * Fixed-width binned histogram with underflow/overflow buckets.
 */
class Histogram
{
  public:
    /**
     * @param lo     lower edge of the first bin
     * @param hi     upper edge of the last bin (must be > lo)
     * @param nbins  number of bins (must be >= 1)
     */
    Histogram(double lo, double hi, std::size_t nbins);

    void add(double x, std::uint64_t weight = 1);

    std::size_t bins() const { return _counts.size(); }
    std::uint64_t binCount(std::size_t i) const { return _counts.at(i); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t total() const { return _total; }

    /** Lower edge of bin @p i. */
    double binLo(std::size_t i) const;
    /** Upper edge of bin @p i. */
    double binHi(std::size_t i) const;

    void reset();

  private:
    double _lo;
    double _hi;
    double _width;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
};

/**
 * Time-weighted fraction tracker: accumulates durations attributed to
 * discrete categories and reports each category's share.
 *
 * This is the core of residency accounting (fraction of time per
 * C-state).
 */
class WeightedShares
{
  public:
    explicit WeightedShares(std::size_t categories)
        : _weights(categories, 0.0)
    {}

    void
    add(std::size_t category, double weight)
    {
        _weights.at(category) += weight;
        _total += weight;
    }

    double totalWeight() const { return _total; }

    /** Fraction of total weight in @p category (0 if no weight). */
    double
    share(std::size_t category) const
    {
        return _total > 0.0 ? _weights.at(category) / _total : 0.0;
    }

    double weight(std::size_t category) const
    {
        return _weights.at(category);
    }

    std::size_t categories() const { return _weights.size(); }

    void reset();

  private:
    std::vector<double> _weights;
    double _total = 0.0;
};

} // namespace aw::sim

#endif // AW_SIM_STATS_HH
