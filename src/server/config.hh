/**
 * @file
 * Server configuration: the BIOS/OS knob combinations the paper's
 * evaluation sweeps (Turbo on/off x C-state sets x AW), plus the
 * physical constants of the modeled machine.
 */

#ifndef AW_SERVER_CONFIG_HH
#define AW_SERVER_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cap/powercap.hh"
#include "cstate/config.hh"
#include "power/units.hh"
#include "server/package.hh"
#include "server/pstate.hh"
#include "server/turbo.hh"
#include "sim/types.hh"

namespace aw::server {

/** How arriving requests are mapped to cores. */
enum class DispatchPolicy
{
    /** Static partitioning: each core owns an equal slice of the
     *  offered load (pinned worker threads, the paper's setup). */
    Static,

    /** CARB-style packing: requests go to the lowest-numbered
     *  already-awake core with queue headroom, so the remaining
     *  cores see long idle periods (Sec 8's workload-aware idle
     *  management comparison point). */
    Packing,
};

/** @{ Name <-> value registry for DispatchPolicy, the same naming
 *  convention as the routing-policy and governor registries, so
 *  every policy axis parses and prints identically across awsim,
 *  awsweep and ExperimentSpec. Unknown names are fatal() with the
 *  known list. */
const char *name(DispatchPolicy policy);
DispatchPolicy dispatchPolicyByName(const std::string &name);
const std::vector<std::string> &dispatchPolicyNames();
/** @} */

/**
 * Everything needed to instantiate a ServerSim.
 */
struct ServerConfig
{
    std::string name = "baseline";

    /** Cores participating in request service. */
    unsigned cores = 10;

    /** Enabled idle states. */
    cstate::CStateConfig cstates = cstate::CStateConfig::legacyBaseline();

    /** Idle-governance policy spec (cstate::GovernorRegistry):
     *  "menu" (the behavior-preserving default), "teo", "ladder",
     *  "static:<state>" or "oracle". Each core clones its own
     *  instance from one prototype, so no prediction state is
     *  shared between cores. */
    std::string governor = "menu";

    /** Turbo Boost. P-states are disabled throughout the paper's
     *  evaluation, so there is no pstatesEnabled knob; C1E/C6AE
     *  still drop to Pn internally as part of their definition. */
    bool turboEnabled = true;

    /** Run the active state at the Pn (minimum) frequency point:
     *  the "pace" side of the race-to-halt analysis (Sec 8). */
    bool runAtPn = false;

    /** Request-to-core mapping. */
    DispatchPolicy dispatch = DispatchPolicy::Static;

    /** Max queued requests per core before packing spills over. */
    unsigned packingQueueLimit = 4;

    /** OS-tick idle-state promotion: a core still idle when the
     *  next tick fires re-runs state selection with the observed
     *  idle length and sinks into a deeper enabled state (cpuidle's
     *  tick re-selection). Off by default to keep the paper's
     *  expected-case single-server calibration; the fleet layer
     *  enables it so spare servers do not camp in C1 forever. */
    bool idlePromotion = false;
    sim::Tick idlePromotionTick = sim::fromMs(4.0);

    /** Optional package C-state hierarchy (PC2/PC6). Off by
     *  default, matching the paper's evaluation. */
    bool packageCStatesEnabled = false;
    PackageCStateModel::Params packageParams{};

    TurboModel::Params turboParams{};
    PStateTable pstates = PStateTable::xeonSilver4114();

    /** Frequency-governance policy spec (freq::FreqRegistry):
     *  "performance", "powersave", "ondemand", "conservative" or
     *  "racetohalt". Empty (the default) keeps the legacy static
     *  operating point (base, or Pn under runAtPn) with zero DVFS
     *  machinery on the hot path. Like `governor`, each core clones
     *  its own instance from one validated prototype. */
    std::string freqPolicy;

    /** PM-QoS-style per-request latency SLO in microseconds
     *  (freq::LatencyQoS). 0 (the default) = unconstrained; > 0
     *  filters the enabled idle states down to wakes the SLO can
     *  absorb and floors the DVFS ladder at build time. */
    double sloUs = 0.0;

    /** RAPL-style package power cap + RC thermal coupling
     *  (cap::CapConfig). Disabled by default: no control events,
     *  no enforcement machinery, artifacts byte-identical to a
     *  build without the subsystem. Enforcement precedence is
     *  cap -> QoS -> governor (docs/POWERCAP.md). */
    cap::CapConfig cap;

    /** Uncore (LLC, mesh, memory controllers) power, charged at
     *  package level regardless of core states. */
    power::Watts uncorePower = 18.0;

    /** Per-core snoop probe rate and private-cache hit fraction. */
    double snoopRatePerSec = 0.0;
    double snoopHitFraction = 0.3;

    /** Client-observed network round trip added to server latency
     *  for end-to-end numbers (paper: measured at 117 us). */
    sim::Tick networkLatency = sim::fromUs(117.0);

    /** RNG seed base; core i uses seed + i. */
    std::uint64_t seed = 42;

    /** @{ Named configurations from the evaluation (Secs 7.1-7.3).
     *  NT_* = no turbo; T_* = turbo enabled. */
    static ServerConfig baseline();          //!< P-off, Turbo+C on
    static ServerConfig awBaseline();        //!< baseline w/ C6A/C6AE
    static ServerConfig ntBaseline();        //!< Turbo off
    static ServerConfig ntNoC6();            //!< Turbo, C6 off
    static ServerConfig ntNoC6NoC1e();       //!< Turbo, C6, C1E off
    static ServerConfig ntAwNoC6NoC1e();     //!< NT + C6A only
    static ServerConfig tNoC6();             //!< Turbo on, C6 off
    static ServerConfig tNoC6NoC1e();        //!< Turbo on, C6+C1E off
    static ServerConfig tAwNoC6NoC1e();      //!< Turbo on + C6A only
    static ServerConfig legacyC1C6();        //!< MySQL/Kafka baseline
    static ServerConfig legacyC1Only();      //!< ... with C6 disabled
    static ServerConfig awC6aOnly();         //!< ... C1 -> C6A
    /** @} */
};

} // namespace aw::server

#endif // AW_SERVER_CONFIG_HH
