/**
 * @file
 * Package-level idle states (PC-states).
 *
 * The paper's footnote 1 notes that package C-states (e.g., PC6)
 * save uncore power but need all cores idle plus long residency,
 * with even larger transition latencies than core C6 -- which is
 * why its evaluation keeps the uncore powered. This module models
 * that hierarchy as an optional extension (the AgilePkgC companion
 * work direction): the package drops to PC2/PC6 only when *every*
 * core is in a qualifying idle state for a hysteresis interval.
 */

#ifndef AW_SERVER_PACKAGE_HH
#define AW_SERVER_PACKAGE_HH

#include <array>
#include <cstdint>

#include "cstate/cstate.hh"
#include "power/units.hh"
#include "sim/types.hh"

namespace aw::server {

/** Package idle states. */
enum class PkgCState : std::uint8_t
{
    PC0 = 0, //!< at least one core active: uncore at full power
    PC2,     //!< all cores idle: uncore clocks reduced
    PC6,     //!< all cores in a deep state + hysteresis: uncore
             //!< power-gated except wake logic
    NumStates,
};

constexpr std::size_t kNumPkgCStates =
    static_cast<std::size_t>(PkgCState::NumStates);

const char *name(PkgCState s);

/**
 * Package C-state policy and power model.
 */
class PackageCStateModel
{
  public:
    struct Params
    {
        /** Uncore power at PC0 (full). */
        power::Watts uncorePc0 = 18.0;

        /** Uncore power share retained at PC2 / PC6. */
        double pc2Factor = 0.6;
        double pc6Factor = 0.25;

        /** All-cores-idle dwell required before PC6. */
        sim::Tick pc6Hysteresis = 200 * sim::kTicksPerUs;

        /** Extra wake latency charged to the first request that
         *  wakes the package out of PC6. */
        sim::Tick pc6ExitLatency = 40 * sim::kTicksPerUs;
    };

    explicit PackageCStateModel(Params params) : _params(params) {}
    PackageCStateModel() : PackageCStateModel(Params{}) {}

    const Params &params() const { return _params; }

    /**
     * Core-side qualification: PC6 requires every core in a state
     * at least as deep as C6A/C6 (power-gated); PC2 any idle state.
     */
    static bool qualifiesPc6(cstate::CStateId id);

    /**
     * Re-evaluate the package state given the cores' situation.
     *
     * @param now              current time
     * @param all_idle         every core is in some idle state
     * @param all_deep         every core is in a PC6-qualifying state
     * @return the package state effective at @p now
     */
    PkgCState update(sim::Tick now, bool all_idle, bool all_deep);

    PkgCState state() const { return _state; }

    /** Uncore power at the current state. */
    power::Watts uncorePower() const;

    /** Uncore power for an arbitrary state. */
    power::Watts uncorePowerAt(PkgCState s) const;

    /** Wake latency to charge when leaving the current state for
     *  PC0 (only PC6 pays). */
    sim::Tick exitLatency() const;

    /** @{ Residency accounting. */
    void noteStateSince(sim::Tick now);
    std::array<sim::Tick, kNumPkgCStates> residency() const
    {
        return _time;
    }
    double residencyShare(PkgCState s, sim::Tick window) const;
    /** @} */

    void reset(sim::Tick now);

  private:
    void accrue(sim::Tick now);

    Params _params;
    PkgCState _state = PkgCState::PC0;
    sim::Tick _allDeepSince = sim::kMaxTick;
    sim::Tick _since = 0;
    std::array<sim::Tick, kNumPkgCStates> _time{};
};

} // namespace aw::server

#endif // AW_SERVER_PACKAGE_HH
