#include "server/core_sim.hh"

#include "freq/qos.hh"
#include "sim/logging.hh"

namespace aw::server {

using cstate::CStateId;

StatePowers
StatePowers::fromModels(const core::AwPpaModel &ppa)
{
    StatePowers p;
    for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
        p.idle[i] =
            cstate::descriptor(static_cast<CStateId>(i)).corePower;
    }
    // AW states come from the live PPA rollup (midpoints).
    p.idle[cstate::index(CStateId::C6A)] = ppa.c6aPowerMid();
    p.idle[cstate::index(CStateId::C6AE)] = ppa.c6aePowerMid();
    p.activeP1 = cstate::kC0PowerP1;
    return p;
}

CoreSim::CoreSim(sim::Simulator &simr, const ServerConfig &cfg,
                 const cstate::GovernorPolicy &governor,
                 const freq::FreqPolicy *freq_proto,
                 const core::AwCoreModel &aw,
                 const workload::WorkloadProfile &profile,
                 double per_core_rate, unsigned id,
                 CompletionHook on_complete)
    : _sim(simr), _cfg(cfg), _aw(aw), _profile(profile),
      _onComplete(std::move(on_complete)),
      _caches(uarch::PrivateCaches::skylakeServer()),
      _context(),
      _transitions(_caches, _context, aw.controller().awLatencies()),
      _governor(governor.clone()),
      _residency(simr.now()),
      _turbo(cfg.turboParams, cfg.turboEnabled),
      _snoops(cfg.snoopRatePerSec, cfg.snoopHitFraction,
              cfg.seed + 7919 * (id + 1)),
      _powers(StatePowers::fromModels(aw.ppa())),
      _arrivals(per_core_rate > 0.0
                    ? profile.makeArrivals(per_core_rate)
                    : nullptr),
      _rng(cfg.seed + id), _id(id)
{
    // ---- hot-loop tables: everything constant at the fixed
    // operating point is derived once, here, instead of per event.
    {
        double f = _cfg.runAtPn ? _cfg.pstates.minimum.hz()
                                : _cfg.pstates.base.hz();
        if (_cfg.cstates.usesAgileWatts())
            f *= 1.0 - core::Ufpg::kFrequencyDegradation;
        _effFreq = sim::Frequency(f);
    }
    for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
        const auto id_i = static_cast<CStateId>(i);
        const auto &desc = cstate::descriptor(id_i);
        _isAw[i] = desc.isAgileWatts;
        _depth[i] = desc.depth;
        if (id_i != CStateId::C6)
            _lat[i] = _transitions.latency(id_i, _effFreq);
    }
    // C6 entry re-reads the live cache dirty fraction at entry time;
    // cache the flush-independent remainder (context save, PG
    // controller, software path) and the constant exit.
    _latC6Fixed = _transitions.latency(CStateId::C6, _effFreq);
    _latC6Fixed.entry -= _caches.flushTime(_effFreq);
    const double scale = _profile.activePowerScale();
    _activePower =
        (_cfg.runAtPn ? _powers.activePn : _powers.activeP1) * scale;
    _boostPower = _powers.activeBoost * scale;
    _deepestEnabled = _cfg.cstates.deepestEnabled();

    if (freq_proto || _cfg.cap.enabled()) {
        // ---- DVFS governance and/or cap enforcement: one table
        // per ladder level, derived exactly like the static point
        // above (AW degradation and the C6 flush split included),
        // so pinning the top level reproduces the legacy tables
        // bit-for-bit. The policy subsumes runAtPn -- level 0 IS
        // the Pn point. A power cap without a frequency governor
        // builds the same tables: the cap controller clamps the
        // operating point down this ladder before it resorts to
        // forced idle.
        if (freq_proto)
            _freqPolicy = freq_proto->clone();
        const freq::PStateLadder ladder(_cfg.pstates);
        const double degrade =
            _cfg.cstates.usesAgileWatts()
                ? 1.0 - core::Ufpg::kFrequencyDegradation
                : 1.0;
        _levels.resize(ladder.count());
        for (std::size_t l = 0; l < ladder.count(); ++l) {
            LevelTables &t = _levels[l];
            t.effFreq =
                sim::Frequency(ladder.frequency(l).hz() * degrade);
            for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
                const auto id_i = static_cast<CStateId>(i);
                if (id_i != CStateId::C6)
                    t.lat[i] = _transitions.latency(id_i, t.effFreq);
            }
            t.latC6Fixed =
                _transitions.latency(CStateId::C6, t.effFreq);
            t.latC6Fixed.entry -= _caches.flushTime(t.effFreq);
            t.activeUnscaled = ladder.activePower(l);
            t.activePower = t.activeUnscaled * scale;
        }
        if (_cfg.sloUs > 0.0) {
            _minLevel = freq::LatencyQoS{_cfg.sloUs}.frequencyFloor(
                ladder, _profile.service());
        }
        _curLevel = _freqPolicy
                        ? _freqPolicy->select(0, 0.0)
                        : (_cfg.runAtPn ? 0 : ladder.top());
        if (_curLevel < _minLevel)
            _curLevel = _minLevel;
        if (_curLevel > ladder.top())
            _curLevel = ladder.top();
        _pendingLevel = _curLevel;
        _wantLevel = _curLevel;
        const LevelTables &t0 = _levels[_curLevel];
        _effFreq = t0.effFreq;
        _lat = t0.lat;
        _latC6Fixed = t0.latC6Fixed;
        _activePower = t0.activePower;
        _turbo.setSustainedPower(_sim.now(), t0.activeUnscaled);
    }

    if (_governor->needsOracle()) {
        // Clairvoyance only exists where this core generates its
        // own arrivals: there is always exactly one future arrival
        // event scheduled, at a known time. Centrally dispatched
        // streams (packing, traces, fleet splits) decide targets at
        // arrival time, so no per-core foreknowledge exists.
        if (!_arrivals)
            sim::fatal(
                "governor '%s' needs per-core arrival "
                "foreknowledge; it only works with static dispatch "
                "over synthetic per-core arrivals (not packing, "
                "trace replay or fleet mode)",
                _governor->spec().c_str());
        _governor->setOracle([this](sim::Tick now) {
            return _nextArrivalAt > now ? _nextArrivalAt - now
                                        : sim::Tick(0);
        });
        // Energy of one idle period in a given state, from the live
        // transition and power models: entry+exit flows run at
        // active power, the remainder of the interval at the
        // state's resident power. This is what the simulator itself
        // will charge, so the oracle's choice is truly the cheapest.
        _governor->setCostModel([this](CStateId s, sim::Tick idle) {
            const double active = _activePower;
            if (s == CStateId::C0) // polling: active power throughout
                return active * sim::toSec(idle);
            const auto lat = latencyOf(s);
            const sim::Tick resident =
                idle > lat.entry ? idle - lat.entry : 0;
            return active * sim::toSec(lat.entry + lat.exit) +
                   _powers.idle[cstate::index(s)] *
                       sim::toSec(resident);
        });
    }
    // A moderately warm cache going into the first idle period.
    _caches.setDirtyFraction(0.3);
    updatePower();
}

void
CoreSim::start()
{
    if (_arrivals)
        scheduleNextArrival();
    if (_snoops.enabled())
        scheduleNextSnoop();
    if (_freqPolicy && _freqPolicy->evalInterval() > 0) {
        _loadLast = _sim.now();
        scheduleFreqEval();
    }
    // The core starts with an empty queue: go idle.
    beginIdle();
}

void
CoreSim::noteBusy(bool busy)
{
    if (!_freqPolicy || busy == _busyNow)
        return;
    const sim::Tick now = _sim.now();
    accrueLoad(now);
    _busyNow = busy;
    requestLevel(_freqPolicy->observe(now, busy, targetLevel()));
}

void
CoreSim::scheduleFreqEval()
{
    _sim.scheduleIn(_freqPolicy->evalInterval(),
                    [this]() { onFreqEval(); });
}

void
CoreSim::onFreqEval()
{
    const sim::Tick now = _sim.now();
    accrueLoad(now);
    const sim::Tick window = _freqPolicy->evalInterval();
    double load = static_cast<double>(_busyAccum) /
                  static_cast<double>(window);
    if (load > 1.0)
        load = 1.0;
    _busyAccum = 0;
    requestLevel(_freqPolicy->select(now, load));
    scheduleFreqEval();
}

void
CoreSim::requestLevel(std::size_t level)
{
    // Precedence cap -> QoS -> governor: remember the unclamped
    // request (re-issued when the cap ceiling moves), raise it to
    // the QoS floor, then let the cap ceiling override both.
    _wantLevel = level;
    if (level < _minLevel)
        level = _minLevel;
    std::size_t top = _levels.size() - 1;
    if (_capLevel < top)
        top = _capLevel;
    if (level > top)
        level = top;
    if (_rampInFlight) {
        // Coalesce: the in-flight ramp lands on the newest target.
        _pendingLevel = level;
        return;
    }
    if (level == _curLevel)
        return;
    _pendingLevel = level;
    _rampInFlight = true;
    _sim.scheduleIn(freq::kRampLatency, [this]() { onRampDone(); });
}

void
CoreSim::onRampDone()
{
    _rampInFlight = false;
    if (_pendingLevel == _curLevel)
        return; // retargeted back mid-ramp: nothing changed
    applyLevel(_pendingLevel);
}

void
CoreSim::applyLevel(std::size_t level)
{
    _curLevel = level;
    const LevelTables &t = _levels[level];
    _effFreq = t.effFreq;
    _lat = t.lat;
    _latC6Fixed = t.latC6Fixed;
    _activePower = t.activePower;
    ++_freqTransitions;
    _freqRampEnergy += freq::kRampEnergy;
    // In-flight service keeps the rate it started at; the power
    // level and the turbo sustain anchor move with the new point.
    _turbo.setSustainedPower(_sim.now(), t.activeUnscaled);
    if (_observer)
        _observer->onFreqChange(_id, _sim.now(), _effFreq.hz());
    updatePower();
}

void
CoreSim::setCapState(std::size_t level_cap, sim::Tick nap_len,
                     sim::Tick nap_period)
{
    _capLevel = level_cap;
    _napLen = nap_len;
    _napPeriod = nap_period;
    // Re-clamp the operating point against the new ceiling (or let
    // it recover toward the last unclamped request). An in-flight
    // nap completes on its own schedule.
    if (!_levels.empty())
        requestLevel(_wantLevel);
}

std::uint64_t
CoreSim::inject(workload::Request req)
{
    const std::uint64_t id = _nextReqId++;
    req.id = id;
    onArrival(std::move(req));
    return id;
}

void
CoreSim::scheduleNextArrival()
{
    const sim::Tick gap = _arrivals->nextGap(_rng);
    _nextArrivalAt = _sim.now() + gap;
    _sim.scheduleIn(gap, [this]() {
        workload::Request req;
        req.id = _nextReqId++;
        req.arrival = _sim.now();
        req.demand = _profile.service().draw(_rng);
        onArrival(std::move(req));
        scheduleNextArrival();
    });
}

void
CoreSim::onArrival(workload::Request req)
{
    if (_observer)
        _observer->onRequestArrival(_id, req.id, _sim.now());
    _queue.push_back(std::move(req));
    switch (_mode) {
      case Mode::Active:
      case Mode::ExitingIdle:
        // Will be drained when the current activity finishes.
        break;
      case Mode::EnteringIdle:
        // A forced nap must run its course: arrivals queue behind
        // it (that queueing -- plus the wake at nap end -- is the
        // throttle's latency cost).
        if (_napping)
            break;
        // Hardware must complete the entry flow first; wake right
        // after. This is the misprediction penalty.
        if (!_wakePending) {
            _wakePending = true;
            ++_mispredictedEntries;
            noteIdleObserved(_sim.now() - _idleStart);
            // The wake stall starts now: the entry-flow remainder
            // (C6's cache flush included) plus the exit flow all
            // stand between this arrival and service.
            if (_observer)
                _observer->onWakeStart(_id, _sim.now(), _idleState);
        }
        break;
      case Mode::Idle:
        if (_napping)
            break; // see above: the nap end wakes the core
        noteIdleObserved(_sim.now() - _idleStart);
        // C0 polling wakes instantly: no episode to publish.
        if (_observer && _idleState != CStateId::C0)
            _observer->onWakeStart(_id, _sim.now(), _idleState);
        beginWake();
        break;
    }
}

void
CoreSim::beginService()
{
    if (_queue.empty()) {
        beginIdle();
        return;
    }
    // Cap enforcement beyond the ladder floor: a due forced nap
    // preempts the queue at the service boundary (one predictable
    // never-taken test while uncapped).
    if (_napLen > 0 && _sim.now() >= _nextNapAt) {
        beginForcedNap();
        return;
    }
    _mode = Mode::Active;
    noteBusy(true);
    workload::Request req = std::move(_queue.front());
    _queue.pop_front();
    req.serviceStart = _sim.now();
    if (_observer)
        _observer->onServiceStart(_id, req.id, _sim.now());

    // Frequency decision: boost if the thermal credit covers the
    // whole request, else base. A frequency governor gates boost on
    // targeting the top ladder level (intel_pstate-style: turbo only
    // engages above a max-performance request), with the sustain
    // anchor tracking the applied level.
    sim::Frequency freq = _effFreq;
    const sim::Tick dur_boost = req.demand.duration(
        _cfg.pstates.turbo);
    _boosting = false;
    // With ladder tables (governor or cap) boost requires targeting
    // the top level, so a cap clamp also suppresses turbo; the
    // legacy static path keeps the runAtPn rule.
    const bool boost_ok =
        !_levels.empty() ? targetLevel() + 1 == _levels.size()
                         : !_cfg.runAtPn;
    if (_turbo.enabled() && boost_ok &&
        _turbo.canBoost(_sim.now(), dur_boost)) {
        _turbo.commitBoost(_sim.now(), dur_boost);
        _boosting = true;
        freq = _cfg.pstates.turbo;
    }
    updatePower();

    const sim::Tick dur = req.demand.duration(freq);
    _caches.touch(_profile.writeFraction());
    _sim.scheduleIn(dur, [this, req = std::move(req)]() mutable {
        onServiceDone(std::move(req));
    });
}

void
CoreSim::onServiceDone(workload::Request req)
{
    req.completion = _sim.now();
    ++_completed;
    _boosting = false;
    if (_onComplete)
        _onComplete(req);
    beginService(); // drains the queue or goes idle
}

void
CoreSim::beginIdle()
{
    noteBusy(false);
    _idleStart = _sim.now();
    _idleState = _governor->select(_sim.now());
    if (_observer)
        _observer->onIdleStart(_id, _sim.now());
    if (_idleState == CStateId::C0) {
        // No idle state enabled: poll in C0. Stay "Idle" at active
        // power with zero-latency wake.
        _mode = Mode::Idle;
        noteStateEnter(CStateId::C0);
        updatePower();
        return;
    }
    _mode = Mode::EnteringIdle;
    _wakePending = false;
    updatePower();
    const sim::Tick entry = latencyOf(_idleState).entry;
    if (_idleState == CStateId::C6) {
        // Entering C6 flushes the private caches.
        _caches.flush();
    }
    _sim.scheduleIn(entry, [this]() { onIdleEntered(); });
}

void
CoreSim::onIdleEntered()
{
    _mode = Mode::Idle;
    noteStateEnter(_idleState);
    updatePower();
    if (_wakePending) {
        _wakePending = false;
        beginWake();
        return;
    }
    maybeSchedulePromotion();
}

void
CoreSim::maybeSchedulePromotion()
{
    if (!_cfg.idlePromotion)
        return;
    // A pinned or clairvoyant policy never changes its pick: don't
    // tick an idle core's event queue for nothing.
    if (!_governor->canPromote())
        return;
    // Already as deep as the platform allows: nothing to promote to.
    if (_idleState == _deepestEnabled)
        return;
    // Batched check: the first tick multiple (measured from now,
    // like the per-tick chain this replaces) at which the elapsed
    // idle reaches the governor's promotion horizon. Intermediate
    // ticks could only re-confirm the current state, so they are
    // never scheduled.
    const sim::Tick horizon =
        _governor->promotionHorizon(_idleState);
    if (horizon == sim::kMaxTick)
        return;
    const sim::Tick tick = _cfg.idlePromotionTick;
    const sim::Tick elapsed = _sim.now() - _idleStart;
    sim::Tick wait = tick;
    if (horizon > elapsed) {
        const sim::Tick need = horizon - elapsed;
        wait = ((need + tick - 1) / tick) * tick;
    }
    // Stale-check by idle-period start time in addition to event
    // cancellation: a wake in the meantime starts a new period.
    _promotionEvent =
        _sim.scheduleIn(wait, [this, stamp = _idleStart]() {
            _promotionEvent = sim::kInvalidEventId;
            onPromotionTick(stamp);
        });
}

void
CoreSim::onPromotionTick(sim::Tick idle_start)
{
    if (_mode != Mode::Idle || _idleStart != idle_start)
        return; // the core woke since; this tick is stale
    const sim::Tick elapsed = _sim.now() - _idleStart;
    const CStateId target = _governor->reselect(_sim.now(), elapsed);
    if (_depth[cstate::index(target)] <=
        _depth[cstate::index(_idleState)]) {
        // Not yet past the next state's target residency; keep
        // ticking (the observed idle only grows).
        maybeSchedulePromotion();
        return;
    }
    // Promote: run the deeper state's entry flow from here. The
    // idle period continues -- _idleStart is preserved so the
    // governor's eventual observation covers the whole gap. Like
    // the other transition windows, the entry flow is accounted as
    // C0 residency at active power.
    _mode = Mode::EnteringIdle;
    _wakePending = false;
    _idleState = target;
    noteStateEnter(CStateId::C0);
    updatePower();
    if (_idleState == CStateId::C6)
        _caches.flush();
    const sim::Tick entry = latencyOf(_idleState).entry;
    _sim.scheduleIn(entry, [this]() { onIdleEntered(); });
}

void
CoreSim::beginWake()
{
    if (_mode != Mode::Idle)
        sim::panic("CoreSim::beginWake in mode %d",
                   static_cast<int>(_mode));
    // A batched promotion check may still be armed for this idle
    // period; it would be a stale no-op, but cancelling it now frees
    // its slot without waiting for the pop.
    if (_promotionEvent != sim::kInvalidEventId) {
        _sim.cancel(_promotionEvent);
        _promotionEvent = sim::kInvalidEventId;
    }
    if (_idleState == CStateId::C0) {
        // Polling: instant.
        _mode = Mode::Active;
        beginService();
        return;
    }
    _mode = Mode::ExitingIdle;
    // A package sleeping in PC6 pays its wake cost before the core
    // exit flow can start (read before the state-change hook runs,
    // so it reflects the package state at the wake instant).
    const sim::Tick pkg_extra =
        _package ? _package->exitLatency() : 0;
    noteStateEnter(CStateId::C0);
    updatePower();
    const sim::Tick exit =
        pkg_extra + latencyOf(_idleState).exit;
    _sim.scheduleIn(exit, [this]() { onWakeDone(); });
}

void
CoreSim::onWakeDone()
{
    if (_observer)
        _observer->onWakeEnd(_id, _sim.now());
    _mode = Mode::Active;
    updatePower();
    beginService();
}

void
CoreSim::beginForcedNap()
{
    // intel_powerclamp semantics: the nap targets the deepest
    // enabled state directly (no governor selection -- this is an
    // enforcement action, not a prediction), runs the normal entry
    // flow, and holds the core down for _napLen measured from the
    // nap start. The governor still observes the resulting idle
    // period at the end, like any other.
    noteBusy(false);
    _idleStart = _sim.now();
    _idleState = _deepestEnabled;
    _napping = true;
    ++_forcedNaps;
    if (_observer)
        _observer->onIdleStart(_id, _sim.now());
    _sim.scheduleIn(_napLen, [this, stamp = _idleStart]() {
        onNapEnd(stamp);
    });
    if (_idleState == CStateId::C0) {
        // No idle state enabled: the nap stalls service while
        // polling at active power (all cost, no savings -- exactly
        // what forcing idle on such a config deserves).
        _mode = Mode::Idle;
        noteStateEnter(CStateId::C0);
        updatePower();
        return;
    }
    _mode = Mode::EnteringIdle;
    _wakePending = false;
    updatePower();
    const sim::Tick entry = latencyOf(_idleState).entry;
    if (_idleState == CStateId::C6)
        _caches.flush();
    _sim.scheduleIn(entry, [this]() { onIdleEntered(); });
}

void
CoreSim::onNapEnd(sim::Tick stamp)
{
    if (!_napping || _idleStart != stamp)
        return; // stale (the nap this event belonged to is over)
    _napping = false;
    // Space naps by the window's non-nap remainder measured from
    // the nap *end*, so the wake cost cannot starve service: the
    // core gets (period - nap) of nap-free time per window no
    // matter how expensive its deepest state's exit is.
    _nextNapAt = _sim.now() + (_napPeriod > _napLen
                                   ? _napPeriod - _napLen
                                   : _napPeriod);
    if (_mode == Mode::EnteringIdle) {
        // Nap shorter than the entry flow: fall back to the
        // misprediction path -- finish entering, wake right after.
        if (!_queue.empty() && !_wakePending) {
            _wakePending = true;
            noteIdleObserved(_sim.now() - _idleStart);
            if (_observer)
                _observer->onWakeStart(_id, _sim.now(), _idleState);
        }
        return;
    }
    if (_mode != Mode::Idle)
        return;
    if (_queue.empty()) {
        // Nothing queued up behind the nap: the period simply
        // continues as a normal governor-owned idle period.
        maybeSchedulePromotion();
        return;
    }
    noteIdleObserved(_sim.now() - _idleStart);
    if (_observer && _idleState != CStateId::C0)
        _observer->onWakeStart(_id, _sim.now(), _idleState);
    beginWake();
}

void
CoreSim::scheduleNextSnoop()
{
    const sim::Tick next = _snoops.nextArrival(_sim.now());
    if (next == sim::kMaxTick)
        return;
    _sim.schedule(next, [this]() {
        onSnoop();
        scheduleNextSnoop();
    });
}

void
CoreSim::onSnoop()
{
    // Snoops only cost extra power while the core idles with valid
    // private caches; a flushed (C6) core is filtered out at the
    // LLC snoop filter, and an active core absorbs the probe.
    if (_mode != Mode::Idle && _mode != Mode::EnteringIdle)
        return;
    if (_idleState == CStateId::C6 || _idleState == CStateId::C0)
        return;

    const bool hit = _snoops.drawHit();
    sim::Tick window = _caches.snoopServiceTime(_effFreq, hit);
    if (_isAw[cstate::index(_idleState)]) {
        window += _aw.controller().snoopWakeLatency() +
                  _aw.controller().snoopResleepLatency();
    }
    const sim::Tick until = _sim.now() + window;
    if (until > _snoopBusyUntil) {
        _snoopBusyUntil = until;
        updatePower();
        _sim.schedule(until, [this]() { updatePower(); });
    }
}

power::Watts
CoreSim::currentPower() const
{
    // Workload-specific dynamic power skew is folded into the
    // precomputed _activePower/_boostPower scalars: the analytical
    // model only knows the nominal Table 1 constant (Sec 6.3).
    switch (_mode) {
      case Mode::Active:
        return _boosting ? _boostPower : _activePower;
      case Mode::EnteringIdle:
      case Mode::ExitingIdle:
        // Transition flows run parts of the core at active power.
        return _activePower;
      case Mode::Idle: {
        power::Watts p = _powers.idle[cstate::index(_idleState)];
        if (_idleState == CStateId::C0)
            p = _activePower; // polling
        if (_sim.now() < _snoopBusyUntil) {
            p += _isAw[cstate::index(_idleState)]
                     ? core::Ccsm::kSnoopServiceDeltaC6a
                     : core::Ccsm::kSnoopServiceDeltaC1;
        }
        return p;
      }
    }
    return _activePower;
}

void
CoreSim::updatePower()
{
    const power::Watts p = currentPower();
    _meter.setPower(_sim.now(), p);
    _turbo.setPower(_sim.now(), p);
    if (_observer)
        _observer->onCorePower(_id, _sim.now(), p);
    if (_onStateChange)
        _onStateChange();
}

cstate::ResidencySnapshot
CoreSim::residency() const
{
    return _residency.snapshot(_sim.now());
}

power::Joules
CoreSim::energy()
{
    // The fixed PLL/VR relock energy of each completed P-state ramp
    // rides on top of the piecewise-constant power integral.
    return _meter.energy(_sim.now()) + freqTransitionEnergy();
}

power::Watts
CoreSim::averagePower()
{
    const sim::Tick now = _sim.now();
    if (now <= _statsStart)
        return 0.0;
    return energy() / sim::toSec(now - _statsStart);
}

void
CoreSim::resetStats()
{
    _statsStart = _sim.now();
    _meter.reset(_sim.now());
    // Restart residency in the state we are currently in, and
    // re-announce it so an observer's accumulators restart too.
    const CStateId cur =
        _mode == Mode::Idle ? _idleState : CStateId::C0;
    _residency.reset(_sim.now(), cur);
    if (_observer)
        _observer->onCStateEnter(_id, _sim.now(), cur);
    _completed = 0;
    _mispredictedEntries = 0;
    _forcedNapsAtReset = _forcedNaps;
    _freqTransitionsAtReset = _freqTransitions;
    _rampEnergyAtReset = _freqRampEnergy;
    // Re-announce the operating point (static path included) so
    // interval samplers can integrate mean frequency from the
    // window's start without waiting for the first ramp.
    if (_observer)
        _observer->onFreqChange(_id, _sim.now(), _effFreq.hz());
}

} // namespace aw::server
