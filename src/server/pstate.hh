/**
 * @file
 * P-state (DVFS operating point) definitions for the modeled Xeon
 * Silver 4114: base (P1) 2.2 GHz, minimum (Pn) 0.8 GHz, maximum
 * Turbo Boost 3.0 GHz.
 */

#ifndef AW_SERVER_PSTATE_HH
#define AW_SERVER_PSTATE_HH

#include "sim/types.hh"

namespace aw::server {

/** The frequency points of the modeled processor. */
struct PStateTable
{
    sim::Frequency base = sim::Frequency::ghz(2.2);   //!< P1
    sim::Frequency minimum = sim::Frequency::ghz(0.8); //!< Pn
    sim::Frequency turbo = sim::Frequency::ghz(3.0);   //!< max boost

    static constexpr PStateTable
    xeonSilver4114()
    {
        return PStateTable{};
    }
};

} // namespace aw::server

#endif // AW_SERVER_PSTATE_HH
