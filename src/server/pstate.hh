/**
 * @file
 * P-state (DVFS operating point) definitions for the modeled Xeon
 * Silver 4114: base (P1) 2.2 GHz, minimum (Pn) 0.8 GHz, maximum
 * Turbo Boost 3.0 GHz.
 */

#ifndef AW_SERVER_PSTATE_HH
#define AW_SERVER_PSTATE_HH

#include "sim/logging.hh"
#include "sim/types.hh"

namespace aw::server {

/** The frequency points of the modeled processor. */
struct PStateTable
{
    sim::Frequency base = sim::Frequency::ghz(2.2);   //!< P1
    sim::Frequency minimum = sim::Frequency::ghz(0.8); //!< Pn
    sim::Frequency turbo = sim::Frequency::ghz(3.0);   //!< max boost

    static constexpr PStateTable
    xeonSilver4114()
    {
        return PStateTable{};
    }

    /**
     * Die unless the table is physically ordered: every point
     * positive and minimum <= base <= turbo. Called wherever a
     * table enters the simulation (ServerSim/FleetSim build), so a
     * hand-edited config fails loudly instead of producing negative
     * service times or an inverted DVFS ladder.
     */
    void
    validate() const
    {
        if (!minimum.valid() || !base.valid() || !turbo.valid())
            sim::fatal("PStateTable: all frequency points must be "
                       "positive (Pn=%.3f GHz, P1=%.3f GHz, "
                       "turbo=%.3f GHz)",
                       minimum.gigahertz(), base.gigahertz(),
                       turbo.gigahertz());
        if (minimum.hz() > base.hz())
            sim::fatal("PStateTable: Pn (%.3f GHz) must not exceed "
                       "P1 (%.3f GHz)",
                       minimum.gigahertz(), base.gigahertz());
        if (base.hz() > turbo.hz())
            sim::fatal("PStateTable: P1 (%.3f GHz) must not exceed "
                       "turbo (%.3f GHz)",
                       base.gigahertz(), turbo.gigahertz());
    }
};

} // namespace aw::server

#endif // AW_SERVER_PSTATE_HH
