#include "server/server_sim.hh"

#include <algorithm>

#include "cstate/governors.hh"
#include "freq/policies.hh"
#include "freq/qos.hh"
#include "sim/logging.hh"

namespace aw::server {

ServerSim::ServerSim(ServerConfig cfg,
                     workload::WorkloadProfile profile,
                     double total_qps)
    : _cfg(std::move(cfg)), _profile(std::move(profile)),
      _totalQps(total_qps), _dispatchRng(_cfg.seed + 999331),
      _package(_cfg.packageParams)
{
    if (total_qps <= 0.0)
        sim::fatal("ServerSim: offered load must be positive");

    const bool packing = _cfg.dispatch == DispatchPolicy::Packing;
    buildCores(packing ? 0.0 : total_qps / _cfg.cores);
    if (packing)
        _dispatchArrivals = _profile.makeArrivals(total_qps);
}

ServerSim::ServerSim(ServerConfig cfg,
                     workload::WorkloadProfile profile,
                     std::unique_ptr<workload::ArrivalProcess> arrivals)
    : _cfg(std::move(cfg)), _profile(std::move(profile)),
      _totalQps(arrivals ? arrivals->ratePerSec() : 0.0),
      _dispatchArrivals(std::move(arrivals)),
      _dispatchRng(_cfg.seed + 999331), _package(_cfg.packageParams)
{
    if (!_dispatchArrivals)
        sim::fatal("ServerSim: null arrival stream");
    // All requests flow through the central dispatcher, so cores do
    // not generate their own arrivals.
    buildCores(0.0);
}

void
ServerSim::buildCores(double per_core_rate)
{
    if (_cfg.cores == 0)
        sim::fatal("ServerSim: need at least one core");

    // The core model is a shared immutable constant set; rebuilding
    // it per server (it was a make_unique here) only re-derived the
    // same numbers, which a sweep pays thousands of times.
    _aw = &core::AwCoreModel::canonical();

    // Keep the package model's PC0 power consistent with the
    // configured uncore power.
    if (_cfg.packageCStatesEnabled &&
        _cfg.packageParams.uncorePc0 != _cfg.uncorePower) {
        _cfg.packageParams.uncorePc0 = _cfg.uncorePower;
        _package = PackageCStateModel(_cfg.packageParams);
    }

    // DVFS / PM-QoS resolution happens before the cores (which hold
    // a reference to _cfg) are constructed. A latency SLO filters
    // the enabled idle states down to wakes its budget absorbs and,
    // on the static path, refuses a Pn pin the service budget cannot
    // carry; the frequency floor for governed cores is derived
    // per-core from the same LatencyQoS.
    _cfg.pstates.validate();
    if (_cfg.sloUs > 0.0) {
        const freq::LatencyQoS qos{_cfg.sloUs};
        _cfg.cstates = qos.admissibleStates(_cfg.cstates);
        if (_cfg.runAtPn && _cfg.freqPolicy.empty()) {
            const freq::PStateLadder ladder(_cfg.pstates);
            if (qos.frequencyFloor(ladder, _profile.service()) > 0)
                _cfg.runAtPn = false;
        }
    }

    // Power cap + thermal coupling: validated here, armed in run().
    // The controller and thermal model exist only when enabled, so
    // the disabled path schedules no control events and every
    // artifact stays byte-identical.
    _cfg.cap.validate();
    if (_cfg.cap.enabled()) {
        _capCtl = std::make_unique<cap::PowerCapController>(
            _cfg.cap, freq::PStateLadder(_cfg.pstates).count());
        _capDecision = _capCtl->decision();
        if (_cfg.cap.thermalEnabled) {
            _thermal = std::make_unique<cap::RcThermalModel>(
                _cfg.cap.thermal, 0);
        }
    }

    // One prototype per governance axis per server, validated here
    // (bad specs die on construction, not mid-run); each core clones
    // private instances so policy state never leaks across cores.
    const auto governor_proto =
        cstate::makeGovernor(_cfg.governor, _cfg.cstates);
    std::unique_ptr<freq::FreqPolicy> freq_proto;
    if (!_cfg.freqPolicy.empty()) {
        freq_proto = freq::makeFreqPolicy(
            _cfg.freqPolicy, freq::PStateLadder(_cfg.pstates));
    }

    _latency.reserve(1 << 16);
    _coreIdle.assign(_cfg.cores, 0);
    _coreDeep.assign(_cfg.cores, 0);
    for (unsigned i = 0; i < _cfg.cores; ++i) {
        _cores.push_back(std::make_unique<CoreSim>(
            _sim, _cfg, *governor_proto, freq_proto.get(), *_aw,
            _profile, per_core_rate, i,
            [this, i](const workload::Request &req) {
                const double us = sim::toUs(req.serverLatency());
                _latency.add(us);
                if (_observer)
                    _observer->onComplete(i, req.id, _sim.now(), us);
            }));
        if (_cfg.packageCStatesEnabled) {
            _cores.back()->setPackageModel(&_package);
            _cores.back()->setStateChangeHook(
                [this, i]() { onCoreStateChange(i); });
        }
    }
    _uncoreMeter.setPower(0, _cfg.uncorePower);
}

void
ServerSim::setObserver(TelemetryObserver *observer)
{
    _observer = observer;
    for (auto &core : _cores)
        core->setObserver(observer);
}

void
ServerSim::setCapSchedule(std::vector<cap::BudgetSpan> spans)
{
    if (!_capCtl)
        sim::fatal("ServerSim: cap schedule needs cfg.cap enabled");
    for (std::size_t i = 1; i < spans.size(); ++i) {
        if (spans[i].start < spans[i - 1].start)
            sim::fatal("ServerSim: cap schedule spans must be in "
                       "ascending start order");
    }
    _capSchedule = std::move(spans);
    _capSpan = 0;
}

void
ServerSim::scheduleCapControl()
{
    _sim.scheduleIn(_cfg.cap.controlInterval,
                    [this]() { onCapControl(); });
}

void
ServerSim::onCapControl()
{
    const sim::Tick now = _sim.now();

    // Measured interval power: delta of the summed core meters
    // (the simulator's RAPL counters) plus the piecewise-constant
    // uncore draw.
    power::Joules joules = 0.0;
    for (auto &core : _cores)
        joules += core->energy();
    if (joules < _capLastEnergy)
        _capLastEnergy = joules; // a stats reset restarted meters
    const double dt = sim::toSec(now - _capLastTick);
    const power::Watts uncore = _cfg.packageCStatesEnabled
                                    ? _package.uncorePower()
                                    : _cfg.uncorePower;
    const power::Watts measured =
        dt > 0.0 ? (joules - _capLastEnergy) / dt + uncore : uncore;
    _capLastEnergy = joules;
    _capLastTick = now;

    // Fleet budget redistribution: advance to the span in effect.
    while (_capSpan < _capSchedule.size() &&
           _capSchedule[_capSpan].start <= now) {
        _capCtl->setBudget(_capSchedule[_capSpan].watts);
        ++_capSpan;
    }

    double temp = 0.0;
    if (_thermal) {
        temp = _thermal->advance(now, measured);
        if (temp > _maxTempC)
            _maxTempC = temp;
        if (_observer)
            _observer->onTemperature(now, temp);
    }

    const cap::ThrottleDecision d = _capCtl->step(measured, temp);
    if (d != _capDecision) {
        _capDecision = d;
        const sim::Tick period = _cfg.cap.napPeriod;
        const sim::Tick nap_len = static_cast<sim::Tick>(
            d.forcedIdleShare * static_cast<double>(period) + 0.5);
        for (auto &core : _cores)
            core->setCapState(d.levelCap, nap_len, period);
        if (_capThrottledNow != d.throttled) {
            if (_capThrottledNow)
                _capThrottledTicks += now - _capThrottleSince;
            _capThrottleSince = now;
            _capThrottledNow = d.throttled;
        }
        if (_observer) {
            _observer->onCapThrottle(now, d.levelCap,
                                     d.forcedIdleShare, d.throttled);
        }
    }
    scheduleCapControl();
}

std::size_t
ServerSim::pickPackingTarget()
{
    // 1) Lowest-numbered awake core with queue headroom.
    for (std::size_t i = 0; i < _cores.size(); ++i) {
        const CoreSim &core = *_cores[i];
        const bool awake = core.mode() != CoreSim::Mode::Idle;
        if (awake && core.queueLength() < _cfg.packingQueueLimit)
            return i;
    }
    // 2) Otherwise wake the shallowest-sleeping idle core.
    std::size_t best = _cores.size();
    int best_depth = 0;
    for (std::size_t i = 0; i < _cores.size(); ++i) {
        const CoreSim &core = *_cores[i];
        if (core.mode() != CoreSim::Mode::Idle)
            continue;
        const int depth = core.idleStateDepth();
        if (best == _cores.size() || depth < best_depth) {
            best = i;
            best_depth = depth;
        }
    }
    if (best < _cores.size())
        return best;
    // 3) Everyone is awake and saturated: shortest queue.
    std::size_t shortest = 0;
    for (std::size_t i = 1; i < _cores.size(); ++i) {
        if (_cores[i]->queueLength() <
            _cores[shortest]->queueLength())
            shortest = i;
    }
    return shortest;
}

void
ServerSim::scheduleNextDispatch()
{
    const sim::Tick gap = _dispatchArrivals->nextGap(_dispatchRng);
    // A finite (non-looping) trace signals its end with kMaxTick.
    if (gap >= sim::kMaxTick - _sim.now())
        return;
    _sim.scheduleIn(gap, [this]() {
        workload::Request req;
        req.arrival = _sim.now();
        req.demand = _profile.service().draw(_dispatchRng);
        const std::size_t target =
            _cfg.dispatch == DispatchPolicy::Packing
                ? pickPackingTarget()
                : _rrNext++ % _cores.size();
        const std::uint64_t id =
            _cores[target]->inject(std::move(req));
        if (_observer) {
            _observer->onRequestDispatch(
                static_cast<unsigned>(target), id, _sim.now());
        }
        scheduleNextDispatch();
    });
}

void
ServerSim::onCoreStateChange(std::size_t changed)
{
    // Refresh only the changed core's contribution; the population
    // counts answer the all-idle/all-deep questions in O(1).
    const CoreSim &core = *_cores[changed];
    const bool idle = core.mode() == CoreSim::Mode::Idle &&
                      core.idleState() != cstate::CStateId::C0;
    const bool deep =
        idle && PackageCStateModel::qualifiesPc6(core.idleState());
    if (idle != static_cast<bool>(_coreIdle[changed])) {
        _coreIdle[changed] = idle;
        _numIdle += idle ? 1 : -1;
    }
    if (deep != static_cast<bool>(_coreDeep[changed])) {
        _coreDeep[changed] = deep;
        _numDeep += deep ? 1 : -1;
    }
    const bool all_idle = _numIdle == _cores.size();
    const bool all_deep = _numDeep == _cores.size();
    const PkgCState before = _package.state();
    const PkgCState now_state =
        _package.update(_sim.now(), all_idle, all_deep);
    if (now_state != before || all_deep) {
        _uncoreMeter.setPower(_sim.now(), _package.uncorePower());
        if (_observer)
            _observer->onUncorePower(_sim.now(),
                                     _package.uncorePower());
    }
    // PC6 promotion happens after a quiet hysteresis interval with
    // no state-change events, so arm a timer for it.
    _sim.cancel(_pkgPromotion);
    _pkgPromotion = sim::kInvalidEventId;
    if (all_idle && all_deep && now_state != PkgCState::PC6) {
        _pkgPromotion = _sim.scheduleIn(
            _cfg.packageParams.pc6Hysteresis + 1,
            [this, changed]() { onCoreStateChange(changed); });
    }
}

RunResult
ServerSim::run(sim::Tick duration, sim::Tick warmup)
{
    for (auto &core : _cores)
        core->start();
    if (_dispatchArrivals)
        scheduleNextDispatch();
    if (_capCtl) {
        _capLastTick = _sim.now();
        _capThrottleSince = _sim.now();
        scheduleCapControl();
    }

    // Warmup: run unmeasured, then reset all statistics. The
    // observer is told first so the per-core resetStats state
    // re-announcements land inside its fresh window.
    if (warmup > 0)
        _sim.run(warmup);
    if (_observer)
        _observer->onMeasurementStart(_sim.now());
    for (auto &core : _cores)
        core->resetStats();
    _latency.reset();
    _package.reset(_sim.now());
    _uncoreMeter.reset(_sim.now());
    if (_observer) {
        _observer->onUncorePower(_sim.now(),
                                 _cfg.packageCStatesEnabled
                                     ? _package.uncorePower()
                                     : _cfg.uncorePower);
    }
    if (_capCtl) {
        // Re-anchor the cap accounting on the fresh meters and
        // re-announce the standing decision into the new window
        // (mirrors the per-core operating-point re-announcement).
        _capLastEnergy = 0.0;
        _capLastTick = _sim.now();
        _capThrottledTicks = 0;
        _capThrottleSince = _sim.now();
        _maxTempC = _thermal ? _thermal->temperature() : 0.0;
        if (_observer) {
            _observer->onCapThrottle(_sim.now(),
                                     _capDecision.levelCap,
                                     _capDecision.forcedIdleShare,
                                     _capDecision.throttled);
            if (_thermal) {
                _observer->onTemperature(_sim.now(),
                                         _thermal->temperature());
            }
        }
    }
    _statsStart = _sim.now();

    const sim::Tick start = _sim.now();
    _sim.run(start + duration);
    const sim::Tick end = _sim.now();
    const sim::Tick window = end - start;
    _package.noteStateSince(end);
    if (_observer)
        _observer->onMeasurementEnd(end);

    RunResult r;
    r.configName = _cfg.name;
    r.workloadName = _profile.name();
    r.offeredQps = _totalQps;
    r.window = window;
    r.events = _sim.eventsExecuted();

    // Aggregate residency: cores are homogeneous, so the core-time
    // weighted aggregate is the mean of the per-core shares.
    cstate::ResidencySnapshot agg;
    agg.window = window;
    for (auto &core : _cores) {
        const auto snap = core->residency();
        for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
            agg.share[i] += snap.share[i] / _cores.size();
            agg.entries[i] += snap.entries[i];
        }
        r.coreEnergy += core->energy();
        r.avgCorePower += core->averagePower() / _cores.size();
        r.requests += core->requestsCompleted();
        r.mispredictedEntries += core->mispredictedEntries();
        r.forcedIdleNaps += core->forcedNaps();
        r.freqTransitions += core->freqTransitions();
        r.freqTransitionEnergyJ += core->freqTransitionEnergy();
    }
    r.residency = agg;

    if (_capCtl) {
        if (_capThrottledNow) {
            _capThrottledTicks += end - _capThrottleSince;
            _capThrottleSince = end;
        }
        r.capThrottleShare =
            window > 0 ? static_cast<double>(_capThrottledTicks) /
                             static_cast<double>(window)
                       : 0.0;
        r.maxTempC = _maxTempC;
    }

    if (_cfg.packageCStatesEnabled) {
        r.avgUncorePower =
            _uncoreMeter.averagePower(end, _statsStart);
        for (std::size_t i = 0; i < kNumPkgCStates; ++i) {
            r.pkgResidency[i] = _package.residencyShare(
                static_cast<PkgCState>(i), window);
        }
    } else {
        r.avgUncorePower = _cfg.uncorePower;
        r.pkgResidency[0] = 1.0;
    }
    r.packagePower =
        r.avgCorePower * _cores.size() + r.avgUncorePower;
    r.achievedQps =
        window > 0 ? r.requests / sim::toSec(window) : 0.0;
    r.transitionsPerRequest =
        r.requests > 0
            ? static_cast<double>(agg.idleTransitions()) / r.requests
            : 0.0;

    if (!_latency.empty()) {
        r.avgLatencyUs = _latency.mean();
        r.p99LatencyUs = _latency.p99();
        r.p999LatencyUs = _latency.p999();
        const double net = sim::toUs(_cfg.networkLatency);
        r.avgLatencyE2eUs = r.avgLatencyUs + net;
        r.p99LatencyE2eUs = r.p99LatencyUs + net;
    }
    return r;
}

RunResult
ServerSim::run()
{
    // Size the measured window for a statistically meaningful
    // number of requests (~60k) but at least one second of
    // simulated time for residency convergence.
    const double target_requests = 60e3;
    const double sec =
        std::max(1.0, target_requests / _totalQps);
    const sim::Tick duration = sim::fromSec(sec);
    const sim::Tick warmup = duration / 10;
    return run(duration, warmup);
}

std::vector<RunResult>
sweepRates(const ServerConfig &cfg,
           const workload::WorkloadProfile &profile,
           const std::vector<double> &rates_qps, sim::Tick duration,
           sim::Tick warmup)
{
    std::vector<RunResult> results;
    results.reserve(rates_qps.size());
    for (const double qps : rates_qps) {
        ServerSim server(cfg, profile, qps);
        results.push_back(duration > 0
                              ? server.run(duration, warmup)
                              : server.run());
    }
    return results;
}

} // namespace aw::server
