/**
 * @file
 * The whole-server simulation: N cores fed by open-loop request
 * streams, aggregated into the statistics the paper's figures plot.
 */

#ifndef AW_SERVER_SERVER_SIM_HH
#define AW_SERVER_SERVER_SIM_HH

#include <memory>
#include <string>
#include <vector>

#include "cap/powercap.hh"
#include "core/aw_core.hh"
#include "cstate/residency.hh"
#include "server/config.hh"
#include "server/core_sim.hh"
#include "server/telemetry.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "workload/profiles.hh"

namespace aw::server {

/**
 * Results of one server run.
 */
struct RunResult
{
    std::string configName;
    std::string workloadName;
    double offeredQps = 0.0;

    /** Aggregate C-state residency (core-time weighted). */
    cstate::ResidencySnapshot residency;

    /** @{ Latency statistics (microseconds). */
    double avgLatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double p999LatencyUs = 0.0;
    double avgLatencyE2eUs = 0.0;
    double p99LatencyE2eUs = 0.0;
    /** @} */

    /** @{ Power/energy over the measurement window. */
    power::Watts avgCorePower = 0.0;  //!< mean over cores
    power::Watts packagePower = 0.0;  //!< cores + uncore
    power::Joules coreEnergy = 0.0;   //!< all cores
    /** @} */

    std::uint64_t requests = 0;
    double achievedQps = 0.0;
    std::uint64_t mispredictedEntries = 0;

    /** Kernel events executed over the whole run (warmup included;
     *  diagnostics/perf-telemetry only -- never part of artifact
     *  schemas, which must not depend on kernel internals). */
    std::uint64_t events = 0;

    /** Mean idle-state transitions per request (Fig 8c expected-
     *  case input). */
    double transitionsPerRequest = 0.0;

    /** @{ DVFS governance accounting over the measured window: the
     *  number of completed P-state ramps across all cores, the fixed
     *  relock energy they were charged (already inside coreEnergy),
     *  and the core-time mean operating frequency. All zero /
     *  the static operating point on the legacy path. */
    std::uint64_t freqTransitions = 0;
    power::Joules freqTransitionEnergyJ = 0.0;
    /** @} */

    /** @{ Power-cap / thermal accounting over the measured window
     *  (all zero while the subsystem is disabled): share of the
     *  window any throttle was in effect, forced-idle naps across
     *  all cores, and the peak junction temperature (0 when the
     *  thermal model is off). */
    double capThrottleShare = 0.0;
    std::uint64_t forcedIdleNaps = 0;
    double maxTempC = 0.0;
    /** @} */

    /** Package C-state residency shares (all zero when the package
     *  hierarchy is disabled; PC0 then covers the whole window). */
    std::array<double, kNumPkgCStates> pkgResidency{};

    /** Average uncore power over the window. */
    power::Watts avgUncorePower = 0.0;

    sim::Tick window = 0;
};

/**
 * Driver: builds cores, runs warmup + measurement, aggregates.
 */
class ServerSim
{
  public:
    /**
     * @param cfg        server configuration
     * @param profile    workload
     * @param total_qps  offered load across all cores
     */
    ServerSim(ServerConfig cfg, workload::WorkloadProfile profile,
              double total_qps);

    /**
     * Drive the server from an externally supplied arrival stream
     * (a captured trace, a diurnal-shaped process, or a fleet load
     * balancer's per-server split) instead of the profile's
     * synthetic generators. Requests are dispatched centrally:
     * round-robin across cores under Static dispatch, or via the
     * packing policy when the config selects Packing.
     */
    ServerSim(ServerConfig cfg, workload::WorkloadProfile profile,
              std::unique_ptr<workload::ArrivalProcess> arrivals);

    /**
     * Run @p warmup of unmeasured time followed by @p duration of
     * measured time.
     */
    RunResult run(sim::Tick duration, sim::Tick warmup);

    /** Convenience: run with defaults sized to the offered rate. */
    RunResult run();

    const core::AwCoreModel &awModel() const { return *_aw; }
    const ServerConfig &config() const { return _cfg; }

    /** Kernel events executed so far (perf telemetry). */
    std::uint64_t eventsExecuted() const
    {
        return _sim.eventsExecuted();
    }

    /** Per-request latency samples of the last measured window;
     *  fleet aggregation pools these for exact global percentiles. */
    const sim::PercentileTracker &latencySamples() const
    {
        return _latency;
    }

    /** Attach a passive telemetry observer (see server/telemetry.hh)
     *  to this server and every core. Call before run(); nullptr
     *  detaches. The observer never perturbs the event stream, so
     *  results are byte-identical with or without one. */
    void setObserver(TelemetryObserver *observer);

    /**
     * Fleet budget redistribution: replace the constant
     * cfg.cap.capWatts budget with a piecewise-constant schedule
     * (ascending start times; each span holds until the next). The
     * balancer computes these at epoch boundaries from its own
     * routed-demand counts, so they are a pure function of the
     * serial balancer pass. Call before run(); requires the cap
     * subsystem enabled.
     */
    void setCapSchedule(std::vector<cap::BudgetSpan> spans);

  private:
    /** Shared constructor body: validate and build the cores. */
    void buildCores(double per_core_rate);

    /** @{ Power-cap control loop (armed only when cfg.cap is
     *  enabled): every control interval, read the package meters,
     *  advance the RC thermal model, step the controller and apply
     *  its decision to every core. */
    void scheduleCapControl();
    void onCapControl();
    /** @} */

    /** Central dispatch: route one request and draw the next. */
    void scheduleNextDispatch();
    std::size_t pickPackingTarget();

    /**
     * Re-evaluate the package C-state after core @p changed moved.
     * Package qualification is tracked incrementally: only the
     * changed core's idle/deep contribution is recomputed, so the
     * per-event cost is O(1) instead of a scan over every core.
     */
    void onCoreStateChange(std::size_t changed);

    ServerConfig _cfg;
    workload::WorkloadProfile _profile;
    double _totalQps;

    sim::Simulator _sim;
    const core::AwCoreModel *_aw = nullptr;
    std::vector<std::unique_ptr<CoreSim>> _cores;
    sim::PercentileTracker _latency;

    /** @{ Per-core package-qualification flags + population counts
     *  (idle = Mode::Idle in a real idle state; deep = additionally
     *  qualifies for PC6), maintained by onCoreStateChange. */
    std::vector<std::uint8_t> _coreIdle;
    std::vector<std::uint8_t> _coreDeep;
    unsigned _numIdle = 0;
    unsigned _numDeep = 0;
    /** @} */

    /** Central dispatcher state (Packing policy or an external
     *  arrival stream). */
    std::unique_ptr<workload::ArrivalProcess> _dispatchArrivals;
    sim::Rng _dispatchRng{1};
    std::uint64_t _nextDispatchId = 0;
    std::size_t _rrNext = 0; //!< round-robin cursor (Static dispatch)

    /** Package C-state machinery. */
    PackageCStateModel _package;
    power::EnergyMeter _uncoreMeter;
    sim::EventId _pkgPromotion = sim::kInvalidEventId;
    sim::Tick _statsStart = 0;

    /** @{ Power-cap / thermal machinery (null while disabled). */
    std::unique_ptr<cap::PowerCapController> _capCtl;
    std::unique_ptr<cap::RcThermalModel> _thermal;
    std::vector<cap::BudgetSpan> _capSchedule;
    std::size_t _capSpan = 0;
    cap::ThrottleDecision _capDecision;
    power::Joules _capLastEnergy = 0.0;
    sim::Tick _capLastTick = 0;
    sim::Tick _capThrottledTicks = 0;
    sim::Tick _capThrottleSince = 0;
    bool _capThrottledNow = false;
    double _maxTempC = 0.0;
    /** @} */

    TelemetryObserver *_observer = nullptr;
};

/**
 * Sweep helper: run the same workload/config pair across the
 * profile's rate levels.
 */
std::vector<RunResult>
sweepRates(const ServerConfig &cfg,
           const workload::WorkloadProfile &profile,
           const std::vector<double> &rates_qps,
           sim::Tick duration = 0, sim::Tick warmup = 0);

} // namespace aw::server

#endif // AW_SERVER_SERVER_SIM_HH
