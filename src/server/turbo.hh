/**
 * @file
 * Turbo Boost thermal-capacitance model (Sec 7.3).
 *
 * Boost headroom is a thermal credit: residing below a cooling
 * threshold (deep idle) accrues credit, boosting above the
 * sustainable power drains it. This reproduces the paper's
 * observation that disabling C1E "keeps the processor at high
 * power, thereby not gaining enough thermal capacitance needed
 * during Turbo Boost periods": a core whose only idle state is C1
 * (1.44 W, above the threshold) never accrues credit and thus never
 * boosts, while C1E (0.88 W) and especially C6A (0.3 W) do.
 */

#ifndef AW_SERVER_TURBO_HH
#define AW_SERVER_TURBO_HH

#include "power/units.hh"
#include "sim/types.hh"

namespace aw::server {

/**
 * Per-core turbo credit accounting.
 *
 * Credit is integrated lazily, like the energy meter: callers
 * report power-level changes and the model accrues/drains between
 * them.
 */
class TurboModel
{
  public:
    struct Params
    {
        /** Idle power below which the core cools (accrues credit). */
        power::Watts coolingThreshold = 1.2;

        /** Sustainable (non-boost) power: P1 active power. */
        power::Watts sustainedPower = 4.0;

        /** Active power while boosting. */
        power::Watts boostPower = 7.0;

        /** Credit capacity in joules of boost headroom. */
        power::Joules capacity = 0.5;
    };

    explicit TurboModel(Params params, bool enabled = true)
        : _params(params), _enabled(enabled)
    {}

    TurboModel() : TurboModel(Params{}) {}

    bool enabled() const { return _enabled; }
    const Params &params() const { return _params; }

    /** Report the core's power level changing at @p now. */
    void
    setPower(sim::Tick now, power::Watts w)
    {
        accrue(now);
        _power = w;
    }

    /**
     * Re-anchor the sustainable power to the active power of the
     * current P-state (DVFS coupling): boost headroom is the gap
     * between the boost power and what the core would draw anyway,
     * so pacing at a low operating point both costs more credit per
     * boosted second and, symmetrically, leaves the cooling
     * threshold untouched. Accrues up to @p now first so credit
     * earned under the old anchor is preserved.
     */
    void
    setSustainedPower(sim::Tick now, power::Watts w)
    {
        accrue(now);
        _params.sustainedPower = w;
    }

    /** Current credit in joules (accrued to @p now). */
    power::Joules
    credit(sim::Tick now)
    {
        accrue(now);
        return _credit;
    }

    /**
     * Can a boosted interval of @p duration be afforded right now?
     * Boosting drains (boostPower - sustainedPower) W.
     */
    bool
    canBoost(sim::Tick now, sim::Tick duration)
    {
        if (!_enabled)
            return false;
        const power::Joules need =
            (_params.boostPower - _params.sustainedPower) *
            sim::toSec(duration);
        return credit(now) >= need;
    }

    /**
     * Commit to boosting for @p duration starting at @p now:
     * pre-drains the credit (the power charged via setPower must be
     * the boost power for the interval).
     */
    void
    commitBoost(sim::Tick now, sim::Tick duration)
    {
        accrue(now);
        const power::Joules need =
            (_params.boostPower - _params.sustainedPower) *
            sim::toSec(duration);
        _credit = _credit >= need ? _credit - need : 0.0;
    }

    void
    reset(sim::Tick now)
    {
        _last = now;
        _credit = 0.0;
    }

  private:
    void
    accrue(sim::Tick now)
    {
        if (now <= _last)
            return;
        const double dt = sim::toSec(now - _last);
        _last = now;
        if (_power < _params.coolingThreshold) {
            _credit += (_params.coolingThreshold - _power) * dt;
            if (_credit > _params.capacity)
                _credit = _params.capacity;
        }
    }

    Params _params;
    bool _enabled;
    sim::Tick _last = 0;
    power::Watts _power = 0.0;
    power::Joules _credit = 0.0;
};

} // namespace aw::server

#endif // AW_SERVER_TURBO_HH
