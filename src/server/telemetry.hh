/**
 * @file
 * Streaming-telemetry observer interface.
 *
 * CoreSim/ServerSim publish their state changes (C-state entries,
 * power-level changes, request completions, governor idle
 * observations) through this null-by-default observer so that
 * time-resolved consumers -- the analysis::TimelineRecorder interval
 * sampler and the transition analyzer -- can watch a run without
 * touching the event stream. The contract that keeps the golden
 * byte-identity suites valid with telemetry enabled:
 *
 *   - the observer is *passive*: callbacks must not schedule
 *     simulator events, draw from any simulation RNG, or mutate
 *     simulation state;
 *   - every hook site is a single `if (_observer)` branch, so the
 *     disabled path costs one predictable-not-taken test per event
 *     (the awperf fleet_sweep scenario gates this in CI);
 *   - all published quantities are piecewise-constant between
 *     events (states, power levels) or point events (completions,
 *     idle observations), so an observer can reconstruct exact
 *     time integrals from the callbacks alone.
 */

#ifndef AW_SERVER_TELEMETRY_HH
#define AW_SERVER_TELEMETRY_HH

#include "cstate/cstate.hh"
#include "power/units.hh"
#include "sim/types.hh"

namespace aw::server {

/**
 * Passive run observer. Every callback has an empty default so
 * implementations override only what they consume.
 */
class TelemetryObserver
{
  public:
    virtual ~TelemetryObserver() = default;

    /** The measured window begins at @p now (post-warmup stats
     *  reset). Cores re-announce their current state right after
     *  via onCStateEnter, so accumulators can restart cleanly. */
    virtual void onMeasurementStart(sim::Tick now) { (void)now; }

    /** The measured window ends at @p now. */
    virtual void onMeasurementEnd(sim::Tick now) { (void)now; }

    /** Core @p core's residency state becomes @p state at @p now
     *  (mirrors every ResidencyCounters::recordEnter, including the
     *  transition windows accounted as C0). */
    virtual void
    onCStateEnter(unsigned core, sim::Tick now, cstate::CStateId state)
    {
        (void)core;
        (void)now;
        (void)state;
    }

    /** Core @p core's power level becomes @p watts at @p now. */
    virtual void
    onCorePower(unsigned core, sim::Tick now, power::Watts watts)
    {
        (void)core;
        (void)now;
        (void)watts;
    }

    /** The package's uncore power level becomes @p watts at @p now. */
    virtual void onUncorePower(sim::Tick now, power::Watts watts)
    {
        (void)now;
        (void)watts;
    }

    /** Core @p core begins an idle period at @p now (CoreSim
     *  beginIdle; promotions continue the same period). */
    virtual void onIdleStart(unsigned core, sim::Tick now)
    {
        (void)core;
        (void)now;
    }

    /** Core @p core's governor observed an ended idle period of
     *  length @p idle at @p now (the observeIdle feedback input;
     *  ground-truthed against onIdleStart by the recorder). */
    virtual void
    onIdleObserved(unsigned core, sim::Tick now, sim::Tick idle)
    {
        (void)core;
        (void)now;
        (void)idle;
    }

    /** Core @p core completed a request at @p now with server
     *  latency @p latency_us (microseconds). */
    virtual void
    onComplete(unsigned core, sim::Tick now, double latency_us)
    {
        (void)core;
        (void)now;
        (void)latency_us;
    }
};

} // namespace aw::server

#endif // AW_SERVER_TELEMETRY_HH
