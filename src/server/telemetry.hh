/**
 * @file
 * Streaming-telemetry observer interface.
 *
 * CoreSim/ServerSim publish their state changes (C-state entries,
 * power-level changes, request lifecycle milestones, governor idle
 * observations) through this null-by-default observer so that
 * time-resolved consumers -- the analysis::TimelineRecorder interval
 * sampler, the transition analyzer and the analysis::RequestTracer
 * span recorder -- can watch a run without touching the event
 * stream. The contract that keeps the golden byte-identity suites
 * valid with telemetry enabled:
 *
 *   - the observer is *passive*: callbacks must not schedule
 *     simulator events, draw from any simulation RNG, or mutate
 *     simulation state;
 *   - every hook site is a single `if (_observer)` branch, so the
 *     disabled path costs one predictable-not-taken test per event
 *     (the awperf fleet_sweep scenario gates this in CI);
 *   - all published quantities are piecewise-constant between
 *     events (states, power levels) or point events (completions,
 *     idle observations), so an observer can reconstruct exact
 *     time integrals from the callbacks alone.
 */

#ifndef AW_SERVER_TELEMETRY_HH
#define AW_SERVER_TELEMETRY_HH

#include <cstdint>
#include <vector>

#include "cstate/cstate.hh"
#include "power/units.hh"
#include "sim/types.hh"

namespace aw::server {

/**
 * Passive run observer. Every callback has an empty default so
 * implementations override only what they consume.
 */
class TelemetryObserver
{
  public:
    virtual ~TelemetryObserver() = default;

    /** The measured window begins at @p now (post-warmup stats
     *  reset). Cores re-announce their current state right after
     *  via onCStateEnter, so accumulators can restart cleanly. */
    virtual void onMeasurementStart(sim::Tick now) { (void)now; }

    /** The measured window ends at @p now. */
    virtual void onMeasurementEnd(sim::Tick now) { (void)now; }

    /** Core @p core's residency state becomes @p state at @p now
     *  (mirrors every ResidencyCounters::recordEnter, including the
     *  transition windows accounted as C0). */
    virtual void
    onCStateEnter(unsigned core, sim::Tick now, cstate::CStateId state)
    {
        (void)core;
        (void)now;
        (void)state;
    }

    /** Core @p core's power level becomes @p watts at @p now. */
    virtual void
    onCorePower(unsigned core, sim::Tick now, power::Watts watts)
    {
        (void)core;
        (void)now;
        (void)watts;
    }

    /** The package's uncore power level becomes @p watts at @p now. */
    virtual void onUncorePower(sim::Tick now, power::Watts watts)
    {
        (void)now;
        (void)watts;
    }

    /** Core @p core's DVFS operating point becomes @p hz at @p now.
     *  Announced once per core at measurement start (like
     *  onCStateEnter) and on every completed P-state ramp; turbo
     *  bursts are power events, not operating-point changes, and do
     *  not fire this. */
    virtual void onFreqChange(unsigned core, sim::Tick now, double hz)
    {
        (void)core;
        (void)now;
        (void)hz;
    }

    /** The server's junction temperature is @p celsius at @p now
     *  (published by the cap control loop every control interval;
     *  never fires while the cap/thermal subsystem is disabled, so
     *  consumers default the value to 0). */
    virtual void onTemperature(sim::Tick now, double celsius)
    {
        (void)now;
        (void)celsius;
    }

    /** The server's cap controller moved to a new throttle decision
     *  at @p now: ladder ceiling @p level_cap, forced-idle duty
     *  @p forced_idle_share, any-throttle flag @p throttled. Fires
     *  only on decision *changes* (piecewise-constant between
     *  calls) and never while the subsystem is disabled. */
    virtual void onCapThrottle(sim::Tick now, std::size_t level_cap,
                               double forced_idle_share,
                               bool throttled)
    {
        (void)now;
        (void)level_cap;
        (void)forced_idle_share;
        (void)throttled;
    }

    /** Core @p core begins an idle period at @p now (CoreSim
     *  beginIdle; promotions continue the same period). */
    virtual void onIdleStart(unsigned core, sim::Tick now)
    {
        (void)core;
        (void)now;
    }

    /** Core @p core's governor observed an ended idle period of
     *  length @p idle at @p now (the observeIdle feedback input;
     *  ground-truthed against onIdleStart by the recorder). */
    virtual void
    onIdleObserved(unsigned core, sim::Tick now, sim::Tick idle)
    {
        (void)core;
        (void)now;
        (void)idle;
    }

    /** @{ Request lifecycle. Requests are identified by
     *  (core, core-local id); ids are assigned in arrival order per
     *  core, so per-core streams are FIFO in id. The milestone
     *  sequence for one request is
     *
     *    onRequestArrival -> [onRequestDispatch] -> onServiceStart
     *      -> onComplete
     *
     *  with at most one onWakeStart/onWakeEnd episode per core
     *  overlapping the wait (a core never idles with queued work).
     *  onRequestDispatch fires only for centrally dispatched
     *  streams (packing, traces, fleet splits), at the same tick as
     *  the arrival but possibly after later same-tick milestones --
     *  consumers must correlate by id, not by callback order. */

    /** Request @p id arrived at core @p core's queue at @p now. */
    virtual void
    onRequestArrival(unsigned core, std::uint64_t id, sim::Tick now)
    {
        (void)core;
        (void)id;
        (void)now;
    }

    /** The server's central dispatcher routed request @p id to core
     *  @p core at @p now (same tick as its arrival). */
    virtual void
    onRequestDispatch(unsigned core, std::uint64_t id, sim::Tick now)
    {
        (void)core;
        (void)id;
        (void)now;
    }

    /** Core @p core begins waking from @p from at @p now. For a
     *  mispredicted entry (arrival mid-entry-flow) this fires when
     *  the wake becomes pending, so the episode covers the entry
     *  remainder -- including C6's cache-flush cost -- plus the
     *  exit flow. C0 polling wakes are instant and publish no
     *  episode. */
    virtual void
    onWakeStart(unsigned core, sim::Tick now, cstate::CStateId from)
    {
        (void)core;
        (void)now;
        (void)from;
    }

    /** Core @p core's wake episode completes at @p now; service of
     *  the queue head begins at the same tick. */
    virtual void onWakeEnd(unsigned core, sim::Tick now)
    {
        (void)core;
        (void)now;
    }

    /** Core @p core starts servicing request @p id at @p now. */
    virtual void
    onServiceStart(unsigned core, std::uint64_t id, sim::Tick now)
    {
        (void)core;
        (void)id;
        (void)now;
    }

    /** Core @p core completed request @p id at @p now with server
     *  latency @p latency_us (microseconds). */
    virtual void onComplete(unsigned core, std::uint64_t id,
                            sim::Tick now, double latency_us)
    {
        (void)core;
        (void)id;
        (void)now;
        (void)latency_us;
    }
    /** @} */
};

/**
 * Fan-out observer: forwards every callback to each attached sink,
 * in attachment order. ServerSim/FleetSim hold a single observer
 * pointer; this is how two passive consumers (say a timeline
 * sampler and a request tracer) watch the same run. Passivity
 * composes: a fanout over passive observers is itself passive.
 */
class TelemetryFanout final : public TelemetryObserver
{
  public:
    /** Attach @p sink (nullptr is ignored). Must outlive the run. */
    void add(TelemetryObserver *sink)
    {
        if (sink)
            _sinks.push_back(sink);
    }

    void onMeasurementStart(sim::Tick now) override
    {
        for (auto *s : _sinks)
            s->onMeasurementStart(now);
    }
    void onMeasurementEnd(sim::Tick now) override
    {
        for (auto *s : _sinks)
            s->onMeasurementEnd(now);
    }
    void onCStateEnter(unsigned core, sim::Tick now,
                       cstate::CStateId state) override
    {
        for (auto *s : _sinks)
            s->onCStateEnter(core, now, state);
    }
    void onCorePower(unsigned core, sim::Tick now,
                     power::Watts watts) override
    {
        for (auto *s : _sinks)
            s->onCorePower(core, now, watts);
    }
    void onUncorePower(sim::Tick now, power::Watts watts) override
    {
        for (auto *s : _sinks)
            s->onUncorePower(now, watts);
    }
    void onFreqChange(unsigned core, sim::Tick now,
                      double hz) override
    {
        for (auto *s : _sinks)
            s->onFreqChange(core, now, hz);
    }
    void onTemperature(sim::Tick now, double celsius) override
    {
        for (auto *s : _sinks)
            s->onTemperature(now, celsius);
    }
    void onCapThrottle(sim::Tick now, std::size_t level_cap,
                       double forced_idle_share,
                       bool throttled) override
    {
        for (auto *s : _sinks)
            s->onCapThrottle(now, level_cap, forced_idle_share,
                             throttled);
    }
    void onIdleStart(unsigned core, sim::Tick now) override
    {
        for (auto *s : _sinks)
            s->onIdleStart(core, now);
    }
    void onIdleObserved(unsigned core, sim::Tick now,
                        sim::Tick idle) override
    {
        for (auto *s : _sinks)
            s->onIdleObserved(core, now, idle);
    }
    void onRequestArrival(unsigned core, std::uint64_t id,
                          sim::Tick now) override
    {
        for (auto *s : _sinks)
            s->onRequestArrival(core, id, now);
    }
    void onRequestDispatch(unsigned core, std::uint64_t id,
                           sim::Tick now) override
    {
        for (auto *s : _sinks)
            s->onRequestDispatch(core, id, now);
    }
    void onWakeStart(unsigned core, sim::Tick now,
                     cstate::CStateId from) override
    {
        for (auto *s : _sinks)
            s->onWakeStart(core, now, from);
    }
    void onWakeEnd(unsigned core, sim::Tick now) override
    {
        for (auto *s : _sinks)
            s->onWakeEnd(core, now);
    }
    void onServiceStart(unsigned core, std::uint64_t id,
                        sim::Tick now) override
    {
        for (auto *s : _sinks)
            s->onServiceStart(core, id, now);
    }
    void onComplete(unsigned core, std::uint64_t id, sim::Tick now,
                    double latency_us) override
    {
        for (auto *s : _sinks)
            s->onComplete(core, id, now, latency_us);
    }

  private:
    std::vector<TelemetryObserver *> _sinks;
};

} // namespace aw::server

#endif // AW_SERVER_TELEMETRY_HH
