#include "server/config.hh"

#include "sim/logging.hh"

namespace aw::server {

const char *
name(DispatchPolicy policy)
{
    switch (policy) {
      case DispatchPolicy::Static: return "static";
      case DispatchPolicy::Packing: return "packing";
    }
    return "?";
}

DispatchPolicy
dispatchPolicyByName(const std::string &name_str)
{
    for (const auto policy :
         {DispatchPolicy::Static, DispatchPolicy::Packing}) {
        if (name_str == name(policy))
            return policy;
    }
    std::string known;
    for (const auto &n : dispatchPolicyNames()) {
        if (!known.empty())
            known += '|';
        known += n;
    }
    sim::fatal("unknown dispatch policy '%s' (%s)", name_str.c_str(),
               known.c_str());
}

const std::vector<std::string> &
dispatchPolicyNames()
{
    static const std::vector<std::string> names{
        name(DispatchPolicy::Static),
        name(DispatchPolicy::Packing),
    };
    return names;
}

ServerConfig
ServerConfig::baseline()
{
    ServerConfig c;
    c.name = "Baseline";
    c.cstates = cstate::CStateConfig::legacyBaseline();
    c.turboEnabled = true;
    return c;
}

ServerConfig
ServerConfig::awBaseline()
{
    ServerConfig c;
    c.name = "AW";
    c.cstates = cstate::CStateConfig::aw();
    c.turboEnabled = true;
    return c;
}

ServerConfig
ServerConfig::ntBaseline()
{
    ServerConfig c;
    c.name = "NT_Baseline";
    c.cstates = cstate::CStateConfig::legacyBaseline();
    c.turboEnabled = false;
    return c;
}

ServerConfig
ServerConfig::ntNoC6()
{
    ServerConfig c;
    c.name = "NT_No_C6";
    c.cstates = cstate::CStateConfig::legacyNoC6();
    c.turboEnabled = false;
    return c;
}

ServerConfig
ServerConfig::ntNoC6NoC1e()
{
    ServerConfig c;
    c.name = "NT_No_C6,No_C1E";
    c.cstates = cstate::CStateConfig::legacyNoC6NoC1E();
    c.turboEnabled = false;
    return c;
}

ServerConfig
ServerConfig::ntAwNoC6NoC1e()
{
    ServerConfig c;
    c.name = "NT_C6A,No_C6,No_C1E";
    c.cstates = cstate::CStateConfig::awNoC6NoC1E();
    c.turboEnabled = false;
    return c;
}

ServerConfig
ServerConfig::tNoC6()
{
    ServerConfig c;
    c.name = "T_No_C6";
    c.cstates = cstate::CStateConfig::legacyNoC6();
    c.turboEnabled = true;
    return c;
}

ServerConfig
ServerConfig::tNoC6NoC1e()
{
    ServerConfig c;
    c.name = "T_No_C6,No_C1E";
    c.cstates = cstate::CStateConfig::legacyNoC6NoC1E();
    c.turboEnabled = true;
    return c;
}

ServerConfig
ServerConfig::tAwNoC6NoC1e()
{
    ServerConfig c;
    c.name = "T_C6A,No_C6,No_C1E";
    c.cstates = cstate::CStateConfig::awNoC6NoC1E();
    c.turboEnabled = true;
    return c;
}

ServerConfig
ServerConfig::legacyC1C6()
{
    ServerConfig c;
    c.name = "Baseline_C1_C6";
    c.cstates = cstate::CStateConfig::legacyC1C6();
    c.turboEnabled = false;
    return c;
}

ServerConfig
ServerConfig::legacyC1Only()
{
    ServerConfig c;
    c.name = "No_C6";
    c.cstates = cstate::CStateConfig::legacyNoC6NoC1E();
    c.turboEnabled = false;
    return c;
}

ServerConfig
ServerConfig::awC6aOnly()
{
    ServerConfig c;
    c.name = "AW_C6A";
    c.cstates = cstate::CStateConfig::awNoC6NoC1E();
    c.turboEnabled = false;
    return c;
}

} // namespace aw::server
