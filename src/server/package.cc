#include "server/package.hh"

#include "sim/logging.hh"

namespace aw::server {

const char *
name(PkgCState s)
{
    switch (s) {
      case PkgCState::PC0: return "PC0";
      case PkgCState::PC2: return "PC2";
      case PkgCState::PC6: return "PC6";
      default: return "?";
    }
}

bool
PackageCStateModel::qualifiesPc6(cstate::CStateId id)
{
    using cstate::CStateId;
    return id == CStateId::C6 || id == CStateId::C6A ||
           id == CStateId::C6AE;
}

void
PackageCStateModel::accrue(sim::Tick now)
{
    if (now > _since) {
        _time[static_cast<std::size_t>(_state)] += now - _since;
        _since = now;
    }
}

PkgCState
PackageCStateModel::update(sim::Tick now, bool all_idle,
                           bool all_deep)
{
    accrue(now);
    if (!all_idle) {
        _state = PkgCState::PC0;
        _allDeepSince = sim::kMaxTick;
        return _state;
    }
    if (all_deep) {
        if (_allDeepSince == sim::kMaxTick)
            _allDeepSince = now;
        if (now - _allDeepSince >= _params.pc6Hysteresis) {
            _state = PkgCState::PC6;
            return _state;
        }
    } else {
        _allDeepSince = sim::kMaxTick;
    }
    // All idle but not (yet) deep enough for PC6.
    if (_state != PkgCState::PC6)
        _state = PkgCState::PC2;
    return _state;
}

power::Watts
PackageCStateModel::uncorePowerAt(PkgCState s) const
{
    switch (s) {
      case PkgCState::PC0:
        return _params.uncorePc0;
      case PkgCState::PC2:
        return _params.uncorePc0 * _params.pc2Factor;
      case PkgCState::PC6:
        return _params.uncorePc0 * _params.pc6Factor;
      default:
        sim::panic("PackageCStateModel: bad state");
    }
}

power::Watts
PackageCStateModel::uncorePower() const
{
    return uncorePowerAt(_state);
}

sim::Tick
PackageCStateModel::exitLatency() const
{
    return _state == PkgCState::PC6 ? _params.pc6ExitLatency : 0;
}

void
PackageCStateModel::noteStateSince(sim::Tick now)
{
    accrue(now);
}

double
PackageCStateModel::residencyShare(PkgCState s,
                                   sim::Tick window) const
{
    if (window == 0)
        return 0.0;
    return static_cast<double>(
               _time[static_cast<std::size_t>(s)]) /
           static_cast<double>(window);
}

void
PackageCStateModel::reset(sim::Tick now)
{
    _time.fill(0);
    _since = now;
}

} // namespace aw::server
