/**
 * @file
 * Per-core discrete-event model: request service, idle-state entry/
 * exit through the OS governor, residency and energy accounting,
 * turbo boost decisions and snoop-service power.
 *
 * The core cycles through four modes:
 *
 *     Active --queue empty--> EnteringIdle --entry done--> Idle
 *       ^                                                    |
 *       +--- exit done --- ExitingIdle <---- arrival --------+
 *
 * An arrival during EnteringIdle marks a pending wake: hardware
 * completes the entry flow and immediately begins the exit flow
 * (the misprediction cost that makes deep states dangerous for
 * irregular traffic -- and that AgileWatts makes nearly free).
 */

#ifndef AW_SERVER_CORE_SIM_HH
#define AW_SERVER_CORE_SIM_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>

#include "core/aw_core.hh"
#include "cstate/governor.hh"
#include "cstate/residency.hh"
#include "cstate/transition.hh"
#include "power/energy_meter.hh"
#include "server/config.hh"
#include "server/turbo.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "uarch/snoop.hh"
#include "workload/arrival.hh"
#include "workload/profiles.hh"

namespace aw::server {

/** Per-state core power used by the simulator. Defaults to the
 *  Table 1 constants with the AW states at the PPA midpoints. */
struct StatePowers
{
    std::array<power::Watts, cstate::kNumCStates> idle{};
    power::Watts activeP1 = 4.0;
    power::Watts activePn = 1.0;
    power::Watts activeBoost = 7.0;

    /** Build from descriptors + the live PPA model. */
    static StatePowers fromModels(const core::AwPpaModel &ppa);
};

/** Completion callback: (request, end_to_end_extra). */
using CompletionHook =
    std::function<void(const workload::Request &)>;

/**
 * One simulated core.
 */
class CoreSim
{
  public:
    /** Operating mode of the core state machine. */
    enum class Mode
    {
        Active,
        EnteringIdle,
        Idle,
        ExitingIdle,
    };

    /**
     * @param simr          the shared simulator
     * @param cfg           server configuration
     * @param governor      idle-governance prototype; the core
     *                      clone()s its own private instance
     * @param aw            shared AW constants (latencies, PPA)
     * @param profile       workload profile
     * @param per_core_rate this core's arrival rate (req/s);
     *                      0 disables internal generation (the
     *                      server dispatches via inject())
     * @param id            core index (seeds the RNG)
     * @param on_complete   invoked at each request completion
     */
    CoreSim(sim::Simulator &simr, const ServerConfig &cfg,
            const cstate::GovernorPolicy &governor,
            const core::AwCoreModel &aw,
            const workload::WorkloadProfile &profile,
            double per_core_rate, unsigned id,
            CompletionHook on_complete);

    /** Begin generating arrivals (call once before run()). */
    void start();

    /** Externally dispatch a request to this core (Packing). */
    void inject(workload::Request req);

    /** Requests waiting in this core's queue. */
    std::size_t queueLength() const { return _queue.size(); }

    /** Hook invoked after every power-state change; the server
     *  uses it to re-evaluate the package C-state. */
    void
    setStateChangeHook(std::function<void()> hook)
    {
        _onStateChange = std::move(hook);
    }

    /** Package model consulted for extra PC6 wake latency. */
    void
    setPackageModel(const PackageCStateModel *pkg)
    {
        _package = pkg;
    }

    /** @{ Statistics access. */
    cstate::ResidencySnapshot residency() const;
    power::Joules energy();
    power::Watts averagePower();
    std::uint64_t requestsCompleted() const { return _completed; }
    std::uint64_t mispredictedEntries() const
    {
        return _mispredictedEntries;
    }

    /** Reset the statistics window (post-warmup). */
    void resetStats();
    /** @} */

    Mode mode() const { return _mode; }
    cstate::CStateId idleState() const { return _idleState; }

    /** This core's private idle-governance instance. */
    const cstate::GovernorPolicy &governor() const
    {
        return *_governor;
    }

    /** Effective base frequency (AW's ~1% gate IR-drop applied). */
    sim::Frequency effectiveBaseFrequency() const;

  private:
    /** @{ State machine. */
    void scheduleNextArrival();
    void onArrival(workload::Request req);
    void beginService();
    void onServiceDone(workload::Request req);
    void beginIdle();
    void onIdleEntered();
    void beginWake();
    void onWakeDone();
    /** @} */

    /** @{ OS-tick idle promotion (ServerConfig::idlePromotion). */
    void maybeSchedulePromotion();
    void onPromotionTick(sim::Tick idle_start);
    /** @} */

    /** @{ Snoop handling. */
    void scheduleNextSnoop();
    void onSnoop();
    /** @} */

    /** Recompute and charge the current power level. */
    void updatePower();

    /** Power of the current machine state. */
    power::Watts currentPower() const;

    sim::Simulator &_sim;
    const ServerConfig &_cfg;
    const core::AwCoreModel &_aw;
    const workload::WorkloadProfile &_profile;
    CompletionHook _onComplete;

    /** Per-core microarchitectural state. */
    uarch::PrivateCaches _caches;
    uarch::CoreContext _context;
    cstate::TransitionEngine _transitions;
    std::unique_ptr<cstate::GovernorPolicy> _governor;
    cstate::ResidencyCounters _residency;
    power::EnergyMeter _meter;
    TurboModel _turbo;
    uarch::SnoopTraffic _snoops;
    StatePowers _powers;

    std::unique_ptr<workload::ArrivalProcess> _arrivals;
    sim::Rng _rng;
    std::function<void()> _onStateChange;
    const PackageCStateModel *_package = nullptr;

    Mode _mode = Mode::Active;
    cstate::CStateId _idleState = cstate::CStateId::C0;
    bool _wakePending = false;
    bool _boosting = false;
    sim::Tick _idleStart = 0;
    sim::Tick _snoopBusyUntil = 0;
    /** Absolute time of the next self-generated arrival (kMaxTick
     *  when unknown) -- the oracle governor's foreknowledge. */
    sim::Tick _nextArrivalAt = sim::kMaxTick;

    std::deque<workload::Request> _queue;
    std::uint64_t _completed = 0;
    std::uint64_t _nextReqId = 0;
    std::uint64_t _mispredictedEntries = 0;
    sim::Tick _statsStart = 0;
};

} // namespace aw::server

#endif // AW_SERVER_CORE_SIM_HH
