/**
 * @file
 * Per-core discrete-event model: request service, idle-state entry/
 * exit through the OS governor, residency and energy accounting,
 * turbo boost decisions and snoop-service power.
 *
 * The core cycles through four modes:
 *
 *     Active --queue empty--> EnteringIdle --entry done--> Idle
 *       ^                                                    |
 *       +--- exit done --- ExitingIdle <---- arrival --------+
 *
 * An arrival during EnteringIdle marks a pending wake: hardware
 * completes the entry flow and immediately begins the exit flow
 * (the misprediction cost that makes deep states dangerous for
 * irregular traffic -- and that AgileWatts makes nearly free).
 *
 * The per-event inner loop is de-virtualized: the core's operating
 * frequency, per-state transition latencies (C6 entry's dynamic
 * cache-flush component excepted), per-state resident powers and the
 * per-state descriptor attributes it consults per idle period are
 * all precomputed into flat tables at construction, so steady-state
 * events never re-derive them through the model layers.
 */

#ifndef AW_SERVER_CORE_SIM_HH
#define AW_SERVER_CORE_SIM_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/aw_core.hh"
#include "cstate/governor.hh"
#include "cstate/residency.hh"
#include "cstate/transition.hh"
#include "freq/freq_policy.hh"
#include "power/energy_meter.hh"
#include "server/config.hh"
#include "server/telemetry.hh"
#include "server/turbo.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "uarch/snoop.hh"
#include "workload/arrival.hh"
#include "workload/profiles.hh"

namespace aw::server {

/** Per-state core power used by the simulator. Defaults to the
 *  Table 1 constants with the AW states at the PPA midpoints. */
struct StatePowers
{
    std::array<power::Watts, cstate::kNumCStates> idle{};
    power::Watts activeP1 = 4.0;
    power::Watts activePn = 1.0;
    power::Watts activeBoost = 7.0;

    /** Build from descriptors + the live PPA model. */
    static StatePowers fromModels(const core::AwPpaModel &ppa);
};

/** Completion callback: (request, end_to_end_extra). */
using CompletionHook =
    std::function<void(const workload::Request &)>;

/**
 * One simulated core.
 */
class CoreSim
{
  public:
    /** Operating mode of the core state machine. */
    enum class Mode
    {
        Active,
        EnteringIdle,
        Idle,
        ExitingIdle,
    };

    /**
     * @param simr          the shared simulator
     * @param cfg           server configuration
     * @param governor      idle-governance prototype; the core
     *                      clone()s its own private instance
     * @param freq_proto    frequency-governance prototype (also
     *                      cloned per core); nullptr keeps the
     *                      legacy static operating point
     * @param aw            shared AW constants (latencies, PPA)
     * @param profile       workload profile
     * @param per_core_rate this core's arrival rate (req/s);
     *                      0 disables internal generation (the
     *                      server dispatches via inject())
     * @param id            core index (seeds the RNG)
     * @param on_complete   invoked at each request completion
     */
    CoreSim(sim::Simulator &simr, const ServerConfig &cfg,
            const cstate::GovernorPolicy &governor,
            const freq::FreqPolicy *freq_proto,
            const core::AwCoreModel &aw,
            const workload::WorkloadProfile &profile,
            double per_core_rate, unsigned id,
            CompletionHook on_complete);

    /** Begin generating arrivals (call once before run()). */
    void start();

    /** Externally dispatch a request to this core (Packing).
     *  Returns the core-local id assigned to the request, so the
     *  dispatcher can publish its routing decision. */
    std::uint64_t inject(workload::Request req);

    /** Requests waiting in this core's queue. */
    std::size_t queueLength() const { return _queue.size(); }

    /** Hook invoked after every power-state change; the server
     *  uses it to re-evaluate the package C-state. */
    void
    setStateChangeHook(std::function<void()> hook)
    {
        _onStateChange = std::move(hook);
    }

    /** Package model consulted for extra PC6 wake latency. */
    void
    setPackageModel(const PackageCStateModel *pkg)
    {
        _package = pkg;
    }

    /** Attach a passive telemetry observer (nullptr = disabled;
     *  every publication site is a single branch). Attach before
     *  start() so the observer sees the initial state stream. */
    void
    setObserver(TelemetryObserver *observer)
    {
        _observer = observer;
    }

    /**
     * Apply a cap-controller throttle decision (ServerSim's control
     * loop; see cap::PowerCapController). @p level_cap becomes the
     * operating-point ceiling -- it overrides the LatencyQoS floor,
     * which in turn bounds the governor's request -- and a nap of
     * @p nap_len is injected per @p nap_period of non-nap time at
     * service boundaries (intel_powerclamp-style forced idle in the
     * deepest enabled state). Requires the cap subsystem enabled at
     * construction (cfg.cap.enabled()), which builds the ladder
     * tables even without a frequency governor.
     */
    void setCapState(std::size_t level_cap, sim::Tick nap_len,
                     sim::Tick nap_period);

    /** Forced-idle naps begun over the statistics window. */
    std::uint64_t forcedNaps() const
    {
        return _forcedNaps - _forcedNapsAtReset;
    }

    /** @{ Statistics access. */
    cstate::ResidencySnapshot residency() const;
    power::Joules energy();
    power::Watts averagePower();
    std::uint64_t requestsCompleted() const { return _completed; }
    std::uint64_t mispredictedEntries() const
    {
        return _mispredictedEntries;
    }

    /** Reset the statistics window (post-warmup). */
    void resetStats();
    /** @} */

    Mode mode() const { return _mode; }
    cstate::CStateId idleState() const { return _idleState; }

    /** Depth ordering key of the current idle state (precomputed;
     *  the packing dispatcher ranks sleepers with it per request). */
    int idleStateDepth() const
    {
        return _depth[cstate::index(_idleState)];
    }

    /** This core's private idle-governance instance. */
    const cstate::GovernorPolicy &governor() const
    {
        return *_governor;
    }

    /** Effective base frequency (AW's ~1% gate IR-drop applied).
     *  Under a frequency governor this is the live operating point
     *  of the currently applied ladder level. */
    sim::Frequency effectiveBaseFrequency() const { return _effFreq; }

    /** @{ DVFS governance state (null policy = static path). */
    const freq::FreqPolicy *freqPolicy() const
    {
        return _freqPolicy.get();
    }
    std::size_t freqLevel() const { return _curLevel; }
    std::size_t freqFloorLevel() const { return _minLevel; }

    /** Completed P-state ramps / their fixed energy, both counted
     *  over the current statistics window. */
    std::uint64_t freqTransitions() const
    {
        return _freqTransitions - _freqTransitionsAtReset;
    }
    power::Joules freqTransitionEnergy() const
    {
        return _freqRampEnergy - _rampEnergyAtReset;
    }
    /** @} */

  private:
    /** @{ State machine. */
    void scheduleNextArrival();
    void onArrival(workload::Request req);
    void beginService();
    void onServiceDone(workload::Request req);
    void beginIdle();
    void onIdleEntered();
    void beginWake();
    void onWakeDone();
    /** @} */

    /** @{ Forced-idle injection (cap enforcement beyond the ladder
     * floor). A due nap preempts the queue at a service boundary:
     * the core runs the normal entry flow into its deepest enabled
     * state, ignores arrivals until the nap elapses (they queue;
     * no wake-pending misprediction), then pays the normal wake --
     * which is exactly where legacy C6 bleeds p99 and C6A does
     * not. */
    void beginForcedNap();
    void onNapEnd(sim::Tick stamp);
    /** @} */

    /** @{ OS-tick idle promotion (ServerConfig::idlePromotion).
     * Checks are batched: instead of re-ticking every interval, one
     * event is armed at the first tick multiple past the governor's
     * promotion horizon (the earliest elapsed idle at which a deeper
     * state can win) -- same promotion instants, no no-op ticks. */
    void maybeSchedulePromotion();
    void onPromotionTick(sim::Tick idle_start);
    /** @} */

    /** @{ Snoop handling. */
    void scheduleNextSnoop();
    void onSnoop();
    /** @} */

    /** @{ DVFS governance. The policy's chosen level is clamped to
     *  the LatencyQoS floor and lands after freq::kRampLatency; the
     *  old level's tables stay live for the ramp window, and a
     *  retarget mid-ramp coalesces into the in-flight ramp. All of
     *  it is bypassed (single null test) on the static path. */

    /** Per-ladder-level precomputed hot-loop tables. */
    struct LevelTables
    {
        sim::Frequency effFreq;
        std::array<cstate::TransitionLatency, cstate::kNumCStates>
            lat{};
        cstate::TransitionLatency latC6Fixed;
        power::Watts activePower = 0.0;    //!< profile-scaled
        power::Watts activeUnscaled = 0.0; //!< turbo sustain anchor
    };

    /** The level the core is moving toward (or sitting at). */
    std::size_t targetLevel() const
    {
        return _rampInFlight ? _pendingLevel : _curLevel;
    }

    /** Lazy busy-time accrual for the policy's load estimate. */
    void accrueLoad(sim::Tick now)
    {
        if (_busyNow)
            _busyAccum += now - _loadLast;
        _loadLast = now;
    }

    /** Busy/idle edge: update load accounting, let edge-driven
     *  policies retarget. Only Mode::Active counts as busy --
     *  transition flows burn active power but serve no work. */
    void noteBusy(bool busy);

    void scheduleFreqEval();
    void onFreqEval();
    void requestLevel(std::size_t level);
    void onRampDone();
    void applyLevel(std::size_t level);
    /** @} */

    /** Recompute and charge the current power level. */
    void updatePower();

    /** Record a residency-state entry and mirror it to the
     *  telemetry observer (they must see the same stream). */
    void
    noteStateEnter(cstate::CStateId state)
    {
        _residency.recordEnter(state, _sim.now());
        if (_observer)
            _observer->onCStateEnter(_id, _sim.now(), state);
    }

    /** Feed an ended idle period to the governor and mirror it to
     *  the telemetry observer (observeIdle ground truth). */
    void
    noteIdleObserved(sim::Tick idle)
    {
        _governor->observeIdle(idle);
        if (_observer)
            _observer->onIdleObserved(_id, _sim.now(), idle);
    }

    /** Power of the current machine state. */
    power::Watts currentPower() const;

    /** Full transition latency of @p state at the core's fixed
     *  operating point. All states but C6 come straight from the
     *  table built at construction; C6 adds the live cache-flush
     *  cost (its dirty fraction follows workload behaviour) to the
     *  precomputed fixed entry path. */
    cstate::TransitionLatency
    latencyOf(cstate::CStateId state) const
    {
        if (state == cstate::CStateId::C6) {
            cstate::TransitionLatency lat = _latC6Fixed;
            lat.entry += _caches.flushTime(_effFreq);
            return lat;
        }
        return _lat[cstate::index(state)];
    }

    sim::Simulator &_sim;
    const ServerConfig &_cfg;
    const core::AwCoreModel &_aw;
    const workload::WorkloadProfile &_profile;
    CompletionHook _onComplete;

    /** Per-core microarchitectural state. */
    uarch::PrivateCaches _caches;
    uarch::CoreContext _context;
    cstate::TransitionEngine _transitions;
    std::unique_ptr<cstate::GovernorPolicy> _governor;
    cstate::ResidencyCounters _residency;
    power::EnergyMeter _meter;
    TurboModel _turbo;
    uarch::SnoopTraffic _snoops;
    StatePowers _powers;

    /** @{ Constants precomputed at construction for the hot loop. */
    sim::Frequency _effFreq;
    std::array<cstate::TransitionLatency, cstate::kNumCStates> _lat{};
    cstate::TransitionLatency _latC6Fixed; //!< C6 minus live flush
    std::array<bool, cstate::kNumCStates> _isAw{};
    std::array<int, cstate::kNumCStates> _depth{};
    power::Watts _activePower = 0.0; //!< scaled P1-or-Pn active draw
    power::Watts _boostPower = 0.0;  //!< scaled turbo draw
    cstate::CStateId _deepestEnabled = cstate::CStateId::C0;
    /** @} */

    /** @{ DVFS governance (empty on the static path). */
    std::unique_ptr<freq::FreqPolicy> _freqPolicy;
    std::vector<LevelTables> _levels; //!< one per ladder level
    std::size_t _curLevel = 0;
    std::size_t _pendingLevel = 0;
    std::size_t _minLevel = 0; //!< LatencyQoS frequency floor
    /** Last unclamped level request; re-issued when the cap ceiling
     *  moves so the point recovers once headroom returns. */
    std::size_t _wantLevel = 0;
    /** Cap-controller operating-point ceiling (SIZE_MAX, the
     *  default, = unclamped; overrides _minLevel). */
    std::size_t _capLevel = static_cast<std::size_t>(-1);
    bool _rampInFlight = false;
    bool _busyNow = false;
    sim::Tick _loadLast = 0;  //!< busy-accrual cursor
    sim::Tick _busyAccum = 0; //!< busy time this eval window
    std::uint64_t _freqTransitions = 0;
    std::uint64_t _freqTransitionsAtReset = 0;
    power::Joules _freqRampEnergy = 0.0;
    power::Joules _rampEnergyAtReset = 0.0;
    /** @} */

    std::unique_ptr<workload::ArrivalProcess> _arrivals;
    sim::Rng _rng;
    std::function<void()> _onStateChange;
    const PackageCStateModel *_package = nullptr;
    TelemetryObserver *_observer = nullptr;
    unsigned _id = 0;

    /** @{ Forced-idle (cap) state. All zero while uncapped: the
     *  only disabled-path cost is one never-taken test per service
     *  boundary. */
    sim::Tick _napLen = 0;    //!< current nap length (0 = off)
    sim::Tick _napPeriod = 0; //!< nap window
    sim::Tick _nextNapAt = 0; //!< earliest next nap start
    bool _napping = false;
    std::uint64_t _forcedNaps = 0;
    std::uint64_t _forcedNapsAtReset = 0;
    /** @} */

    Mode _mode = Mode::Active;
    cstate::CStateId _idleState = cstate::CStateId::C0;
    bool _wakePending = false;
    bool _boosting = false;
    sim::Tick _idleStart = 0;
    sim::Tick _snoopBusyUntil = 0;
    sim::EventId _promotionEvent = sim::kInvalidEventId;
    /** Absolute time of the next self-generated arrival (kMaxTick
     *  when unknown) -- the oracle governor's foreknowledge. */
    sim::Tick _nextArrivalAt = sim::kMaxTick;

    std::deque<workload::Request> _queue;
    std::uint64_t _completed = 0;
    std::uint64_t _nextReqId = 0;
    std::uint64_t _mispredictedEntries = 0;
    sim::Tick _statsStart = 0;
};

} // namespace aw::server

#endif // AW_SERVER_CORE_SIM_HH
