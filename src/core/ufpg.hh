/**
 * @file
 * Units' Fast Power-Gating (UFPG), Sec 4.1 / 5.1.1.
 *
 * Medium-grain power gates over ~70% of the core (everything except
 * the private caches and their controllers) with in-place context
 * retention, so entering/leaving the gated state costs cycles
 * instead of the microseconds of the external save/restore path.
 */

#ifndef AW_CORE_UFPG_HH
#define AW_CORE_UFPG_HH

#include <cstdint>

#include "power/power_gate.hh"
#include "power/srpg.hh"
#include "power/units.hh"
#include "uarch/core_units.hh"

namespace aw::core {

/**
 * The UFPG subsystem of one core.
 *
 * Power accounting follows the paper's derivation:
 *  - the core's total leakage is approximated by the C1 power (C1
 *    removes dynamic power only);
 *  - the gated units contribute their leakage fraction (~70%) of
 *    that;
 *  - the gates keep 3-5% of the gated leakage;
 *  - the retained ~8 KB context costs ~2 mW at the P1 voltage and
 *    ~1 mW at Pn.
 */
class Ufpg
{
  public:
    /**
     * @param inventory       the core's unit inventory
     * @param core_leakage_p1 total core leakage at P1 (~C1 power)
     * @param core_leakage_pn total core leakage at Pn (~C1E power)
     * @param context         in-place context retention model
     */
    Ufpg(const uarch::UnitInventory &inventory,
         power::Watts core_leakage_p1, power::Watts core_leakage_pn,
         power::ContextRetention context = power::ContextRetention());

    /** The calibrated Skylake server instance (Table 1 anchors). */
    static Ufpg skylakeServer(const uarch::UnitInventory &inventory);

    /** Leakage of the gated domain when ungated, at P1. */
    power::Watts gatedLeakageP1() const;

    /** Leakage of the gated domain when ungated, at Pn. */
    power::Watts gatedLeakagePn() const;

    /** Residual power of the gated units in C6A (paper: 30-50 mW). */
    power::Interval residualPowerP1() const;

    /** Residual power of the gated units in C6AE (18-30 mW). */
    power::Interval residualPowerPn() const;

    /** Context retention power in C6A (~2 mW). */
    power::Watts contextPowerP1() const
    {
        return _context.powerAtP1();
    }

    /** Context retention power in C6AE (~1 mW). */
    power::Watts contextPowerPn() const
    {
        return _context.powerAtPn();
    }

    /** Area overhead of the gates relative to total core area. */
    power::Interval gateAreaOverheadOfCore() const;

    /** Fraction of core area under UFPG gates. */
    double
    gatedAreaFraction() const
    {
        return _inventory.areaFraction(uarch::PowerDomain::Ufpg);
    }

    /**
     * Frequency degradation from the extra IR drop across the new
     * gates; an x86 core power-gate implementation reports <1%
     * loss, and the paper's model assumes 1%.
     */
    static constexpr double kFrequencyDegradation = 0.01;

    /** @{ In-place save/restore timing (PMA cycles). */
    static constexpr std::uint64_t kSaveCycles =
        power::ContextRetention::kSaveCycles;
    static constexpr std::uint64_t kRestoreCycles =
        power::ContextRetention::kRestoreCycles;
    /** @} */

    const uarch::UnitInventory &inventory() const { return _inventory; }
    const power::ContextRetention &context() const { return _context; }

  private:
    const uarch::UnitInventory &_inventory;
    power::Watts _coreLeakageP1;
    power::Watts _coreLeakagePn;
    power::ContextRetention _context;
};

} // namespace aw::core

#endif // AW_CORE_UFPG_HH
