#include "core/aw_core.hh"

namespace aw::core {

AwCoreModel::AwCoreModel()
{
    _inventory = std::make_unique<uarch::UnitInventory>(
        uarch::UnitInventory::skylakeServer());
    _caches = std::make_unique<uarch::PrivateCaches>(
        uarch::PrivateCaches::skylakeServer());
    _context = std::make_unique<uarch::CoreContext>();
    _ufpg = std::make_unique<Ufpg>(Ufpg::skylakeServer(*_inventory));
    _ccsm = std::make_unique<Ccsm>(Ccsm::skylakeServer(*_caches));
    _controller = std::make_unique<C6aController>(*_ufpg, *_ccsm);
    _ppa = std::make_unique<AwPpaModel>(*_ufpg, *_ccsm);
}

const AwCoreModel &
AwCoreModel::canonical()
{
    static const AwCoreModel model;
    return model;
}

cstate::TransitionEngine
AwCoreModel::makeTransitionEngine() const
{
    return cstate::TransitionEngine(*_caches, *_context,
                                    _controller->awLatencies());
}

} // namespace aw::core
