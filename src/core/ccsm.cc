#include "core/ccsm.hh"

namespace aw::core {

Ccsm::Ccsm(const uarch::PrivateCaches &caches,
           power::SramSleepMode arrays, power::Watts rest_power_p1,
           power::Watts rest_power_pn)
    : _caches(caches), _arrays(std::move(arrays)),
      _restPowerP1(rest_power_p1), _restPowerPn(rest_power_pn)
{
}

Ccsm
Ccsm::skylakeServer(const uarch::PrivateCaches &caches)
{
    // Data arrays: derived from the 2.5 MB 22 nm L3 slice reference,
    // scaled by capacity to ~1.1 MB and by 0.7x to 14 nm -> ~55 mW
    // at the P1 voltage; the higher LVR efficiency at the Pn voltage
    // leaves ~40 mW (Sec 5.1.2). The SramSleepMode::skylakeL1L2
    // instance carries exactly these anchors.
    //
    // Controllers/tags: same method gives ~55 mW at P1 / ~33 mW at
    // Pn (Table 3).
    return Ccsm(caches, power::SramSleepMode::skylakeL1L2(),
                power::milliwatts(55.0), power::milliwatts(33.0));
}

power::Interval
Ccsm::sleepAreaOverheadOfCore(double cache_area_fraction) const
{
    return power::SramSleepMode::kAreaOverhead *
           (cache_area_fraction * kDataArrayAreaFraction);
}

} // namespace aw::core
