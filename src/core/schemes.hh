/**
 * @file
 * Registry of core power-gating schemes (Table 4): prior work the
 * paper positions AgileWatts against, plus the AW row computed from
 * the live controller model.
 */

#ifndef AW_CORE_SCHEMES_HH
#define AW_CORE_SCHEMES_HH

#include <string>
#include <vector>

#include "core/pma.hh"
#include "sim/types.hh"

namespace aw::core {

/** One Table 4 row. */
struct PowerGatingScheme
{
    std::string technique;   //!< citation tag or "AW (This work)"
    std::string coreType;    //!< in-order / OoO CPU / GPU
    std::string trigger;     //!< what initiates gating
    std::string gatedBlocks; //!< what is gated
    std::string wakeOverhead; //!< as reported by the source

    /** Wake overhead in ticks where the source gives time (0 when
     *  only cycle counts are reported). */
    sim::Tick wakeOverheadTime = 0;
};

/**
 * The Table 4 registry. The literature rows carry the published
 * numbers; the AW row's wake overhead is computed from
 * @p controller so it tracks the model.
 */
std::vector<PowerGatingScheme>
powerGatingSchemes(const C6aController &controller);

/** Look a row up by its technique tag; nullptr when absent. */
const PowerGatingScheme *
findScheme(const std::vector<PowerGatingScheme> &rows,
           const std::string &technique);

/**
 * Wake-up overhead of @p technique in nanoseconds (0 when the
 * source reports only cycle counts); fatal() on an unknown tag.
 * The one lookup the Table 4 sweep (bench and golden test) keys
 * its "wake_ns" metric off.
 */
double
schemeWakeNs(const std::vector<PowerGatingScheme> &rows,
             const std::string &technique);

} // namespace aw::core

#endif // AW_CORE_SCHEMES_HH
