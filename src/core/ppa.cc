#include "core/ppa.hh"

namespace aw::core {

using power::Interval;

AwPpaModel::AwPpaModel(const Ufpg &ufpg, const Ccsm &ccsm,
                       power::Adpll adpll, power::Fivr fivr)
    : _ufpg(ufpg), _ccsm(ccsm), _adpll(adpll), _fivr(fivr)
{
}

Interval
AwPpaModel::ufpgGatePowerC6a() const
{
    return _ufpg.residualPowerP1();
}

Interval
AwPpaModel::ufpgGatePowerC6ae() const
{
    return _ufpg.residualPowerPn();
}

Interval
AwPpaModel::contextPowerC6a() const
{
    return Interval::point(_ufpg.contextPowerP1());
}

Interval
AwPpaModel::contextPowerC6ae() const
{
    return Interval::point(_ufpg.contextPowerPn());
}

Interval
AwPpaModel::ccsmCachePowerC6a() const
{
    return Interval::point(_ccsm.arrayPowerP1());
}

Interval
AwPpaModel::ccsmCachePowerC6ae() const
{
    return Interval::point(_ccsm.arrayPowerPn());
}

Interval
AwPpaModel::ccsmRestPowerC6a() const
{
    return Interval::point(_ccsm.restPowerP1());
}

Interval
AwPpaModel::ccsmRestPowerC6ae() const
{
    return Interval::point(_ccsm.restPowerPn());
}

Interval
AwPpaModel::pmaPowerC6a() const
{
    return Interval::point(C6aController::kControllerPower);
}

Interval
AwPpaModel::adpllPower() const
{
    return Interval::point(power::Adpll::kPower);
}

Interval
AwPpaModel::fivrConversionLossC6a() const
{
    const Interval load = ufpgGatePowerC6a() + contextPowerC6a() +
                          ccsmCachePowerC6a() + ccsmRestPowerC6a();
    return _fivr.conversionLoss(load);
}

Interval
AwPpaModel::fivrConversionLossC6ae() const
{
    const Interval load = ufpgGatePowerC6ae() + contextPowerC6ae() +
                          ccsmCachePowerC6ae() + ccsmRestPowerC6ae();
    return _fivr.conversionLoss(load);
}

Interval
AwPpaModel::fivrStaticLoss() const
{
    return Interval::point(_fivr.staticLoss());
}

Interval
AwPpaModel::totalPowerC6a() const
{
    return ufpgGatePowerC6a() + contextPowerC6a() +
           ccsmCachePowerC6a() + ccsmRestPowerC6a() +
           pmaPowerC6a() + adpllPower() + fivrConversionLossC6a() +
           fivrStaticLoss();
}

Interval
AwPpaModel::totalPowerC6ae() const
{
    return ufpgGatePowerC6ae() + contextPowerC6ae() +
           ccsmCachePowerC6ae() + ccsmRestPowerC6ae() +
           pmaPowerC6a() + adpllPower() + fivrConversionLossC6ae() +
           fivrStaticLoss();
}

Interval
AwPpaModel::totalAreaFractionOfCore() const
{
    // UFPG gates: 2-6% of the gated ~70% of core area.
    Interval total = _ufpg.gateAreaOverheadOfCore();
    // Context retention: <1% of the (small) context area; carried
    // as up to 0.5% of core to cover isolation cells and routing.
    total += Interval(0.0, 0.005);
    // Cache sleep transistors: 2-6% of the data-array area.
    const double cache_frac = _ufpg.inventory().areaFraction(
        uarch::PowerDomain::CacheSleep);
    total += _ccsm.sleepAreaOverheadOfCore(cache_frac);
    // C6A controller: up to 5% of the PMA, itself a small uncore
    // block; bounded by 0.5% of core area equivalent.
    total += Interval(0.0, 0.005);
    return total;
}

std::vector<PpaRow>
AwPpaModel::rows() const
{
    std::vector<PpaRow> rows;
    rows.push_back({"UFPG", "Unit power-gates (~70% of core)",
                    "2-6% of power-gated area", ufpgGatePowerC6a(),
                    ufpgGatePowerC6ae()});
    rows.push_back({"UFPG", "In-place context (regs/SRPG/SRAM)",
                    "<1% of retained context area",
                    contextPowerC6a(), contextPowerC6ae()});
    rows.push_back({"CCSM", "L1/L2 caches in sleep-mode",
                    "2-6% of private cache area",
                    ccsmCachePowerC6a(), ccsmCachePowerC6ae()});
    rows.push_back({"CCSM", "Rest of the memory subsystem",
                    "<1% of the ungated units", ccsmRestPowerC6a(),
                    ccsmRestPowerC6ae()});
    rows.push_back({"PMA flow", "C6A controller (uncore)",
                    "<5% of core PMA", pmaPowerC6a(),
                    pmaPowerC6a()});
    rows.push_back({"ADPLL & FIVR", "ADPLL", "0%", adpllPower(),
                    adpllPower()});
    rows.push_back({"ADPLL & FIVR", "Core FIVR inefficiency", "0%",
                    fivrConversionLossC6a(),
                    fivrConversionLossC6ae()});
    rows.push_back({"ADPLL & FIVR", "FIVR static losses", "0%",
                    fivrStaticLoss(), fivrStaticLoss()});
    return rows;
}

} // namespace aw::core
