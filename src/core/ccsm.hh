/**
 * @file
 * Cache Coherence and Sleep Mode (CCSM), Sec 4.2 / 5.1.2.
 *
 * In C6A/C6AE the private caches stay power-ungated (no flush) but
 * clock-gated, with the SRAM data arrays held at retention voltage
 * through sleep transistors. A tiny always-on detector watches for
 * snoops; on arrival the PMA wakes the cache domain (clock ungate +
 * sleep exit), serves the probes, and rolls back.
 */

#ifndef AW_CORE_CCSM_HH
#define AW_CORE_CCSM_HH

#include <cstdint>

#include "power/sram_sleep.hh"
#include "power/units.hh"
#include "sim/types.hh"
#include "uarch/cache.hh"

namespace aw::core {

/**
 * The CCSM subsystem of one core.
 */
class Ccsm
{
  public:
    /**
     * @param caches        the core's private caches
     * @param arrays        sleep-mode model of the L1/L2 data arrays
     * @param rest_power_p1 sleep power of the rest of the ungated
     *                      memory subsystem (controllers, tags) at P1
     * @param rest_power_pn ... at Pn
     */
    Ccsm(const uarch::PrivateCaches &caches,
         power::SramSleepMode arrays, power::Watts rest_power_p1,
         power::Watts rest_power_pn);

    /** The paper's Skylake instance: 55+55 mW at P1, 40+33 at Pn. */
    static Ccsm skylakeServer(const uarch::PrivateCaches &caches);

    /** Sleep power of the data arrays (C6A / P1 voltage). */
    power::Watts arrayPowerP1() const
    {
        return _arrays.sleepPowerAtP1();
    }

    /** Sleep power of the data arrays (C6AE / Pn voltage). */
    power::Watts arrayPowerPn() const
    {
        return _arrays.sleepPowerAtPn();
    }

    /** Sleep power of controllers/tags at P1. */
    power::Watts restPowerP1() const { return _restPowerP1; }

    /** Sleep power of controllers/tags at Pn. */
    power::Watts restPowerPn() const { return _restPowerPn; }

    /** Total CCSM power in C6A. */
    power::Watts
    totalPowerP1() const
    {
        return arrayPowerP1() + restPowerP1();
    }

    /** Total CCSM power in C6AE. */
    power::Watts
    totalPowerPn() const
    {
        return arrayPowerPn() + restPowerPn();
    }

    /** Area overhead of the sleep transistors over the core: the
     *  data array is ~90% of the cache area. */
    power::Interval sleepAreaOverheadOfCore(
        double cache_area_fraction) const;

    /** @{ Snoop-path power deltas (Sec 7.5).
     *  While actively serving snoops, the baseline C1 core pays
     *  ~50 mW to clock-ungate the L1/L2 subsystem; a C6A core pays
     *  ~120 mW to additionally raise the arrays out of sleep. */
    static constexpr power::Watts kSnoopServiceDeltaC1 =
        power::milliwatts(50.0);
    static constexpr power::Watts kSnoopServiceDeltaC6a =
        power::milliwatts(120.0);
    /** @} */

    /** @{ Sleep-mode transition cycle counts (PMA cycles). */
    static constexpr std::uint64_t kSleepEntryCycles =
        power::SramSleepMode::kEntryCycles;
    static constexpr std::uint64_t kSleepExitCycles =
        power::SramSleepMode::kExitCycles;
    /** @} */

    /** Fraction of cache area occupied by the data arrays. */
    static constexpr double kDataArrayAreaFraction = 0.90;

    const power::SramSleepMode &arrays() const { return _arrays; }
    const uarch::PrivateCaches &caches() const { return _caches; }

  private:
    const uarch::PrivateCaches &_caches;
    power::SramSleepMode _arrays;
    power::Watts _restPowerP1;
    power::Watts _restPowerPn;
};

} // namespace aw::core

#endif // AW_CORE_CCSM_HH
