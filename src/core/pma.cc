#include "core/pma.hh"

#include "sim/logging.hh"

namespace aw::core {

const char *
name(PmaPhase p)
{
    switch (p) {
      case PmaPhase::C0: return "C0";
      case PmaPhase::EntryClockGate: return "entry.clock_gate";
      case PmaPhase::EntrySaveGate: return "entry.save_gate";
      case PmaPhase::EntryCacheSleep: return "entry.cache_sleep";
      case PmaPhase::IdleC6a: return "idle.c6a";
      case PmaPhase::SnoopWake: return "snoop.wake";
      case PmaPhase::SnoopServe: return "snoop.serve";
      case PmaPhase::SnoopResleep: return "snoop.resleep";
      case PmaPhase::ExitCacheWake: return "exit.cache_wake";
      case PmaPhase::ExitUngate: return "exit.ungate";
      case PmaPhase::ExitClockUngate: return "exit.clock_ungate";
      default: return "?";
    }
}

namespace {

/** Fig 6 step 1: clock-gating all domains takes 1-2 cycles in an
 *  optimized clock distribution; we model the conservative 2. */
constexpr std::uint64_t kClockGateCycles = 2;

/** Fig 6 step 6: clock-ungating, likewise 1-2 cycles. */
constexpr std::uint64_t kClockUngateCycles = 2;

} // namespace

C6aController::C6aController(const Ufpg &ufpg, const Ccsm &ccsm)
    : _ufpg(ufpg), _ccsm(ccsm),
      _wakePlan(power::StaggeredWakeupPlan::proportional(
          ufpg.inventory().ufpgToAvxAreaRatio(), kWakeZones))
{
    if (!_wakePlan.inrushWithinLimit()) {
        sim::panic("C6aController: wake plan exceeds the in-rush "
                   "envelope (peak %.3f of reference)",
                   _wakePlan.peakInrushRelToReference());
    }
}

sim::Tick
C6aController::entryLatency() const
{
    const std::uint64_t cycles = kClockGateCycles +
                                 Ufpg::kSaveCycles +
                                 Ccsm::kSleepEntryCycles;
    return kPmaClock.cycles(cycles);
}

sim::Tick
C6aController::exitLatency() const
{
    const std::uint64_t cycles = Ccsm::kSleepExitCycles +
                                 Ufpg::kRestoreCycles +
                                 kClockUngateCycles;
    return kPmaClock.cycles(cycles) + _wakePlan.totalWakeTime();
}

sim::Tick
C6aController::snoopWakeLatency() const
{
    return kPmaClock.cycles(Ccsm::kSleepExitCycles);
}

sim::Tick
C6aController::snoopResleepLatency() const
{
    return kPmaClock.cycles(Ccsm::kSleepEntryCycles);
}

cstate::AwHardwareLatencies
C6aController::awLatencies() const
{
    cstate::AwHardwareLatencies lat;
    lat.c6a.entry = entryLatency();
    lat.c6a.exit = exitLatency();
    // C6AE's extra V/F ramp is a non-blocking DVFS flow accounted
    // as software overhead by the TransitionEngine.
    lat.c6ae = lat.c6a;
    return lat;
}

void
C6aController::advance(sim::Simulator &simr, PmaPhase next)
{
    _trace.push_back(PhaseRecord{_phase, _phaseStart, simr.now()});
    _phase = next;
    _phaseStart = simr.now();
}

void
C6aController::step(sim::Simulator &simr, PmaPhase current,
                    sim::Tick dur, PmaPhase next,
                    std::function<void()> cont)
{
    if (_phase != current) {
        sim::panic("C6aController: expected phase %s, in %s",
                   name(current), name(_phase));
    }
    simr.scheduleIn(dur, [this, &simr, next,
                          cont = std::move(cont)]() mutable {
        advance(simr, next);
        if (cont)
            cont();
    });
}

void
C6aController::runEntry(sim::Simulator &simr,
                        std::function<void()> done)
{
    if (_phase != PmaPhase::C0)
        sim::panic("C6aController::runEntry from phase %s",
                   name(_phase));
    _phaseStart = simr.now();
    advance(simr, PmaPhase::EntryClockGate);
    step(simr, PmaPhase::EntryClockGate,
         kPmaClock.cycles(kClockGateCycles), PmaPhase::EntrySaveGate,
         [this, &simr, done = std::move(done)]() mutable {
        step(simr, PmaPhase::EntrySaveGate,
             kPmaClock.cycles(Ufpg::kSaveCycles),
             PmaPhase::EntryCacheSleep,
             [this, &simr, done = std::move(done)]() mutable {
            step(simr, PmaPhase::EntryCacheSleep,
                 kPmaClock.cycles(Ccsm::kSleepEntryCycles),
                 PmaPhase::IdleC6a, std::move(done));
        });
    });
}

void
C6aController::runExit(sim::Simulator &simr,
                       std::function<void()> done)
{
    if (_phase != PmaPhase::IdleC6a)
        sim::panic("C6aController::runExit from phase %s",
                   name(_phase));
    advance(simr, PmaPhase::ExitCacheWake);
    step(simr, PmaPhase::ExitCacheWake,
         kPmaClock.cycles(Ccsm::kSleepExitCycles),
         PmaPhase::ExitUngate,
         [this, &simr, done = std::move(done)]() mutable {
        const sim::Tick ungate =
            _wakePlan.totalWakeTime() +
            kPmaClock.cycles(Ufpg::kRestoreCycles);
        step(simr, PmaPhase::ExitUngate, ungate,
             PmaPhase::ExitClockUngate,
             [this, &simr, done = std::move(done)]() mutable {
            step(simr, PmaPhase::ExitClockUngate,
                 kPmaClock.cycles(kClockUngateCycles), PmaPhase::C0,
                 std::move(done));
        });
    });
}

void
C6aController::runSnoop(sim::Simulator &simr, sim::Tick serve_time,
                        std::function<void()> done)
{
    if (_phase != PmaPhase::IdleC6a)
        sim::panic("C6aController::runSnoop from phase %s",
                   name(_phase));
    advance(simr, PmaPhase::SnoopWake);
    step(simr, PmaPhase::SnoopWake, snoopWakeLatency(),
         PmaPhase::SnoopServe,
         [this, &simr, serve_time,
          done = std::move(done)]() mutable {
        step(simr, PmaPhase::SnoopServe, serve_time,
             PmaPhase::SnoopResleep,
             [this, &simr, done = std::move(done)]() mutable {
            step(simr, PmaPhase::SnoopResleep,
                 snoopResleepLatency(), PmaPhase::IdleC6a,
                 std::move(done));
        });
    });
}

} // namespace aw::core
