#include "core/ufpg.hh"

#include "cstate/cstate.hh"

namespace aw::core {

Ufpg::Ufpg(const uarch::UnitInventory &inventory,
           power::Watts core_leakage_p1, power::Watts core_leakage_pn,
           power::ContextRetention context)
    : _inventory(inventory), _coreLeakageP1(core_leakage_p1),
      _coreLeakagePn(core_leakage_pn), _context(context)
{
}

Ufpg
Ufpg::skylakeServer(const uarch::UnitInventory &inventory)
{
    // Core leakage ~= C1 power at P1 and ~= C1E power at Pn
    // (clock gating removes the dynamic component only).
    const power::Watts leak_p1 =
        cstate::descriptor(cstate::CStateId::C1).corePower;
    const power::Watts leak_pn =
        cstate::descriptor(cstate::CStateId::C1E).corePower;
    return Ufpg(inventory, leak_p1, leak_pn);
}

power::Watts
Ufpg::gatedLeakageP1() const
{
    return _coreLeakageP1 *
           _inventory.leakageFraction(uarch::PowerDomain::Ufpg);
}

power::Watts
Ufpg::gatedLeakagePn() const
{
    return _coreLeakagePn *
           _inventory.leakageFraction(uarch::PowerDomain::Ufpg);
}

power::Interval
Ufpg::residualPowerP1() const
{
    return power::PowerGate(gatedLeakageP1(), 0.0).residualLeakage();
}

power::Interval
Ufpg::residualPowerPn() const
{
    return power::PowerGate(gatedLeakagePn(), 0.0).residualLeakage();
}

power::Interval
Ufpg::gateAreaOverheadOfCore() const
{
    return power::PowerGate::kAreaOverhead * gatedAreaFraction();
}

} // namespace aw::core
