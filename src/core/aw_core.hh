/**
 * @file
 * Convenience aggregate: one object owning the full AgileWatts stack
 * for a Skylake-like core (inventory, caches, context, UFPG, CCSM,
 * PMA controller, PPA model) wired together with the calibrated
 * paper constants. Examples and the server simulator build one of
 * these per core (or share a const instance where only constants
 * are read).
 */

#ifndef AW_CORE_AW_CORE_HH
#define AW_CORE_AW_CORE_HH

#include <memory>

#include "core/ccsm.hh"
#include "core/pma.hh"
#include "core/ppa.hh"
#include "core/ufpg.hh"
#include "cstate/transition.hh"
#include "uarch/cache.hh"
#include "uarch/context.hh"
#include "uarch/core_units.hh"

namespace aw::core {

/**
 * A fully-wired AgileWatts core model.
 */
class AwCoreModel
{
  public:
    AwCoreModel();

    /**
     * The shared immutable instance. The model is a pure function of
     * the calibrated paper constants -- every construction yields
     * identical values -- so simulators that only read it (ServerSim
     * builds one per server otherwise) share this one instead of
     * re-deriving the whole stack per run. Callers that want to
     * mutate the model (examples exploring parameter ranges) must
     * construct their own instance.
     */
    static const AwCoreModel &canonical();

    const uarch::UnitInventory &inventory() const { return *_inventory; }
    uarch::PrivateCaches &caches() { return *_caches; }
    const uarch::PrivateCaches &caches() const { return *_caches; }
    const uarch::CoreContext &context() const { return *_context; }
    const Ufpg &ufpg() const { return *_ufpg; }
    const Ccsm &ccsm() const { return *_ccsm; }
    const C6aController &controller() const { return *_controller; }
    C6aController &controller() { return *_controller; }
    const AwPpaModel &ppa() const { return *_ppa; }

    /** A transition engine bound to this core's models, with the AW
     *  hardware latencies installed. */
    cstate::TransitionEngine makeTransitionEngine() const;

  private:
    std::unique_ptr<uarch::UnitInventory> _inventory;
    std::unique_ptr<uarch::PrivateCaches> _caches;
    std::unique_ptr<uarch::CoreContext> _context;
    std::unique_ptr<Ufpg> _ufpg;
    std::unique_ptr<Ccsm> _ccsm;
    std::unique_ptr<C6aController> _controller;
    std::unique_ptr<AwPpaModel> _ppa;
};

} // namespace aw::core

#endif // AW_CORE_AW_CORE_HH
