/**
 * @file
 * The C6A power-management-agent (PMA) controller: the finite state
 * machine of Fig 6 that orchestrates C6A/C6AE entry, exit and snoop
 * handling at nanosecond granularity.
 *
 * The FSM is clocked by the PMA clock (several hundred MHz in
 * modern SoCs; 500 MHz here) and sequences:
 *
 *   entry:  (1) clock-gate UFPG, keep PLL on   [2 cycles]
 *           (2) save context in place, gate    [4 cycles]
 *           (3) caches to sleep + clock-gate   [3 cycles]
 *   exit:   (4) cache wake + sleep exit        [2 cycles]
 *           (5) staggered power-ungate + Ret   [<70 ns + 1 cycle]
 *           (6) clock-ungate UFPG              [2 cycles]
 *   snoop:  (a) cache wake                     [2 cycles]
 *           (b) serve probes                   [cache model]
 *           (c) back to sleep                  [3 cycles]
 *
 * The controller both *computes* these latencies (for the analytical
 * models and Table 1) and *executes* them as discrete events with a
 * phase trace (for the integration tests and the server simulator).
 */

#ifndef AW_CORE_PMA_HH
#define AW_CORE_PMA_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/ccsm.hh"
#include "core/ufpg.hh"
#include "cstate/transition.hh"
#include "power/power_gate.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace aw::core {

/** Phases of the C6A PMA state machine. */
enum class PmaPhase : std::uint8_t
{
    C0,              //!< core active
    EntryClockGate,  //!< Fig 6 step 1
    EntrySaveGate,   //!< Fig 6 step 2
    EntryCacheSleep, //!< Fig 6 step 3
    IdleC6a,         //!< resident in C6A/C6AE
    SnoopWake,       //!< Fig 6 step a
    SnoopServe,      //!< Fig 6 step b
    SnoopResleep,    //!< Fig 6 step c
    ExitCacheWake,   //!< Fig 6 step 4
    ExitUngate,      //!< Fig 6 step 5 (staggered)
    ExitClockUngate, //!< Fig 6 step 6
};

const char *name(PmaPhase p);

/**
 * The C6A/C6AE controller of one core.
 */
class C6aController
{
  public:
    /** PMA clock: modern SoC power-management controllers run at
     *  several hundred MHz to react at nanosecond scale. */
    static constexpr sim::Frequency kPmaClock =
        sim::Frequency(500e6);

    /** Number of staggered wake-up zones (Sec 5.3). */
    static constexpr std::size_t kWakeZones = 5;

    /** Additional PMA power while C6A machinery is present. */
    static constexpr power::Watts kControllerPower =
        power::milliwatts(5.0);

    /**
     * @param ufpg  the UFPG subsystem (provides the zone area ratio)
     * @param ccsm  the CCSM subsystem (cache sleep transitions)
     */
    C6aController(const Ufpg &ufpg, const Ccsm &ccsm);

    /** @{ Latency queries (hardware-only). */
    sim::Tick entryLatency() const;
    sim::Tick exitLatency() const;

    /** Entry + immediate exit: the paper's <100 ns claim. */
    sim::Tick
    roundTripLatency() const
    {
        return entryLatency() + exitLatency();
    }

    /** Time to make caches snoop-ready from C6A (step a). */
    sim::Tick snoopWakeLatency() const;

    /** Time to return to full C6A after serving snoops (step c). */
    sim::Tick snoopResleepLatency() const;

    /** Packaged latencies for the cstate transition engine;
     *  C6AE has identical hardware latency (the V/F ramp rides the
     *  non-blocking DVFS flow accounted in software). */
    cstate::AwHardwareLatencies awLatencies() const;
    /** @} */

    /** The staggered wake plan for the UFPG zones. */
    const power::StaggeredWakeupPlan &wakePlan() const
    {
        return _wakePlan;
    }

    /** @{ Event-driven execution with phase tracing. */
    struct PhaseRecord
    {
        PmaPhase phase;
        sim::Tick start;
        sim::Tick end;
    };

    /** Run the entry flow; @p done fires when C6A is reached. */
    void runEntry(sim::Simulator &simr, std::function<void()> done);

    /** Run the exit flow; @p done fires when C0 is reached. */
    void runExit(sim::Simulator &simr, std::function<void()> done);

    /**
     * Run the snoop flow (a-b-c); @p serve_time is how long the
     * probes take to serve (from the cache model); @p done fires
     * when the core is back in full C6A.
     */
    void runSnoop(sim::Simulator &simr, sim::Tick serve_time,
                  std::function<void()> done);

    PmaPhase phase() const { return _phase; }
    const std::vector<PhaseRecord> &trace() const { return _trace; }
    void clearTrace() { _trace.clear(); }
    /** @} */

    const Ufpg &ufpg() const { return _ufpg; }
    const Ccsm &ccsm() const { return _ccsm; }

  private:
    /** Advance to @p next, recording the elapsed phase. */
    void advance(sim::Simulator &simr, PmaPhase next);

    /** Schedule the tail of a multi-phase flow. */
    void step(sim::Simulator &simr, PmaPhase current, sim::Tick dur,
              PmaPhase next, std::function<void()> cont);

    const Ufpg &_ufpg;
    const Ccsm &_ccsm;
    power::StaggeredWakeupPlan _wakePlan;
    PmaPhase _phase = PmaPhase::C0;
    sim::Tick _phaseStart = 0;
    std::vector<PhaseRecord> _trace;
};

} // namespace aw::core

#endif // AW_CORE_PMA_HH
