/**
 * @file
 * The AgileWatts power-performance-area (PPA) rollup: Table 3.
 *
 * Every row is computed from the underlying component models
 * (UFPG residual leakage, context retention, CCSM sleep power, PMA
 * controller, ADPLL, FIVR losses) with the paper's uncertainty
 * ranges propagated as intervals, so the totals come out as the
 * same lo-hi ranges the paper prints (C6A 290-315 mW, C6AE
 * 227-243 mW, 3-7% core area).
 */

#ifndef AW_CORE_PPA_HH
#define AW_CORE_PPA_HH

#include <string>
#include <vector>

#include "core/ccsm.hh"
#include "core/pma.hh"
#include "core/ufpg.hh"
#include "power/regulators.hh"
#include "power/units.hh"

namespace aw::core {

/** One Table 3 row. */
struct PpaRow
{
    std::string component;
    std::string subComponent;
    std::string areaRequirement;  //!< human-readable, as in Table 3
    power::Interval powerC6a;     //!< watts
    power::Interval powerC6ae;    //!< watts
};

/**
 * The full PPA model.
 */
class AwPpaModel
{
  public:
    AwPpaModel(const Ufpg &ufpg, const Ccsm &ccsm,
               power::Adpll adpll = power::Adpll(),
               power::Fivr fivr = power::Fivr());

    /** All Table 3 rows, in the paper's order. */
    std::vector<PpaRow> rows() const;

    /** @{ Aggregates. */
    power::Interval totalPowerC6a() const;
    power::Interval totalPowerC6ae() const;

    /** Total extra core area, as a fraction of core area. */
    power::Interval totalAreaFractionOfCore() const;
    /** @} */

    /** @{ Individual terms (used by tests and the C-state glue). */
    power::Interval ufpgGatePowerC6a() const;
    power::Interval ufpgGatePowerC6ae() const;
    power::Interval contextPowerC6a() const;
    power::Interval contextPowerC6ae() const;
    power::Interval ccsmCachePowerC6a() const;
    power::Interval ccsmCachePowerC6ae() const;
    power::Interval ccsmRestPowerC6a() const;
    power::Interval ccsmRestPowerC6ae() const;
    power::Interval pmaPowerC6a() const;
    power::Interval adpllPower() const;

    /**
     * FIVR conversion loss: applies to the power actually delivered
     * through the core rail (UFPG residual + context + CCSM); the
     * PMA lives in the uncore and the ADPLL has its own supply.
     */
    power::Interval fivrConversionLossC6a() const;
    power::Interval fivrConversionLossC6ae() const;
    power::Interval fivrStaticLoss() const;
    /** @} */

    /**
     * The midpoint C6A/C6AE core power used by the average-power
     * model when a single number is needed (paper headline: ~0.3 W
     * and ~0.23 W).
     */
    power::Watts c6aPowerMid() const
    {
        return totalPowerC6a().mid();
    }

    power::Watts c6aePowerMid() const
    {
        return totalPowerC6ae().mid();
    }

  private:
    const Ufpg &_ufpg;
    const Ccsm &_ccsm;
    power::Adpll _adpll;
    power::Fivr _fivr;
};

} // namespace aw::core

#endif // AW_CORE_PPA_HH
