#include "core/schemes.hh"

#include "sim/logging.hh"

namespace aw::core {

std::vector<PowerGatingScheme>
powerGatingSchemes(const C6aController &controller)
{
    std::vector<PowerGatingScheme> rows;
    rows.push_back({"Roy et al. [109]", "In-order CPU", "Cache miss",
                    "Register file", "5 cycles", 0});
    rows.push_back({"MAPG [102]", "In-order CPU", "Cache miss",
                    "Core", "10ns", 10 * sim::kTicksPerNs});
    rows.push_back({"Hu et al. [47]", "OoO CPU",
                    "Execution unit idle", "Execution units",
                    "9 cycles", 0});
    rows.push_back({"Battle et al. [110]", "OoO CPU",
                    "Register file bank idle", "Register file bank",
                    "17 cycles", 0});
    rows.push_back({"GPU RF virt. [111]", "GPU",
                    "Register subarray unused", "Register subarray",
                    "10 cycles", 0});
    rows.push_back({"IChannels [35]", "OoO CPU",
                    "AVX execution unit idle",
                    "Intel AVX execution unit", "~10-15ns",
                    15 * sim::kTicksPerNs});

    const sim::Tick aw_wake = controller.exitLatency();
    rows.push_back({"AW (This work)", "OoO CPU", "Core idle",
                    "Most of core units",
                    sim::strprintf("~%.0fns", sim::toNs(aw_wake)),
                    aw_wake});
    return rows;
}

const PowerGatingScheme *
findScheme(const std::vector<PowerGatingScheme> &rows,
           const std::string &technique)
{
    for (const auto &row : rows)
        if (row.technique == technique)
            return &row;
    return nullptr;
}

double
schemeWakeNs(const std::vector<PowerGatingScheme> &rows,
             const std::string &technique)
{
    const auto *row = findScheme(rows, technique);
    if (!row)
        sim::fatal("unknown power-gating scheme '%s'",
                   technique.c_str());
    return sim::toNs(row->wakeOverheadTime);
}

} // namespace aw::core
