/**
 * @file
 * Application workload profiles: the three latency-critical services
 * of the evaluation (Memcached, MySQL, Kafka) and the four
 * model-validation workloads (SPECpower, Nginx, Spark, Hive), each
 * as an arrival process + service-demand model calibrated to
 * reproduce the C-state residency structure the paper measures.
 */

#ifndef AW_WORKLOAD_PROFILES_HH
#define AW_WORKLOAD_PROFILES_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "workload/arrival.hh"
#include "workload/service.hh"

namespace aw::workload {

/** Shape of the arrival process. */
enum class ArrivalKind
{
    Poisson,
    Deterministic,
    Bursty, //!< two-state MMPP
};

/**
 * Burstiness shape for Bursty arrivals: the burst phase carries
 * @c rateMultiple times the average rate over bursts of mean
 * @c burstMean, with the remainder flowing through quiet phases of
 * mean @c quietMean.
 */
struct BurstShape
{
    double rateMultiple = 4.0;
    sim::Tick burstMean = 2 * sim::kTicksPerMs;
    sim::Tick quietMean = 14 * sim::kTicksPerMs;
};

/**
 * A workload profile. Stateless description; makeArrivals() and the
 * shared service model produce the per-core streams.
 */
class WorkloadProfile
{
  public:
    WorkloadProfile(std::string name, ArrivalKind arrivals,
                    std::shared_ptr<ServiceModel> service,
                    double write_fraction,
                    std::vector<double> rate_levels_qps,
                    BurstShape burst = BurstShape{});

    const std::string &name() const { return _name; }
    ArrivalKind arrivalKind() const { return _arrivals; }
    ServiceModel &service() const { return *_service; }
    std::shared_ptr<ServiceModel> servicePtr() const
    {
        return _service;
    }

    /** Fraction of touched cache lines dirtied per request. */
    double writeFraction() const { return _writeFraction; }

    /** The request-rate sweep (total server QPS) of the figure this
     *  profile reproduces. */
    const std::vector<double> &rateLevels() const
    {
        return _rateLevels;
    }

    /** Burst shape used by Bursty arrivals. */
    const BurstShape &burst() const { return _burst; }

    /**
     * Workload-specific active-power scale relative to the nominal
     * C0 power of Table 1. Real workloads draw different dynamic
     * power per cycle (IPC, vector width, memory mix); the
     * analytical model of Sec 6.2 uses the nominal constant, and
     * this gap is what bounds its validation accuracy to the
     * 94-96% of Sec 6.3. The three calibrated evaluation services
     * use 1.0 (their absolute power anchors ARE the Table 1
     * numbers); the validation suite carries measured-style skews.
     */
    double activePowerScale() const { return _activePowerScale; }

    /** Builder-style override for the active-power scale. */
    WorkloadProfile &
    withActivePowerScale(double scale)
    {
        _activePowerScale = scale;
        return *this;
    }

    /** Build a per-core arrival process for @p per_core_rate /s. */
    std::unique_ptr<ArrivalProcess>
    makeArrivals(double per_core_rate) const;

    /** @{ The evaluation workloads (Sec 6.1). */
    static WorkloadProfile memcached();
    static WorkloadProfile mysql();
    static WorkloadProfile kafka();
    /** @} */

    /** @{ The power-model validation workloads (Sec 6.3). */
    static WorkloadProfile specpower();
    static WorkloadProfile nginx();
    static WorkloadProfile spark();
    static WorkloadProfile hive();
    /** @} */

    /** All validation profiles in one list. */
    static std::vector<WorkloadProfile> validationSuite();

  private:
    std::string _name;
    ArrivalKind _arrivals;
    std::shared_ptr<ServiceModel> _service;
    double _writeFraction;
    std::vector<double> _rateLevels;
    BurstShape _burst;
    double _activePowerScale = 1.0;
};

} // namespace aw::workload

#endif // AW_WORKLOAD_PROFILES_HH
