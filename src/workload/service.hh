/**
 * @file
 * Service-demand models: how much work one request is.
 *
 * Demands are expressed as a compute part (cycles at the core
 * clock) and a frequency-independent part (memory/IO), so a given
 * model has an intrinsic "frequency scalability" -- the compute
 * share -- that the evaluation measures the way the paper does
 * (performance delta between 2.0 and 2.2 GHz, Fig 8d).
 */

#ifndef AW_WORKLOAD_SERVICE_HH
#define AW_WORKLOAD_SERVICE_HH

#include <memory>

#include "sim/random.hh"
#include "sim/types.hh"
#include "workload/request.hh"

namespace aw::workload {

/**
 * Interface: draw per-request service demands.
 */
class ServiceModel
{
  public:
    virtual ~ServiceModel() = default;

    /** Draw one request's demand. */
    virtual ServiceDemand draw(sim::Rng &rng) = 0;

    /** Mean total service time at the reference frequency. */
    virtual sim::Tick meanServiceTime() const = 0;

    /** Fraction of the mean demand that is compute (cycles). */
    virtual double computeShare() const = 0;

    /** Reference frequency the mean is quoted at. */
    virtual sim::Frequency referenceFrequency() const = 0;
};

/**
 * Lognormal total service time with a fixed compute share.
 *
 * The workhorse model: mean and coefficient of variation control
 * the queueing behaviour, the compute share controls frequency
 * scalability.
 */
class LognormalService : public ServiceModel
{
  public:
    /**
     * @param mean_time     mean service time at @p ref_freq
     * @param cv            coefficient of variation of the total
     * @param compute_share fraction of time that is cycles
     * @param ref_freq      frequency the mean is quoted at
     */
    LognormalService(sim::Tick mean_time, double cv,
                     double compute_share,
                     sim::Frequency ref_freq =
                         sim::Frequency::ghz(2.2));

    ServiceDemand draw(sim::Rng &rng) override;
    sim::Tick meanServiceTime() const override { return _mean; }
    double computeShare() const override { return _computeShare; }
    sim::Frequency referenceFrequency() const override
    {
        return _refFreq;
    }

    double cv() const { return _cv; }

  private:
    sim::Tick _mean;
    double _cv;
    double _computeShare;
    sim::Frequency _refFreq;
    sim::LognormalParams _params; //!< hoisted (mu, sigma)
};

/** Deterministic service demand (tests, worst-case analyses). */
class FixedService : public ServiceModel
{
  public:
    FixedService(sim::Tick time, double compute_share,
                 sim::Frequency ref_freq = sim::Frequency::ghz(2.2));

    ServiceDemand draw(sim::Rng &) override { return _demand; }
    sim::Tick meanServiceTime() const override { return _time; }
    double computeShare() const override { return _computeShare; }
    sim::Frequency referenceFrequency() const override
    {
        return _refFreq;
    }

  private:
    sim::Tick _time;
    double _computeShare;
    sim::Frequency _refFreq;
    ServiceDemand _demand;
};

/**
 * Bimodal mix (e.g., GET/SET in a key-value store): two lognormal
 * populations with a mixing probability.
 */
class BimodalService : public ServiceModel
{
  public:
    /**
     * @param fast_mean / slow_mean  the two population means
     * @param fast_fraction          probability of the fast class
     */
    BimodalService(sim::Tick fast_mean, sim::Tick slow_mean,
                   double fast_fraction, double cv,
                   double compute_share,
                   sim::Frequency ref_freq =
                       sim::Frequency::ghz(2.2));

    ServiceDemand draw(sim::Rng &rng) override;
    sim::Tick meanServiceTime() const override;
    double computeShare() const override { return _computeShare; }
    sim::Frequency referenceFrequency() const override
    {
        return _refFreq;
    }

  private:
    sim::Tick _fastMean;
    sim::Tick _slowMean;
    double _fastFraction;
    double _cv;
    double _computeShare;
    sim::Frequency _refFreq;
    sim::LognormalParams _fastParams; //!< hoisted (mu, sigma)
    sim::LognormalParams _slowParams;
};

/** Split a drawn total time into a ServiceDemand at @p ref_freq. */
ServiceDemand splitDemand(sim::Tick total, double compute_share,
                          sim::Frequency ref_freq);

} // namespace aw::workload

#endif // AW_WORKLOAD_SERVICE_HH
