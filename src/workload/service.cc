#include "workload/service.hh"

#include "sim/logging.hh"

namespace aw::workload {

ServiceDemand
splitDemand(sim::Tick total, double compute_share,
            sim::Frequency ref_freq)
{
    ServiceDemand d;
    const double total_sec = sim::toSec(total);
    d.cycles = total_sec * compute_share * ref_freq.hz();
    d.fixed = sim::fromSec(total_sec * (1.0 - compute_share));
    return d;
}

LognormalService::LognormalService(sim::Tick mean_time, double cv,
                                   double compute_share,
                                   sim::Frequency ref_freq)
    : _mean(mean_time), _cv(cv), _computeShare(compute_share),
      _refFreq(ref_freq)
{
    if (mean_time == 0)
        sim::panic("LognormalService: zero mean");
    if (compute_share < 0.0 || compute_share > 1.0)
        sim::panic("LognormalService: compute share %f out of [0,1]",
                   compute_share);
    _params =
        sim::LognormalParams(static_cast<double>(mean_time), cv);
}

ServiceDemand
LognormalService::draw(sim::Rng &rng)
{
    const double t = _params.draw(rng);
    return splitDemand(static_cast<sim::Tick>(t), _computeShare,
                       _refFreq);
}

FixedService::FixedService(sim::Tick time, double compute_share,
                           sim::Frequency ref_freq)
    : _time(time), _computeShare(compute_share), _refFreq(ref_freq)
{
    _demand = splitDemand(time, compute_share, ref_freq);
}

BimodalService::BimodalService(sim::Tick fast_mean,
                               sim::Tick slow_mean,
                               double fast_fraction, double cv,
                               double compute_share,
                               sim::Frequency ref_freq)
    : _fastMean(fast_mean), _slowMean(slow_mean),
      _fastFraction(fast_fraction), _cv(cv),
      _computeShare(compute_share), _refFreq(ref_freq)
{
    if (fast_fraction < 0.0 || fast_fraction > 1.0)
        sim::panic("BimodalService: fraction %f out of [0,1]",
                   fast_fraction);
    _fastParams =
        sim::LognormalParams(static_cast<double>(fast_mean), cv);
    _slowParams =
        sim::LognormalParams(static_cast<double>(slow_mean), cv);
}

ServiceDemand
BimodalService::draw(sim::Rng &rng)
{
    const auto &params = rng.bernoulli(_fastFraction)
                             ? _fastParams
                             : _slowParams;
    const double t = params.draw(rng);
    return splitDemand(static_cast<sim::Tick>(t), _computeShare,
                       _refFreq);
}

sim::Tick
BimodalService::meanServiceTime() const
{
    const double m =
        _fastFraction * static_cast<double>(_fastMean) +
        (1.0 - _fastFraction) * static_cast<double>(_slowMean);
    return static_cast<sim::Tick>(m);
}

} // namespace aw::workload
