/**
 * @file
 * The unit of work flowing through the simulated server: a request
 * with its timeline stamps, from which latency statistics are
 * derived.
 */

#ifndef AW_WORKLOAD_REQUEST_HH
#define AW_WORKLOAD_REQUEST_HH

#include <cstdint>

#include "sim/types.hh"

namespace aw::workload {

/**
 * Service demand of one request, split into a frequency-dependent
 * compute part (core cycles) and a frequency-independent part
 * (memory/IO stalls). The split is what makes workload "frequency
 * scalability" (paper Sec 6.2 / Fig 8d) an emergent property: a
 * core running 1% slower only lengthens the cycle part.
 */
struct ServiceDemand
{
    double cycles = 0.0;     //!< core cycles of compute
    sim::Tick fixed = 0;     //!< frequency-independent time

    /** Wall-clock duration at core frequency @p freq. */
    sim::Tick
    duration(sim::Frequency freq) const
    {
        return sim::fromSec(cycles / freq.hz()) + fixed;
    }
};

/**
 * One request's lifecycle record.
 */
struct Request
{
    std::uint64_t id = 0;
    sim::Tick arrival = 0;      //!< at the server NIC
    ServiceDemand demand;
    sim::Tick serviceStart = 0; //!< core begins executing it
    sim::Tick completion = 0;   //!< response ready

    /** Server-side response time (queueing + wake + service). */
    sim::Tick
    serverLatency() const
    {
        return completion - arrival;
    }
};

} // namespace aw::workload

#endif // AW_WORKLOAD_REQUEST_HH
