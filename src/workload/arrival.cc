#include "workload/arrival.hh"

#include "sim/logging.hh"

namespace aw::workload {

PoissonArrivals::PoissonArrivals(double rate_per_sec)
    : _rate(rate_per_sec)
{
    if (rate_per_sec <= 0.0)
        sim::panic("PoissonArrivals: rate must be positive (%f)",
                   rate_per_sec);
}

sim::Tick
PoissonArrivals::nextGap(sim::Rng &rng)
{
    return sim::fromSec(rng.exponential(1.0 / _rate));
}

DeterministicArrivals::DeterministicArrivals(double rate_per_sec)
    : _rate(rate_per_sec)
{
    if (rate_per_sec <= 0.0)
        sim::panic("DeterministicArrivals: rate must be positive (%f)",
                   rate_per_sec);
    _gap = sim::fromSec(1.0 / rate_per_sec);
}

MmppArrivals::MmppArrivals(double burst_rate, double quiet_rate,
                           sim::Tick burst_mean, sim::Tick quiet_mean)
    : _burstRate(burst_rate), _quietRate(quiet_rate),
      _burstMean(burst_mean), _quietMean(quiet_mean)
{
    if (burst_rate <= 0.0 || quiet_rate < 0.0)
        sim::panic("MmppArrivals: bad rates burst=%f quiet=%f",
                   burst_rate, quiet_rate);
    if (burst_mean == 0 || quiet_mean == 0)
        sim::panic("MmppArrivals: zero phase durations");
}

sim::Tick
MmppArrivals::nextGap(sim::Rng &rng)
{
    sim::Tick gap = 0;
    // Walk phases until an arrival lands inside the current phase.
    for (;;) {
        if (_phaseLeft == 0) {
            const sim::Tick mean = _inBurst ? _burstMean : _quietMean;
            _phaseLeft = sim::fromSec(
                rng.exponential(sim::toSec(mean)));
        }
        const double rate = _inBurst ? _burstRate : _quietRate;
        if (rate <= 0.0) {
            // Silent phase: skip it entirely.
            gap += _phaseLeft;
            _phaseLeft = 0;
            _inBurst = !_inBurst;
            continue;
        }
        const sim::Tick draw =
            sim::fromSec(rng.exponential(1.0 / rate));
        if (draw <= _phaseLeft) {
            _phaseLeft -= draw;
            return gap + draw;
        }
        gap += _phaseLeft;
        _phaseLeft = 0;
        _inBurst = !_inBurst;
    }
}

double
MmppArrivals::ratePerSec() const
{
    const double tb = sim::toSec(_burstMean);
    const double tq = sim::toSec(_quietMean);
    return (_burstRate * tb + _quietRate * tq) / (tb + tq);
}

} // namespace aw::workload
