/**
 * @file
 * Open-loop arrival processes. The paper's load generators
 * (Mutilate, sysbench, Kafka perf tools) drive the server open-loop
 * at a target rate; we model Poisson arrivals for the request-per-
 * query services and a two-state MMPP for the bursty streaming
 * workload.
 */

#ifndef AW_WORKLOAD_ARRIVAL_HH
#define AW_WORKLOAD_ARRIVAL_HH

#include <memory>

#include "sim/random.hh"
#include "sim/types.hh"

namespace aw::workload {

/**
 * Interface: a stream of inter-arrival gaps.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Draw the gap to the next arrival. */
    virtual sim::Tick nextGap(sim::Rng &rng) = 0;

    /** Mean rate in arrivals per second. */
    virtual double ratePerSec() const = 0;
};

/** Poisson (exponential gaps) at a fixed rate. */
class PoissonArrivals : public ArrivalProcess
{
  public:
    explicit PoissonArrivals(double rate_per_sec);

    sim::Tick nextGap(sim::Rng &rng) override;
    double ratePerSec() const override { return _rate; }

  private:
    double _rate;
};

/** Deterministic (constant gap) arrivals. */
class DeterministicArrivals : public ArrivalProcess
{
  public:
    explicit DeterministicArrivals(double rate_per_sec);

    sim::Tick nextGap(sim::Rng &) override { return _gap; }
    double ratePerSec() const override { return _rate; }

  private:
    double _rate;
    sim::Tick _gap;
};

/**
 * Two-state Markov-modulated Poisson process: alternates between a
 * burst phase (high rate) and a quiet phase (low rate) with
 * exponentially distributed phase durations. Models the batchy
 * producer/consumer traffic of the streaming workload.
 */
class MmppArrivals : public ArrivalProcess
{
  public:
    /**
     * @param burst_rate   arrival rate during bursts
     * @param quiet_rate   arrival rate between bursts
     * @param burst_mean   mean burst duration
     * @param quiet_mean   mean quiet duration
     */
    MmppArrivals(double burst_rate, double quiet_rate,
                 sim::Tick burst_mean, sim::Tick quiet_mean);

    sim::Tick nextGap(sim::Rng &rng) override;
    double ratePerSec() const override;

    bool inBurst() const { return _inBurst; }

  private:
    double _burstRate;
    double _quietRate;
    sim::Tick _burstMean;
    sim::Tick _quietMean;
    bool _inBurst = true;
    sim::Tick _phaseLeft = 0;
};

/** Factory signature: build a per-core arrival process for a rate. */
using ArrivalFactory = std::unique_ptr<ArrivalProcess> (*)(double);

} // namespace aw::workload

#endif // AW_WORKLOAD_ARRIVAL_HH
