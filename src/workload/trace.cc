#include "workload/trace.hh"

#include "sim/logging.hh"

namespace aw::workload {

ArrivalTrace
ArrivalTrace::record(ArrivalProcess &source, sim::Rng &rng,
                     std::size_t n)
{
    std::vector<sim::Tick> gaps;
    gaps.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        gaps.push_back(source.nextGap(rng));
    return ArrivalTrace(std::move(gaps));
}

sim::Tick
ArrivalTrace::duration() const
{
    sim::Tick total = 0;
    for (const auto g : _gaps)
        total += g;
    return total;
}

double
ArrivalTrace::meanRatePerSec() const
{
    const sim::Tick d = duration();
    if (d == 0)
        return 0.0;
    return static_cast<double>(_gaps.size()) / sim::toSec(d);
}

TraceArrivals::TraceArrivals(ArrivalTrace trace, bool loop)
    : _trace(std::move(trace)), _loop(loop)
{
    if (_trace.empty())
        sim::panic("TraceArrivals: empty trace");
}

bool
TraceArrivals::exhausted() const
{
    return !_loop && _pos >= _trace.size();
}

sim::Tick
TraceArrivals::nextGap(sim::Rng &)
{
    if (exhausted())
        return sim::kMaxTick;
    const sim::Tick gap = _trace.gaps()[_pos % _trace.size()];
    ++_pos;
    return gap;
}

double
TraceArrivals::ratePerSec() const
{
    return _trace.meanRatePerSec();
}

} // namespace aw::workload
