#include "workload/trace.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "sim/logging.hh"

namespace aw::workload {

ArrivalTrace
ArrivalTrace::record(ArrivalProcess &source, sim::Rng &rng,
                     std::size_t n)
{
    std::vector<sim::Tick> gaps;
    gaps.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        gaps.push_back(source.nextGap(rng));
    return ArrivalTrace(std::move(gaps));
}

ArrivalTrace
ArrivalTrace::loadCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("ArrivalTrace::loadCsv: cannot open '%s'",
                   path.c_str());

    std::vector<sim::Tick> gaps;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip a trailing comment and treat commas as separators.
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        for (auto &c : line)
            if (c == ',')
                c = ' ';
        std::istringstream fields(line);
        std::string token;
        while (fields >> token) {
            char *end = nullptr;
            const double us = std::strtod(token.c_str(), &end);
            if (end == token.c_str() || *end != '\0' ||
                !std::isfinite(us)) {
                sim::fatal("ArrivalTrace::loadCsv: '%s' line %zu: "
                           "bad gap value '%s'",
                           path.c_str(), lineno, token.c_str());
            }
            if (us < 0.0)
                sim::fatal("ArrivalTrace::loadCsv: '%s' line %zu: "
                           "negative gap %f",
                           path.c_str(), lineno, us);
            gaps.push_back(sim::fromUs(us));
        }
    }
    if (gaps.empty())
        sim::fatal("ArrivalTrace::loadCsv: '%s' holds no gaps",
                   path.c_str());
    return ArrivalTrace(std::move(gaps));
}

void
ArrivalTrace::saveCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("ArrivalTrace::saveCsv: cannot write '%s'",
                   path.c_str());
    out << "# inter-arrival gaps, microseconds, one per line\n";
    // Full double precision so save/load round trips reproduce the
    // tick values exactly (bit-identical replay is the point).
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const auto g : _gaps)
        out << sim::toUs(g) << "\n";
    if (!out)
        sim::fatal("ArrivalTrace::saveCsv: write to '%s' failed",
                   path.c_str());
}

sim::Tick
ArrivalTrace::duration() const
{
    sim::Tick total = 0;
    for (const auto g : _gaps)
        total += g;
    return total;
}

double
ArrivalTrace::meanRatePerSec() const
{
    const sim::Tick d = duration();
    if (d == 0)
        return 0.0;
    return static_cast<double>(_gaps.size()) / sim::toSec(d);
}

TraceArrivals::TraceArrivals(ArrivalTrace trace, bool loop)
    : _trace(std::move(trace)), _loop(loop)
{
    if (_trace.empty())
        sim::panic("TraceArrivals: empty trace");
    // A looping trace that spans no time would replay infinitely
    // many arrivals at the same tick.
    if (_loop && _trace.duration() == 0)
        sim::fatal("TraceArrivals: zero-duration trace cannot loop");
}

bool
TraceArrivals::exhausted() const
{
    return !_loop && _pos >= _trace.size();
}

sim::Tick
TraceArrivals::nextGap(sim::Rng &)
{
    if (exhausted())
        return sim::kMaxTick;
    const sim::Tick gap = _trace.gaps()[_pos % _trace.size()];
    ++_pos;
    return gap;
}

double
TraceArrivals::ratePerSec() const
{
    return _trace.meanRatePerSec();
}

} // namespace aw::workload
