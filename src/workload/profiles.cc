#include "workload/profiles.hh"

#include "sim/logging.hh"

namespace aw::workload {

WorkloadProfile::WorkloadProfile(std::string name, ArrivalKind arrivals,
                                 std::shared_ptr<ServiceModel> service,
                                 double write_fraction,
                                 std::vector<double> rate_levels_qps,
                                 BurstShape burst)
    : _name(std::move(name)), _arrivals(arrivals),
      _service(std::move(service)), _writeFraction(write_fraction),
      _rateLevels(std::move(rate_levels_qps)), _burst(burst)
{
    if (!_service)
        sim::panic("WorkloadProfile '%s': null service model",
                   _name.c_str());
}

std::unique_ptr<ArrivalProcess>
WorkloadProfile::makeArrivals(double per_core_rate) const
{
    switch (_arrivals) {
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonArrivals>(per_core_rate);
      case ArrivalKind::Deterministic:
        return std::make_unique<DeterministicArrivals>(per_core_rate);
      case ArrivalKind::Bursty: {
        // Average rate r split across burst/quiet phases so that
        // the burst carries rateMultiple x the average.
        const double tb = sim::toSec(_burst.burstMean);
        const double tq = sim::toSec(_burst.quietMean);
        const double burst_rate =
            per_core_rate * _burst.rateMultiple;
        // avg = (burst*tb + quiet*tq) / (tb+tq)  =>  solve quiet.
        double quiet_rate =
            (per_core_rate * (tb + tq) - burst_rate * tb) / tq;
        if (quiet_rate < 0.0)
            quiet_rate = 0.0;
        return std::make_unique<MmppArrivals>(
            burst_rate, quiet_rate, _burst.burstMean,
            _burst.quietMean);
      }
      default:
        sim::panic("WorkloadProfile: bad arrival kind");
    }
}

WorkloadProfile
WorkloadProfile::memcached()
{
    // ETC-like mix: ~90% GETs (fast) / ~10% SETs (slower), a few
    // microseconds each; mean ~7.4 us. Compute share 0.5 gives the
    // moderate frequency scalability of Fig 8d. Rates are the Fig 8
    // sweep (total server KQPS).
    auto service = std::make_shared<BimodalService>(
        sim::fromUs(6.0), sim::fromUs(20.0), 0.90, 0.7, 0.5);
    return WorkloadProfile(
        "memcached", ArrivalKind::Poisson, std::move(service), 0.25,
        {10e3, 50e3, 100e3, 200e3, 300e3, 400e3, 500e3});
}

WorkloadProfile
WorkloadProfile::mysql()
{
    // sysbench OLTP: sub-millisecond queries with idle gaps long
    // enough that the baseline reaches >=40% C6 residency
    // (Fig 12a), yet short enough that the ~40 us C6 wake costs
    // the 4-10% of response time of Fig 12c. Rates: low / mid /
    // high total QPS.
    auto service = std::make_shared<LognormalService>(
        sim::fromUs(500.0), 0.9, 0.6);
    // 6% / 13.5% / 21% core utilization: the 5-25% range real
    // latency-critical deployments run at (Sec 2).
    return WorkloadProfile("mysql", ArrivalKind::Poisson,
                           std::move(service), 0.5,
                           {1200.0, 2700.0, 4200.0});
}

WorkloadProfile
WorkloadProfile::kafka()
{
    // Event streaming: batchy producer/consumer traffic (MMPP).
    // At the low rate the quiet phases are long enough for C6
    // (>60% residency, Fig 13a); at the high rate gaps stay below
    // the C6 target residency so the baseline lives in C0/C1 --
    // but utilization stays low (~12%), so nearly all idle time is
    // C1 and AW's C6A recovers >50% of average power (Fig 13d).
    auto service = std::make_shared<LognormalService>(
        sim::fromUs(150.0), 1.0, 0.5);
    // Short bursts with short silent windows: at the high rate the
    // intra-burst gaps dominate the predictor window, keeping the
    // typical interval under the C6 target; at the low rate even
    // burst-internal gaps are millisecond-scale.
    return WorkloadProfile(
        "kafka", ArrivalKind::Bursty, std::move(service), 0.4,
        {1e3, 8e3},
        BurstShape{3.0, 2 * sim::kTicksPerMs,
                   4 * sim::kTicksPerMs});
}

WorkloadProfile
WorkloadProfile::specpower()
{
    auto service = std::make_shared<LognormalService>(
        sim::fromUs(5.0), 0.6, 0.7);
    return WorkloadProfile("specpower", ArrivalKind::Poisson,
                           std::move(service), 0.3,
                           {100e3, 400e3, 800e3, 1200e3})
        .withActivePowerScale(1.05);
}

WorkloadProfile
WorkloadProfile::nginx()
{
    auto service = std::make_shared<LognormalService>(
        sim::fromUs(50.0), 1.2, 0.55);
    return WorkloadProfile("nginx", ArrivalKind::Poisson,
                           std::move(service), 0.2,
                           {10e3, 40e3, 80e3, 120e3})
        .withActivePowerScale(1.06);
}

WorkloadProfile
WorkloadProfile::spark()
{
    auto service = std::make_shared<LognormalService>(
        sim::fromMs(20.0), 0.5, 0.8);
    return WorkloadProfile("spark", ArrivalKind::Bursty,
                           std::move(service), 0.6,
                           {50.0, 150.0, 300.0})
        .withActivePowerScale(1.07);
}

WorkloadProfile
WorkloadProfile::hive()
{
    auto service = std::make_shared<LognormalService>(
        sim::fromMs(100.0), 0.7, 0.7);
    return WorkloadProfile("hive", ArrivalKind::Poisson,
                           std::move(service), 0.5,
                           {10.0, 40.0, 70.0})
        .withActivePowerScale(1.07);
}

std::vector<WorkloadProfile>
WorkloadProfile::validationSuite()
{
    std::vector<WorkloadProfile> suite;
    suite.push_back(specpower());
    suite.push_back(nginx());
    suite.push_back(spark());
    suite.push_back(hive());
    return suite;
}

} // namespace aw::workload
