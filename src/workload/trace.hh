/**
 * @file
 * Arrival-trace record and replay.
 *
 * Production studies (and this paper's own load generators) often
 * replay captured request timings rather than synthetic
 * distributions. ArrivalTrace captures a sequence of inter-arrival
 * gaps -- either recorded from any ArrivalProcess or loaded from
 * explicit values -- and TraceArrivals replays it (optionally
 * looping), giving bit-identical request streams across
 * configurations under comparison.
 */

#ifndef AW_WORKLOAD_TRACE_HH
#define AW_WORKLOAD_TRACE_HH

#include <string>
#include <vector>

#include "sim/types.hh"
#include "workload/arrival.hh"

namespace aw::workload {

/**
 * A recorded sequence of inter-arrival gaps.
 */
class ArrivalTrace
{
  public:
    ArrivalTrace() = default;

    explicit ArrivalTrace(std::vector<sim::Tick> gaps)
        : _gaps(std::move(gaps))
    {}

    /**
     * Record @p n gaps from a live arrival process.
     */
    static ArrivalTrace record(ArrivalProcess &source, sim::Rng &rng,
                               std::size_t n);

    /**
     * Load a trace of captured inter-arrival gaps from a text/CSV
     * file. Each value is one gap in microseconds (floating point);
     * values may be separated by newlines, commas or whitespace.
     * Blank lines and lines starting with '#' are skipped.
     * Unreadable files and non-numeric tokens are fatal().
     */
    static ArrivalTrace loadCsv(const std::string &path);

    /** Write the trace in loadCsv() format (one gap/line, in us). */
    void saveCsv(const std::string &path) const;

    const std::vector<sim::Tick> &gaps() const { return _gaps; }
    std::size_t size() const { return _gaps.size(); }
    bool empty() const { return _gaps.empty(); }

    /** Total simulated time the trace spans. */
    sim::Tick duration() const;

    /** Mean arrival rate implied by the trace. */
    double meanRatePerSec() const;

    void append(sim::Tick gap) { _gaps.push_back(gap); }

  private:
    std::vector<sim::Tick> _gaps;
};

/**
 * Replays an ArrivalTrace as an ArrivalProcess.
 */
class TraceArrivals : public ArrivalProcess
{
  public:
    /**
     * @param trace  gaps to replay
     * @param loop   wrap around at the end (otherwise the stream
     *               ends: nextGap returns kMaxTick)
     */
    explicit TraceArrivals(ArrivalTrace trace, bool loop = true);

    sim::Tick nextGap(sim::Rng &rng) override;
    double ratePerSec() const override;

    std::size_t position() const { return _pos; }
    bool exhausted() const;

  private:
    ArrivalTrace _trace;
    bool _loop;
    std::size_t _pos = 0;
};

} // namespace aw::workload

#endif // AW_WORKLOAD_TRACE_HH
