/**
 * @file
 * Power capping and thermal coupling: a RAPL-style package power-cap
 * controller, a first-order RC thermal model, and the fleet budget
 * planner that redistributes headroom between servers at epoch
 * boundaries.
 *
 * Production datacenters oversubscribe power: the provisioned budget
 * is below the fleet's peak draw, and RAPL package caps plus thermal
 * throttling keep the installation safe. This module supplies the
 * *policy* half of that machinery as pure computational classes --
 * no simulator events, no RNG draws -- so the enforcement sites
 * (CoreSim's operating-point clamp and forced-idle injection,
 * ServerSim's periodic control loop, FleetSim's epoch budgets) stay
 * trivially deterministic and unit-testable in isolation.
 *
 * Enforcement model (docs/POWERCAP.md):
 *
 *  - The controller outputs a single *throttle index*. Indices
 *    1..L-1 clamp the DVFS operating point down the existing
 *    freq::PStateLadder (L levels), exactly like RAPL's frequency
 *    clipping; indices beyond the ladder floor additionally inject
 *    forced idle in duty-cycle quanta of 1/kIdleSteps
 *    (intel_powerclamp-style), with the core napping in its deepest
 *    enabled state.
 *  - Precedence is cap -> QoS -> governor: the cap ceiling is a
 *    safety limit and overrides the LatencyQoS frequency floor,
 *    which in turn bounds the frequency governor's request.
 *  - Forced idle is what makes the paper's headline: resuming from
 *    a nap costs a full wake from the deepest enabled state --
 *    ~100 us out of legacy C6, sub-microsecond out of C6A -- so an
 *    AgileWatts fleet absorbs throttle-forced idle almost for free
 *    and sustains a materially tighter cap at equal p99.
 */

#ifndef AW_CAP_POWERCAP_HH
#define AW_CAP_POWERCAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "power/units.hh"
#include "sim/types.hh"

namespace aw::cap {

/**
 * First-order (one pole) RC thermal parameters of one server's hot
 * spot: junction temperature above chassis ambient through a single
 * thermal resistance, with the die + spreader heat capacity setting
 * the time constant (tau = R * C). Idiom reference:
 * drivers/thermal/devfreq_cooling.c's simple power->temperature
 * coupling.
 */
struct ThermalParams
{
    /** Chassis inlet temperature (deg C). */
    double ambientC = 45.0;

    /** Junction-to-ambient thermal resistance (deg C per W). */
    double resistanceCPerW = 0.6;

    /** Effective heat capacity (J per deg C); tau = R * C. */
    double capacitanceJPerC = 1.0;

    /** Throttle trip point (deg C): at or above, the controller is
     *  forced to escalate regardless of the watt budget. */
    double tripC = 85.0;

    /** Release point (deg C): the trip latches until the
     *  temperature falls back to or below this (hysteresis). */
    double releaseC = 82.0;
};

/**
 * Integrates junction temperature from a piecewise-constant power
 * trace: dT/dt = (P - (T - Tamb) / R) / C, advanced in closed form
 * per interval (exact for constant P), so the result is independent
 * of how often the control loop samples.
 */
class RcThermalModel
{
  public:
    explicit RcThermalModel(const ThermalParams &params,
                            sim::Tick start = 0);

    /** Advance to @p now charging @p watts since the last call;
     *  returns the new temperature (deg C). */
    double advance(sim::Tick now, power::Watts watts);

    double temperature() const { return _tempC; }

    /** Steady-state temperature at a constant @p watts. */
    double steadyStateC(power::Watts watts) const
    {
        return _params.ambientC + watts * _params.resistanceCPerW;
    }

  private:
    ThermalParams _params;
    double _tempC;
    sim::Tick _last;
};

/**
 * Cap + thermal knobs of one server (ServerConfig::cap). All
 * defaults keep the subsystem fully disabled: no control events are
 * scheduled, no ladder tables are built, and every artifact stays
 * byte-identical to a build without the subsystem.
 */
struct CapConfig
{
    /** Package power budget in watts; 0 = uncapped. */
    power::Watts capWatts = 0.0;

    /** Control-loop sampling interval (RAPL windows are ~1 ms). */
    sim::Tick controlInterval = sim::fromUs(500.0);

    /** Release band: the controller steps back toward full speed
     *  only once measured power is below budget * (1 - hysteresis),
     *  so it does not oscillate across the budget line. */
    double hysteresis = 0.05;

    /** Forced-idle duty-cycle window: a nap of duty * period is
     *  injected at most once per period and per service boundary. */
    sim::Tick napPeriod = sim::fromMs(1.0);

    /** Couple the RC thermal model; trips feed the same throttle
     *  ladder as budget overshoot. */
    bool thermalEnabled = false;
    ThermalParams thermal;

    /** True when any enforcement machinery must be armed. */
    bool enabled() const { return capWatts > 0.0 || thermalEnabled; }

    /** Die (sim::fatal) on non-physical parameters. */
    void validate() const;
};

/**
 * One throttle decision, already mapped onto the enforcement
 * mechanisms: clamp the ladder at @p levelCap, and nap for
 * forcedIdleShare of each nap window.
 */
struct ThrottleDecision
{
    /** Ladder-level ceiling (ladder top = unclamped). */
    std::size_t levelCap = 0;

    /** Forced-idle duty share in [0, (kIdleSteps-1)/kIdleSteps]. */
    double forcedIdleShare = 0.0;

    /** Any throttling in effect (levelCap below top or naps). */
    bool throttled = false;

    bool operator==(const ThrottleDecision &o) const
    {
        return levelCap == o.levelCap &&
               forcedIdleShare == o.forcedIdleShare &&
               throttled == o.throttled;
    }
    bool operator!=(const ThrottleDecision &o) const
    {
        return !(*this == o);
    }
};

/**
 * RAPL-style stepping controller: one throttle index walked up when
 * the measured interval power overshoots the budget (or the thermal
 * trip latches), down when it is comfortably below. Indices map to
 * ladder clamps first, forced-idle duty beyond the ladder floor --
 * the same escalation order RAPL + intel_powerclamp implement.
 *
 * Pure policy: step() touches no simulator state, so one controller
 * instance per server keeps fleet runs bit-identical at any thread
 * count.
 */
class PowerCapController
{
  public:
    /** Forced-idle duty quanta per nap window (duty k/kIdleSteps,
     *  k in 1..kIdleSteps-1, on top of a floor-clamped ladder). */
    static constexpr unsigned kIdleSteps = 8;

    /**
     * @param cfg           validated cap knobs
     * @param ladder_levels freq::PStateLadder::count() of the
     *                      server's ladder (>= 1)
     */
    PowerCapController(const CapConfig &cfg,
                       std::size_t ladder_levels);

    /** Feed one control-interval sample; @p temperature_c is
     *  ignored unless thermal coupling is enabled. */
    ThrottleDecision step(power::Watts measured,
                          double temperature_c);

    /** Current decision without advancing the controller. */
    ThrottleDecision decision() const { return map(_index); }

    /** Fleet redistribution: replace the watt budget (takes effect
     *  at the next step()). Keeps the thermal latch. */
    void setBudget(power::Watts watts) { _budget = watts; }
    power::Watts budget() const { return _budget; }

    std::size_t throttleIndex() const { return _index; }
    std::size_t maxThrottleIndex() const { return _maxIndex; }
    bool thermalTripped() const { return _tripped; }

  private:
    ThrottleDecision map(std::size_t index) const;

    CapConfig _cfg;
    std::size_t _top;      //!< ladder top level (count - 1)
    std::size_t _maxIndex; //!< _top ladder steps + duty quanta
    std::size_t _index = 0;
    power::Watts _budget = 0.0;
    bool _tripped = false;
};

/** One breakpoint of a per-server budget schedule: @p watts applies
 *  from @p start until the next span (or the end of the run). */
struct BudgetSpan
{
    sim::Tick start = 0;
    power::Watts watts = 0.0;
};

/**
 * Fleet budget redistributor. The fleet's total budget is
 * servers * capWatts; every server keeps a kBaseShare floor of its
 * nominal cap, and the pooled remainder is dealt out proportionally
 * to each server's routed-request share of the *previous* epoch.
 * The load balancer computes this at epoch boundaries from its own
 * routing counts -- never from live server state -- so per-server
 * budget schedules are a pure function of the serial balancer pass
 * and fleet artifacts stay bit-identical at any fleetThreads.
 *
 * Servers with no routed requests in an epoch (including
 * never-routed spares) all receive the identical base budget, which
 * is what keeps the homogeneous-idle fast path valid: one idle
 * reference run still stands in for every spare.
 */
class FleetBudgetPlanner
{
  public:
    /** Fraction of the nominal per-server cap a server always
     *  keeps; the rest is the redistributable pool. */
    static constexpr double kBaseShare = 0.6;

    FleetBudgetPlanner(power::Watts per_server_watts,
                       std::size_t servers);

    power::Watts baseWatts() const { return _base; }
    power::Watts nominalWatts() const { return _nominal; }

    /**
     * Budgets for the epoch following one with per-server routed
     * counts @p routed. Zero total demand parks every server at the
     * base budget. Sum of budgets == servers * nominal when any
     * demand exists (conservation; pinned in test_cap).
     */
    std::vector<power::Watts>
    epochBudgets(const std::vector<std::uint64_t> &routed) const;

  private:
    power::Watts _nominal;
    power::Watts _base;
    std::size_t _servers;
};

} // namespace aw::cap

#endif // AW_CAP_POWERCAP_HH
