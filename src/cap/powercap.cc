#include "cap/powercap.hh"

#include <cmath>

#include "sim/logging.hh"

namespace aw::cap {

RcThermalModel::RcThermalModel(const ThermalParams &params,
                               sim::Tick start)
    : _params(params), _tempC(params.ambientC), _last(start)
{
}

double
RcThermalModel::advance(sim::Tick now, power::Watts watts)
{
    if (now > _last) {
        // Exact solution of C dT/dt = P - (T - Tamb)/R over an
        // interval of constant P: exponential relaxation toward the
        // steady state. Closed form keeps the trace independent of
        // the control loop's sampling cadence.
        const double tau =
            _params.resistanceCPerW * _params.capacitanceJPerC;
        const double tss = steadyStateC(watts);
        const double dt = sim::toSec(now - _last);
        _tempC = tss + (_tempC - tss) * std::exp(-dt / tau);
        _last = now;
    }
    return _tempC;
}

void
CapConfig::validate() const
{
    if (!(capWatts >= 0.0) || !std::isfinite(capWatts))
        sim::fatal("cap: budget must be a finite watt value >= 0 "
                   "(got %g)",
                   capWatts);
    if (enabled() && controlInterval == 0)
        sim::fatal("cap: control interval must be positive");
    if (enabled() && napPeriod == 0)
        sim::fatal("cap: forced-idle nap period must be positive");
    if (!(hysteresis >= 0.0) || hysteresis >= 1.0)
        sim::fatal("cap: hysteresis must be in [0, 1) (got %g)",
                   hysteresis);
    if (thermalEnabled) {
        if (!(thermal.resistanceCPerW > 0.0) ||
            !(thermal.capacitanceJPerC > 0.0)) {
            sim::fatal("cap: thermal R and C must be positive "
                       "(got R=%g C=%g)",
                       thermal.resistanceCPerW,
                       thermal.capacitanceJPerC);
        }
        if (!(thermal.tripC > thermal.releaseC))
            sim::fatal("cap: thermal trip (%g) must be above the "
                       "release point (%g)",
                       thermal.tripC, thermal.releaseC);
        if (!(thermal.tripC > thermal.ambientC))
            sim::fatal("cap: thermal trip (%g) must be above "
                       "ambient (%g)",
                       thermal.tripC, thermal.ambientC);
    }
}

PowerCapController::PowerCapController(const CapConfig &cfg,
                                       std::size_t ladder_levels)
    : _cfg(cfg), _top(ladder_levels > 0 ? ladder_levels - 1 : 0),
      _maxIndex(_top + kIdleSteps - 1), _budget(cfg.capWatts)
{
}

ThrottleDecision
PowerCapController::map(std::size_t index) const
{
    ThrottleDecision d;
    const std::size_t ladder_steps = index < _top ? index : _top;
    d.levelCap = _top - ladder_steps;
    const std::size_t duty_steps = index - ladder_steps;
    d.forcedIdleShare =
        static_cast<double>(duty_steps) / kIdleSteps;
    d.throttled = index > 0;
    return d;
}

ThrottleDecision
PowerCapController::step(power::Watts measured,
                         double temperature_c)
{
    if (_cfg.thermalEnabled) {
        // Latching trip: once hot, stay escalating until the
        // temperature falls back through the release point.
        if (temperature_c >= _cfg.thermal.tripC)
            _tripped = true;
        else if (temperature_c <= _cfg.thermal.releaseC)
            _tripped = false;
    }
    const bool capped = _budget > 0.0;
    const bool over = capped && measured > _budget;
    const bool under =
        !capped || measured < _budget * (1.0 - _cfg.hysteresis);
    if (over || _tripped) {
        if (_index < _maxIndex)
            ++_index;
    } else if (under && _index > 0) {
        --_index;
    }
    return map(_index);
}

FleetBudgetPlanner::FleetBudgetPlanner(power::Watts per_server_watts,
                                       std::size_t servers)
    : _nominal(per_server_watts),
      _base(per_server_watts * kBaseShare), _servers(servers)
{
    if (servers == 0)
        sim::fatal("cap: budget planner needs at least one server");
    if (!(per_server_watts > 0.0))
        sim::fatal("cap: budget planner needs a positive per-server "
                   "cap (got %g)",
                   per_server_watts);
}

std::vector<power::Watts>
FleetBudgetPlanner::epochBudgets(
    const std::vector<std::uint64_t> &routed) const
{
    if (routed.size() != _servers)
        sim::fatal("cap: planner got %zu routed counts for %zu "
                   "servers",
                   routed.size(), _servers);
    std::uint64_t total = 0;
    for (const auto count : routed)
        total += count;
    std::vector<power::Watts> budgets(_servers, _base);
    if (total == 0)
        return budgets;
    // Pool = everything above the floors; dealt proportionally to
    // the demand share, so sum(budgets) == servers * nominal.
    const power::Watts pool =
        static_cast<double>(_servers) * (_nominal - _base);
    for (std::size_t i = 0; i < _servers; ++i) {
        budgets[i] = _base + pool * static_cast<double>(routed[i]) /
                                 static_cast<double>(total);
    }
    return budgets;
}

} // namespace aw::cap
