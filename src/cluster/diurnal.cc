#include "cluster/diurnal.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "sim/logging.hh"

namespace aw::cluster {

RateSchedule::RateSchedule()
    : RateSchedule({Segment{sim::kTicksPerSec, 1.0}})
{}

RateSchedule::RateSchedule(std::vector<Segment> segments)
    : _segments(std::move(segments))
{
    if (_segments.empty())
        sim::fatal("RateSchedule: need at least one segment");
    double mass = 0.0;
    for (const auto &seg : _segments) {
        if (seg.duration == 0)
            sim::fatal("RateSchedule: zero-length segment");
        if (seg.scale < 0.0)
            sim::fatal("RateSchedule: negative scale %f", seg.scale);
        _period += seg.duration;
        mass += seg.scale * sim::toSec(seg.duration);
    }
    if (mass <= 0.0)
        sim::fatal("RateSchedule: all-zero schedule never arrives");
}

RateSchedule
RateSchedule::sinusoidal(sim::Tick period, double amplitude,
                         std::size_t steps)
{
    if (period == 0 || steps == 0)
        sim::fatal("RateSchedule::sinusoidal: period and steps must "
                   "be positive");
    if (amplitude < 0.0)
        sim::fatal("RateSchedule::sinusoidal: negative amplitude");

    // Sample the sinusoid at segment midpoints, clamp at zero, then
    // renormalize so the mean multiplier is exactly 1.
    std::vector<double> scales(steps);
    double mean = 0.0;
    for (std::size_t k = 0; k < steps; ++k) {
        const double phase = 2.0 * std::numbers::pi *
                             (static_cast<double>(k) + 0.5) /
                             static_cast<double>(steps);
        scales[k] = std::max(0.0, 1.0 + amplitude * std::sin(phase));
        mean += scales[k] / static_cast<double>(steps);
    }

    std::vector<Segment> segments(steps);
    sim::Tick assigned = 0;
    for (std::size_t k = 0; k < steps; ++k) {
        // Distribute the period exactly: the last segment absorbs
        // the division remainder.
        const sim::Tick end =
            k + 1 == steps ? period : (period / steps) * (k + 1);
        segments[k] = Segment{end - assigned, scales[k] / mean};
        assigned = end;
    }
    return RateSchedule(std::move(segments));
}

RateSchedule
RateSchedule::flashCrowd(sim::Tick period, double spike,
                         double spikeShare)
{
    if (period == 0)
        sim::fatal("RateSchedule::flashCrowd: period must be "
                   "positive");
    if (spike < 0.0)
        sim::fatal("RateSchedule::flashCrowd: negative spike "
                   "multiplier %f", spike);
    if (spikeShare <= 0.0 || spikeShare >= 1.0)
        sim::fatal("RateSchedule::flashCrowd: spike share must be "
                   "in (0, 1), got %f", spikeShare);

    const auto spike_len = static_cast<sim::Tick>(
        static_cast<double>(period) * spikeShare);
    const sim::Tick lead = (period - spike_len) / 2;
    const sim::Tick tail = period - spike_len - lead;
    if (spike_len == 0 || lead == 0 || tail == 0)
        sim::fatal("RateSchedule::flashCrowd: period too short for "
                   "spike share %f", spikeShare);
    return RateSchedule({Segment{lead, 1.0},
                         Segment{spike_len, spike},
                         Segment{tail, 1.0}});
}

double
RateSchedule::scaleAt(sim::Tick t) const
{
    sim::Tick offset = t % _period;
    for (const auto &seg : _segments) {
        if (offset < seg.duration)
            return seg.scale;
        offset -= seg.duration;
    }
    return _segments.back().scale; // unreachable (offset < period)
}

double
RateSchedule::meanScale() const
{
    double mass = 0.0;
    for (const auto &seg : _segments)
        mass += seg.scale * sim::toSec(seg.duration);
    return mass / sim::toSec(_period);
}

bool
RateSchedule::isFlat() const
{
    for (const auto &seg : _segments)
        if (seg.scale != 1.0)
            return false;
    return true;
}

DiurnalArrivals::DiurnalArrivals(
    std::unique_ptr<workload::ArrivalProcess> base,
    RateSchedule schedule)
    : _base(std::move(base)), _schedule(std::move(schedule))
{
    if (!_base)
        sim::fatal("DiurnalArrivals: null base process");
    for (const auto &seg : _schedule.segments())
        _periodMass += seg.scale * static_cast<double>(seg.duration);
}

sim::Tick
DiurnalArrivals::nextGap(sim::Rng &rng)
{
    const sim::Tick base_gap = _base->nextGap(rng);
    if (base_gap >= sim::kMaxTick)
        return sim::kMaxTick; // base stream ended (finite trace)

    // Advance wall-clock time until the integral of scale(t)
    // covers the base gap (time-change of the counting process).
    double need = static_cast<double>(base_gap);
    double gap = 0.0;
    const auto &segments = _schedule.segments();
    while (true) {
        // Fast-forward whole periods in O(1) when aligned at a
        // period boundary: a gap spanning many periods (a sparse
        // trace over a short schedule) must not walk each segment.
        if (_segment == 0 && _segmentUsed == 0.0 &&
            need >= _periodMass) {
            const double whole = std::floor(need / _periodMass);
            gap += whole * static_cast<double>(_schedule.period());
            need = std::max(0.0, need - whole * _periodMass);
            continue;
        }
        const auto &seg = segments[_segment];
        const double left =
            static_cast<double>(seg.duration) - _segmentUsed;
        const double capacity = seg.scale * left;
        if (seg.scale > 0.0 && need <= capacity) {
            const double advance = need / seg.scale;
            _segmentUsed += advance;
            gap += advance;
            break;
        }
        // Consume the rest of this segment and move on.
        need -= capacity;
        gap += left;
        _segment = (_segment + 1) % segments.size();
        _segmentUsed = 0.0;
    }
    return static_cast<sim::Tick>(gap + 0.5);
}

double
DiurnalArrivals::ratePerSec() const
{
    return _base->ratePerSec() * _schedule.meanScale();
}

} // namespace aw::cluster
