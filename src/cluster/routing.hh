/**
 * @file
 * Fleet request routing: the load balancer's per-arrival decision
 * of which server takes the next request.
 *
 * Routing policy is the fleet-level analogue of the per-server
 * dispatch policy (server::DispatchPolicy): spread policies
 * (round-robin, random, least-outstanding) equalize load and leave
 * every server at the shallow-idle utilization the paper's Sec 2
 * measures, while pack-first consolidates traffic onto the fewest
 * servers so the remainder sink into deep idle -- the knob that
 * determines how much C-state residency a fleet can actually
 * harvest from a given offered load.
 */

#ifndef AW_CLUSTER_ROUTING_HH
#define AW_CLUSTER_ROUTING_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/random.hh"

namespace aw::cluster {

/**
 * The load balancer's view of the fleet at one routing decision:
 * how many requests it believes are outstanding at each server.
 */
class FleetView
{
  public:
    virtual ~FleetView() = default;

    virtual std::size_t servers() const = 0;

    /** Requests in flight at server @p i (LB-side estimate). */
    virtual unsigned outstanding(std::size_t i) const = 0;

    /**
     * The lowest-indexed server with outstanding work below
     * @p capacity, or servers() when every server is at or above
     * it. The default is the linear scan pack-first has always
     * routed with; views that maintain an ordered under-capacity
     * index (the fleet balancer's does) override it to answer in
     * O(log K) instead of O(K) -- the answer must be identical.
     */
    virtual std::size_t firstUnderCapacity(unsigned capacity) const;

    /**
     * Estimated watts of power-cap headroom at server @p i: the
     * server's current budget minus the balancer's estimate of its
     * draw. Views without budget information (no cap configured)
     * return -outstanding(i), which makes headroom routing degrade
     * to exactly least-outstanding.
     */
    virtual double headroomWatts(std::size_t i) const
    {
        return -static_cast<double>(outstanding(i));
    }
};

/**
 * Interface: pick a server for the next arrival.
 */
class RoutingPolicy
{
  public:
    virtual ~RoutingPolicy() = default;

    virtual const char *name() const = 0;

    /** Choose a server index in [0, view.servers()). */
    virtual std::size_t route(const FleetView &view,
                              sim::Rng &rng) = 0;
};

/** Cycle through the servers in index order. */
class RoundRobinRouting : public RoutingPolicy
{
  public:
    const char *name() const override { return "round-robin"; }
    std::size_t route(const FleetView &view, sim::Rng &rng) override;

  private:
    std::size_t _next = 0;
};

/** Uniform random server choice. */
class RandomRouting : public RoutingPolicy
{
  public:
    const char *name() const override { return "random"; }
    std::size_t route(const FleetView &view, sim::Rng &rng) override;
};

/** Fewest outstanding requests; ties break to the lowest index. */
class LeastOutstandingRouting : public RoutingPolicy
{
  public:
    const char *name() const override { return "least-outstanding"; }
    std::size_t route(const FleetView &view, sim::Rng &rng) override;
};

/**
 * Consolidation: the lowest-indexed server with outstanding work
 * below @p capacity takes the request; only when every server is at
 * capacity does the policy fall back to least-outstanding. High-
 * numbered servers therefore see traffic only at peak and spend the
 * rest of the time in uninterrupted deep idle.
 */
class PackFirstRouting : public RoutingPolicy
{
  public:
    explicit PackFirstRouting(unsigned capacity);

    const char *name() const override { return "pack-first"; }
    std::size_t route(const FleetView &view, sim::Rng &rng) override;

    unsigned capacity() const { return _capacity; }

  private:
    unsigned _capacity;
};

/**
 * Power-cap awareness: route to the server with the most watts of
 * cap headroom (budget minus estimated draw); ties break to the
 * lowest index. With fleet budget redistribution this steers
 * traffic away from servers the planner squeezed (whose caps would
 * otherwise throttle the new arrival), and without any cap
 * information it reduces exactly to least-outstanding -- see
 * FleetView::headroomWatts().
 */
class RouteToHeadroomRouting : public RoutingPolicy
{
  public:
    const char *name() const override { return "route-to-headroom"; }
    std::size_t route(const FleetView &view, sim::Rng &rng) override;
};

/**
 * Build a policy by name: "round-robin", "random",
 * "least-outstanding", "pack-first" or "route-to-headroom".
 * @p pack_capacity is the PackFirstRouting spill threshold (ignored
 * by the others). Unknown names are fatal().
 */
std::unique_ptr<RoutingPolicy>
makeRoutingPolicy(const std::string &name, unsigned pack_capacity);

/** All routing policy names, for CLIs and sweeps. */
const std::vector<std::string> &routingPolicyNames();

} // namespace aw::cluster

#endif // AW_CLUSTER_ROUTING_HH
