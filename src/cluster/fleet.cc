#include "cluster/fleet.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>

#include "cap/powercap.hh"
#include "cstate/governors.hh"
#include "freq/policies.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace aw::cluster {

namespace {

/**
 * Structure-of-arrays snapshot of the balancer's per-server state.
 * Keeping the hot columns (outstanding counts, last-arrival ticks,
 * routed totals) in flat parallel vectors keeps the per-decision
 * loop cache-friendly at O(10k) servers, where most entries belong
 * to idle servers the routing policy skips over.
 */
struct LbState
{
    explicit LbState(unsigned k)
        : outstanding(k, 0), lastArrival(k, 0), routed(k, 0), gaps(k)
    {}

    std::vector<unsigned> outstanding;
    std::vector<sim::Tick> lastArrival;
    std::vector<std::uint64_t> routed;

    /** Per-server inter-arrival splits of the offered stream. */
    std::vector<std::vector<sim::Tick>> gaps;
};

/**
 * Concrete FleetView over the SoA outstanding column. When built
 * with a non-zero pack capacity it maintains an ordered index of
 * under-capacity servers, so pack-first's "lowest-indexed server
 * below capacity" probe is O(log K) instead of an O(K) scan across
 * the packed prefix -- the scan is the balancer bottleneck at
 * K=10k, where nearly every probe walks hundreds of at-capacity
 * servers before finding the spill target. The index answers
 * exactly what the linear scan would.
 */
class IndexedView : public FleetView
{
  public:
    /**
     * @param budgets current per-server cap budgets, updated in
     *                place by the balancer at epoch boundaries;
     *                nullptr when no power cap is configured (the
     *                headroom default then makes route-to-headroom
     *                degrade to least-outstanding).
     * @param watts_per_request estimated draw one outstanding
     *                request adds (the ladder-top per-core active
     *                power: each request occupies one core).
     */
    IndexedView(const std::vector<unsigned> &counts,
                unsigned pack_capacity,
                const std::vector<power::Watts> *budgets = nullptr,
                double watts_per_request = 0.0)
        : _counts(counts), _capacity(pack_capacity),
          _budgets(budgets), _wattsPerRequest(watts_per_request)
    {
        if (_capacity > 0)
            for (std::uint32_t i = 0; i < counts.size(); ++i)
                _under.insert(_under.end(), i);
    }

    std::size_t servers() const override { return _counts.size(); }
    unsigned outstanding(std::size_t i) const override
    {
        return _counts[i]; // route() is bounded by servers()
    }

    std::size_t firstUnderCapacity(unsigned capacity) const override
    {
        if (_capacity == 0 || capacity != _capacity)
            return FleetView::firstUnderCapacity(capacity);
        if (_under.empty())
            return _counts.size();
        return *_under.begin();
    }

    double headroomWatts(std::size_t i) const override
    {
        if (!_budgets)
            return FleetView::headroomWatts(i);
        return (*_budgets)[i] - _wattsPerRequest * _counts[i];
    }

    /** Balancer bookkeeping after routing to @p i. */
    void onRouted(std::size_t i)
    {
        if (_capacity > 0 && _counts[i] >= _capacity)
            _under.erase(static_cast<std::uint32_t>(i));
    }

    /** Balancer bookkeeping after a completion at @p i. */
    void onCompleted(std::size_t i)
    {
        if (_capacity > 0 && _counts[i] == _capacity - 1)
            _under.insert(static_cast<std::uint32_t>(i));
    }

  private:
    const std::vector<unsigned> &_counts;
    const unsigned _capacity;
    const std::vector<power::Watts> *_budgets;
    const double _wattsPerRequest;
    std::set<std::uint32_t> _under;
};

/** One request in flight in the balancer's occupancy estimate. */
struct InFlight
{
    sim::Tick done;
    std::size_t server;

    bool operator>(const InFlight &o) const { return done > o.done; }
};

using InFlightHeap =
    std::priority_queue<InFlight, std::vector<InFlight>,
                        std::greater<InFlight>>;

/** Results of one per-server run, written into its pre-assigned
 *  slot by whichever worker executed it. */
struct ServerSlot
{
    server::RunResult result;
    std::optional<analysis::TimelineSeries> timeline;
    std::optional<analysis::TraceSeries> trace;
    sim::PercentileTracker latency;
};

} // namespace

double
deepIdleShare(const cstate::ResidencySnapshot &r)
{
    return r.shareOf(cstate::CStateId::C6) +
           r.shareOf(cstate::CStateId::C6A) +
           r.shareOf(cstate::CStateId::C6AE);
}

FleetSim::FleetSim(FleetConfig cfg, workload::WorkloadProfile profile,
                   double total_qps)
    : _cfg(std::move(cfg)), _profile(std::move(profile)),
      _totalQps(total_qps)
{
    if (_cfg.servers == 0)
        sim::fatal("FleetSim: need at least one server");
    if (total_qps <= 0.0)
        sim::fatal("FleetSim: offered load must be positive");
    if (!std::isfinite(_cfg.epochSeconds) || _cfg.epochSeconds < 0.0)
        sim::fatal("FleetSim: epoch length must be a finite "
                   "non-negative number of seconds (got %g)",
                   _cfg.epochSeconds);
    // Validate the policy and governor names up front, not at
    // run() time. Fleet servers are driven by centrally dispatched
    // per-server splits, so clairvoyant governors have no per-core
    // foreknowledge to draw on.
    makeRoutingPolicy(_cfg.routing, packCapacity());
    if (cstate::makeGovernor(_cfg.server.governor,
                             _cfg.server.cstates)
            ->needsOracle()) {
        sim::fatal("FleetSim: governor '%s' is single-server only "
                   "(fleet dispatch has no per-core arrival "
                   "foreknowledge)",
                   _cfg.server.governor.c_str());
    }
    _cfg.server.pstates.validate();
    if (!_cfg.server.freqPolicy.empty())
        freq::makeFreqPolicy(_cfg.server.freqPolicy,
                             freq::PStateLadder(_cfg.server.pstates));
    _cfg.server.cap.validate();
}

void
FleetSim::setArrivalTrace(workload::ArrivalTrace trace)
{
    if (trace.empty())
        sim::fatal("FleetSim: empty arrival trace");
    _trace = std::move(trace);
}

void
FleetSim::enableTimeline(const analysis::TimelineConfig &cfg)
{
    _timeline = cfg;
    _timeline->retainLatencies = true; // pooled per-interval p99
}

void
FleetSim::enableRequestTrace(const analysis::TraceConfig &cfg)
{
    if (cfg.capacity == 0)
        sim::fatal("FleetSim: trace ring capacity must be > 0");
    _requestTrace = cfg;
}

unsigned
FleetSim::packCapacity() const
{
    if (_cfg.packCapacity > 0)
        return _cfg.packCapacity;
    return std::max(1u, _cfg.server.cores / 2);
}

std::unique_ptr<workload::ArrivalProcess>
FleetSim::makeOfferedStream() const
{
    std::unique_ptr<workload::ArrivalProcess> base;
    if (_trace) {
        base = std::make_unique<workload::TraceArrivals>(
            *_trace, /*loop=*/true);
    } else {
        base = _profile.makeArrivals(_totalQps);
    }
    if (_cfg.schedule.isFlat())
        return base;
    return std::make_unique<DiurnalArrivals>(std::move(base),
                                             _cfg.schedule);
}

FleetResult
FleetSim::run(sim::Tick duration, sim::Tick warmup)
{
    const sim::Tick horizon = duration + warmup;
    const unsigned K = _cfg.servers;

    // ------------------------------------------------- balancer pass
    // Split the offered stream into per-server gap sequences. The
    // balancer keeps an occupancy estimate per server: each routed
    // request holds its server for one drawn service time, the same
    // outstanding-work signal real L7 balancers route on. The
    // estimate lives entirely on the balancer side (it never reads
    // live server state), which is what makes the per-server phase
    // below embarrassingly parallel.
    auto offered = makeOfferedStream();
    auto policy = makeRoutingPolicy(_cfg.routing, packCapacity());
    sim::Rng lb_rng(sim::deriveSeed(_cfg.seed, K));
    sim::Rng est_rng(sim::deriveSeed(_cfg.seed, K + 1));

    LbState lb(K);

    const sim::Tick epoch = _cfg.epochSeconds > 0.0
                                ? sim::fromSec(_cfg.epochSeconds)
                                : 0;

    // Power-budget redistribution state. Every server starts the
    // run at its nominal cap; at each epoch boundary the planner
    // re-deals the fleet total from the balancer's own routing
    // counts of the epoch just ended (one-epoch lag), and only
    // budget *changes* append a schedule span. All of this is a
    // pure function of the serial balancer pass, so schedules --
    // and therefore every per-server run -- are bit-identical at
    // any fleetThreads.
    const bool cap_on = _cfg.server.cap.capWatts > 0.0;
    const bool redistribute =
        cap_on && _cfg.capRedistribution && epoch > 0;
    std::vector<power::Watts> cur_budget;
    if (cap_on)
        cur_budget.assign(K, _cfg.server.cap.capWatts);
    std::optional<cap::FleetBudgetPlanner> planner;
    std::vector<std::vector<cap::BudgetSpan>> cap_spans;
    std::vector<std::uint64_t> epoch_routed;
    if (redistribute) {
        planner.emplace(_cfg.server.cap.capWatts, K);
        cap_spans.resize(K);
        epoch_routed.assign(K, 0);
    }

    // The under-capacity index only pays for itself when someone
    // asks the question it answers. Headroom routing estimates one
    // ladder-top busy core of draw per outstanding request.
    const freq::PStateLadder ladder(_cfg.server.pstates);
    IndexedView view(lb.outstanding,
                     _cfg.routing == "pack-first" ? packCapacity()
                                                  : 0,
                     cap_on ? &cur_budget : nullptr,
                     ladder.activePower(ladder.top()));
    InFlightHeap in_flight;

    // Completion estimates are published by draining the heap up to
    // a time bound. The pop order for a given bound sequence is the
    // heap's, so draining to an epoch boundary first and to the
    // decision time after pops the exact entries, in the exact
    // order, that draining straight to the decision time would --
    // epoch length cannot change any routing decision (byte
    // identity at any epoch; pinned by tests).
    const auto drainCompletions = [&](sim::Tick upto) {
        while (!in_flight.empty() && in_flight.top().done <= upto) {
            const std::size_t s = in_flight.top().server;
            --lb.outstanding[s];
            view.onCompleted(s);
            in_flight.pop();
        }
    };
    sim::Tick next_epoch = epoch > 0 ? epoch : sim::kMaxTick;

    // Routing decisions of the measured window, for the trace
    // artifact: keep-newest ring like the tracer's spans.
    std::vector<analysis::RoutingDecision> decisions;
    std::uint64_t decisions_emitted = 0;
    if (_requestTrace)
        decisions.resize(_requestTrace->capacity);

    sim::Tick now = 0;
    std::uint64_t total_routed = 0;
    while (true) {
        const sim::Tick gap = offered->nextGap(lb_rng);
        if (gap >= sim::kMaxTick - now)
            break; // finite stream ended
        now += gap;
        if (now >= horizon)
            break;

        while (epoch > 0 && now >= next_epoch) {
            drainCompletions(next_epoch);
            if (redistribute) {
                const auto budgets =
                    planner->epochBudgets(epoch_routed);
                for (unsigned s = 0; s < K; ++s) {
                    if (budgets[s] != cur_budget[s]) {
                        cap_spans[s].push_back(
                            cap::BudgetSpan{next_epoch, budgets[s]});
                        cur_budget[s] = budgets[s];
                    }
                }
                std::fill(epoch_routed.begin(), epoch_routed.end(),
                          0);
            }
            if (next_epoch >= sim::kMaxTick - epoch)
                next_epoch = sim::kMaxTick;
            else
                next_epoch += epoch;
        }
        drainCompletions(now);

        const std::size_t target = policy->route(view, lb_rng);
        if (target >= K)
            sim::panic("FleetSim: policy '%s' routed to server %zu "
                       "of %u",
                       policy->name(), target, K);
        lb.gaps[target].push_back(now - lb.lastArrival[target]);
        lb.lastArrival[target] = now;
        ++lb.routed[target];
        ++total_routed;
        if (redistribute)
            ++epoch_routed[target];
        if (_requestTrace && now >= warmup) {
            auto &slot =
                decisions[decisions_emitted % decisions.size()];
            slot.at = now;
            slot.server = static_cast<std::uint32_t>(target);
            ++decisions_emitted;
        }

        const sim::Tick estimate =
            _profile.service().draw(est_rng).duration(
                _profile.service().referenceFrequency());
        in_flight.push(InFlight{now + estimate, target});
        ++lb.outstanding[target];
        view.onRouted(target);
    }

    // ---------------------------------------------- per-server runs
    FleetResult fr;
    fr.routingName = policy->name();
    fr.configName = _cfg.server.name;
    fr.workloadName = _profile.name();
    fr.servers = K;
    fr.offeredQps = _totalQps;
    fr.routed = total_routed;
    fr.routedPerServer = lb.routed;

    // Homogeneous-idle fast path: every server the balancer never
    // routed to sees the same input (one never-firing gap) and, as
    // no per-server RNG is ever drawn on that path, evolves
    // identically regardless of its derived seed -- so one idle
    // reference run stands in for all of them. At warehouse scale
    // under pack-first almost the whole fleet is never-routed, and
    // the K-server point costs O(busy servers), not O(K).
    std::size_t idle_ref = K; // index of the reference, if any
    std::vector<bool> reuse_ref(K, false);
    std::vector<unsigned> to_run;
    to_run.reserve(K);
    for (unsigned i = 0; i < K; ++i) {
        if (lb.gaps[i].empty())
            ++fr.neverRouted;
        if (_cfg.idleFastPath && lb.gaps[i].empty() &&
            idle_ref < K) {
            reuse_ref[i] = true;
            continue;
        }
        if (_cfg.idleFastPath && lb.gaps[i].empty())
            idle_ref = i;
        to_run.push_back(i);
    }

    std::vector<ServerSlot> slots(K);
    const auto runServer = [&](unsigned i) {
        server::ServerConfig scfg = _cfg.server;
        scfg.seed = sim::deriveSeed(_cfg.seed, i);

        // A server that received no traffic still burns idle power:
        // drive it with a single never-arriving gap.
        std::vector<sim::Tick> g = std::move(lb.gaps[i]);
        if (g.empty())
            g.push_back(sim::kMaxTick);
        server::ServerSim srv(
            scfg, _profile,
            std::make_unique<workload::TraceArrivals>(
                workload::ArrivalTrace(std::move(g)),
                /*loop=*/false));
        // Never-routed servers all carry the identical base-budget
        // schedule (zero demand every epoch), which is what keeps
        // the idle-reference slot reuse below bit-identical.
        if (redistribute && !cap_spans[i].empty())
            srv.setCapSchedule(cap_spans[i]);
        std::optional<analysis::TimelineRecorder> recorder;
        std::optional<analysis::RequestTracer> tracer;
        server::TelemetryFanout fanout;
        if (_timeline)
            recorder.emplace(*_timeline, scfg.cores);
        if (_requestTrace)
            tracer.emplace(*_requestTrace, scfg.cores);
        if (recorder && tracer) {
            fanout.add(&*recorder);
            fanout.add(&*tracer);
            srv.setObserver(&fanout);
        } else if (recorder) {
            srv.setObserver(&*recorder);
        } else if (tracer) {
            srv.setObserver(&*tracer);
        }
        ServerSlot &slot = slots[i];
        slot.result = srv.run(duration, warmup);
        if (recorder)
            slot.timeline = recorder->series();
        if (tracer)
            slot.trace = tracer->series();
        slot.latency = srv.latencySamples();
    };

    const unsigned workers = std::min<std::size_t>(
        sim::ThreadPool::resolveThreads(_cfg.fleetThreads),
        to_run.size());
    if (workers <= 1) {
        for (const unsigned i : to_run)
            runServer(i);
    } else {
        // Each run writes only its pre-assigned slot, so the
        // partition needs no locks and no ordering; determinism
        // comes from the in-order aggregation below.
        sim::ThreadPool pool(workers);
        for (const unsigned i : to_run)
            pool.submit([&runServer, i] { runServer(i); });
        pool.wait();
    }
    for (unsigned i = 0; i < K; ++i)
        if (reuse_ref[i])
            slots[i] = slots[idle_ref];

    // Aggregate in strict server-index order: the floating-point op
    // sequence (and thus every emitted byte) is independent of how
    // the runs were scheduled.
    sim::PercentileTracker pooled;
    std::vector<analysis::TimelineSeries> timelines;
    if (_timeline)
        timelines.reserve(K);
    std::vector<analysis::TraceSeries> traces;
    if (_requestTrace)
        traces.reserve(K);
    for (unsigned i = 0; i < K; ++i) {
        ServerSlot &slot = slots[i];
        server::RunResult &r = slot.result;
        if (slot.timeline)
            timelines.push_back(std::move(*slot.timeline));
        if (slot.trace)
            traces.push_back(std::move(*slot.trace));
        pooled.merge(slot.latency);

        fr.window = r.window;
        fr.requests += r.requests;
        fr.events += r.events;
        fr.fleetPower += r.packagePower;
        fr.capThrottleShare += r.capThrottleShare / K;
        fr.forcedIdleNaps += r.forcedIdleNaps;
        fr.maxTempC = std::max(fr.maxTempC, r.maxTempC);
        const double deep = deepIdleShare(r.residency);
        if (i == 0) {
            fr.minServerDeepShare = fr.maxServerDeepShare = deep;
        } else {
            fr.minServerDeepShare =
                std::min(fr.minServerDeepShare, deep);
            fr.maxServerDeepShare =
                std::max(fr.maxServerDeepShare, deep);
        }
        for (std::size_t s = 0; s < cstate::kNumCStates; ++s) {
            fr.residency.share[s] += r.residency.share[s] / K;
            fr.residency.entries[s] += r.residency.entries[s];
        }
        fr.perServer.push_back(std::move(r));
    }
    fr.residency.window = fr.window;
    if (_timeline)
        fr.timeline = analysis::foldTimelines(timelines);
    if (_requestTrace) {
        fr.trace = analysis::mergeTraces(traces);
        // Attach the balancer's measured-window decisions, oldest
        // retained first (the ring may have wrapped).
        const std::uint64_t kept = std::min<std::uint64_t>(
            decisions_emitted, decisions.size());
        fr.trace->routingEmitted = decisions_emitted;
        fr.trace->routingDropped = decisions_emitted - kept;
        fr.trace->routing.reserve(kept);
        for (std::uint64_t k = 0; k < kept; ++k) {
            const std::uint64_t first = decisions_emitted - kept;
            fr.trace->routing.push_back(
                decisions[(first + k) % decisions.size()]);
        }
    }

    // ------------------------------------------------- aggregation
    fr.achievedQps = fr.window > 0
                         ? fr.requests / sim::toSec(fr.window)
                         : 0.0;
    fr.fleetEnergy = fr.fleetPower * sim::toSec(fr.window);
    fr.energyPerRequestMj =
        fr.requests > 0 ? 1e3 * fr.fleetEnergy / fr.requests : 0.0;
    fr.deepIdleShare = deepIdleShare(fr.residency);
    if (!pooled.empty()) {
        fr.avgLatencyUs = pooled.mean();
        fr.p99LatencyUs = pooled.p99();
        fr.p999LatencyUs = pooled.p999();
    }
    if (total_routed > 0) {
        const auto busiest = *std::max_element(lb.routed.begin(),
                                               lb.routed.end());
        fr.busiestShareOfLoad =
            static_cast<double>(busiest) / total_routed;
    }
    return fr;
}

FleetResult
FleetSim::run()
{
    // Same sizing rule as ServerSim::run(), but for the fleet-wide
    // request target; stretch to cover at least one schedule period
    // so diurnal runs average a whole cycle.
    const double target_requests = 60e3;
    double sec = std::max(1.0, target_requests / _totalQps);
    if (!_cfg.schedule.isFlat())
        sec = std::max(sec, sim::toSec(_cfg.schedule.period()));
    const sim::Tick duration = sim::fromSec(sec);
    return run(duration, duration / 10);
}

} // namespace aw::cluster
