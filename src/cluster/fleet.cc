#include "cluster/fleet.hh"

#include <algorithm>
#include <queue>

#include "cstate/governors.hh"
#include "sim/logging.hh"

namespace aw::cluster {

namespace {

/** Concrete FleetView over the balancer's outstanding counters. */
class OutstandingView : public FleetView
{
  public:
    explicit OutstandingView(const std::vector<unsigned> &counts)
        : _counts(counts)
    {}

    std::size_t servers() const override { return _counts.size(); }
    unsigned outstanding(std::size_t i) const override
    {
        return _counts[i]; // route() is bounded by servers()
    }

  private:
    const std::vector<unsigned> &_counts;
};

/** One request in flight in the balancer's occupancy estimate. */
struct InFlight
{
    sim::Tick done;
    std::size_t server;

    bool operator>(const InFlight &o) const { return done > o.done; }
};

} // namespace

double
deepIdleShare(const cstate::ResidencySnapshot &r)
{
    return r.shareOf(cstate::CStateId::C6) +
           r.shareOf(cstate::CStateId::C6A) +
           r.shareOf(cstate::CStateId::C6AE);
}

FleetSim::FleetSim(FleetConfig cfg, workload::WorkloadProfile profile,
                   double total_qps)
    : _cfg(std::move(cfg)), _profile(std::move(profile)),
      _totalQps(total_qps)
{
    if (_cfg.servers == 0)
        sim::fatal("FleetSim: need at least one server");
    if (total_qps <= 0.0)
        sim::fatal("FleetSim: offered load must be positive");
    // Validate the policy and governor names up front, not at
    // run() time. Fleet servers are driven by centrally dispatched
    // per-server splits, so clairvoyant governors have no per-core
    // foreknowledge to draw on.
    makeRoutingPolicy(_cfg.routing, packCapacity());
    if (cstate::makeGovernor(_cfg.server.governor,
                             _cfg.server.cstates)
            ->needsOracle()) {
        sim::fatal("FleetSim: governor '%s' is single-server only "
                   "(fleet dispatch has no per-core arrival "
                   "foreknowledge)",
                   _cfg.server.governor.c_str());
    }
}

void
FleetSim::setArrivalTrace(workload::ArrivalTrace trace)
{
    if (trace.empty())
        sim::fatal("FleetSim: empty arrival trace");
    _trace = std::move(trace);
}

void
FleetSim::enableTimeline(const analysis::TimelineConfig &cfg)
{
    _timeline = cfg;
    _timeline->retainLatencies = true; // pooled per-interval p99
}

void
FleetSim::enableRequestTrace(const analysis::TraceConfig &cfg)
{
    if (cfg.capacity == 0)
        sim::fatal("FleetSim: trace ring capacity must be > 0");
    _requestTrace = cfg;
}

unsigned
FleetSim::packCapacity() const
{
    if (_cfg.packCapacity > 0)
        return _cfg.packCapacity;
    return std::max(1u, _cfg.server.cores / 2);
}

std::unique_ptr<workload::ArrivalProcess>
FleetSim::makeOfferedStream() const
{
    std::unique_ptr<workload::ArrivalProcess> base;
    if (_trace) {
        base = std::make_unique<workload::TraceArrivals>(
            *_trace, /*loop=*/true);
    } else {
        base = _profile.makeArrivals(_totalQps);
    }
    if (_cfg.schedule.isFlat())
        return base;
    return std::make_unique<DiurnalArrivals>(std::move(base),
                                             _cfg.schedule);
}

FleetResult
FleetSim::run(sim::Tick duration, sim::Tick warmup)
{
    const sim::Tick horizon = duration + warmup;
    const unsigned K = _cfg.servers;

    // ------------------------------------------------- balancer pass
    // Split the offered stream into per-server gap sequences. The
    // balancer keeps an occupancy estimate per server: each routed
    // request holds its server for one drawn service time, the same
    // outstanding-work signal real L7 balancers route on.
    auto offered = makeOfferedStream();
    auto policy = makeRoutingPolicy(_cfg.routing, packCapacity());
    sim::Rng lb_rng(sim::deriveSeed(_cfg.seed, K));
    sim::Rng est_rng(sim::deriveSeed(_cfg.seed, K + 1));

    std::vector<std::vector<sim::Tick>> gaps(K);
    std::vector<std::uint64_t> routed(K, 0);
    std::vector<sim::Tick> last_arrival(K, 0);
    std::vector<unsigned> outstanding(K, 0);
    OutstandingView view(outstanding);
    std::priority_queue<InFlight, std::vector<InFlight>,
                        std::greater<InFlight>>
        in_flight;

    // Routing decisions of the measured window, for the trace
    // artifact: keep-newest ring like the tracer's spans.
    std::vector<analysis::RoutingDecision> decisions;
    std::uint64_t decisions_emitted = 0;
    if (_requestTrace)
        decisions.resize(_requestTrace->capacity);

    sim::Tick now = 0;
    std::uint64_t total_routed = 0;
    while (true) {
        const sim::Tick gap = offered->nextGap(lb_rng);
        if (gap >= sim::kMaxTick - now)
            break; // finite stream ended
        now += gap;
        if (now >= horizon)
            break;

        while (!in_flight.empty() && in_flight.top().done <= now) {
            --outstanding[in_flight.top().server];
            in_flight.pop();
        }

        const std::size_t target = policy->route(view, lb_rng);
        if (target >= K)
            sim::panic("FleetSim: policy '%s' routed to server %zu "
                       "of %u",
                       policy->name(), target, K);
        gaps[target].push_back(now - last_arrival[target]);
        last_arrival[target] = now;
        ++routed[target];
        ++total_routed;
        if (_requestTrace && now >= warmup) {
            auto &slot =
                decisions[decisions_emitted % decisions.size()];
            slot.at = now;
            slot.server = static_cast<std::uint32_t>(target);
            ++decisions_emitted;
        }

        const sim::Tick estimate =
            _profile.service().draw(est_rng).duration(
                _profile.service().referenceFrequency());
        in_flight.push(InFlight{now + estimate, target});
        ++outstanding[target];
    }

    // ---------------------------------------------- per-server runs
    FleetResult fr;
    fr.routingName = policy->name();
    fr.configName = _cfg.server.name;
    fr.workloadName = _profile.name();
    fr.servers = K;
    fr.offeredQps = _totalQps;
    fr.routed = total_routed;
    fr.routedPerServer = routed;

    sim::PercentileTracker pooled;
    std::vector<analysis::TimelineSeries> timelines;
    if (_timeline)
        timelines.reserve(K);
    std::vector<analysis::TraceSeries> traces;
    if (_requestTrace)
        traces.reserve(K);
    for (unsigned i = 0; i < K; ++i) {
        server::ServerConfig scfg = _cfg.server;
        scfg.seed = sim::deriveSeed(_cfg.seed, i);

        // A server that received no traffic still burns idle power:
        // drive it with a single never-arriving gap.
        if (gaps[i].empty())
            gaps[i].push_back(sim::kMaxTick);
        server::ServerSim srv(
            scfg, _profile,
            std::make_unique<workload::TraceArrivals>(
                workload::ArrivalTrace(std::move(gaps[i])),
                /*loop=*/false));
        std::optional<analysis::TimelineRecorder> recorder;
        std::optional<analysis::RequestTracer> tracer;
        server::TelemetryFanout fanout;
        if (_timeline)
            recorder.emplace(*_timeline, scfg.cores);
        if (_requestTrace)
            tracer.emplace(*_requestTrace, scfg.cores);
        if (recorder && tracer) {
            fanout.add(&*recorder);
            fanout.add(&*tracer);
            srv.setObserver(&fanout);
        } else if (recorder) {
            srv.setObserver(&*recorder);
        } else if (tracer) {
            srv.setObserver(&*tracer);
        }
        auto r = srv.run(duration, warmup);
        if (recorder)
            timelines.push_back(recorder->series());
        if (tracer)
            traces.push_back(tracer->series());
        pooled.merge(srv.latencySamples());

        fr.window = r.window;
        fr.requests += r.requests;
        fr.events += r.events;
        fr.fleetPower += r.packagePower;
        const double deep = deepIdleShare(r.residency);
        if (i == 0) {
            fr.minServerDeepShare = fr.maxServerDeepShare = deep;
        } else {
            fr.minServerDeepShare =
                std::min(fr.minServerDeepShare, deep);
            fr.maxServerDeepShare =
                std::max(fr.maxServerDeepShare, deep);
        }
        for (std::size_t s = 0; s < cstate::kNumCStates; ++s) {
            fr.residency.share[s] += r.residency.share[s] / K;
            fr.residency.entries[s] += r.residency.entries[s];
        }
        fr.perServer.push_back(std::move(r));
    }
    fr.residency.window = fr.window;
    if (_timeline)
        fr.timeline = analysis::foldTimelines(timelines);
    if (_requestTrace) {
        fr.trace = analysis::mergeTraces(traces);
        // Attach the balancer's measured-window decisions, oldest
        // retained first (the ring may have wrapped).
        const std::uint64_t kept = std::min<std::uint64_t>(
            decisions_emitted, decisions.size());
        fr.trace->routingEmitted = decisions_emitted;
        fr.trace->routingDropped = decisions_emitted - kept;
        fr.trace->routing.reserve(kept);
        for (std::uint64_t k = 0; k < kept; ++k) {
            const std::uint64_t first = decisions_emitted - kept;
            fr.trace->routing.push_back(
                decisions[(first + k) % decisions.size()]);
        }
    }

    // ------------------------------------------------- aggregation
    fr.achievedQps = fr.window > 0
                         ? fr.requests / sim::toSec(fr.window)
                         : 0.0;
    fr.fleetEnergy = fr.fleetPower * sim::toSec(fr.window);
    fr.energyPerRequestMj =
        fr.requests > 0 ? 1e3 * fr.fleetEnergy / fr.requests : 0.0;
    fr.deepIdleShare = deepIdleShare(fr.residency);
    if (!pooled.empty()) {
        fr.avgLatencyUs = pooled.mean();
        fr.p99LatencyUs = pooled.p99();
        fr.p999LatencyUs = pooled.p999();
    }
    if (total_routed > 0) {
        const auto busiest =
            *std::max_element(routed.begin(), routed.end());
        fr.busiestShareOfLoad =
            static_cast<double>(busiest) / total_routed;
    }
    return fr;
}

FleetResult
FleetSim::run()
{
    // Same sizing rule as ServerSim::run(), but for the fleet-wide
    // request target; stretch to cover at least one schedule period
    // so diurnal runs average a whole cycle.
    const double target_requests = 60e3;
    double sec = std::max(1.0, target_requests / _totalQps);
    if (!_cfg.schedule.isFlat())
        sec = std::max(sec, sim::toSec(_cfg.schedule.period()));
    const sim::Tick duration = sim::fromSec(sec);
    return run(duration, duration / 10);
}

} // namespace aw::cluster
