#include "cluster/routing.hh"

#include "sim/logging.hh"

namespace aw::cluster {

std::size_t
FleetView::firstUnderCapacity(unsigned capacity) const
{
    const std::size_t n = servers();
    for (std::size_t i = 0; i < n; ++i)
        if (outstanding(i) < capacity)
            return i;
    return n;
}

std::size_t
RoundRobinRouting::route(const FleetView &view, sim::Rng &)
{
    return _next++ % view.servers();
}

std::size_t
RandomRouting::route(const FleetView &view, sim::Rng &rng)
{
    return static_cast<std::size_t>(
        rng.uniformInt(0, view.servers() - 1));
}

std::size_t
LeastOutstandingRouting::route(const FleetView &view, sim::Rng &)
{
    const std::size_t n = view.servers();
    if (n == 0)
        return 0;
    std::size_t best = 0;
    unsigned best_out = view.outstanding(0);
    for (std::size_t i = 1; i < n; ++i) {
        const unsigned out = view.outstanding(i);
        if (out < best_out) {
            best = i;
            best_out = out;
        }
    }
    return best;
}

PackFirstRouting::PackFirstRouting(unsigned capacity)
    : _capacity(capacity)
{
    if (capacity == 0)
        sim::fatal("PackFirstRouting: capacity must be positive");
}

std::size_t
PackFirstRouting::route(const FleetView &view, sim::Rng &)
{
    const std::size_t n = view.servers();
    if (n == 0)
        return 0;
    const std::size_t first = view.firstUnderCapacity(_capacity);
    if (first < n)
        return first;
    // Everyone at capacity: spill to the least loaded.
    std::size_t best = 0;
    unsigned best_out = view.outstanding(0);
    for (std::size_t i = 1; i < n; ++i) {
        const unsigned out = view.outstanding(i);
        if (out < best_out) {
            best = i;
            best_out = out;
        }
    }
    return best;
}

std::size_t
RouteToHeadroomRouting::route(const FleetView &view, sim::Rng &)
{
    const std::size_t n = view.servers();
    if (n == 0)
        return 0;
    std::size_t best = 0;
    double best_headroom = view.headroomWatts(0);
    for (std::size_t i = 1; i < n; ++i) {
        const double headroom = view.headroomWatts(i);
        if (headroom > best_headroom) {
            best = i;
            best_headroom = headroom;
        }
    }
    return best;
}

std::unique_ptr<RoutingPolicy>
makeRoutingPolicy(const std::string &name, unsigned pack_capacity)
{
    if (name == "round-robin")
        return std::make_unique<RoundRobinRouting>();
    if (name == "random")
        return std::make_unique<RandomRouting>();
    if (name == "least-outstanding")
        return std::make_unique<LeastOutstandingRouting>();
    if (name == "pack-first")
        return std::make_unique<PackFirstRouting>(pack_capacity);
    if (name == "route-to-headroom")
        return std::make_unique<RouteToHeadroomRouting>();
    sim::fatal("unknown routing policy '%s' (round-robin|random|"
               "least-outstanding|pack-first|route-to-headroom)",
               name.c_str());
}

const std::vector<std::string> &
routingPolicyNames()
{
    static const std::vector<std::string> names{
        "round-robin", "random", "least-outstanding", "pack-first",
        "route-to-headroom"};
    return names;
}

} // namespace aw::cluster
