/**
 * @file
 * Fleet simulation: many ServerSim instances behind a load
 * balancer.
 *
 * One offered arrival stream (synthetic, diurnal-shaped or a
 * captured trace) is split across K servers by a RoutingPolicy; the
 * per-server splits then drive independent ServerSim runs whose
 * RunResults are aggregated into fleet-level power, energy per
 * request, exact pooled latency percentiles and the per-server
 * residency spread. This is the layer where the paper's datacenter
 * argument (Sec 2: fleets provisioned for peak, idle in the trough)
 * meets its architecture: routing policy decides how much deep-idle
 * residency a fleet can harvest, and the C-state configuration
 * decides what that residency is worth.
 *
 * The load balancer tracks per-server outstanding work with an
 * LB-side estimate (each routed request occupies its server for one
 * drawn service time), which is what feedback policies like
 * least-outstanding and pack-first key off -- mirroring the
 * connection-count estimates real L7 balancers route on.
 */

#ifndef AW_CLUSTER_FLEET_HH
#define AW_CLUSTER_FLEET_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/sampler.hh"
#include "analysis/trace.hh"
#include "cluster/diurnal.hh"
#include "cluster/routing.hh"
#include "server/server_sim.hh"
#include "workload/trace.hh"

namespace aw::cluster {

/**
 * Everything needed to instantiate a FleetSim.
 */
struct FleetConfig
{
    /** Number of servers behind the balancer. */
    unsigned servers = 8;

    /** Per-server configuration template. Each server gets an
     *  independently derived seed (sim::deriveSeed(seed, i)).
     *  Consider setting server.idlePromotion: without cpuidle-style
     *  tick re-selection a server that never sees traffic camps in
     *  the shallowest state its history-less governor picked, which
     *  is neither what real machines do nor a fair baseline for
     *  consolidation policies whose point is spare-server deep
     *  idle. awsim's fleet mode and the fleet bench/example enable
     *  it. */
    server::ServerConfig server = server::ServerConfig::baseline();

    /** Routing policy name (see cluster/routing.hh). */
    std::string routing = "round-robin";

    /** Pack-first spill threshold: outstanding requests one server
     *  absorbs before traffic overflows to the next. 0 = auto
     *  (half the server's cores, targeting ~50% utilization on the
     *  packed servers). */
    unsigned packCapacity = 0;

    /** Top-level seed; the balancer and every server derive
     *  decorrelated streams from it. */
    std::uint64_t seed = 42;

    /** Offered-load shaping (flat by default). */
    RateSchedule schedule = RateSchedule::flat();

    /** Worker threads for the per-server phase. Once the balancer
     *  has split the offered stream, the K per-server event streams
     *  are fully independent (the balancer routes on its own a
     *  priori occupancy estimate, never on live server state), so
     *  they partition across threads; each run writes into a
     *  pre-assigned result slot and aggregation walks the slots in
     *  index order, making every result and artifact bit-identical
     *  to the serial reference at any thread count. 0 = hardware
     *  concurrency; 1 (the default) = the serial reference path. */
    unsigned fleetThreads = 1;

    /** Routing-decision epoch length in seconds. The balancer
     *  publishes its completion estimates (drains the in-flight
     *  heap) at every epoch boundary in addition to the per-decision
     *  drain. The boundary drain pops exactly the entries the next
     *  per-decision drain would pop anyway, in the same heap order,
     *  so results are byte-identical for ANY epoch length (pinned
     *  by tests, including a boundary landing exactly on a routing
     *  decision). 0 (the default) = one epoch spanning the run. */
    double epochSeconds = 0.0;

    /** Fleet power-budget redistribution (active only when
     *  server.cap.capWatts > 0 and epochSeconds > 0): at every epoch
     *  boundary the balancer re-deals the fleet's total budget
     *  (servers * capWatts) from its own previous-epoch routing
     *  counts -- a kBaseShare floor per server plus a
     *  demand-proportional share of the pooled remainder (see
     *  cap::FleetBudgetPlanner). The schedules are a pure function
     *  of the serial balancer pass, so results stay bit-identical
     *  at any fleetThreads. Disable to hold every server at its
     *  nominal static cap. */
    bool capRedistribution = true;

    /** Homogeneous-idle fast path: servers the balancer never
     *  routed to are advanced by simulating ONE idle reference
     *  server and reusing its slot for every other never-routed
     *  server. Bit-identical to simulating each one, because an
     *  idle server's evolution is seed-independent: its arrival
     *  stream is a single never-firing gap and no per-server RNG is
     *  ever drawn (tests pin the identity). Disable to force
     *  event-by-event simulation of every server. */
    bool idleFastPath = true;
};

/**
 * Results of one fleet run.
 */
struct FleetResult
{
    std::string routingName;
    std::string configName;
    std::string workloadName;
    unsigned servers = 0;
    double offeredQps = 0.0;
    sim::Tick window = 0;

    /** Completed requests in the measured window, fleet-wide. */
    std::uint64_t requests = 0;
    double achievedQps = 0.0;

    /** Kernel events executed across all servers (warmup included;
     *  perf telemetry only, never emitted into artifacts). */
    std::uint64_t events = 0;

    /** Arrivals the balancer routed over the whole run (including
     *  warmup), total and per server. */
    std::uint64_t routed = 0;
    std::vector<std::uint64_t> routedPerServer;

    /** @{ Fleet power/energy over the measured window. */
    power::Watts fleetPower = 0.0;   //!< sum of package powers
    power::Joules fleetEnergy = 0.0; //!< fleetPower x window
    double energyPerRequestMj = 0.0; //!< millijoules per request
    /** @} */

    /** @{ Pooled per-request latency (exact, not per-server means). */
    double avgLatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double p999LatencyUs = 0.0;
    /** @} */

    /** Core-time-weighted fleet C-state residency. */
    cstate::ResidencySnapshot residency;

    /** Fleet share of time in the C6 family (C6, C6A, C6AE). */
    double deepIdleShare = 0.0;

    /** @{ Per-server deep-idle spread: packing shows up as a wide
     *  [min, max] band (loaded servers shallow, spares deep). */
    double minServerDeepShare = 0.0;
    double maxServerDeepShare = 0.0;
    /** @} */

    /** Largest per-server share of routed arrivals (1/K = even). */
    double busiestShareOfLoad = 0.0;

    /** @{ Power-cap / thermal aggregates over the measured window
     *  (all zero while the cap subsystem is disabled): server-mean
     *  share of the window throttled, forced-idle naps fleet-wide,
     *  and the hottest junction temperature any server reached. */
    double capThrottleShare = 0.0;
    std::uint64_t forcedIdleNaps = 0;
    double maxTempC = 0.0;
    /** @} */

    /** Servers the balancer never routed to (candidates for the
     *  homogeneous-idle fast path; diagnostics only, never part of
     *  artifact schemas). */
    unsigned neverRouted = 0;

    std::vector<server::RunResult> perServer;

    /** Fleet-folded interval timeline (requests/power summed,
     *  residency core-weighted, p99 pooled exactly); present only
     *  when FleetSim::enableTimeline() was called before run(). */
    std::optional<analysis::TimelineSeries> timeline;

    /** Fleet-merged request trace (per-server spans interleaved by
     *  completion, balancer routing decisions attached); present
     *  only when FleetSim::enableRequestTrace() was called before
     *  run(). */
    std::optional<analysis::TraceSeries> trace;
};

/** Share of @p r spent in the C6 family (C6 + C6A + C6AE). */
double deepIdleShare(const cstate::ResidencySnapshot &r);

/**
 * Driver: split the offered stream, run the servers, aggregate.
 */
class FleetSim
{
  public:
    /**
     * @param cfg        fleet configuration
     * @param profile    workload every server runs
     * @param total_qps  offered load across the whole fleet
     */
    FleetSim(FleetConfig cfg, workload::WorkloadProfile profile,
             double total_qps);

    /**
     * Replay @p trace as the fleet's offered stream (looped) instead
     * of the profile's synthetic arrivals. The schedule still
     * applies on top.
     */
    void setArrivalTrace(workload::ArrivalTrace trace);

    /**
     * Run @p warmup of unmeasured time followed by @p duration of
     * measured time on every server.
     */
    FleetResult run(sim::Tick duration, sim::Tick warmup);

    /** Convenience: run with defaults sized to the offered rate. */
    FleetResult run();

    const FleetConfig &config() const { return _cfg; }

    /** Effective pack-first capacity after the auto default. */
    unsigned packCapacity() const;

    /**
     * Record a per-server timeline during run() and fold it into
     * FleetResult::timeline. Latency retention is forced on (the
     * fold needs the raw samples for exact pooled percentiles).
     * The sampler is passive, so enabling it leaves every other
     * result field byte-identical.
     */
    void enableTimeline(const analysis::TimelineConfig &cfg);

    /**
     * Record a per-server request trace during run() and merge it
     * into FleetResult::trace, with the balancer's measured-window
     * routing decisions attached. The tracer is passive, so
     * enabling it leaves every other result field byte-identical.
     * Composes with enableTimeline() (both observers fan out).
     */
    void enableRequestTrace(const analysis::TraceConfig &cfg);

  private:
    std::unique_ptr<workload::ArrivalProcess> makeOfferedStream() const;

    FleetConfig _cfg;
    workload::WorkloadProfile _profile;
    double _totalQps;
    std::optional<workload::ArrivalTrace> _trace;
    std::optional<analysis::TimelineConfig> _timeline;
    std::optional<analysis::TraceConfig> _requestTrace;
};

} // namespace aw::cluster

#endif // AW_CLUSTER_FLEET_HH
