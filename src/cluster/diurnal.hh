/**
 * @file
 * Time-varying offered load: a piecewise-constant rate schedule
 * (with a sinusoidal diurnal factory) and an ArrivalProcess wrapper
 * that shapes any base stream to follow it.
 *
 * Production latency-critical fleets run a pronounced day/night
 * cycle: the paper's Sec 2 provisioning argument (fleets sized for
 * peak, idle in the trough) only shows up when a run actually
 * sweeps that cycle. DiurnalArrivals rescales the base process by
 * the schedule via the time-change theorem, so a Poisson base stays
 * an (inhomogeneous) Poisson process with intensity
 * rate * scale(t).
 */

#ifndef AW_CLUSTER_DIURNAL_HH
#define AW_CLUSTER_DIURNAL_HH

#include <memory>
#include <vector>

#include "sim/types.hh"
#include "workload/arrival.hh"

namespace aw::cluster {

/**
 * Piecewise-constant rate multipliers over a repeating period.
 * scaleAt(t) is the multiplier applied to the base arrival rate at
 * simulated time t (wrapping modulo the period).
 */
class RateSchedule
{
  public:
    struct Segment
    {
        sim::Tick duration = 0;
        double scale = 1.0;
    };

    /** Flat schedule: multiplier 1 forever. */
    RateSchedule();

    /**
     * Explicit segments, repeated cyclically. Durations must be
     * positive, scales non-negative, and at least one scale
     * positive (an all-zero schedule would never arrive).
     */
    explicit RateSchedule(std::vector<Segment> segments);

    static RateSchedule flat() { return RateSchedule(); }

    /**
     * Sinusoidal diurnal profile sampled into @p steps equal
     * segments: scale(t) ~ 1 + amplitude * sin(2*pi*t/period),
     * clamped at zero and renormalized so the time-weighted mean
     * multiplier is exactly 1 (the long-run rate equals the base
     * rate).
     *
     * @param period     length of one simulated "day"
     * @param amplitude  peak-to-mean swing (0 = flat, 1 = trough
     *                   touches zero)
     */
    static RateSchedule sinusoidal(sim::Tick period, double amplitude,
                                   std::size_t steps = 48);

    /**
     * Flash crowd: a quiet baseline (multiplier 1) with one load
     * spike of @p spike x the base rate occupying the middle
     * @p spikeShare of each period. Unlike sinusoidal() the mean is
     * NOT renormalized -- the spike is extra traffic on top of the
     * baseline, which is what a flash crowd is.
     *
     * @param period     schedule period (spike repeats per period)
     * @param spike      rate multiplier during the spike (>= 0;
     *                   > 1 for a surge, 0 for a blackout)
     * @param spikeShare fraction of the period spiked, in (0, 1)
     */
    static RateSchedule flashCrowd(sim::Tick period, double spike,
                                   double spikeShare = 0.25);

    /** Multiplier in effect at @p t (wraps modulo the period). */
    double scaleAt(sim::Tick t) const;

    /** Time-weighted mean multiplier over one period. */
    double meanScale() const;

    sim::Tick period() const { return _period; }
    const std::vector<Segment> &segments() const { return _segments; }

    /** True when every segment has multiplier 1. */
    bool isFlat() const;

  private:
    std::vector<Segment> _segments;
    sim::Tick _period = 0;
};

/**
 * Shapes a base arrival process to follow a RateSchedule.
 *
 * Implemented by time rescaling: each base gap g is interpreted as
 * an amount of "work" and the wrapper advances wall-clock time
 * until the integral of scale(t) covers g. Segments with scale 0
 * pass no arrivals and are skipped in one step.
 */
class DiurnalArrivals : public workload::ArrivalProcess
{
  public:
    DiurnalArrivals(std::unique_ptr<workload::ArrivalProcess> base,
                    RateSchedule schedule);

    sim::Tick nextGap(sim::Rng &rng) override;

    /** Long-run mean rate: base rate x mean schedule multiplier. */
    double ratePerSec() const override;

    const RateSchedule &schedule() const { return _schedule; }

  private:
    std::unique_ptr<workload::ArrivalProcess> _base;
    RateSchedule _schedule;
    double _periodMass = 0.0;    //!< integral of scale over a period
    std::size_t _segment = 0;    //!< current segment index
    double _segmentUsed = 0.0;   //!< ticks consumed inside it
};

} // namespace aw::cluster

#endif // AW_CLUSTER_DIURNAL_HH
