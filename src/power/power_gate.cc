#include "power/power_gate.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace aw::power {

StaggeredWakeupPlan
StaggeredWakeupPlan::equalSplit(double total_area_rel, std::size_t n,
                                sim::Tick per_zone)
{
    if (n == 0)
        sim::panic("StaggeredWakeupPlan::equalSplit: need >= 1 zone");
    if (total_area_rel <= 0.0)
        sim::panic("StaggeredWakeupPlan::equalSplit: bad area %f",
                   total_area_rel);
    StaggeredWakeupPlan plan;
    const double per_area = total_area_rel / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
        plan.addZone(WakeZone{
            sim::strprintf("zone%zu", i), per_area, per_zone});
    }
    return plan;
}

StaggeredWakeupPlan
StaggeredWakeupPlan::proportional(double total_area_rel, std::size_t n)
{
    if (n == 0)
        sim::panic("StaggeredWakeupPlan::proportional: need >= 1 zone");
    if (total_area_rel <= 0.0)
        sim::panic("StaggeredWakeupPlan::proportional: bad area %f",
                   total_area_rel);
    StaggeredWakeupPlan plan;
    const double per_area = total_area_rel / static_cast<double>(n);
    // Round the ramp *up* so the in-rush rate never exceeds the
    // proven reference rate.
    const auto ramp = static_cast<sim::Tick>(
        std::ceil(per_area * static_cast<double>(kReferenceStagger)));
    for (std::size_t i = 0; i < n; ++i) {
        plan.addZone(WakeZone{
            sim::strprintf("zone%zu", i), per_area, ramp});
    }
    return plan;
}

sim::Tick
StaggeredWakeupPlan::totalWakeTime() const
{
    sim::Tick total = 0;
    for (const auto &z : _zones)
        total += z.staggerTime;
    return total;
}

double
StaggeredWakeupPlan::peakInrushRelToReference() const
{
    double peak = 0.0;
    for (const auto &z : _zones) {
        if (z.staggerTime == 0) {
            // Instantaneous ramp of nonzero area: infinite in-rush.
            if (z.areaRelToReference > 0.0)
                return std::numeric_limits<double>::infinity();
            continue;
        }
        const double ref_rate =
            1.0 / static_cast<double>(kReferenceStagger);
        const double rate = z.areaRelToReference /
                            static_cast<double>(z.staggerTime);
        peak = std::max(peak, rate / ref_rate);
    }
    return peak;
}

double
StaggeredWakeupPlan::totalAreaRel() const
{
    double total = 0.0;
    for (const auto &z : _zones)
        total += z.areaRelToReference;
    return total;
}

} // namespace aw::power
