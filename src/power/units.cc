#include "power/units.hh"

#include "sim/logging.hh"

namespace aw::power {

std::string
formatMilliwatts(const Interval &w, int precision)
{
    const double lo = asMilliwatts(w.lo);
    const double hi = asMilliwatts(w.hi);
    if (lo == hi)
        return sim::strprintf("%.*f mW", precision, lo);
    return sim::strprintf("%.*f-%.*f mW", precision, lo, precision, hi);
}

std::string
formatPercent(const Interval &f, int precision)
{
    const double lo = f.lo * 100.0;
    const double hi = f.hi * 100.0;
    if (lo == hi)
        return sim::strprintf("%.*f%%", precision, lo);
    return sim::strprintf("%.*f-%.*f%%", precision, lo, precision, hi);
}

} // namespace aw::power
