#include "power/sram_sleep.hh"

#include "sim/logging.hh"

namespace aw::power {

Watts
SramSleepMode::sleepPowerAtSetting(unsigned setting, bool at_pn) const
{
    if (setting >= kSettings)
        sim::panic("SramSleepMode: setting %u out of range", setting);
    const Watts base = at_pn ? _pnPower : _p1Power;
    // Deepest setting == calibrated anchor; each shallower setting
    // retains ~12% more leakage.
    return base * (1.0 + 0.12 * static_cast<double>(setting));
}

SramSleepMode
SramSleepMode::fromReference(Watts ref_power, double ref_bytes,
                             double target_bytes, LeakageScaling scaling,
                             double pn_over_p1)
{
    if (ref_bytes <= 0.0 || target_bytes <= 0.0)
        sim::panic("SramSleepMode::fromReference: bad capacities");
    const Watts p1 = scaling.scale(
        scaleSramLeakageByCapacity(ref_power, ref_bytes, target_bytes));
    return SramSleepMode(target_bytes, p1, p1 * pn_over_p1);
}

} // namespace aw::power
