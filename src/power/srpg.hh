/**
 * @file
 * In-place context retention models (Sec 4.1): state-retention power
 * gates (SRPG), ungated register banks and ungated SRAM.
 *
 * The retained core context is ~8 KB. At retention voltage it costs
 * ~0.2 mW; the paper conservatively multiplies by 10x at the base
 * frequency/voltage point (P1, i.e., in C6A) and by 5x at the
 * minimum point (Pn, i.e., in C6AE), yielding ~2 mW and ~1 mW.
 */

#ifndef AW_POWER_SRPG_HH
#define AW_POWER_SRPG_HH

#include <cstdint>

#include "power/units.hh"
#include "sim/types.hh"

namespace aw::power {

/** Which in-place retention technique a unit's context uses. */
enum class RetentionTechnique
{
    /** Registers relocated to the core's ungated domain (Fig 5a). */
    UngatedRegisters,
    /** Retention flip-flops with a shadow latch (Fig 5c). */
    Srpg,
    /** SRAM powered from the ungated supply (Fig 5b). */
    UngatedSram,
};

/**
 * Power/latency model of the retained context.
 */
class ContextRetention
{
  public:
    /** Paper constants. */
    static constexpr double kContextBytes = 8 * 1024.0;
    static constexpr Watts kRetentionPowerAtVret = milliwatts(0.2);
    static constexpr double kP1Multiplier = 10.0;
    static constexpr double kPnMultiplier = 5.0;

    /**
     * @param context_bytes  amount of retained state
     */
    explicit ContextRetention(double context_bytes = kContextBytes)
        : _bytes(context_bytes)
    {}

    double contextBytes() const { return _bytes; }

    /** Retention power at the true retention voltage. */
    Watts
    powerAtRetentionVoltage() const
    {
        return kRetentionPowerAtVret * (_bytes / kContextBytes);
    }

    /** Retention power at the P1 operating point (C6A). */
    Watts
    powerAtP1() const
    {
        return powerAtRetentionVoltage() * kP1Multiplier;
    }

    /** Retention power at the Pn operating point (C6AE). */
    Watts
    powerAtPn() const
    {
        return powerAtRetentionVoltage() * kPnMultiplier;
    }

    /**
     * Cycles to save context in place: assert Ret, deassert Pwr
     * (Fig 5c) -- 3-4 cycles of the power-management clock. We use
     * the conservative end.
     */
    static constexpr std::uint64_t kSaveCycles = 4;

    /** Cycles to restore: deassert Ret after power is back. */
    static constexpr std::uint64_t kRestoreCycles = 1;

    /** Area overhead of in-place retention relative to the context
     *  area: <1% for each technique (isolation cells / selective
     *  retention flops). */
    static constexpr Interval kAreaOverhead{0.0, 0.01};

  private:
    double _bytes;
};

/**
 * Latency model of the legacy external save/restore path (C6):
 * context streams sequentially to/from the S/R SRAM in the uncore,
 * so time scales with context size and inversely with frequency.
 *
 * Calibrated to the paper's x86 reference: ~9 us for ~8 KB at
 * 800 MHz (Sec 3, "Core C6 Entry/Exit Latency").
 */
class ExternalSaveRestore
{
  public:
    /** Bytes moved per core cycle on the save/restore path. */
    static constexpr double kBytesPerCycle =
        8 * 1024.0 / (9e-6 * 800e6); // ~1.14 B/cycle

    explicit ExternalSaveRestore(
        double context_bytes = ContextRetention::kContextBytes)
        : _bytes(context_bytes)
    {}

    /** Time to save (or restore) the full context at @p freq. */
    sim::Tick
    transferTime(sim::Frequency freq) const
    {
        const double cycles = _bytes / kBytesPerCycle;
        const double seconds = cycles / freq.hz();
        return sim::fromSec(seconds);
    }

    double contextBytes() const { return _bytes; }

  private:
    double _bytes;
};

} // namespace aw::power

#endif // AW_POWER_SRPG_HH
