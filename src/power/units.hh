/**
 * @file
 * Power/energy/area unit helpers and the Interval type used to carry
 * the lo..hi ranges the paper reports (e.g., "30-50 mW", "2-6% area").
 */

#ifndef AW_POWER_UNITS_HH
#define AW_POWER_UNITS_HH

#include <algorithm>
#include <string>

namespace aw::power {

/** Power in watts. */
using Watts = double;

/** Energy in joules. */
using Joules = double;

/** Area in square millimeters. */
using SquareMm = double;

/** @{ Unit constructors. */
constexpr Watts
milliwatts(double mw)
{
    return mw * 1e-3;
}

constexpr double
asMilliwatts(Watts w)
{
    return w * 1e3;
}

constexpr Joules
microjoules(double uj)
{
    return uj * 1e-6;
}
/** @} */

/**
 * A closed numeric interval [lo, hi].
 *
 * The paper states many quantities as ranges that reflect
 * implementation uncertainty (power-gate area overhead 2-6%, residual
 * leakage 3-5%, ...). Interval arithmetic propagates those ranges
 * through the PPA rollup so the Table 3 totals come out as the same
 * kind of range the paper prints.
 */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;

    constexpr Interval() = default;
    constexpr Interval(double l, double h) : lo(l), hi(h) {}

    /** A degenerate interval [x, x]. */
    static constexpr Interval
    point(double x)
    {
        return Interval(x, x);
    }

    constexpr double mid() const { return 0.5 * (lo + hi); }
    constexpr double width() const { return hi - lo; }

    constexpr bool
    contains(double x) const
    {
        return x >= lo && x <= hi;
    }

    constexpr bool
    valid() const
    {
        return lo <= hi;
    }

    constexpr Interval
    operator+(const Interval &o) const
    {
        return Interval(lo + o.lo, hi + o.hi);
    }

    constexpr Interval &
    operator+=(const Interval &o)
    {
        lo += o.lo;
        hi += o.hi;
        return *this;
    }

    /** Scale by a non-negative factor. */
    constexpr Interval
    operator*(double k) const
    {
        return k >= 0.0 ? Interval(lo * k, hi * k)
                        : Interval(hi * k, lo * k);
    }

    /** Elementwise interval product (both assumed non-negative). */
    constexpr Interval
    operator*(const Interval &o) const
    {
        return Interval(lo * o.lo, hi * o.hi);
    }
};

/** Render an interval of watts as "lo-hi mW" (or a single value). */
std::string formatMilliwatts(const Interval &w, int precision = 0);

/** Render an interval of fractions as "lo-hi%". */
std::string formatPercent(const Interval &f, int precision = 0);

} // namespace aw::power

#endif // AW_POWER_UNITS_HH
