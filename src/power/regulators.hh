/**
 * @file
 * Clock generator (ADPLL) and power-delivery (FIVR) models
 * (Sec 5.1.4).
 */

#ifndef AW_POWER_REGULATORS_HH
#define AW_POWER_REGULATORS_HH

#include "power/units.hh"
#include "sim/types.hh"

namespace aw::power {

/**
 * All-digital phase-locked loop: the Skylake core clock generator.
 *
 * Consumes ~7 mW independent of the core voltage/frequency point.
 * When off (C6), relocking is part of the ~10 us hardware wake.
 */
class Adpll
{
  public:
    static constexpr Watts kPower = milliwatts(7.0);

    /** Relock time after power-on (part of the C6 exit hw wake). */
    static constexpr sim::Tick kRelockTime = 5 * sim::kTicksPerUs;

    constexpr Adpll() = default;

    constexpr bool on() const { return _on; }
    void setOn(bool on) { _on = on; }

    constexpr Watts
    power() const
    {
        return _on ? kPower : 0.0;
    }

  private:
    bool _on = true;
};

/**
 * Fully-integrated voltage regulator (per-core).
 *
 * Two loss terms:
 *  - dynamic conversion loss: at light load the FIVR is ~80%
 *    efficient, so delivering P to the core draws P/eff from the
 *    input rail (loss = P * (1/eff - 1));
 *  - static loss: control/feedback circuits consume ~100 mW per
 *    core even at zero output.
 */
class Fivr
{
  public:
    static constexpr double kLightLoadEfficiency = 0.80;
    static constexpr Watts kStaticLoss = milliwatts(100.0);

    constexpr Fivr() = default;

    explicit constexpr Fivr(double efficiency, Watts static_loss)
        : _efficiency(efficiency), _staticLoss(static_loss)
    {}

    constexpr double efficiency() const { return _efficiency; }
    constexpr Watts staticLoss() const { return _staticLoss; }

    /** Conversion (dynamic) loss for delivering @p load watts. */
    constexpr Watts
    conversionLoss(Watts load) const
    {
        return load * (1.0 / _efficiency - 1.0);
    }

    /** Interval version for PPA range rollups. */
    constexpr Interval
    conversionLoss(const Interval &load) const
    {
        return load * (1.0 / _efficiency - 1.0);
    }

    /** Total input power for delivering @p load watts. */
    constexpr Watts
    inputPower(Watts load) const
    {
        return load + conversionLoss(load) + _staticLoss;
    }

  private:
    double _efficiency = kLightLoadEfficiency;
    Watts _staticLoss = kStaticLoss;
};

/** The power-delivery network styles found in modern CPUs. The
 *  library models FIVR (Skylake server); the enum exists so server
 *  configs can state their PDN and tests can check the FIVR-specific
 *  static loss is only charged when a FIVR is present. */
enum class PdnKind
{
    Fivr,    //!< fully-integrated VR per core (Skylake server)
    Mbvr,    //!< motherboard VR
    LdoVr,   //!< on-die low-dropout VR
};

} // namespace aw::power

#endif // AW_POWER_REGULATORS_HH
