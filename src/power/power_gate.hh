/**
 * @file
 * Power-gate and staggered wake-up models.
 *
 * A power gate eliminates most but not all of the leakage of the
 * logic it gates (95-97% per the low-power design literature the
 * paper cites) and costs 2-6% extra area. Waking a gated domain must
 * be staggered to bound in-rush current: the switch cells are daisy-
 * chained (Fig 2) and larger domains are split into zones, each of
 * which may ramp over at most the same interval the Skylake AVX
 * gates use (~15 ns) so the per-zone in-rush stays within the proven
 * envelope (Sec 5.3).
 */

#ifndef AW_POWER_POWER_GATE_HH
#define AW_POWER_POWER_GATE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "power/units.hh"
#include "sim/types.hh"

namespace aw::power {

/**
 * Leakage/area model of one power-gated domain.
 */
class PowerGate
{
  public:
    /** Fraction of gated leakage a power gate eliminates (lo..hi). */
    static constexpr Interval kEliminationEfficiency{0.95, 0.97};

    /** Area overhead of the gate relative to the gated area. */
    static constexpr Interval kAreaOverhead{0.02, 0.06};

    /**
     * @param gated_leakage   leakage of the gated logic when ungated
     * @param gated_area      area of the gated logic
     */
    PowerGate(Watts gated_leakage, SquareMm gated_area)
        : _gatedLeakage(gated_leakage), _gatedArea(gated_area)
    {}

    Watts gatedLeakage() const { return _gatedLeakage; }
    SquareMm gatedArea() const { return _gatedArea; }

    /**
     * Residual leakage while gated: the 3-5% the gate cannot
     * eliminate, as an interval.
     */
    Interval
    residualLeakage() const
    {
        const Interval kept{1.0 - kEliminationEfficiency.hi,
                            1.0 - kEliminationEfficiency.lo};
        return kept * _gatedLeakage;
    }

    /** Extra area the gate itself adds, as an interval. */
    Interval
    areaOverhead() const
    {
        return kAreaOverhead * _gatedArea;
    }

  private:
    Watts _gatedLeakage;
    SquareMm _gatedArea;
};

/**
 * One wake-up zone of a staggered power-ungating plan.
 */
struct WakeZone
{
    /** Name for reporting. */
    std::string name;

    /**
     * Size of this zone relative to the reference domain whose
     * staggered wake is silicon-proven (the Skylake AVX gates).
     */
    double areaRelToReference = 1.0;

    /** Time over which this zone's switch chain is ramped. */
    sim::Tick staggerTime = 0;
};

/**
 * A staggered wake-up plan: an ordered list of zones woken
 * sequentially, with an in-rush feasibility check.
 *
 * In-rush current of a zone scales with (zone area / ramp time). The
 * plan is feasible when every zone's in-rush does not exceed that of
 * the reference domain ramped over the reference interval, i.e.
 * area_rel / stagger <= 1 / referenceStagger.
 */
class StaggeredWakeupPlan
{
  public:
    /** The silicon-proven reference ramp (Skylake AVX): ~15 ns. */
    static constexpr sim::Tick kReferenceStagger = 15 * sim::kTicksPerNs;

    StaggeredWakeupPlan() = default;

    /** Append a zone to the wake order. */
    void addZone(WakeZone zone) { _zones.push_back(std::move(zone)); }

    /**
     * Build a plan that splits a domain of @p total_area_rel
     * (relative to the reference) into @p n equal zones, each ramped
     * over the reference interval.
     */
    static StaggeredWakeupPlan
    equalSplit(double total_area_rel, std::size_t n,
               sim::Tick per_zone = kReferenceStagger);

    /**
     * Build a plan that splits a domain into @p n equal zones, each
     * ramped over a time *proportional* to its area (relative to
     * the reference), which holds the in-rush rate exactly at the
     * proven reference level. This is the paper's Sec 5.3 plan:
     * total wake time = total_area_rel * referenceStagger
     * (4.5 x 15 ns = 67.5 ns for the UFPG domain).
     */
    static StaggeredWakeupPlan
    proportional(double total_area_rel, std::size_t n);

    std::size_t zoneCount() const { return _zones.size(); }
    const WakeZone &zone(std::size_t i) const { return _zones.at(i); }

    /** Total wake latency: zones ramp one after another. */
    sim::Tick totalWakeTime() const;

    /**
     * Peak normalized in-rush current across zones, where 1.0 equals
     * the reference domain ramped over the reference interval.
     */
    double peakInrushRelToReference() const;

    /** @return true if no zone exceeds the reference in-rush. */
    bool
    inrushWithinLimit() const
    {
        // Allow a hair of FP slack on the boundary.
        return peakInrushRelToReference() <= 1.0 + 1e-9;
    }

    /** Sum of the zones' relative areas. */
    double totalAreaRel() const;

  private:
    std::vector<WakeZone> _zones;
};

} // namespace aw::power

#endif // AW_POWER_POWER_GATE_HH
