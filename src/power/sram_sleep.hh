/**
 * @file
 * SRAM sleep-mode model (Sec 4.2 / 5.1.2).
 *
 * Cache sleep-mode adds P-type sleep transistors with seven
 * programmable settings plus bit-line float and word-line sleep to
 * the SRAM data arrays. The sleep transistor acts as a linear
 * voltage regulator: its power-conversion efficiency is
 * vout/vin, so lowering the core input voltage toward the retention
 * voltage (C6AE at Pn) raises efficiency and cuts the residual
 * leakage further.
 */

#ifndef AW_POWER_SRAM_SLEEP_HH
#define AW_POWER_SRAM_SLEEP_HH

#include <cstdint>

#include "power/tech.hh"
#include "power/units.hh"
#include "sim/types.hh"

namespace aw::power {

/**
 * Sleep-mode model for one SRAM array (e.g., the combined L1/L2 data
 * arrays of a core).
 *
 * Calibration anchor (paper Sec 5.1.2): a 2.5 MB 22 nm L3 slice with
 * sleep-mode, scaled by capacity to the ~1.1 MB L1+L2 of a Skylake
 * core and by the 0.7x leakage factor to 14 nm, gives ~55 mW in
 * sleep at the P1 voltage and ~40 mW at the Pn voltage.
 */
class SramSleepMode
{
  public:
    /** Number of programmable sleep settings in the reference
     *  implementation. Setting 0 is the deepest (most leakage
     *  reduction); setting 6 is the shallowest. */
    static constexpr unsigned kSettings = 7;

    /**
     * @param capacity_bytes    SRAM capacity under sleep control
     * @param sleep_power_p1    residual power in sleep at P1 voltage
     * @param sleep_power_pn    residual power in sleep at Pn voltage
     */
    SramSleepMode(double capacity_bytes, Watts sleep_power_p1,
                  Watts sleep_power_pn)
        : _bytes(capacity_bytes), _p1Power(sleep_power_p1),
          _pnPower(sleep_power_pn)
    {}

    /** The paper's L1+L2 data-array instance (~1.1 MB, 14 nm). */
    static SramSleepMode
    skylakeL1L2()
    {
        return SramSleepMode(1.1 * 1024 * 1024, milliwatts(55.0),
                             milliwatts(40.0));
    }

    double capacityBytes() const { return _bytes; }

    /** Residual sleep power at the P1 voltage (C6A). */
    Watts sleepPowerAtP1() const { return _p1Power; }

    /** Residual sleep power at the Pn voltage (C6AE). */
    Watts sleepPowerAtPn() const { return _pnPower; }

    /**
     * Residual sleep power at an intermediate setting; setting 0 is
     * the calibrated deepest point, each shallower setting retains
     * ~12% more leakage (linear interpolation up to ~1.7x at the
     * shallowest, spanning the published multi-sleep-mode range).
     *
     * @param at_pn  use the Pn-voltage anchor instead of P1
     */
    Watts
    sleepPowerAtSetting(unsigned setting, bool at_pn = false) const;

    /**
     * LVR-style conversion efficiency of the sleep transistor:
     * vout / vin.
     */
    static constexpr double
    lvrEfficiency(double vout, double vin)
    {
        return vin > 0.0 ? vout / vin : 0.0;
    }

    /** @{ Transition latencies (PMA cycles).
     *  Sleep entry takes 1-3 cycles (we model the conservative 3);
     *  exit takes 2 cycles: cycle 1 ungates the clock, cycle 2
     *  raises the array voltage while tags are accessed in parallel,
     *  which is what hides the wake from the access path. */
    static constexpr std::uint64_t kEntryCycles = 3;
    static constexpr std::uint64_t kExitCycles = 2;
    /** @} */

    /** Area overhead of the sleep transistors over the data array
     *  (same range as power gates; a recent implementation reports
     *  2%). */
    static constexpr Interval kAreaOverhead{0.02, 0.06};

    /**
     * Derive the sleep power anchors from a reference silicon data
     * point by capacity and technology scaling (the paper's own
     * derivation path: 2.5 MB @ 22 nm -> 1.1 MB @ 14 nm).
     *
     * @param ref_power       sleep power of the reference array
     * @param ref_bytes       reference capacity
     * @param target_bytes    target capacity
     * @param scaling         node scaling (alpha*beta)
     * @param pn_over_p1      ratio of Pn-voltage to P1-voltage sleep
     *                        power (from LVR efficiency; ~40/55)
     */
    static SramSleepMode
    fromReference(Watts ref_power, double ref_bytes, double target_bytes,
                  LeakageScaling scaling, double pn_over_p1);

  private:
    double _bytes;
    Watts _p1Power;
    Watts _pnPower;
};

} // namespace aw::power

#endif // AW_POWER_SRAM_SLEEP_HH
