/**
 * @file
 * Technology-node leakage scaling.
 *
 * The paper derives 14 nm cache leakage from published 22 nm silicon
 * data using the scaling rule of Shahidi [99]: for a dimensional
 * scaling factor alpha and voltage scaling factor beta, leakage power
 * scales as alpha * beta. The paper conservatively uses alpha ~= 0.7
 * (22 nm -> 14 nm) and beta = 1.0 (no voltage scaling).
 */

#ifndef AW_POWER_TECH_HH
#define AW_POWER_TECH_HH

#include "power/units.hh"

namespace aw::power {

/** A named process node. */
struct TechnologyNode
{
    double nm = 14.0;

    static constexpr TechnologyNode
    skylake14()
    {
        return TechnologyNode{14.0};
    }

    static constexpr TechnologyNode
    xeon22()
    {
        return TechnologyNode{22.0};
    }
};

/**
 * Leakage scaling between two nodes per Shahidi's alpha*beta rule.
 */
class LeakageScaling
{
  public:
    /**
     * @param alpha dimensional scaling factor (< 1 when shrinking)
     * @param beta  voltage scaling factor (1.0 = conservative)
     */
    constexpr LeakageScaling(double alpha, double beta)
        : _alpha(alpha), _beta(beta)
    {}

    /**
     * The paper's 22 nm -> 14 nm scaling: alpha ~= 0.7, beta = 1.0.
     */
    static constexpr LeakageScaling
    paper22To14()
    {
        return LeakageScaling(0.7, 1.0);
    }

    /**
     * Generic node-to-node scaling using the feature-size ratio as
     * the dimensional factor and an explicit voltage factor.
     */
    static constexpr LeakageScaling
    between(TechnologyNode from, TechnologyNode to, double beta = 1.0)
    {
        return LeakageScaling(to.nm / from.nm, beta);
    }

    constexpr double alpha() const { return _alpha; }
    constexpr double beta() const { return _beta; }

    constexpr double factor() const { return _alpha * _beta; }

    constexpr Watts
    scale(Watts leakage) const
    {
        return leakage * factor();
    }

    constexpr Interval
    scale(const Interval &leakage) const
    {
        return leakage * factor();
    }

  private:
    double _alpha;
    double _beta;
};

/**
 * Scale an SRAM leakage figure by capacity: leakage is proportional
 * to the number of bits for a fixed node and sleep setting.
 */
constexpr Watts
scaleSramLeakageByCapacity(Watts reference, double reference_bytes,
                           double target_bytes)
{
    return reference * (target_bytes / reference_bytes);
}

} // namespace aw::power

#endif // AW_POWER_TECH_HH
