/**
 * @file
 * Piecewise-constant power integration -- the simulator's equivalent
 * of the RAPL energy counters the paper measures with.
 */

#ifndef AW_POWER_ENERGY_METER_HH
#define AW_POWER_ENERGY_METER_HH

#include "power/units.hh"
#include "sim/types.hh"

namespace aw::power {

/**
 * Integrates power over simulated time.
 *
 * Components call setPower(now, watts) whenever their power level
 * changes; the meter charges the previous level for the elapsed
 * interval. energy(now) closes the current interval without changing
 * the level.
 */
class EnergyMeter
{
  public:
    EnergyMeter() = default;

    /** Change the power level at time @p now. */
    void
    setPower(sim::Tick now, Watts w)
    {
        accrue(now);
        _power = w;
    }

    /** Current power level. */
    Watts power() const { return _power; }

    /** Total energy consumed up to @p now. */
    Joules
    energy(sim::Tick now)
    {
        accrue(now);
        return _joules;
    }

    /** Average power over [start, now]; start defaults to 0. */
    Watts
    averagePower(sim::Tick now, sim::Tick start = 0)
    {
        if (now <= start)
            return 0.0;
        return energy(now) / sim::toSec(now - start);
    }

    /** Restart integration at @p now with the same power level. */
    void
    reset(sim::Tick now)
    {
        _last = now;
        _joules = 0.0;
    }

  private:
    void
    accrue(sim::Tick now)
    {
        if (now > _last) {
            _joules += _power * sim::toSec(now - _last);
            _last = now;
        }
    }

    sim::Tick _last = 0;
    Watts _power = 0.0;
    Joules _joules = 0.0;
};

} // namespace aw::power

#endif // AW_POWER_ENERGY_METER_HH
