#include "exp/emit.hh"

#include <cstdio>

#include "analysis/sampler.hh"
#include "analysis/trace.hh"
#include "sim/logging.hh"

namespace aw::exp {

namespace {

/** Schedule-independent double rendering ("%.10g"). */
std::string
num(double v)
{
    return sim::strprintf("%.10g", v);
}

/** Quote a CSV field only when it needs it. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            // RFC 8259 forbids raw control characters in strings.
            if (static_cast<unsigned char>(c) < 0x20)
                out += sim::strprintf("\\u%04x",
                                      static_cast<unsigned>(
                                          static_cast<unsigned char>(
                                              c)));
            else
                out += c;
        }
    }
    out += '"';
    return out;
}

const char *const kResidencyColumns[] = {
    "res_c0", "res_c1", "res_c1e", "res_c6a", "res_c6ae", "res_c6",
};
static_assert(sizeof(kResidencyColumns) /
                  sizeof(kResidencyColumns[0]) ==
              cstate::kNumCStates);

/**
 * Optional coordinate columns (DVFS and power-cap axes) appear only
 * when the spec actually swept the corresponding axis, so artifacts
 * of specs without a frequency or cap axis (every pre-DVFS and
 * pre-cap spec) stay byte-identical.
 */
struct AxisColumns
{
    explicit AxisColumns(const SweepResult &result)
        : freq(!result.spec.freqPolicies.empty()),
          slo(!result.spec.sloUs.empty()),
          cap(!result.spec.capWatts.empty())
    {}

    /** Append ",freq_policy" / ",slo_us" / ",cap_w" headers. */
    void header(std::string &out) const
    {
        if (freq)
            out += ",freq_policy";
        if (slo)
            out += ",slo_us";
        if (cap)
            out += ",cap_w";
    }

    /** Append this point's optional-coordinate CSV fields. */
    void csv(std::string &out, const GridPoint &pt) const
    {
        if (freq) {
            out += ',';
            out += csvField(pt.freqPolicy);
        }
        if (slo) {
            out += ',';
            out += num(pt.sloUs);
        }
        if (cap) {
            out += ',';
            out += num(pt.capWatts);
        }
    }

    /** Append the '"freq_policy": ..., ' JSON members. */
    void json(std::string &out, const GridPoint &pt) const
    {
        if (freq)
            out +=
                "\"freq_policy\": " + jsonString(pt.freqPolicy) +
                ", ";
        if (slo)
            out += "\"slo_us\": " + num(pt.sloUs) + ", ";
        if (cap)
            out += "\"cap_w\": " + num(pt.capWatts) + ", ";
    }

    bool freq;
    bool slo;
    bool cap;
};

} // namespace

std::string
csvHeader(const SweepResult &result)
{
    std::string h = "index,workload,config,governor";
    AxisColumns(result).header(h);
    h += ",policy,variant,servers,qps,"
         "replica,seed,requests,achieved_qps,window_s,power_w,"
         "mj_per_request,avg_latency_us,p99_latency_us,deep_idle,"
         "min_server_deep,max_server_deep,busiest_share";
    for (const char *col : kResidencyColumns) {
        h += ',';
        h += col;
    }
    if (!result.points.empty())
        for (const auto &[key, value] : result.points.front().extras) {
            (void)value;
            h += ',';
            h += csvField(key);
        }
    return h;
}

std::string
toCsv(const SweepResult &result)
{
    std::string out = csvHeader(result);
    out += '\n';
    const AxisColumns dvfs(result);
    for (const auto &p : result.points) {
        const auto &pt = p.point;
        out += sim::strprintf("%zu,%s,%s,%s", pt.index,
                              csvField(pt.workload).c_str(),
                              csvField(pt.config).c_str(),
                              csvField(pt.governor).c_str());
        dvfs.csv(out, pt);
        out += sim::strprintf(
            ",%s,%s,%u,%s,%u,%llu,%llu",
            csvField(pt.policy).c_str(),
            csvField(pt.variant).c_str(), pt.servers,
            num(pt.qps).c_str(), pt.replica,
            static_cast<unsigned long long>(pt.seed),
            static_cast<unsigned long long>(p.requests));
        for (const double v :
             {p.achievedQps, p.windowSeconds, p.powerW,
              p.energyPerRequestMj, p.avgLatencyUs, p.p99LatencyUs,
              p.deepIdleShare, p.minServerDeepShare,
              p.maxServerDeepShare, p.busiestShareOfLoad}) {
            out += ',';
            out += num(v);
        }
        for (const double share : p.residency) {
            out += ',';
            out += num(share);
        }
        for (const auto &[key, value] : p.extras) {
            (void)key;
            out += ',';
            out += num(value);
        }
        out += '\n';
    }
    return out;
}

std::string
toJson(const SweepResult &result)
{
    const auto &spec = result.spec;
    std::string out = "{\n";
    out += "  \"name\": " + jsonString(spec.name) + ",\n";
    out += sim::strprintf("  \"seed\": %llu,\n",
                          static_cast<unsigned long long>(spec.seed));
    out += sim::strprintf("  \"replicas\": %u,\n", spec.replicas);
    out += sim::strprintf("  \"points\": [");
    const AxisColumns dvfs(result);
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const auto &p = result.points[i];
        const auto &pt = p.point;
        out += i ? ",\n    {" : "\n    {";
        out += sim::strprintf("\"index\": %zu, ", pt.index);
        out += "\"workload\": " + jsonString(pt.workload) + ", ";
        out += "\"config\": " + jsonString(pt.config) + ", ";
        out += "\"governor\": " + jsonString(pt.governor) + ", ";
        dvfs.json(out, pt);
        out += "\"policy\": " + jsonString(pt.policy) + ", ";
        out += "\"variant\": " + jsonString(pt.variant) + ", ";
        out += sim::strprintf(
            "\"servers\": %u, \"qps\": %s, \"replica\": %u, "
            "\"seed\": %llu, \"requests\": %llu",
            pt.servers, num(pt.qps).c_str(), pt.replica,
            static_cast<unsigned long long>(pt.seed),
            static_cast<unsigned long long>(p.requests));
        const std::pair<const char *, double> metrics[] = {
            {"achieved_qps", p.achievedQps},
            {"window_s", p.windowSeconds},
            {"power_w", p.powerW},
            {"mj_per_request", p.energyPerRequestMj},
            {"avg_latency_us", p.avgLatencyUs},
            {"p99_latency_us", p.p99LatencyUs},
            {"deep_idle", p.deepIdleShare},
            {"min_server_deep", p.minServerDeepShare},
            {"max_server_deep", p.maxServerDeepShare},
            {"busiest_share", p.busiestShareOfLoad},
        };
        for (const auto &[key, value] : metrics)
            out += sim::strprintf(", \"%s\": %s", key,
                                  num(value).c_str());
        out += ", \"residency\": [";
        for (std::size_t s = 0; s < p.residency.size(); ++s) {
            if (s)
                out += ", ";
            out += num(p.residency[s]);
        }
        out += "]";
        for (const auto &[key, value] : p.extras)
            out += ", " + jsonString(key) + ": " + num(value);
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

namespace {

/** Shared coordinate prefix of a timeline row/object. */
const analysis::TimelineSeries &
pointTimeline(const PointResult &p)
{
    if (!p.timeline) {
        sim::fatal("toTimelineCsv/Json: point '%s' recorded no "
                   "timeline (set spec.timelineIntervalSeconds > 0)",
                   p.point.label().c_str());
    }
    return *p.timeline;
}

} // namespace

std::string
toTimelineCsv(const SweepResult &result)
{
    std::string out =
        sim::strprintf("# %s\n", analysis::kTimelineSchema);
    for (const auto &p : result.points) {
        const auto &series = pointTimeline(p);
        if (series.dropped == 0)
            continue;
        // Per-point overflow flags ride as comment lines so the
        // column schema (and every non-overflowing golden) stays
        // byte-identical.
        out += sim::strprintf(
            "# point %zu emitted %llu dropped %llu (ring overflow: "
            "oldest intervals missing)\n",
            p.point.index,
            static_cast<unsigned long long>(series.emitted),
            static_cast<unsigned long long>(series.dropped));
        sim::warn("aw-timeline/3: point '%s' interval ring "
                  "overflowed (%llu of %llu intervals dropped); "
                  "raise TimelineConfig::capacity or widen the "
                  "interval",
                  p.point.label().c_str(),
                  static_cast<unsigned long long>(series.dropped),
                  static_cast<unsigned long long>(series.emitted));
    }
    const AxisColumns dvfs(result);
    out += "index,workload,config,governor";
    dvfs.header(out);
    out += ",policy,variant,servers,qps,replica,";
    out += analysis::timelineCsvHeader();
    out += '\n';
    for (const auto &p : result.points) {
        const auto &series = pointTimeline(p);
        const auto &pt = p.point;
        std::string prefix = sim::strprintf(
            "%zu,%s,%s,%s", pt.index,
            csvField(pt.workload).c_str(),
            csvField(pt.config).c_str(),
            csvField(pt.governor).c_str());
        dvfs.csv(prefix, pt);
        prefix += sim::strprintf(
            ",%s,%s,%u,%s,%u,", csvField(pt.policy).c_str(),
            csvField(pt.variant).c_str(), pt.servers,
            num(pt.qps).c_str(), pt.replica);
        for (const auto &s : series.samples) {
            out += prefix;
            out += analysis::timelineCsvRow(series, s);
            out += '\n';
        }
    }
    return out;
}

std::string
toTimelineJson(const SweepResult &result)
{
    const auto &spec = result.spec;
    std::string out = "{\n";
    out += sim::strprintf("  \"schema\": \"%s\",\n",
                          analysis::kTimelineSchema);
    out += "  \"name\": " + jsonString(spec.name) + ",\n";
    out += sim::strprintf("  \"seed\": %llu,\n",
                          static_cast<unsigned long long>(spec.seed));
    out += sim::strprintf("  \"interval_s\": %s,\n",
                          num(spec.timelineIntervalSeconds).c_str());
    out += "  \"points\": [";
    const AxisColumns dvfs(result);
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const auto &p = result.points[i];
        const auto &series = pointTimeline(p);
        const auto &pt = p.point;
        out += i ? ",\n    {" : "\n    {";
        out += sim::strprintf("\"index\": %zu, ", pt.index);
        out += "\"workload\": " + jsonString(pt.workload) + ", ";
        out += "\"config\": " + jsonString(pt.config) + ", ";
        out += "\"governor\": " + jsonString(pt.governor) + ", ";
        dvfs.json(out, pt);
        out += "\"policy\": " + jsonString(pt.policy) + ", ";
        out += "\"variant\": " + jsonString(pt.variant) + ", ";
        out += sim::strprintf(
            "\"servers\": %u, \"qps\": %s, \"replica\": %u, "
            "\"cores\": %u, \"intervals_emitted\": %llu, "
            "\"intervals_dropped\": %llu, "
            "\"idle_observations\": %llu, "
            "\"idle_observation_mismatches\": %llu",
            pt.servers, num(pt.qps).c_str(), pt.replica,
            series.cores,
            static_cast<unsigned long long>(series.emitted),
            static_cast<unsigned long long>(series.dropped),
            static_cast<unsigned long long>(
                series.idleObservations),
            static_cast<unsigned long long>(
                series.idleObservationMismatches));
        out += ",\n    \"intervals\": " +
               analysis::timelineIntervalsJson(series) + ",\n";
        out += "    \"transitions\": " +
               analysis::timelineTransitionsJson(
                   series.transitions) +
               "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

namespace {

const analysis::TailAttribution &
pointTrace(const PointResult &p)
{
    if (!p.trace) {
        sim::fatal("toTraceCsv/Json: point '%s' recorded no request "
                   "trace (set spec.traceRequests = true)",
                   p.point.label().c_str());
    }
    return *p.trace;
}

const char *const kWakeShareColumns[] = {
    "p99_wake_share_c0",  "p99_wake_share_c1",
    "p99_wake_share_c1e", "p99_wake_share_c6a",
    "p99_wake_share_c6ae", "p99_wake_share_c6",
};
static_assert(sizeof(kWakeShareColumns) /
                  sizeof(kWakeShareColumns[0]) ==
              cstate::kNumCStates);

} // namespace

std::string
toTraceCsv(const SweepResult &result)
{
    std::string out =
        sim::strprintf("# %s\n", analysis::kTraceSchema);
    const AxisColumns dvfs(result);
    out += "index,workload,config,governor";
    dvfs.header(out);
    out += ",policy,variant,servers,"
           "qps,replica,spans,emitted,dropped,p99_threshold_us,"
           "p999_threshold_us,p999_latency_us,all_wake_share,"
           "all_queue_share,all_service_share,all_routing_share,"
           "p99_mean_latency_us,p99_mean_wake_us,p99_mean_queue_us,"
           "p99_mean_service_us,p99_mean_routing_us,p99_wake_share,"
           "p99_queue_share,p99_service_share,p99_routing_share,"
           "p999_wake_share,p999_queue_share,p999_service_share,"
           "p999_routing_share";
    for (const char *col : kWakeShareColumns) {
        out += ',';
        out += col;
    }
    out += '\n';
    for (const auto &p : result.points) {
        const auto &attr = pointTrace(p);
        const auto &pt = p.point;
        out += sim::strprintf("%zu,%s,%s,%s", pt.index,
                              csvField(pt.workload).c_str(),
                              csvField(pt.config).c_str(),
                              csvField(pt.governor).c_str());
        dvfs.csv(out, pt);
        out += sim::strprintf(
            ",%s,%s,%u,%s,%u,%llu,%llu,%llu",
            csvField(pt.policy).c_str(),
            csvField(pt.variant).c_str(), pt.servers,
            num(pt.qps).c_str(), pt.replica,
            static_cast<unsigned long long>(attr.spans),
            static_cast<unsigned long long>(attr.emitted),
            static_cast<unsigned long long>(attr.dropped));
        for (const double v :
             {attr.p99Us, attr.p999Us, p.p999LatencyUs,
              attr.all.wakeShare, attr.all.queueShare,
              attr.all.serviceShare, attr.all.routingShare,
              attr.p99.meanLatencyUs, attr.p99.meanWakeUs,
              attr.p99.meanQueueUs, attr.p99.meanServiceUs,
              attr.p99.meanRoutingUs, attr.p99.wakeShare,
              attr.p99.queueShare, attr.p99.serviceShare,
              attr.p99.routingShare, attr.p999.wakeShare,
              attr.p999.queueShare, attr.p999.serviceShare,
              attr.p999.routingShare}) {
            out += ',';
            out += num(v);
        }
        for (const double share : attr.p99.wakeShareOfLatency) {
            out += ',';
            out += num(share);
        }
        out += '\n';
    }
    return out;
}

std::string
toTraceJson(const SweepResult &result)
{
    const auto &spec = result.spec;
    std::string out = "{\n";
    out += sim::strprintf("  \"schema\": \"%s\",\n",
                          analysis::kTraceSchema);
    out += "  \"name\": " + jsonString(spec.name) + ",\n";
    out += sim::strprintf("  \"seed\": %llu,\n",
                          static_cast<unsigned long long>(spec.seed));
    out += sim::strprintf("  \"replicas\": %u,\n", spec.replicas);
    out += "  \"points\": [";
    const AxisColumns dvfs(result);
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        const auto &p = result.points[i];
        const auto &attr = pointTrace(p);
        const auto &pt = p.point;
        out += i ? ",\n    {" : "\n    {";
        out += sim::strprintf("\"index\": %zu, ", pt.index);
        out += "\"workload\": " + jsonString(pt.workload) + ", ";
        out += "\"config\": " + jsonString(pt.config) + ", ";
        out += "\"governor\": " + jsonString(pt.governor) + ", ";
        dvfs.json(out, pt);
        out += "\"policy\": " + jsonString(pt.policy) + ", ";
        out += "\"variant\": " + jsonString(pt.variant) + ", ";
        out += sim::strprintf(
            "\"servers\": %u, \"qps\": %s, \"replica\": %u, "
            "\"spans\": %llu, \"emitted\": %llu, "
            "\"dropped\": %llu",
            pt.servers, num(pt.qps).c_str(), pt.replica,
            static_cast<unsigned long long>(attr.spans),
            static_cast<unsigned long long>(attr.emitted),
            static_cast<unsigned long long>(attr.dropped));
        out += ", \"p99_us\": " + num(attr.p99Us);
        out += ", \"p999_us\": " + num(attr.p999Us);
        out += ", \"p999_latency_us\": " + num(p.p999LatencyUs);
        out += ",\n    \"cohorts\": " +
               analysis::attributionCohortsJson(attr) + "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        sim::fatal("cannot open '%s' for writing", path.c_str());
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    const int rc = std::fclose(f);
    if (n != content.size() || rc != 0)
        sim::fatal("short write to '%s'", path.c_str());
}

} // namespace aw::exp
