/**
 * @file
 * Declarative experiment specifications.
 *
 * Every figure and table in the paper -- and every fleet finding of
 * the cluster layer -- is a grid of (workload x configuration x
 * routing policy x fleet size x offered load x seed replica) runs.
 * An ExperimentSpec names those axes once; expand() turns it into
 * an ordered cartesian grid of GridPoints, each carrying a
 * deterministically derived seed, so a runner can execute the
 * points in any order (or in parallel) and still reproduce the same
 * ensemble bit for bit.
 */

#ifndef AW_EXP_SPEC_HH
#define AW_EXP_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "server/config.hh"
#include "workload/profiles.hh"

namespace aw::exp {

/**
 * One cell of the expanded grid. The coordinates identify the run;
 * index is the cell's position in the spec's expansion order and
 * seed is derived from (spec seed, index), so a point's RNG stream
 * depends only on the spec, never on scheduling.
 */
struct GridPoint
{
    std::size_t index = 0;

    std::string workload; //!< workload profile registry name
    std::string config;   //!< server configuration registry name
    std::string governor; //!< governor spec ("" = config default)
    std::string freqPolicy; //!< frequency governor ("" = static point)
    double sloUs = 0.0;   //!< latency SLO in us (0 = unconstrained)
    double capWatts = 0.0; //!< package power cap in W (0 = uncapped)
    std::string policy;   //!< routing policy ("" = single server)
    unsigned servers = 0; //!< fleet size (0 = single server)
    double qps = 0.0;     //!< effective offered load (already scaled)
    std::string variant;  //!< free-form axis ("" when unused)
    unsigned replica = 0; //!< seed replica number

    std::uint64_t seed = 0; //!< deriveSeed(spec.seed, index)

    /** "memcached/c1c6/pack-first/K8/400000qps/r0" style label. */
    std::string label() const;
};

/**
 * A declarative sweep: named axes plus run-shaping knobs.
 *
 * Fleet mode is selected by a non-empty fleetSizes axis; policies
 * then defaults to {"round-robin"} if left empty. With fleetSizes
 * empty the grid is single-server and policies must be empty.
 * variants is a free-form axis for custom point functions (e.g.
 * the Table 4 scheme registry); the default runner ignores it.
 */
struct ExperimentSpec
{
    std::string name = "sweep";

    /** @{ Grid axes. */
    std::vector<std::string> workloads{"memcached"};
    std::vector<std::string> configs{"baseline"};
    /** Governor specs (cstate::GovernorRegistry grammar, e.g.
     *  "menu", "teo", "static:C6"). Empty = each config's own
     *  default, leaving the grid identical to a spec without the
     *  axis. "oracle" is single-server only (it needs per-core
     *  arrival foreknowledge) and is rejected on fleet grids. */
    std::vector<std::string> governors;
    /** Frequency-governor specs (freq::FreqRegistry grammar, e.g.
     *  "performance", "ondemand", "racetohalt"). Empty = each
     *  config's static operating point (base, or Pn under runAtPn),
     *  leaving the grid -- and every emitted artifact -- identical
     *  to a spec without the axis. */
    std::vector<std::string> freqPolicies;
    /** Per-request latency-SLO axis in microseconds (freq::
     *  LatencyQoS). Empty = unconstrained; a 0 value inside the
     *  axis also means unconstrained, so one grid can compare
     *  with/without an SLO. */
    std::vector<double> sloUs;
    /** Package power-cap axis in watts (cap::CapConfig::capWatts).
     *  Empty = uncapped; a 0 value inside the axis also means
     *  uncapped, so one grid can compare capped against uncapped.
     *  Leaving the axis empty keeps the grid -- and every emitted
     *  artifact -- identical to a spec without the axis. */
    std::vector<double> capWatts;
    std::vector<std::string> policies;
    std::vector<unsigned> fleetSizes;
    std::vector<double> qps{100e3};
    std::vector<std::string> variants;
    unsigned replicas = 1;
    /** @} */

    /** Interpret the qps axis as per-server load, scaled by the
     *  point's fleet size (fleet-size scaling sweeps). */
    bool qpsPerServer = false;

    /** Top-level seed every grid point derives its stream from. */
    std::uint64_t seed = 42;

    /** @{ Run shaping. seconds <= 0 selects the simulator's
     *  auto-sized window (ServerSim::run() / FleetSim::run()
     *  defaults, which pick their own warmup); warmupSeconds < 0 =
     *  seconds/10. Setting warmupSeconds without seconds is a
     *  validation error. */
    double seconds = 0.0;
    double warmupSeconds = -1.0;
    /** @} */

    /** Core-count override (0 = config default). */
    unsigned cores = 0;

    /** Streaming-telemetry interval (seconds); 0 disables the
     *  sampler entirely (the default -- no observer is attached,
     *  so a disabled sweep pays one untaken branch per event).
     *  When > 0 every point records an aw-timeline/3 series into
     *  PointResult::timeline (see analysis/sampler.hh and
     *  docs/TELEMETRY.md); the sampler is passive, so all other
     *  results and artifacts stay byte-identical. */
    double timelineIntervalSeconds = 0.0;

    /** Record a request-path trace per point (see analysis/trace.hh
     *  and docs/TRACING.md): every point then carries a tail-latency
     *  attribution in PointResult::trace (emitted by
     *  toTraceCsv/Json, never by the regular artifact emitters) and
     *  p99.9 in PointResult::p999LatencyUs. The tracer is passive,
     *  so all other results and artifacts stay byte-identical;
     *  disabled (the default) it costs nothing. */
    bool traceRequests = false;

    /** Couple the RC thermal model (cap::CapConfig::thermalEnabled
     *  with its default ThermalParams) on every point. A spec-level
     *  knob, not an axis: thermal coupling changes the physical
     *  machine being swept, like cores. Disabled (the default) the
     *  grid stays identical to a spec without the knob. */
    bool thermal = false;

    /** Dispatch-policy override applied to every point ("" = each
     *  config's default; see server::dispatchPolicyNames()). */
    std::string dispatch;

    /** Worker threads WITHIN each fleet point (FleetConfig::
     *  fleetThreads): the per-server phase of a fleet run
     *  partitions its K independent server simulations across this
     *  many threads, bit-identically to the serial reference.
     *  Composes with the SweepRunner's across-points pool; the
     *  default of 1 keeps small grids on the across-points axis.
     *  0 = hardware concurrency. Ignored by single-server points. */
    unsigned fleetThreads = 1;

    /** Routing-decision epoch length in seconds (FleetConfig::
     *  epochSeconds); results are byte-identical for any value.
     *  0 = one epoch spanning the run. Must be finite and >= 0.
     *  Ignored by single-server points. */
    double epochSeconds = 0.0;

    /** fatal() on empty or unknown axis values. */
    void validate() const;

    /** Number of grid cells. */
    std::size_t gridSize() const;

    /** The ordered cartesian grid. Expansion order (outer to
     *  inner): workload, config, governor, freq policy, SLO,
     *  power cap, policy, fleet size, qps, variant, replica.
     *  Calls validate(). */
    std::vector<GridPoint> expand() const;
};

/** @{ Name registries shared by awsim, awsweep and the spec
 *  validator. Unknown names are fatal() with the known list. */
workload::WorkloadProfile profileByName(const std::string &name);
server::ServerConfig configByName(const std::string &name);
const std::vector<std::string> &workloadNames();
const std::vector<std::string> &configNames();
/** @} */

} // namespace aw::exp

#endif // AW_EXP_SPEC_HH
