/**
 * @file
 * Simulation-speed telemetry: the pinned awperf scenario registry.
 *
 * A PerfScenario is a fixed, named simulation workload (exact spec,
 * seed, horizon and thread count) whose wall-clock cost is tracked
 * release to release. The registry is deliberately small and
 * *pinned*: changing a scenario's definition invalidates every
 * stored baseline, so additions get new names instead of edits.
 *
 * Measurements report wall seconds (best of N repeats -- the
 * repeatable cost of the work, robust against scheduler noise),
 * simulated server-seconds per wall second and kernel events per
 * second. The JSON rendering (schema "aw-perf/1") is what
 * results/BENCH_perf.json contains and what scripts/check_perf.py
 * gates CI on; see docs/PERFORMANCE.md for the schema contract.
 */

#ifndef AW_EXP_PERF_HH
#define AW_EXP_PERF_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace aw::exp {

/** Work accomplished by one scenario execution. */
struct PerfTotals
{
    /** Simulated server-seconds: each simulator instance's horizon
     *  (measured window + warmup), summed over instances -- a fleet
     *  of 8 servers simulating 0.33 s contributes 2.64 s. */
    double simSeconds = 0.0;

    /** Discrete-event kernel events executed. */
    std::uint64_t events = 0;

    /** Requests completed in the measured windows. */
    std::uint64_t requests = 0;
};

/**
 * One pinned scenario: a name, a human description and the runner
 * (single-threaded unless the name says otherwise).
 */
struct PerfScenario
{
    std::string name;
    std::string description;
    std::function<PerfTotals()> run;
};

/** The pinned registry, in reporting order. */
const std::vector<PerfScenario> &perfScenarios();

/** Lookup by name; nullptr when unknown. */
const PerfScenario *findPerfScenario(const std::string &name);

/** One measured scenario. */
struct PerfMeasurement
{
    std::string name;
    unsigned repeat = 0;
    double wallSeconds = 0.0; //!< best (minimum) over the repeats
    PerfTotals totals;

    double
    simPerWall() const
    {
        return wallSeconds > 0.0 ? totals.simSeconds / wallSeconds
                                 : 0.0;
    }

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(totals.events) / wallSeconds
                   : 0.0;
    }

    double
    requestsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(totals.requests) /
                         wallSeconds
                   : 0.0;
    }
};

/**
 * Run @p scenario @p repeat times (>= 1) and keep the best wall
 * clock; totals are identical across repeats (the simulations are
 * deterministic) and taken from the last run.
 */
PerfMeasurement measurePerfScenario(const PerfScenario &scenario,
                                    unsigned repeat);

/** The JSON schema identifier emitted (and checked by
 *  scripts/check_perf.py). */
inline constexpr const char *kPerfSchema = "aw-perf/1";

/** Render measurements as the stable aw-perf/1 JSON document. */
std::string perfToJson(const std::vector<PerfMeasurement> &runs);

} // namespace aw::exp

#endif // AW_EXP_PERF_HH
