#include "exp/perf.hh"

#include <chrono>

#include "cluster/fleet.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "server/server_sim.hh"
#include "sim/logging.hh"

namespace aw::exp {

namespace {

/** Horizon of a spec-driven run: measured window plus warmup. */
double
horizonSeconds(const ExperimentSpec &spec)
{
    const double warmup = spec.warmupSeconds >= 0.0
                              ? spec.warmupSeconds
                              : spec.seconds / 10.0;
    return spec.seconds + warmup;
}

/** Execute a sweep single-threaded and fold its totals. */
PerfTotals
sweepTotals(const ExperimentSpec &spec)
{
    const SweepRunner runner(1);
    const auto result = runner.run(spec);
    PerfTotals t;
    for (const auto &p : result.points) {
        const unsigned instances =
            p.point.servers > 0 ? p.point.servers : 1;
        t.simSeconds += horizonSeconds(spec) * instances;
        t.events += p.events;
        t.requests += p.requests;
    }
    return t;
}

std::vector<PerfScenario>
makeScenarios()
{
    std::vector<PerfScenario> s;

    // One loaded server: the single-point building block every
    // sweep scales from (memcached on the AW config at mid load).
    s.push_back(PerfScenario{
        "single_memcached",
        "1 server x memcached x aw config @ 200 KQPS, 1.0 s",
        []() {
            server::ServerSim srv(configByName("aw"),
                                  profileByName("memcached"),
                                  200e3);
            const auto r =
                srv.run(sim::fromSec(1.0), sim::fromSec(0.1));
            PerfTotals t;
            t.simSeconds = 1.1;
            t.events = r.events;
            t.requests = r.requests;
            return t;
        }});

    // The pinned fleet sweep: the PR-2/PR-3 headline grid, single
    // thread -- the scenario the >= 2x kernel-overhaul claim and
    // the CI regression gate are anchored on.
    s.push_back(PerfScenario{
        "fleet_sweep",
        "8-server fleet x {aw,c1c6} x {round-robin,pack-first} "
        "@ 400 KQPS, 0.3 s, 1 thread",
        []() {
            ExperimentSpec spec;
            spec.name = "awperf-fleet";
            spec.workloads = {"memcached"};
            spec.configs = {"aw", "c1c6"};
            spec.policies = {"round-robin", "pack-first"};
            spec.fleetSizes = {8};
            spec.qps = {400e3};
            spec.seconds = 0.3;
            spec.seed = 42;
            return sweepTotals(spec);
        }});

    // The governors axis: exercises every history-driven policy's
    // per-idle-period hot path (select/observe/promotion).
    s.push_back(PerfScenario{
        "governors_axis",
        "1 server x {c1c6,aw} x {menu,teo,ladder} x {50,200} KQPS, "
        "0.3 s, 1 thread",
        []() {
            ExperimentSpec spec;
            spec.name = "awperf-governors";
            spec.workloads = {"memcached"};
            spec.configs = {"c1c6", "aw"};
            spec.governors = {"menu", "teo", "ladder"};
            spec.qps = {50e3, 200e3};
            spec.seconds = 0.3;
            spec.seed = 42;
            return sweepTotals(spec);
        }});

    // The same pinned fleet sweep with the streaming sampler on:
    // gates the observer's overhead. Its event count must equal
    // fleet_sweep's exactly (the sampler observes, never perturbs,
    // the event stream) and its events/s ratio bounds the telemetry
    // tax.
    s.push_back(PerfScenario{
        "fleet_sweep_timeline",
        "fleet_sweep with --timeline (10 ms sampler) enabled, "
        "1 thread",
        []() {
            ExperimentSpec spec;
            spec.name = "awperf-fleet-timeline";
            spec.workloads = {"memcached"};
            spec.configs = {"aw", "c1c6"};
            spec.policies = {"round-robin", "pack-first"};
            spec.fleetSizes = {8};
            spec.qps = {400e3};
            spec.seconds = 0.3;
            spec.seed = 42;
            spec.timelineIntervalSeconds = 0.01;
            return sweepTotals(spec);
        }});

    // The same pinned fleet sweep with the request tracer on: gates
    // the tracer's overhead the same way. Its event and request
    // counts must equal fleet_sweep's exactly (the tracer is
    // passive) -- a CI-enforced proof that tracing never perturbs
    // the simulation.
    s.push_back(PerfScenario{
        "fleet_sweep_trace",
        "fleet_sweep with --trace-requests (span tracer) enabled, "
        "1 thread",
        []() {
            ExperimentSpec spec;
            spec.name = "awperf-fleet-trace";
            spec.workloads = {"memcached"};
            spec.configs = {"aw", "c1c6"};
            spec.policies = {"round-robin", "pack-first"};
            spec.fleetSizes = {8};
            spec.qps = {400e3};
            spec.seconds = 0.3;
            spec.seed = 42;
            spec.traceRequests = true;
            return sweepTotals(spec);
        }});

    // The DVFS governance axes: the joint freq x idle grid behind
    // the race-to-halt headline. Gates the dynamic-frequency hot
    // path -- per-level table swaps, ramp events, the ondemand/
    // conservative sampling ticks and racetohalt's edge observes --
    // against the static operating point's throughput.
    s.push_back(PerfScenario{
        "fleet_sweep_dvfs",
        "1 server x {c1c6,aw} x {racetohalt,ondemand,powersave} x "
        "slo {0,8 us} @ 200 KQPS, 0.3 s, 1 thread",
        []() {
            ExperimentSpec spec;
            spec.name = "awperf-dvfs";
            spec.workloads = {"memcached"};
            spec.configs = {"c1c6", "aw"};
            spec.freqPolicies = {"racetohalt", "ondemand",
                                 "powersave"};
            spec.sloUs = {0.0, 8.0};
            spec.qps = {200e3};
            spec.seconds = 0.3;
            spec.seed = 42;
            return sweepTotals(spec);
        }});

    // The power-capping axis (ROADMAP item 3): a capped flash
    // crowd through the headroom-routed fleet. Gates the cap
    // control loop's hot path -- per-interval controller steps,
    // forced-idle nap injection, the closed-form RC thermal
    // integration and the epoch budget redistribution -- under the
    // load shape capping exists for: a surge the provisioned
    // budget cannot absorb at full speed.
    s.push_back(PerfScenario{
        "fleet_sweep_cap",
        "4-server capped flash crowd (3x spike) x {aw_c6a,c1c6} @ "
        "18 W cap, thermal, route-to-headroom, 0.4 s, 1 thread",
        []() {
            PerfTotals t;
            for (const char *config : {"aw_c6a", "c1c6"}) {
                cluster::FleetConfig fc;
                fc.servers = 4;
                fc.server = configByName(config);
                fc.server.idlePromotion = true;
                fc.server.cap.capWatts = 18.0;
                fc.server.cap.thermalEnabled = true;
                fc.routing = "route-to-headroom";
                fc.seed = 42;
                fc.schedule = cluster::RateSchedule::flashCrowd(
                    sim::fromSec(0.4), 3.0);
                fc.epochSeconds = 0.05;
                cluster::FleetSim fleet(
                    fc, profileByName("memcached"), 200e3);
                const auto r = fleet.run(sim::fromSec(0.4),
                                         sim::fromSec(0.04));
                t.simSeconds += 0.44 * fc.servers;
                t.events += r.events;
                t.requests += r.requests;
            }
            return t;
        }});

    // Warehouse scale (ROADMAP item 1): a 10,000-server diurnal
    // memcached "day" through the epoch-parallel fleet kernel, as
    // the two paired headline points -- the AW config consolidated
    // by pack-first (mostly-idle fleet: the homogeneous-idle fast
    // path carries almost every server) and the tuned-C6 baseline
    // spread by round-robin (10k individually simulated servers).
    // Hardware fleet threads, 0.25 s routing epochs; results are
    // bit-identical to the serial reference either way.
    s.push_back(PerfScenario{
        "fleet_10k",
        "10,000-server diurnal memcached day: {aw x pack-first, "
        "c1c6 x round-robin} @ 3 MQPS, 2 s day, hardware fleet "
        "threads",
        []() {
            struct FleetPoint
            {
                const char *config;
                const char *routing;
            };
            PerfTotals t;
            for (const FleetPoint &p :
                 {FleetPoint{"aw", "pack-first"},
                  FleetPoint{"c1c6", "round-robin"}}) {
                cluster::FleetConfig fc;
                fc.servers = 10000;
                fc.server = configByName(p.config);
                fc.server.idlePromotion = true;
                fc.routing = p.routing;
                fc.seed = 42;
                fc.schedule = cluster::RateSchedule::sinusoidal(
                    sim::fromSec(2.0), 0.6);
                fc.fleetThreads = 0; // hardware concurrency
                fc.epochSeconds = 0.25;
                cluster::FleetSim fleet(
                    fc, profileByName("memcached"), 3e6);
                const auto r = fleet.run(sim::fromSec(2.0),
                                         sim::fromSec(0.2));
                t.simSeconds += 2.2 * fc.servers;
                t.events += r.events;
                t.requests += r.requests;
            }
            return t;
        }});

    return s;
}

} // namespace

const std::vector<PerfScenario> &
perfScenarios()
{
    static const auto scenarios = makeScenarios();
    return scenarios;
}

const PerfScenario *
findPerfScenario(const std::string &name)
{
    for (const auto &s : perfScenarios())
        if (s.name == name)
            return &s;
    return nullptr;
}

PerfMeasurement
measurePerfScenario(const PerfScenario &scenario, unsigned repeat)
{
    if (repeat == 0)
        sim::fatal("measurePerfScenario: repeat must be >= 1");
    PerfMeasurement m;
    m.name = scenario.name;
    m.repeat = repeat;
    for (unsigned i = 0; i < repeat; ++i) {
        const auto start = std::chrono::steady_clock::now();
        m.totals = scenario.run();
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (i == 0 || wall < m.wallSeconds)
            m.wallSeconds = wall;
    }
    return m;
}

std::string
perfToJson(const std::vector<PerfMeasurement> &runs)
{
    std::string out = "{\n";
    out += sim::strprintf("  \"schema\": \"%s\",\n", kPerfSchema);
    out += "  \"generator\": \"awperf\",\n";
    out += "  \"scenarios\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const auto &m = runs[i];
        out += i ? ",\n    {" : "\n    {";
        out += sim::strprintf(
            "\"name\": \"%s\", \"repeat\": %u, "
            "\"wall_s\": %.6g, \"sim_s\": %.10g, "
            "\"events\": %llu, \"requests\": %llu, "
            "\"sim_per_wall\": %.6g, \"events_per_s\": %.6g, "
            "\"requests_per_s\": %.6g}",
            m.name.c_str(), m.repeat, m.wallSeconds,
            m.totals.simSeconds,
            static_cast<unsigned long long>(m.totals.events),
            static_cast<unsigned long long>(m.totals.requests),
            m.simPerWall(), m.eventsPerSec(), m.requestsPerSec());
    }
    out += "\n  ]\n}\n";
    return out;
}

} // namespace aw::exp
