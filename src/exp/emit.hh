/**
 * @file
 * Sweep artifact emission: CSV and JSON with a stable schema.
 *
 * The emitters are pure functions of the SweepResult's points (the
 * wall-clock is deliberately excluded), so two runs of the same
 * spec produce byte-identical artifacts regardless of thread count
 * -- which is what the determinism tests and the golden regression
 * suite diff against.
 */

#ifndef AW_EXP_EMIT_HH
#define AW_EXP_EMIT_HH

#include <string>

#include "exp/runner.hh"

namespace aw::exp {

/**
 * The fixed CSV column schema (extras columns, taken from the
 * first point, are appended after these):
 *
 *   index,workload,config,policy,variant,servers,qps,replica,seed,
 *   requests,achieved_qps,window_s,power_w,mj_per_request,
 *   avg_latency_us,p99_latency_us,deep_idle,min_server_deep,
 *   max_server_deep,busiest_share,res_c0,res_c1,res_c1e,res_c6a,
 *   res_c6ae,res_c6
 */
std::string csvHeader(const SweepResult &result);

/** Render the whole sweep as CSV (header + one row per point). */
std::string toCsv(const SweepResult &result);

/** Render the whole sweep as a JSON document. */
std::string toJson(const SweepResult &result);

/**
 * Render every point's recorded timeline as one aw-timeline/3 CSV:
 * a `# aw-timeline/3` schema line, then a header of the point
 * coordinates followed by analysis::timelineCsvHeader() columns,
 * then one row per retained interval per point (grid order).
 * fatal() if any point lacks a timeline (run the sweep with
 * spec.timelineIntervalSeconds > 0).
 */
std::string toTimelineCsv(const SweepResult &result);

/** The same timelines as one JSON document (schema, spec identity,
 *  then per-point interval arrays and transition maps). */
std::string toTimelineJson(const SweepResult &result);

/**
 * Render every point's tail-latency attribution as one aw-trace/1
 * CSV: a `# aw-trace/1` schema line, then one row per point (grid
 * order) of the point coordinates followed by the attribution
 * columns -- span accounting, nearest-rank thresholds, p99.9
 * latency, per-cohort component shares (including the headline
 * p99_wake_share and p99_queue_share) and the p99 cohort's
 * per-from-state wake shares. fatal() if any point lacks an
 * attribution (run the sweep with spec.traceRequests = true).
 */
std::string toTraceCsv(const SweepResult &result);

/** The same attributions as one JSON document (schema, spec
 *  identity, then per-point cohort objects). */
std::string toTraceJson(const SweepResult &result);

/** Write @p content to @p path; fatal() on I/O errors. */
void writeFile(const std::string &path, const std::string &content);

} // namespace aw::exp

#endif // AW_EXP_EMIT_HH
