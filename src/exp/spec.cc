#include "exp/spec.hh"

#include <cmath>

#include "cluster/routing.hh"
#include "cstate/governors.hh"
#include "freq/policies.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace aw::exp {

namespace {

/** One registry table per axis: the lookup functions and the
 *  advertised name lists both derive from it, so a new entry can
 *  never be half-registered. */
template <typename T> struct RegistryEntry
{
    const char *name;
    T (*make)();
};

const std::vector<RegistryEntry<workload::WorkloadProfile>> &
workloadRegistry()
{
    using workload::WorkloadProfile;
    static const std::vector<RegistryEntry<WorkloadProfile>> reg{
        {"memcached", &WorkloadProfile::memcached},
        {"mysql", &WorkloadProfile::mysql},
        {"kafka", &WorkloadProfile::kafka},
        {"specpower", &WorkloadProfile::specpower},
        {"nginx", &WorkloadProfile::nginx},
        {"spark", &WorkloadProfile::spark},
        {"hive", &WorkloadProfile::hive},
    };
    return reg;
}

const std::vector<RegistryEntry<server::ServerConfig>> &
configRegistry()
{
    using server::ServerConfig;
    static const std::vector<RegistryEntry<ServerConfig>> reg{
        {"baseline", &ServerConfig::baseline},
        {"aw", &ServerConfig::awBaseline},
        {"nt_baseline", &ServerConfig::ntBaseline},
        {"nt_no_c6", &ServerConfig::ntNoC6},
        {"nt_no_c6_no_c1e", &ServerConfig::ntNoC6NoC1e},
        {"nt_aw", &ServerConfig::ntAwNoC6NoC1e},
        {"t_no_c6", &ServerConfig::tNoC6},
        {"t_no_c6_no_c1e", &ServerConfig::tNoC6NoC1e},
        {"t_aw", &ServerConfig::tAwNoC6NoC1e},
        {"c1c6", &ServerConfig::legacyC1C6},
        {"c1only", &ServerConfig::legacyC1Only},
        {"aw_c6a", &ServerConfig::awC6aOnly},
    };
    return reg;
}

template <typename T>
T
byName(const std::vector<RegistryEntry<T>> &reg,
       const std::string &name, const char *what)
{
    for (const auto &entry : reg)
        if (name == entry.name)
            return entry.make();
    std::string known;
    for (const auto &entry : reg) {
        if (!known.empty())
            known += '|';
        known += entry.name;
    }
    sim::fatal("unknown %s '%s' (%s)", what, name.c_str(),
               known.c_str());
}

template <typename T>
std::vector<std::string>
registryNames(const std::vector<RegistryEntry<T>> &reg)
{
    std::vector<std::string> names;
    names.reserve(reg.size());
    for (const auto &entry : reg)
        names.emplace_back(entry.name);
    return names;
}

} // namespace

workload::WorkloadProfile
profileByName(const std::string &name)
{
    return byName(workloadRegistry(), name, "workload");
}

server::ServerConfig
configByName(const std::string &name)
{
    return byName(configRegistry(), name, "config");
}

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names =
        registryNames(workloadRegistry());
    return names;
}

const std::vector<std::string> &
configNames()
{
    static const std::vector<std::string> names =
        registryNames(configRegistry());
    return names;
}

std::string
GridPoint::label() const
{
    std::string l = workload + "/" + config;
    if (!governor.empty())
        l += "/" + governor;
    if (!freqPolicy.empty())
        l += "/" + freqPolicy;
    if (sloUs > 0.0)
        l += sim::strprintf("/slo%gus", sloUs);
    if (capWatts > 0.0)
        l += sim::strprintf("/cap%gW", capWatts);
    if (!policy.empty())
        l += "/" + policy;
    if (servers > 0)
        l += sim::strprintf("/K%u", servers);
    l += sim::strprintf("/%.0fqps", qps);
    if (!variant.empty())
        l += "/" + variant;
    l += sim::strprintf("/r%u", replica);
    return l;
}

void
ExperimentSpec::validate() const
{
    if (workloads.empty())
        sim::fatal("ExperimentSpec '%s': empty workload axis",
                   name.c_str());
    if (configs.empty())
        sim::fatal("ExperimentSpec '%s': empty config axis",
                   name.c_str());
    if (qps.empty())
        sim::fatal("ExperimentSpec '%s': empty qps axis",
                   name.c_str());
    if (replicas == 0)
        sim::fatal("ExperimentSpec '%s': need at least one replica",
                   name.c_str());
    if (fleetSizes.empty() && !policies.empty())
        sim::fatal("ExperimentSpec '%s': routing policies require a "
                   "fleet-size axis",
                   name.c_str());
    if (qpsPerServer && fleetSizes.empty())
        sim::fatal("ExperimentSpec '%s': qpsPerServer requires a "
                   "fleet-size axis",
                   name.c_str());
    if (warmupSeconds >= 0.0 && seconds <= 0.0)
        sim::fatal("ExperimentSpec '%s': warmupSeconds requires an "
                   "explicit seconds (the auto-sized window picks "
                   "its own warmup)",
                   name.c_str());
    if (timelineIntervalSeconds < 0.0 ||
        !std::isfinite(timelineIntervalSeconds))
        sim::fatal("ExperimentSpec '%s': timelineIntervalSeconds "
                   "must be >= 0 (0 disables the sampler; got %f)",
                   name.c_str(), timelineIntervalSeconds);
    if (epochSeconds < 0.0 || !std::isfinite(epochSeconds))
        sim::fatal("ExperimentSpec '%s': epochSeconds must be a "
                   "finite non-negative number (0 = one epoch "
                   "spanning the run; got %f)",
                   name.c_str(), epochSeconds);

    // Resolve every axis value now so a bad name dies here, on the
    // caller's thread, not inside a worker mid-sweep.
    for (const auto &w : workloads)
        profileByName(w);
    for (const auto &c : configs)
        configByName(c);
    for (const auto &g : governors) {
        // Resolve every (config, governor) pairing the grid will
        // actually run, so a static:<state> spec naming a state
        // some config disables dies here -- before the sweep
        // launches -- instead of killing a worker mid-run with all
        // completed points lost.
        for (const auto &c : configs) {
            const auto policy =
                cstate::makeGovernor(g, configByName(c).cstates);
            if (policy->needsOracle() && !fleetSizes.empty())
                sim::fatal("ExperimentSpec '%s': governor '%s' is "
                           "single-server only (fleet dispatch has "
                           "no per-core arrival foreknowledge)",
                           name.c_str(), g.c_str());
            if (policy->needsOracle() && dispatch == "packing")
                sim::fatal("ExperimentSpec '%s': governor '%s' "
                           "needs static dispatch",
                           name.c_str(), g.c_str());
        }
    }
    for (const auto &f : freqPolicies) {
        // Resolve every (config, freq policy) pairing against the
        // config's own P-state table, mirroring the governor check:
        // a bad spec dies here, not inside a sweep worker.
        for (const auto &c : configs)
            freq::makeFreqPolicy(
                f, freq::PStateLadder(configByName(c).pstates));
    }
    for (const double s : sloUs)
        if (s < 0.0 || !std::isfinite(s))
            sim::fatal("ExperimentSpec '%s': sloUs values must be "
                       "finite and non-negative (0 = unconstrained; "
                       "got %f)",
                       name.c_str(), s);
    for (const double w : capWatts)
        if (w < 0.0 || !std::isfinite(w))
            sim::fatal("ExperimentSpec '%s': capWatts values must "
                       "be finite and non-negative (0 = uncapped; "
                       "got %f)",
                       name.c_str(), w);
    if (!dispatch.empty())
        server::dispatchPolicyByName(dispatch);
    for (const auto &p : policies)
        cluster::makeRoutingPolicy(p, 1);
    for (const unsigned k : fleetSizes)
        if (k == 0)
            sim::fatal("ExperimentSpec '%s': fleet size 0",
                       name.c_str());
    for (const double q : qps)
        if (!(q > 0.0) || !std::isfinite(q))
            sim::fatal("ExperimentSpec '%s': qps values must be "
                       "positive (got %f)",
                       name.c_str(), q);
}

std::size_t
ExperimentSpec::gridSize() const
{
    const std::size_t fleets =
        fleetSizes.empty() ? 1 : fleetSizes.size();
    const std::size_t pols =
        fleetSizes.empty() ? 1
                           : (policies.empty() ? 1 : policies.size());
    const std::size_t vars = variants.empty() ? 1 : variants.size();
    const std::size_t govs = governors.empty() ? 1 : governors.size();
    const std::size_t freqs =
        freqPolicies.empty() ? 1 : freqPolicies.size();
    const std::size_t slos = sloUs.empty() ? 1 : sloUs.size();
    const std::size_t caps = capWatts.empty() ? 1 : capWatts.size();
    return workloads.size() * configs.size() * govs * freqs * slos *
           caps * pols * fleets * qps.size() * vars * replicas;
}

std::vector<GridPoint>
ExperimentSpec::expand() const
{
    validate();

    // Dummy single-element axes keep the loop nest uniform.
    const std::vector<std::string> pols =
        fleetSizes.empty()
            ? std::vector<std::string>{""}
            : (policies.empty()
                   ? std::vector<std::string>{"round-robin"}
                   : policies);
    const std::vector<unsigned> fleets =
        fleetSizes.empty() ? std::vector<unsigned>{0} : fleetSizes;
    const std::vector<std::string> vars =
        variants.empty() ? std::vector<std::string>{""} : variants;
    const std::vector<std::string> govs =
        governors.empty() ? std::vector<std::string>{""} : governors;
    const std::vector<std::string> freqs =
        freqPolicies.empty() ? std::vector<std::string>{""}
                             : freqPolicies;
    const std::vector<double> slos =
        sloUs.empty() ? std::vector<double>{0.0} : sloUs;
    const std::vector<double> caps =
        capWatts.empty() ? std::vector<double>{0.0} : capWatts;

    std::vector<GridPoint> grid;
    grid.reserve(gridSize());
    for (const auto &w : workloads)
      for (const auto &c : configs)
        for (const auto &g : govs)
          for (const auto &f : freqs)
            for (const double s : slos)
             for (const double cw : caps)
              for (const auto &p : pols)
                for (const unsigned k : fleets)
                    for (const double q : qps)
                        for (const auto &v : vars)
                            for (unsigned r = 0; r < replicas; ++r) {
                                GridPoint pt;
                                pt.index = grid.size();
                                pt.workload = w;
                                pt.config = c;
                                pt.governor = g;
                                pt.freqPolicy = f;
                                pt.sloUs = s;
                                pt.capWatts = cw;
                                pt.policy = p;
                                pt.servers = k;
                                pt.qps = qpsPerServer ? q * k : q;
                                pt.variant = v;
                                pt.replica = r;
                                pt.seed =
                                    sim::deriveSeed(seed, pt.index);
                                grid.push_back(std::move(pt));
                            }
    return grid;
}

} // namespace aw::exp
