/**
 * @file
 * Parallel sweep execution.
 *
 * SweepRunner expands an ExperimentSpec and executes the grid
 * points on a work-stealing sim::ThreadPool; every point's RNG
 * stream is derived from (spec seed, grid index) and each result is
 * written into its pre-assigned slot, so the folded SweepResult is
 * bit-identical regardless of thread count or completion order.
 */

#ifndef AW_EXP_RUNNER_HH
#define AW_EXP_RUNNER_HH

#include <array>
#include <functional>
#include <optional>
#include <vector>

#include "analysis/sampler.hh"
#include "analysis/trace.hh"
#include "cstate/cstate.hh"
#include "exp/spec.hh"
#include "sim/thread_pool.hh"

namespace aw::exp {

/** The pool moved to the base layer (sim/thread_pool.hh) so the
 *  cluster layer can parallelize within a fleet point; the exp-side
 *  name stays valid for existing users. */
using ThreadPool = sim::ThreadPool;

/**
 * Metrics of one executed grid point. The simulation fields are
 * filled by the default point function (single-server and fleet
 * runs alike; for a single server, power is the package power and
 * the per-server spread collapses to the deep-idle share). Custom
 * point functions may instead (or additionally) report named
 * extras, which the emitters append as CSV/JSON columns; every
 * point of a sweep must report the same extras keys in the same
 * order.
 */
struct PointResult
{
    GridPoint point;

    /** Kernel events executed by this point's simulation (perf
     *  telemetry for awperf; never part of the CSV/JSON schema). */
    std::uint64_t events = 0;

    std::uint64_t requests = 0;
    double achievedQps = 0.0;
    double windowSeconds = 0.0;
    double powerW = 0.0; //!< package power (fleet: summed)
    double energyPerRequestMj = 0.0;
    double avgLatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    /** p99.9 of the same pooled samples; filled only when the spec
     *  set traceRequests (kept out of the pinned CSV schema). */
    double p999LatencyUs = 0.0;
    double deepIdleShare = 0.0;
    double minServerDeepShare = 0.0;
    double maxServerDeepShare = 0.0;
    double busiestShareOfLoad = 0.0; //!< 1/K even .. 1.0 (single srv)
    std::array<double, cstate::kNumCStates> residency{};

    std::vector<std::pair<std::string, double>> extras;

    /** Streaming interval telemetry; present only when the spec set
     *  timelineIntervalSeconds > 0 (fleet points carry the folded
     *  per-server series). Emitted by toTimelineCsv/Json, never by
     *  the regular artifact emitters. */
    std::optional<analysis::TimelineSeries> timeline;

    /** Tail-latency attribution of this point's request trace;
     *  present only when the spec set traceRequests. The raw spans
     *  are attributed and discarded point-by-point to bound sweep
     *  memory -- per-span artifacts come from awsim, not sweeps.
     *  Emitted by toTraceCsv/Json, never by the regular artifact
     *  emitters. */
    std::optional<analysis::TailAttribution> trace;
};

/** Execute one grid point; must be pure in the point (same point,
 *  same result) for the determinism guarantee to hold. */
using PointFn = std::function<PointResult(const GridPoint &)>;

/**
 * An ordered sweep: one PointResult per grid cell, in expansion
 * order.
 */
struct SweepResult
{
    ExperimentSpec spec;
    std::vector<PointResult> points;

    /** Wall-clock of the run (diagnostics only; never emitted into
     *  artifacts, which must be schedule-independent). */
    double wallSeconds = 0.0;

    /** Coordinate filter for lookups; unset fields match any. */
    struct Query
    {
        std::optional<std::string> workload;
        std::optional<std::string> config;
        std::optional<std::string> governor;
        std::optional<std::string> freqPolicy;
        std::optional<double> sloUs;
        std::optional<double> capWatts;
        std::optional<std::string> policy;
        std::optional<std::string> variant;
        std::optional<unsigned> servers;
        std::optional<double> qps;
        std::optional<unsigned> replica;

        bool matches(const GridPoint &pt) const;
    };

    /** All points matching @p q, in grid order. */
    std::vector<const PointResult *> select(const Query &q) const;

    /** Exactly one match or fatal(). */
    const PointResult &at(const Query &q) const;
};

/**
 * Expand a spec and execute it on a ThreadPool.
 */
class SweepRunner
{
  public:
    /** @param threads  0 = hardware concurrency. */
    explicit SweepRunner(unsigned threads = 0) : _threads(threads) {}

    /** Run with the default simulation point function. */
    SweepResult run(const ExperimentSpec &spec) const;

    /** Run with a custom point function. */
    SweepResult run(const ExperimentSpec &spec,
                    const PointFn &fn) const;

    /**
     * The default point function: a FleetSim run for fleet points
     * (idle promotion on, like awsim's fleet mode), a ServerSim run
     * for single-server points. Exposed so custom functions can
     * wrap it.
     */
    static PointResult runPoint(const ExperimentSpec &spec,
                                const GridPoint &pt);

    unsigned threads() const
    {
        return ThreadPool::resolveThreads(_threads);
    }

  private:
    unsigned _threads;
};

} // namespace aw::exp

#endif // AW_EXP_RUNNER_HH
