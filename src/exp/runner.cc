#include "exp/runner.hh"

#include <chrono>
#include <deque>

#include "cluster/fleet.hh"
#include "server/server_sim.hh"
#include "sim/logging.hh"

namespace aw::exp {

// ------------------------------------------------------ SweepResult

bool
SweepResult::Query::matches(const GridPoint &pt) const
{
    if (workload && *workload != pt.workload)
        return false;
    if (config && *config != pt.config)
        return false;
    if (governor && *governor != pt.governor)
        return false;
    if (freqPolicy && *freqPolicy != pt.freqPolicy)
        return false;
    if (sloUs && *sloUs != pt.sloUs)
        return false;
    if (capWatts && *capWatts != pt.capWatts)
        return false;
    if (policy && *policy != pt.policy)
        return false;
    if (variant && *variant != pt.variant)
        return false;
    if (servers && *servers != pt.servers)
        return false;
    if (qps && *qps != pt.qps)
        return false;
    if (replica && *replica != pt.replica)
        return false;
    return true;
}

std::vector<const PointResult *>
SweepResult::select(const Query &q) const
{
    std::vector<const PointResult *> out;
    for (const auto &p : points)
        if (q.matches(p.point))
            out.push_back(&p);
    return out;
}

const PointResult &
SweepResult::at(const Query &q) const
{
    const auto matches = select(q);
    if (matches.size() != 1)
        sim::fatal("SweepResult::at: %zu matches (want exactly 1)",
                   matches.size());
    return *matches.front();
}

// ------------------------------------------------------ SweepRunner

namespace {

/**
 * Per-worker registries: grid points repeat the same few workload
 * and config names thousands of times, and the registry lookups
 * rebuild the profile/config objects from scratch each call. Each
 * worker thread resolves a name once and then copies from its local
 * cache -- reusing simulator construction state across grid points
 * without any cross-thread sharing. Deques, not vectors: returned
 * references must survive later cache growth.
 */
const workload::WorkloadProfile &
cachedProfile(const std::string &name)
{
    thread_local std::deque<
        std::pair<std::string, workload::WorkloadProfile>>
        cache;
    for (const auto &entry : cache)
        if (entry.first == name)
            return entry.second;
    cache.emplace_back(name, profileByName(name));
    return cache.back().second;
}

const server::ServerConfig &
cachedConfig(const std::string &name)
{
    thread_local std::deque<
        std::pair<std::string, server::ServerConfig>>
        cache;
    for (const auto &entry : cache)
        if (entry.first == name)
            return entry.second;
    cache.emplace_back(name, configByName(name));
    return cache.back().second;
}

} // namespace

PointResult
SweepRunner::runPoint(const ExperimentSpec &spec, const GridPoint &pt)
{
    const auto &profile = cachedProfile(pt.workload);
    auto cfg = cachedConfig(pt.config);
    if (spec.cores > 0)
        cfg.cores = spec.cores;
    if (!pt.governor.empty())
        cfg.governor = pt.governor;
    if (!pt.freqPolicy.empty())
        cfg.freqPolicy = pt.freqPolicy;
    if (pt.sloUs > 0.0)
        cfg.sloUs = pt.sloUs;
    if (pt.capWatts > 0.0)
        cfg.cap.capWatts = pt.capWatts;
    if (spec.thermal)
        cfg.cap.thermalEnabled = true;
    if (!spec.dispatch.empty())
        cfg.dispatch = server::dispatchPolicyByName(spec.dispatch);

    const sim::Tick duration =
        spec.seconds > 0.0 ? sim::fromSec(spec.seconds) : 0;
    const sim::Tick warmup =
        spec.warmupSeconds >= 0.0 ? sim::fromSec(spec.warmupSeconds)
                                  : duration / 10;

    PointResult res;
    res.point = pt;

    if (pt.servers > 0) {
        cluster::FleetConfig fc;
        fc.servers = pt.servers;
        fc.server = cfg;
        // Fleet runs model cpuidle's tick re-selection so spare
        // servers reach deep idle (matches awsim's fleet mode).
        fc.server.idlePromotion = true;
        fc.routing = pt.policy;
        fc.seed = pt.seed;
        fc.fleetThreads = spec.fleetThreads;
        fc.epochSeconds = spec.epochSeconds;
        cluster::FleetSim fleet(fc, profile, pt.qps);
        if (spec.timelineIntervalSeconds > 0.0) {
            analysis::TimelineConfig tc;
            tc.intervalSeconds = spec.timelineIntervalSeconds;
            fleet.enableTimeline(tc);
        }
        if (spec.traceRequests)
            fleet.enableRequestTrace(analysis::TraceConfig{});
        auto r = duration > 0 ? fleet.run(duration, warmup)
                              : fleet.run();
        res.timeline = std::move(r.timeline);
        if (r.trace) {
            // Attribute and drop the raw spans: a sweep keeps one
            // attribution per point, not millions of span records.
            res.trace = analysis::attributeTail(*r.trace);
            res.p999LatencyUs = r.p999LatencyUs;
        }
        res.events = r.events;
        res.requests = r.requests;
        res.achievedQps = r.achievedQps;
        res.windowSeconds = sim::toSec(r.window);
        res.powerW = r.fleetPower;
        res.energyPerRequestMj = r.energyPerRequestMj;
        res.avgLatencyUs = r.avgLatencyUs;
        res.p99LatencyUs = r.p99LatencyUs;
        res.deepIdleShare = r.deepIdleShare;
        res.minServerDeepShare = r.minServerDeepShare;
        res.maxServerDeepShare = r.maxServerDeepShare;
        res.busiestShareOfLoad = r.busiestShareOfLoad;
        res.residency = r.residency.share;
        // Cap metrics ride the extras channel only when the spec
        // engaged the subsystem, so no-axis artifacts keep their
        // pre-cap schema byte for byte.
        if (!spec.capWatts.empty() || spec.thermal) {
            res.extras.emplace_back("cap_throttle_share",
                                    r.capThrottleShare);
            res.extras.emplace_back("max_temp_c", r.maxTempC);
        }
    } else {
        cfg.seed = pt.seed;
        server::ServerSim srv(cfg, profile, pt.qps);
        std::optional<analysis::TimelineRecorder> recorder;
        std::optional<analysis::RequestTracer> tracer;
        server::TelemetryFanout fanout;
        if (spec.timelineIntervalSeconds > 0.0) {
            analysis::TimelineConfig tc;
            tc.intervalSeconds = spec.timelineIntervalSeconds;
            recorder.emplace(tc, cfg.cores);
        }
        if (spec.traceRequests)
            tracer.emplace(analysis::TraceConfig{}, cfg.cores);
        if (recorder && tracer) {
            fanout.add(&*recorder);
            fanout.add(&*tracer);
            srv.setObserver(&fanout);
        } else if (recorder) {
            srv.setObserver(&*recorder);
        } else if (tracer) {
            srv.setObserver(&*tracer);
        }
        const auto r = duration > 0 ? srv.run(duration, warmup)
                                    : srv.run();
        if (recorder)
            res.timeline = recorder->series();
        if (tracer) {
            res.trace = analysis::attributeTail(tracer->series());
            res.p999LatencyUs = r.p999LatencyUs;
        }
        res.events = r.events;
        res.requests = r.requests;
        res.achievedQps = r.achievedQps;
        res.windowSeconds = sim::toSec(r.window);
        res.powerW = r.packagePower;
        res.energyPerRequestMj =
            r.requests > 0 ? 1e3 * r.packagePower *
                                 sim::toSec(r.window) / r.requests
                           : 0.0;
        res.avgLatencyUs = r.avgLatencyUs;
        res.p99LatencyUs = r.p99LatencyUs;
        const double deep = cluster::deepIdleShare(r.residency);
        res.deepIdleShare = deep;
        res.minServerDeepShare = deep;
        res.maxServerDeepShare = deep;
        res.busiestShareOfLoad = 1.0;
        res.residency = r.residency.share;
        if (!spec.capWatts.empty() || spec.thermal) {
            res.extras.emplace_back("cap_throttle_share",
                                    r.capThrottleShare);
            res.extras.emplace_back("max_temp_c", r.maxTempC);
        }
    }
    return res;
}

SweepResult
SweepRunner::run(const ExperimentSpec &spec) const
{
    return run(spec, [&spec](const GridPoint &pt) {
        return runPoint(spec, pt);
    });
}

SweepResult
SweepRunner::run(const ExperimentSpec &spec, const PointFn &fn) const
{
    const auto start = std::chrono::steady_clock::now();

    SweepResult result;
    result.spec = spec;
    const auto grid = spec.expand();
    result.points.resize(grid.size());

    // One slot per grid cell: workers write disjoint entries, so
    // the fold needs no ordering and no locks.
    if (threads() <= 1 || grid.size() <= 1) {
        for (const auto &pt : grid)
            result.points[pt.index] = fn(pt);
    } else {
        ThreadPool pool(threads());
        for (const auto &pt : grid)
            pool.submit([&fn, &pt, &result] {
                result.points[pt.index] = fn(pt);
            });
        pool.wait();
    }

    // The engine's contract: same extras schema (keys, in order) at
    // every point, so CSV columns label every row correctly.
    const auto &first = result.points.front();
    for (const auto &p : result.points) {
        if (p.extras.size() != first.extras.size())
            sim::fatal("SweepRunner: point '%s' reports %zu extra "
                       "metrics, point '%s' reports %zu",
                       p.point.label().c_str(), p.extras.size(),
                       first.point.label().c_str(),
                       first.extras.size());
        for (std::size_t i = 0; i < p.extras.size(); ++i)
            if (p.extras[i].first != first.extras[i].first)
                sim::fatal("SweepRunner: point '%s' extra #%zu is "
                           "'%s', point '%s' has '%s'",
                           p.point.label().c_str(), i,
                           p.extras[i].first.c_str(),
                           first.point.label().c_str(),
                           first.extras[i].first.c_str());
    }

    result.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

} // namespace aw::exp
