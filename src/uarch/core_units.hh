/**
 * @file
 * Core unit inventory: the floorplan-level breakdown of a Skylake
 * server core into units with area and leakage shares, the power
 * domain each unit lives in under AgileWatts, and the context
 * retention technique each UFPG unit uses.
 *
 * The aggregate shares reproduce the paper's die-photo measurements:
 * the UFPG domain covers ~70% of core area (and ~70% of core
 * leakage), the cache domain ~30%, and the UFPG domain has ~4.5x the
 * area/capacitance of the AVX units whose staggered wake is the
 * in-rush reference (Sec 5.3).
 */

#ifndef AW_UARCH_CORE_UNITS_HH
#define AW_UARCH_CORE_UNITS_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "power/srpg.hh"
#include "power/units.hh"

namespace aw::uarch {

/** Power domain membership under the AgileWatts partitioning. */
enum class PowerDomain
{
    Ufpg,        //!< medium-grain power-gated in C6A
    CacheSleep,  //!< power-ungated, sleep-mode + clock-gated in C6A
    AlwaysOn,    //!< snoop detector etc.: never gated
};

/**
 * One floorplan unit.
 */
struct CoreUnit
{
    std::string name;
    PowerDomain domain = PowerDomain::Ufpg;

    /** Fraction of total core area. */
    double areaFraction = 0.0;

    /** Fraction of total core leakage power. */
    double leakageFraction = 0.0;

    /** Retention technique for UFPG units (nullopt elsewhere). */
    std::optional<power::RetentionTechnique> retention;

    /** True for the AVX units that already have product power
     *  gates (the staggered-wake reference domain). */
    bool isAvx = false;
};

/**
 * The unit inventory of one core.
 */
class UnitInventory
{
  public:
    explicit UnitInventory(std::vector<CoreUnit> units);

    /** The calibrated Skylake server core inventory. */
    static UnitInventory skylakeServer();

    const std::vector<CoreUnit> &units() const { return _units; }
    std::size_t size() const { return _units.size(); }

    /** Find a unit by name; panics if absent. */
    const CoreUnit &unit(const std::string &name) const;

    /** Total area fraction of a domain. */
    double areaFraction(PowerDomain d) const;

    /** Total leakage fraction of a domain. */
    double leakageFraction(PowerDomain d) const;

    /** Combined area fraction of the AVX units. */
    double avxAreaFraction() const;

    /**
     * Ratio of UFPG-domain area to AVX area: the factor by which AW
     * exceeds the in-rush reference (paper: ~4.5x).
     */
    double ufpgToAvxAreaRatio() const;

    /** Sum of all units' area fractions (should be ~1). */
    double totalAreaFraction() const;

    /** Sum of all units' leakage fractions (should be ~1). */
    double totalLeakageFraction() const;

  private:
    std::vector<CoreUnit> _units;
};

} // namespace aw::uarch

#endif // AW_UARCH_CORE_UNITS_HH
