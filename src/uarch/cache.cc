#include "uarch/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace aw::uarch {

FlushModel
FlushModel::calibrate(std::uint64_t lines, double dirty_fraction,
                      sim::Frequency freq, sim::Tick anchor_time)
{
    if (lines == 0)
        sim::panic("FlushModel::calibrate: zero lines");
    if (dirty_fraction <= 0.0 || dirty_fraction > 1.0)
        sim::panic("FlushModel::calibrate: bad dirty fraction %f",
                   dirty_fraction);
    const double total_cycles = sim::toSec(anchor_time) * freq.hz();
    const double scan = 1.0;
    const double scan_cycles = scan * static_cast<double>(lines);
    if (total_cycles <= scan_cycles) {
        sim::panic("FlushModel::calibrate: anchor %f cycles cannot "
                   "cover the %f scan cycles",
                   total_cycles, scan_cycles);
    }
    const double wb = (total_cycles - scan_cycles) /
                      (dirty_fraction * static_cast<double>(lines));
    return FlushModel(scan, wb);
}

sim::Tick
FlushModel::flushTime(std::uint64_t lines, double dirty_fraction,
                      sim::Frequency freq) const
{
    const double n = static_cast<double>(lines);
    const double cycles =
        n * _scanCycles + n * dirty_fraction * _writebackCycles;
    return sim::fromSec(cycles / freq.hz());
}

PrivateCaches::PrivateCaches(CacheGeometry l1i, CacheGeometry l1d,
                             CacheGeometry l2, FlushModel flush_model)
    : _l1i(std::move(l1i)), _l1d(std::move(l1d)), _l2(std::move(l2)),
      _flush(flush_model)
{
}

PrivateCaches
PrivateCaches::skylakeServer()
{
    CacheGeometry l1i{"L1I", 32 * 1024, 64};
    CacheGeometry l1d{"L1D", 32 * 1024, 64};
    CacheGeometry l2{"L2", 1024 * 1024, 64};
    const std::uint64_t lines =
        l1i.lines() + l1d.lines() + l2.lines();
    // Paper anchor: ~75 us to flush a 50% dirty cache at 800 MHz.
    const FlushModel model = FlushModel::calibrate(
        lines, 0.5, sim::Frequency::mhz(800.0),
        sim::fromUs(75.0));
    return PrivateCaches(l1i, l1d, l2, model);
}

std::uint64_t
PrivateCaches::totalCapacityBytes() const
{
    return _l1i.capacityBytes + _l1d.capacityBytes + _l2.capacityBytes;
}

std::uint64_t
PrivateCaches::totalLines() const
{
    return _l1i.lines() + _l1d.lines() + _l2.lines();
}

void
PrivateCaches::setDirtyFraction(double f)
{
    if (f < 0.0 || f > 1.0)
        sim::panic("PrivateCaches: dirty fraction %f out of [0,1]", f);
    _dirtyFraction = f;
}

void
PrivateCaches::touch(double write_fraction, double turnover)
{
    write_fraction = std::clamp(write_fraction, 0.0, 1.0);
    turnover = std::clamp(turnover, 0.0, 1.0);
    // A `turnover` share of lines is replaced by fresh ones whose
    // dirtiness matches the write mix.
    _dirtyFraction =
        _dirtyFraction * (1.0 - turnover) + write_fraction * turnover;
}

void
PrivateCaches::flush()
{
    _dirtyFraction = 0.0;
    _state = CacheDomainState::Flushed;
}

sim::Tick
PrivateCaches::snoopServiceTime(sim::Frequency freq, bool hit) const
{
    const std::uint64_t cycles =
        kSnoopTagCycles + (hit ? kSnoopDataCycles : 0);
    return freq.cycles(cycles);
}

} // namespace aw::uarch
