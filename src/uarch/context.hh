/**
 * @file
 * The core architectural context that must survive a deep idle
 * state: registers (CSRs, fuses) plus the microcode patch SRAM.
 *
 * Two paths exist for preserving it:
 *  - the legacy C6 path streams it to/from the S/R SRAM in the
 *    uncore (~9 us each way for ~8 KB at 800 MHz);
 *  - the AgileWatts path retains it in place (ungated registers,
 *    SRPG flops, ungated SRAM) at a few cycles and ~2 mW.
 */

#ifndef AW_UARCH_CONTEXT_HH
#define AW_UARCH_CONTEXT_HH

#include "power/srpg.hh"
#include "sim/types.hh"

namespace aw::uarch {

/**
 * Composition of the retained core context.
 */
struct ContextLayout
{
    /** Register state: CSRs, fuse shadow copies, etc. */
    double registerBytes = 6 * 1024.0;

    /** Microcode patch + persistent data SRAM. */
    double microcodeSramBytes = 2 * 1024.0;

    double
    totalBytes() const
    {
        return registerBytes + microcodeSramBytes;
    }

    /** The Skylake-like default: ~8 KB total. */
    static constexpr ContextLayout
    skylake()
    {
        return ContextLayout{6 * 1024.0, 2 * 1024.0};
    }
};

/**
 * Core context with both preservation paths.
 */
class CoreContext
{
  public:
    explicit CoreContext(ContextLayout layout = ContextLayout::skylake())
        : _layout(layout), _inPlace(layout.totalBytes()),
          _external(layout.totalBytes())
    {}

    const ContextLayout &layout() const { return _layout; }

    /** In-place retention model (AW path). */
    const power::ContextRetention &inPlace() const { return _inPlace; }

    /** External save/restore model (legacy C6 path). */
    const power::ExternalSaveRestore &external() const
    {
        return _external;
    }

    /** Legacy save (or restore) time at @p freq. */
    sim::Tick
    externalTransferTime(sim::Frequency freq) const
    {
        return _external.transferTime(freq);
    }

    /**
     * Additional sequential re-initialization of the microcode patch
     * SRAM on the legacy C6 exit path (part of the ~20 us microcode
     * restore). Proportional to the SRAM size.
     */
    sim::Tick microcodeReinitTime(sim::Frequency freq) const;

  private:
    ContextLayout _layout;
    power::ContextRetention _inPlace;
    power::ExternalSaveRestore _external;
};

} // namespace aw::uarch

#endif // AW_UARCH_CONTEXT_HH
