#include "uarch/core_units.hh"

#include "sim/logging.hh"

namespace aw::uarch {

using power::RetentionTechnique;

UnitInventory::UnitInventory(std::vector<CoreUnit> units)
    : _units(std::move(units))
{
    if (_units.empty())
        sim::panic("UnitInventory: empty unit list");
}

UnitInventory
UnitInventory::skylakeServer()
{
    // Area/leakage shares reproduce the paper's aggregates:
    //   UFPG domain  = 70% of area and of leakage,
    //   cache domain = 30%,
    //   UFPG : AVX   ~ 4.5 : 1 (AVX = 15.5% of core).
    // Leakage shares track area shares (uniform leakage density),
    // which is the assumption behind the paper's "70% of C1 power".
    std::vector<CoreUnit> u;
    auto ufpg = [&](const char *name, double frac,
                    RetentionTechnique ret, bool avx = false) {
        u.push_back(CoreUnit{name, PowerDomain::Ufpg, frac, frac,
                             ret, avx});
    };
    auto cache = [&](const char *name, double frac) {
        u.push_back(CoreUnit{name, PowerDomain::CacheSleep, frac, frac,
                             std::nullopt, false});
    };

    // --- UFPG domain: 70% ---
    ufpg("frontend", 0.130, RetentionTechnique::UngatedRegisters);
    ufpg("microcode", 0.080, RetentionTechnique::UngatedSram);
    ufpg("ooo_engine", 0.130, RetentionTechnique::UngatedRegisters);
    ufpg("int_exec", 0.090, RetentionTechnique::UngatedRegisters);
    ufpg("exec_ports", 0.060, RetentionTechnique::UngatedRegisters);
    ufpg("load_store", 0.055, RetentionTechnique::Srpg);
    ufpg("avx256", 0.060, RetentionTechnique::UngatedRegisters, true);
    ufpg("avx512", 0.095, RetentionTechnique::UngatedRegisters, true);

    // --- Cache-sleep domain: 30% ---
    cache("l1i", 0.030);
    cache("l1d", 0.040);
    cache("l2", 0.180);
    cache("cache_ctl", 0.048);

    // --- Always-on snoop detector (tiny) ---
    u.push_back(CoreUnit{"snoop_detect", PowerDomain::AlwaysOn,
                         0.002, 0.002, std::nullopt, false});

    return UnitInventory(std::move(u));
}

const CoreUnit &
UnitInventory::unit(const std::string &name) const
{
    for (const auto &u : _units) {
        if (u.name == name)
            return u;
    }
    sim::panic("UnitInventory: no unit named '%s'", name.c_str());
}

double
UnitInventory::areaFraction(PowerDomain d) const
{
    double total = 0.0;
    for (const auto &u : _units) {
        if (u.domain == d)
            total += u.areaFraction;
    }
    return total;
}

double
UnitInventory::leakageFraction(PowerDomain d) const
{
    double total = 0.0;
    for (const auto &u : _units) {
        if (u.domain == d)
            total += u.leakageFraction;
    }
    return total;
}

double
UnitInventory::avxAreaFraction() const
{
    double total = 0.0;
    for (const auto &u : _units) {
        if (u.isAvx)
            total += u.areaFraction;
    }
    return total;
}

double
UnitInventory::ufpgToAvxAreaRatio() const
{
    const double avx = avxAreaFraction();
    if (avx <= 0.0)
        sim::panic("UnitInventory: no AVX units in inventory");
    return areaFraction(PowerDomain::Ufpg) / avx;
}

double
UnitInventory::totalAreaFraction() const
{
    double total = 0.0;
    for (const auto &u : _units)
        total += u.areaFraction;
    return total;
}

double
UnitInventory::totalLeakageFraction() const
{
    double total = 0.0;
    for (const auto &u : _units)
        total += u.leakageFraction;
    return total;
}

} // namespace aw::uarch
