/**
 * @file
 * Cache coherence snoop traffic model.
 *
 * A core in any non-flushed idle state must keep serving coherence
 * probes from the rest of the socket. The generator produces a
 * Poisson stream of probes with a configurable hit fraction; the
 * per-probe service cost (latency/power) is charged by the cache and
 * C-state models.
 */

#ifndef AW_UARCH_SNOOP_HH
#define AW_UARCH_SNOOP_HH

#include "sim/random.hh"
#include "sim/types.hh"

namespace aw::uarch {

/** One coherence probe. */
struct SnoopRequest
{
    sim::Tick arrival = 0;
    bool hit = false;
};

/**
 * Poisson snoop source for one core.
 */
class SnoopTraffic
{
  public:
    /**
     * @param rate_per_sec  mean probes per second (0 = no snoops)
     * @param hit_fraction  fraction of probes that hit the private
     *                      caches (require a data access)
     * @param seed          RNG seed
     */
    SnoopTraffic(double rate_per_sec, double hit_fraction,
                 std::uint64_t seed = 12345);

    double ratePerSec() const { return _rate; }
    double hitFraction() const { return _hitFraction; }

    bool enabled() const { return _rate > 0.0; }

    /** Time from @p now to the next probe (kMaxTick if disabled). */
    sim::Tick nextArrival(sim::Tick now);

    /** Draw the hit/miss outcome of a probe. */
    bool drawHit();

  private:
    double _rate;
    double _hitFraction;
    sim::Rng _rng;
};

} // namespace aw::uarch

#endif // AW_UARCH_SNOOP_HH
