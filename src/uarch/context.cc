#include "uarch/context.hh"

namespace aw::uarch {

sim::Tick
CoreContext::microcodeReinitTime(sim::Frequency freq) const
{
    // The 2 KB patch SRAM re-initializes sequentially from the S/R
    // SRAM plus microcode sequencer work; calibrated so that the full
    // C6 state+microcode restore lands at ~20 us at 800 MHz
    // (Sec 3): the register restore accounts for the external
    // transfer (~9 us at 800 MHz for 8 KB), microcode for the rest.
    const double bytes_per_cycle =
        power::ExternalSaveRestore::kBytesPerCycle * 0.25;
    const double cycles = _layout.microcodeSramBytes / bytes_per_cycle;
    return sim::fromSec(cycles / freq.hz());
}

} // namespace aw::uarch
