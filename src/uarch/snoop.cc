#include "uarch/snoop.hh"

#include "sim/logging.hh"

namespace aw::uarch {

SnoopTraffic::SnoopTraffic(double rate_per_sec, double hit_fraction,
                           std::uint64_t seed)
    : _rate(rate_per_sec), _hitFraction(hit_fraction), _rng(seed)
{
    if (rate_per_sec < 0.0)
        sim::panic("SnoopTraffic: negative rate %f", rate_per_sec);
    if (hit_fraction < 0.0 || hit_fraction > 1.0)
        sim::panic("SnoopTraffic: hit fraction %f out of [0,1]",
                   hit_fraction);
}

sim::Tick
SnoopTraffic::nextArrival(sim::Tick now)
{
    if (!enabled())
        return sim::kMaxTick;
    const double gap_sec = _rng.exponential(1.0 / _rate);
    return now + sim::fromSec(gap_sec);
}

bool
SnoopTraffic::drawHit()
{
    return _rng.bernoulli(_hitFraction);
}

} // namespace aw::uarch
