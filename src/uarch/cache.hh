/**
 * @file
 * Private cache (L1/L2) model: geometry, dirty-line tracking, the
 * flush-time model that dominates C6 entry latency, snoop service
 * and the sleep-mode state machine hooks used by CCSM.
 */

#ifndef AW_UARCH_CACHE_HH
#define AW_UARCH_CACHE_HH

#include <cstdint>
#include <string>

#include "power/units.hh"
#include "sim/types.hh"

namespace aw::uarch {

/**
 * Geometry of one cache array.
 */
struct CacheGeometry
{
    std::string name;
    std::uint64_t capacityBytes = 0;
    std::uint64_t lineBytes = 64;

    std::uint64_t
    lines() const
    {
        return capacityBytes / lineBytes;
    }
};

/**
 * Flush-time model.
 *
 * A flush walks every line (tag scan) and writes back the dirty ones,
 * all at the current core frequency:
 *
 *   cycles = lines * scanCycles + dirtyLines * writebackCycles
 *
 * Calibrated against the paper's x86 reference point: flushing the
 * private caches at 50% dirty and 800 MHz takes ~75 us (Sec 3).
 */
class FlushModel
{
  public:
    /**
     * @param scan_cycles       cycles to scan one line's tag/state
     * @param writeback_cycles  cycles to write back one dirty line
     */
    constexpr FlushModel(double scan_cycles, double writeback_cycles)
        : _scanCycles(scan_cycles), _writebackCycles(writeback_cycles)
    {}

    /**
     * Build a model matching a calibration anchor: flushing
     * @p lines lines with @p dirty_fraction dirty at @p freq takes
     * @p anchor_time, assuming one scan cycle per line.
     */
    static FlushModel calibrate(std::uint64_t lines,
                                double dirty_fraction,
                                sim::Frequency freq,
                                sim::Tick anchor_time);

    double scanCycles() const { return _scanCycles; }
    double writebackCycles() const { return _writebackCycles; }

    /** Flush latency for @p lines lines at @p dirty_fraction. */
    sim::Tick flushTime(std::uint64_t lines, double dirty_fraction,
                        sim::Frequency freq) const;

  private:
    double _scanCycles;
    double _writebackCycles;
};

/** The power state of the private-cache domain. */
enum class CacheDomainState
{
    Active,      //!< clocks running, nominal voltage
    ClockGated,  //!< clocks stopped, nominal voltage (C1/C1E)
    SleepMode,   //!< clocks stopped, data arrays at retention (C6A)
    Flushed,     //!< contents invalid, power may be removed (C6)
};

/**
 * The private L1/L2 cache subsystem of one core.
 *
 * Tracks a statistical dirty fraction rather than per-line state:
 * the C-state transition costs depend only on how many lines must be
 * written back, and the workload models update dirtiness through
 * touch().
 */
class PrivateCaches
{
  public:
    PrivateCaches(CacheGeometry l1i, CacheGeometry l1d,
                  CacheGeometry l2, FlushModel flush_model);

    /** The Skylake server core instance: 32K+32K L1, 1 MB L2,
     *  flush model calibrated to 75 us at 50% dirty / 800 MHz. */
    static PrivateCaches skylakeServer();

    std::uint64_t totalCapacityBytes() const;
    std::uint64_t totalLines() const;

    const CacheGeometry &l1i() const { return _l1i; }
    const CacheGeometry &l1d() const { return _l1d; }
    const CacheGeometry &l2() const { return _l2; }
    const FlushModel &flushModel() const { return _flush; }

    /** @{ Dirty-fraction bookkeeping (write-allocate caches). */
    double dirtyFraction() const { return _dirtyFraction; }
    void setDirtyFraction(double f);

    /**
     * Record workload activity: @p write_fraction of touched lines
     * become dirty; moves the dirty fraction toward that mix.
     */
    void touch(double write_fraction, double turnover = 0.05);
    /** @} */

    /** Flush latency from the current dirty fraction at @p freq. */
    sim::Tick
    flushTime(sim::Frequency freq) const
    {
        return _flush.flushTime(totalLines(), _dirtyFraction, freq);
    }

    /** Perform the flush: contents gone, dirty fraction resets. */
    void flush();

    /** @{ Domain power-state tracking. */
    CacheDomainState state() const { return _state; }
    void setState(CacheDomainState s) { _state = s; }
    /** @} */

    /**
     * Cycles to service one snoop once the domain is awake: tag
     * access happens in parallel with data-array wake (Sec 5.2.3),
     * then a hit needs a data access.
     */
    static constexpr std::uint64_t kSnoopTagCycles = 4;
    static constexpr std::uint64_t kSnoopDataCycles = 10;

    /** Snoop service time at @p freq; @p hit selects data access. */
    sim::Tick snoopServiceTime(sim::Frequency freq, bool hit) const;

  private:
    CacheGeometry _l1i;
    CacheGeometry _l1d;
    CacheGeometry _l2;
    FlushModel _flush;
    double _dirtyFraction = 0.0;
    CacheDomainState _state = CacheDomainState::Active;
};

} // namespace aw::uarch

#endif // AW_UARCH_CACHE_HH
