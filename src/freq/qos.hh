/**
 * @file
 * PM-QoS-style per-request latency SLO.
 *
 * Linux PM-QoS lets latency-sensitive software publish a
 * cpu_dma_latency bound that cpuidle honors by refusing idle states
 * whose exit latency would blow the budget. LatencyQoS models that
 * constraint jointly across both governance axes: it filters the
 * idle governor's enabled-state set down to states whose worst-case
 * transition cost fits a wake share of the SLO, and it floors the
 * DVFS ladder at the slowest level whose mean request service time
 * still fits a service share of the SLO. Both halves are resolved
 * once per server at build time (ServerSim::buildCores /
 * FleetSim's per-server construction) so the hot path never
 * consults the SLO.
 */

#ifndef AW_FREQ_QOS_HH
#define AW_FREQ_QOS_HH

#include <cstddef>

#include "cstate/config.hh"
#include "freq/freq_policy.hh"
#include "workload/service.hh"

namespace aw::freq {

/**
 * A per-request latency SLO (microseconds; 0 = unconstrained) and
 * the budget split it implies.
 */
struct LatencyQoS
{
    /** Share of the SLO an idle-state wake may consume. */
    static constexpr double kWakeShare = 0.25;

    /** Share of the SLO the mean service time may consume. */
    static constexpr double kServiceShare = 0.5;

    double sloUs = 0.0;

    bool active() const { return sloUs > 0.0; }

    /**
     * Copy of @p in with every idle state whose worst-case
     * transition cost exceeds the wake budget disabled. Filtering
     * every state is legal: the governor then polls in C0, exactly
     * like cpu_dma_latency = 0 on Linux.
     */
    cstate::CStateConfig
    admissibleStates(const cstate::CStateConfig &in) const;

    /**
     * The slowest ladder level whose mean request service time --
     * compute share rescaled from the model's reference frequency,
     * fixed share unchanged -- fits the service budget; top() when
     * even P1 cannot (the SLO then demands best effort).
     */
    std::size_t frequencyFloor(const PStateLadder &ladder,
                               const workload::ServiceModel &svc) const;
};

} // namespace aw::freq

#endif // AW_FREQ_QOS_HH
