#include "freq/policies.hh"

#include "sim/logging.hh"

namespace aw::freq {

// -------------------------------------------------- OndemandPolicy

std::size_t
OndemandPolicy::select(sim::Tick now, double load)
{
    (void)now;
    if (load >= kUpThreshold)
        return _ladder.top();
    // Proportional target, relation L: the lowest ladder level that
    // is at least fmin + load * (fmax - fmin).
    const double fmin = _ladder.frequency(0).hz();
    const double fmax = _ladder.frequency(_ladder.top()).hz();
    return _ladder.levelAtOrAbove(
        sim::Frequency(fmin + load * (fmax - fmin)));
}

// ---------------------------------------------- ConservativePolicy

std::size_t
ConservativePolicy::select(sim::Tick now, double load)
{
    (void)now;
    if (load > kUpThreshold) {
        if (_level < _ladder.top())
            ++_level;
    } else if (load < kDownThreshold) {
        if (_level > 0)
            --_level;
    }
    return _level;
}

// ------------------------------------------------- FreqRegistry

FreqSpec
parseFreqSpec(const std::string &spec)
{
    FreqSpec parsed;
    const auto colon = spec.find(':');
    parsed.kind = spec.substr(0, colon);
    if (colon != std::string::npos)
        parsed.arg = spec.substr(colon + 1);
    if (parsed.kind.empty())
        sim::fatal("empty frequency-governor spec");
    return parsed;
}

namespace {

/** Argless kinds reject a stray ":arg" instead of silently running
 *  unparameterized under a mislabeled spec. */
void
requireNoArg(const char *kind, const std::string &arg)
{
    if (!arg.empty())
        sim::fatal("frequency governor '%s' takes no argument "
                   "(got '%s:%s')",
                   kind, kind, arg.c_str());
}

} // namespace

FreqRegistry::FreqRegistry()
{
    add("performance", "pin the top P-state (P1)",
        [](const std::string &arg, const PStateLadder &ladder) {
            requireNoArg("performance", arg);
            return std::make_unique<PerformancePolicy>(ladder);
        });
    add("powersave", "pin the bottom P-state (Pn)",
        [](const std::string &arg, const PStateLadder &ladder) {
            requireNoArg("powersave", arg);
            return std::make_unique<PowersavePolicy>(ladder);
        });
    add("ondemand",
        "sampled load: jump to P1 above threshold, else proportional",
        [](const std::string &arg, const PStateLadder &ladder) {
            requireNoArg("ondemand", arg);
            return std::make_unique<OndemandPolicy>(ladder);
        });
    add("conservative", "sampled load: one ladder step at a time",
        [](const std::string &arg, const PStateLadder &ladder) {
            requireNoArg("conservative", arg);
            return std::make_unique<ConservativePolicy>(ladder);
        });
    add("racetohalt",
        "P1 while serving, Pn on queue drain (edge-driven)",
        [](const std::string &arg, const PStateLadder &ladder) {
            requireNoArg("racetohalt", arg);
            return std::make_unique<RaceToHaltPolicy>(ladder);
        });
}

FreqRegistry &
FreqRegistry::instance()
{
    static FreqRegistry registry;
    return registry;
}

void
FreqRegistry::add(const std::string &kind, const std::string &summary,
                  Factory factory)
{
    for (const auto &k : _kinds)
        if (k == kind)
            sim::fatal("frequency-governor kind '%s' registered "
                       "twice",
                       kind.c_str());
    _kinds.push_back(kind);
    _entries.push_back(Entry{summary, std::move(factory)});
}

std::unique_ptr<FreqPolicy>
FreqRegistry::make(const std::string &spec,
                   const PStateLadder &ladder) const
{
    const auto parsed = parseFreqSpec(spec);
    for (std::size_t i = 0; i < _kinds.size(); ++i)
        if (_kinds[i] == parsed.kind)
            return _entries[i].factory(parsed.arg, ladder);
    sim::fatal("unknown frequency governor '%s' (%s)", spec.c_str(),
               describeKinds().c_str());
}

std::string
FreqRegistry::summary(const std::string &kind) const
{
    for (std::size_t i = 0; i < _kinds.size(); ++i)
        if (_kinds[i] == kind)
            return _entries[i].summary;
    return "";
}

std::string
FreqRegistry::describeKinds() const
{
    std::string out;
    for (const auto &kind : _kinds) {
        if (!out.empty())
            out += '|';
        out += kind;
    }
    return out;
}

std::unique_ptr<FreqPolicy>
makeFreqPolicy(const std::string &spec, const PStateLadder &ladder)
{
    return FreqRegistry::instance().make(spec, ladder);
}

const std::vector<std::string> &
freqPolicyKinds()
{
    return FreqRegistry::instance().kinds();
}

} // namespace aw::freq
