/**
 * @file
 * The built-in frequency governors and the string-keyed registry
 * behind `--freq-governor` / the `freqPolicies` sweep axis.
 *
 * Mirrors cstate/governors.hh: specs are `kind[:arg]`, unknown kinds
 * die with the full kind list, and tools enumerate the registry for
 * their --help text. Built-ins follow the Linux cpufreq lineage:
 *
 *   performance   pin the top level (P1); zero events
 *   powersave     pin the bottom level (Pn); zero events
 *   ondemand      sampled: jump to P1 above the up-threshold, else
 *                 proportional-speed relation-L pick
 *   conservative  sampled: step one level up/down on hysteresis
 *                 thresholds
 *   racetohalt    edge-driven: P1 while serving, Pn the moment the
 *                 queue drains; zero periodic events
 */

#ifndef AW_FREQ_POLICIES_HH
#define AW_FREQ_POLICIES_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "freq/freq_policy.hh"

namespace aw::freq {

/** Always the top ladder level (cpufreq `performance`). */
class PerformancePolicy : public FreqPolicy
{
  public:
    using FreqPolicy::FreqPolicy;
    std::string spec() const override { return "performance"; }
    std::size_t select(sim::Tick, double) override
    {
        return _ladder.top();
    }
    std::unique_ptr<FreqPolicy> clone() const override
    {
        return std::make_unique<PerformancePolicy>(_ladder);
    }
};

/** Always the bottom ladder level (cpufreq `powersave`). */
class PowersavePolicy : public FreqPolicy
{
  public:
    using FreqPolicy::FreqPolicy;
    std::string spec() const override { return "powersave"; }
    std::size_t select(sim::Tick, double) override { return 0; }
    std::unique_ptr<FreqPolicy> clone() const override
    {
        return std::make_unique<PowersavePolicy>(_ladder);
    }
};

/**
 * cpufreq `ondemand`: at each sampling tick, a window load at or
 * above the up-threshold jumps straight to the top level; below it
 * the target frequency scales proportionally with load and the
 * lowest at-or-above ladder level (relation L) is picked.
 */
class OndemandPolicy : public FreqPolicy
{
  public:
    static constexpr double kUpThreshold = 0.8;
    static constexpr sim::Tick kSamplePeriod = 1000 * sim::kTicksPerUs;

    using FreqPolicy::FreqPolicy;
    std::string spec() const override { return "ondemand"; }
    std::size_t select(sim::Tick now, double load) override;
    sim::Tick evalInterval() const override { return kSamplePeriod; }
    std::unique_ptr<FreqPolicy> clone() const override
    {
        return std::make_unique<OndemandPolicy>(_ladder);
    }
};

/**
 * cpufreq `conservative`: like ondemand but graceful -- one ladder
 * step at a time, up above the up-threshold, down below the
 * down-threshold, at a slower sampling cadence.
 */
class ConservativePolicy : public FreqPolicy
{
  public:
    static constexpr double kUpThreshold = 0.8;
    static constexpr double kDownThreshold = 0.2;
    static constexpr sim::Tick kSamplePeriod =
        2000 * sim::kTicksPerUs;

    explicit ConservativePolicy(PStateLadder ladder)
        : FreqPolicy(ladder), _level(ladder.top())
    {}
    std::string spec() const override { return "conservative"; }
    std::size_t select(sim::Tick now, double load) override;
    void reset() override { _level = _ladder.top(); }
    sim::Tick evalInterval() const override { return kSamplePeriod; }
    std::unique_ptr<FreqPolicy> clone() const override
    {
        return std::make_unique<ConservativePolicy>(_ladder);
    }

  private:
    std::size_t _level;
};

/**
 * Race-to-halt: sprint at P1 whenever there is work so the idle
 * governor gets the longest possible gaps to sink into deep C6,
 * drop to Pn the moment the queue drains. Edge-driven -- it adds no
 * periodic events, only the ramp on each busy/idle edge.
 */
class RaceToHaltPolicy : public FreqPolicy
{
  public:
    using FreqPolicy::FreqPolicy;
    std::string spec() const override { return "racetohalt"; }
    std::size_t select(sim::Tick, double) override
    {
        return _ladder.top();
    }
    std::size_t observe(sim::Tick, bool busy, std::size_t) override
    {
        return busy ? _ladder.top() : 0;
    }
    std::unique_ptr<FreqPolicy> clone() const override
    {
        return std::make_unique<RaceToHaltPolicy>(_ladder);
    }
};

// ------------------------------------------------------------------

/** A parsed `kind[:arg]` frequency-governor spec. */
struct FreqSpec
{
    std::string kind;
    std::string arg;
};

/** Split `kind[:arg]`; fatal on an empty kind. */
FreqSpec parseFreqSpec(const std::string &spec);

/**
 * The process-wide frequency-governor registry (same shape as
 * cstate::GovernorRegistry).
 */
class FreqRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<FreqPolicy>(
        const std::string &arg, const PStateLadder &ladder)>;

    static FreqRegistry &instance();

    /** Register a kind; fatal on a duplicate. */
    void add(const std::string &kind, const std::string &summary,
             Factory factory);

    /** Build a policy from `kind[:arg]`; fatal on unknown kinds. */
    std::unique_ptr<FreqPolicy> make(const std::string &spec,
                                     const PStateLadder &ladder) const;

    /** Registered kinds, in registration order. */
    const std::vector<std::string> &kinds() const { return _kinds; }

    /** One-line description of @p kind ("" when unknown). */
    std::string summary(const std::string &kind) const;

    /** "performance|powersave|..." for diagnostics/usage text. */
    std::string describeKinds() const;

  private:
    FreqRegistry();

    struct Entry
    {
        std::string summary;
        Factory factory;
    };

    std::vector<std::string> _kinds;
    std::vector<Entry> _entries;
};

/** Convenience: build from the process-wide registry. */
std::unique_ptr<FreqPolicy>
makeFreqPolicy(const std::string &spec, const PStateLadder &ladder);

/** Convenience: the registered kind names. */
const std::vector<std::string> &freqPolicyKinds();

} // namespace aw::freq

#endif // AW_FREQ_POLICIES_HH
