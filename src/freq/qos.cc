#include "freq/qos.hh"

namespace aw::freq {

cstate::CStateConfig
LatencyQoS::admissibleStates(const cstate::CStateConfig &in) const
{
    if (!active())
        return in;
    const sim::Tick budget =
        sim::fromUs(kWakeShare * sloUs);
    cstate::CStateConfig out = in;
    for (const auto &d : cstate::allDescriptors()) {
        if (d.id == cstate::CStateId::C0 || !out.enabled(d.id))
            continue;
        if (d.transitionTime > budget)
            out.set(d.id, false);
    }
    return out;
}

std::size_t
LatencyQoS::frequencyFloor(const PStateLadder &ladder,
                           const workload::ServiceModel &svc) const
{
    if (!active())
        return 0;
    const double budget_us = kServiceShare * sloUs;
    const double mean_us = sim::toUs(svc.meanServiceTime());
    const double cs = svc.computeShare();
    const double ref_hz = svc.referenceFrequency().hz();
    for (std::size_t l = 0; l < ladder.count(); ++l) {
        const double at_level_us =
            mean_us * (cs * ref_hz / ladder.frequency(l).hz() +
                       (1.0 - cs));
        if (at_level_us <= budget_us)
            return l;
    }
    return ladder.top();
}

} // namespace aw::freq
