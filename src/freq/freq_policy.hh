/**
 * @file
 * The DVFS half of the governance story: a discretized P-state
 * ladder derived from the platform's PStateTable, and the abstract
 * frequency policy every cpufreq-style governor implements.
 *
 * The C-state side (PR 4) asked "how deep should an idle core
 * sleep"; this subsystem asks the dual question "how fast should a
 * busy core run". A FreqPolicy picks a ladder level per core --
 * either on a periodic re-evaluation tick fed with the measured
 * utilization of the last window (ondemand, conservative), or on
 * busy/idle edges (racetohalt), or never (performance, powersave).
 * CoreSim turns the chosen level into rescaled service rates,
 * active/boost powers and C-state transition latencies via tables
 * precomputed per level at construction, so the de-virtualized fast
 * path stays allocation-free.
 */

#ifndef AW_FREQ_FREQ_POLICY_HH
#define AW_FREQ_FREQ_POLICY_HH

#include <array>
#include <cstddef>
#include <memory>
#include <string>

#include "cstate/cstate.hh"
#include "power/units.hh"
#include "server/pstate.hh"
#include "sim/types.hh"

namespace aw::freq {

/** @{
 * Cost of moving the operating point between two ladder levels.
 * The ramp is dominated by the voltage-regulator slew and PLL
 * relock, not by the frequency distance, so one flat latency covers
 * any hop; the old level's rates and powers stay in force until the
 * ramp lands. The relock itself burns a fixed energy on top.
 */
constexpr sim::Tick kRampLatency = 8 * sim::kTicksPerUs;
constexpr power::Joules kRampEnergy = power::microjoules(2.0);
/** @} */

/**
 * The discrete DVFS operating points between Pn and P1.
 *
 * Real cpufreq exposes a table of ACPI P-states; we derive one by
 * evenly subdividing [minimum, base] from the platform PStateTable
 * into up to kMaxLevels points (level 0 = Pn, top = P1). Turbo is
 * not a ladder level: opportunistic boost above P1 stays the
 * TurboModel's job. Each level carries the unscaled C0 active power
 * from a cubic fit P(f) = a*f^3 + b anchored on the Table 1 points
 * (Pn: 0.8 GHz / 1 W, P1: 2.2 GHz / 4 W), so the top level
 * reproduces the legacy base-point power exactly.
 */
class PStateLadder
{
  public:
    static constexpr std::size_t kMaxLevels = 8;

    explicit PStateLadder(const server::PStateTable &table)
    {
        const double fmin = table.minimum.gigahertz();
        const double fbase = table.base.gigahertz();
        _count = fbase > fmin ? kMaxLevels : 1;
        // Cubic dynamic-power fit through the two Table 1 anchors;
        // degenerate tables (min == base) pin the base point.
        const double a =
            _count > 1 ? (cstate::kC0PowerP1 - cstate::kC0PowerPn) /
                             (fbase * fbase * fbase -
                              fmin * fmin * fmin)
                       : 0.0;
        const double b = cstate::kC0PowerP1 - a * fbase * fbase * fbase;
        for (std::size_t i = 0; i < _count; ++i) {
            const double f =
                _count > 1 ? fmin + (fbase - fmin) *
                                        static_cast<double>(i) /
                                        static_cast<double>(_count - 1)
                           : fbase;
            _freq[i] = sim::Frequency::ghz(f);
            _power[i] = a * f * f * f + b;
        }
    }

    std::size_t count() const { return _count; }
    std::size_t top() const { return _count - 1; }

    /** Operating frequency of @p level (0 = Pn, top() = P1). */
    sim::Frequency frequency(std::size_t level) const
    {
        return _freq[level];
    }

    /** Unscaled C0 active power at @p level (watts). */
    power::Watts activePower(std::size_t level) const
    {
        return _power[level];
    }

    /** Lowest level running at least @p f; top() when none does. */
    std::size_t levelAtOrAbove(sim::Frequency f) const
    {
        for (std::size_t i = 0; i < _count; ++i)
            if (_freq[i].hz() >= f.hz() * (1.0 - 1e-12))
                return i;
        return top();
    }

  private:
    std::size_t _count = 1;
    std::array<sim::Frequency, kMaxLevels> _freq{};
    std::array<power::Watts, kMaxLevels> _power{};
};

/**
 * Abstract per-core frequency governor.
 *
 * Mirrors cstate::GovernorPolicy: ServerSim builds and validates ONE
 * prototype per server from the config's spec string, then clone()s
 * it per core so every core carries independent policy state.
 * Policies are consulted two ways:
 *
 *  - evalInterval() > 0: CoreSim schedules a repeating re-evaluation
 *    event and calls select() with the busy-time fraction of the
 *    window that just closed.
 *  - observe() fires on every busy/idle edge (request service
 *    starting on an idle core, or the queue draining); edge-driven
 *    policies like racetohalt return a new level from it and keep
 *    evalInterval() at 0, adding zero events to the kernel.
 *
 * The level a policy returns is a *request*: CoreSim clamps it to
 * the LatencyQoS frequency floor and applies it only after the
 * kRampLatency voltage ramp.
 */
class FreqPolicy
{
  public:
    explicit FreqPolicy(PStateLadder ladder) : _ladder(ladder) {}
    virtual ~FreqPolicy() = default;

    /** The registry spec string that rebuilds this policy. */
    virtual std::string spec() const = 0;

    /**
     * Desired ladder level given @p load, the busy-time fraction
     * (in [0, 1]) of the evaluation window ending at @p now. Also
     * called once at construction time (now = 0, load = 0) to set
     * the initial operating point.
     */
    virtual std::size_t select(sim::Tick now, double load) = 0;

    /**
     * Busy/idle edge: the core just started serving (@p busy true)
     * or ran out of work (@p busy false). Returns the desired level
     * after the edge; the default keeps @p current.
     */
    virtual std::size_t observe(sim::Tick now, bool busy,
                                std::size_t current)
    {
        (void)now;
        (void)busy;
        return current;
    }

    /** Forget accumulated state (measurement-window boundaries). */
    virtual void reset() {}

    /** Fresh per-core copy with independent state. */
    virtual std::unique_ptr<FreqPolicy> clone() const = 0;

    /** Re-evaluation period; 0 = edge-driven only (no events). */
    virtual sim::Tick evalInterval() const { return 0; }

    const PStateLadder &ladder() const { return _ladder; }

  protected:
    PStateLadder _ladder;
};

} // namespace aw::freq

#endif // AW_FREQ_FREQ_POLICY_HH
