#!/usr/bin/env python3
"""Lint the CLI docs: every --help flag must appear under docs/.

Usage:
    check_docs.py [--bin-dir build] [--docs-dir docs]
                  [--tools awsim,awsweep,awperf]

Runs each tool with --help, extracts every `--flag` token from the
usage text, and fails unless each token appears verbatim somewhere
in a Markdown file under the docs directory. This keeps the recipe
docs (docs/AWSIM.md, docs/EXPERIMENTS.md, ...) from silently
trailing the binaries when a new knob lands: the PR that adds a
flag must also document it, or CI goes red.

The check is one-sided by design. Docs may discuss flags beyond the
usage text (deprecated spellings, planned work) without failing the
lint; only undocumented *live* flags are errors.

Exit status: 0 = every flag documented, 1 = missing docs or a tool
that could not be run.
"""

import argparse
import os
import re
import subprocess
import sys

#: A flag token: leading --, then lowercase words joined by single
#: dashes. The lookbehind keeps the regex from chopping a suffix out
#: of a longer token (e.g. matching `--json` inside `--timeline-json`
#: is fine -- both are real flags -- but `…-json` alone is not).
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9]*(?:-[a-z0-9]+)*")

DEFAULT_TOOLS = ("awsim", "awsweep", "awperf")


def help_text(binary):
    """Run `binary --help` and return its combined output."""
    proc = subprocess.run(
        [binary, "--help"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        timeout=60,
        check=False,
        encoding="utf-8",
        errors="replace")
    if proc.returncode != 0:
        raise RuntimeError(
            f"{binary} --help exited {proc.returncode}")
    if not proc.stdout.strip():
        raise RuntimeError(f"{binary} --help printed nothing")
    return proc.stdout


def docs_corpus(docs_dir):
    """Concatenate every Markdown file under docs_dir."""
    chunks = []
    names = []
    for name in sorted(os.listdir(docs_dir)):
        if not name.endswith(".md"):
            continue
        path = os.path.join(docs_dir, name)
        with open(path, "r", encoding="utf-8") as f:
            chunks.append(f.read())
        names.append(name)
    if not names:
        raise RuntimeError(f"no .md files under {docs_dir}")
    return "\n".join(chunks), names


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--bin-dir", default="build",
                        help="directory holding the built tool "
                        "binaries (default: build)")
    parser.add_argument("--docs-dir", default="docs",
                        help="directory of Markdown docs to search "
                        "(default: docs)")
    parser.add_argument("--tools",
                        default=",".join(DEFAULT_TOOLS),
                        help="comma-separated tool names "
                        "(default: %(default)s)")
    args = parser.parse_args()

    try:
        corpus, doc_names = docs_corpus(args.docs_dir)
    except (OSError, RuntimeError) as err:
        print(f"check_docs: FAIL: {err}", file=sys.stderr)
        return 1
    documented = set(FLAG_RE.findall(corpus))

    failures = []
    total = 0
    for tool in args.tools.split(","):
        tool = tool.strip()
        if not tool:
            continue
        binary = os.path.join(args.bin_dir, tool)
        try:
            flags = sorted(set(FLAG_RE.findall(help_text(binary))))
        except (OSError, RuntimeError,
                subprocess.TimeoutExpired) as err:
            failures.append(f"{tool}: {err}")
            continue
        if not flags:
            failures.append(f"{tool}: no --flags in --help output")
            continue
        missing = [f for f in flags if f not in documented]
        total += len(flags)
        verdict = "ok" if not missing else "MISSING " + " ".join(
            missing)
        print(f"{tool:<8} {len(flags):>3} flags  {verdict}")
        for flag in missing:
            failures.append(
                f"{tool}: flag {flag} appears in --help but in "
                f"none of {args.docs_dir}/*.md")

    if failures:
        for failure in failures:
            print(f"check_docs: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_docs: PASS ({total} flags across "
          f"{len(doc_names)} docs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
