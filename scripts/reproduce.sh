#!/usr/bin/env bash
#
# Regenerate every paper table/figure reproduction from the bench
# harnesses into results/.
#
# Each bench binary prints its reproduction (tables/series) to stdout
# before running its google-benchmark microbenchmarks; by default we
# suppress the microbenchmarks (--benchmark_filter that matches
# nothing) so the sweep stays fast. Set FULL=1 to run them too.
#
# Usage:
#   scripts/reproduce.sh                 # reproductions only
#   FULL=1 scripts/reproduce.sh          # + microbenchmarks
#   BUILD_DIR=out scripts/reproduce.sh   # custom build dir
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
RESULTS_DIR="${RESULTS_DIR:-$ROOT/results}"
FULL="${FULL:-0}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S "$ROOT" -DAW_BUILD_BENCH=ON
fi
cmake --build "$BUILD_DIR" -j"$(nproc)"

mkdir -p "$RESULTS_DIR"

shopt -s nullglob
benches=("$BUILD_DIR"/bench_*)
# Filter out non-executables (e.g. CMake-generated files).
runnable=()
for b in "${benches[@]}"; do
    [ -f "$b" ] && [ -x "$b" ] && runnable+=("$b")
done
if [ "${#runnable[@]}" -eq 0 ]; then
    echo "error: no bench_* binaries in $BUILD_DIR" \
         "(configure with -DAW_BUILD_BENCH=ON)" >&2
    exit 1
fi

args=()
if [ "$FULL" != "1" ]; then
    # A regex no benchmark name matches: reproduction pass only.
    args+=(--benchmark_filter='$^')
fi

failed=0
for bench in "${runnable[@]}"; do
    name="$(basename "$bench")"
    out="$RESULTS_DIR/$name.txt"
    echo "[reproduce] $name -> results/$name.txt"
    if ! "$bench" "${args[@]}" >"$out" 2>&1; then
        echo "[reproduce] FAILED: $name (see $out)" >&2
        failed=1
    fi
done

# Fleet smoke: the routing-policy sweep behind docs/FLEET.md, via
# the awsim CLI (8 servers, AW vs tuned-C6, all four policies).
AWSIM="$BUILD_DIR/awsim"
if [ -x "$AWSIM" ]; then
    out="$RESULTS_DIR/fleet_policies.txt"
    echo "[reproduce] awsim fleet sweep -> results/fleet_policies.txt"
    : > "$out"
    for route in round-robin random least-outstanding pack-first; do
        for config in aw c1c6; do
            echo "=== --fleet 8 --route $route --config $config ===" >> "$out"
            if ! "$AWSIM" --fleet 8 --route "$route" --config "$config" \
                          --qps 400000 --seconds 0.3 >> "$out" 2>&1; then
                echo "[reproduce] FAILED: fleet $route/$config (see $out)" >&2
                failed=1
            fi
            echo >> "$out"
        done
    done
else
    echo "[reproduce] warning: awsim not built; skipping fleet sweep" >&2
fi

if [ "$failed" -ne 0 ]; then
    exit 1
fi
echo "[reproduce] done: ${#runnable[@]} harnesses -> $RESULTS_DIR"
