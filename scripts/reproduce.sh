#!/usr/bin/env bash
#
# Regenerate every paper table/figure reproduction from the bench
# harnesses into results/.
#
# Each bench binary prints its reproduction (tables/series) to stdout
# before running its google-benchmark microbenchmarks; by default we
# suppress the microbenchmarks (--benchmark_filter that matches
# nothing) so the sweep stays fast. Set FULL=1 to run them too.
#
# The harnesses run JOBS at a time (default: all cores), and the
# fleet policy sweep runs through awsweep's thread pool, so the
# whole reproduction scales with the machine.
#
# Usage:
#   scripts/reproduce.sh                 # reproductions only
#   FULL=1 scripts/reproduce.sh          # + microbenchmarks
#   JOBS=4 scripts/reproduce.sh          # cap the parallelism
#   BUILD_DIR=out scripts/reproduce.sh   # custom build dir
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"
RESULTS_DIR="${RESULTS_DIR:-$ROOT/results}"
FULL="${FULL:-0}"
JOBS="${JOBS:-$(nproc)}"

# Microbenchmark timings are only meaningful uncontended: FULL runs
# are serialized regardless of the JOBS request.
if [ "$FULL" = "1" ] && [ "$JOBS" != "1" ]; then
    echo "[reproduce] FULL=1: forcing JOBS=1 for stable" \
         "microbenchmark timings" >&2
    JOBS=1
fi

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
    cmake -B "$BUILD_DIR" -S "$ROOT" -DAW_BUILD_BENCH=ON
fi
cmake --build "$BUILD_DIR" -j"$(nproc)"

mkdir -p "$RESULTS_DIR"

shopt -s nullglob
benches=("$BUILD_DIR"/bench_*)
# Filter out non-executables (e.g. CMake-generated files).
runnable=()
for b in "${benches[@]}"; do
    [ -f "$b" ] && [ -x "$b" ] && runnable+=("$b")
done
if [ "${#runnable[@]}" -eq 0 ]; then
    echo "error: no bench_* binaries in $BUILD_DIR" \
         "(configure with -DAW_BUILD_BENCH=ON)" >&2
    exit 1
fi

args=()
if [ "$FULL" != "1" ]; then
    # A regex no benchmark name matches: reproduction pass only.
    args+=(--benchmark_filter='$^')
fi

# Run up to JOBS harnesses concurrently; each writes its own file,
# and per-pid exit statuses are collected at the end.
failed=0
pids=()
names=()
for bench in "${runnable[@]}"; do
    name="$(basename "$bench")"
    out="$RESULTS_DIR/$name.txt"
    echo "[reproduce] $name -> results/$name.txt"
    "$bench" "${args[@]}" >"$out" 2>&1 &
    pids+=($!)
    names+=("$name")
    while [ "$(jobs -rp | wc -l)" -ge "$JOBS" ]; do
        wait -n || true # status re-checked per pid below
    done
done
for i in "${!pids[@]}"; do
    if ! wait "${pids[$i]}"; then
        echo "[reproduce] FAILED: ${names[$i]}" \
             "(see results/${names[$i]}.txt)" >&2
        failed=1
    fi
done

# Fleet sweep: the routing-policy x config grid behind docs/FLEET.md,
# via the awsweep experiment engine (8 servers, AW vs tuned C6, all
# four policies), emitting both the summary table and the CSV
# artifact.
AWSWEEP="$BUILD_DIR/awsweep"
if [ -x "$AWSWEEP" ]; then
    echo "[reproduce] awsweep fleet sweep ->" \
         "results/fleet_policies.{txt,csv}"
    if ! "$AWSWEEP" \
            --workloads memcached \
            --configs aw,c1c6 \
            --policies round-robin,random,least-outstanding,pack-first \
            --fleet 8 --qps 400000 --seconds 0.3 \
            --threads "$JOBS" \
            --csv "$RESULTS_DIR/fleet_policies.csv" \
            >"$RESULTS_DIR/fleet_policies.txt" 2>&1; then
        echo "[reproduce] FAILED: awsweep fleet sweep" \
             "(see results/fleet_policies.txt)" >&2
        failed=1
    fi
else
    echo "[reproduce] warning: awsweep not built; skipping fleet sweep" >&2
fi

# Tail attribution: the request-tracer headline behind docs/TRACING.md
# (tuned C6 pays >10x the AW config's p99 wake share at the
# idle-heavy fleet point), emitted as the aw-trace/1 attribution
# sweep in both CSV and JSON.
if [ -x "$AWSWEEP" ]; then
    echo "[reproduce] awsweep tail attribution ->" \
         "results/trace_attribution.{txt,csv,json}"
    if ! "$AWSWEEP" \
            --workloads memcached \
            --configs aw_c6a,c1c6 \
            --policies round-robin \
            --fleet 8 --qps 100000 --seconds 0.3 \
            --threads "$JOBS" \
            --trace-requests "$RESULTS_DIR/trace_attribution.csv" \
            --trace-requests-json "$RESULTS_DIR/trace_attribution.json" \
            >"$RESULTS_DIR/trace_attribution.txt" 2>&1; then
        echo "[reproduce] FAILED: awsweep tail attribution" \
             "(see results/trace_attribution.txt)" >&2
        failed=1
    fi
else
    echo "[reproduce] warning: awsweep not built; skipping tail attribution" >&2
fi

# Kernel speed telemetry: the pinned awperf scenarios, as both the
# human-readable table and the machine-readable BENCH_perf.json the
# CI perf gate consumes. The registry includes fleet_10k (a
# 10,000-server diurnal day through the epoch-parallel fleet
# kernel, ~13 s per repeat single-core), so this step dominates
# the script's runtime. When a stored baseline exists the gate
# script reports the local ratios too (informational here -- the
# hard >2x gate runs in CI, where the runner class is known).
AWPERF="$BUILD_DIR/awperf"
if [ -x "$AWPERF" ]; then
    echo "[reproduce] awperf -> results/BENCH_perf.{txt,json}"
    if ! "$AWPERF" --repeat 3 --json "$RESULTS_DIR/BENCH_perf.json" \
            >"$RESULTS_DIR/BENCH_perf.txt" 2>&1; then
        echo "[reproduce] FAILED: awperf" \
             "(see results/BENCH_perf.txt)" >&2
        failed=1
    elif [ -f "$ROOT/bench/baselines/perf_baseline.json" ] \
            && command -v python3 >/dev/null 2>&1; then
        python3 "$ROOT/scripts/check_perf.py" \
            "$RESULTS_DIR/BENCH_perf.json" \
            "$ROOT/bench/baselines/perf_baseline.json" \
            || echo "[reproduce] note: local perf below stored" \
                    "baseline (informational; CI gate is" \
                    "authoritative)" >&2
    fi
else
    echo "[reproduce] warning: awperf not built; skipping perf telemetry" >&2
fi

if [ "$failed" -ne 0 ]; then
    exit 1
fi
echo "[reproduce] done: ${#runnable[@]} harnesses -> $RESULTS_DIR"
