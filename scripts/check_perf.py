#!/usr/bin/env python3
"""Gate simulation-kernel speed against a stored awperf baseline.

Usage:
    check_perf.py CURRENT.json BASELINE.json [--max-regression 2.0]
                  [--metric events_per_s]

Both files must be aw-perf/1 documents written by `awperf --json`
(see docs/PERFORMANCE.md for the schema). For every scenario present
in the baseline, the current throughput metric must be no worse than
baseline/METRIC > MAX_REGRESSION would imply; the generous default
threshold (2x) exists so shared-CI-runner noise and hardware
differences cannot flake the gate while real kernel regressions --
which historically show up as integer factors -- still trip it.

Exit status: 0 = pass, 1 = regression or schema violation.
"""

import argparse
import json
import math
import sys

SCHEMA = "aw-perf/1"

#: Keys every scenario entry must carry, with the type they must
#: parse as. Changing this set is a schema change: bump SCHEMA and
#: docs/PERFORMANCE.md together.
REQUIRED_KEYS = {
    "name": str,
    "repeat": int,
    "wall_s": float,
    "sim_s": float,
    "events": int,
    "requests": int,
    "sim_per_wall": float,
    "events_per_s": float,
    "requests_per_s": float,
}

THROUGHPUT_METRICS = ("sim_per_wall", "events_per_s",
                      "requests_per_s")


def load(path):
    """Parse and schema-check one aw-perf/1 document."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: top level must be an object")
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema is {doc.get('schema')!r}, "
            f"expected {SCHEMA!r}")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ValueError(f"{path}: 'scenarios' must be a non-empty "
                         "list")
    by_name = {}
    for entry in scenarios:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: scenario entries must be "
                             "objects")
        for key, typ in REQUIRED_KEYS.items():
            if key not in entry:
                raise ValueError(
                    f"{path}: scenario {entry.get('name')!r} "
                    f"missing key {key!r}")
            value = entry[key]
            if typ is float and isinstance(value, int):
                value = float(value)
            if not isinstance(value, typ):
                raise ValueError(
                    f"{path}: scenario {entry.get('name')!r} key "
                    f"{key!r} is {type(entry[key]).__name__}, "
                    f"expected {typ.__name__}")
            # json.load() happily parses NaN/Infinity literals, and
            # NaN would then sail through the ratio comparison below
            # (any comparison with NaN is False) -- a malformed
            # document must be a schema error, not a silent pass.
            if typ in (int, float) and not math.isfinite(value):
                raise ValueError(
                    f"{path}: scenario {entry.get('name')!r} key "
                    f"{key!r} is {value!r}, expected a finite "
                    "number")
            if typ in (int, float) and value < 0:
                raise ValueError(
                    f"{path}: scenario {entry.get('name')!r} key "
                    f"{key!r} is negative ({value!r})")
        name = entry["name"]
        if name in by_name:
            raise ValueError(f"{path}: duplicate scenario {name!r}")
        by_name[name] = entry
    return by_name


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", help="awperf --json output of "
                        "this build")
    parser.add_argument("baseline", help="stored baseline (e.g. "
                        "bench/baselines/perf_baseline.json)")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when baseline/current exceeds "
                        "this factor (default: 2.0)")
    parser.add_argument("--metric", default="events_per_s",
                        choices=THROUGHPUT_METRICS,
                        help="throughput metric to gate on "
                        "(default: events_per_s)")
    args = parser.parse_args()

    if args.max_regression <= 1.0:
        parser.error("--max-regression must be > 1.0")

    try:
        current = load(args.current)
        baseline = load(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"check_perf: FAIL: {err}", file=sys.stderr)
        return 1

    failures = []
    print(f"check_perf: metric={args.metric} "
          f"max-regression={args.max_regression:g}x")
    header = (f"{'scenario':<18} {'baseline':>12} {'current':>12} "
              f"{'ratio':>7}  verdict")
    print(header)
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            failures.append(f"scenario {name!r} missing from "
                            f"{args.current}")
            print(f"{name:<18} {base[args.metric]:>12.4g} "
                  f"{'-':>12} {'-':>7}  MISSING")
            continue
        base_v = float(base[args.metric])
        cur_v = float(cur[args.metric])
        if base_v <= 0.0:
            # A zero-events baseline entry can never gate anything
            # (every ratio would be 0): that is a broken baseline,
            # not a pass -- and guarding here also keeps the ratio
            # below away from a 0/0.
            failures.append(f"scenario {name!r}: non-positive "
                            f"baseline {args.metric} "
                            f"({base_v:.4g}); regenerate the "
                            f"baseline")
            verdict, ratio_str = "FAIL", "-"
        elif cur_v <= 0.0:
            failures.append(f"scenario {name!r}: non-positive "
                            f"current {args.metric}")
            verdict, ratio_str = "FAIL", "-"
        else:
            ratio = base_v / cur_v
            ratio_str = f"{ratio:.2f}x"
            if ratio > args.max_regression:
                failures.append(
                    f"scenario {name!r}: {args.metric} regressed "
                    f"{ratio:.2f}x (baseline {base_v:.4g}, current "
                    f"{cur_v:.4g})")
                verdict = "FAIL"
            else:
                verdict = "ok"
        print(f"{name:<18} {base_v:>12.4g} {cur_v:>12.4g} "
              f"{ratio_str:>7}  {verdict}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<18} {'-':>12} "
              f"{float(current[name][args.metric]):>12.4g} "
              f"{'-':>7}  new (not gated)")

    if failures:
        for failure in failures:
            print(f"check_perf: FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_perf: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
