/**
 * @file
 * Extension: governor sensitivity -- idle-governance policy x
 * C-state configuration.
 *
 * The paper's Sec 1 argument is that servers "rarely enter a deep
 * idle power state" because OS governor mispredictions make deep
 * entries too risky -- and that AgileWatts' fast C6A wake makes the
 * quality of the idle governor far less critical. This harness
 * quantifies exactly that: every built-in governor (menu, teo,
 * ladder, the static always-shallow / always-deep endpoints, and
 * the clairvoyant oracle) against three hierarchies -- legacy with
 * C6 disabled (nothing deep to win), tuned legacy C6 (deep but
 * expensive) and AW's C6A (deep and nearly free).
 *
 * Headline: under tuned C6 the oracle-minus-menu package-power gap
 * is watts (governor quality matters a lot) and the always-C6
 * endpoint multiplies latency; under AW every governor collapses
 * onto the same power and latency point.
 */

#include "bench_common.hh"

#include <cmath>
#include <string>
#include <vector>

#include "analysis/table.hh"
#include "exp/runner.hh"
#include "server/server_sim.hh"
#include "sim/logging.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;

/** Pretty label per config registry name. */
const char *
configLabel(const std::string &key)
{
    if (key == "c1only")
        return "legacy, C6 off";
    if (key == "c1c6")
        return "tuned C6";
    if (key == "aw_c6a")
        return "AW (C6A)";
    sim::fatal("no pretty label for config '%s'", key.c_str());
}

void
reproduce()
{
    banner("Extension: governor sensitivity -- idle governor x "
           "C-state config (memcached, 50 KQPS trough)");

    exp::ExperimentSpec grid;
    grid.name = "governor-config";
    grid.workloads = {"memcached"};
    grid.configs = {"c1only", "c1c6", "aw_c6a"};
    grid.governors = {"menu",           "teo",
                      "ladder",         "static:shallowest",
                      "static:deepest", "oracle"};
    grid.qps = {50e3};
    grid.seconds = 0.4;
    grid.warmupSeconds = 0.04;
    const auto sweep = exp::SweepRunner().run(grid);

    analysis::TableWriter t({"config", "governor", "pkg W",
                             "mJ/req", "avg (us)", "p99 (us)",
                             "deep idle"});
    for (const auto &config : grid.configs) {
        for (const auto &governor : grid.governors) {
            const auto &r = sweep.at(
                {.config = config, .governor = governor});
            t.addRow({configLabel(config), governor,
                      analysis::cell("%.1f", r.powerW),
                      analysis::cell("%.3f", r.energyPerRequestMj),
                      analysis::cell("%.1f", r.avgLatencyUs),
                      analysis::cell("%.1f", r.p99LatencyUs),
                      analysis::cell("%.1f%%",
                                     100 * r.deepIdleShare)});
        }
    }
    t.print();

    // The sensitivity headline, spelled out.
    auto power = [&sweep](const char *config, const char *governor) {
        return sweep.at({.config = config, .governor = governor})
            .powerW;
    };
    auto lat = [&sweep](const char *config, const char *governor) {
        return sweep.at({.config = config, .governor = governor})
            .avgLatencyUs;
    };
    const double gap_legacy =
        power("c1c6", "menu") - power("c1c6", "oracle");
    const double gap_aw = std::fabs(power("aw_c6a", "menu") -
                                    power("aw_c6a", "oracle"));
    std::printf(
        "\noracle-minus-menu package power gap: %.2f W under tuned "
        "C6, %.2f W under AW\n(%.0f%% of the legacy gap). Always-C6 "
        "costs %.1fx menu's average latency on\nthe legacy "
        "hierarchy but %.2fx under AW: with C6A's ~sub-us wake, "
        "idle-state\nselection quality simply stops mattering -- "
        "the paper's Sec 1 claim.\n",
        gap_legacy, gap_aw, 100.0 * gap_aw / gap_legacy,
        lat("c1c6", "static:deepest") / lat("c1c6", "menu"),
        lat("aw_c6a", "static:deepest") / lat("aw_c6a", "menu"));
}

/** Microbenchmark: full server runs under each governor. */
void
BM_GovernorRun(benchmark::State &state,
               const std::string &governor)
{
    const auto profile = workload::WorkloadProfile::memcached();
    for (auto _ : state) {
        server::ServerConfig cfg = server::ServerConfig::legacyC1C6();
        cfg.governor = governor;
        server::ServerSim srv(cfg, profile, 50e3);
        benchmark::DoNotOptimize(
            srv.run(sim::fromMs(50.0), sim::fromMs(5.0)));
    }
}
BENCHMARK_CAPTURE(BM_GovernorRun, menu, std::string("menu"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GovernorRun, teo, std::string("teo"))
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GovernorRun, oracle, std::string("oracle"))
    ->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
