/**
 * @file
 * Fig 11 reproduction: the Turbo / idle-state interaction. Six
 * configurations (Turbo on/off x {No_C6, No_C6+No_C1E, C6A}),
 * average and tail latency across the Memcached sweep.
 *
 * The paper's three observations must hold:
 *  1. NT_No_C6 beats NT_No_C6,No_C1E at the tail (C1E's 10 us
 *     transition hurts less than it helps? no -- other way: see
 *     below) -- specifically disabling C1E changes latency;
 *  2. enabling Turbo with C1-only idle does NOT improve
 *     performance (no thermal credit accrues at 1.44 W);
 *  3. Turbo + C6A recovers the burst headroom (dashed green
 *     line): lowest latency of all.
 */

#include "bench_common.hh"

#include <vector>

#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();
    const auto &rates = profile.rateLevels();

    const std::vector<server::ServerConfig> configs = {
        server::ServerConfig::ntNoC6(),
        server::ServerConfig::ntNoC6NoC1e(),
        server::ServerConfig::ntAwNoC6NoC1e(),
        server::ServerConfig::tNoC6(),
        server::ServerConfig::tNoC6NoC1e(),
        server::ServerConfig::tAwNoC6NoC1e(),
    };

    std::vector<std::vector<server::RunResult>> runs;
    for (const auto &cfg : configs)
        runs.push_back(server::sweepRates(cfg, profile, rates));

    banner("Fig 11(a,b): average latency (us)");
    {
        std::vector<std::string> hdr{"KQPS"};
        for (const auto &cfg : configs)
            hdr.push_back(cfg.name);
        analysis::TableWriter t(hdr);
        for (std::size_t i = 0; i < rates.size(); ++i) {
            std::vector<std::string> row{
                analysis::cell("%.0f", rates[i] / 1e3)};
            for (std::size_t c = 0; c < configs.size(); ++c) {
                row.push_back(analysis::cell(
                    "%.1f", runs[c][i].avgLatencyUs));
            }
            t.addRow(std::move(row));
        }
        t.print();
    }

    banner("Fig 11(c,d): tail (p99) latency (us)");
    {
        std::vector<std::string> hdr{"KQPS"};
        for (const auto &cfg : configs)
            hdr.push_back(cfg.name);
        analysis::TableWriter t(hdr);
        for (std::size_t i = 0; i < rates.size(); ++i) {
            std::vector<std::string> row{
                analysis::cell("%.0f", rates[i] / 1e3)};
            for (std::size_t c = 0; c < configs.size(); ++c) {
                row.push_back(analysis::cell(
                    "%.1f", runs[c][i].p99LatencyUs));
            }
            t.addRow(std::move(row));
        }
        t.print();
    }

    // The three key observations, checked numerically at 300 KQPS.
    const std::size_t mid = 4; // 300 KQPS index
    const double nt_c1 = runs[1][mid].avgLatencyUs;
    const double t_c1 = runs[4][mid].avgLatencyUs;
    const double nt_aw = runs[2][mid].avgLatencyUs;
    const double t_aw = runs[5][mid].avgLatencyUs;
    std::printf("\nat %.0f KQPS:\n", rates[mid] / 1e3);
    std::printf("  Turbo with C1-only idle: %.1f -> %.1f us "
                "(%+.1f%%, paper: no improvement)\n",
                nt_c1, t_c1, 100 * (t_c1 / nt_c1 - 1.0));
    std::printf("  Turbo with C6A idle:     %.1f -> %.1f us "
                "(%+.1f%%, paper: clear improvement)\n",
                nt_aw, t_aw, 100 * (t_aw / nt_aw - 1.0));
}

void
BM_TurboDecision(benchmark::State &state)
{
    server::TurboModel turbo;
    turbo.setPower(0, 0.3);
    sim::Tick now = 0;
    for (auto _ : state) {
        now += sim::fromUs(10.0);
        benchmark::DoNotOptimize(
            turbo.canBoost(now, sim::fromUs(8.0)));
    }
}
BENCHMARK(BM_TurboDecision);

} // namespace

AW_BENCH_MAIN(reproduce)
