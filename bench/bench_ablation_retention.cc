/**
 * @file
 * Ablation: in-place context retention (AW) vs external S/R SRAM
 * (legacy C6) across context sizes and core frequencies. This is
 * the Sec 4.1 design argument quantified: the external path costs
 * microseconds that scale with context size and worsen at low
 * frequency; the in-place path is a handful of PMA cycles and a
 * couple of milliwatts.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/pma.hh"
#include "power/srpg.hh"

namespace {

using namespace aw;
using power::ContextRetention;
using power::ExternalSaveRestore;

void
reproduce()
{
    banner("Ablation: context retention techniques");
    analysis::TableWriter t({"context", "freq",
                             "external S/R (us, each way)",
                             "in-place (ns)",
                             "in-place power @P1 (mW)"});
    const double in_place_ns = sim::toNs(
        core::C6aController::kPmaClock.cycles(
            ContextRetention::kSaveCycles));
    for (const double kb : {2.0, 8.0, 16.0, 32.0}) {
        for (const double ghz : {0.8, 2.2}) {
            const ExternalSaveRestore ext(kb * 1024.0);
            const ContextRetention inp(kb * 1024.0);
            t.addRow(
                {analysis::cell("%.0f KB", kb),
                 analysis::cell("%.1f GHz", ghz),
                 analysis::cell("%.1f",
                                sim::toUs(ext.transferTime(
                                    sim::Frequency::ghz(ghz)))),
                 analysis::cell("%.0f", in_place_ns),
                 analysis::cell("%.1f",
                                power::asMilliwatts(
                                    inp.powerAtP1()))});
        }
    }
    t.print();

    std::printf("\nthe external path is >1000x slower at every "
                "point and scales with context size;\nin-place "
                "retention is 4 PMA cycles at ~2 mW for the 8 KB "
                "Skylake context.\n");
}

void
BM_ExternalTransferTime(benchmark::State &state)
{
    const ExternalSaveRestore ext;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ext.transferTime(sim::Frequency::ghz(2.2)));
    }
}
BENCHMARK(BM_ExternalTransferTime);

} // namespace

AW_BENCH_MAIN(reproduce)
