/**
 * @file
 * Extension: fleet-level energy -- routing policy x C-state
 * configuration x fleet size.
 *
 * The paper's argument is datacenter-scale (Sec 2: fleets of
 * latency-critical servers idle at 5-25% utilization), so this
 * harness asks its question at fleet scale: how does the request
 * routing policy interact with the idle-state architecture? Spread
 * policies (round-robin, random, least-outstanding) hold every
 * server at shallow utilization; pack-first consolidates traffic so
 * spare servers sink into uninterrupted deep idle. The headline:
 * pack-first + AgileWatts beats spread + tuned C6 on fleet energy
 * at comparable p99, and C6A makes even the consolidated (loaded)
 * servers cheap to wake.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "cluster/fleet.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using cluster::FleetConfig;
using cluster::FleetSim;

struct ConfigPoint
{
    const char *label;
    server::ServerConfig cfg;
};

std::vector<ConfigPoint>
configPoints()
{
    return {
        {"C1-only", server::ServerConfig::legacyC1Only()},
        {"tuned C6", server::ServerConfig::legacyC1C6()},
        {"AW (C6A)", server::ServerConfig::awC6aOnly()},
    };
}

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();
    const double fleet_qps = 400e3; // 50 KQPS/server at K = 8
    const sim::Tick window = sim::fromSec(0.4);
    const sim::Tick warmup = sim::fromMs(40.0);

    banner("Extension: fleet energy -- routing policy x C-state "
           "config (K = 8)");
    analysis::TableWriter t({"policy", "config", "fleet W", "mJ/req",
                             "avg (us)", "p99 (us)", "deep idle",
                             "spare deep"});
    for (const auto &policy : cluster::routingPolicyNames()) {
        for (const auto &point : configPoints()) {
            FleetConfig fc;
            fc.servers = 8;
            fc.server = point.cfg;
            fc.server.idlePromotion = true;
            fc.routing = policy;
            FleetSim fleet(fc, profile, fleet_qps);
            const auto r = fleet.run(window, warmup);
            t.addRow({policy, point.label,
                      analysis::cell("%.1f", r.fleetPower),
                      analysis::cell("%.3f", r.energyPerRequestMj),
                      analysis::cell("%.1f", r.avgLatencyUs),
                      analysis::cell("%.1f", r.p99LatencyUs),
                      analysis::cell("%.1f%%",
                                     100 * r.deepIdleShare),
                      analysis::cell("%.1f%%",
                                     100 * r.maxServerDeepShare)});
        }
    }
    t.print();
    std::printf(
        "\nspread policies pin every server at shallow-idle "
        "utilization; pack-first\nparks the spare servers in "
        "uninterrupted deep idle (spare deep -> 100%%).\nAW makes "
        "the remaining difference: with C6A even the packed "
        "servers' short\ngaps harvest deep-idle power, so "
        "pack-first + AW is the cheapest cell at\ncomparable p99.\n");

    banner("Extension: fleet size scaling at fixed per-server load "
           "(50 KQPS/server, tuned C6)");
    analysis::TableWriter s({"K", "policy", "fleet W", "W/server",
                             "mJ/req", "p99 (us)", "deep idle"});
    for (const unsigned k : {2u, 4u, 8u, 16u}) {
        for (const char *policy : {"round-robin", "pack-first"}) {
            FleetConfig fc;
            fc.servers = k;
            fc.server = server::ServerConfig::legacyC1C6();
            fc.server.idlePromotion = true;
            fc.routing = policy;
            FleetSim fleet(fc, profile, 50e3 * k);
            const auto r = fleet.run(window, warmup);
            s.addRow({analysis::cell("%u", k), policy,
                      analysis::cell("%.1f", r.fleetPower),
                      analysis::cell("%.1f", r.fleetPower / k),
                      analysis::cell("%.3f", r.energyPerRequestMj),
                      analysis::cell("%.1f", r.p99LatencyUs),
                      analysis::cell("%.1f%%",
                                     100 * r.deepIdleShare)});
        }
    }
    s.print();
    std::printf(
        "\nunder the legacy hierarchy per-server watts fall with K "
        "for pack-first\n(a growing majority of servers sit at the "
        "deep-idle floor) but stay flat\nfor round-robin: "
        "consolidation headroom grows with the fleet while\nspread "
        "routing wastes it. AW (table above) delivers the same "
        "savings at\nany K with no routing help at all.\n");
}

void
BM_FleetRun(benchmark::State &state)
{
    const auto profile = workload::WorkloadProfile::memcached();
    const auto k = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        FleetConfig fc;
        fc.servers = k;
        fc.server = server::ServerConfig::awC6aOnly();
        fc.server.idlePromotion = true;
        fc.routing = "pack-first";
        FleetSim fleet(fc, profile, 50e3 * k);
        benchmark::DoNotOptimize(
            fleet.run(sim::fromMs(50.0), sim::fromMs(5.0)));
    }
}
BENCHMARK(BM_FleetRun)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
