/**
 * @file
 * Extension: fleet-level energy -- routing policy x C-state
 * configuration x fleet size.
 *
 * The paper's argument is datacenter-scale (Sec 2: fleets of
 * latency-critical servers idle at 5-25% utilization), so this
 * harness asks its question at fleet scale: how does the request
 * routing policy interact with the idle-state architecture? Spread
 * policies (round-robin, random, least-outstanding) hold every
 * server at shallow utilization; pack-first consolidates traffic so
 * spare servers sink into uninterrupted deep idle. The headline:
 * pack-first + AgileWatts beats spread + tuned C6 on fleet energy
 * at comparable p99, and C6A makes even the consolidated (loaded)
 * servers cheap to wake.
 *
 * Both grids run through exp::SweepRunner (the policy x config grid
 * and the per-server-load fleet scaling sweep), executing the fleet
 * runs in parallel.
 */

#include "bench_common.hh"

#include <vector>

#include "analysis/table.hh"
#include "cluster/fleet.hh"
#include "cluster/routing.hh"
#include "exp/runner.hh"
#include "sim/logging.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using cluster::FleetConfig;
using cluster::FleetSim;

/** Pretty label per config registry name. */
const char *
configLabel(const std::string &key)
{
    if (key == "c1only")
        return "C1-only";
    if (key == "c1c6")
        return "tuned C6";
    if (key == "aw_c6a")
        return "AW (C6A)";
    sim::fatal("no pretty label for config '%s'", key.c_str());
}

void
reproduce()
{
    const double window_s = 0.4;
    const double warmup_s = 0.04;

    banner("Extension: fleet energy -- routing policy x C-state "
           "config (K = 8)");

    exp::ExperimentSpec grid;
    grid.name = "fleet-policy-config";
    grid.workloads = {"memcached"};
    grid.configs = {"c1only", "c1c6", "aw_c6a"};
    grid.policies = cluster::routingPolicyNames();
    grid.fleetSizes = {8};
    grid.qps = {400e3}; // 50 KQPS/server at K = 8
    grid.seconds = window_s;
    grid.warmupSeconds = warmup_s;
    const auto sweep = exp::SweepRunner().run(grid);

    analysis::TableWriter t({"policy", "config", "fleet W", "mJ/req",
                             "avg (us)", "p99 (us)", "deep idle",
                             "spare deep"});
    for (const auto &policy : grid.policies) {
        for (const auto &config : grid.configs) {
            const auto &r =
                sweep.at({.config = config, .policy = policy});
            t.addRow({policy, configLabel(config),
                      analysis::cell("%.1f", r.powerW),
                      analysis::cell("%.3f", r.energyPerRequestMj),
                      analysis::cell("%.1f", r.avgLatencyUs),
                      analysis::cell("%.1f", r.p99LatencyUs),
                      analysis::cell("%.1f%%",
                                     100 * r.deepIdleShare),
                      analysis::cell("%.1f%%",
                                     100 * r.maxServerDeepShare)});
        }
    }
    t.print();
    std::printf(
        "\nspread policies pin every server at shallow-idle "
        "utilization; pack-first\nparks the spare servers in "
        "uninterrupted deep idle (spare deep -> 100%%).\nAW makes "
        "the remaining difference: with C6A even the packed "
        "servers' short\ngaps harvest deep-idle power, so "
        "pack-first + AW is the cheapest cell at\ncomparable p99.\n");

    banner("Extension: fleet size scaling at fixed per-server load "
           "(50 KQPS/server, tuned C6)");

    exp::ExperimentSpec scaling;
    scaling.name = "fleet-size-scaling";
    scaling.workloads = {"memcached"};
    scaling.configs = {"c1c6"};
    scaling.policies = {"round-robin", "pack-first"};
    scaling.fleetSizes = {2, 4, 8, 16};
    scaling.qps = {50e3};
    scaling.qpsPerServer = true;
    scaling.seconds = window_s;
    scaling.warmupSeconds = warmup_s;
    const auto ssweep = exp::SweepRunner().run(scaling);

    analysis::TableWriter s({"K", "policy", "fleet W", "W/server",
                             "mJ/req", "p99 (us)", "deep idle"});
    for (const unsigned k : scaling.fleetSizes) {
        for (const auto &policy : scaling.policies) {
            const auto &r =
                ssweep.at({.policy = policy, .servers = k});
            s.addRow({analysis::cell("%u", k), policy,
                      analysis::cell("%.1f", r.powerW),
                      analysis::cell("%.1f", r.powerW / k),
                      analysis::cell("%.3f", r.energyPerRequestMj),
                      analysis::cell("%.1f", r.p99LatencyUs),
                      analysis::cell("%.1f%%",
                                     100 * r.deepIdleShare)});
        }
    }
    s.print();
    std::printf(
        "\nunder the legacy hierarchy per-server watts fall with K "
        "for pack-first\n(a growing majority of servers sit at the "
        "deep-idle floor) but stay flat\nfor round-robin: "
        "consolidation headroom grows with the fleet while\nspread "
        "routing wastes it. AW (table above) delivers the same "
        "savings at\nany K with no routing help at all.\n");
}

void
BM_FleetRun(benchmark::State &state)
{
    const auto profile = workload::WorkloadProfile::memcached();
    const auto k = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        FleetConfig fc;
        fc.servers = k;
        fc.server = server::ServerConfig::awC6aOnly();
        fc.server.idlePromotion = true;
        fc.routing = "pack-first";
        FleetSim fleet(fc, profile, 50e3 * k);
        benchmark::DoNotOptimize(
            fleet.run(sim::fromMs(50.0), sim::fromMs(5.0)));
    }
}
BENCHMARK(BM_FleetRun)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
