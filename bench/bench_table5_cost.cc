/**
 * @file
 * Table 5 reproduction: AW yearly cost savings (in $M) per 100K
 * servers running Memcached across the QPS sweep.
 */

#include "bench_common.hh"

#include "analysis/cost_model.hh"
#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();
    const analysis::CostModel cost; // $0.125/kWh, PUE 1, 100K srv

    banner("Table 5: AW yearly cost savings ($M) per 100K servers "
           "(Memcached)");
    analysis::TableWriter t({"QPS", "Baseline W/CPU", "AW W/CPU",
                             "Savings ($M/100K servers)"});
    for (const double qps : profile.rateLevels()) {
        server::ServerSim base(server::ServerConfig::baseline(),
                               profile, qps);
        const auto b = base.run();
        server::ServerSim agile(server::ServerConfig::awBaseline(),
                                profile, qps);
        const auto a = agile.run();
        const double cores = base.config().cores;
        const double usd = cost.yearlySavingsUsd(
            b.avgCorePower * cores, a.avgCorePower * cores);
        t.addRow({analysis::cell("%.0fK", qps / 1e3),
                  analysis::cell("%.2f", b.avgCorePower * cores),
                  analysis::cell("%.2f", a.avgCorePower * cores),
                  analysis::cell("%.2f", usd / 1e6)});
    }
    t.print();
    std::printf("\npaper: savings between 0.33 and 0.59 $M/yr per "
                "100K servers, peaking at low-mid load;\nsavings "
                "grow proportionally with PUE.\n");
}

void
BM_YearlySavings(benchmark::State &state)
{
    const analysis::CostModel cost;
    for (auto _ : state)
        benchmark::DoNotOptimize(cost.yearlySavingsUsd(20.0, 10.0));
}
BENCHMARK(BM_YearlySavings);

} // namespace

AW_BENCH_MAIN(reproduce)
