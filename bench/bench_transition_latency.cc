/**
 * @file
 * Sec 5.2 reproduction: C6A/C6AE entry (<20 ns), exit (<80 ns) and
 * round trip (<100 ns), the C6 breakdown of Sec 3, and the ~900x
 * speedup. The PMA FSM is executed event by event, not just
 * queried, so the numbers come out of the running state machine.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/aw_core.hh"
#include "cstate/transition.hh"
#include "sim/event_queue.hh"

namespace {

using namespace aw;

void
reproduce()
{
    core::AwCoreModel model;
    auto &ctl = model.controller();

    banner("Sec 5.2: C6A transition anatomy (PMA FSM executed "
           "event by event)");
    sim::Simulator simr;
    ctl.runEntry(simr, nullptr);
    simr.run();
    ctl.runExit(simr, nullptr);
    simr.run();

    analysis::TableWriter t({"phase", "duration (ns)"});
    for (const auto &rec : ctl.trace()) {
        if (rec.end == rec.start)
            continue;
        t.addRow({core::name(rec.phase),
                  analysis::cell("%.1f",
                                 sim::toNs(rec.end - rec.start))});
    }
    t.print();

    std::printf("\nentry %.1f ns (paper <20), exit %.1f ns "
                "(paper <80), round trip %.1f ns (paper <100)\n",
                sim::toNs(ctl.entryLatency()),
                sim::toNs(ctl.exitLatency()),
                sim::toNs(ctl.roundTripLatency()));

    banner("Sec 3: legacy C6 breakdown at 800 MHz, 50% dirty");
    model.caches().setDirtyFraction(0.5);
    auto engine = model.makeTransitionEngine();
    const auto freq = sim::Frequency::mhz(800.0);
    const auto in = engine.c6EntryBreakdown(freq);
    const auto out = engine.c6ExitBreakdown(freq);
    analysis::TableWriter c6({"step", "time (us)"});
    c6.addRow({"entry: flush L1/L2",
               analysis::cell("%.1f", sim::toUs(in.flush))});
    c6.addRow({"entry: save context to S/R SRAM",
               analysis::cell("%.1f", sim::toUs(in.contextSave))});
    c6.addRow({"entry: PG controller + flow",
               analysis::cell("%.1f", sim::toUs(in.controller))});
    c6.addRow({"exit: hw wake (ungate, PLL relock, reset)",
               analysis::cell("%.1f", sim::toUs(out.hwWake))});
    c6.addRow({"exit: restore context",
               analysis::cell("%.1f",
                              sim::toUs(out.contextRestore))});
    c6.addRow({"exit: microcode re-init",
               analysis::cell("%.1f",
                              sim::toUs(out.microcodeReinit))});
    c6.addRow({"exit: resume tail",
               analysis::cell("%.1f", sim::toUs(out.resumeTail))});
    c6.print();

    const auto c6lat = engine.latency(cstate::CStateId::C6, freq);
    const auto c6a_hw = engine.hardwareLatency(
        cstate::CStateId::C6A, sim::Frequency::ghz(2.2));
    std::printf("\nC6 total (sw+hw) %.0f us; speedup vs C6A "
                "hardware: %.0fx (paper: up to 900x)\n",
                sim::toUs(c6lat.total()),
                static_cast<double>(c6lat.total()) /
                    static_cast<double>(c6a_hw.total()));
}

void
BM_PmaEntryExitFsm(benchmark::State &state)
{
    core::AwCoreModel model;
    sim::Simulator simr;
    auto &ctl = model.controller();
    for (auto _ : state) {
        ctl.runEntry(simr, nullptr);
        simr.run();
        ctl.runExit(simr, nullptr);
        simr.run();
        ctl.clearTrace();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PmaEntryExitFsm);

void
BM_SnoopFlowFsm(benchmark::State &state)
{
    core::AwCoreModel model;
    sim::Simulator simr;
    auto &ctl = model.controller();
    ctl.runEntry(simr, nullptr);
    simr.run();
    const sim::Tick serve = sim::fromNs(6.4);
    for (auto _ : state) {
        ctl.runSnoop(simr, serve, nullptr);
        simr.run();
        ctl.clearTrace();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnoopFlowFsm);

} // namespace

AW_BENCH_MAIN(reproduce)
