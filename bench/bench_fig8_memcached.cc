/**
 * @file
 * Fig 8 reproduction (Memcached vs baseline: P-states disabled,
 * Turbo + C-states enabled):
 *  (a) baseline C-state residency vs request rate,
 *  (b) AW average-power reduction + avg/tail latency degradation,
 *  (c) worst-case vs expected-case response-time degradation,
 *  (d) performance scalability from 2.0 to 2.2 GHz.
 */

#include "bench_common.hh"

#include <algorithm>
#include <vector>

#include "analysis/power_model.hh"
#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using cstate::CStateId;

/** Measured Fig 8d scalability, filled by the (d) pass and used
 *  by the (b)/(c) analytical models, like the paper does. */
std::vector<double> scalability;

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();
    const auto &rates = profile.rateLevels();

    // --- (d) performance scalability: 2.0 -> 2.2 GHz ------------
    banner("Fig 8(d): performance scalability (2.0 -> 2.2 GHz)");
    analysis::TableWriter td({"KQPS", "scalability"});
    for (const double qps : rates) {
        server::ServerConfig slow = server::ServerConfig::baseline();
        slow.turboEnabled = false;
        slow.pstates.base = sim::Frequency::ghz(2.0);
        server::ServerConfig fast = slow;
        fast.pstates.base = sim::Frequency::ghz(2.2);
        server::ServerSim s(slow, profile, qps);
        server::ServerSim f(fast, profile, qps);
        const auto rs = s.run();
        const auto rf = f.run();
        // Scalability: latency improvement per relative frequency
        // increase (how much of the +10% frequency shows up).
        const double gain = rs.avgLatencyUs / rf.avgLatencyUs - 1.0;
        const double sc = gain / (2.2 / 2.0 - 1.0);
        scalability.push_back(std::clamp(sc, 0.0, 1.0));
        td.addRow({analysis::cell("%.0f", qps / 1e3),
                   analysis::cell("%.0f%%",
                                  100 * scalability.back())});
    }
    td.print();

    // --- (a) residency + (b) power/latency -----------------------
    core::AwCoreModel aw_model;
    const analysis::CStatePowerModel model(
        server::StatePowers::fromModels(aw_model.ppa()));

    banner("Fig 8(a): baseline C-state residency (%)");
    analysis::TableWriter ta({"KQPS", "C0", "C1", "C1E", "C6"});

    std::vector<server::RunResult> base_runs, aw_runs;
    for (const double qps : rates) {
        server::ServerSim base(server::ServerConfig::baseline(),
                               profile, qps);
        base_runs.push_back(base.run());
        server::ServerSim agile(server::ServerConfig::awBaseline(),
                                profile, qps);
        aw_runs.push_back(agile.run());
    }

    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto &r = base_runs[i].residency;
        ta.addRow({analysis::cell("%.0f", rates[i] / 1e3),
                   analysis::cell("%.1f",
                                  100 * r.shareOf(CStateId::C0)),
                   analysis::cell("%.1f",
                                  100 * r.shareOf(CStateId::C1)),
                   analysis::cell("%.1f",
                                  100 * r.shareOf(CStateId::C1E)),
                   analysis::cell("%.1f",
                                  100 * r.shareOf(CStateId::C6))});
    }
    ta.print();

    banner("Fig 8(b): AW AvgP reduction and latency degradation");
    analysis::TableWriter tb({"KQPS", "AvgP red. (model)",
                              "AvgP red. (sim)", "avg lat deg.",
                              "tail lat deg."});
    double sum_model = 0.0;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto &b = base_runs[i];
        const auto &a = aw_runs[i];
        const double est = model.awSavingsVsMeasured(
            b.residency, b.avgCorePower);
        sum_model += est;
        const double sim_red =
            1.0 - a.avgCorePower / b.avgCorePower;
        const double avg_deg =
            a.avgLatencyUs / b.avgLatencyUs - 1.0;
        const double tail_deg =
            a.p99LatencyUs / b.p99LatencyUs - 1.0;
        tb.addRow({analysis::cell("%.0f", rates[i] / 1e3),
                   analysis::cell("%.1f%%", 100 * est),
                   analysis::cell("%.1f%%", 100 * sim_red),
                   analysis::cell("%+.2f%%", 100 * avg_deg),
                   analysis::cell("%+.2f%%", 100 * tail_deg)});
    }
    tb.print();
    std::printf("\naverage model AvgP reduction: %.1f%% "
                "(paper Fig 8b avg: 23.5%%; up to 38%% at low "
                "load, ~10%% at 500 KQPS)\n",
                100 * sum_model / rates.size());

    banner("Fig 8(c): response-time degradation (worst vs expected "
           "case, server vs end-to-end)");
    analysis::TableWriter tc({"KQPS", "worst e2e", "worst server",
                              "expected e2e", "expected server"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto &b = base_runs[i];
        const auto d = analysis::awLatencyDegradation(
            b.avgLatencyUs,
            sim::toUs(profile.service().meanServiceTime()),
            sim::toUs(server::ServerConfig::baseline()
                          .networkLatency),
            scalability[i], b.transitionsPerRequest);
        tc.addRow({analysis::cell("%.0f", rates[i] / 1e3),
                   analysis::cell("%.3f%%",
                                  100 * d.worstCaseE2eFrac),
                   analysis::cell("%.3f%%",
                                  100 * d.worstCaseServerFrac),
                   analysis::cell("%.3f%%",
                                  100 * d.expectedE2eFrac),
                   analysis::cell("%.3f%%",
                                  100 * d.expectedServerFrac)});
    }
    tc.print();
    std::printf("\nend-to-end degradation is negligible: the "
                "117 us network latency dominates.\n");
}

void
BM_MemcachedBaselinePoint(benchmark::State &state)
{
    const auto profile = workload::WorkloadProfile::memcached();
    for (auto _ : state) {
        server::ServerSim srv(server::ServerConfig::baseline(),
                              profile, 100e3);
        benchmark::DoNotOptimize(
            srv.run(sim::fromMs(100.0), sim::fromMs(10.0)));
    }
}
BENCHMARK(BM_MemcachedBaselinePoint)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
