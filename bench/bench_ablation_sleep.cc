/**
 * @file
 * Ablation: cache sleep-mode depth. The sleep transistors have
 * seven programmable settings (Sec 5.1.2); deeper settings retain
 * less leakage but shave retention margin. This sweep shows how
 * the C6A total and the AW savings respond to the setting -- i.e.,
 * how much of the design's benefit hinges on the deepest point.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/aw_core.hh"
#include "core/ppa.hh"

namespace {

using namespace aw;
using power::asMilliwatts;

void
reproduce()
{
    core::AwCoreModel model;
    const auto &caches = model.caches();
    const auto &arrays = model.ccsm().arrays();

    banner("Ablation: sleep-transistor setting vs C6A power");
    analysis::TableWriter t({"setting", "array mW (P1)",
                             "array mW (Pn)", "C6A total mW",
                             "C6AE total mW", "vs C1"});
    for (unsigned s = 0; s < power::SramSleepMode::kSettings; ++s) {
        // Rebuild CCSM with the arrays parked at setting s.
        const power::SramSleepMode at_setting(
            arrays.capacityBytes(),
            arrays.sleepPowerAtSetting(s, false),
            arrays.sleepPowerAtSetting(s, true));
        const core::Ccsm ccsm(caches, at_setting,
                              model.ccsm().restPowerP1(),
                              model.ccsm().restPowerPn());
        const core::AwPpaModel ppa(model.ufpg(), ccsm);
        const double c6a = ppa.totalPowerC6a().mid();
        t.addRow({analysis::cell("%u%s", s,
                                 s == 0 ? " (deepest)" : ""),
                  analysis::cell(
                      "%.1f", asMilliwatts(
                                  at_setting.sleepPowerAtP1())),
                  analysis::cell(
                      "%.1f", asMilliwatts(
                                  at_setting.sleepPowerAtPn())),
                  analysis::cell("%.0f", asMilliwatts(c6a)),
                  analysis::cell(
                      "%.0f",
                      asMilliwatts(ppa.totalPowerC6ae().mid())),
                  analysis::cell("%.1fx", 1.44 / c6a)});
    }
    t.print();

    std::printf("\neven the shallowest sleep setting keeps C6A "
                "well under C1; the deepest setting\nbuys the "
                "final ~%.0f mW the paper's Table 3 assumes.\n",
                asMilliwatts(
                    arrays.sleepPowerAtSetting(6) -
                    arrays.sleepPowerAtSetting(0)));
}

void
BM_SleepSettingQuery(benchmark::State &state)
{
    const auto arrays = power::SramSleepMode::skylakeL1L2();
    for (auto _ : state) {
        for (unsigned s = 0; s < power::SramSleepMode::kSettings;
             ++s) {
            benchmark::DoNotOptimize(
                arrays.sleepPowerAtSetting(s));
        }
    }
}
BENCHMARK(BM_SleepSettingQuery);

} // namespace

AW_BENCH_MAIN(reproduce)
