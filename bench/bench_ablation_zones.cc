/**
 * @file
 * Ablation: staggered wake-up zone count vs C6A exit latency and
 * in-rush feasibility. The paper picks 5 zones; this sweep shows
 * why -- fewer proportional zones don't change total wake time but
 * equal-interval plans trade zone count against in-rush violation,
 * and more zones add controller overhead for no latency win.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/aw_core.hh"
#include "power/power_gate.hh"

namespace {

using namespace aw;
using power::StaggeredWakeupPlan;

void
reproduce()
{
    core::AwCoreModel model;
    const double area =
        model.inventory().ufpgToAvxAreaRatio();

    banner("Ablation: wake-zone plans for the UFPG domain "
           "(area = 4.5x AVX reference)");
    analysis::TableWriter t({"zones", "plan", "total wake (ns)",
                             "peak in-rush (x ref)", "feasible"});
    for (const std::size_t zones : {1u, 2u, 3u, 5u, 8u, 10u}) {
        const auto prop =
            StaggeredWakeupPlan::proportional(area, zones);
        t.addRow({analysis::cell("%zu", zones), "proportional",
                  analysis::cell("%.1f",
                                 sim::toNs(prop.totalWakeTime())),
                  analysis::cell(
                      "%.2f", prop.peakInrushRelToReference()),
                  prop.inrushWithinLimit() ? "yes" : "NO"});
        const auto eq = StaggeredWakeupPlan::equalSplit(area, zones);
        t.addRow({analysis::cell("%zu", zones),
                  "equal 15ns ramps",
                  analysis::cell("%.1f",
                                 sim::toNs(eq.totalWakeTime())),
                  analysis::cell("%.2f",
                                 eq.peakInrushRelToReference()),
                  eq.inrushWithinLimit() ? "yes" : "NO"});
    }
    t.print();

    std::printf("\nproportional ramps hold in-rush exactly at the "
                "reference and keep the total at\n~%.1f ns "
                "regardless of zone count; equal 15 ns ramps only "
                "become feasible at >=5 zones\n(zone area <= "
                "reference area) but then waste wake time.\n",
                area * 15.0);
}

void
BM_PlanConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            StaggeredWakeupPlan::proportional(4.5, 5));
    }
}
BENCHMARK(BM_PlanConstruction);

} // namespace

AW_BENCH_MAIN(reproduce)
