/**
 * @file
 * Shared helpers for the benchmark harnesses: every bench binary
 * first regenerates its paper table/figure (printed to stdout),
 * then runs its google-benchmark microbenchmarks.
 */

#ifndef AW_BENCH_COMMON_HH
#define AW_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>

/** Print a figure/table banner. */
inline void
banner(const char *title)
{
    std::printf("\n================================================"
                "====================\n%s\n"
                "================================================"
                "====================\n\n",
                title);
}

/**
 * Standard main: print the reproduction first, then run the
 * registered microbenchmarks.
 */
#define AW_BENCH_MAIN(reproduce_fn)                                  \
    int main(int argc, char **argv)                                  \
    {                                                                \
        reproduce_fn();                                              \
        benchmark::Initialize(&argc, argv);                          \
        if (benchmark::ReportUnrecognizedArguments(argc, argv))      \
            return 1;                                                \
        benchmark::RunSpecifiedBenchmarks();                         \
        benchmark::Shutdown();                                       \
        return 0;                                                    \
    }

#endif // AW_BENCH_COMMON_HH
