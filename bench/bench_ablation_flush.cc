/**
 * @file
 * Ablation: L1/L2 flush cost (the dominant C6 entry term) across
 * dirty fraction and core frequency -- the Sec 4.2 motivation for
 * keeping the caches power-ungated in C6A.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "uarch/cache.hh"

namespace {

using namespace aw;

void
reproduce()
{
    const auto caches = uarch::PrivateCaches::skylakeServer();
    const auto &fm = caches.flushModel();
    const auto lines = caches.totalLines();

    banner("Ablation: C6 flush time (us) vs dirty fraction and "
           "frequency");
    analysis::TableWriter t({"dirty", "0.8 GHz", "1.2 GHz",
                             "2.2 GHz", "3.0 GHz"});
    for (const double dirty : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
        std::vector<std::string> row{
            analysis::cell("%.0f%%", dirty * 100)};
        for (const double ghz : {0.8, 1.2, 2.2, 3.0}) {
            row.push_back(analysis::cell(
                "%.1f", sim::toUs(fm.flushTime(
                            lines, dirty,
                            sim::Frequency::ghz(ghz)))));
        }
        t.addRow(std::move(row));
    }
    t.print();

    std::printf("\ncalibration anchor: 50%% dirty at 0.8 GHz = "
                "~75 us (paper Sec 3). Even the best\ncase (clean "
                "cache at 3 GHz) costs ~%.1f us -- hence C6A keeps "
                "the caches ungated\nand pays ~0 instead.\n",
                sim::toUs(fm.flushTime(lines, 0.0,
                                       sim::Frequency::ghz(3.0))));
}

void
BM_FlushTimeQuery(benchmark::State &state)
{
    const auto caches = uarch::PrivateCaches::skylakeServer();
    const auto &fm = caches.flushModel();
    const auto lines = caches.totalLines();
    for (auto _ : state) {
        benchmark::DoNotOptimize(fm.flushTime(
            lines, 0.5, sim::Frequency::ghz(2.2)));
    }
}
BENCHMARK(BM_FlushTimeQuery);

void
BM_CacheTouch(benchmark::State &state)
{
    auto caches = uarch::PrivateCaches::skylakeServer();
    for (auto _ : state) {
        caches.touch(0.25);
        benchmark::DoNotOptimize(caches.dirtyFraction());
    }
}
BENCHMARK(BM_CacheTouch);

} // namespace

AW_BENCH_MAIN(reproduce)
