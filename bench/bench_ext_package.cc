/**
 * @file
 * Extension: package C-states (the paper's footnote 1 / AgilePkgC
 * direction). With legacy core states, C1/C1E residency blocks the
 * package from ever qualifying for PC6; AW's C6A is a qualifying
 * deep state with C1-class latency, so the whole package can sleep
 * during the same idle periods -- compounding the core-level
 * savings with uncore savings.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::server;

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();

    banner("Extension: package C-state residency and power "
           "(PC6 hysteresis 200 us)");
    analysis::TableWriter t({"KQPS", "config", "PC0", "PC2", "PC6",
                             "uncore W", "pkg W"});
    for (const double qps : {2e3, 10e3, 50e3, 100e3}) {
        for (const bool aw_mode : {false, true}) {
            ServerConfig cfg = aw_mode
                                   ? ServerConfig::awBaseline()
                                   : ServerConfig::ntNoC6();
            cfg.packageCStatesEnabled = true;
            cfg.turboEnabled = false;
            ServerSim srv(cfg, profile, qps);
            const auto r =
                srv.run(sim::fromSec(1.0), sim::fromMs(100.0));
            t.addRow(
                {analysis::cell("%.0f", qps / 1e3), cfg.name,
                 analysis::cell("%.1f%%",
                                100 * r.pkgResidency[0]),
                 analysis::cell("%.1f%%",
                                100 * r.pkgResidency[1]),
                 analysis::cell("%.1f%%",
                                100 * r.pkgResidency[2]),
                 analysis::cell("%.2f", r.avgUncorePower),
                 analysis::cell("%.2f", r.packagePower)});
        }
    }
    t.print();

    std::printf("\nC1-family idle never qualifies for PC6; C6A "
                "does, so AW unlocks uncore savings\nthat grow as "
                "load drops (energy proportionality at the "
                "package level).\n");
}

void
BM_PackageUpdate(benchmark::State &state)
{
    PackageCStateModel pkg;
    sim::Tick now = 0;
    bool deep = false;
    for (auto _ : state) {
        now += sim::fromUs(10.0);
        deep = !deep;
        benchmark::DoNotOptimize(pkg.update(now, deep, deep));
    }
}
BENCHMARK(BM_PackageUpdate);

} // namespace

AW_BENCH_MAIN(reproduce)
