/**
 * @file
 * Table 3 reproduction: the AgileWatts area/power rollup.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/aw_core.hh"

namespace {

using namespace aw;
using aw::power::formatMilliwatts;
using aw::power::formatPercent;

void
reproduce()
{
    core::AwCoreModel model;
    const auto &ppa = model.ppa();

    banner("Table 3: area and power requirements to implement AW "
           "in a Skylake-like core");
    analysis::TableWriter t({"Component", "Sub-Component",
                             "Area Requirement", "C6A Power",
                             "C6AE Power"});
    for (const auto &row : ppa.rows()) {
        t.addRow({row.component, row.subComponent,
                  row.areaRequirement,
                  formatMilliwatts(row.powerC6a),
                  formatMilliwatts(row.powerC6ae)});
    }
    t.addRow({"Overall", "",
              formatPercent(ppa.totalAreaFractionOfCore(), 1) +
                  " of the core area",
              formatMilliwatts(ppa.totalPowerC6a()),
              formatMilliwatts(ppa.totalPowerC6ae())});
    t.print();

    std::printf("\npaper overall: 3-7%% of core area, 290-315 mW "
                "(C6A), 227-243 mW (C6AE)\n");
    std::printf("midpoints: C6A %.3f W (~0.3 W), C6AE %.3f W "
                "(~0.23 W)\n",
                ppa.c6aPowerMid(), ppa.c6aePowerMid());
}

void
BM_PpaRollup(benchmark::State &state)
{
    core::AwCoreModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.ppa().totalPowerC6a());
        benchmark::DoNotOptimize(model.ppa().totalPowerC6ae());
        benchmark::DoNotOptimize(
            model.ppa().totalAreaFractionOfCore());
    }
}
BENCHMARK(BM_PpaRollup);

void
BM_AwCoreModelConstruction(benchmark::State &state)
{
    for (auto _ : state) {
        core::AwCoreModel model;
        benchmark::DoNotOptimize(&model);
    }
}
BENCHMARK(BM_AwCoreModelConstruction);

} // namespace

AW_BENCH_MAIN(reproduce)
