/**
 * @file
 * Table 1 + Table 2 reproduction: the C-state hierarchy with
 * transition times, target residencies and per-core power,
 * including AW's C6A/C6AE, plus the component-state matrix.
 *
 * Transition envelopes are *derived* from the models at the paper's
 * reference point (800 MHz, 50% dirty caches for C6).
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/aw_core.hh"
#include "cstate/transition.hh"

namespace {

using namespace aw;
using namespace aw::cstate;

void
reproduce()
{
    core::AwCoreModel model;
    model.caches().setDirtyFraction(0.5);
    auto engine = model.makeTransitionEngine();
    const auto ref_freq = sim::Frequency::mhz(800.0);

    banner("Table 1: C-states of the modeled Skylake server core "
           "+ AW's C6A/C6AE");
    analysis::TableWriter t1({"Core C-state", "Transition time",
                              "Target residency", "Power per core"});
    t1.addRow({"C0 (P1)", "N/A", "N/A",
               analysis::cell("~%.0fW", kC0PowerP1)});
    t1.addRow({"C0 (Pn)", "N/A", "N/A",
               analysis::cell("~%.0fW", kC0PowerPn)});
    const CStateId order[] = {CStateId::C1, CStateId::C6A,
                              CStateId::C1E, CStateId::C6AE,
                              CStateId::C6};
    for (const auto id : order) {
        const auto &d = descriptor(id);
        const auto lat = engine.latency(id, ref_freq);
        t1.addRow({analysis::cell("%s%s", name(id),
                                  d.atPn ? " (Pn)" : " (P1)"),
                   analysis::cell("%.1f us",
                                  sim::toUs(lat.total())),
                   analysis::cell("%.0f us",
                                  sim::toUs(d.targetResidency)),
                   analysis::cell("~%.2fW", d.corePower)});
    }
    t1.print();

    banner("Table 2: component states per C-state");
    analysis::TableWriter t2({"C-State", "Clocks", "ADPLL",
                              "L1/L2 Cache", "Voltage", "Context"});
    const CStateId all[] = {CStateId::C0, CStateId::C1,
                            CStateId::C6A, CStateId::C1E,
                            CStateId::C6AE, CStateId::C6};
    for (const auto id : all) {
        const auto &d = descriptor(id);
        t2.addRow({name(id), name(d.clocks), name(d.pll),
                   name(d.caches), name(d.voltage),
                   name(d.context)});
    }
    t2.print();

    // The headline ratios.
    const auto c6 = engine.latency(CStateId::C6, ref_freq);
    const auto c6a_hw = engine.hardwareLatency(
        CStateId::C6A, sim::Frequency::ghz(2.2));
    std::printf("\nC6 envelope %.0f us vs C6A hardware %.0f ns: "
                "%.0fx faster (paper: up to 900x)\n",
                sim::toUs(c6.total()), sim::toNs(c6a_hw.total()),
                static_cast<double>(c6.total()) /
                    static_cast<double>(c6a_hw.total()));
    std::printf("C6A power / C0 = %.0f%%, C6AE / C0 = %.0f%% "
                "(paper: 7%% and 5%%)\n",
                100.0 * descriptor(CStateId::C6A).corePower /
                    kC0PowerP1,
                100.0 * descriptor(CStateId::C6AE).corePower /
                    kC0PowerP1);
}

void
BM_TransitionLatencyQuery(benchmark::State &state)
{
    core::AwCoreModel model;
    const auto engine = model.makeTransitionEngine();
    const auto freq = sim::Frequency::ghz(2.2);
    for (auto _ : state) {
        for (const auto id :
             {CStateId::C1, CStateId::C1E, CStateId::C6A,
              CStateId::C6AE, CStateId::C6}) {
            benchmark::DoNotOptimize(engine.latency(id, freq));
        }
    }
}
BENCHMARK(BM_TransitionLatencyQuery);

void
BM_DescriptorLookup(benchmark::State &state)
{
    for (auto _ : state) {
        for (std::size_t i = 0; i < kNumCStates; ++i) {
            benchmark::DoNotOptimize(
                descriptor(static_cast<CStateId>(i)));
        }
    }
}
BENCHMARK(BM_DescriptorLookup);

} // namespace

AW_BENCH_MAIN(reproduce)
