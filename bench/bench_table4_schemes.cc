/**
 * @file
 * Table 4 reproduction: comparison of core power-gating schemes.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/aw_core.hh"
#include "core/schemes.hh"

namespace {

using namespace aw;

void
reproduce()
{
    core::AwCoreModel model;
    banner("Table 4: comparison of core power-gating schemes");
    analysis::TableWriter t({"Technique", "Core Type",
                             "Power-gating Trigger",
                             "Power-gated Blocks",
                             "Wake-up Overhead"});
    for (const auto &row :
         core::powerGatingSchemes(model.controller())) {
        t.addRow({row.technique, row.coreType, row.trigger,
                  row.gatedBlocks, row.wakeOverhead});
    }
    t.print();

    std::printf("\nAW gates most of the core with a wake-up within "
                "one order of magnitude\nof the silicon-proven "
                "AVX-only gates (~10-15 ns).\n");
}

void
BM_SchemeRegistry(benchmark::State &state)
{
    core::AwCoreModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::powerGatingSchemes(model.controller()));
    }
}
BENCHMARK(BM_SchemeRegistry);

} // namespace

AW_BENCH_MAIN(reproduce)
