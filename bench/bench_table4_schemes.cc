/**
 * @file
 * Table 4 reproduction: comparison of core power-gating schemes.
 *
 * The scheme registry runs through exp::SweepRunner's free-form
 * variant axis with a custom point function (one grid point per
 * scheme, reporting the wake-up overhead as an extra metric), which
 * both exercises the engine's custom-function path and yields the
 * quantitative wake-overhead ranking printed under the table.
 */

#include "bench_common.hh"

#include <algorithm>
#include <vector>

#include "analysis/table.hh"
#include "core/aw_core.hh"
#include "core/schemes.hh"
#include "exp/runner.hh"

namespace {

using namespace aw;

void
reproduce()
{
    core::AwCoreModel model;
    const auto rows = core::powerGatingSchemes(model.controller());

    banner("Table 4: comparison of core power-gating schemes");
    analysis::TableWriter t({"Technique", "Core Type",
                             "Power-gating Trigger",
                             "Power-gated Blocks",
                             "Wake-up Overhead"});
    for (const auto &row : rows) {
        t.addRow({row.technique, row.coreType, row.trigger,
                  row.gatedBlocks, row.wakeOverhead});
    }
    t.print();

    // Scheme axis -> one grid point per technique; the point
    // function looks the scheme up and reports its wake overhead.
    exp::ExperimentSpec spec;
    spec.name = "table4-schemes";
    for (const auto &row : rows)
        spec.variants.push_back(row.technique);

    const auto sweep = exp::SweepRunner().run(
        spec, [&rows](const exp::GridPoint &pt) {
            exp::PointResult res;
            res.point = pt;
            res.extras.emplace_back(
                "wake_ns", core::schemeWakeNs(rows, pt.variant));
            return res;
        });

    banner("Wake-up overhead ranking (schemes reporting time)");
    std::vector<const exp::PointResult *> timed;
    for (const auto &p : sweep.points)
        if (p.extras.front().second > 0.0)
            timed.push_back(&p);
    std::sort(timed.begin(), timed.end(),
              [](const auto *a, const auto *b) {
                  return a->extras.front().second <
                         b->extras.front().second;
              });
    analysis::TableWriter rank({"Technique", "Wake-up (ns)"});
    for (const auto *p : timed)
        rank.addRow({p->point.variant,
                     analysis::cell("%.0f",
                                    p->extras.front().second)});
    rank.print();

    std::printf("\nAW gates most of the core with a wake-up within "
                "one order of magnitude\nof the silicon-proven "
                "AVX-only gates (~10-15 ns).\n");
}

void
BM_SchemeRegistry(benchmark::State &state)
{
    core::AwCoreModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::powerGatingSchemes(model.controller()));
    }
}
BENCHMARK(BM_SchemeRegistry);

} // namespace

AW_BENCH_MAIN(reproduce)
