/**
 * @file
 * Extension: AgileWatts vs workload-aware idle management (Sec 8).
 * CARB-style request packing lengthens idle periods on spare cores
 * so legacy deep states become reachable -- at a queueing-latency
 * cost. AW attacks the same inefficiency in hardware: static
 * dispatch + C6A matches or beats packed power with none of the
 * tail-latency damage. The two compose, too (packing + AW).
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::server;
using cstate::CStateId;

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();

    banner("Extension: management (packing) vs architecture (AW)");
    analysis::TableWriter t({"KQPS", "strategy", "C6-family res.",
                             "W/core", "avg lat (us)",
                             "p99 lat (us)"});
    struct Strategy
    {
        const char *label;
        ServerConfig cfg;
    };
    for (const double qps : {50e3, 100e3, 200e3}) {
        std::vector<Strategy> strategies;
        {
            ServerConfig s = ServerConfig::ntBaseline();
            strategies.push_back({"static + legacy", s});
        }
        {
            ServerConfig s = ServerConfig::ntBaseline();
            s.dispatch = DispatchPolicy::Packing;
            strategies.push_back({"packing + legacy", s});
        }
        {
            ServerConfig s = ServerConfig::ntAwNoC6NoC1e();
            strategies.push_back({"static + AW", s});
        }
        {
            ServerConfig s = ServerConfig::awBaseline();
            s.turboEnabled = false;
            s.dispatch = DispatchPolicy::Packing;
            strategies.push_back({"packing + AW", s});
        }
        for (auto &strat : strategies) {
            ServerSim srv(strat.cfg, profile, qps);
            const auto r =
                srv.run(sim::fromSec(0.8), sim::fromMs(80.0));
            const double deep =
                r.residency.shareOf(CStateId::C6) +
                r.residency.shareOf(CStateId::C6A) +
                r.residency.shareOf(CStateId::C6AE);
            t.addRow({analysis::cell("%.0f", qps / 1e3),
                      strat.label,
                      analysis::cell("%.1f%%", 100 * deep),
                      analysis::cell("%.3f", r.avgCorePower),
                      analysis::cell("%.1f", r.avgLatencyUs),
                      analysis::cell("%.1f", r.p99LatencyUs)});
        }
    }
    t.print();

    std::printf("\npacking buys legacy systems deep-state "
                "residency at a visible tail cost;\nAW reaches "
                "lower power with static dispatch and unimpaired "
                "latency, and still\ncomposes with packing for "
                "the final percent.\n");
}

void
BM_PackingDispatchPoint(benchmark::State &state)
{
    const auto profile = workload::WorkloadProfile::memcached();
    for (auto _ : state) {
        ServerConfig cfg = ServerConfig::ntBaseline();
        cfg.dispatch = DispatchPolicy::Packing;
        ServerSim srv(cfg, profile, 100e3);
        benchmark::DoNotOptimize(
            srv.run(sim::fromMs(100.0), sim::fromMs(10.0)));
    }
}
BENCHMARK(BM_PackingDispatchPoint)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
