/**
 * @file
 * Sec 2 reproduction: the motivational upper bound (Eq. 1) --
 * power savings if an ideal deep state with C1's latency and C6's
 * power existed, for the residency mixes reported by prior work.
 */

#include "bench_common.hh"

#include "analysis/power_model.hh"
#include "analysis/table.hh"
#include "core/aw_core.hh"

namespace {

using namespace aw;
using namespace aw::cstate;

ResidencySnapshot
mix(double c0, double c1, double c6)
{
    ResidencySnapshot r;
    r.share[index(CStateId::C0)] = c0;
    r.share[index(CStateId::C1)] = c1;
    r.share[index(CStateId::C6)] = c6;
    r.window = sim::fromSec(1.0);
    return r;
}

void
reproduce()
{
    core::AwCoreModel aw_model;
    const analysis::CStatePowerModel model(
        server::StatePowers::fromModels(aw_model.ppa()));

    banner("Sec 2: ideal deep-idle-state savings upper bound "
           "(Eq. 1)");
    struct Case
    {
        const char *name;
        ResidencySnapshot r;
        double paper;
    };
    const Case cases[] = {
        {"search @ 50% load (C0=50,C1=45,C6=5)",
         mix(0.50, 0.45, 0.05), 23.0},
        {"search @ 25% load (C0=25,C1=55,C6=20)",
         mix(0.25, 0.55, 0.20), 41.0},
        {"key-value @ 20% load (C0=20,C1=80,C6=0)",
         mix(0.20, 0.80, 0.00), 55.0},
    };

    analysis::TableWriter t({"Scenario", "AvgP baseline (W)",
                             "Savings upper bound", "Paper"});
    for (const auto &c : cases) {
        t.addRow({c.name,
                  analysis::cell("%.2f",
                                 model.baselineAvgPower(c.r)),
                  analysis::cell(
                      "%.0f%%",
                      100 * model.idealDeepStateSavings(c.r)),
                  analysis::cell("%.0f%%", c.paper)});
    }
    t.print();
    std::printf("\nLighter loads leave even more C1 time to "
                "convert, hence higher bounds.\n");
}

void
BM_IdealSavings(benchmark::State &state)
{
    core::AwCoreModel aw_model;
    const analysis::CStatePowerModel model(
        server::StatePowers::fromModels(aw_model.ppa()));
    const auto r = mix(0.25, 0.55, 0.20);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.idealDeepStateSavings(r));
}
BENCHMARK(BM_IdealSavings);

} // namespace

AW_BENCH_MAIN(reproduce)
