/**
 * @file
 * Simulation-kernel speed harness: the awperf scenario registry as
 * a bench binary, plus kernel microbenchmarks.
 *
 * The reproduction pass prints the pinned-scenario throughput table
 * (the same numbers `awperf` reports and results/BENCH_perf.json
 * records); the microbenchmarks isolate the discrete-event kernel
 * primitives (schedule/fire churn, cancellation) and the end-to-end
 * single-server step the sweeps are built from. See
 * docs/PERFORMANCE.md for how these feed the CI perf gate.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "exp/perf.hh"
#include "exp/spec.hh"
#include "server/server_sim.hh"
#include "sim/event_queue.hh"

namespace {

using namespace aw;

void
reproduce()
{
    banner("Simulation-kernel throughput (awperf pinned scenarios)");
    analysis::TableWriter t({"scenario", "wall s", "sim s",
                             "sim/wall", "events/s"});
    for (const auto &s : exp::perfScenarios()) {
        const auto m = exp::measurePerfScenario(s, 2);
        t.addRow({m.name, analysis::cell("%.3f", m.wallSeconds),
                  analysis::cell("%.2f", m.totals.simSeconds),
                  analysis::cell("%.1f", m.simPerWall()),
                  analysis::cell("%.3g", m.eventsPerSec())});
    }
    t.print();
    std::printf("\nJSON artifact: awperf --json "
                "results/BENCH_perf.json "
                "(gated by scripts/check_perf.py)\n");
}

/** Kernel churn: schedule + fire through a small pending set, the
 *  steady-state shape of a loaded server's event queue. */
void
BM_EventKernelChurn(benchmark::State &state)
{
    const std::size_t pending = state.range(0);
    sim::Simulator simr;
    std::uint64_t sink = 0;
    sim::Tick when = 1;
    for (std::size_t i = 0; i < pending; ++i)
        simr.schedule(when++, [&sink]() { ++sink; });
    for (auto _ : state) {
        // Fire the oldest event; every fire schedules a successor,
        // keeping the pending population constant.
        simr.run(simr.queue().nextTick());
        simr.schedule(when++, [&sink]() { ++sink; });
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventKernelChurn)->Arg(16)->Arg(256);

/** Cancellation lifecycle: schedule + cancel, with the periodic
 *  stale-key sweep included so the queue's memory stays bounded at
 *  benchmark iteration counts (cancelled keys are reclaimed lazily
 *  when they surface, which is part of the cost being measured). */
void
BM_EventCancel(benchmark::State &state)
{
    sim::Simulator simr;
    sim::Tick when = 1;
    std::size_t pending = 0;
    for (auto _ : state) {
        const auto id = simr.schedule(when++, []() {});
        simr.cancel(id);
        if (++pending == 4096) {
            simr.run(when); // sweeps the cancelled keys
            pending = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventCancel);

/** End-to-end single-server step: the unit of work every sweep grid
 *  cell multiplies. */
void
BM_SingleServerRun(benchmark::State &state)
{
    const auto profile = exp::profileByName("memcached");
    const auto cfg = exp::configByName("aw");
    for (auto _ : state) {
        server::ServerSim srv(cfg, profile, 100e3);
        const auto r =
            srv.run(sim::fromMs(50.0), sim::fromMs(5.0));
        benchmark::DoNotOptimize(r.requests);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleServerRun)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
