/**
 * @file
 * Fig 9 reproduction: the three tuned legacy configurations
 * (NT_Baseline, NT_No_C6, NT_No_C6,No_C1E) across the Memcached
 * rate sweep -- average latency, tail latency, package power and
 * C-state residency.
 *
 * The config x rate grid runs through exp::SweepRunner, so the 21
 * points execute in parallel and the tables below are just ordered
 * lookups into the folded SweepResult.
 */

#include "bench_common.hh"

#include <vector>

#include "analysis/table.hh"
#include "cstate/cstate.hh"
#include "exp/runner.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using cstate::CStateId;

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();
    const auto &rates = profile.rateLevels();

    exp::ExperimentSpec spec;
    spec.name = "fig9-tuned-configs";
    spec.workloads = {"memcached"};
    spec.configs = {"nt_baseline", "nt_no_c6", "nt_no_c6_no_c1e"};
    spec.qps = rates;

    const auto sweep = exp::SweepRunner().run(spec);

    std::vector<std::string> pretty;
    for (const auto &c : spec.configs)
        pretty.push_back(exp::configByName(c).name);

    auto at = [&](std::size_t cfg_idx, double rate)
        -> const exp::PointResult & {
        return sweep.at({.config = spec.configs[cfg_idx],
                         .qps = rate});
    };

    banner("Fig 9(a): average latency (us)");
    analysis::TableWriter ta({"KQPS", pretty[0], pretty[1],
                              pretty[2]});
    for (const double rate : rates) {
        ta.addRow({analysis::cell("%.0f", rate / 1e3),
                   analysis::cell("%.1f", at(0, rate).avgLatencyUs),
                   analysis::cell("%.1f", at(1, rate).avgLatencyUs),
                   analysis::cell("%.1f",
                                  at(2, rate).avgLatencyUs)});
    }
    ta.print();

    banner("Fig 9(b): tail (p99) latency (us)");
    analysis::TableWriter tb({"KQPS", pretty[0], pretty[1],
                              pretty[2]});
    for (const double rate : rates) {
        tb.addRow({analysis::cell("%.0f", rate / 1e3),
                   analysis::cell("%.1f", at(0, rate).p99LatencyUs),
                   analysis::cell("%.1f", at(1, rate).p99LatencyUs),
                   analysis::cell("%.1f",
                                  at(2, rate).p99LatencyUs)});
    }
    tb.print();

    banner("Fig 9(c): package power (W)");
    analysis::TableWriter tpow({"KQPS", pretty[0], pretty[1],
                                pretty[2]});
    for (const double rate : rates) {
        tpow.addRow({analysis::cell("%.0f", rate / 1e3),
                     analysis::cell("%.1f", at(0, rate).powerW),
                     analysis::cell("%.1f", at(1, rate).powerW),
                     analysis::cell("%.1f", at(2, rate).powerW)});
    }
    tpow.print();

    banner("Fig 9(d): C-state residency (%) per config");
    analysis::TableWriter tres({"KQPS", "config", "C0", "C1",
                                "C1E", "C6"});
    for (const double rate : rates) {
        for (std::size_t c = 0; c < spec.configs.size(); ++c) {
            const auto &res = at(c, rate).residency;
            tres.addRow(
                {analysis::cell("%.0f", rate / 1e3), pretty[c],
                 analysis::cell("%.1f",
                                100 * res[cstate::index(CStateId::C0)]),
                 analysis::cell("%.1f",
                                100 * res[cstate::index(CStateId::C1)]),
                 analysis::cell("%.1f",
                                100 * res[cstate::index(CStateId::C1E)]),
                 analysis::cell("%.1f",
                                100 * res[cstate::index(CStateId::C6)])});
        }
    }
    tres.print();

    std::printf("\npaper shape: disabling C1E lowers latency "
                "(no 10 us transitions) but raises power\n(time "
                "moves to C1 at 1.44 W, ~63%% above C1E).\n");
}

void
BM_TunedConfigPoint(benchmark::State &state)
{
    const auto profile = workload::WorkloadProfile::memcached();
    for (auto _ : state) {
        server::ServerSim srv(server::ServerConfig::ntNoC6(),
                              profile, 200e3);
        benchmark::DoNotOptimize(
            srv.run(sim::fromMs(100.0), sim::fromMs(10.0)));
    }
}
BENCHMARK(BM_TunedConfigPoint)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
