/**
 * @file
 * Fig 9 reproduction: the three tuned legacy configurations
 * (NT_Baseline, NT_No_C6, NT_No_C6,No_C1E) across the Memcached
 * rate sweep -- average latency, tail latency, package power and
 * C-state residency.
 */

#include "bench_common.hh"

#include <vector>

#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using cstate::CStateId;

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();
    const auto &rates = profile.rateLevels();
    const std::vector<server::ServerConfig> configs = {
        server::ServerConfig::ntBaseline(),
        server::ServerConfig::ntNoC6(),
        server::ServerConfig::ntNoC6NoC1e(),
    };

    std::vector<std::vector<server::RunResult>> runs;
    for (const auto &cfg : configs)
        runs.push_back(server::sweepRates(cfg, profile, rates));

    banner("Fig 9(a): average latency (us)");
    analysis::TableWriter ta({"KQPS", configs[0].name,
                              configs[1].name, configs[2].name});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        ta.addRow({analysis::cell("%.0f", rates[i] / 1e3),
                   analysis::cell("%.1f", runs[0][i].avgLatencyUs),
                   analysis::cell("%.1f", runs[1][i].avgLatencyUs),
                   analysis::cell("%.1f",
                                  runs[2][i].avgLatencyUs)});
    }
    ta.print();

    banner("Fig 9(b): tail (p99) latency (us)");
    analysis::TableWriter tb({"KQPS", configs[0].name,
                              configs[1].name, configs[2].name});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        tb.addRow({analysis::cell("%.0f", rates[i] / 1e3),
                   analysis::cell("%.1f", runs[0][i].p99LatencyUs),
                   analysis::cell("%.1f", runs[1][i].p99LatencyUs),
                   analysis::cell("%.1f",
                                  runs[2][i].p99LatencyUs)});
    }
    tb.print();

    banner("Fig 9(c): package power (W)");
    analysis::TableWriter tpow({"KQPS", configs[0].name,
                                configs[1].name, configs[2].name});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        tpow.addRow({analysis::cell("%.0f", rates[i] / 1e3),
                     analysis::cell("%.1f",
                                    runs[0][i].packagePower),
                     analysis::cell("%.1f",
                                    runs[1][i].packagePower),
                     analysis::cell("%.1f",
                                    runs[2][i].packagePower)});
    }
    tpow.print();

    banner("Fig 9(d): C-state residency (%) per config");
    analysis::TableWriter tres({"KQPS", "config", "C0", "C1",
                                "C1E", "C6"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const auto &r = runs[c][i].residency;
            tres.addRow(
                {analysis::cell("%.0f", rates[i] / 1e3),
                 configs[c].name,
                 analysis::cell("%.1f",
                                100 * r.shareOf(CStateId::C0)),
                 analysis::cell("%.1f",
                                100 * r.shareOf(CStateId::C1)),
                 analysis::cell("%.1f",
                                100 * r.shareOf(CStateId::C1E)),
                 analysis::cell("%.1f",
                                100 * r.shareOf(CStateId::C6))});
        }
    }
    tres.print();

    std::printf("\npaper shape: disabling C1E lowers latency "
                "(no 10 us transitions) but raises power\n(time "
                "moves to C1 at 1.44 W, ~63%% above C1E).\n");
}

void
BM_TunedConfigPoint(benchmark::State &state)
{
    const auto profile = workload::WorkloadProfile::memcached();
    for (auto _ : state) {
        server::ServerSim srv(server::ServerConfig::ntNoC6(),
                              profile, 200e3);
        benchmark::DoNotOptimize(
            srv.run(sim::fromMs(100.0), sim::fromMs(10.0)));
    }
}
BENCHMARK(BM_TunedConfigPoint)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
