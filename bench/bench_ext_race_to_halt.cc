/**
 * @file
 * Extension: race-to-halt vs pace-to-idle (Sec 8). The classic
 * energy argument against racing is that the idle state you halt
 * into isn't cheap enough; C6A changes that calculus. Compare:
 *   pace:  run at Pn (0.8 GHz, ~1 W active), idle in C1
 *   race:  run at P1 (2.2 GHz, ~4 W active), idle in C1
 *   race+AW: run at P1, idle in C6A
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::server;

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();

    banner("Extension: race-to-halt with C6A");
    analysis::TableWriter t({"KQPS", "strategy", "W/core",
                             "uJ/request", "avg lat (us)",
                             "p99 lat (us)"});
    for (const double qps : {20e3, 100e3, 200e3}) {
        struct Strategy
        {
            const char *label;
            ServerConfig cfg;
        };
        std::vector<Strategy> strategies;
        {
            ServerConfig pace = ServerConfig::ntNoC6NoC1e();
            pace.runAtPn = true;
            strategies.push_back({"pace (Pn, C1)", pace});
        }
        strategies.push_back(
            {"race (P1, C1)", ServerConfig::ntNoC6NoC1e()});
        strategies.push_back(
            {"race (P1, C6A)", ServerConfig::ntAwNoC6NoC1e()});

        for (auto &strat : strategies) {
            ServerSim srv(strat.cfg, profile, qps);
            const auto r =
                srv.run(sim::fromSec(0.8), sim::fromMs(80.0));
            const double uj_per_req =
                r.requests > 0
                    ? r.coreEnergy / r.requests * 1e6
                    : 0.0;
            t.addRow({analysis::cell("%.0f", qps / 1e3),
                      strat.label,
                      analysis::cell("%.3f", r.avgCorePower),
                      analysis::cell("%.1f", uj_per_req),
                      analysis::cell("%.1f", r.avgLatencyUs),
                      analysis::cell("%.1f", r.p99LatencyUs)});
        }
    }
    t.print();

    std::printf("\nwith only C1 to halt into, pacing at Pn wins "
                "energy-per-request; once C6A\nexists, racing at "
                "P1 wins both energy AND latency -- the Sec 8 "
                "observation that\nAW makes race-to-halt "
                "attractive again.\n");
}

void
BM_RaceConfigPoint(benchmark::State &state)
{
    const auto profile = workload::WorkloadProfile::memcached();
    for (auto _ : state) {
        ServerSim srv(ServerConfig::ntAwNoC6NoC1e(), profile,
                      100e3);
        benchmark::DoNotOptimize(
            srv.run(sim::fromMs(100.0), sim::fromMs(10.0)));
    }
}
BENCHMARK(BM_RaceConfigPoint)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
