/**
 * @file
 * Sec 6.3 reproduction: analytical power-model validation against
 * the simulated "measurement" for four server workloads
 * (SPECpower, Nginx, Spark, Hive). Paper accuracies: 96.1 / 95.2 /
 * 94.4 / 94.9%.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "analysis/validation.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;

void
reproduce()
{
    banner("Sec 6.3: power model validation "
           "(estimated vs measured average power)");
    analysis::TableWriter t({"workload", "QPS", "measured (W)",
                             "estimated (W)", "accuracy"});
    analysis::TableWriter summary({"workload", "mean accuracy",
                                   "worst accuracy"});
    for (const auto &profile :
         workload::WorkloadProfile::validationSuite()) {
        const auto s = analysis::validateWorkload(
            server::ServerConfig::ntBaseline(), profile);
        for (const auto &p : s.points) {
            t.addRow({p.workload,
                      analysis::cell("%.0f", p.qps),
                      analysis::cell("%.3f", p.measured),
                      analysis::cell("%.3f", p.estimated),
                      analysis::cell("%.1f%%",
                                     p.accuracyPercent())});
        }
        summary.addRow({s.workload,
                        analysis::cell("%.1f%%",
                                       s.meanAccuracyPercent()),
                        analysis::cell("%.1f%%",
                                       s.worstAccuracyPercent())});
    }
    t.print();
    std::printf("\n");
    summary.print();
    std::printf("\npaper: 96.1%% / 95.2%% / 94.4%% / 94.9%% for "
                "SPECpower / Nginx / Spark / Hive\n");
}

void
BM_ValidatePoint(benchmark::State &state)
{
    core::AwCoreModel aw_model;
    const analysis::CStatePowerModel model(
        server::StatePowers::fromModels(aw_model.ppa()));
    server::ServerSim srv(server::ServerConfig::ntBaseline(),
                          workload::WorkloadProfile::nginx(), 40e3);
    const auto run = srv.run(sim::fromMs(200.0), sim::fromMs(20.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(analysis::validateRun(model, run));
}
BENCHMARK(BM_ValidatePoint);

} // namespace

AW_BENCH_MAIN(reproduce)
