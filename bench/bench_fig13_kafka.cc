/**
 * @file
 * Fig 13 reproduction (Kafka, low/high request rates):
 *  (a) baseline (C1+C6) residency,
 *  (b) residency with C6 disabled,
 *  (c) latency improvement from disabling C6,
 *  (d) AW C6A average power reduction vs the C6-disabled config.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using cstate::CStateId;

const char *kLevels[] = {"low", "high"};

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::kafka();
    const auto &rates = profile.rateLevels();
    const auto dur = sim::fromSec(10.0);
    const auto warm = sim::fromSec(1.0);

    const auto base = server::sweepRates(
        server::ServerConfig::legacyC1C6(), profile, rates, dur,
        warm);
    const auto no_c6 = server::sweepRates(
        server::ServerConfig::legacyC1Only(), profile, rates, dur,
        warm);
    const auto agile = server::sweepRates(
        server::ServerConfig::awC6aOnly(), profile, rates, dur,
        warm);

    banner("Fig 13(a): baseline (C1+C6) residency (%)");
    analysis::TableWriter ta({"rate", "C0", "C1", "C6"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto &r = base[i].residency;
        ta.addRow({kLevels[i],
                   analysis::cell("%.1f",
                                  100 * r.shareOf(CStateId::C0)),
                   analysis::cell("%.1f",
                                  100 * r.shareOf(CStateId::C1)),
                   analysis::cell("%.1f",
                                  100 * r.shareOf(CStateId::C6))});
    }
    ta.print();
    std::printf("\npaper: >60%% C6 residency at the low rate; "
                "no C6 at the high rate\n");

    banner("Fig 13(b): residency with C6 disabled (%)");
    analysis::TableWriter tb({"rate", "C0", "C1"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        const auto &r = no_c6[i].residency;
        tb.addRow({kLevels[i],
                   analysis::cell("%.1f",
                                  100 * r.shareOf(CStateId::C0)),
                   analysis::cell("%.1f",
                                  100 * r.shareOf(CStateId::C1))});
    }
    tb.print();

    banner("Fig 13(c): latency improvement from disabling C6");
    analysis::TableWriter tc({"rate", "avg lat red.",
                              "tail lat red."});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        tc.addRow({kLevels[i],
                   analysis::cell("%.1f%%",
                                  100 * (1.0 -
                                         no_c6[i].avgLatencyUs /
                                             base[i].avgLatencyUs)),
                   analysis::cell(
                       "%.1f%%",
                       100 * (1.0 - no_c6[i].p99LatencyUs /
                                        base[i].p99LatencyUs))});
    }
    tc.print();
    std::printf("\npaper: 4-5%% at the low rate; none at the high "
                "rate (no C6 entries to avoid)\n");

    banner("Fig 13(d): AW C6A AvgP reduction vs C6-disabled");
    analysis::TableWriter td({"rate", "No_C6 W/core", "C6A W/core",
                              "AvgP reduction"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        td.addRow({kLevels[i],
                   analysis::cell("%.3f", no_c6[i].avgCorePower),
                   analysis::cell("%.3f", agile[i].avgCorePower),
                   analysis::cell(
                       "%.1f%%",
                       100 * (1.0 - agile[i].avgCorePower /
                                        no_c6[i].avgCorePower))});
    }
    td.print();
    std::printf("\npaper: >56%% average power reduction at both "
                "rates\n");
}

void
BM_KafkaPoint(benchmark::State &state)
{
    const auto profile = workload::WorkloadProfile::kafka();
    for (auto _ : state) {
        server::ServerSim srv(server::ServerConfig::legacyC1C6(),
                              profile, profile.rateLevels()[0]);
        benchmark::DoNotOptimize(
            srv.run(sim::fromSec(1.0), sim::fromMs(100.0)));
    }
}
BENCHMARK(BM_KafkaPoint)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
