/**
 * @file
 * Fig 10 reproduction: AW power and latency reduction over the
 * three tuned configurations (paper averages: 23.5% / 28.6% /
 * 35.3% power reduction; latency reduced up to 5%/26% vs
 * NT_Baseline and within 1% of NT_No_C6,No_C1E).
 */

#include "bench_common.hh"

#include <vector>

#include "analysis/table.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;

void
reproduce()
{
    const auto profile = workload::WorkloadProfile::memcached();
    const auto &rates = profile.rateLevels();

    const std::vector<server::ServerConfig> tuned = {
        server::ServerConfig::ntBaseline(),
        server::ServerConfig::ntNoC6(),
        server::ServerConfig::ntNoC6NoC1e(),
    };
    const auto aw_runs = server::sweepRates(
        server::ServerConfig::ntAwNoC6NoC1e(), profile, rates);

    banner("Fig 10: AW reduction over the tuned configurations");
    analysis::TableWriter t({"KQPS", "vs config", "AvgP red.",
                             "avg lat red.", "tail lat red."});
    std::vector<double> avg_power_red(tuned.size(), 0.0);
    for (std::size_t c = 0; c < tuned.size(); ++c) {
        const auto runs =
            server::sweepRates(tuned[c], profile, rates);
        for (std::size_t i = 0; i < rates.size(); ++i) {
            const double pred = 1.0 - aw_runs[i].avgCorePower /
                                          runs[i].avgCorePower;
            const double lred = 1.0 - aw_runs[i].avgLatencyUs /
                                          runs[i].avgLatencyUs;
            const double tred = 1.0 - aw_runs[i].p99LatencyUs /
                                          runs[i].p99LatencyUs;
            avg_power_red[c] += pred / rates.size();
            t.addRow({analysis::cell("%.0f", rates[i] / 1e3),
                      tuned[c].name,
                      analysis::cell("%.1f%%", 100 * pred),
                      analysis::cell("%+.1f%%", 100 * lred),
                      analysis::cell("%+.1f%%", 100 * tred)});
        }
    }
    t.print();

    std::printf("\naverage AvgP reduction: %.1f%% vs %s, %.1f%% "
                "vs %s, %.1f%% vs %s\n(paper: 23.5%% / 28.6%% / "
                "35.3%%)\n",
                100 * avg_power_red[0], tuned[0].name.c_str(),
                100 * avg_power_red[1], tuned[1].name.c_str(),
                100 * avg_power_red[2], tuned[2].name.c_str());
}

void
BM_AwSweepPoint(benchmark::State &state)
{
    const auto profile = workload::WorkloadProfile::memcached();
    for (auto _ : state) {
        server::ServerSim srv(
            server::ServerConfig::ntAwNoC6NoC1e(), profile, 100e3);
        benchmark::DoNotOptimize(
            srv.run(sim::fromMs(100.0), sim::fromMs(10.0)));
    }
}
BENCHMARK(BM_AwSweepPoint)->Unit(benchmark::kMillisecond);

} // namespace

AW_BENCH_MAIN(reproduce)
