/**
 * @file
 * Sec 7.5 reproduction: impact of high snoop traffic on AW
 * savings. Analytical bound (79% -> 68%, losing ~11 points) plus
 * a simulation sweep of snoop rates on a fully idle core.
 */

#include "bench_common.hh"

#include "analysis/table.hh"
#include "core/aw_core.hh"
#include "core/ccsm.hh"
#include "cstate/cstate.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;

void
reproduce()
{
    banner("Sec 7.5: snoop-traffic impact on AW savings "
           "(analytical bound)");
    const double p_c1 = cstate::descriptor(
        cstate::CStateId::C1).corePower;
    const double p_c6a = cstate::descriptor(
        cstate::CStateId::C6A).corePower;
    const double d_c1 = core::Ccsm::kSnoopServiceDeltaC1;
    const double d_c6a = core::Ccsm::kSnoopServiceDeltaC6a;

    const double no_snoop = (p_c1 - p_c6a) / p_c1;
    const double all_snoop =
        ((p_c1 + d_c1) - (p_c6a + d_c6a + d_c1)) / (p_c1 + d_c1);

    analysis::TableWriter t({"scenario", "C1 power", "C6A power",
                             "AW savings"});
    t.addRow({"100% idle, no snoops",
              analysis::cell("%.2f W", p_c1),
              analysis::cell("%.2f W", p_c6a),
              analysis::cell("%.0f%%", 100 * no_snoop)});
    t.addRow({"100% idle, snoops all the time",
              analysis::cell("%.2f W", p_c1 + d_c1),
              analysis::cell("%.2f W", p_c6a + d_c6a + d_c1),
              analysis::cell("%.0f%%", 100 * all_snoop)});
    t.print();
    std::printf("\nworst-case loss: %.0f points (paper: ~11)\n",
                100 * (no_snoop - all_snoop));

    banner("Simulation: idle server power vs snoop rate");
    const auto profile = workload::WorkloadProfile::memcached();
    analysis::TableWriter ts({"snoops/s/core", "C1-only W/core",
                              "C6A W/core", "savings"});
    // The analytical 68% is the bound where the caches never get
    // back to sleep; realistic probes re-sleep within tens of ns,
    // so visible erosion needs multi-MHz probe rates.
    for (const double rate : {0.0, 1e6, 5e6, 20e6}) {
        server::ServerConfig legacy =
            server::ServerConfig::legacyC1Only();
        legacy.snoopRatePerSec = rate;
        server::ServerConfig agile =
            server::ServerConfig::awC6aOnly();
        agile.snoopRatePerSec = rate;
        // Trickle load: the cores are essentially always idle.
        server::ServerSim a(legacy, profile, 1e3);
        server::ServerSim b(agile, profile, 1e3);
        const auto ra = a.run(sim::fromSec(2.0), sim::fromMs(200.0));
        const auto rb = b.run(sim::fromSec(2.0), sim::fromMs(200.0));
        ts.addRow({analysis::cell("%.0fK", rate / 1e3),
                   analysis::cell("%.3f", ra.avgCorePower),
                   analysis::cell("%.3f", rb.avgCorePower),
                   analysis::cell("%.1f%%",
                                  100 * (1.0 - rb.avgCorePower /
                                                   ra.avgCorePower))});
    }
    ts.print();
    std::printf("\nsavings erode with snoop rate but stay large: "
                "the caches wake only for the probe window.\n");
}

void
BM_SnoopServiceWindow(benchmark::State &state)
{
    core::AwCoreModel model;
    const auto freq = sim::Frequency::ghz(2.2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.caches().snoopServiceTime(freq, true));
        benchmark::DoNotOptimize(
            model.controller().snoopWakeLatency());
    }
}
BENCHMARK(BM_SnoopServiceWindow);

} // namespace

AW_BENCH_MAIN(reproduce)
