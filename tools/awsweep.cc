/**
 * @file
 * awsweep -- declarative parallel experiment sweeps.
 *
 * Expands a (workload x config x policy x fleet size x qps x
 * replica) grid, executes the points on a work-stealing thread
 * pool, prints a summary table and optionally writes CSV/JSON
 * artifacts. The artifacts are bit-identical for a given spec
 * regardless of --threads. Examples:
 *
 *   # the PR-2 fleet finding: routing policy x C-state config
 *   awsweep --fleet 8 --policies round-robin,pack-first \
 *           --configs c1c6,aw_c6a --qps 400000 --seconds 0.4 \
 *           --threads 8 --csv fleet.csv
 *
 *   # single-server rate sweep, 3 seed replicas per point
 *   awsweep --configs nt_baseline,nt_no_c6 \
 *           --qps 100000,200000,300000 --replicas 3
 *
 * Run `awsweep --help` for the full knob list.
 */

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "analysis/table.hh"
#include "cluster/routing.hh"
#include "exp/emit.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "sim/logging.hh"

namespace {

using namespace aw;

void
usage()
{
    std::printf(
        "awsweep -- parallel experiment sweeps over the AgileWatts "
        "simulator\n\n"
        "grid axes (comma-separated lists):\n"
        "  --workloads A,B   workload profiles (default memcached)\n"
        "  --configs A,B     server configs (default baseline)\n"
        "  --governors A,B   idle governors (menu|teo|ladder|\n"
        "                    static:<state>|oracle; default: config\n"
        "                    default; oracle is single-server only)\n"
        "  --freq-governors A,B  DVFS governors (performance|"
        "powersave|\n"
        "                    ondemand|conservative|racetohalt;\n"
        "                    default: the static operating point)\n"
        "  --slo N,M         per-request latency-SLO levels in us\n"
        "                    (PM-QoS; 0 = unconstrained)\n"
        "  --caps N,M        package power-cap levels in watts\n"
        "                    (0 = uncapped; docs/POWERCAP.md)\n"
        "  --policies A,B    routing policies (fleet mode only;\n"
        "                    default round-robin)\n"
        "  --fleet N,M       fleet sizes; omit for single-server\n"
        "  --qps N,M         offered load levels (default 100000)\n"
        "  --replicas N      seed replicas per point (default 1)\n"
        "\nrun shaping:\n"
        "  --per-server-qps  scale each qps level by the fleet size\n"
        "  --seconds S       measured window (default: auto-sized)\n"
        "  --warmup S        warmup (default: window/10)\n"
        "  --cores N         per-server core count (default: config)\n"
        "  --dispatch NAME   request-to-core mapping for every "
        "point\n"
        "                    (static|packing; default: config)\n"
        "  --thermal         couple the RC thermal model on every "
        "point\n"
        "                    (a machine knob, not an axis)\n"
        "  --seed N          top-level seed (default 42)\n"
        "  --fleet-threads N worker threads WITHIN each fleet "
        "point\n"
        "                    (default 1; artifacts are bit-identical "
        "at any N)\n"
        "  --epoch S         fleet routing-decision epoch length in "
        "sim\n"
        "                    seconds (default: one epoch; artifacts "
        "are\n"
        "                    identical for any value)\n"
        "\nexecution and artifacts:\n"
        "  --threads N       worker threads across grid points\n"
        "                    (default: hardware)\n"
        "  --csv FILE        write the sweep as CSV\n"
        "  --json FILE       write the sweep as JSON\n"
        "  --name NAME       spec name recorded in the artifacts\n"
        "  --quiet           no summary table, just artifacts\n"
        "\nstreaming telemetry (aw-timeline/3, see "
        "docs/TELEMETRY.md):\n"
        "  --timeline FILE   write every point's interval timeline "
        "as CSV\n"
        "  --timeline-json FILE  the same timelines as JSON "
        "(intervals +\n"
        "                    per-point C-state transition maps)\n"
        "  --timeline-interval S  sampling interval in sim seconds\n"
        "                    (default 0.01 when a timeline file is "
        "given)\n"
        "\nrequest tracing (aw-trace/1, see docs/TRACING.md):\n"
        "  --trace-requests FILE  record per-request spans at every\n"
        "                    point and write the tail-latency "
        "attribution\n"
        "                    sweep (p99 wake/queue shares) as CSV\n"
        "  --trace-requests-json FILE  the same attributions as "
        "JSON\n"
        "                    (full all/p99/p99.9 cohort objects)\n");
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::string item =
            arg.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

unsigned
parseUnsigned(const char *flag, const char *value)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0' || value[0] == '-' ||
        errno == ERANGE || v > std::numeric_limits<unsigned>::max())
        sim::fatal("%s: bad value '%s'", flag, value);
    return static_cast<unsigned>(v);
}

double
parseDouble(const char *flag, const char *value)
{
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    if (end == value || *end != '\0' || !std::isfinite(v))
        sim::fatal("%s: bad value '%s'", flag, value);
    return v;
}

std::uint64_t
parseUint64(const char *flag, const char *value)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || value[0] == '-' ||
        errno == ERANGE)
        sim::fatal("%s: bad value '%s'", flag, value);
    return static_cast<std::uint64_t>(v);
}

} // namespace

int
main(int argc, char **argv)
{
    exp::ExperimentSpec spec;
    spec.name = "awsweep";
    unsigned threads = 0;
    std::string csv_path;
    std::string json_path;
    std::string timeline_csv_path;
    std::string timeline_json_path;
    std::string trace_csv_path;
    std::string trace_json_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                sim::fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--workloads") {
            spec.workloads = splitList(next("--workloads"));
        } else if (arg == "--configs") {
            spec.configs = splitList(next("--configs"));
        } else if (arg == "--governors") {
            spec.governors = splitList(next("--governors"));
        } else if (arg == "--freq-governors") {
            spec.freqPolicies =
                splitList(next("--freq-governors"));
        } else if (arg == "--slo") {
            spec.sloUs.clear();
            for (const auto &v : splitList(next("--slo"))) {
                const double s = parseDouble("--slo", v.c_str());
                if (s < 0.0)
                    sim::fatal("--slo: latency SLO must be >= 0 us "
                               "(0 = unconstrained; got %g)",
                               s);
                spec.sloUs.push_back(s);
            }
        } else if (arg == "--caps") {
            spec.capWatts.clear();
            for (const auto &v : splitList(next("--caps"))) {
                const double w = parseDouble("--caps", v.c_str());
                if (w < 0.0)
                    sim::fatal("--caps: package budget must be "
                               ">= 0 watts (0 = uncapped; got %g)",
                               w);
                spec.capWatts.push_back(w);
            }
        } else if (arg == "--thermal") {
            spec.thermal = true;
        } else if (arg == "--dispatch") {
            spec.dispatch = next("--dispatch");
        } else if (arg == "--policies") {
            spec.policies = splitList(next("--policies"));
        } else if (arg == "--fleet") {
            spec.fleetSizes.clear();
            for (const auto &v : splitList(next("--fleet"))) {
                const unsigned k =
                    parseUnsigned("--fleet", v.c_str());
                if (k == 0)
                    sim::fatal("--fleet: need at least 1 server "
                               "(omit the flag for single-server "
                               "sweeps)");
                spec.fleetSizes.push_back(k);
            }
        } else if (arg == "--qps") {
            spec.qps.clear();
            for (const auto &v : splitList(next("--qps"))) {
                const double q = parseDouble("--qps", v.c_str());
                if (q <= 0.0)
                    sim::fatal("--qps: offered load must be "
                               "positive (got %g)",
                               q);
                spec.qps.push_back(q);
            }
        } else if (arg == "--replicas") {
            spec.replicas =
                parseUnsigned("--replicas", next("--replicas"));
            if (spec.replicas == 0)
                sim::fatal("--replicas: need at least 1 replica");
        } else if (arg == "--per-server-qps") {
            spec.qpsPerServer = true;
        } else if (arg == "--seconds") {
            spec.seconds = parseDouble("--seconds", next("--seconds"));
            if (spec.seconds < 0.0)
                sim::fatal("--seconds: window must be >= 0 "
                           "(0 = auto-sized; got %g)",
                           spec.seconds);
        } else if (arg == "--warmup") {
            spec.warmupSeconds =
                parseDouble("--warmup", next("--warmup"));
            if (spec.warmupSeconds < 0.0)
                sim::fatal("--warmup: must be >= 0 (omit the flag "
                           "for the window/10 default; got %g)",
                           spec.warmupSeconds);
        } else if (arg == "--cores") {
            spec.cores = parseUnsigned("--cores", next("--cores"));
            if (spec.cores == 0)
                sim::fatal("--cores: need at least 1 core (omit "
                           "the flag for the config default)");
        } else if (arg == "--seed") {
            spec.seed = parseUint64("--seed", next("--seed"));
        } else if (arg == "--threads") {
            threads = parseUnsigned("--threads", next("--threads"));
            if (threads == 0)
                sim::fatal("--threads: need at least 1 worker "
                           "thread (omit the flag for hardware "
                           "concurrency)");
        } else if (arg == "--fleet-threads") {
            spec.fleetThreads = parseUnsigned(
                "--fleet-threads", next("--fleet-threads"));
            if (spec.fleetThreads == 0)
                sim::fatal("--fleet-threads: need at least 1 "
                           "worker thread");
        } else if (arg == "--epoch") {
            spec.epochSeconds =
                parseDouble("--epoch", next("--epoch"));
            if (spec.epochSeconds <= 0.0)
                sim::fatal("--epoch: epoch length must be positive "
                           "(omit the flag for one epoch spanning "
                           "the run; got %g)",
                           spec.epochSeconds);
        } else if (arg == "--csv") {
            csv_path = next("--csv");
        } else if (arg == "--json") {
            json_path = next("--json");
        } else if (arg == "--timeline") {
            timeline_csv_path = next("--timeline");
        } else if (arg == "--timeline-json") {
            timeline_json_path = next("--timeline-json");
        } else if (arg == "--timeline-interval") {
            spec.timelineIntervalSeconds = parseDouble(
                "--timeline-interval", next("--timeline-interval"));
            if (spec.timelineIntervalSeconds <= 0.0)
                sim::fatal("--timeline-interval: must be positive");
        } else if (arg == "--trace-requests") {
            trace_csv_path = next("--trace-requests");
        } else if (arg == "--trace-requests-json") {
            trace_json_path = next("--trace-requests-json");
        } else if (arg == "--name") {
            spec.name = next("--name");
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage();
            sim::fatal("unknown argument '%s'", arg.c_str());
        }
    }

    // A timeline artifact without an explicit interval gets the
    // 10 ms default; an interval without a file is pointless.
    const bool want_timeline = !timeline_csv_path.empty() ||
                               !timeline_json_path.empty();
    if (want_timeline && spec.timelineIntervalSeconds <= 0.0)
        spec.timelineIntervalSeconds = 0.01;
    if (!want_timeline && spec.timelineIntervalSeconds > 0.0)
        sim::fatal("--timeline-interval needs --timeline or "
                   "--timeline-json");
    const bool want_trace =
        !trace_csv_path.empty() || !trace_json_path.empty();
    if (want_trace)
        spec.traceRequests = true;

    // expand() inside run() validates on this thread before any
    // worker spawns.
    exp::SweepRunner runner(threads);
    const auto result = runner.run(spec);

    if (!quiet) {
        std::printf("sweep=%s points=%zu threads=%u seed=%llu "
                    "wall=%.2fs\n\n",
                    spec.name.c_str(), result.points.size(),
                    runner.threads(),
                    static_cast<unsigned long long>(spec.seed),
                    result.wallSeconds);
        // DVFS columns appear only when the spec swept those axes,
        // mirroring the artifact emitters.
        const bool freq_axis = !spec.freqPolicies.empty();
        const bool slo_axis = !spec.sloUs.empty();
        const bool cap_axis = !spec.capWatts.empty();
        std::vector<std::string> headers = {"workload", "config",
                                            "governor"};
        if (freq_axis)
            headers.push_back("freq");
        if (slo_axis)
            headers.push_back("slo us");
        if (cap_axis)
            headers.push_back("cap W");
        for (const char *h :
             {"policy", "K", "qps", "rep", "power W", "mJ/req",
              "avg us", "p99 us", "deep idle"})
            headers.push_back(h);
        analysis::TableWriter t(headers);
        for (const auto &p : result.points) {
            const auto &pt = p.point;
            std::vector<std::string> row = {
                pt.workload, pt.config,
                pt.governor.empty() ? "-" : pt.governor};
            if (freq_axis)
                row.push_back(pt.freqPolicy.empty() ? "-"
                                                    : pt.freqPolicy);
            if (slo_axis)
                row.push_back(pt.sloUs > 0.0
                                  ? analysis::cell("%g", pt.sloUs)
                                  : std::string("-"));
            if (cap_axis)
                row.push_back(pt.capWatts > 0.0
                                  ? analysis::cell("%g", pt.capWatts)
                                  : std::string("-"));
            for (std::string &cell : std::vector<std::string>{
                     pt.policy.empty() ? "-" : pt.policy,
                     pt.servers ? analysis::cell("%u", pt.servers)
                                : std::string("-"),
                     analysis::cell("%.0f", pt.qps),
                     analysis::cell("%u", pt.replica),
                     analysis::cell("%.1f", p.powerW),
                     analysis::cell("%.3f", p.energyPerRequestMj),
                     analysis::cell("%.1f", p.avgLatencyUs),
                     analysis::cell("%.1f", p.p99LatencyUs),
                     analysis::cell("%.1f%%", 100 * p.deepIdleShare)})
                row.push_back(std::move(cell));
            t.addRow(row);
        }
        t.print();
    }

    if (!csv_path.empty())
        exp::writeFile(csv_path, exp::toCsv(result));
    if (!json_path.empty())
        exp::writeFile(json_path, exp::toJson(result));
    if (!timeline_csv_path.empty())
        exp::writeFile(timeline_csv_path,
                       exp::toTimelineCsv(result));
    if (!timeline_json_path.empty())
        exp::writeFile(timeline_json_path,
                       exp::toTimelineJson(result));
    if (!trace_csv_path.empty())
        exp::writeFile(trace_csv_path, exp::toTraceCsv(result));
    if (!trace_json_path.empty())
        exp::writeFile(trace_json_path, exp::toTraceJson(result));
    if (!quiet && (!csv_path.empty() || !json_path.empty() ||
                   want_timeline || want_trace)) {
        std::printf("\nartifacts:%s%s%s%s%s%s%s%s%s%s%s%s\n",
                    csv_path.empty() ? "" : " csv=",
                    csv_path.c_str(),
                    json_path.empty() ? "" : " json=",
                    json_path.c_str(),
                    timeline_csv_path.empty() ? "" : " timeline=",
                    timeline_csv_path.c_str(),
                    timeline_json_path.empty() ? ""
                                               : " timeline_json=",
                    timeline_json_path.c_str(),
                    trace_csv_path.empty() ? "" : " trace=",
                    trace_csv_path.c_str(),
                    trace_json_path.empty() ? "" : " trace_json=",
                    trace_json_path.c_str());
    }
    return 0;
}
