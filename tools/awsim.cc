/**
 * @file
 * awsim -- command-line driver for the AgileWatts server simulator.
 *
 * Runs one workload x configuration x load point and prints the
 * full result record. Example:
 *
 *   awsim --workload memcached --config aw --qps 100000 \
 *         --seconds 2 --seed 7
 *
 * With --fleet N the same workload drives a cluster of N servers
 * behind a routing policy (see src/cluster/):
 *
 *   awsim --fleet 8 --route pack-first --config aw --qps 400000
 *
 * Run `awsim --help` for the knob list.
 */

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "analysis/power_model.hh"
#include "analysis/sampler.hh"
#include "analysis/table.hh"
#include "analysis/trace.hh"
#include "cluster/fleet.hh"
#include "exp/emit.hh"
#include "exp/spec.hh"
#include "server/server_sim.hh"
#include "sim/logging.hh"
#include "workload/profiles.hh"
#include "workload/trace.hh"

namespace {

using namespace aw;
using exp::configByName;
using exp::profileByName;

void
usage()
{
    std::printf(
        "awsim -- AgileWatts C-state server simulator\n\n"
        "  --workload NAME   memcached|mysql|kafka|specpower|nginx|"
        "spark|hive\n"
        "  --config NAME     baseline|aw|nt_baseline|nt_no_c6|"
        "nt_no_c6_no_c1e|nt_aw|\n"
        "                    t_no_c6|t_no_c6_no_c1e|t_aw|c1c6|"
        "c1only|aw_c6a\n"
        "  --governor SPEC   idle governor: menu|teo|ladder|"
        "static:<state>|oracle\n"
        "                    (default menu; oracle is single-server "
        "static\n"
        "                    dispatch only)\n"
        "  --freq-governor SPEC  DVFS governor: performance|"
        "powersave|\n"
        "                    ondemand|conservative|racetohalt\n"
        "                    (default: the static operating point)\n"
        "  --slo US          per-request latency SLO in us "
        "(PM-QoS):\n"
        "                    disables idle states too slow to wake\n"
        "                    within it and floors the DVFS ladder\n"
        "  --cap WATTS       RAPL-style package power cap "
        "(0 = uncapped):\n"
        "                    clamps the DVFS ladder, then injects\n"
        "                    forced idle (docs/POWERCAP.md)\n"
        "  --thermal         couple the RC thermal model; trips "
        "feed the\n"
        "                    same throttle ladder as budget "
        "overshoot\n"
        "  --dispatch NAME   request-to-core mapping: "
        "static|packing\n"
        "  --qps N           offered load, requests/s (default "
        "100000)\n"
        "  --seconds S       measured window (default: sized to "
        "the rate)\n"
        "  --warmup S        warmup (default: window/10)\n"
        "  --cores N         core count (default 10)\n"
        "  --seed N          RNG seed (default 42)\n"
        "  --snoops N        snoop probes/s/core (default 0)\n"
        "  --packing         CARB-style packing dispatch\n"
        "  --package         enable PC2/PC6 package states\n"
        "  --pn              run the active state at Pn (0.8 GHz)\n"
        "  --estimate-aw     also print the Eq. 4 AW estimate\n"
        "  --trace FILE      replay inter-arrival gaps from FILE\n"
        "                    (CSV, one gap in us per value; loops)\n"
        "  --timeline FILE   write the run's interval telemetry as\n"
        "                    aw-timeline/3 CSV (docs/TELEMETRY.md)\n"
        "  --timeline-json FILE  the same telemetry as JSON, plus "
        "the\n"
        "                    C-state transition map\n"
        "  --timeline-interval S  sampling interval in sim seconds\n"
        "                    (default 0.01 when a timeline file is "
        "given)\n"
        "  --trace-requests FILE  write per-request spans as "
        "aw-trace/1\n"
        "                    CSV (docs/TRACING.md)\n"
        "  --trace-requests-json FILE  write the tail-latency\n"
        "                    attribution (all/p99/p99.9 cohorts) as "
        "JSON\n"
        "  --trace-chrome FILE  write a Chrome trace_event JSON "
        "loadable\n"
        "                    in Perfetto / chrome://tracing\n"
        "\nfleet mode (--fleet):\n"
        "  --fleet N         simulate N servers behind a balancer\n"
        "  --route NAME      round-robin|random|least-outstanding|"
        "pack-first|\n"
        "                    route-to-headroom (cap-aware: favors "
        "the\n"
        "                    server with the most watt headroom)\n"
        "                    (default round-robin)\n"
        "  --pack-cap N      pack-first spill threshold "
        "(default cores/2)\n"
        "  --diurnal A       sinusoidal diurnal load, amplitude A "
        "in [0,1]\n"
        "  --diurnal-period S  length of one simulated \"day\" "
        "(default 1 s)\n"
        "  --flash SPIKE     flash-crowd load: SPIKE x the base "
        "rate\n"
        "                    for the middle quarter of each "
        "--diurnal-period\n"
        "                    (extra traffic, not renormalized; "
        "excludes\n"
        "                    --diurnal)\n"
        "  --fleet-threads N worker threads for the per-server "
        "phase\n"
        "                    (default 1; results are bit-identical "
        "at any N)\n"
        "  --epoch S         routing-decision epoch length in sim "
        "seconds\n"
        "                    (default: one epoch; results are "
        "identical\n"
        "                    for any value)\n");
}

/** Parse a non-negative integer flag value or die. */
unsigned
parseUnsigned(const char *flag, const char *value)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(value, &end, 10);
    if (end == value || *end != '\0' || value[0] == '-' ||
        errno == ERANGE ||
        v > std::numeric_limits<unsigned>::max()) {
        sim::fatal("%s: bad value '%s'", flag, value);
    }
    return static_cast<unsigned>(v);
}

/** Parse a floating-point flag value or die. */
double
parseDouble(const char *flag, const char *value)
{
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    if (end == value || *end != '\0' || !std::isfinite(v))
        sim::fatal("%s: bad value '%s'", flag, value);
    return v;
}

/** Parse a 64-bit unsigned flag value or die. */
std::uint64_t
parseUint64(const char *flag, const char *value)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || value[0] == '-' ||
        errno == ERANGE) {
        sim::fatal("%s: bad value '%s'", flag, value);
    }
    return v;
}

/** --timeline/--timeline-json/--timeline-interval, resolved. */
struct TimelineOpts
{
    std::string csvPath;
    std::string jsonPath;
    double intervalSeconds = 0.0;

    bool enabled() const
    {
        return !csvPath.empty() || !jsonPath.empty();
    }

    analysis::TimelineConfig config() const
    {
        analysis::TimelineConfig tc;
        tc.intervalSeconds = intervalSeconds;
        return tc;
    }
};

/** --trace-requests/--trace-requests-json/--trace-chrome. */
struct TraceOpts
{
    std::string csvPath;
    std::string jsonPath;
    std::string chromePath;

    bool enabled() const
    {
        return !csvPath.empty() || !jsonPath.empty() ||
               !chromePath.empty();
    }
};

/** Write the requested aw-trace/1 artifacts for one series and
 *  print its tail-attribution summary. */
void
writeRequestTrace(const analysis::TraceSeries &series,
                  const std::string &label, const TraceOpts &tr)
{
    if (!tr.csvPath.empty())
        exp::writeFile(tr.csvPath, analysis::traceCsv(series));
    if (!tr.jsonPath.empty())
        exp::writeFile(tr.jsonPath,
                       analysis::attributionJson(series, label));
    if (!tr.chromePath.empty())
        exp::writeFile(tr.chromePath,
                       analysis::chromeTraceJson(series));

    const auto attr = analysis::attributeTail(series);
    std::printf("\ntrace: spans=%llu dropped=%llu "
                "wake_episodes=%llu\n",
                static_cast<unsigned long long>(attr.spans),
                static_cast<unsigned long long>(attr.dropped),
                static_cast<unsigned long long>(
                    series.wakesEmitted));
    analysis::TableWriter at(
        {"cohort", "count", "wake share", "queue share",
         "service share", "mean wake (us)"});
    const std::pair<const char *, const analysis::CohortStats &>
        cohorts[] = {{"all", attr.all},
                     {"p99", attr.p99},
                     {"p99.9", attr.p999}};
    for (const auto &[name, st] : cohorts) {
        at.addRow({name,
                   analysis::cell("%llu",
                                  static_cast<unsigned long long>(
                                      st.count)),
                   analysis::cell("%.1f%%", 100 * st.wakeShare),
                   analysis::cell("%.1f%%", 100 * st.queueShare),
                   analysis::cell("%.1f%%", 100 * st.serviceShare),
                   analysis::cell("%.2f", st.meanWakeUs)});
    }
    at.print();
}

/** Write the requested aw-timeline/3 artifacts for one series. */
void
writeTimeline(const analysis::TimelineSeries &series,
              const std::string &label, const TimelineOpts &tl)
{
    if (!tl.csvPath.empty())
        exp::writeFile(tl.csvPath, analysis::timelineCsv(series));
    if (!tl.jsonPath.empty())
        exp::writeFile(tl.jsonPath,
                       analysis::timelineJson(series, label));
    std::printf("\ntimeline: intervals=%llu dropped=%llu%s%s%s%s\n",
                static_cast<unsigned long long>(series.emitted),
                static_cast<unsigned long long>(series.dropped),
                tl.csvPath.empty() ? "" : " csv=",
                tl.csvPath.c_str(),
                tl.jsonPath.empty() ? "" : " json=",
                tl.jsonPath.c_str());
}

void
runFleet(const cluster::FleetConfig &fleet_cfg,
         const workload::WorkloadProfile &profile, double qps,
         double seconds, double warmup,
         const std::string &trace_path, const TimelineOpts &tl,
         const TraceOpts &tr)
{
    // A replayed trace defines the offered rate, like the
    // single-server path.
    std::optional<workload::ArrivalTrace> trace;
    if (!trace_path.empty()) {
        trace = workload::ArrivalTrace::loadCsv(trace_path);
        qps = trace->meanRatePerSec();
    }
    cluster::FleetSim fleet(fleet_cfg, profile, qps);
    if (trace)
        fleet.setArrivalTrace(std::move(*trace));
    if (tl.enabled())
        fleet.enableTimeline(tl.config());
    if (tr.enabled())
        fleet.enableRequestTrace(analysis::TraceConfig{});

    const auto r =
        seconds > 0.0
            ? fleet.run(sim::fromSec(seconds),
                        sim::fromSec(warmup >= 0.0 ? warmup
                                                   : seconds / 10.0))
            : fleet.run();

    std::string dvfs_note;
    if (!fleet_cfg.server.freqPolicy.empty())
        dvfs_note += " freq=" + fleet_cfg.server.freqPolicy;
    if (fleet_cfg.server.sloUs > 0.0)
        dvfs_note +=
            sim::strprintf(" slo=%gus", fleet_cfg.server.sloUs);
    if (fleet_cfg.server.cap.capWatts > 0.0)
        dvfs_note += sim::strprintf(" cap=%gW",
                                    fleet_cfg.server.cap.capWatts);
    if (fleet_cfg.server.cap.thermalEnabled)
        dvfs_note += " thermal";
    std::printf("fleet=%u route=%s workload=%s config=%s "
                "governor=%s qps=%.0f seed=%llu%s%s\n\n",
                r.servers, r.routingName.c_str(),
                r.workloadName.c_str(), r.configName.c_str(),
                fleet_cfg.server.governor.c_str(), r.offeredQps,
                static_cast<unsigned long long>(fleet_cfg.seed),
                fleet_cfg.schedule.isFlat() ? "" : " diurnal",
                dvfs_note.c_str());

    analysis::TableWriter t({"metric", "value"});
    t.addRow({"window (s)",
              analysis::cell("%.3f", sim::toSec(r.window))});
    t.addRow({"requests", analysis::cell(
                              "%llu", static_cast<unsigned long long>(
                                          r.requests))});
    t.addRow({"achieved qps",
              analysis::cell("%.0f", r.achievedQps)});
    t.addRow({"fleet power (W)",
              analysis::cell("%.2f", r.fleetPower)});
    t.addRow({"fleet energy (J)",
              analysis::cell("%.2f", r.fleetEnergy)});
    t.addRow({"energy/request (mJ)",
              analysis::cell("%.3f", r.energyPerRequestMj)});
    t.addRow({"avg latency (us)",
              analysis::cell("%.2f", r.avgLatencyUs)});
    t.addRow({"p99 latency (us)",
              analysis::cell("%.2f", r.p99LatencyUs)});
    t.addRow({"p99.9 latency (us)",
              analysis::cell("%.2f", r.p999LatencyUs)});
    t.addRow({"deep idle (C6 family)",
              analysis::cell("%.1f%%", 100 * r.deepIdleShare)});
    t.addRow({"deep idle spread",
              analysis::cell("%.1f%% .. %.1f%%",
                             100 * r.minServerDeepShare,
                             100 * r.maxServerDeepShare)});
    t.addRow({"busiest server load share",
              analysis::cell("%.1f%%", 100 * r.busiestShareOfLoad)});
    if (fleet_cfg.server.cap.enabled()) {
        t.addRow({"cap throttled",
                  analysis::cell("%.1f%%",
                                 100 * r.capThrottleShare)});
        t.addRow({"forced-idle naps",
                  analysis::cell("%llu",
                                 static_cast<unsigned long long>(
                                     r.forcedIdleNaps))});
        if (fleet_cfg.server.cap.thermalEnabled)
            t.addRow({"max temp (C)",
                      analysis::cell("%.1f", r.maxTempC)});
    }
    t.print();

    std::printf("\nper-server:\n");
    analysis::TableWriter ps({"server", "routed", "completed",
                              "pkg W", "deep idle", "p99 (us)"});
    for (unsigned i = 0; i < r.servers; ++i) {
        const auto &s = r.perServer[i];
        ps.addRow({analysis::cell("%u", i),
                   analysis::cell("%llu",
                                  static_cast<unsigned long long>(
                                      r.routedPerServer[i])),
                   analysis::cell("%llu",
                                  static_cast<unsigned long long>(
                                      s.requests)),
                   analysis::cell("%.2f", s.packagePower),
                   analysis::cell(
                       "%.1f%%",
                       100 * cluster::deepIdleShare(s.residency)),
                   analysis::cell("%.1f", s.p99LatencyUs)});
    }
    ps.print();

    const std::string label =
        sim::strprintf("fleet%u/%s/%s/%.0fqps", r.servers,
                       r.workloadName.c_str(), r.configName.c_str(),
                       r.offeredQps);
    if (tl.enabled())
        writeTimeline(*r.timeline, label, tl);
    if (tr.enabled())
        writeRequestTrace(*r.trace, label, tr);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name = "memcached";
    std::string config_name = "baseline";
    std::string governor; //!< empty = config default ("menu")
    std::string freq_governor; //!< empty = static operating point
    double slo_us = 0.0;  //!< 0 = unconstrained
    double cap_watts = 0.0; //!< 0 = uncapped
    bool thermal = false;
    std::string dispatch; //!< empty = config default ("static")
    double qps = 100e3;
    double seconds = 0.0;
    double warmup = -1.0;
    unsigned cores = 10;
    std::uint64_t seed = 42;
    double snoops = 0.0;
    bool packing = false;
    bool package = false;
    bool pn = false;
    bool estimate_aw = false;
    std::string trace_path;
    unsigned fleet = 0;
    std::string route = "round-robin";
    unsigned pack_cap = 0;
    double diurnal = 0.0;
    double diurnal_period = 1.0;
    double flash = 0.0;
    unsigned fleet_threads = 1;
    double epoch_seconds = 0.0;
    TimelineOpts timeline;
    TraceOpts reqtrace;
    const char *fleet_flag = nullptr; //!< last fleet-only flag seen

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                sim::fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--workload") {
            workload_name = next("--workload");
        } else if (arg == "--config") {
            config_name = next("--config");
        } else if (arg == "--governor") {
            governor = next("--governor");
        } else if (arg == "--freq-governor") {
            freq_governor = next("--freq-governor");
        } else if (arg == "--slo") {
            slo_us = parseDouble("--slo", next("--slo"));
            if (slo_us <= 0.0)
                sim::fatal("--slo: latency SLO must be a positive "
                           "number of microseconds (got %g)",
                           slo_us);
        } else if (arg == "--cap") {
            cap_watts = parseDouble("--cap", next("--cap"));
            if (cap_watts < 0.0)
                sim::fatal("--cap: package budget must be >= 0 "
                           "watts (0 = uncapped; got %g)",
                           cap_watts);
        } else if (arg == "--thermal") {
            thermal = true;
        } else if (arg == "--dispatch") {
            dispatch = next("--dispatch");
        } else if (arg == "--qps") {
            qps = parseDouble("--qps", next("--qps"));
            if (qps <= 0.0)
                sim::fatal("--qps: offered load must be positive "
                           "(got %g)",
                           qps);
        } else if (arg == "--seconds") {
            seconds = parseDouble("--seconds", next("--seconds"));
            if (seconds < 0.0)
                sim::fatal("--seconds: window must be >= 0 "
                           "(0 = auto-sized; got %g)",
                           seconds);
        } else if (arg == "--warmup") {
            warmup = parseDouble("--warmup", next("--warmup"));
            if (warmup < 0.0)
                sim::fatal("--warmup: must be >= 0 (omit the flag "
                           "for the window/10 default; got %g)",
                           warmup);
        } else if (arg == "--cores") {
            cores = parseUnsigned("--cores", next("--cores"));
            if (cores == 0)
                sim::fatal("--cores: need at least 1 core");
        } else if (arg == "--seed") {
            seed = parseUint64("--seed", next("--seed"));
        } else if (arg == "--snoops") {
            snoops = parseDouble("--snoops", next("--snoops"));
            if (snoops < 0.0)
                sim::fatal("--snoops: rate must be >= 0 (got %g)",
                           snoops);
        } else if (arg == "--packing") {
            packing = true;
        } else if (arg == "--package") {
            package = true;
        } else if (arg == "--pn") {
            pn = true;
        } else if (arg == "--estimate-aw") {
            estimate_aw = true;
        } else if (arg == "--trace") {
            trace_path = next("--trace");
        } else if (arg == "--timeline") {
            timeline.csvPath = next("--timeline");
        } else if (arg == "--timeline-json") {
            timeline.jsonPath = next("--timeline-json");
        } else if (arg == "--trace-requests") {
            reqtrace.csvPath = next("--trace-requests");
        } else if (arg == "--trace-requests-json") {
            reqtrace.jsonPath = next("--trace-requests-json");
        } else if (arg == "--trace-chrome") {
            reqtrace.chromePath = next("--trace-chrome");
        } else if (arg == "--timeline-interval") {
            timeline.intervalSeconds = parseDouble(
                "--timeline-interval", next("--timeline-interval"));
            if (timeline.intervalSeconds <= 0.0)
                sim::fatal("--timeline-interval: must be positive");
        } else if (arg == "--fleet") {
            fleet = parseUnsigned("--fleet", next("--fleet"));
            if (fleet == 0)
                sim::fatal("--fleet: need at least 1 server");
        } else if (arg == "--route") {
            route = next("--route");
            fleet_flag = "--route";
        } else if (arg == "--pack-cap") {
            pack_cap =
                parseUnsigned("--pack-cap", next("--pack-cap"));
            fleet_flag = "--pack-cap";
        } else if (arg == "--diurnal") {
            diurnal = parseDouble("--diurnal", next("--diurnal"));
            fleet_flag = "--diurnal";
        } else if (arg == "--diurnal-period") {
            diurnal_period = parseDouble("--diurnal-period",
                                         next("--diurnal-period"));
            fleet_flag = "--diurnal-period";
        } else if (arg == "--flash") {
            flash = parseDouble("--flash", next("--flash"));
            if (flash <= 0.0)
                sim::fatal("--flash: spike multiplier must be "
                           "positive (got %g)",
                           flash);
            fleet_flag = "--flash";
        } else if (arg == "--fleet-threads") {
            fleet_threads = parseUnsigned("--fleet-threads",
                                          next("--fleet-threads"));
            if (fleet_threads == 0)
                sim::fatal("--fleet-threads: need at least 1 "
                           "worker thread");
            fleet_flag = "--fleet-threads";
        } else if (arg == "--epoch") {
            epoch_seconds = parseDouble("--epoch", next("--epoch"));
            if (epoch_seconds <= 0.0)
                sim::fatal("--epoch: epoch length must be positive "
                           "(omit the flag for one epoch spanning "
                           "the run; got %g)",
                           epoch_seconds);
            fleet_flag = "--epoch";
        } else {
            usage();
            sim::fatal("unknown argument '%s'", arg.c_str());
        }
    }

    auto profile = profileByName(workload_name);
    auto cfg = configByName(config_name);
    cfg.cores = cores;
    cfg.seed = seed;
    cfg.snoopRatePerSec = snoops;
    cfg.runAtPn = pn;
    cfg.packageCStatesEnabled = package;
    if (!governor.empty())
        cfg.governor = governor;
    if (!freq_governor.empty())
        cfg.freqPolicy = freq_governor;
    cfg.sloUs = slo_us;
    cfg.cap.capWatts = cap_watts;
    cfg.cap.thermalEnabled = thermal;
    if (packing && !dispatch.empty() && dispatch != "packing")
        sim::fatal("--packing conflicts with --dispatch %s",
                   dispatch.c_str());
    if (packing)
        cfg.dispatch = server::DispatchPolicy::Packing;
    if (!dispatch.empty())
        cfg.dispatch = server::dispatchPolicyByName(dispatch);

    if (fleet == 0 && fleet_flag)
        sim::fatal("%s requires --fleet N", fleet_flag);
    if (timeline.enabled() && timeline.intervalSeconds <= 0.0)
        timeline.intervalSeconds = 0.01;
    if (!timeline.enabled() && timeline.intervalSeconds > 0.0)
        sim::fatal("--timeline-interval needs --timeline or "
                   "--timeline-json");
    if (diurnal < 0.0 || diurnal > 1.0)
        sim::fatal("--diurnal: amplitude must be in [0, 1]");
    if ((diurnal > 0.0 || flash > 0.0) && diurnal_period <= 0.0)
        sim::fatal("--diurnal-period: must be positive");
    if (diurnal > 0.0 && flash > 0.0)
        sim::fatal("--flash conflicts with --diurnal (pick one "
                   "load shape)");
    if (fleet > 0) {
        cluster::FleetConfig fc;
        fc.servers = fleet;
        fc.server = cfg;
        // Fleet runs model cpuidle's tick re-selection so spare
        // servers sink to the deepest state (see docs/FLEET.md).
        fc.server.idlePromotion = true;
        fc.routing = route;
        fc.packCapacity = pack_cap;
        fc.seed = seed;
        fc.fleetThreads = fleet_threads;
        fc.epochSeconds = epoch_seconds;
        if (diurnal > 0.0)
            fc.schedule = cluster::RateSchedule::sinusoidal(
                sim::fromSec(diurnal_period), diurnal);
        else if (flash > 0.0)
            fc.schedule = cluster::RateSchedule::flashCrowd(
                sim::fromSec(diurnal_period), flash);
        runFleet(fc, profile, qps, seconds, warmup, trace_path,
                 timeline, reqtrace);
        return 0;
    }

    std::unique_ptr<server::ServerSim> srv_owner;
    if (!trace_path.empty()) {
        auto trace = workload::ArrivalTrace::loadCsv(trace_path);
        qps = trace.meanRatePerSec();
        srv_owner = std::make_unique<server::ServerSim>(
            cfg, profile,
            std::make_unique<workload::TraceArrivals>(
                std::move(trace), /*loop=*/true));
    } else {
        srv_owner = std::make_unique<server::ServerSim>(cfg, profile,
                                                        qps);
    }
    server::ServerSim &srv = *srv_owner;
    std::optional<analysis::TimelineRecorder> recorder;
    std::optional<analysis::RequestTracer> tracer;
    server::TelemetryFanout fanout;
    if (timeline.enabled())
        recorder.emplace(timeline.config(), cfg.cores);
    if (reqtrace.enabled())
        tracer.emplace(analysis::TraceConfig{}, cfg.cores);
    if (recorder && tracer) {
        fanout.add(&*recorder);
        fanout.add(&*tracer);
        srv.setObserver(&fanout);
    } else if (recorder) {
        srv.setObserver(&*recorder);
    } else if (tracer) {
        srv.setObserver(&*tracer);
    }
    const auto r =
        seconds > 0.0
            ? srv.run(sim::fromSec(seconds),
                      sim::fromSec(warmup >= 0.0 ? warmup
                                                 : seconds / 10.0))
            : srv.run();

    std::string dvfs_note;
    if (!cfg.freqPolicy.empty())
        dvfs_note += " freq=" + cfg.freqPolicy;
    if (cfg.sloUs > 0.0)
        dvfs_note += sim::strprintf(" slo=%gus", cfg.sloUs);
    if (cfg.cap.capWatts > 0.0)
        dvfs_note += sim::strprintf(" cap=%gW", cfg.cap.capWatts);
    if (cfg.cap.thermalEnabled)
        dvfs_note += " thermal";
    std::printf("workload=%s config=%s governor=%s dispatch=%s "
                "qps=%.0f cores=%u seed=%llu%s%s%s\n\n",
                r.workloadName.c_str(), r.configName.c_str(),
                cfg.governor.c_str(), server::name(cfg.dispatch),
                r.offeredQps, cores,
                static_cast<unsigned long long>(seed),
                package ? " package" : "", pn ? " pn" : "",
                dvfs_note.c_str());

    analysis::TableWriter t({"metric", "value"});
    t.addRow({"window (s)", analysis::cell("%.3f",
                                           sim::toSec(r.window))});
    t.addRow({"requests", analysis::cell(
                              "%llu", static_cast<unsigned long long>(
                                          r.requests))});
    t.addRow({"achieved qps", analysis::cell("%.0f",
                                             r.achievedQps)});
    t.addRow({"avg core power (W)",
              analysis::cell("%.4f", r.avgCorePower)});
    t.addRow({"package power (W)",
              analysis::cell("%.2f", r.packagePower)});
    t.addRow({"core energy (J)",
              analysis::cell("%.2f", r.coreEnergy)});
    t.addRow({"avg latency (us)",
              analysis::cell("%.2f", r.avgLatencyUs)});
    t.addRow({"p99 latency (us)",
              analysis::cell("%.2f", r.p99LatencyUs)});
    t.addRow({"p99.9 latency (us)",
              analysis::cell("%.2f", r.p999LatencyUs)});
    t.addRow({"avg latency e2e (us)",
              analysis::cell("%.2f", r.avgLatencyE2eUs)});
    t.addRow({"transitions/request",
              analysis::cell("%.3f", r.transitionsPerRequest)});
    t.addRow({"mispredicted entries",
              analysis::cell("%llu",
                             static_cast<unsigned long long>(
                                 r.mispredictedEntries))});
    if (!cfg.freqPolicy.empty()) {
        t.addRow({"P-state ramps",
                  analysis::cell("%llu",
                                 static_cast<unsigned long long>(
                                     r.freqTransitions))});
        t.addRow({"ramp energy (J)",
                  analysis::cell("%.4f", r.freqTransitionEnergyJ)});
    }
    if (cfg.cap.enabled()) {
        t.addRow({"cap throttled",
                  analysis::cell("%.1f%%",
                                 100 * r.capThrottleShare)});
        t.addRow({"forced-idle naps",
                  analysis::cell("%llu",
                                 static_cast<unsigned long long>(
                                     r.forcedIdleNaps))});
        if (cfg.cap.thermalEnabled)
            t.addRow({"max temp (C)",
                      analysis::cell("%.1f", r.maxTempC)});
    }
    t.print();

    std::printf("\nresidency: ");
    for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
        const auto id = static_cast<cstate::CStateId>(i);
        const double share = r.residency.shareOf(id);
        if (share > 0.0005)
            std::printf("%s=%.1f%% ", cstate::name(id),
                        100.0 * share);
    }
    std::printf("\n");
    if (package) {
        std::printf("package:   PC0=%.1f%% PC2=%.1f%% PC6=%.1f%% "
                    "uncore=%.2fW\n",
                    100 * r.pkgResidency[0], 100 * r.pkgResidency[1],
                    100 * r.pkgResidency[2], r.avgUncorePower);
    }

    const std::string run_label = sim::strprintf(
        "%s/%s/%.0fqps", r.workloadName.c_str(),
        r.configName.c_str(), r.offeredQps);
    if (recorder)
        writeTimeline(recorder->series(), run_label, timeline);
    if (tracer)
        writeRequestTrace(tracer->series(), run_label, reqtrace);

    if (estimate_aw) {
        core::AwCoreModel aw_model;
        const analysis::CStatePowerModel model(
            server::StatePowers::fromModels(aw_model.ppa()));
        std::printf("\nEq. 4 AW savings estimate from this run's "
                    "residencies: %.1f%%\n",
                    100.0 * model.awSavingsVsMeasured(
                                r.residency, r.avgCorePower));
    }
    return 0;
}
