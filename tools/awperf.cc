/**
 * @file
 * awperf -- self-timing harness for the simulation kernel.
 *
 * Runs the pinned scenario registry (see src/exp/perf.hh), reports
 * wall clock, simulated-seconds-per-second and events-per-second
 * per scenario, and optionally writes the stable aw-perf/1 JSON
 * document consumed by scripts/check_perf.py and the CI perf-smoke
 * gate:
 *
 *   awperf                       # all scenarios, summary table
 *   awperf --json results/BENCH_perf.json
 *   awperf --scenarios fleet_sweep --repeat 5
 *   awperf --list                # names + descriptions
 *
 * Scenarios are deterministic simulations; only the wall clock
 * varies between runs, and --repeat keeps the best (minimum) wall
 * time so shared-machine noise biases measurements slow-to-fast,
 * never fast-to-slow.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/table.hh"
#include "exp/emit.hh"
#include "exp/perf.hh"
#include "sim/logging.hh"

namespace {

using namespace aw;

void
usage()
{
    std::printf(
        "awperf -- simulation-kernel speed telemetry\n\n"
        "  --list            print the pinned scenarios and exit\n"
        "  --scenarios A,B   run only the named scenarios\n"
        "  --repeat N        timed repeats per scenario, keep the\n"
        "                    best wall clock (default 3)\n"
        "  --json FILE       write the aw-perf/1 JSON document\n"
        "  --quiet           no summary table, just artifacts\n");
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const std::size_t comma = arg.find(',', start);
        const std::string item =
            arg.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    unsigned repeat = 3;
    std::string json_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                sim::fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            for (const auto &s : exp::perfScenarios())
                std::printf("%-18s %s\n", s.name.c_str(),
                            s.description.c_str());
            return 0;
        } else if (arg == "--scenarios" || arg == "--scenario") {
            names = splitList(next(arg.c_str()));
        } else if (arg == "--repeat") {
            repeat = static_cast<unsigned>(
                std::strtoul(next("--repeat"), nullptr, 10));
            if (repeat == 0)
                sim::fatal("--repeat must be >= 1");
        } else if (arg == "--json") {
            json_path = next("--json");
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            usage();
            sim::fatal("unknown argument '%s'", arg.c_str());
        }
    }

    std::vector<const exp::PerfScenario *> selected;
    if (names.empty()) {
        for (const auto &s : exp::perfScenarios())
            selected.push_back(&s);
    } else {
        for (const auto &name : names) {
            const auto *s = exp::findPerfScenario(name);
            if (!s) {
                std::string known;
                for (const auto &k : exp::perfScenarios()) {
                    if (!known.empty())
                        known += '|';
                    known += k.name;
                }
                sim::fatal("unknown scenario '%s' (%s)",
                           name.c_str(), known.c_str());
            }
            selected.push_back(s);
        }
    }

    std::vector<exp::PerfMeasurement> runs;
    runs.reserve(selected.size());
    for (const auto *s : selected)
        runs.push_back(exp::measurePerfScenario(*s, repeat));

    if (!quiet) {
        std::printf("awperf scenarios=%zu repeat=%u (wall = best "
                    "of repeats)\n\n",
                    runs.size(), repeat);
        analysis::TableWriter t({"scenario", "wall s", "sim s",
                                 "sim/wall", "events", "events/s",
                                 "req/s"});
        for (const auto &m : runs) {
            t.addRow({m.name, analysis::cell("%.3f", m.wallSeconds),
                      analysis::cell("%.2f", m.totals.simSeconds),
                      analysis::cell("%.1f", m.simPerWall()),
                      analysis::cell(
                          "%llu", static_cast<unsigned long long>(
                                      m.totals.events)),
                      analysis::cell("%.3g", m.eventsPerSec()),
                      analysis::cell("%.3g", m.requestsPerSec())});
        }
        t.print();
    }

    if (!json_path.empty()) {
        exp::writeFile(json_path, exp::perfToJson(runs));
        if (!quiet)
            std::printf("\nartifact: json=%s\n", json_path.c_str());
    }
    return 0;
}
