/**
 * @file
 * Unit tests for the snoop traffic generator.
 */

#include <gtest/gtest.h>

#include "uarch/snoop.hh"

namespace {

using namespace aw::uarch;
using namespace aw::sim;

TEST(SnoopTraffic, DisabledNeverFires)
{
    SnoopTraffic snoops(0.0, 0.3);
    EXPECT_FALSE(snoops.enabled());
    EXPECT_EQ(snoops.nextArrival(12345), kMaxTick);
}

TEST(SnoopTraffic, MeanGapMatchesRate)
{
    SnoopTraffic snoops(1000.0, 0.3, 7);
    double sum_sec = 0.0;
    Tick now = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const Tick next = snoops.nextArrival(now);
        sum_sec += toSec(next - now);
        now = next;
    }
    EXPECT_NEAR(sum_sec / n, 1e-3, 1e-4);
}

TEST(SnoopTraffic, ArrivalsAdvance)
{
    SnoopTraffic snoops(100.0, 0.5, 3);
    const Tick t1 = snoops.nextArrival(1000);
    EXPECT_GT(t1, 1000u);
}

TEST(SnoopTraffic, HitFractionRespected)
{
    SnoopTraffic snoops(100.0, 0.25, 11);
    int hits = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        hits += snoops.drawHit() ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(SnoopTraffic, AllOrNothingHitFractions)
{
    SnoopTraffic never(100.0, 0.0, 1);
    SnoopTraffic always(100.0, 1.0, 1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(never.drawHit());
        EXPECT_TRUE(always.drawHit());
    }
}

TEST(SnoopTrafficDeathTest, ValidatesArguments)
{
    EXPECT_DEATH(SnoopTraffic(-1.0, 0.3), "rate");
    EXPECT_DEATH(SnoopTraffic(10.0, 1.5), "fraction");
}

} // namespace
