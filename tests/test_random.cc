/**
 * @file
 * Unit tests for the RNG wrapper and distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"

namespace {

using namespace aw::sim;

TEST(Rng, DeterministicBySeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == b.uniform())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(2.0, 5.0);
        EXPECT_GE(x, 2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto x = rng.uniformInt(3, 6);
        EXPECT_GE(x, 3u);
        EXPECT_LE(x, 6u);
        saw_lo |= (x == 3);
        saw_hi |= (x == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

/** Property sweep: exponential sample mean tracks the target. */
class ExponentialMean : public ::testing::TestWithParam<double>
{
};

TEST_P(ExponentialMean, SampleMeanNearTarget)
{
    const double mean = GetParam();
    Rng rng(99);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMean,
                         ::testing::Values(0.5, 1.0, 10.0, 1000.0));

TEST(Rng, LognormalMeanAndCv)
{
    Rng rng(5);
    const double target_mean = 100.0, target_cv = 0.8;
    const int n = 300000;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.lognormalMeanCv(target_mean, target_cv);
        sum += x;
        sumsq += x * x;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, target_mean, target_mean * 0.03);
    EXPECT_NEAR(std::sqrt(var) / mean, target_cv, 0.05);
}

TEST(Rng, LognormalZeroCvIsDegenerate)
{
    Rng rng(5);
    EXPECT_DOUBLE_EQ(rng.lognormalMeanCv(42.0, 0.0), 42.0);
}

TEST(RngDeathTest, LognormalRejectsBadMean)
{
    Rng rng(5);
    EXPECT_DEATH(rng.lognormalMeanCv(-1.0, 0.5), "mean");
}

TEST(Rng, BoundedParetoStaysInBounds)
{
    Rng rng(17);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.boundedPareto(1.0, 100.0, 1.5);
        EXPECT_GE(x, 1.0);
        EXPECT_LE(x, 100.0 + 1e-9);
    }
}

TEST(Rng, BoundedParetoIsHeavyTailed)
{
    // Smaller alpha -> heavier tail -> larger mean.
    Rng rng(17);
    auto mean_for = [&](double alpha) {
        double sum = 0.0;
        for (int i = 0; i < 50000; ++i)
            sum += rng.boundedPareto(1.0, 1000.0, alpha);
        return sum / 50000;
    };
    EXPECT_GT(mean_for(0.8), mean_for(2.5));
}

TEST(RngDeathTest, BoundedParetoRejectsBadBounds)
{
    Rng rng(5);
    EXPECT_DEATH(rng.boundedPareto(10.0, 5.0, 1.0), "lo");
}

TEST(Zipf, UniformWhenSkewZero)
{
    Rng rng(3);
    ZipfDistribution zipf(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf(rng)];
    for (const int c : counts)
        EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    Rng rng(3);
    ZipfDistribution zipf(1000, 1.0);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[zipf(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, SupportRespected)
{
    Rng rng(3);
    ZipfDistribution zipf(4, 1.2);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(zipf(rng), 4u);
    EXPECT_EQ(zipf.support(), 4u);
}

TEST(ZipfDeathTest, EmptySupportPanics)
{
    EXPECT_DEATH(ZipfDistribution(0, 1.0), "support");
}

} // namespace
