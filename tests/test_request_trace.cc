/**
 * @file
 * Tests for the request-path tracer and tail-latency attribution:
 * ring/drop semantics, tick-exact span tiling, wake attribution
 * against hand-built episodes, attributeTail vs a brute-force
 * reference, fleet merge determinism across thread counts, the
 * aw-trace/1 emitters and a strict structural parse of the Chrome
 * trace_event JSON (pinned ph/pid/tid/ts keys).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/trace.hh"
#include "cluster/fleet.hh"
#include "exp/emit.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "server/server_sim.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::analysis;

TraceConfig
cfgWith(std::size_t capacity)
{
    TraceConfig tc;
    tc.capacity = capacity;
    return tc;
}

/** Drive one request through the tracer's lifecycle on core 0. */
void
oneRequest(RequestTracer &t, std::uint64_t id, sim::Tick arrival,
           sim::Tick start, sim::Tick done)
{
    t.onRequestArrival(0, id, arrival);
    t.onServiceStart(0, id, start);
    t.onComplete(0, id, done, sim::toUs(done - arrival));
}

// --------------------------------------------- ring/drop semantics

TEST(RequestTracer, RingKeepsTheNewestSpansAndCountsDrops)
{
    RequestTracer t(cfgWith(4), 1);
    t.onMeasurementStart(0);
    for (std::uint64_t id = 0; id < 10; ++id) {
        const sim::Tick base = 1000 * id;
        oneRequest(t, id, base, base + 10, base + 30);
    }
    t.onMeasurementEnd(20000);

    const TraceSeries &s = t.series();
    EXPECT_EQ(s.emitted, 10u);
    EXPECT_EQ(s.dropped, 6u);
    ASSERT_EQ(s.spans.size(), 4u);
    for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_EQ(s.spans[k].id, 6 + k); // oldest retained first
        EXPECT_EQ(s.spans[k].latency(), 30u);
    }
}

TEST(RequestTracer, OverflowedRingIsFlaggedInCsvAndOnStderr)
{
    // Regression: a wrapped span ring used to render exactly like a
    // complete trace. The CSV must carry an overflow comment line
    // (a comment, so the column schema and every lossless golden
    // stay byte-identical) and the renderer must warn on stderr.
    RequestTracer t(cfgWith(4), 1);
    t.onMeasurementStart(0);
    for (std::uint64_t id = 0; id < 10; ++id) {
        const sim::Tick base = 1000 * id;
        oneRequest(t, id, base, base + 10, base + 30);
    }
    t.onMeasurementEnd(20000);
    ASSERT_EQ(t.series().dropped, 6u);

    const bool was_quiet = sim::quiet();
    sim::setQuiet(false);
    testing::internal::CaptureStderr();
    const std::string csv = traceCsv(t.series());
    const std::string err = testing::internal::GetCapturedStderr();
    sim::setQuiet(was_quiet);

    EXPECT_NE(csv.find("# emitted 10 dropped 6 (ring overflow"),
              std::string::npos)
        << csv;
    EXPECT_NE(err.find("span ring overflowed"), std::string::npos)
        << err;
    EXPECT_NE(csv.find(traceCsvHeader()), std::string::npos);

    // A lossless series carries no flag line.
    RequestTracer ok(cfgWith(64), 1);
    ok.onMeasurementStart(0);
    oneRequest(ok, 0, 100, 110, 130);
    ok.onMeasurementEnd(1000);
    EXPECT_EQ(traceCsv(ok.series()).find("# emitted"),
              std::string::npos);
}

TEST(RequestTracer, WarmupCompletionsAreNotRecorded)
{
    RequestTracer t(cfgWith(16), 1);
    oneRequest(t, 0, 0, 10, 30); // before the measured window
    t.onMeasurementStart(100);
    oneRequest(t, 1, 200, 210, 240);
    t.onMeasurementEnd(1000);

    const TraceSeries &s = t.series();
    EXPECT_EQ(s.emitted, 1u);
    ASSERT_EQ(s.spans.size(), 1u);
    EXPECT_EQ(s.spans[0].id, 1u);
}

TEST(RequestTracer, WarmupStraddlingSpanRendersANegativeArrival)
{
    // A request that arrives during warmup but completes inside the
    // window IS measured (its latency counts), and its CSV arrival_s
    // must go negative instead of wrapping the unsigned ticks.
    RequestTracer t(cfgWith(16), 1);
    t.onRequestArrival(0, 0, sim::fromUs(50.0));
    t.onMeasurementStart(sim::fromUs(100.0));
    t.onServiceStart(0, 0, sim::fromUs(110.0));
    t.onComplete(0, 0, sim::fromUs(130.0), 80.0);
    t.onMeasurementEnd(sim::fromUs(1000.0));

    const TraceSeries &s = t.series();
    ASSERT_EQ(s.spans.size(), 1u);
    const std::string row = traceCsvRow(s, s.spans[0]);
    EXPECT_NE(row.find(",-5e-05,"), std::string::npos) << row;
}

TEST(RequestTracer, PendingFifoGrowsPastItsPreallocation)
{
    // 40 queued requests on one core exceeds the preallocated
    // 16-slot FIFO twice over; growth must preserve FIFO order.
    RequestTracer t(cfgWith(64), 1);
    t.onMeasurementStart(0);
    for (std::uint64_t id = 0; id < 40; ++id)
        t.onRequestArrival(0, id, id);
    sim::Tick now = 100;
    for (std::uint64_t id = 0; id < 40; ++id) {
        t.onServiceStart(0, id, now);
        now += 7;
        t.onComplete(0, id, now, 0.0);
    }
    t.onMeasurementEnd(now + 1);

    const TraceSeries &s = t.series();
    ASSERT_EQ(s.spans.size(), 40u);
    for (std::uint64_t id = 0; id < 40; ++id) {
        EXPECT_EQ(s.spans[id].id, id);
        EXPECT_EQ(s.spans[id].arrival, id);
    }
}

// ------------------------------------------------ wake attribution

TEST(RequestTracer, WakeOverlapIsClippedToTheRequestsWait)
{
    RequestTracer t(cfgWith(16), 1);
    t.onMeasurementStart(0);

    // Request 0 arrives at 100 and opens a wake from C6 ending at
    // 600: its whole [start, end] overlaps the wait.
    t.onRequestArrival(0, 0, 100);
    t.onWakeStart(0, 100, cstate::CStateId::C6);
    // Request 1 arrives mid-episode at 400: only [400, 600] of the
    // wake stalls it.
    t.onRequestArrival(0, 1, 400);
    t.onWakeEnd(0, 600);
    t.onServiceStart(0, 0, 600);
    t.onComplete(0, 0, 700, 0.0);
    t.onServiceStart(0, 1, 700);
    t.onComplete(0, 1, 800, 0.0);
    // Request 2 arrives after the episode closed: no wake at all.
    t.onRequestArrival(0, 2, 900);
    t.onServiceStart(0, 2, 910);
    t.onComplete(0, 2, 950, 0.0);

    t.onMeasurementEnd(1000);
    const TraceSeries &s = t.series();
    ASSERT_EQ(s.spans.size(), 3u);

    EXPECT_EQ(s.spans[0].wake, 500u);
    EXPECT_EQ(s.spans[0].wakeFrom, cstate::CStateId::C6);
    EXPECT_EQ(s.spans[0].queueWait(), 0u);

    EXPECT_EQ(s.spans[1].wake, 200u);
    EXPECT_EQ(s.spans[1].wakeFrom, cstate::CStateId::C6);
    EXPECT_EQ(s.spans[1].queueWait(), 100u);

    EXPECT_EQ(s.spans[2].wake, 0u);
    EXPECT_EQ(s.spans[2].wakeFrom, cstate::CStateId::C0);

    // The wake episode itself was recorded once.
    EXPECT_EQ(s.wakesEmitted, 1u);
    ASSERT_EQ(s.wakes.size(), 1u);
    EXPECT_EQ(s.wakes[0].start, 100u);
    EXPECT_EQ(s.wakes[0].end, 600u);
    EXPECT_EQ(s.wakes[0].from, cstate::CStateId::C6);
}

// ------------------------------------- tick-exact tiling (real run)

TEST(RequestTracer, SpansTileLatencyExactlyOnARealServerRun)
{
    auto cfg = exp::configByName("aw");
    cfg.seed = 7;
    server::ServerSim srv(cfg, exp::profileByName("memcached"),
                          100e3);
    RequestTracer tracer(TraceConfig{}, cfg.cores);
    srv.setObserver(&tracer);
    const auto r = srv.run(sim::fromSec(0.2), sim::fromSec(0.02));

    const TraceSeries &s = tracer.series();
    EXPECT_EQ(s.emitted, r.requests);
    EXPECT_EQ(s.dropped, 0u);
    ASSERT_GT(s.spans.size(), 1000u);

    sim::Tick prev_completion = 0;
    for (const auto &span : s.spans) {
        // Components tile [arrival, completion] with no gap or
        // overlap: the unsigned accessors would already underflow
        // on any mis-nesting, so check ordering first.
        ASSERT_GE(span.dispatch, span.arrival);
        ASSERT_GE(span.serviceStart, span.dispatch + span.wake);
        ASSERT_GE(span.completion, span.serviceStart);
        EXPECT_EQ(span.routing() + span.queueWait() + span.wake +
                      span.service(),
                  span.latency());
        if (span.wake > 0)
            EXPECT_NE(span.wakeFrom, cstate::CStateId::C0);
        // Completion-ordered, inside the measured window.
        EXPECT_GE(span.completion, prev_completion);
        prev_completion = span.completion;
        EXPECT_GE(span.completion, s.origin);
        EXPECT_LE(span.completion, s.end);
    }
}

TEST(RequestTracer, StaticC6ConfigAttributesWakesToC6)
{
    // Pinning the governor in C6 makes every idle wake a C6 wake:
    // the attribution must see a non-trivial C6 wake share and no
    // other sleep state in the histogram.
    auto cfg = exp::configByName("c1c6");
    cfg.governor = "static:C6";
    cfg.seed = 11;
    server::ServerSim srv(cfg, exp::profileByName("memcached"),
                          50e3);
    RequestTracer tracer(TraceConfig{}, cfg.cores);
    srv.setObserver(&tracer);
    srv.run(sim::fromSec(0.2), sim::fromSec(0.02));

    const TraceSeries &s = tracer.series();
    const TailAttribution attr = attributeTail(s);
    const auto c6 = cstate::index(cstate::CStateId::C6);
    EXPECT_GT(attr.all.wakeCount[c6], 0u);
    EXPECT_GT(attr.all.wakeShare, 0.0);
    for (std::size_t st = 0; st < cstate::kNumCStates; ++st) {
        if (st != c6)
            EXPECT_EQ(attr.all.wakeCount[st], 0u) << "state " << st;
    }
    for (const auto &w : s.wakes)
        EXPECT_EQ(w.from, cstate::CStateId::C6);
}

// ------------------------------------- attribution vs brute force

TEST(AttributeTail, MatchesABruteForceReference)
{
    auto cfg = exp::configByName("c1c6");
    cfg.seed = 3;
    server::ServerSim srv(cfg, exp::profileByName("memcached"),
                          150e3);
    RequestTracer tracer(TraceConfig{}, cfg.cores);
    srv.setObserver(&tracer);
    srv.run(sim::fromSec(0.15), sim::fromSec(0.015));

    const TraceSeries &s = tracer.series();
    ASSERT_FALSE(s.spans.empty());
    const TailAttribution attr = attributeTail(s);

    // Nearest-rank p99 threshold, recomputed independently.
    std::vector<sim::Tick> lat;
    for (const auto &span : s.spans)
        lat.push_back(span.latency());
    std::sort(lat.begin(), lat.end());
    const auto n = static_cast<double>(lat.size());
    const sim::Tick p99 = lat[static_cast<std::size_t>(
                              std::ceil(0.99 * n)) -
                          1];
    EXPECT_DOUBLE_EQ(attr.p99Us, sim::toUs(p99));

    // Brute-force cohort sums with the same integer arithmetic.
    std::uint64_t count = 0, latency = 0, wake = 0, queue = 0,
                  service = 0, routing = 0;
    for (const auto &span : s.spans) {
        if (span.latency() < p99)
            continue;
        ++count;
        latency += span.latency();
        wake += span.wake;
        queue += span.queueWait();
        service += span.service();
        routing += span.routing();
    }
    ASSERT_GT(count, 0u);
    EXPECT_EQ(attr.p99.count, count);
    EXPECT_DOUBLE_EQ(attr.p99.meanLatencyUs,
                     sim::toUs(latency) /
                         static_cast<double>(count));
    EXPECT_DOUBLE_EQ(attr.p99.wakeShare,
                     static_cast<double>(wake) /
                         static_cast<double>(latency));
    EXPECT_DOUBLE_EQ(attr.p99.queueShare,
                     static_cast<double>(queue) /
                         static_cast<double>(latency));
    EXPECT_DOUBLE_EQ(attr.p99.serviceShare,
                     static_cast<double>(service) /
                         static_cast<double>(latency));
    EXPECT_DOUBLE_EQ(attr.p99.routingShare,
                     static_cast<double>(routing) /
                         static_cast<double>(latency));
    // Shares of any cohort tile 1 exactly in the integer domain.
    EXPECT_EQ(routing + queue + wake + service, latency);
}

TEST(AttributeTail, EmptySeriesYieldsZeros)
{
    const TailAttribution attr = attributeTail(TraceSeries{});
    EXPECT_EQ(attr.spans, 0u);
    EXPECT_EQ(attr.all.count, 0u);
    EXPECT_DOUBLE_EQ(attr.p99Us, 0.0);
    EXPECT_DOUBLE_EQ(attr.all.wakeShare, 0.0);
}

// ----------------------------------------------------- percentiles

TEST(PercentileTracker, P999UsesNearestRank)
{
    sim::PercentileTracker t;
    for (int i = 1000; i >= 1; --i)
        t.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(t.p99(), 990.0); // ceil(0.99 * 1000) = 990
    EXPECT_GE(t.p999(), 999.0);       // within one rank of the max
    EXPECT_LE(t.p999(), 1000.0);
    EXPECT_GE(t.p999(), t.p99());
    EXPECT_DOUBLE_EQ(t.p999(), t.percentile(99.9));
    sim::PercentileTracker ten;
    for (int i = 10; i >= 1; --i)
        ten.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(ten.p999(), 10.0); // ceil(0.999 * 10) = 10
    sim::PercentileTracker one;
    one.add(42.0);
    EXPECT_DOUBLE_EQ(one.p999(), 42.0);
}

// ----------------------------------------------------- mergeTraces

TEST(MergeTraces, StampsServersInterleavesAndSumsCounters)
{
    TraceSeries a;
    a.origin = 0;
    a.end = 1000;
    a.cores = 2;
    a.emitted = 3;
    a.dropped = 1;
    a.wakesEmitted = 1;
    for (const sim::Tick done : {100u, 300u, 300u}) {
        RequestSpan sp;
        sp.arrival = done - 50;
        sp.dispatch = sp.arrival;
        sp.serviceStart = done - 10;
        sp.completion = done;
        a.spans.push_back(sp);
    }
    TraceSeries b = a;
    b.emitted = 2;
    b.dropped = 0;
    b.spans.pop_back();
    b.spans[0].completion = 200;
    b.spans[1].completion = 300;

    const TraceSeries m = mergeTraces({a, b});
    EXPECT_EQ(m.servers, 2u);
    EXPECT_EQ(m.cores, 2u);
    EXPECT_EQ(m.emitted, 5u);
    EXPECT_EQ(m.dropped, 1u);
    ASSERT_EQ(m.spans.size(), 5u);
    // Completion order 100, 200, 300(a), 300(a), 300(b): the stable
    // sort keeps server 0's equal-tick spans ahead of server 1's.
    EXPECT_EQ(m.spans[0].completion, 100u);
    EXPECT_EQ(m.spans[0].server, 0u);
    EXPECT_EQ(m.spans[1].completion, 200u);
    EXPECT_EQ(m.spans[1].server, 1u);
    EXPECT_EQ(m.spans[2].server, 0u);
    EXPECT_EQ(m.spans[3].server, 0u);
    EXPECT_EQ(m.spans[4].server, 1u);
}

// -------------------------------------------------- fanout/passivity

TEST(TelemetryFanout, BothSinksSeeTheIdenticalTrace)
{
    auto cfg = exp::configByName("aw");
    cfg.seed = 5;
    server::ServerSim srv(cfg, exp::profileByName("memcached"),
                          80e3);
    RequestTracer one(TraceConfig{}, cfg.cores);
    RequestTracer two(TraceConfig{}, cfg.cores);
    server::TelemetryFanout fanout;
    fanout.add(&one);
    fanout.add(&two);
    srv.setObserver(&fanout);
    srv.run(sim::fromSec(0.1), sim::fromSec(0.01));

    EXPECT_EQ(traceCsv(one.series()), traceCsv(two.series()));
    EXPECT_GT(one.series().emitted, 0u);
}

TEST(RequestTracer, TracingIsPassiveOnAServerRun)
{
    auto cfg = exp::configByName("c1c6");
    cfg.seed = 9;
    const auto profile = exp::profileByName("memcached");

    server::ServerSim plain(cfg, profile, 120e3);
    const auto a = plain.run(sim::fromSec(0.1), sim::fromSec(0.01));

    server::ServerSim traced(cfg, profile, 120e3);
    RequestTracer tracer(TraceConfig{}, cfg.cores);
    traced.setObserver(&tracer);
    const auto b = traced.run(sim::fromSec(0.1), sim::fromSec(0.01));

    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.p99LatencyUs, b.p99LatencyUs);
    EXPECT_DOUBLE_EQ(a.packagePower, b.packagePower);
}

// ------------------------------------ sweep emitters / determinism

exp::ExperimentSpec
tracedFleetSpec()
{
    exp::ExperimentSpec spec;
    spec.name = "trace-determinism";
    spec.workloads = {"memcached"};
    spec.configs = {"aw", "c1c6"};
    spec.policies = {"round-robin", "pack-first"};
    spec.fleetSizes = {2};
    spec.qps = {100e3};
    spec.seconds = 0.1;
    spec.seed = 42;
    spec.traceRequests = true;
    return spec;
}

TEST(TraceEmit, ArtifactsAreByteIdenticalAcrossThreadCounts)
{
    const auto spec = tracedFleetSpec();
    const auto serial = exp::SweepRunner(1).run(spec);
    const auto parallel = exp::SweepRunner(8).run(spec);
    const std::string csv1 = exp::toTraceCsv(serial);
    const std::string csv8 = exp::toTraceCsv(parallel);
    EXPECT_EQ(csv1, csv8);
    EXPECT_EQ(exp::toTraceJson(serial),
              exp::toTraceJson(parallel));

    // The pinned artifact schema: versioned header plus the
    // headline columns the paper's tail argument reads.
    EXPECT_EQ(csv1.rfind("# aw-trace/1\n", 0), 0u);
    for (const char *col :
         {"p99_wake_share", "p99_queue_share", "p999_latency_us",
          "p99_wake_share_c6", "all_service_share"}) {
        EXPECT_NE(csv1.find(col), std::string::npos)
            << "missing column " << col;
    }
    // One header comment, one column row, one row per point.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv1.begin(), csv1.end(), '\n')),
              2 + serial.points.size());
}

TEST(TraceEmit, RegularArtifactsStayIdenticalWithTracingOn)
{
    // The tracer is passive and its metrics live in new artifacts
    // only: the pinned CSV/JSON bytes cannot change when tracing
    // turns on.
    auto spec = tracedFleetSpec();
    spec.traceRequests = false;
    const auto off = exp::SweepRunner(1).run(spec);
    spec.traceRequests = true;
    const auto on = exp::SweepRunner(1).run(spec);
    EXPECT_EQ(exp::toCsv(off), exp::toCsv(on));
    EXPECT_EQ(exp::toJson(off), exp::toJson(on));
    for (const auto &p : on.points) {
        ASSERT_TRUE(p.trace.has_value());
        EXPECT_GT(p.trace->spans, 0u);
        EXPECT_GT(p.p999LatencyUs, 0.0);
        EXPECT_GE(p.p999LatencyUs, p.p99LatencyUs);
    }
}

// --------------------------------------- Chrome trace JSON (strict)

/** Minimal recursive-descent JSON parser: enough structure to pin
 *  the trace_event contract without a JSON dependency. */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _text(text) {}

    bool
    parse(JsonValue &out)
    {
        const bool ok = value(out);
        skipWs();
        return ok && _pos == _text.size();
    }

  private:
    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (_text.compare(_pos, n, word) != 0)
            return false;
        _pos += n;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        skipWs();
        if (_pos >= _text.size())
            return false;
        const char c = _text[_pos];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.type = JsonValue::Type::String;
            return string(out.str);
        }
        if (c == 't' || c == 'f') {
            out.type = JsonValue::Type::Bool;
            out.boolean = c == 't';
            return literal(c == 't' ? "true" : "false");
        }
        if (c == 'n') {
            out.type = JsonValue::Type::Null;
            return literal("null");
        }
        return number(out);
    }

    bool
    string(std::string &out)
    {
        if (_text[_pos] != '"')
            return false;
        ++_pos;
        out.clear();
        while (_pos < _text.size() && _text[_pos] != '"') {
            if (_text[_pos] == '\\') {
                if (_pos + 1 >= _text.size())
                    return false;
                out += _text[_pos + 1]; // enough for the pins
                _pos += 2;
            } else {
                // RFC 8259: raw control characters are invalid.
                if (static_cast<unsigned char>(_text[_pos]) < 0x20)
                    return false;
                out += _text[_pos++];
            }
        }
        if (_pos >= _text.size())
            return false;
        ++_pos;
        return true;
    }

    bool
    number(JsonValue &out)
    {
        const std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-'))
            ++_pos;
        if (_pos == start)
            return false;
        out.type = JsonValue::Type::Number;
        out.number = std::atof(_text.substr(start, _pos - start)
                                   .c_str());
        return true;
    }

    bool
    array(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++_pos; // '['
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v))
                return false;
            out.array.push_back(std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return false;
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == ']') {
                ++_pos;
                return true;
            }
            return false;
        }
    }

    bool
    object(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++_pos; // '{'
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (_pos >= _text.size() || !string(key))
                return false;
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return false;
            ++_pos;
            JsonValue v;
            if (!value(v))
                return false;
            out.object.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return false;
            if (_text[_pos] == ',') {
                ++_pos;
                continue;
            }
            if (_text[_pos] == '}') {
                ++_pos;
                return true;
            }
            return false;
        }
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

TEST(ChromeTrace, FleetExportParsesWithThePinnedEventKeys)
{
    cluster::FleetConfig fc;
    fc.servers = 2;
    fc.server = exp::configByName("c1c6");
    fc.server.idlePromotion = true;
    fc.seed = 21;
    cluster::FleetSim fleet(fc, exp::profileByName("memcached"),
                            100e3);
    fleet.enableRequestTrace(TraceConfig{});
    const auto r =
        fleet.run(sim::fromSec(0.05), sim::fromSec(0.005));
    ASSERT_TRUE(r.trace.has_value());
    EXPECT_GT(r.trace->routingEmitted, 0u);

    const std::string json = chromeTraceJson(*r.trace);
    JsonValue doc;
    ASSERT_TRUE(JsonParser(json).parse(doc)) << json.substr(0, 400);
    ASSERT_EQ(doc.type, JsonValue::Type::Object);

    const JsonValue *unit = doc.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->str, "ns");
    const JsonValue *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    const JsonValue *schema = other->find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str, kTraceSchema);

    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, JsonValue::Type::Array);
    ASSERT_FALSE(events->array.empty());

    std::size_t service = 0, wakes = 0, meta = 0, instants = 0;
    for (const auto &ev : events->array) {
        ASSERT_EQ(ev.type, JsonValue::Type::Object);
        // The pinned keys every trace_event viewer requires.
        const JsonValue *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(ev.find("pid"), nullptr);
        ASSERT_NE(ev.find("tid"), nullptr);
        ASSERT_NE(ev.find("ts"), nullptr);
        EXPECT_EQ(ev.find("pid")->type, JsonValue::Type::Number);
        EXPECT_EQ(ev.find("ts")->type, JsonValue::Type::Number);
        if (ph->str == "X") {
            ASSERT_NE(ev.find("dur"), nullptr);
            ASSERT_NE(ev.find("name"), nullptr);
            if (ev.find("name")->str == "service")
                ++service;
            else
                ++wakes;
        } else if (ph->str == "M") {
            ++meta;
        } else if (ph->str == "i") {
            const JsonValue *scope = ev.find("s");
            ASSERT_NE(scope, nullptr);
            EXPECT_EQ(scope->str, "p");
            ++instants;
        } else {
            FAIL() << "unexpected phase '" << ph->str << "'";
        }
    }
    EXPECT_GT(service, 0u);
    EXPECT_GT(wakes, 0u);  // c1c6 sleeps and wakes constantly
    EXPECT_GT(meta, 0u);   // process/thread names
    EXPECT_GT(instants, 0u) << "routing decisions missing";
    EXPECT_EQ(service, r.trace->spans.size());
    EXPECT_EQ(instants, r.trace->routing.size());
}

} // namespace
