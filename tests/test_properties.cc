/**
 * @file
 * Cross-cutting property tests: system invariants that must hold
 * across randomized inputs and the whole configuration space.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "analysis/power_model.hh"
#include "cstate/governor.hh"
#include "server/server_sim.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::sim;
using cstate::CStateId;

// ---------------------------------------------------------------
// Event queue: randomized stress against a reference model.
// ---------------------------------------------------------------

TEST(PropertyEventQueue, RandomScheduleCancelMatchesReference)
{
    Rng rng(2718);
    EventQueue q;
    // Reference: multimap time -> serial, minus cancelled ids.
    std::multimap<Tick, EventId> reference;
    std::map<EventId, Tick> live;
    std::vector<std::pair<Tick, EventId>> fired;

    for (int op = 0; op < 5000; ++op) {
        const double dice = rng.uniform();
        if (dice < 0.55) {
            const Tick when = rng.uniformInt(0, 100000);
            const EventId id = q.schedule(when, [] {});
            reference.emplace(when, id);
            live.emplace(id, when);
        } else if (dice < 0.75 && !live.empty()) {
            // Cancel a random live event.
            auto it = live.begin();
            std::advance(it,
                         rng.uniformInt(0, live.size() - 1));
            q.cancel(it->first);
            auto range = reference.equal_range(it->second);
            for (auto r = range.first; r != range.second; ++r) {
                if (r->second == it->first) {
                    reference.erase(r);
                    break;
                }
            }
            live.erase(it);
        } else if (!q.empty()) {
            const auto popped = q.pop();
            fired.emplace_back(popped.when, popped.id);
            auto range = reference.equal_range(popped.when);
            bool found = false;
            for (auto r = range.first; r != range.second; ++r) {
                if (r->second == popped.id) {
                    reference.erase(r);
                    found = true;
                    break;
                }
            }
            ASSERT_TRUE(found) << "popped unknown event";
            live.erase(popped.id);
        }
    }
    // Drain: every remaining live event must be accounted for in
    // the reference model, in time order.
    Tick prev_drained = 0;
    while (!q.empty()) {
        const auto popped = q.pop();
        EXPECT_GE(popped.when, prev_drained);
        prev_drained = popped.when;
        auto range = reference.equal_range(popped.when);
        bool found = false;
        for (auto r = range.first; r != range.second; ++r) {
            if (r->second == popped.id) {
                reference.erase(r);
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found);
    }
    EXPECT_TRUE(reference.empty());
}

TEST(PropertyEventQueue, DrainIsTimeOrdered)
{
    Rng rng(31415);
    EventQueue q;
    for (int i = 0; i < 2000; ++i)
        q.schedule(rng.uniformInt(0, 1000000), [] {});
    Tick prev = 0;
    while (!q.empty()) {
        const auto popped = q.pop();
        EXPECT_GE(popped.when, prev);
        prev = popped.when;
    }
}

// ---------------------------------------------------------------
// Governor: fuzzing never selects a disabled state.
// ---------------------------------------------------------------

TEST(PropertyGovernor, FuzzOnlySelectsEnabledStates)
{
    Rng rng(99);
    const cstate::CStateConfig configs[] = {
        cstate::CStateConfig::legacyBaseline(),
        cstate::CStateConfig::legacyNoC6(),
        cstate::CStateConfig::legacyNoC6NoC1E(),
        cstate::CStateConfig::aw(),
        cstate::CStateConfig::awNoC6(),
        cstate::CStateConfig::legacyC1C6(),
    };
    for (const auto &config : configs) {
        cstate::MenuGovernor gov(config);
        for (int i = 0; i < 2000; ++i) {
            gov.observeIdle(
                fromUs(rng.boundedPareto(0.1, 100000.0, 1.1)));
            const CStateId chosen = gov.select(0);
            EXPECT_TRUE(config.enabled(chosen) ||
                        chosen == CStateId::C0)
                << cstate::name(chosen) << " not in "
                << config.describe();
        }
    }
}

TEST(PropertyGovernor, DeeperPredictionsNeverPickShallower)
{
    // Monotonicity: a longer predicted idle can only select an
    // equal-or-deeper state.
    const cstate::MenuGovernor gov(
        cstate::CStateConfig::legacyBaseline());
    int prev_depth = -1;
    for (double us = 0.5; us < 100000.0; us *= 1.7) {
        const CStateId chosen = gov.selectFor(fromUs(us));
        const int depth = cstate::descriptor(chosen).depth;
        EXPECT_GE(depth, prev_depth) << "at " << us << "us";
        prev_depth = depth;
    }
}

// ---------------------------------------------------------------
// Energy conservation: with Turbo off and unit power scale, the
// meter must equal the residency-weighted sum exactly.
// ---------------------------------------------------------------

class EnergyIdentity
    : public ::testing::TestWithParam<std::tuple<const char *, double>>
{
};

TEST_P(EnergyIdentity, MeterEqualsResidencyWeightedSum)
{
    const auto [cfg_name, qps] = GetParam();
    server::ServerConfig cfg =
        std::string(cfg_name) == "nt_baseline"
            ? server::ServerConfig::ntBaseline()
            : (std::string(cfg_name) == "nt_aw"
                   ? server::ServerConfig::ntAwNoC6NoC1e()
                   : server::ServerConfig::legacyC1C6());
    server::ServerSim srv(
        cfg, workload::WorkloadProfile::memcached(), qps);
    const auto r = srv.run(fromSec(0.4), fromMs(40.0));

    core::AwCoreModel aw_model;
    const analysis::CStatePowerModel model(
        server::StatePowers::fromModels(aw_model.ppa()));
    const double estimated = model.baselineAvgPower(r.residency);
    EXPECT_NEAR(estimated, r.avgCorePower,
                r.avgCorePower * 0.001)
        << cfg_name << " @ " << qps;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigsAndRates, EnergyIdentity,
    ::testing::Combine(::testing::Values("nt_baseline", "nt_aw",
                                         "c1c6"),
                       ::testing::Values(20e3, 100e3, 300e3)));

// ---------------------------------------------------------------
// Monotonicity of power in load.
// ---------------------------------------------------------------

TEST(PropertyServer, PowerMonotonicInLoad)
{
    const auto profile = workload::WorkloadProfile::memcached();
    double prev = 0.0;
    for (const double qps : {25e3, 100e3, 250e3, 450e3}) {
        server::ServerSim srv(server::ServerConfig::ntBaseline(),
                              profile, qps);
        const auto r = srv.run(fromSec(0.3), fromMs(30.0));
        EXPECT_GT(r.avgCorePower, prev) << "qps=" << qps;
        prev = r.avgCorePower;
    }
}

TEST(PropertyServer, AwNeverIncreasesPower)
{
    // Across workloads and rates, replacing C1-family with
    // C6A-family must never increase average power.
    struct Case
    {
        workload::WorkloadProfile profile;
        double qps;
    };
    const Case cases[] = {
        {workload::WorkloadProfile::memcached(), 50e3},
        {workload::WorkloadProfile::memcached(), 400e3},
        {workload::WorkloadProfile::mysql(), 2700.0},
        {workload::WorkloadProfile::kafka(), 8e3},
    };
    for (const auto &c : cases) {
        server::ServerSim legacy(server::ServerConfig::ntBaseline(),
                                 c.profile, c.qps);
        server::ServerConfig aw_cfg =
            server::ServerConfig::awBaseline();
        aw_cfg.turboEnabled = false;
        server::ServerSim agile(aw_cfg, c.profile, c.qps);
        const auto rl = legacy.run(fromSec(0.4), fromMs(40.0));
        const auto ra = agile.run(fromSec(0.4), fromMs(40.0));
        EXPECT_LT(ra.avgCorePower, rl.avgCorePower)
            << c.profile.name() << " @ " << c.qps;
    }
}

// ---------------------------------------------------------------
// Latency sanity: p99 >= mean >= min service time.
// ---------------------------------------------------------------

TEST(PropertyServer, LatencyOrderingHolds)
{
    for (const double qps : {50e3, 200e3, 450e3}) {
        server::ServerSim srv(
            server::ServerConfig::baseline(),
            workload::WorkloadProfile::memcached(), qps);
        const auto r = srv.run(fromSec(0.3), fromMs(30.0));
        EXPECT_GE(r.p99LatencyUs, r.avgLatencyUs);
        EXPECT_GT(r.avgLatencyUs, 0.0);
        EXPECT_GE(r.avgLatencyE2eUs, r.avgLatencyUs);
    }
}

// ---------------------------------------------------------------
// Residency remap (Eq. 3 path) properties under fuzzing.
// ---------------------------------------------------------------

TEST(PropertyPowerModel, RemapFuzzPreservesInvariants)
{
    Rng rng(4242);
    core::AwCoreModel aw_model;
    const analysis::CStatePowerModel model(
        server::StatePowers::fromModels(aw_model.ppa()));
    for (int i = 0; i < 500; ++i) {
        // Random residency vector over C0/C1/C1E/C6.
        double c0 = rng.uniform(), c1 = rng.uniform();
        double c1e = rng.uniform(), c6 = rng.uniform();
        const double sum = c0 + c1 + c1e + c6;
        cstate::ResidencySnapshot r;
        r.share[cstate::index(CStateId::C0)] = c0 / sum;
        r.share[cstate::index(CStateId::C1)] = c1 / sum;
        r.share[cstate::index(CStateId::C1E)] = c1e / sum;
        r.share[cstate::index(CStateId::C6)] = c6 / sum;
        r.window = fromSec(1.0);

        const double scal = rng.uniform();
        const double trans = rng.uniform(0.0, 1e6);
        const auto m = model.remapForAw(r, scal, trans);

        // Shares stay a distribution.
        EXPECT_NEAR(m.totalShare(), 1.0, 1e-9);
        for (const double s : m.share)
            EXPECT_GE(s, -1e-12);
        // C1 family fully vacated.
        EXPECT_DOUBLE_EQ(m.shareOf(CStateId::C1), 0.0);
        EXPECT_DOUBLE_EQ(m.shareOf(CStateId::C1E), 0.0);
        // C0 never shrinks.
        EXPECT_GE(m.shareOf(CStateId::C0),
                  r.shareOf(CStateId::C0) - 1e-12);
        // Power accounting bound: the remap replaces idle powers
        // by strictly cheaper ones and moves `steal` time into C0;
        // AW power can only exceed baseline by at most the stolen
        // share charged at active power.
        const double steal =
            m.shareOf(CStateId::C0) - r.shareOf(CStateId::C0);
        EXPECT_LE(model.awAvgPower(m),
                  model.baselineAvgPower(r) +
                      steal * model.powers().activeP1 + 1e-9);
        // And with no transition overhead and no scalability
        // penalty, it must be strictly cheaper.
        const auto pure = model.remapForAw(r, 0.0, 0.0);
        EXPECT_LE(model.awAvgPower(pure),
                  model.baselineAvgPower(r) + 1e-12);
    }
}

// ---------------------------------------------------------------
// Interval arithmetic properties.
// ---------------------------------------------------------------

TEST(PropertyInterval, SumsAndProductsStayValid)
{
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const double a = rng.uniform(0.0, 10.0);
        const double b = a + rng.uniform(0.0, 5.0);
        const double c = rng.uniform(0.0, 10.0);
        const double d = c + rng.uniform(0.0, 5.0);
        const power::Interval x(a, b), y(c, d);
        EXPECT_TRUE((x + y).valid());
        EXPECT_TRUE((x * y).valid());
        EXPECT_TRUE((x * rng.uniform(-3.0, 3.0)).valid());
        EXPECT_TRUE((x + y).contains(x.mid() + y.mid()));
    }
}

} // namespace
