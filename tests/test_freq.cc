/**
 * @file
 * Unit tests for the DVFS governance subsystem: the P-state ladder,
 * the frequency-governor registry, PM-QoS latency SLOs, and the
 * end-to-end identities the policies must satisfy inside ServerSim.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cstate/config.hh"
#include "cstate/cstate.hh"
#include "freq/freq_policy.hh"
#include "freq/policies.hh"
#include "freq/qos.hh"
#include "server/config.hh"
#include "server/pstate.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"
#include "workload/service.hh"

namespace {

using namespace aw;
using namespace aw::freq;
using namespace aw::sim;

// ------------------------------------------------------- the ladder

TEST(PStateLadder, SpansPnToBaseWithAnchoredPowers)
{
    const PStateLadder ladder(server::PStateTable::xeonSilver4114());
    ASSERT_EQ(ladder.count(), PStateLadder::kMaxLevels);
    // Level 0 = Pn, top = P1, frequencies strictly increasing.
    EXPECT_DOUBLE_EQ(ladder.frequency(0).gigahertz(), 0.8);
    EXPECT_DOUBLE_EQ(ladder.frequency(ladder.top()).gigahertz(), 2.2);
    for (std::size_t i = 1; i < ladder.count(); ++i) {
        EXPECT_GT(ladder.frequency(i).hz(),
                  ladder.frequency(i - 1).hz());
        EXPECT_GT(ladder.activePower(i), ladder.activePower(i - 1));
    }
    // The cubic fit is anchored on the Table 1 points, so the legacy
    // static operating points are reproduced bit for bit.
    EXPECT_DOUBLE_EQ(ladder.activePower(ladder.top()),
                     cstate::kC0PowerP1);
    EXPECT_DOUBLE_EQ(ladder.activePower(0), cstate::kC0PowerPn);
}

TEST(PStateLadder, DegenerateTableCollapsesToOneLevel)
{
    server::PStateTable table;
    table.minimum = table.base;
    const PStateLadder ladder(table);
    EXPECT_EQ(ladder.count(), 1u);
    EXPECT_EQ(ladder.top(), 0u);
    EXPECT_DOUBLE_EQ(ladder.frequency(0).hz(), table.base.hz());
    EXPECT_DOUBLE_EQ(ladder.activePower(0), cstate::kC0PowerP1);
}

TEST(PStateLadder, LevelAtOrAboveIsExactOnLadderPoints)
{
    const PStateLadder ladder(server::PStateTable::xeonSilver4114());
    // Asking for a level's own frequency returns that level, even
    // though the evenly spaced points are not exactly representable.
    for (std::size_t i = 0; i < ladder.count(); ++i)
        EXPECT_EQ(ladder.levelAtOrAbove(ladder.frequency(i)), i);
    // Below the bottom -> bottom; above the top -> top (best effort).
    EXPECT_EQ(ladder.levelAtOrAbove(Frequency::ghz(0.1)), 0u);
    EXPECT_EQ(ladder.levelAtOrAbove(Frequency::ghz(9.9)),
              ladder.top());
}

// ----------------------------------------- PStateTable validation

using PStateTableDeathTest = ::testing::Test;

TEST(PStateTableDeathTest, RejectsNonPositivePoints)
{
    server::PStateTable table;
    table.minimum = Frequency::ghz(0.0);
    EXPECT_DEATH(table.validate(), "positive");
}

TEST(PStateTableDeathTest, RejectsPnAboveP1)
{
    server::PStateTable table;
    table.minimum = Frequency::ghz(2.5);
    EXPECT_DEATH(table.validate(), "Pn .* must not exceed");
}

TEST(PStateTableDeathTest, RejectsP1AboveTurbo)
{
    server::PStateTable table;
    table.base = Frequency::ghz(3.5);
    EXPECT_DEATH(table.validate(), "P1 .* must not exceed");
}

// ----------------------------------------------------- the registry

TEST(FreqRegistry, RoundTripsEveryBuiltInKind)
{
    const PStateLadder ladder(server::PStateTable::xeonSilver4114());
    const auto &kinds = freqPolicyKinds();
    ASSERT_EQ(kinds.size(), 5u);
    for (const auto &kind : kinds) {
        const auto policy = makeFreqPolicy(kind, ladder);
        ASSERT_NE(policy, nullptr) << kind;
        // spec() rebuilds the policy through the registry.
        EXPECT_EQ(policy->spec(), kind);
        const auto again = makeFreqPolicy(policy->spec(), ladder);
        EXPECT_EQ(again->spec(), kind);
        // Every kind carries a registry summary for --help text.
        EXPECT_FALSE(
            FreqRegistry::instance().summary(kind).empty())
            << kind;
    }
}

TEST(FreqRegistry, KnownKindsInRegistrationOrder)
{
    const auto &kinds = freqPolicyKinds();
    const std::vector<std::string> expect = {
        "performance", "powersave", "ondemand", "conservative",
        "racetohalt"};
    EXPECT_EQ(kinds, expect);
}

using FreqRegistryDeathTest = ::testing::Test;

TEST(FreqRegistryDeathTest, UnknownKindDiesWithTheKindList)
{
    const PStateLadder ladder(server::PStateTable::xeonSilver4114());
    EXPECT_DEATH(makeFreqPolicy("warpspeed", ladder),
                 "unknown frequency governor 'warpspeed'");
    EXPECT_DEATH(makeFreqPolicy("warpspeed", ladder), "racetohalt");
    EXPECT_DEATH(makeFreqPolicy("", ladder), "empty");
}

// --------------------------------------------- per-core clone state

TEST(FreqPolicy, ClonesCarryIndependentState)
{
    // conservative is the stateful built-in: it walks one ladder
    // step per sample. Stepping the prototype must not move the
    // clone -- ServerSim clones one prototype per core and each
    // core's walk is its own.
    const PStateLadder ladder(server::PStateTable::xeonSilver4114());
    const auto proto = makeFreqPolicy("conservative", ladder);
    const auto clone = proto->clone();
    // Both start at the top.
    EXPECT_EQ(proto->select(0, 0.5), ladder.top());
    EXPECT_EQ(clone->select(0, 0.5), ladder.top());
    // Walk the prototype three steps down (idle windows).
    const auto period = ConservativePolicy::kSamplePeriod;
    for (int i = 1; i <= 3; ++i)
        EXPECT_EQ(proto->select(i * period, 0.0), ladder.top() - i);
    // The clone has not moved.
    EXPECT_EQ(clone->select(4 * period, 0.5), ladder.top());
    // reset() rewinds the walk.
    proto->reset();
    EXPECT_EQ(proto->select(5 * period, 0.5), ladder.top());
}

TEST(FreqPolicy, RaceToHaltFollowsBusyEdges)
{
    const PStateLadder ladder(server::PStateTable::xeonSilver4114());
    const auto policy = makeFreqPolicy("racetohalt", ladder);
    EXPECT_EQ(policy->evalInterval(), 0) << "must add no events";
    EXPECT_EQ(policy->observe(0, /*busy=*/true, 0), ladder.top());
    EXPECT_EQ(policy->observe(0, /*busy=*/false, ladder.top()), 0u);
}

// ------------------------------------------------- PM-QoS latencies

TEST(LatencyQoS, InactiveSloLeavesStatesUntouched)
{
    const LatencyQoS qos; // sloUs = 0 -> unconstrained
    EXPECT_FALSE(qos.active());
    const auto in = cstate::CStateConfig::legacyBaseline();
    const auto out = qos.admissibleStates(in);
    EXPECT_EQ(out.enabledStates(), in.enabledStates());
}

TEST(LatencyQoS, GenerousSloAdmitsEverything)
{
    const LatencyQoS qos{/*sloUs=*/100000.0};
    const auto in = cstate::CStateConfig::legacyBaseline();
    EXPECT_EQ(qos.admissibleStates(in).enabledStates(),
              in.enabledStates());
}

TEST(LatencyQoS, TightSloForcesPolling)
{
    // cpu_dma_latency = 0 semantics: a wake budget below every
    // state's transition cost leaves nothing enabled, and the idle
    // governor then polls in C0.
    const LatencyQoS qos{/*sloUs=*/1.0};
    const auto out =
        qos.admissibleStates(cstate::CStateConfig::legacyC1C6());
    EXPECT_FALSE(out.anyEnabled());
}

TEST(LatencyQoS, AdmissionIsAMonotoneFilter)
{
    // Tightening the SLO only ever removes states, and every
    // admitted state fits the wake budget.
    const auto in = cstate::CStateConfig::legacyBaseline();
    for (const double slo : {2.0, 10.0, 40.0, 200.0, 5000.0}) {
        const LatencyQoS qos{slo};
        const auto out = qos.admissibleStates(in);
        const auto budget =
            sim::fromUs(slo * LatencyQoS::kWakeShare);
        for (const auto id : out.enabledStates()) {
            EXPECT_TRUE(in.enabled(id));
            EXPECT_LE(cstate::descriptor(id).transitionTime, budget);
        }
        for (const auto id : in.enabledStates())
            if (cstate::descriptor(id).transitionTime <= budget)
                EXPECT_TRUE(out.enabled(id));
    }
}

TEST(LatencyQoS, FrequencyFloorScalesWithComputeShare)
{
    const PStateLadder ladder(server::PStateTable::xeonSilver4114());
    // 2 us fully compute-bound mean at the 2.2 GHz reference.
    const workload::FixedService compute(sim::fromUs(2.0), 1.0);
    // Service budget = 0.5 * SLO. SLO 4 us -> budget 2 us: only the
    // full 2.2 GHz fits, the floor is the top.
    EXPECT_EQ(LatencyQoS{4.0}.frequencyFloor(ladder, compute),
              ladder.top());
    // SLO 12 us -> budget 6 us: 2 us * 2.2/0.8 = 5.5 us fits even
    // at Pn, the floor is the bottom.
    EXPECT_EQ(LatencyQoS{12.0}.frequencyFloor(ladder, compute), 0u);
    // An SLO even P1 cannot meet demands best effort: the top.
    EXPECT_EQ(LatencyQoS{1.0}.frequencyFloor(ladder, compute),
              ladder.top());
    // A memory-bound request does not speed up with frequency, so a
    // feasible SLO floors nothing.
    const workload::FixedService memory(sim::fromUs(2.0), 0.0);
    EXPECT_EQ(LatencyQoS{12.0}.frequencyFloor(ladder, memory), 0u);
    EXPECT_EQ(LatencyQoS{1.0}.frequencyFloor(ladder, memory),
              ladder.top());
}

// ------------------------------------- end-to-end ServerSim pinning

server::RunResult
runServer(server::ServerConfig cfg, double qps = 200e3)
{
    server::ServerSim srv(std::move(cfg),
                          workload::WorkloadProfile::memcached(),
                          qps);
    return srv.run(sim::fromSec(0.3), sim::fromSec(0.03));
}

void
expectIdenticalRuns(const server::RunResult &a,
                    const server::RunResult &b)
{
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.avgLatencyUs, b.avgLatencyUs);
    EXPECT_DOUBLE_EQ(a.p99LatencyUs, b.p99LatencyUs);
    EXPECT_DOUBLE_EQ(a.packagePower, b.packagePower);
    EXPECT_DOUBLE_EQ(a.coreEnergy, b.coreEnergy);
    EXPECT_DOUBLE_EQ(a.residency.totalShare(),
                     b.residency.totalShare());
}

TEST(FreqEndToEnd, PerformanceGovernorIsTheLegacyStaticPath)
{
    // `performance` pins P1, which is exactly what the static path
    // runs at: the dynamic machinery must be invisible, not merely
    // close.
    auto base = server::ServerConfig::legacyC1C6();
    auto perf = base;
    perf.freqPolicy = "performance";
    const auto a = runServer(base);
    const auto b = runServer(perf);
    expectIdenticalRuns(a, b);
    EXPECT_EQ(b.freqTransitions, 0u);
    EXPECT_DOUBLE_EQ(b.freqTransitionEnergyJ, 0.0);
}

TEST(FreqEndToEnd, PowersaveGovernorIsRunAtPn)
{
    // `powersave` pins Pn; the pre-existing --pn static path is the
    // same operating point, so the results must coincide exactly.
    auto pn = server::ServerConfig::legacyC1C6();
    pn.runAtPn = true;
    auto save = server::ServerConfig::legacyC1C6();
    save.freqPolicy = "powersave";
    expectIdenticalRuns(runServer(pn), runServer(save));
}

TEST(FreqEndToEnd, RampEnergyConservation)
{
    // Every completed ramp charges exactly kRampEnergy; the windowed
    // energy counter must be the windowed ramp count times that
    // constant -- nothing lost, nothing double-billed.
    auto cfg = server::ServerConfig::legacyC1C6();
    cfg.freqPolicy = "racetohalt";
    const auto r = runServer(cfg);
    EXPECT_GT(r.freqTransitions, 0u);
    // Summed one ramp at a time, so allow accumulation rounding --
    // well under one ramp's worth of energy.
    EXPECT_NEAR(r.freqTransitionEnergyJ,
                static_cast<double>(r.freqTransitions) * kRampEnergy,
                1e-9);
    // The relock energy is real power: it is part of coreEnergy.
    EXPECT_LT(r.freqTransitionEnergyJ, r.coreEnergy);
}

TEST(FreqEndToEnd, OndemandSavesPowerAtPartialLoad)
{
    // At mid load ondemand runs below P1 most of the time: less
    // power than the static base, at some latency cost.
    auto base = server::ServerConfig::legacyC1C6();
    auto od = base;
    od.freqPolicy = "ondemand";
    const auto a = runServer(base);
    const auto b = runServer(od);
    EXPECT_LT(b.packagePower, a.packagePower);
    EXPECT_GT(b.p99LatencyUs, a.p99LatencyUs);
    EXPECT_GT(b.freqTransitions, 0u);
}

TEST(FreqEndToEnd, SloFloorLiftsPnBackToBase)
{
    // PM-QoS end to end on the static path: a service-budget floor
    // above Pn clears --pn, so the SLO-constrained run is exactly
    // the base-frequency run.
    auto base = server::ServerConfig::legacyC1C6();
    auto pn_slo = base;
    pn_slo.runAtPn = true;
    pn_slo.sloUs = 8.0;
    expectIdenticalRuns(runServer(base, 100e3),
                        runServer(pn_slo, 100e3));
}

TEST(FreqEndToEnd, SloFloorClampsTheDynamicPath)
{
    // And on the dynamic path: the same SLO clamps `powersave` to
    // the floor, reproducing the base run through the freq machinery.
    auto base = server::ServerConfig::legacyC1C6();
    auto save_slo = base;
    save_slo.freqPolicy = "powersave";
    save_slo.sloUs = 8.0;
    expectIdenticalRuns(runServer(base, 100e3),
                        runServer(save_slo, 100e3));
}

TEST(FreqEndToEnd, TightSloForcesPollingPower)
{
    // An SLO below every wake cost disables all idle states: ten
    // cores polling at C0 burn the full active power around the
    // clock. (10 x 4 W cores + uncore, so well above the idle-
    // governed base run.)
    auto cfg = server::ServerConfig::legacyC1C6();
    cfg.sloUs = 5.0;
    const auto r = runServer(cfg, 100e3);
    const auto base = runServer(server::ServerConfig::legacyC1C6(),
                                100e3);
    EXPECT_GT(r.packagePower, base.packagePower + 10.0);
    EXPECT_DOUBLE_EQ(r.residency.shareOf(cstate::CStateId::C1), 0.0);
    EXPECT_DOUBLE_EQ(r.residency.shareOf(cstate::CStateId::C6), 0.0);
}

} // namespace
