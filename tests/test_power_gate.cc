/**
 * @file
 * Unit tests for power gates and staggered wake-up plans.
 */

#include <gtest/gtest.h>

#include "power/power_gate.hh"
#include "sim/types.hh"

namespace {

using namespace aw::power;
using aw::sim::Tick;
using aw::sim::kTicksPerNs;

TEST(PowerGate, ResidualLeakageIsThreeToFivePercent)
{
    const PowerGate gate(1.0, 10.0);
    const auto r = gate.residualLeakage();
    EXPECT_NEAR(r.lo, 0.03, 1e-12);
    EXPECT_NEAR(r.hi, 0.05, 1e-12);
}

TEST(PowerGate, ResidualScalesWithGatedLeakage)
{
    const PowerGate gate(2.0, 10.0);
    const auto r = gate.residualLeakage();
    EXPECT_NEAR(r.lo, 0.06, 1e-12);
    EXPECT_NEAR(r.hi, 0.10, 1e-12);
}

TEST(PowerGate, AreaOverheadRange)
{
    const PowerGate gate(1.0, 100.0);
    const auto a = gate.areaOverhead();
    EXPECT_DOUBLE_EQ(a.lo, 2.0);
    EXPECT_DOUBLE_EQ(a.hi, 6.0);
}

TEST(StaggeredWakeup, EqualSplitTotalsAndCount)
{
    const auto plan = StaggeredWakeupPlan::equalSplit(4.5, 5);
    EXPECT_EQ(plan.zoneCount(), 5u);
    EXPECT_NEAR(plan.totalAreaRel(), 4.5, 1e-12);
    // Each zone ramps over the full reference interval.
    EXPECT_EQ(plan.totalWakeTime(),
              5 * StaggeredWakeupPlan::kReferenceStagger);
}

TEST(StaggeredWakeup, EqualSplitWithSmallZonesIsWithinLimit)
{
    // 4.5x area over 5 zones = 0.9x per zone over 15 ns -> slower
    // ramp rate than the reference. Feasible.
    const auto plan = StaggeredWakeupPlan::equalSplit(4.5, 5);
    EXPECT_LE(plan.peakInrushRelToReference(), 1.0 + 1e-9);
    EXPECT_TRUE(plan.inrushWithinLimit());
}

TEST(StaggeredWakeup, TooFewZonesViolatesInrush)
{
    // 4.5x the reference area in one zone over one reference
    // interval: 4.5x the in-rush.
    const auto plan = StaggeredWakeupPlan::equalSplit(4.5, 1);
    EXPECT_NEAR(plan.peakInrushRelToReference(), 4.5, 1e-9);
    EXPECT_FALSE(plan.inrushWithinLimit());
}

TEST(StaggeredWakeup, ProportionalPlanMatchesPaperMath)
{
    // The paper's Sec 5.3 plan: 4.5x AVX area in 5 zones, each
    // ramped proportionally -> ~67.5 ns total.
    const auto plan = StaggeredWakeupPlan::proportional(4.5, 5);
    EXPECT_EQ(plan.zoneCount(), 5u);
    const double ns = aw::sim::toNs(plan.totalWakeTime());
    EXPECT_NEAR(ns, 67.5, 0.1);
    EXPECT_TRUE(plan.inrushWithinLimit());
    EXPECT_LT(plan.totalWakeTime(), 70 * kTicksPerNs);
}

/** Property: proportional plans never violate in-rush, regardless
 *  of zone count or domain size. */
class ProportionalInrush
    : public ::testing::TestWithParam<std::tuple<double, int>>
{
};

TEST_P(ProportionalInrush, AlwaysWithinLimit)
{
    const double area = std::get<0>(GetParam());
    const int zones = std::get<1>(GetParam());
    const auto plan = StaggeredWakeupPlan::proportional(area, zones);
    EXPECT_TRUE(plan.inrushWithinLimit())
        << "area=" << area << " zones=" << zones << " peak="
        << plan.peakInrushRelToReference();
    // Total wake time ~ area * reference regardless of zone count.
    EXPECT_NEAR(aw::sim::toNs(plan.totalWakeTime()), area * 15.0,
                0.1 * zones);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProportionalInrush,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 4.5, 10.0),
                       ::testing::Values(1, 2, 5, 8, 10)));

TEST(StaggeredWakeup, ZeroRampNonzeroAreaIsInfeasible)
{
    StaggeredWakeupPlan plan;
    plan.addZone(WakeZone{"z", 1.0, 0});
    EXPECT_FALSE(plan.inrushWithinLimit());
}

TEST(StaggeredWakeupDeathTest, BadArguments)
{
    EXPECT_DEATH(StaggeredWakeupPlan::equalSplit(4.5, 0), "zone");
    EXPECT_DEATH(StaggeredWakeupPlan::proportional(-1.0, 5), "area");
}

TEST(StaggeredWakeup, ZoneAccessors)
{
    const auto plan = StaggeredWakeupPlan::proportional(5.0, 5);
    for (std::size_t i = 0; i < plan.zoneCount(); ++i) {
        EXPECT_NEAR(plan.zone(i).areaRelToReference, 1.0, 1e-12);
        EXPECT_EQ(plan.zone(i).staggerTime,
                  StaggeredWakeupPlan::kReferenceStagger);
    }
}

} // namespace
