/**
 * @file
 * Unit tests for the CCSM subsystem (cache sleep mode + snoop
 * power deltas).
 */

#include <gtest/gtest.h>

#include "core/ccsm.hh"
#include "uarch/cache.hh"

namespace {

using namespace aw;
using namespace aw::core;
using aw::power::asMilliwatts;

class CcsmTest : public ::testing::Test
{
  protected:
    CcsmTest()
        : caches(uarch::PrivateCaches::skylakeServer()),
          ccsm(Ccsm::skylakeServer(caches))
    {
    }

    uarch::PrivateCaches caches;
    Ccsm ccsm;
};

TEST_F(CcsmTest, ArrayPowerMatchesTable3)
{
    EXPECT_NEAR(asMilliwatts(ccsm.arrayPowerP1()), 55.0, 0.1);
    EXPECT_NEAR(asMilliwatts(ccsm.arrayPowerPn()), 40.0, 0.1);
}

TEST_F(CcsmTest, RestPowerMatchesTable3)
{
    EXPECT_NEAR(asMilliwatts(ccsm.restPowerP1()), 55.0, 0.1);
    EXPECT_NEAR(asMilliwatts(ccsm.restPowerPn()), 33.0, 0.1);
}

TEST_F(CcsmTest, TotalsAreSums)
{
    EXPECT_NEAR(asMilliwatts(ccsm.totalPowerP1()), 110.0, 0.1);
    EXPECT_NEAR(asMilliwatts(ccsm.totalPowerPn()), 73.0, 0.1);
}

TEST_F(CcsmTest, PnTotalsAreLower)
{
    // The sleep transistor's LVR efficiency rises at Pn voltage.
    EXPECT_LT(ccsm.totalPowerPn(), ccsm.totalPowerP1());
}

TEST_F(CcsmTest, SleepAreaOverheadOfCore)
{
    // 2-6% of the data array (90% of the ~30% cache area).
    const auto a = ccsm.sleepAreaOverheadOfCore(0.30);
    EXPECT_NEAR(a.lo, 0.02 * 0.27, 1e-9);
    EXPECT_NEAR(a.hi, 0.06 * 0.27, 1e-9);
}

TEST_F(CcsmTest, SnoopDeltas)
{
    // Sec 7.5: baseline C1 snoop service ~+50 mW; C6A ~+120 mW.
    EXPECT_NEAR(asMilliwatts(Ccsm::kSnoopServiceDeltaC1), 50.0,
                1e-9);
    EXPECT_NEAR(asMilliwatts(Ccsm::kSnoopServiceDeltaC6a), 120.0,
                1e-9);
}

TEST_F(CcsmTest, TransitionCycleCounts)
{
    EXPECT_EQ(Ccsm::kSleepEntryCycles, 3u);
    EXPECT_EQ(Ccsm::kSleepExitCycles, 2u);
}

TEST_F(CcsmTest, DataArrayFraction)
{
    EXPECT_DOUBLE_EQ(Ccsm::kDataArrayAreaFraction, 0.90);
}

TEST_F(CcsmTest, ArraysModelIsTheSkylakeInstance)
{
    EXPECT_NEAR(ccsm.arrays().capacityBytes(), 1.1 * 1024 * 1024,
                1.0);
}

TEST(CcsmCustom, CustomPowers)
{
    const auto caches = uarch::PrivateCaches::skylakeServer();
    const Ccsm custom(caches,
                      aw::power::SramSleepMode(512 * 1024,
                                               0.030, 0.020),
                      0.010, 0.008);
    EXPECT_NEAR(asMilliwatts(custom.totalPowerP1()), 40.0, 1e-9);
    EXPECT_NEAR(asMilliwatts(custom.totalPowerPn()), 28.0, 1e-9);
}

} // namespace
