/**
 * @file
 * Unit tests for the core context and its two preservation paths.
 */

#include <gtest/gtest.h>

#include "power/srpg.hh"
#include "uarch/context.hh"

namespace {

using namespace aw::uarch;
using namespace aw::power;
using namespace aw::sim;

TEST(ContextLayout, SkylakeIsEightKb)
{
    const auto layout = ContextLayout::skylake();
    EXPECT_DOUBLE_EQ(layout.totalBytes(), 8.0 * 1024);
    EXPECT_DOUBLE_EQ(layout.microcodeSramBytes, 2.0 * 1024);
}

TEST(ContextRetention, PaperPowerNumbers)
{
    const ContextRetention ret;
    EXPECT_NEAR(asMilliwatts(ret.powerAtRetentionVoltage()), 0.2,
                1e-9);
    EXPECT_NEAR(asMilliwatts(ret.powerAtP1()), 2.0, 1e-9);
    EXPECT_NEAR(asMilliwatts(ret.powerAtPn()), 1.0, 1e-9);
}

TEST(ContextRetention, PowerScalesWithSize)
{
    const ContextRetention big(16 * 1024.0);
    EXPECT_NEAR(asMilliwatts(big.powerAtP1()), 4.0, 1e-9);
}

TEST(ContextRetention, CycleCounts)
{
    EXPECT_EQ(ContextRetention::kSaveCycles, 4u);
    EXPECT_EQ(ContextRetention::kRestoreCycles, 1u);
}

TEST(ExternalSaveRestore, PaperAnchorNineMicroseconds)
{
    // ~8 KB at 800 MHz takes ~9 us each way (Sec 3).
    const ExternalSaveRestore sr;
    const Tick t = sr.transferTime(Frequency::mhz(800.0));
    EXPECT_NEAR(toUs(t), 9.0, 0.05);
}

TEST(ExternalSaveRestore, ScalesWithFrequency)
{
    const ExternalSaveRestore sr;
    const Tick slow = sr.transferTime(Frequency::mhz(800.0));
    const Tick fast = sr.transferTime(Frequency::ghz(2.2));
    EXPECT_NEAR(toUs(fast), toUs(slow) * 800.0 / 2200.0, 0.05);
}

TEST(ExternalSaveRestore, ScalesWithContextSize)
{
    const ExternalSaveRestore small(4 * 1024.0);
    const ExternalSaveRestore large(16 * 1024.0);
    const auto freq = Frequency::mhz(800.0);
    EXPECT_NEAR(toUs(large.transferTime(freq)),
                4.0 * toUs(small.transferTime(freq)), 0.05);
}

TEST(CoreContext, WiresBothPaths)
{
    const CoreContext ctx;
    EXPECT_DOUBLE_EQ(ctx.inPlace().contextBytes(), 8.0 * 1024);
    EXPECT_DOUBLE_EQ(ctx.external().contextBytes(), 8.0 * 1024);
}

TEST(CoreContext, MicrocodeReinitIsMicroseconds)
{
    // Part of the ~20 us C6 state+microcode restore at 800 MHz.
    const CoreContext ctx;
    const double us =
        toUs(ctx.microcodeReinitTime(Frequency::mhz(800.0)));
    EXPECT_GT(us, 5.0);
    EXPECT_LT(us, 15.0);
}

TEST(CoreContext, C6RestorePathSumsToTwentyMicroseconds)
{
    // external restore + microcode reinit ~ 20 us at 800 MHz.
    const CoreContext ctx;
    const auto freq = Frequency::mhz(800.0);
    const double total =
        toUs(ctx.externalTransferTime(freq)) +
        toUs(ctx.microcodeReinitTime(freq));
    EXPECT_NEAR(total, 20.0, 3.0);
}

TEST(ContextRetention, AreaOverheadIsSubPercent)
{
    EXPECT_LE(ContextRetention::kAreaOverhead.hi, 0.01);
}

} // namespace
