/**
 * @file
 * Unit and integration tests for the state-transition analyzer:
 * per-pair accounting, lifetime histograms, the conservation
 * invariants (pair counts, lifetimes + tails == window) and the
 * governor observeIdle ground-truth cross-check over real
 * ServerSim runs.
 */

#include <gtest/gtest.h>

#include <bit>

#include "analysis/sampler.hh"
#include "analysis/transitions.hh"
#include "cstate/residency.hh"
#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::analysis;
using cstate::CStateId;

// ------------------------------------------------------- unit tests

TEST(TransitionAnalyzer, PairAccountingAndTails)
{
    TransitionAnalyzer a;
    a.reset(0, CStateId::C0);

    a.enter(CStateId::C1, 100);  // C0 lived [0, 100)
    a.enter(CStateId::C0, 250);  // C1 lived [100, 250)
    a.finish(1000);              // C0 tail [250, 1000)

    EXPECT_EQ(a.pair(CStateId::C0, CStateId::C1).count, 1u);
    EXPECT_EQ(a.pair(CStateId::C0, CStateId::C1).totalLifetime,
              100u);
    EXPECT_EQ(a.pair(CStateId::C1, CStateId::C0).count, 1u);
    EXPECT_EQ(a.pair(CStateId::C1, CStateId::C0).totalLifetime,
              150u);
    EXPECT_EQ(a.pair(CStateId::C1, CStateId::C0).maxLifetime, 150u);
    EXPECT_EQ(a.pair(CStateId::C0, CStateId::C6).count, 0u);

    EXPECT_EQ(a.totalTransitions(), 2u);
    EXPECT_EQ(a.tail(CStateId::C0), 750u);
    EXPECT_EQ(a.tail(CStateId::C1), 0u);

    // Conservation: completed lifetimes + censored tails == window.
    EXPECT_EQ(a.totalLifetime(), 1000u);
    EXPECT_EQ(a.timeIn(CStateId::C0), 100u + 750u);
    EXPECT_EQ(a.timeIn(CStateId::C1), 150u);
}

TEST(TransitionAnalyzer, SelfEnterIsNotATransition)
{
    TransitionAnalyzer a;
    a.reset(0, CStateId::C0);
    a.enter(CStateId::C0, 100); // residency-style re-entry: merges
    EXPECT_EQ(a.totalTransitions(), 0u);
    EXPECT_EQ(a.current(), CStateId::C0);

    // The open lifetime kept running through the re-entry.
    a.enter(CStateId::C6A, 300);
    EXPECT_EQ(a.pair(CStateId::C0, CStateId::C6A).totalLifetime,
              300u);
}

TEST(TransitionAnalyzer, FinishIsIdempotent)
{
    TransitionAnalyzer a;
    a.reset(0, CStateId::C1);
    a.finish(500);
    a.finish(500);
    EXPECT_EQ(a.tail(CStateId::C1), 500u);
    EXPECT_EQ(a.totalLifetime(), 500u);
}

TEST(TransitionStats, HistogramBucketsAreBitWidth)
{
    TransitionStats s;
    s.observe(0); // bucket 0: zero-length
    s.observe(1); // bucket 1: [1, 2)
    s.observe(2); // bucket 2: [2, 4)
    s.observe(3);
    s.observe(4); // bucket 3: [4, 8)
    s.observe(1024); // bucket 11

    EXPECT_EQ(s.histogram[0], 1u);
    EXPECT_EQ(s.histogram[1], 1u);
    EXPECT_EQ(s.histogram[2], 2u);
    EXPECT_EQ(s.histogram[3], 1u);
    EXPECT_EQ(s.histogram[std::bit_width(1024u)], 1u);
    EXPECT_EQ(s.count, 6u);
    EXPECT_EQ(s.maxLifetime, 1024u);
    EXPECT_DOUBLE_EQ(s.meanLifetimeUs(),
                     sim::toUs(1034) / 6.0);
}

TEST(TransitionStats, ExtremeLifetimesClampToLastBucket)
{
    TransitionStats s;
    s.observe(sim::kMaxTick - 1);
    EXPECT_EQ(s.histogram[kLifetimeBuckets - 1], 1u);
}

TEST(TransitionAnalyzer, MergeFoldsPairsAndTails)
{
    TransitionAnalyzer a, b;
    a.reset(0, CStateId::C0);
    a.enter(CStateId::C1, 100);
    a.finish(300);

    b.reset(0, CStateId::C0);
    b.enter(CStateId::C1, 50);
    b.enter(CStateId::C0, 75);
    b.finish(300);

    TransitionAnalyzer sum;
    sum.merge(a);
    sum.merge(b);
    EXPECT_EQ(sum.pair(CStateId::C0, CStateId::C1).count, 2u);
    EXPECT_EQ(sum.pair(CStateId::C0, CStateId::C1).totalLifetime,
              150u);
    EXPECT_EQ(sum.totalTransitions(), 3u);
    EXPECT_EQ(sum.totalLifetime(), 600u);
}

TEST(TransitionAnalyzerDeathTest, EnterAfterFinishPanics)
{
    TransitionAnalyzer a;
    a.reset(0, CStateId::C0);
    a.finish(100);
    EXPECT_DEATH(a.enter(CStateId::C1, 200), "finish");
}

TEST(TransitionAnalyzerDeathTest, TimeBackwardsPanics)
{
    TransitionAnalyzer a;
    a.reset(100, CStateId::C0);
    EXPECT_DEATH(a.enter(CStateId::C1, 50), "backwards");
}

TEST(TransitionAnalyzer, MirrorsResidencyCounters)
{
    // Drive both accounting schemes with the same state stream and
    // compare timeIn exactly (the header's documented invariant).
    const CStateId stream[] = {CStateId::C1, CStateId::C6A,
                               CStateId::C0, CStateId::C1,
                               CStateId::C0};
    TransitionAnalyzer a;
    cstate::ResidencyCounters rc(0, CStateId::C0);
    a.reset(0, CStateId::C0);
    sim::Tick now = 0;
    sim::Tick step = 7;
    for (const CStateId s : stream) {
        now += step;
        step = step * 3 + 1; // irregular gaps
        a.enter(s, now);
        rc.recordEnter(s, now);
    }
    const sim::Tick end = now + 1000;
    a.finish(end);
    for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
        const auto id = static_cast<CStateId>(i);
        EXPECT_EQ(a.timeIn(id), rc.timeIn(id, end)) << i;
    }
    EXPECT_EQ(a.totalLifetime(), end);
}

// ----------------------------------------------- integration (sim)

TEST(TransitionIntegration, ConservationOverRealRun)
{
    auto cfg = server::ServerConfig::awBaseline();
    cfg.cores = 4;
    cfg.seed = 7;
    server::ServerSim srv(cfg, workload::WorkloadProfile::memcached(),
                          80e3);
    TimelineConfig tc;
    tc.intervalSeconds = 0.01;
    TimelineRecorder rec(tc, cfg.cores);
    srv.setObserver(&rec);
    const auto r = srv.run(sim::fromSec(0.2), sim::fromSec(0.02));

    const TimelineSeries &series = rec.series();

    // Per core: every tick of the measured window is attributed to
    // exactly one lifetime (completed or censored).
    for (unsigned c = 0; c < cfg.cores; ++c) {
        const TransitionAnalyzer &a = rec.coreTransitions(c);
        EXPECT_EQ(a.totalLifetime(), r.window) << "core " << c;

        std::uint64_t pair_counts = 0;
        for (std::size_t f = 0; f < cstate::kNumCStates; ++f)
            for (std::size_t t = 0; t < cstate::kNumCStates; ++t)
                pair_counts +=
                    a.pair(static_cast<CStateId>(f),
                           static_cast<CStateId>(t))
                        .count;
        EXPECT_EQ(pair_counts, a.totalTransitions()) << "core " << c;
    }

    // Folded across cores the analyzer must reproduce the run's
    // aggregate residency shares.
    ASSERT_GT(series.transitions.totalTransitions(), 0u);
    const double total_core_time =
        static_cast<double>(r.window) * cfg.cores;
    for (std::size_t i = 0; i < cstate::kNumCStates; ++i) {
        const auto id = static_cast<CStateId>(i);
        const double share =
            static_cast<double>(series.transitions.timeIn(id)) /
            total_core_time;
        EXPECT_NEAR(share, r.residency.share[i], 1e-9) << i;
    }

    // The paper's lifetime argument needs deep-state entries with
    // real dwell time; make sure the map isn't degenerate.
    EXPECT_GT(series.transitions.pair(CStateId::C0, CStateId::C6A)
                      .count +
                  series.transitions
                      .pair(CStateId::C0, CStateId::C6AE)
                      .count,
              0u);
}

TEST(TransitionIntegration, GovernorObserveIdleMatchesGroundTruth)
{
    // Satellite check: every observeIdle() the governor receives
    // must equal the recorder's own idle-period bookkeeping --
    // including promotion re-entries (idle start preserved) and
    // mispredicted entries (observation at the arrival, not the
    // scheduled wake). Cover both the plain and the
    // promotion-enabled paths.
    for (const bool promotion : {false, true}) {
        auto cfg = server::ServerConfig::awBaseline();
        cfg.cores = 4;
        cfg.seed = 11;
        cfg.idlePromotion = promotion;
        server::ServerSim srv(cfg,
                              workload::WorkloadProfile::memcached(),
                              60e3);
        TimelineConfig tc;
        tc.intervalSeconds = 0.05;
        TimelineRecorder rec(tc, cfg.cores);
        srv.setObserver(&rec);
        const auto r = srv.run(sim::fromSec(0.3), sim::fromSec(0.03));

        const TimelineSeries &series = rec.series();
        EXPECT_GT(series.idleObservations, 0u)
            << "promotion=" << promotion;
        EXPECT_EQ(series.idleObservationMismatches, 0u)
            << "promotion=" << promotion;
        EXPECT_GT(series.idleObservedTotal, 0u);
        // Mispredicts happened, so the tricky observation path (the
        // arrival interrupts a transition window) was exercised.
        if (!promotion)
            EXPECT_GT(r.mispredictedEntries, 0u);
    }
}

} // namespace
