/**
 * @file
 * Unit tests for the turbo thermal-credit model.
 */

#include <gtest/gtest.h>

#include "server/turbo.hh"

namespace {

using namespace aw::server;
using namespace aw::sim;

TEST(Turbo, CreditAccruesBelowThreshold)
{
    TurboModel turbo;
    turbo.setPower(0, 0.2); // deep idle, 1 W below the threshold
    EXPECT_NEAR(turbo.credit(fromSec(0.1)),
                (1.2 - 0.2) * 0.1, 1e-9);
}

TEST(Turbo, NoCreditAtOrAboveThreshold)
{
    TurboModel turbo;
    turbo.setPower(0, 1.44); // C1 power: too hot to cool
    EXPECT_DOUBLE_EQ(turbo.credit(fromSec(10.0)), 0.0);
}

TEST(Turbo, CreditCapsAtCapacity)
{
    TurboModel turbo;
    turbo.setPower(0, 0.0);
    EXPECT_DOUBLE_EQ(turbo.credit(fromSec(100.0)),
                     turbo.params().capacity);
}

TEST(Turbo, CanBoostRequiresSufficientCredit)
{
    TurboModel turbo;
    turbo.setPower(0, 0.2);
    // After 10 ms: credit = 0.01 J. A 1 ms boost needs
    // (7-4)*1e-3 = 3e-3 J -> affordable.
    EXPECT_TRUE(turbo.canBoost(fromMs(10.0), fromMs(1.0)));
    // A 10 ms boost needs 0.03 J -> not affordable yet.
    EXPECT_FALSE(turbo.canBoost(fromMs(10.0), fromMs(10.0)));
}

TEST(Turbo, CommitBoostDrainsCredit)
{
    TurboModel turbo;
    turbo.setPower(0, 0.2);
    const Tick now = fromMs(10.0);
    const auto before = turbo.credit(now);
    turbo.commitBoost(now, fromMs(1.0));
    EXPECT_NEAR(turbo.credit(now), before - 3e-3, 1e-9);
}

TEST(Turbo, DisabledNeverBoosts)
{
    TurboModel turbo(TurboModel::Params{}, false);
    turbo.setPower(0, 0.0);
    EXPECT_FALSE(turbo.canBoost(fromSec(10.0), fromNs(1.0)));
}

TEST(Turbo, ResetZeroesCredit)
{
    TurboModel turbo;
    turbo.setPower(0, 0.0);
    turbo.credit(fromSec(1.0));
    turbo.reset(fromSec(1.0));
    EXPECT_DOUBLE_EQ(turbo.credit(fromSec(1.0)), 0.0);
}

TEST(Turbo, C1EIdleAccruesButSlowerThanC6A)
{
    // The Fig 11 mechanism: C1E (0.88 W) accrues thermal headroom
    // more slowly than C6A (0.3 W); C1 (1.44 W) accrues none.
    TurboModel at_c1e, at_c6a, at_c1;
    at_c1e.setPower(0, 0.88);
    at_c6a.setPower(0, 0.30);
    at_c1.setPower(0, 1.44);
    const Tick t = fromSec(0.1);
    EXPECT_GT(at_c6a.credit(t), at_c1e.credit(t));
    EXPECT_GT(at_c1e.credit(t), 0.0);
    EXPECT_DOUBLE_EQ(at_c1.credit(t), 0.0);
}

TEST(Turbo, PiecewiseAccrual)
{
    TurboModel turbo;
    turbo.setPower(0, 0.2);              // cool for 10 ms
    turbo.setPower(fromMs(10.0), 4.0);   // active for 10 ms (no gain)
    turbo.setPower(fromMs(20.0), 0.2);   // cool again for 10 ms
    EXPECT_NEAR(turbo.credit(fromMs(30.0)), 2 * (1.0 * 0.01), 1e-9);
}

} // namespace
