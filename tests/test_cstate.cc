/**
 * @file
 * Unit tests for C-state descriptors: Table 1 constants, Table 2
 * component states, and the configuration presets.
 */

#include <gtest/gtest.h>

#include "cstate/config.hh"
#include "cstate/cstate.hh"

namespace {

using namespace aw::cstate;
using namespace aw::sim;

TEST(Descriptors, Table1TransitionTimes)
{
    EXPECT_EQ(descriptor(CStateId::C1).transitionTime, fromUs(2.0));
    EXPECT_EQ(descriptor(CStateId::C6A).transitionTime, fromUs(2.0));
    EXPECT_EQ(descriptor(CStateId::C1E).transitionTime, fromUs(10.0));
    EXPECT_EQ(descriptor(CStateId::C6AE).transitionTime,
              fromUs(10.0));
    EXPECT_EQ(descriptor(CStateId::C6).transitionTime, fromUs(133.0));
}

TEST(Descriptors, Table1TargetResidencies)
{
    EXPECT_EQ(descriptor(CStateId::C1).targetResidency, fromUs(2.0));
    EXPECT_EQ(descriptor(CStateId::C6A).targetResidency, fromUs(2.0));
    EXPECT_EQ(descriptor(CStateId::C1E).targetResidency,
              fromUs(20.0));
    EXPECT_EQ(descriptor(CStateId::C6AE).targetResidency,
              fromUs(20.0));
    EXPECT_EQ(descriptor(CStateId::C6).targetResidency,
              fromUs(600.0));
}

TEST(Descriptors, Table1Powers)
{
    EXPECT_DOUBLE_EQ(kC0PowerP1, 4.0);
    EXPECT_DOUBLE_EQ(kC0PowerPn, 1.0);
    EXPECT_DOUBLE_EQ(descriptor(CStateId::C1).corePower, 1.44);
    EXPECT_DOUBLE_EQ(descriptor(CStateId::C1E).corePower, 0.88);
    EXPECT_DOUBLE_EQ(descriptor(CStateId::C6A).corePower, 0.3);
    EXPECT_DOUBLE_EQ(descriptor(CStateId::C6AE).corePower, 0.23);
    EXPECT_DOUBLE_EQ(descriptor(CStateId::C6).corePower, 0.1);
}

TEST(Descriptors, AwPowerIsFiveToSevenPercentOfC0)
{
    // The abstract's claim: C6A/C6AE consume only 7% / 5% of C0.
    EXPECT_NEAR(descriptor(CStateId::C6A).corePower / kC0PowerP1,
                0.07, 0.01);
    EXPECT_NEAR(descriptor(CStateId::C6AE).corePower / kC0PowerP1,
                0.055, 0.01);
}

TEST(Descriptors, Table2ComponentStates)
{
    // C0: everything on.
    const auto &c0 = descriptor(CStateId::C0);
    EXPECT_EQ(c0.clocks, ClockState::Running);
    EXPECT_EQ(c0.pll, PllState::On);
    EXPECT_EQ(c0.caches, CacheState::Coherent);
    EXPECT_EQ(c0.voltage, VoltageState::Active);
    EXPECT_EQ(c0.context, ContextState::Maintained);

    // C6A: stopped clocks, PLL on, caches coherent, PG + retention.
    const auto &c6a = descriptor(CStateId::C6A);
    EXPECT_EQ(c6a.clocks, ClockState::Stopped);
    EXPECT_EQ(c6a.pll, PllState::On);
    EXPECT_EQ(c6a.caches, CacheState::Coherent);
    EXPECT_EQ(c6a.voltage, VoltageState::PgRetActive);
    EXPECT_EQ(c6a.context, ContextState::InPlaceSR);

    // C6AE: like C6A at the Pn point.
    EXPECT_EQ(descriptor(CStateId::C6AE).voltage,
              VoltageState::PgRetMinVF);

    // C6: PLL off, caches flushed, voltage off, context external.
    const auto &c6 = descriptor(CStateId::C6);
    EXPECT_EQ(c6.pll, PllState::Off);
    EXPECT_EQ(c6.caches, CacheState::Flushed);
    EXPECT_EQ(c6.voltage, VoltageState::ShutOff);
    EXPECT_EQ(c6.context, ContextState::SramSR);
}

TEST(Descriptors, OnlyAwStatesAreAgileWatts)
{
    EXPECT_TRUE(descriptor(CStateId::C6A).isAgileWatts);
    EXPECT_TRUE(descriptor(CStateId::C6AE).isAgileWatts);
    EXPECT_FALSE(descriptor(CStateId::C1).isAgileWatts);
    EXPECT_FALSE(descriptor(CStateId::C6).isAgileWatts);
}

TEST(Descriptors, DepthOrderingTracksPowerSavings)
{
    // Deeper state => lower power.
    const CStateId order[] = {CStateId::C0, CStateId::C1,
                              CStateId::C1E, CStateId::C6A,
                              CStateId::C6AE, CStateId::C6};
    for (std::size_t i = 1; i < std::size(order); ++i) {
        EXPECT_GT(descriptor(order[i]).depth,
                  descriptor(order[i - 1]).depth);
        if (order[i - 1] != CStateId::C0) {
            EXPECT_LT(descriptor(order[i]).corePower,
                      descriptor(order[i - 1]).corePower);
        }
    }
}

TEST(Descriptors, PnStatesFlagged)
{
    EXPECT_TRUE(descriptor(CStateId::C1E).atPn);
    EXPECT_TRUE(descriptor(CStateId::C6AE).atPn);
    EXPECT_FALSE(descriptor(CStateId::C1).atPn);
    EXPECT_FALSE(descriptor(CStateId::C6A).atPn);
}

TEST(Descriptors, Names)
{
    EXPECT_STREQ(name(CStateId::C0), "C0");
    EXPECT_STREQ(name(CStateId::C6A), "C6A");
    EXPECT_STREQ(name(CStateId::C6AE), "C6AE");
    EXPECT_STREQ(name(VoltageState::PgRetActive), "PG/Ret/Active");
    EXPECT_STREQ(name(ContextState::InPlaceSR), "In-place S/R");
}

TEST(Config, LegacyBaselinePreset)
{
    const auto cfg = CStateConfig::legacyBaseline();
    EXPECT_TRUE(cfg.enabled(CStateId::C1));
    EXPECT_TRUE(cfg.enabled(CStateId::C1E));
    EXPECT_TRUE(cfg.enabled(CStateId::C6));
    EXPECT_FALSE(cfg.enabled(CStateId::C6A));
    EXPECT_FALSE(cfg.usesAgileWatts());
    EXPECT_EQ(cfg.describe(), "C1+C1E+C6");
}

TEST(Config, AwPresetReplacesC1Family)
{
    const auto cfg = CStateConfig::aw();
    EXPECT_FALSE(cfg.enabled(CStateId::C1));
    EXPECT_FALSE(cfg.enabled(CStateId::C1E));
    EXPECT_TRUE(cfg.enabled(CStateId::C6A));
    EXPECT_TRUE(cfg.enabled(CStateId::C6AE));
    EXPECT_TRUE(cfg.enabled(CStateId::C6));
    EXPECT_TRUE(cfg.usesAgileWatts());
}

TEST(Config, DeepestAndShallowest)
{
    const auto cfg = CStateConfig::legacyBaseline();
    EXPECT_EQ(cfg.deepestEnabled(), CStateId::C6);
    EXPECT_EQ(cfg.shallowestEnabled(), CStateId::C1);

    const auto aw = CStateConfig::awNoC6NoC1E();
    EXPECT_EQ(aw.deepestEnabled(), CStateId::C6A);
    EXPECT_EQ(aw.shallowestEnabled(), CStateId::C6A);
}

TEST(Config, EmptyConfig)
{
    const CStateConfig cfg;
    EXPECT_FALSE(cfg.anyEnabled());
    EXPECT_EQ(cfg.deepestEnabled(), CStateId::C0);
    EXPECT_EQ(cfg.describe(), "none");
}

TEST(Config, EnabledStatesSortedByDepth)
{
    const auto states = CStateConfig::legacyBaseline().enabledStates();
    ASSERT_EQ(states.size(), 3u);
    EXPECT_EQ(states[0], CStateId::C1);
    EXPECT_EQ(states[1], CStateId::C1E);
    EXPECT_EQ(states[2], CStateId::C6);
}

TEST(Config, SetAndClear)
{
    CStateConfig cfg;
    cfg.set(CStateId::C6);
    EXPECT_TRUE(cfg.enabled(CStateId::C6));
    cfg.set(CStateId::C6, false);
    EXPECT_FALSE(cfg.enabled(CStateId::C6));
}

TEST(DescriptorsDeathTest, BadIdPanics)
{
    EXPECT_DEATH(descriptor(CStateId::NumStates), "bad C-state");
}

} // namespace
