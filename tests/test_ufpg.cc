/**
 * @file
 * Unit tests for the UFPG subsystem: the Table 3 UFPG power rows
 * must emerge from the inventory + gate models.
 */

#include <gtest/gtest.h>

#include "core/ufpg.hh"
#include "uarch/core_units.hh"

namespace {

using namespace aw;
using namespace aw::core;
using aw::power::asMilliwatts;

class UfpgTest : public ::testing::Test
{
  protected:
    UfpgTest()
        : inventory(uarch::UnitInventory::skylakeServer()),
          ufpg(Ufpg::skylakeServer(inventory))
    {
    }

    uarch::UnitInventory inventory;
    Ufpg ufpg;
};

TEST_F(UfpgTest, GatedLeakageIsSeventyPercentOfC1Power)
{
    // C1 power ~ core leakage; UFPG gates 70% of it.
    EXPECT_NEAR(ufpg.gatedLeakageP1(), 1.44 * 0.70, 1e-9);
    EXPECT_NEAR(ufpg.gatedLeakagePn(), 0.88 * 0.70, 1e-9);
}

TEST_F(UfpgTest, ResidualPowerP1MatchesTable3)
{
    // Table 3: ~30-50 mW at P1.
    const auto r = ufpg.residualPowerP1();
    EXPECT_NEAR(asMilliwatts(r.lo), 30.0, 1.0);
    EXPECT_NEAR(asMilliwatts(r.hi), 50.0, 1.0);
}

TEST_F(UfpgTest, ResidualPowerPnMatchesTable3)
{
    // Table 3: ~18-30 mW at Pn.
    const auto r = ufpg.residualPowerPn();
    EXPECT_NEAR(asMilliwatts(r.lo), 18.0, 1.0);
    EXPECT_NEAR(asMilliwatts(r.hi), 30.0, 1.5);
}

TEST_F(UfpgTest, ContextPowerMatchesTable3)
{
    EXPECT_NEAR(asMilliwatts(ufpg.contextPowerP1()), 2.0, 0.01);
    EXPECT_NEAR(asMilliwatts(ufpg.contextPowerPn()), 1.0, 0.01);
}

TEST_F(UfpgTest, GatedAreaIsSeventyPercent)
{
    EXPECT_NEAR(ufpg.gatedAreaFraction(), 0.70, 1e-9);
}

TEST_F(UfpgTest, GateAreaOverheadOfCore)
{
    // 2-6% of the gated 70% -> 1.4-4.2% of the core.
    const auto a = ufpg.gateAreaOverheadOfCore();
    EXPECT_NEAR(a.lo, 0.014, 1e-9);
    EXPECT_NEAR(a.hi, 0.042, 1e-9);
}

TEST_F(UfpgTest, FrequencyDegradationIsOnePercent)
{
    EXPECT_DOUBLE_EQ(Ufpg::kFrequencyDegradation, 0.01);
}

TEST_F(UfpgTest, SaveRestoreCycleCounts)
{
    EXPECT_EQ(Ufpg::kSaveCycles, 4u);
    EXPECT_EQ(Ufpg::kRestoreCycles, 1u);
}

TEST(UfpgCustom, ScalesWithLeakageInput)
{
    const auto inv = uarch::UnitInventory::skylakeServer();
    const Ufpg doubled(inv, 2.88, 1.76);
    const auto base = Ufpg::skylakeServer(inv);
    EXPECT_NEAR(doubled.residualPowerP1().lo,
                2.0 * base.residualPowerP1().lo, 1e-9);
}

TEST(UfpgCustom, LargerContextCostsMore)
{
    const auto inv = uarch::UnitInventory::skylakeServer();
    const Ufpg big(inv, 1.44, 0.88,
                   aw::power::ContextRetention(32 * 1024.0));
    EXPECT_NEAR(asMilliwatts(big.contextPowerP1()), 8.0, 0.01);
}

TEST_F(UfpgTest, PnResidualIsLowerThanP1)
{
    EXPECT_LT(ufpg.residualPowerPn().hi, ufpg.residualPowerP1().hi);
    EXPECT_LT(ufpg.residualPowerPn().lo, ufpg.residualPowerP1().lo);
}

} // namespace
