/**
 * @file
 * Unit tests for the Table 3 PPA rollup: every row and the totals
 * must land on the paper's ranges.
 */

#include <gtest/gtest.h>

#include "core/aw_core.hh"
#include "core/ppa.hh"

namespace {

using namespace aw;
using namespace aw::core;
using aw::power::asMilliwatts;
using aw::power::Interval;

class PpaTest : public ::testing::Test
{
  protected:
    core::AwCoreModel model;

    const AwPpaModel &ppa() { return model.ppa(); }
};

TEST_F(PpaTest, TotalC6aMatchesTable3)
{
    // Table 3 overall: 290-315 mW in C6A.
    const auto total = ppa().totalPowerC6a();
    EXPECT_NEAR(asMilliwatts(total.lo), 290.0, 3.0);
    EXPECT_NEAR(asMilliwatts(total.hi), 315.0, 3.0);
}

TEST_F(PpaTest, TotalC6aeMatchesTable3)
{
    // Table 3 overall: 227-243 mW in C6AE.
    const auto total = ppa().totalPowerC6ae();
    EXPECT_NEAR(asMilliwatts(total.lo), 227.0, 3.0);
    EXPECT_NEAR(asMilliwatts(total.hi), 243.0, 3.0);
}

TEST_F(PpaTest, MidpointsAreTheHeadlineNumbers)
{
    // ~0.3 W and ~0.23 W.
    EXPECT_NEAR(ppa().c6aPowerMid(), 0.30, 0.01);
    EXPECT_NEAR(ppa().c6aePowerMid(), 0.235, 0.01);
}

TEST_F(PpaTest, FivrConversionLossMatchesTable3)
{
    // 36-41 mW in C6A; 23-27 mW in C6AE.
    const auto c6a = ppa().fivrConversionLossC6a();
    EXPECT_NEAR(asMilliwatts(c6a.lo), 36.0, 1.0);
    EXPECT_NEAR(asMilliwatts(c6a.hi), 41.0, 1.0);
    const auto c6ae = ppa().fivrConversionLossC6ae();
    EXPECT_NEAR(asMilliwatts(c6ae.lo), 23.0, 1.0);
    EXPECT_NEAR(asMilliwatts(c6ae.hi), 27.0, 1.0);
}

TEST_F(PpaTest, RowsSumToTotals)
{
    Interval sum_c6a, sum_c6ae;
    for (const auto &row : ppa().rows()) {
        sum_c6a += row.powerC6a;
        sum_c6ae += row.powerC6ae;
    }
    EXPECT_NEAR(sum_c6a.lo, ppa().totalPowerC6a().lo, 1e-9);
    EXPECT_NEAR(sum_c6a.hi, ppa().totalPowerC6a().hi, 1e-9);
    EXPECT_NEAR(sum_c6ae.lo, ppa().totalPowerC6ae().lo, 1e-9);
    EXPECT_NEAR(sum_c6ae.hi, ppa().totalPowerC6ae().hi, 1e-9);
}

TEST_F(PpaTest, EightRowsLikeTable3)
{
    EXPECT_EQ(ppa().rows().size(), 8u);
}

TEST_F(PpaTest, AreaTotalOverlapsPaperRange)
{
    // Paper: 3-7% of core area overall. Our honest rollup spans
    // ~2-7%; the upper end must agree and the range must overlap.
    const auto area = ppa().totalAreaFractionOfCore();
    EXPECT_GE(area.hi, 0.05);
    EXPECT_LE(area.hi, 0.075);
    EXPECT_GE(area.lo, 0.015);
    EXPECT_LE(area.lo, 0.035);
}

TEST_F(PpaTest, C6aeAlwaysCheaperThanC6a)
{
    EXPECT_LT(ppa().totalPowerC6ae().lo, ppa().totalPowerC6a().lo);
    EXPECT_LT(ppa().totalPowerC6ae().hi, ppa().totalPowerC6a().hi);
}

TEST_F(PpaTest, StaticComponentsAreStateIndependent)
{
    EXPECT_DOUBLE_EQ(ppa().pmaPowerC6a().mid(), 0.005);
    EXPECT_DOUBLE_EQ(ppa().adpllPower().mid(), 0.007);
    EXPECT_DOUBLE_EQ(ppa().fivrStaticLoss().mid(), 0.100);
}

TEST_F(PpaTest, AwStateStillBeatsC1ByFactorOfFour)
{
    // The whole point: C6A ~0.3 W vs C1 1.44 W.
    EXPECT_LT(ppa().totalPowerC6a().hi, 1.44 / 4.0);
}

TEST_F(PpaTest, AwPowerAboveC6)
{
    // C6A keeps caches + PLL alive, so it cannot beat C6's 0.1 W.
    EXPECT_GT(ppa().totalPowerC6a().lo, 0.1);
}

TEST_F(PpaTest, IntervalsAreValid)
{
    for (const auto &row : ppa().rows()) {
        EXPECT_TRUE(row.powerC6a.valid()) << row.subComponent;
        EXPECT_TRUE(row.powerC6ae.valid()) << row.subComponent;
        EXPECT_GE(row.powerC6a.lo, 0.0) << row.subComponent;
    }
}

} // namespace
