/**
 * @file
 * Tests for the dispatch policies: static partitioning (paper
 * setup) vs CARB-style packing (Sec 8 workload-aware management).
 */

#include <gtest/gtest.h>

#include "server/server_sim.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::server;
using namespace aw::sim;
using cstate::CStateId;

RunResult
runPolicy(DispatchPolicy policy, const ServerConfig &base,
          double qps)
{
    ServerConfig cfg = base;
    cfg.dispatch = policy;
    ServerSim srv(cfg, workload::WorkloadProfile::memcached(), qps);
    return srv.run(fromSec(0.5), fromMs(50.0));
}

TEST(DispatchRegistry, NamesRoundTrip)
{
    // The same name<->value idiom as the routing and governor
    // registries: every advertised name parses back to a policy
    // that prints the same name.
    const auto &names = dispatchPolicyNames();
    ASSERT_EQ(names.size(), 2u);
    for (const auto &n : names)
        EXPECT_EQ(name(dispatchPolicyByName(n)), n);
    EXPECT_EQ(dispatchPolicyByName("static"),
              DispatchPolicy::Static);
    EXPECT_EQ(dispatchPolicyByName("packing"),
              DispatchPolicy::Packing);
}

TEST(DispatchRegistryDeathTest, UnknownNamesAreFatal)
{
    EXPECT_EXIT(dispatchPolicyByName("no_such_dispatch"),
                testing::ExitedWithCode(1),
                "unknown dispatch policy.*static\\|packing");
}

TEST(Packing, ServesTheFullLoad)
{
    const auto r = runPolicy(DispatchPolicy::Packing,
                             ServerConfig::ntBaseline(), 100e3);
    EXPECT_NEAR(r.achievedQps, 100e3, 5e3);
    EXPECT_GT(r.requests, 10000u);
}

TEST(Packing, ExtendsDeepIdleResidencyOverStatic)
{
    // Packing concentrates work on few cores so the others reach
    // C6 -- the whole point of CARB-style management.
    const auto spread = runPolicy(DispatchPolicy::Static,
                                  ServerConfig::ntBaseline(), 100e3);
    const auto packed = runPolicy(DispatchPolicy::Packing,
                                  ServerConfig::ntBaseline(), 100e3);
    EXPECT_GT(packed.residency.shareOf(CStateId::C6),
              spread.residency.shareOf(CStateId::C6) + 0.05);
}

TEST(Packing, SavesPowerWithLegacyStates)
{
    const auto spread = runPolicy(DispatchPolicy::Static,
                                  ServerConfig::ntBaseline(), 100e3);
    const auto packed = runPolicy(DispatchPolicy::Packing,
                                  ServerConfig::ntBaseline(), 100e3);
    EXPECT_LT(packed.avgCorePower, spread.avgCorePower);
}

TEST(Packing, CostsLatencyVersusStatic)
{
    // Queueing on a small active set is the price of packing.
    const auto spread = runPolicy(DispatchPolicy::Static,
                                  ServerConfig::ntBaseline(), 200e3);
    const auto packed = runPolicy(DispatchPolicy::Packing,
                                  ServerConfig::ntBaseline(), 200e3);
    EXPECT_GT(packed.p99LatencyUs, spread.p99LatencyUs);
}

TEST(Packing, AwStaticBeatsLegacyPackingOnLatency)
{
    // The paper's Sec 8 argument: AW gets (most of) the deep-state
    // savings without management-induced queueing.
    const auto packed_legacy = runPolicy(
        DispatchPolicy::Packing, ServerConfig::ntBaseline(), 200e3);
    const auto aw_static = runPolicy(
        DispatchPolicy::Static, ServerConfig::ntAwNoC6NoC1e(),
        200e3);
    EXPECT_LT(aw_static.p99LatencyUs, packed_legacy.p99LatencyUs);
    EXPECT_LT(aw_static.avgCorePower, packed_legacy.avgCorePower);
}

TEST(Packing, QueueLimitRespectedBeforeSpill)
{
    ServerConfig cfg = ServerConfig::ntBaseline();
    cfg.dispatch = DispatchPolicy::Packing;
    cfg.packingQueueLimit = 1;
    ServerSim srv(cfg, workload::WorkloadProfile::memcached(),
                  300e3);
    const auto r = srv.run(fromSec(0.3), fromMs(30.0));
    // With limit 1 the load spreads across many cores; the system
    // still clears the offered rate.
    EXPECT_NEAR(r.achievedQps, 300e3, 20e3);
}

TEST(RaceToHalt, FastAndDeepBeatsSlowAndShallowOnEnergy)
{
    // Sec 8: "C6A could make a simple race-to-halt approach more
    // attractive": racing at P1 and idling in C6A uses less energy
    // per request than pacing at Pn in C1 -- and is much faster.
    const auto profile = workload::WorkloadProfile::memcached();
    ServerConfig pace = ServerConfig::ntNoC6NoC1e();
    pace.runAtPn = true;
    ServerConfig race = ServerConfig::ntAwNoC6NoC1e();

    ServerSim pace_srv(pace, profile, 100e3);
    ServerSim race_srv(race, profile, 100e3);
    const auto rp = pace_srv.run(fromSec(0.5), fromMs(50.0));
    const auto rr = race_srv.run(fromSec(0.5), fromMs(50.0));

    EXPECT_LT(rr.avgLatencyUs, rp.avgLatencyUs);
    const double race_j_per_req = rr.coreEnergy / rr.requests;
    const double pace_j_per_req = rp.coreEnergy / rp.requests;
    EXPECT_LT(race_j_per_req, pace_j_per_req);
}

TEST(RaceToHalt, PnConfigRunsSlower)
{
    ServerConfig pace = ServerConfig::ntNoC6NoC1e();
    pace.runAtPn = true;
    ServerSim srv(pace, workload::WorkloadProfile::memcached(),
                  50e3);
    const auto r = srv.run(fromSec(0.3), fromMs(30.0));
    ServerSim fast(ServerConfig::ntNoC6NoC1e(),
                   workload::WorkloadProfile::memcached(), 50e3);
    const auto rf = fast.run(fromSec(0.3), fromMs(30.0));
    EXPECT_GT(r.avgLatencyUs, rf.avgLatencyUs * 1.3);
}

} // namespace
