/**
 * @file
 * Unit tests for the C6A PMA controller: the Fig 6 state machine
 * and the <100 ns headline latency.
 */

#include <gtest/gtest.h>

#include "core/aw_core.hh"
#include "core/pma.hh"
#include "sim/event_queue.hh"

namespace {

using namespace aw;
using namespace aw::core;
using namespace aw::sim;

class PmaTest : public ::testing::Test
{
  protected:
    core::AwCoreModel model;
};

TEST_F(PmaTest, EntryLatencyUnderTwentyNanoseconds)
{
    const auto &ctl = model.controller();
    // 9 PMA cycles at 500 MHz = 18 ns.
    EXPECT_EQ(ctl.entryLatency(), fromNs(18.0));
    EXPECT_LT(ctl.entryLatency(), fromNs(20.0));
}

TEST_F(PmaTest, ExitLatencyUnderEightyNanoseconds)
{
    const auto &ctl = model.controller();
    EXPECT_LT(ctl.exitLatency(), fromNs(80.0));
    // Dominated by the staggered ungate (<70 ns).
    EXPECT_GT(ctl.exitLatency(), ctl.wakePlan().totalWakeTime());
}

TEST_F(PmaTest, RoundTripUnderHundredNanoseconds)
{
    EXPECT_LT(model.controller().roundTripLatency(), fromNs(100.0));
}

TEST_F(PmaTest, WakePlanHasFiveZonesWithinInrush)
{
    const auto &plan = model.controller().wakePlan();
    EXPECT_EQ(plan.zoneCount(), C6aController::kWakeZones);
    EXPECT_TRUE(plan.inrushWithinLimit());
    // ~4.5 x 15 ns ~ 67.5 ns (<70 ns).
    EXPECT_LT(plan.totalWakeTime(), fromNs(70.0));
    EXPECT_GT(plan.totalWakeTime(), fromNs(60.0));
}

TEST_F(PmaTest, AwLatenciesPackageIsConsistent)
{
    const auto &ctl = model.controller();
    const auto lat = ctl.awLatencies();
    EXPECT_EQ(lat.c6a.entry, ctl.entryLatency());
    EXPECT_EQ(lat.c6a.exit, ctl.exitLatency());
    EXPECT_EQ(lat.c6ae.entry, lat.c6a.entry);
    EXPECT_EQ(lat.c6ae.exit, lat.c6a.exit);
}

TEST_F(PmaTest, EntryFlowTraceSequence)
{
    Simulator simr;
    auto &ctl = model.controller();
    bool done = false;
    ctl.runEntry(simr, [&] { done = true; });
    simr.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(ctl.phase(), PmaPhase::IdleC6a);

    // Trace: C0 -> step1 -> step2 -> step3.
    const auto &trace = ctl.trace();
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0].phase, PmaPhase::C0);
    EXPECT_EQ(trace[1].phase, PmaPhase::EntryClockGate);
    EXPECT_EQ(trace[2].phase, PmaPhase::EntrySaveGate);
    EXPECT_EQ(trace[3].phase, PmaPhase::EntryCacheSleep);
    // The event-driven flow takes exactly the analytic latency.
    EXPECT_EQ(simr.now(), ctl.entryLatency());
}

TEST_F(PmaTest, ExitFlowTraceSequenceAndTiming)
{
    Simulator simr;
    auto &ctl = model.controller();
    ctl.runEntry(simr, nullptr);
    simr.run();
    const Tick entry_done = simr.now();
    ctl.clearTrace();
    bool done = false;
    ctl.runExit(simr, [&] { done = true; });
    simr.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(ctl.phase(), PmaPhase::C0);
    EXPECT_EQ(simr.now() - entry_done, ctl.exitLatency());

    const auto &trace = ctl.trace();
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0].phase, PmaPhase::IdleC6a);
    EXPECT_EQ(trace[1].phase, PmaPhase::ExitCacheWake);
    EXPECT_EQ(trace[2].phase, PmaPhase::ExitUngate);
    EXPECT_EQ(trace[3].phase, PmaPhase::ExitClockUngate);
}

TEST_F(PmaTest, SnoopFlowReturnsToIdle)
{
    Simulator simr;
    auto &ctl = model.controller();
    ctl.runEntry(simr, nullptr);
    simr.run();
    bool done = false;
    const Tick serve = fromNs(6.4); // ~14 cycles at 2.2 GHz
    ctl.runSnoop(simr, serve, [&] { done = true; });
    simr.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(ctl.phase(), PmaPhase::IdleC6a);
}

TEST_F(PmaTest, SnoopLatenciesAreCycleScale)
{
    const auto &ctl = model.controller();
    EXPECT_EQ(ctl.snoopWakeLatency(),
              C6aController::kPmaClock.cycles(2));
    EXPECT_EQ(ctl.snoopResleepLatency(),
              C6aController::kPmaClock.cycles(3));
}

TEST_F(PmaTest, ControllerPowerIsFiveMilliwatts)
{
    EXPECT_NEAR(power::asMilliwatts(C6aController::kControllerPower),
                5.0, 1e-9);
}

TEST(PmaDeathTest, ExitFromC0Panics)
{
    core::AwCoreModel model;
    Simulator simr;
    EXPECT_DEATH(model.controller().runExit(simr, nullptr),
                 "runExit");
}

TEST(PmaDeathTest, DoubleEntryPanics)
{
    core::AwCoreModel model;
    Simulator simr;
    model.controller().runEntry(simr, nullptr);
    simr.run();
    EXPECT_DEATH(model.controller().runEntry(simr, nullptr),
                 "runEntry");
}

TEST(PmaDeathTest, SnoopWhileActivePanics)
{
    core::AwCoreModel model;
    Simulator simr;
    EXPECT_DEATH(model.controller().runSnoop(simr, 100, nullptr),
                 "runSnoop");
}

TEST_F(PmaTest, PmaClockIsFiveHundredMegahertz)
{
    EXPECT_EQ(C6aController::kPmaClock.period(), Tick(2000));
}

TEST_F(PmaTest, RepeatedCyclesAreStable)
{
    // Enter/exit many times; latencies and phases stay consistent.
    Simulator simr;
    auto &ctl = model.controller();
    for (int i = 0; i < 50; ++i) {
        ctl.runEntry(simr, nullptr);
        simr.run();
        ASSERT_EQ(ctl.phase(), PmaPhase::IdleC6a);
        ctl.runExit(simr, nullptr);
        simr.run();
        ASSERT_EQ(ctl.phase(), PmaPhase::C0);
    }
    EXPECT_EQ(simr.now(), 50 * ctl.roundTripLatency());
}

} // namespace
