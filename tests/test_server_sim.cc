/**
 * @file
 * Tests for the whole-server simulation driver.
 */

#include <gtest/gtest.h>

#include <memory>

#include "server/server_sim.hh"
#include "workload/profiles.hh"
#include "workload/trace.hh"

namespace {

using namespace aw;
using namespace aw::server;
using namespace aw::sim;

RunResult
quickRun(const ServerConfig &cfg, double qps)
{
    ServerSim srv(cfg, workload::WorkloadProfile::memcached(), qps);
    return srv.run(fromSec(0.5), fromMs(50.0));
}

TEST(ServerSim, AchievedRateTracksOffered)
{
    const auto r = quickRun(ServerConfig::baseline(), 100e3);
    EXPECT_NEAR(r.achievedQps, 100e3, 5e3);
    EXPECT_GT(r.requests, 10000u);
}

TEST(ServerSim, ResultFieldsPopulated)
{
    const auto r = quickRun(ServerConfig::baseline(), 100e3);
    EXPECT_EQ(r.configName, "Baseline");
    EXPECT_EQ(r.workloadName, "memcached");
    EXPECT_GT(r.avgLatencyUs, 0.0);
    EXPECT_GE(r.p99LatencyUs, r.avgLatencyUs);
    EXPECT_GT(r.avgCorePower, 0.0);
    EXPECT_GT(r.packagePower, r.avgCorePower);
    EXPECT_GT(r.coreEnergy, 0.0);
    EXPECT_GT(r.window, Tick(0));
}

TEST(ServerSim, EndToEndAddsNetworkConstant)
{
    const auto r = quickRun(ServerConfig::baseline(), 100e3);
    EXPECT_NEAR(r.avgLatencyE2eUs - r.avgLatencyUs, 117.0, 1e-9);
    EXPECT_NEAR(r.p99LatencyE2eUs - r.p99LatencyUs, 117.0, 1e-9);
}

TEST(ServerSim, ResidencySharesSumToOne)
{
    const auto r = quickRun(ServerConfig::baseline(), 200e3);
    EXPECT_NEAR(r.residency.totalShare(), 1.0, 1e-6);
}

TEST(ServerSim, C0ResidencyGrowsWithLoad)
{
    const auto lo = quickRun(ServerConfig::baseline(), 50e3);
    const auto hi = quickRun(ServerConfig::baseline(), 400e3);
    EXPECT_GT(hi.residency.shareOf(cstate::CStateId::C0),
              lo.residency.shareOf(cstate::CStateId::C0));
}

TEST(ServerSim, AwSavesPowerAtEveryLoad)
{
    for (const double qps : {20e3, 100e3, 400e3}) {
        const auto base = quickRun(ServerConfig::baseline(), qps);
        const auto agile = quickRun(ServerConfig::awBaseline(), qps);
        EXPECT_LT(agile.avgCorePower, base.avgCorePower)
            << "qps=" << qps;
    }
}

TEST(ServerSim, AwLatencyImpactIsSmall)
{
    const auto base = quickRun(ServerConfig::baseline(), 100e3);
    const auto agile = quickRun(ServerConfig::awBaseline(), 100e3);
    // Paper: <1.3% tail and <1% average degradation. Allow a
    // little simulation noise on top.
    EXPECT_LT(agile.avgLatencyUs,
              base.avgLatencyUs * 1.05);
    EXPECT_LT(agile.p99LatencyUs, base.p99LatencyUs * 1.10);
}

TEST(ServerSim, PackagePowerIncludesUncore)
{
    ServerConfig cfg = ServerConfig::baseline();
    cfg.uncorePower = 18.0;
    ServerSim srv(cfg, workload::WorkloadProfile::memcached(),
                  100e3);
    const auto r = srv.run(fromSec(0.3), fromMs(30.0));
    EXPECT_NEAR(r.packagePower,
                r.avgCorePower * cfg.cores + 18.0, 1e-9);
}

TEST(ServerSim, MemcachedNeverReachesC6AtModerateLoad)
{
    // The Sec 2 observation: at >=20% load (here 200+ KQPS) cores
    // never go deeper than C1.
    const auto r = quickRun(ServerConfig::baseline(), 300e3);
    EXPECT_LT(r.residency.shareOf(cstate::CStateId::C6), 0.01);
}

TEST(ServerSim, SweepRatesReturnsOnePerLevel)
{
    const auto profile = workload::WorkloadProfile::memcached();
    const std::vector<double> rates{50e3, 100e3};
    const auto results =
        sweepRates(ServerConfig::baseline(), profile, rates,
                   fromSec(0.2), fromMs(20.0));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_DOUBLE_EQ(results[0].offeredQps, 50e3);
    EXPECT_DOUBLE_EQ(results[1].offeredQps, 100e3);
}

TEST(ServerSim, TransitionsPerRequestIsSane)
{
    const auto r = quickRun(ServerConfig::baseline(), 100e3);
    EXPECT_GT(r.transitionsPerRequest, 0.0);
    EXPECT_LE(r.transitionsPerRequest, 1.5);
}

TEST(ServerSimDeathTest, ValidatesConfig)
{
    const auto profile = workload::WorkloadProfile::memcached();
    ServerConfig cfg = ServerConfig::baseline();
    cfg.cores = 0;
    EXPECT_EXIT(ServerSim(cfg, profile, 100e3),
                ::testing::ExitedWithCode(1), "core");
    EXPECT_EXIT(ServerSim(ServerConfig::baseline(), profile, 0.0),
                ::testing::ExitedWithCode(1), "load");
}

TEST(ServerSim, DeterministicAcrossRunsWithSameSeed)
{
    const auto a = quickRun(ServerConfig::baseline(), 100e3);
    const auto b = quickRun(ServerConfig::baseline(), 100e3);
    EXPECT_DOUBLE_EQ(a.avgCorePower, b.avgCorePower);
    EXPECT_DOUBLE_EQ(a.avgLatencyUs, b.avgLatencyUs);
    EXPECT_EQ(a.requests, b.requests);
}

TEST(ServerSim, SeedChangesResults)
{
    ServerConfig cfg = ServerConfig::baseline();
    cfg.seed = 1234;
    const auto profile = workload::WorkloadProfile::memcached();
    ServerSim a(ServerConfig::baseline(), profile, 100e3);
    ServerSim b(cfg, profile, 100e3);
    const auto ra = a.run(fromSec(0.3), fromMs(30.0));
    const auto rb = b.run(fromSec(0.3), fromMs(30.0));
    EXPECT_NE(ra.requests, rb.requests);
}

TEST(ServerSim, ExternalTraceDrivesCentralDispatch)
{
    // 200 arrivals, one every 100 us, non-looping: every request
    // must be dispatched (round-robin across cores under Static)
    // and completed within the window.
    const auto profile = workload::WorkloadProfile::memcached();
    workload::ArrivalTrace trace(
        std::vector<Tick>(200, fromUs(100.0)));
    ServerSim srv(ServerConfig::baseline(), profile,
                  std::make_unique<workload::TraceArrivals>(
                      trace, /*loop=*/false));
    const auto r = srv.run(fromMs(30.0), 0);
    EXPECT_EQ(r.requests, 200u);
    EXPECT_NEAR(r.offeredQps, 10e3, 1.0);
    EXPECT_GT(r.avgLatencyUs, 0.0);
}

TEST(ServerSim, ExternalTraceReplayIsDeterministic)
{
    const auto profile = workload::WorkloadProfile::memcached();
    workload::PoissonArrivals src(20e3);
    Rng rec_rng(11);
    const auto trace =
        workload::ArrivalTrace::record(src, rec_rng, 2000);
    auto once = [&]() {
        ServerSim srv(ServerConfig::awBaseline(), profile,
                      std::make_unique<workload::TraceArrivals>(
                          trace, /*loop=*/true));
        return srv.run(fromMs(50.0), fromMs(5.0));
    };
    const auto a = once(), b = once();
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.coreEnergy, b.coreEnergy);
    EXPECT_DOUBLE_EQ(a.p99LatencyUs, b.p99LatencyUs);
}

TEST(ServerSimDeathTest, RejectsNullArrivalStream)
{
    const auto profile = workload::WorkloadProfile::memcached();
    EXPECT_EXIT(
        ServerSim(ServerConfig::baseline(), profile,
                  std::unique_ptr<workload::ArrivalProcess>{}),
        ::testing::ExitedWithCode(1), "null arrival");
}

} // namespace
