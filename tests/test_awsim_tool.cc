/**
 * @file
 * Smoke tests for the awsim CLI: run the binary end to end and
 * check its output structure. The binary path comes from the
 * AWSIM_BIN compile definition set by CMake.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

#ifndef AWSIM_BIN
#define AWSIM_BIN "./awsim"
#endif

/** Run a command, capture stdout, return (exit_code, output). */
std::pair<int, std::string>
runCommand(const std::string &cmd)
{
    std::array<char, 4096> buf{};
    std::string out;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe)
        return {-1, ""};
    while (fgets(buf.data(), buf.size(), pipe))
        out += buf.data();
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

TEST(AwsimTool, HelpExitsZero)
{
    const auto [code, out] = runCommand(std::string(AWSIM_BIN) +
                                        " --help");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("--workload"), std::string::npos);
    EXPECT_NE(out.find("--config"), std::string::npos);
}

TEST(AwsimTool, BasicRunProducesMetrics)
{
    const auto [code, out] = runCommand(
        std::string(AWSIM_BIN) +
        " --workload memcached --config aw --qps 50000 "
        "--seconds 0.2 --seed 3");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("avg core power"), std::string::npos);
    EXPECT_NE(out.find("p99 latency"), std::string::npos);
    EXPECT_NE(out.find("C6A="), std::string::npos);
}

TEST(AwsimTool, EstimateFlagPrintsEq4)
{
    const auto [code, out] = runCommand(
        std::string(AWSIM_BIN) +
        " --workload memcached --config nt_baseline --qps 50000 "
        "--seconds 0.2 --estimate-aw");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("Eq. 4"), std::string::npos);
}

TEST(AwsimTool, PackageFlagPrintsPkgResidency)
{
    const auto [code, out] = runCommand(
        std::string(AWSIM_BIN) +
        " --workload memcached --config aw --qps 5000 "
        "--seconds 0.3 --package");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("PC6="), std::string::npos);
}

TEST(AwsimTool, GovernorFlagChangesThePolicy)
{
    const std::string base =
        std::string(AWSIM_BIN) +
        " --workload memcached --config c1c6 --qps 50000 "
        "--seconds 0.2";
    const auto menu = runCommand(base);
    const auto pinned = runCommand(base + " --governor static:C6");
    EXPECT_EQ(menu.first, 0);
    EXPECT_EQ(pinned.first, 0);
    EXPECT_NE(menu.second.find("governor=menu"), std::string::npos);
    EXPECT_NE(pinned.second.find("governor=static:C6"),
              std::string::npos);
    // Always-C6 actually parks in C6; menu's mispredictions never
    // let the legacy hierarchy get there (the Sec 1 claim).
    EXPECT_EQ(menu.second.find("C6="), std::string::npos);
    EXPECT_NE(pinned.second.find("C6="), std::string::npos);
}

TEST(AwsimTool, UnknownGovernorFails)
{
    const auto [code, out] = runCommand(
        std::string(AWSIM_BIN) + " --governor crystal_ball");
    EXPECT_NE(code, 0);
    EXPECT_NE(out.find("unknown governor"), std::string::npos);
}

TEST(AwsimTool, DispatchFlagParsesRegistryNames)
{
    const auto [code, out] = runCommand(
        std::string(AWSIM_BIN) +
        " --workload memcached --config nt_baseline --qps 50000 "
        "--seconds 0.1 --dispatch packing");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("dispatch=packing"), std::string::npos);

    const auto bad = runCommand(std::string(AWSIM_BIN) +
                                " --dispatch hash_ring");
    EXPECT_NE(bad.first, 0);
    EXPECT_NE(bad.second.find("unknown dispatch policy"),
              std::string::npos);
}

TEST(AwsimTool, UnknownWorkloadFails)
{
    const auto [code, out] = runCommand(
        std::string(AWSIM_BIN) + " --workload tetris");
    EXPECT_NE(code, 0);
    EXPECT_NE(out.find("unknown workload"), std::string::npos);
}

TEST(AwsimTool, UnknownConfigFails)
{
    const auto [code, out] = runCommand(
        std::string(AWSIM_BIN) + " --config warp_drive");
    EXPECT_NE(code, 0);
}

/** Every row must die (exit 1) with the given needle on stderr. */
struct BadFlag
{
    const char *args;
    const char *needle;
};

class AwsimToolRejects : public ::testing::TestWithParam<BadFlag>
{};

TEST_P(AwsimToolRejects, DegenerateValueUpFront)
{
    const auto [code, out] = runCommand(
        std::string(AWSIM_BIN) + " " + GetParam().args);
    EXPECT_EQ(code, 1) << out;
    EXPECT_NE(out.find(GetParam().needle), std::string::npos)
        << out;
}

INSTANTIATE_TEST_SUITE_P(
    Validation, AwsimToolRejects,
    ::testing::Values(
        BadFlag{"--qps 0", "positive"},
        BadFlag{"--qps -500", "positive"},
        BadFlag{"--qps banana", "bad value"},
        BadFlag{"--seconds -1", ">= 0"},
        BadFlag{"--warmup -0.2", ">= 0"},
        BadFlag{"--cores 0", "at least 1 core"},
        BadFlag{"--cores -4", "bad value"},
        BadFlag{"--seed -7", "bad value"},
        BadFlag{"--snoops -1", ">= 0"},
        BadFlag{"--fleet 0", "at least 1 server"},
        BadFlag{"--fleet 8 --fleet-threads 0", "at least 1"},
        BadFlag{"--fleet 8 --epoch 0", "positive"},
        BadFlag{"--fleet 8 --epoch -0.5", "positive"},
        BadFlag{"--fleet-threads 2", "requires --fleet"},
        BadFlag{"--epoch 0.1", "requires --fleet"}));

TEST(AwsimTool, DeterministicForFixedSeed)
{
    const std::string cmd =
        std::string(AWSIM_BIN) +
        " --workload kafka --config c1c6 --qps 2000 --seconds 0.3 "
        "--seed 11";
    const auto a = runCommand(cmd);
    const auto b = runCommand(cmd);
    EXPECT_EQ(a.first, 0);
    EXPECT_EQ(a.second, b.second);
}

} // namespace
