/**
 * @file
 * Unit tests for the ADPLL and FIVR models.
 */

#include <gtest/gtest.h>

#include "power/regulators.hh"

namespace {

using namespace aw::power;

TEST(Adpll, SevenMilliwattsWhenOn)
{
    Adpll pll;
    EXPECT_TRUE(pll.on());
    EXPECT_NEAR(asMilliwatts(pll.power()), 7.0, 1e-12);
}

TEST(Adpll, ZeroWhenOff)
{
    Adpll pll;
    pll.setOn(false);
    EXPECT_DOUBLE_EQ(pll.power(), 0.0);
    pll.setOn(true);
    EXPECT_GT(pll.power(), 0.0);
}

TEST(Adpll, RelockTimeIsMicroseconds)
{
    // Part of the ~10 us C6 hardware wake.
    EXPECT_GE(Adpll::kRelockTime, aw::sim::fromUs(1.0));
    EXPECT_LE(Adpll::kRelockTime, aw::sim::fromUs(10.0));
}

TEST(Fivr, ConversionLossAtLightLoad)
{
    const Fivr fivr;
    // 80% efficiency: delivering 0.8 W draws 1.0 W -> 0.2 W loss.
    EXPECT_NEAR(fivr.conversionLoss(0.8), 0.2, 1e-12);
    EXPECT_DOUBLE_EQ(fivr.conversionLoss(0.0), 0.0);
}

TEST(Fivr, InputPowerIncludesStaticLoss)
{
    const Fivr fivr;
    EXPECT_NEAR(fivr.inputPower(0.8), 0.8 + 0.2 + 0.1, 1e-12);
    EXPECT_NEAR(fivr.inputPower(0.0), 0.1, 1e-12);
}

TEST(Fivr, IntervalConversionLoss)
{
    const Fivr fivr;
    const auto loss = fivr.conversionLoss(Interval(0.1422, 0.1624));
    // The Table 3 C6A FIVR inefficiency row: ~36-41 mW.
    EXPECT_NEAR(asMilliwatts(loss.lo), 35.55, 0.1);
    EXPECT_NEAR(asMilliwatts(loss.hi), 40.6, 0.1);
}

TEST(Fivr, CustomEfficiency)
{
    const Fivr fivr(0.9, milliwatts(50.0));
    EXPECT_NEAR(fivr.conversionLoss(0.9), 0.1, 1e-12);
    EXPECT_NEAR(fivr.staticLoss(), 0.05, 1e-12);
}

TEST(Fivr, PaperConstants)
{
    EXPECT_DOUBLE_EQ(Fivr::kLightLoadEfficiency, 0.80);
    EXPECT_NEAR(asMilliwatts(Fivr::kStaticLoss), 100.0, 1e-9);
}

} // namespace
