/**
 * @file
 * Smoke and validation tests for the awsweep CLI: run the binary
 * end to end, check artifact plumbing, and pin the up-front
 * rejection of degenerate flag values (a bad --threads or --qps
 * must die with a diagnostic before any worker spawns). The binary
 * path comes from the AWSWEEP_BIN compile definition set by CMake.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

#ifndef AWSWEEP_BIN
#define AWSWEEP_BIN "./awsweep"
#endif

/** Run a command, capture stdout+stderr, return (exit_code, output). */
std::pair<int, std::string>
runCommand(const std::string &cmd)
{
    std::array<char, 4096> buf{};
    std::string out;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe)
        return {-1, ""};
    while (fgets(buf.data(), buf.size(), pipe))
        out += buf.data();
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

std::string
tmpPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(AwsweepTool, HelpExitsZeroAndDocumentsTheKernelKnobs)
{
    const auto [code, out] =
        runCommand(std::string(AWSWEEP_BIN) + " --help");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("--fleet"), std::string::npos);
    EXPECT_NE(out.find("--fleet-threads"), std::string::npos);
    EXPECT_NE(out.find("--epoch"), std::string::npos);
}

TEST(AwsweepTool, SmallSweepPrintsTheSummaryTable)
{
    const auto [code, out] = runCommand(
        std::string(AWSWEEP_BIN) +
        " --configs aw --qps 50000 --seconds 0.05 --threads 1");
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("points=1"), std::string::npos);
    EXPECT_NE(out.find("memcached"), std::string::npos);
}

TEST(AwsweepTool, KernelKnobsLeaveTheCsvArtifactByteIdentical)
{
    // The CLI-level restatement of the epoch-parallel contract:
    // --fleet-threads and --epoch may change how a fleet point
    // executes, never what it produces.
    const std::string a = tmpPath("awsweep_kernel_a.csv");
    const std::string b = tmpPath("awsweep_kernel_b.csv");
    const std::string base =
        std::string(AWSWEEP_BIN) +
        " --configs aw --policies pack-first --fleet 4 "
        "--qps 80000 --seconds 0.05 --threads 1 --quiet --csv ";
    const auto serial = runCommand(base + a);
    const auto epochal = runCommand(
        base + b + " --fleet-threads 4 --epoch 0.01");
    ASSERT_EQ(serial.first, 0) << serial.second;
    ASSERT_EQ(epochal.first, 0) << epochal.second;
    const std::string bytes_a = readFile(a);
    EXPECT_FALSE(bytes_a.empty());
    EXPECT_EQ(bytes_a, readFile(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

// ------------------------------------------- degenerate flag values

/** Every row must die (exit 1) with the given needle on stderr. */
struct BadFlag
{
    const char *args;
    const char *needle;
};

class AwsweepToolRejects : public ::testing::TestWithParam<BadFlag>
{};

TEST_P(AwsweepToolRejects, DegenerateValueUpFront)
{
    const auto [code, out] = runCommand(
        std::string(AWSWEEP_BIN) + " " + GetParam().args);
    EXPECT_EQ(code, 1) << out;
    EXPECT_NE(out.find(GetParam().needle), std::string::npos)
        << out;
}

INSTANTIATE_TEST_SUITE_P(
    Validation, AwsweepToolRejects,
    ::testing::Values(
        BadFlag{"--threads 0", "--threads"},
        BadFlag{"--threads -2", "bad value"},
        BadFlag{"--qps 0", "positive"},
        BadFlag{"--qps -100", "positive"},
        BadFlag{"--qps 50000,-1", "positive"},
        BadFlag{"--qps nan", "bad value"},
        BadFlag{"--fleet 0", "at least 1 server"},
        BadFlag{"--fleet 4,0", "at least 1 server"},
        BadFlag{"--replicas 0", "at least 1 replica"},
        BadFlag{"--seconds -1", ">= 0"},
        BadFlag{"--warmup -0.5", ">= 0"},
        BadFlag{"--cores 0", "at least 1 core"},
        BadFlag{"--seed -1", "bad value"},
        BadFlag{"--fleet-threads 0", "at least 1"},
        BadFlag{"--epoch 0", "positive"},
        BadFlag{"--epoch -0.1", "positive"},
        BadFlag{"--timeline-interval 0.01", "--timeline"},
        BadFlag{"--frobnicate", "unknown argument"}));

} // namespace
