/**
 * @file
 * Unit tests for residency counters (the simulated MSR counters).
 */

#include <gtest/gtest.h>

#include "cstate/residency.hh"

namespace {

using namespace aw::cstate;
using namespace aw::sim;

TEST(Residency, SharesSumToOne)
{
    ResidencyCounters rc(0);
    rc.recordEnter(CStateId::C1, 100);
    rc.recordEnter(CStateId::C0, 300);
    rc.recordEnter(CStateId::C6, 400);
    const auto snap = rc.snapshot(1000);
    EXPECT_NEAR(snap.totalShare(), 1.0, 1e-12);
}

TEST(Residency, SharesMatchHandComputation)
{
    ResidencyCounters rc(0);
    // C0: [0,100) and [300,400) = 200; C1: [100,300) = 200;
    // C6: [400,1000) = 600.
    rc.recordEnter(CStateId::C1, 100);
    rc.recordEnter(CStateId::C0, 300);
    rc.recordEnter(CStateId::C6, 400);
    const auto snap = rc.snapshot(1000);
    EXPECT_DOUBLE_EQ(snap.shareOf(CStateId::C0), 0.2);
    EXPECT_DOUBLE_EQ(snap.shareOf(CStateId::C1), 0.2);
    EXPECT_DOUBLE_EQ(snap.shareOf(CStateId::C6), 0.6);
}

TEST(Residency, EntriesCounted)
{
    ResidencyCounters rc(0);
    rc.recordEnter(CStateId::C1, 10);
    rc.recordEnter(CStateId::C0, 20);
    rc.recordEnter(CStateId::C1, 30);
    rc.recordEnter(CStateId::C0, 40);
    const auto snap = rc.snapshot(50);
    EXPECT_EQ(snap.entriesOf(CStateId::C1), 2u);
    EXPECT_EQ(snap.entriesOf(CStateId::C0), 2u);
    EXPECT_EQ(snap.idleTransitions(), 2u);
}

TEST(Residency, CurrentStateAccumulatesOpenInterval)
{
    ResidencyCounters rc(0);
    rc.recordEnter(CStateId::C1E, 100);
    EXPECT_EQ(rc.timeIn(CStateId::C1E, 250), Tick(150));
    EXPECT_EQ(rc.timeIn(CStateId::C0, 250), Tick(100));
}

TEST(Residency, ResetRestartsWindow)
{
    ResidencyCounters rc(0);
    rc.recordEnter(CStateId::C6, 100);
    rc.reset(500, CStateId::C1);
    const auto snap = rc.snapshot(600);
    EXPECT_DOUBLE_EQ(snap.shareOf(CStateId::C1), 1.0);
    EXPECT_DOUBLE_EQ(snap.shareOf(CStateId::C6), 0.0);
    EXPECT_EQ(snap.idleTransitions(), 0u);
    EXPECT_EQ(snap.window, Tick(100));
}

TEST(Residency, EmptyWindowSnapshot)
{
    ResidencyCounters rc(100);
    const auto snap = rc.snapshot(100);
    EXPECT_EQ(snap.window, Tick(0));
    EXPECT_DOUBLE_EQ(snap.totalShare(), 0.0);
}

TEST(Residency, CurrentAccessor)
{
    ResidencyCounters rc(0);
    EXPECT_EQ(rc.current(), CStateId::C0);
    rc.recordEnter(CStateId::C6A, 10);
    EXPECT_EQ(rc.current(), CStateId::C6A);
}

TEST(ResidencyDeathTest, TimeBackwardsPanics)
{
    ResidencyCounters rc(100);
    rc.recordEnter(CStateId::C1, 200);
    EXPECT_DEATH(rc.recordEnter(CStateId::C0, 150), "backwards");
}

TEST(Residency, IdleTransitionsExcludeC0)
{
    ResidencyCounters rc(0);
    rc.recordEnter(CStateId::C0, 10);
    rc.recordEnter(CStateId::C0, 20);
    const auto snap = rc.snapshot(30);
    EXPECT_EQ(snap.idleTransitions(), 0u);
}

} // namespace
