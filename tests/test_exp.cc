/**
 * @file
 * Unit tests for the experiment engine: spec expansion and
 * validation, the work-stealing thread pool, result lookups,
 * artifact emission and -- the engine's core contract -- bitwise
 * determinism of a sweep regardless of thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exp/emit.hh"
#include "exp/runner.hh"
#include "exp/spec.hh"
#include "sim/random.hh"

namespace {

using namespace aw;
using exp::ExperimentSpec;
using exp::GridPoint;
using exp::PointResult;
using exp::SweepRunner;
using exp::ThreadPool;

// ------------------------------------------------------------- spec

TEST(ExperimentSpec, SingleServerGridShapeAndOrder)
{
    ExperimentSpec spec;
    spec.workloads = {"memcached", "mysql"};
    spec.configs = {"baseline", "aw", "c1c6"};
    spec.qps = {10e3, 20e3};
    spec.replicas = 2;

    EXPECT_EQ(spec.gridSize(), 2u * 3u * 2u * 2u);
    const auto grid = spec.expand();
    ASSERT_EQ(grid.size(), spec.gridSize());

    // Expansion order: workload, config, policy, K, qps, variant,
    // replica (outer to inner); indices are the positions.
    for (std::size_t i = 0; i < grid.size(); ++i)
        EXPECT_EQ(grid[i].index, i);
    EXPECT_EQ(grid[0].workload, "memcached");
    EXPECT_EQ(grid[0].config, "baseline");
    EXPECT_EQ(grid[0].qps, 10e3);
    EXPECT_EQ(grid[0].replica, 0u);
    EXPECT_EQ(grid[1].replica, 1u);
    EXPECT_EQ(grid[2].qps, 20e3);
    EXPECT_EQ(grid[4].config, "aw");
    EXPECT_EQ(grid[12].workload, "mysql");

    // Single-server points: no policy, no fleet.
    for (const auto &pt : grid) {
        EXPECT_EQ(pt.servers, 0u);
        EXPECT_TRUE(pt.policy.empty());
    }
}

TEST(ExperimentSpec, FleetGridScalesPerServerQps)
{
    ExperimentSpec spec;
    spec.configs = {"c1c6"};
    spec.policies = {"round-robin", "pack-first"};
    spec.fleetSizes = {2, 8};
    spec.qps = {50e3};
    spec.qpsPerServer = true;

    const auto grid = spec.expand();
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid[0].servers, 2u);
    EXPECT_DOUBLE_EQ(grid[0].qps, 100e3);
    EXPECT_EQ(grid[1].servers, 8u);
    EXPECT_DOUBLE_EQ(grid[1].qps, 400e3);
    EXPECT_EQ(grid[0].policy, "round-robin");
    EXPECT_EQ(grid[2].policy, "pack-first");
}

TEST(ExperimentSpec, FleetModeDefaultsToRoundRobin)
{
    ExperimentSpec spec;
    spec.fleetSizes = {4};
    const auto grid = spec.expand();
    ASSERT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid[0].policy, "round-robin");
}

TEST(ExperimentSpec, GovernorAxisExpandsBetweenConfigAndPolicy)
{
    ExperimentSpec spec;
    spec.configs = {"baseline", "aw"};
    spec.governors = {"menu", "teo", "static:C6"};
    spec.qps = {10e3};

    EXPECT_EQ(spec.gridSize(), 2u * 3u);
    const auto grid = spec.expand();
    ASSERT_EQ(grid.size(), 6u);
    EXPECT_EQ(grid[0].governor, "menu");
    EXPECT_EQ(grid[1].governor, "teo");
    EXPECT_EQ(grid[2].governor, "static:C6");
    EXPECT_EQ(grid[3].config, "aw");
    EXPECT_EQ(grid[3].governor, "menu");
    EXPECT_NE(grid[2].label().find("static:C6"), std::string::npos);
}

TEST(ExperimentSpec, EmptyGovernorAxisLeavesGridUnchanged)
{
    // Backward compatibility: without the axis the grid (indices,
    // seeds, labels) is exactly the pre-governor grid.
    ExperimentSpec spec;
    spec.configs = {"baseline", "aw"};
    spec.qps = {10e3, 20e3};
    const auto grid = spec.expand();
    for (const auto &pt : grid) {
        EXPECT_TRUE(pt.governor.empty());
        EXPECT_EQ(pt.label().find("menu"), std::string::npos);
    }
}

TEST(ExperimentSpec, VariantAxisExpands)
{
    ExperimentSpec spec;
    spec.variants = {"alpha", "beta", "gamma"};
    const auto grid = spec.expand();
    ASSERT_EQ(grid.size(), 3u);
    EXPECT_EQ(grid[1].variant, "beta");
}

TEST(ExperimentSpecDeathTest, RejectsBadSpecs)
{
    ExperimentSpec spec;
    spec.configs = {"no_such_config"};
    EXPECT_EXIT(spec.validate(), testing::ExitedWithCode(1),
                "unknown config");

    ExperimentSpec empty;
    empty.qps = {};
    EXPECT_EXIT(empty.validate(), testing::ExitedWithCode(1),
                "empty qps");

    ExperimentSpec neg;
    neg.qps = {-5.0};
    EXPECT_EXIT(neg.validate(), testing::ExitedWithCode(1),
                "positive");

    ExperimentSpec pol;
    pol.policies = {"round-robin"}; // policies without a fleet axis
    EXPECT_EXIT(pol.validate(), testing::ExitedWithCode(1),
                "fleet-size");

    ExperimentSpec scaled;
    scaled.qpsPerServer = true; // per-server qps without fleets
    EXPECT_EXIT(scaled.validate(), testing::ExitedWithCode(1),
                "fleet-size");

    ExperimentSpec warm;
    warm.warmupSeconds = 0.1; // warmup with an auto-sized window
    EXPECT_EXIT(warm.validate(), testing::ExitedWithCode(1),
                "warmupSeconds");

    ExperimentSpec gov;
    gov.governors = {"no_such_governor"};
    EXPECT_EXIT(gov.validate(), testing::ExitedWithCode(1),
                "unknown governor");

    // A static spec naming a state one of the grid's configs
    // disables must die at validation, not inside a worker.
    ExperimentSpec mismatch;
    mismatch.configs = {"c1c6", "c1only"};
    mismatch.governors = {"static:C6"};
    EXPECT_EXIT(mismatch.validate(), testing::ExitedWithCode(1),
                "requires C6 enabled");

    ExperimentSpec oracle_fleet;
    oracle_fleet.governors = {"oracle"}; // needs foreknowledge
    oracle_fleet.fleetSizes = {4};
    EXPECT_EXIT(oracle_fleet.validate(), testing::ExitedWithCode(1),
                "single-server only");

    ExperimentSpec oracle_packing;
    oracle_packing.governors = {"oracle"};
    oracle_packing.dispatch = "packing";
    EXPECT_EXIT(oracle_packing.validate(),
                testing::ExitedWithCode(1), "static dispatch");

    ExperimentSpec disp;
    disp.dispatch = "no_such_dispatch";
    EXPECT_EXIT(disp.validate(), testing::ExitedWithCode(1),
                "unknown dispatch");
}

TEST(ExperimentSpec, RegistriesResolveEveryAdvertisedName)
{
    for (const auto &w : exp::workloadNames())
        EXPECT_EQ(exp::profileByName(w).name().empty(), false) << w;
    for (const auto &c : exp::configNames()) {
        const auto cfg = exp::configByName(c);
        EXPECT_GT(cfg.cores, 0u) << c;
    }
}

// ------------------------------------------------- seed derivation

TEST(ExperimentSpec, GridSeedsArePairwiseDistinct)
{
    ExperimentSpec spec;
    spec.workloads = {"memcached", "mysql", "kafka"};
    spec.configs = {"baseline", "aw", "c1c6", "c1only"};
    spec.qps = {1e3, 2e3, 3e3, 4e3, 5e3};
    spec.replicas = 10;

    std::set<std::uint64_t> seeds;
    for (const auto &pt : spec.expand())
        seeds.insert(pt.seed);
    EXPECT_EQ(seeds.size(), spec.gridSize());

    // Streams from a different base seed are (overwhelmingly)
    // disjoint too.
    spec.seed = 43;
    for (const auto &pt : spec.expand())
        seeds.insert(pt.seed);
    EXPECT_EQ(seeds.size(), 2 * spec.gridSize());
}

TEST(DeriveSeed, StreamsOfOneBaseAreInjective)
{
    // splitmix64 finalizes base + stream * odd-constant, which is
    // injective in the stream index: no two grid points of any
    // spec can ever share an RNG stream.
    std::set<std::uint64_t> seeds;
    for (std::uint64_t s = 0; s < 10000; ++s)
        seeds.insert(sim::deriveSeed(42, s));
    EXPECT_EQ(seeds.size(), 10000u);
}

// ------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 50 * (round + 1));
    }
}

TEST(ThreadPool, IdleWorkersStealQueuedWork)
{
    // 2 workers, 2 long tasks then many short ones: round-robin
    // submission puts half the short tasks behind each long task,
    // but stealing lets whichever worker frees up first drain the
    // backlog. The pool completing everything (quickly) under
    // wait() is the observable contract.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 200; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ZeroResolvesToHardwareConcurrency)
{
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(7), 7u);
}

// ------------------------------------------------------ SweepRunner

/** A cheap deterministic point function (no simulation). */
PointResult
fakePoint(const GridPoint &pt)
{
    PointResult res;
    res.point = pt;
    res.requests = pt.index + 1;
    res.powerW = static_cast<double>(pt.seed % 1000) / 10.0;
    res.extras.emplace_back("answer", 42.0);
    return res;
}

TEST(SweepRunner, FoldsResultsInGridOrder)
{
    ExperimentSpec spec;
    spec.qps = {1e3, 2e3, 3e3};
    spec.replicas = 4;
    const auto result = SweepRunner(3).run(spec, fakePoint);
    ASSERT_EQ(result.points.size(), 12u);
    for (std::size_t i = 0; i < result.points.size(); ++i) {
        EXPECT_EQ(result.points[i].point.index, i);
        EXPECT_EQ(result.points[i].requests, i + 1);
    }
}

TEST(SweepRunner, QueryLookupsSelectCoordinates)
{
    ExperimentSpec spec;
    spec.configs = {"baseline", "aw"};
    spec.qps = {1e3, 2e3};
    const auto result = SweepRunner(1).run(spec, fakePoint);

    EXPECT_EQ(result.select({.config = "aw"}).size(), 2u);
    EXPECT_EQ(result.select({}).size(), 4u);
    const auto &one = result.at({.config = "aw", .qps = 2e3});
    EXPECT_EQ(one.point.config, "aw");
    EXPECT_EQ(one.point.qps, 2e3);
}

TEST(SweepRunnerDeathTest, AmbiguousAtIsFatal)
{
    ExperimentSpec spec;
    spec.configs = {"baseline", "aw"};
    const auto result = SweepRunner(1).run(spec, fakePoint);
    EXPECT_EXIT(result.at({}), testing::ExitedWithCode(1),
                "matches");
}

// --------------------------------------------------- emit + schema

TEST(Emit, CsvSchemaIsStable)
{
    ExperimentSpec spec;
    const auto result = SweepRunner(1).run(spec, fakePoint);
    const auto csv = exp::toCsv(result);
    EXPECT_EQ(csv.substr(0, csv.find('\n')),
              "index,workload,config,governor,policy,variant,"
              "servers,qps,replica,seed,requests,achieved_qps,"
              "window_s,power_w,mj_per_request,avg_latency_us,"
              "p99_latency_us,deep_idle,min_server_deep,"
              "max_server_deep,busiest_share,res_c0,res_c1,res_c1e,"
              "res_c6a,res_c6ae,res_c6,answer");
    // Header + one line per point, newline-terminated.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              1 + result.points.size());
}

TEST(Emit, JsonCarriesEveryPoint)
{
    ExperimentSpec spec;
    spec.qps = {1e3, 2e3};
    const auto result = SweepRunner(1).run(spec, fakePoint);
    const auto json = exp::toJson(result);
    std::size_t occurrences = 0;
    std::size_t pos = 0;
    while ((pos = json.find("\"index\":", pos)) !=
           std::string::npos) {
        ++occurrences;
        pos += 1;
    }
    EXPECT_EQ(occurrences, result.points.size());
    EXPECT_NE(json.find("\"answer\": 42"), std::string::npos);
}

// ---------------------------------------------------- determinism

TEST(SweepDeterminism, FleetSweepIsBitIdenticalAcrossThreadCounts)
{
    // The acceptance-criteria property, shrunk to test size: the
    // PR-2 policy x config grid shape, two thread counts, identical
    // CSV bytes.
    ExperimentSpec spec;
    spec.name = "determinism";
    spec.configs = {"c1c6", "aw_c6a"};
    spec.policies = {"round-robin", "pack-first"};
    spec.fleetSizes = {2};
    spec.qps = {20e3};
    spec.seconds = 0.03;
    spec.warmupSeconds = 0.003;

    const auto serial = SweepRunner(1).run(spec);
    const auto parallel = SweepRunner(8).run(spec);
    EXPECT_EQ(exp::toCsv(serial), exp::toCsv(parallel));
    EXPECT_EQ(exp::toJson(serial), exp::toJson(parallel));
}

TEST(SweepDeterminism, SingleServerSweepIsBitIdentical)
{
    ExperimentSpec spec;
    spec.configs = {"baseline", "aw"};
    spec.qps = {30e3, 60e3};
    spec.seconds = 0.02;
    spec.warmupSeconds = 0.002;
    spec.replicas = 2;

    const auto a = SweepRunner(1).run(spec);
    const auto b = SweepRunner(5).run(spec);
    EXPECT_EQ(exp::toCsv(a), exp::toCsv(b));
}

TEST(SweepDeterminism, GovernorSweepIsBitIdenticalAcrossThreadCounts)
{
    // The acceptance-criteria grid, shrunk: every built-in governor
    // (including the clairvoyant oracle) over the default config,
    // identical artifact bytes at 1 and 8 threads.
    ExperimentSpec spec;
    spec.name = "governor-determinism";
    spec.configs = {"baseline"};
    spec.governors = {"menu", "teo", "ladder", "oracle",
                      "static:C6"};
    spec.qps = {30e3};
    spec.seconds = 0.03;
    spec.warmupSeconds = 0.003;

    const auto serial = SweepRunner(1).run(spec);
    const auto parallel = SweepRunner(8).run(spec);
    EXPECT_EQ(exp::toCsv(serial), exp::toCsv(parallel));
    EXPECT_EQ(exp::toJson(serial), exp::toJson(parallel));

    // And the axis actually changes behavior: always-C6 spends far
    // more time deep than menu at this load.
    EXPECT_GT(serial.at({.governor = "static:C6"}).deepIdleShare,
              serial.at({.governor = "menu"}).deepIdleShare + 0.2);
}

TEST(SweepDeterminism, ReplicasDifferButRerunsDoNot)
{
    ExperimentSpec spec;
    spec.configs = {"aw"};
    spec.qps = {40e3};
    spec.seconds = 0.02;
    spec.warmupSeconds = 0.002;
    spec.replicas = 2;

    const auto result = SweepRunner(2).run(spec);
    ASSERT_EQ(result.points.size(), 2u);
    // Distinct seed replicas see distinct arrival streams.
    EXPECT_NE(result.points[0].requests, 0u);
    EXPECT_NE(result.points[0].point.seed,
              result.points[1].point.seed);
    EXPECT_NE(result.points[0].requests,
              result.points[1].requests);

    // A rerun of the same spec reproduces the sweep exactly.
    const auto again = SweepRunner(2).run(spec);
    EXPECT_EQ(exp::toCsv(result), exp::toCsv(again));
}

} // namespace
