/**
 * @file
 * End-to-end wake-penalty tests: with a slow deterministic request
 * stream, every request finds its core parked in a known idle
 * state, so the observed latency must equal service time plus that
 * state's exit latency (the user-visible cost Table 1 quantifies).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cstate/governors.hh"
#include "server/core_sim.hh"
#include "workload/profiles.hh"
#include "workload/service.hh"

namespace {

using namespace aw;
using namespace aw::server;
using namespace aw::sim;
using cstate::CStateId;

/** A profile with fixed 10 us requests every 5 ms per core. */
workload::WorkloadProfile
probeProfile()
{
    auto service = std::make_shared<workload::FixedService>(
        fromUs(10.0), 0.5);
    return workload::WorkloadProfile(
        "probe", workload::ArrivalKind::Deterministic,
        std::move(service), 0.0, {200.0});
}

struct Harness
{
    explicit Harness(ServerConfig config)
        : cfg(std::move(config)), profile(probeProfile()),
          governor(cstate::makeGovernor(cfg.governor, cfg.cstates)),
          core(simr, cfg, *governor, /*freq_proto=*/nullptr,
               aw_model, profile, 200.0, 0,
               [this](const workload::Request &req) {
                   latencies.push_back(
                       toUs(req.serverLatency()));
               })
    {
    }

    double
    steadyAvgLatency()
    {
        core.start();
        simr.run(fromSec(0.5));
        // Skip the first few requests (cold predictor).
        double sum = 0.0;
        std::size_t n = 0;
        for (std::size_t i = 10; i < latencies.size(); ++i) {
            sum += latencies[i];
            ++n;
        }
        return n ? sum / n : 0.0;
    }

    Simulator simr;
    ServerConfig cfg;
    core::AwCoreModel aw_model;
    workload::WorkloadProfile profile;
    std::unique_ptr<cstate::GovernorPolicy> governor;
    std::vector<double> latencies;
    CoreSim core;
};

double
expectedExitUs(const ServerConfig &cfg, CStateId state)
{
    core::AwCoreModel model;
    auto caches = uarch::PrivateCaches::skylakeServer();
    const uarch::CoreContext context;
    const cstate::TransitionEngine engine(
        caches, context, model.controller().awLatencies());
    double f = cfg.pstates.base.hz();
    if (cfg.cstates.usesAgileWatts())
        f *= 0.99;
    return toUs(engine.latency(state, Frequency(f)).exit);
}

TEST(WakePenalty, C1OnlyConfigPaysC1Exit)
{
    Harness h(ServerConfig::ntNoC6NoC1e());
    const double avg = h.steadyAvgLatency();
    // 5 ms gaps -> deterministic predictor -> C1 (the only state).
    const double expected =
        10.0 + expectedExitUs(h.cfg, CStateId::C1);
    EXPECT_NEAR(avg, expected, 0.2);
}

TEST(WakePenalty, C1eConfigPaysDvfsRamp)
{
    Harness h(ServerConfig::ntNoC6());
    const double avg = h.steadyAvgLatency();
    // 5 ms >> 20 us target residency -> C1E.
    const double expected =
        10.0 + expectedExitUs(h.cfg, CStateId::C1E);
    EXPECT_NEAR(avg, expected, 0.2);
}

TEST(WakePenalty, BaselinePaysTheFullC6Exit)
{
    Harness h(ServerConfig::ntBaseline());
    const double avg = h.steadyAvgLatency();
    // 5 ms >> 600 us target residency -> C6: tens of microseconds
    // of wake penalty on every request.
    const double expected =
        10.0 + expectedExitUs(h.cfg, CStateId::C6);
    EXPECT_NEAR(avg, expected, 2.0);
    EXPECT_GT(avg, 30.0);
}

TEST(WakePenalty, AwC6aExitIsC1Class)
{
    Harness h(ServerConfig::ntAwNoC6NoC1e());
    const double avg = h.steadyAvgLatency();
    const double expected =
        10.0 * (1.0 + 0.5 * (1.0 / 0.99 - 1.0)) +
        expectedExitUs(h.cfg, CStateId::C6A);
    EXPECT_NEAR(avg, expected, 0.2);

    // And the AW penalty is within ~150 ns of the pure-C1 config's
    // (the paper's "C1-like latency at C6-like power").
    Harness c1(ServerConfig::ntNoC6NoC1e());
    EXPECT_NEAR(avg, c1.steadyAvgLatency(), 0.3);
}

TEST(WakePenalty, C6VsC6aGapIsTheHeadlineClaim)
{
    Harness legacy(ServerConfig::ntBaseline());
    Harness agile(ServerConfig::ntAwNoC6NoC1e());
    const double legacy_penalty =
        legacy.steadyAvgLatency() - 10.0;
    const double aw_penalty = agile.steadyAvgLatency() - 10.05;
    // Both sleep equally deep in power terms, but the wake penalty
    // differs by more than an order of magnitude.
    EXPECT_GT(legacy_penalty / aw_penalty, 10.0);
}

} // namespace
