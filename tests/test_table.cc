/**
 * @file
 * Unit tests for the table writer.
 */

#include <gtest/gtest.h>

#include "analysis/table.hh"

namespace {

using namespace aw::analysis;

TEST(Table, RendersAlignedColumns)
{
    TableWriter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name   value"), std::string::npos);
    EXPECT_NE(out.find("alpha  1"), std::string::npos);
    EXPECT_NE(out.find("b      22222"), std::string::npos);
}

TEST(Table, HeaderRuleSpansColumns)
{
    TableWriter t({"aa", "bb"});
    t.addRow({"1", "2"});
    const std::string out = t.render();
    // Rule line: width 2 + 2 + 2 = 6 dashes.
    EXPECT_NE(out.find("------\n"), std::string::npos);
}

TEST(Table, CountsRowsAndColumns)
{
    TableWriter t({"a", "b", "c"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.rows(), 1u);
}

TEST(TableDeathTest, RowArityMismatchPanics)
{
    TableWriter t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(TableDeathTest, EmptyHeaderPanics)
{
    EXPECT_DEATH(TableWriter({}), "column");
}

TEST(Table, CellFormats)
{
    EXPECT_EQ(cell("%.2f", 3.14159), "3.14");
    EXPECT_EQ(cell("%d%%", 42), "42%");
    EXPECT_EQ(cell("%s", "plain"), "plain");
}

TEST(Table, NoTrailingWhitespace)
{
    TableWriter t({"a", "b"});
    t.addRow({"xxxx", "y"});
    for (const auto &line : {t.render()}) {
        std::size_t pos = 0;
        while ((pos = line.find('\n', pos)) != std::string::npos) {
            if (pos > 0)
                EXPECT_NE(line[pos - 1], ' ');
            ++pos;
        }
    }
}

} // namespace
