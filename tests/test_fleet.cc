/**
 * @file
 * Unit tests for the cluster layer: routing policies, the diurnal
 * rate schedule, fleet aggregation/conservation and whole-fleet
 * determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/power_model.hh"
#include "cluster/diurnal.hh"
#include "cluster/fleet.hh"
#include "cluster/routing.hh"
#include "workload/profiles.hh"

namespace {

using namespace aw;
using namespace aw::cluster;

/** Scriptable FleetView for policy tests. */
class FakeView : public FleetView
{
  public:
    explicit FakeView(std::vector<unsigned> counts)
        : _counts(std::move(counts))
    {}

    std::size_t servers() const override { return _counts.size(); }
    unsigned outstanding(std::size_t i) const override
    {
        return _counts.at(i);
    }

    std::vector<unsigned> _counts;
};

// ---------------------------------------------------------- routing

TEST(Routing, FactoryBuildsEveryName)
{
    for (const auto &name : routingPolicyNames()) {
        auto policy = makeRoutingPolicy(name, 4);
        ASSERT_NE(policy, nullptr) << name;
        EXPECT_EQ(policy->name(), name);
    }
}

TEST(RoutingDeathTest, FactoryRejectsUnknownName)
{
    EXPECT_EXIT(makeRoutingPolicy("weighted-magic", 4),
                testing::ExitedWithCode(1), "unknown routing");
}

TEST(RoutingDeathTest, PackFirstRejectsZeroCapacity)
{
    EXPECT_EXIT(PackFirstRouting(0), testing::ExitedWithCode(1),
                "capacity");
}

TEST(Routing, RoundRobinCycles)
{
    RoundRobinRouting rr;
    FakeView view({0, 0, 0});
    sim::Rng rng(1);
    for (std::size_t i = 0; i < 9; ++i)
        EXPECT_EQ(rr.route(view, rng), i % 3);
}

TEST(Routing, RandomStaysInRangeAndCoversServers)
{
    RandomRouting random;
    FakeView view({0, 0, 0, 0});
    sim::Rng rng(7);
    std::vector<unsigned> hits(4, 0);
    for (int i = 0; i < 400; ++i) {
        const auto s = random.route(view, rng);
        ASSERT_LT(s, 4u);
        ++hits[s];
    }
    for (const auto h : hits)
        EXPECT_GT(h, 0u);
}

TEST(Routing, LeastOutstandingPicksMinTieLowestIndex)
{
    LeastOutstandingRouting lo;
    sim::Rng rng(1);
    FakeView view({3, 1, 2, 1});
    EXPECT_EQ(lo.route(view, rng), 1u); // min=1, first at index 1
    view._counts = {0, 0, 0};
    EXPECT_EQ(lo.route(view, rng), 0u); // all tied: lowest index
}

TEST(Routing, PackFirstFillsThenSpills)
{
    PackFirstRouting pack(2);
    sim::Rng rng(1);
    FakeView view({0, 0, 0});
    EXPECT_EQ(pack.route(view, rng), 0u); // headroom at 0
    view._counts = {1, 0, 0};
    EXPECT_EQ(pack.route(view, rng), 0u); // still under capacity
    view._counts = {2, 0, 0};
    EXPECT_EQ(pack.route(view, rng), 1u); // 0 full: spill to 1
    view._counts = {2, 2, 1};
    EXPECT_EQ(pack.route(view, rng), 2u);
    view._counts = {2, 3, 2};
    EXPECT_EQ(pack.route(view, rng), 0u); // all full: least loaded
}

// ---------------------------------------------------------- diurnal

TEST(Diurnal, FlatScheduleIsIdentity)
{
    const auto flat = RateSchedule::flat();
    EXPECT_TRUE(flat.isFlat());
    EXPECT_DOUBLE_EQ(flat.meanScale(), 1.0);
    EXPECT_DOUBLE_EQ(flat.scaleAt(0), 1.0);
    EXPECT_DOUBLE_EQ(flat.scaleAt(123456789), 1.0);
}

TEST(Diurnal, SinusoidalMeanScaleIsOne)
{
    const auto day =
        RateSchedule::sinusoidal(sim::fromSec(1.0), 0.8, 48);
    EXPECT_FALSE(day.isFlat());
    EXPECT_NEAR(day.meanScale(), 1.0, 1e-9);
    EXPECT_EQ(day.period(), sim::fromSec(1.0));
    // Peak in the first half, trough in the second.
    EXPECT_GT(day.scaleAt(sim::fromMs(250.0)), 1.5);
    EXPECT_LT(day.scaleAt(sim::fromMs(750.0)), 0.5);
}

TEST(Diurnal, PiecewiseScaleAtWalksSegmentsAndWraps)
{
    RateSchedule sched({{sim::fromMs(10.0), 2.0},
                        {sim::fromMs(30.0), 0.5}});
    EXPECT_EQ(sched.period(), sim::fromMs(40.0));
    EXPECT_DOUBLE_EQ(sched.scaleAt(0), 2.0);
    EXPECT_DOUBLE_EQ(sched.scaleAt(sim::fromMs(15.0)), 0.5);
    EXPECT_DOUBLE_EQ(sched.scaleAt(sim::fromMs(45.0)), 2.0); // wrap
    EXPECT_NEAR(sched.meanScale(), (2.0 * 10 + 0.5 * 30) / 40.0,
                1e-12);
}

TEST(DiurnalDeathTest, RejectsAllZeroSchedule)
{
    EXPECT_EXIT(RateSchedule({{sim::fromMs(1.0), 0.0}}),
                testing::ExitedWithCode(1), "all-zero");
}

TEST(Diurnal, ShapedStreamIntegratesToTheRequestedMeanRate)
{
    // A deterministic base at 10 K/s shaped by a strong sinusoid:
    // over whole periods the arrival count must match the base
    // rate (the schedule is normalized to mean multiplier 1).
    const double rate = 10e3;
    DiurnalArrivals shaped(
        std::make_unique<workload::DeterministicArrivals>(rate),
        RateSchedule::sinusoidal(sim::fromMs(100.0), 0.8));
    EXPECT_NEAR(shaped.ratePerSec(), rate, 1e-6);

    sim::Rng rng(1);
    const sim::Tick horizon = sim::fromSec(2.0); // 20 whole periods
    sim::Tick now = 0;
    std::uint64_t arrivals = 0;
    while (true) {
        now += shaped.nextGap(rng);
        if (now > horizon)
            break;
        ++arrivals;
    }
    EXPECT_NEAR(static_cast<double>(arrivals),
                rate * sim::toSec(horizon),
                0.01 * rate * sim::toSec(horizon));
}

TEST(Diurnal, LargeGapsFastForwardWholePeriods)
{
    // One arrival per 10 s over a 1 ms schedule: each gap spans
    // ~10000 periods and must resolve without walking every
    // segment (and, with the mean-1 normalization, span roughly
    // the base gap in wall time).
    DiurnalArrivals shaped(
        std::make_unique<workload::DeterministicArrivals>(0.1),
        RateSchedule::sinusoidal(sim::fromMs(1.0), 0.8));
    sim::Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const auto gap = shaped.nextGap(rng);
        EXPECT_NEAR(sim::toSec(gap), 10.0, 0.001);
    }
}

TEST(Diurnal, ShapedStreamModulatesInstantaneousRate)
{
    // Arrivals must cluster in the high-scale half of the period.
    const auto period = sim::fromMs(100.0);
    DiurnalArrivals shaped(
        std::make_unique<workload::DeterministicArrivals>(10e3),
        RateSchedule::sinusoidal(period, 0.9));
    sim::Rng rng(1);
    sim::Tick now = 0;
    std::uint64_t first_half = 0, second_half = 0;
    while (now < sim::fromSec(1.0)) {
        now += shaped.nextGap(rng);
        (now % period < period / 2 ? first_half : second_half)++;
    }
    EXPECT_GT(first_half, 2 * second_half);
}

// ------------------------------------------------------------ fleet

FleetConfig
smallFleet(const std::string &routing, unsigned servers = 4)
{
    FleetConfig fc;
    fc.servers = servers;
    fc.server = server::ServerConfig::legacyC1C6();
    fc.server.cores = 4;
    fc.server.idlePromotion = true;
    fc.routing = routing;
    return fc;
}

TEST(Fleet, ConservationAndAggregation)
{
    FleetSim fleet(smallFleet("round-robin"),
                   workload::WorkloadProfile::memcached(), 40e3);
    const auto r = fleet.run(sim::fromMs(100.0), sim::fromMs(10.0));

    ASSERT_EQ(r.perServer.size(), 4u);
    ASSERT_EQ(r.routedPerServer.size(), 4u);

    std::uint64_t completed = 0, routed = 0;
    double power = 0.0;
    for (unsigned i = 0; i < 4; ++i) {
        completed += r.perServer[i].requests;
        routed += r.routedPerServer[i];
        power += r.perServer[i].packagePower;
    }
    EXPECT_EQ(r.requests, completed);
    EXPECT_EQ(r.routed, routed);
    EXPECT_DOUBLE_EQ(r.fleetPower, power);
    EXPECT_GT(r.requests, 0u);
    EXPECT_NEAR(r.achievedQps, 40e3, 4e3);
    EXPECT_GT(r.p99LatencyUs, r.avgLatencyUs);
    // Round-robin splits arrivals exactly evenly (+-1).
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_NEAR(static_cast<double>(r.routedPerServer[i]),
                    static_cast<double>(r.routed) / 4.0, 1.0);
}

TEST(Fleet, ResidencySharesSumToOne)
{
    FleetSim fleet(smallFleet("least-outstanding"),
                   workload::WorkloadProfile::memcached(), 20e3);
    const auto r = fleet.run(sim::fromMs(80.0), sim::fromMs(8.0));
    EXPECT_NEAR(r.residency.totalShare(), 1.0, 1e-6);
    EXPECT_GE(r.maxServerDeepShare, r.minServerDeepShare);
    EXPECT_GE(r.deepIdleShare, r.minServerDeepShare - 1e-12);
    EXPECT_LE(r.deepIdleShare, r.maxServerDeepShare + 1e-12);
}

TEST(Fleet, RunsAreBitIdentical)
{
    const auto profile = workload::WorkloadProfile::memcached();
    auto once = [&](std::uint64_t seed) {
        auto fc = smallFleet("pack-first");
        fc.seed = seed;
        FleetSim fleet(fc, profile, 30e3);
        return fleet.run(sim::fromMs(60.0), sim::fromMs(6.0));
    };
    const auto a = once(7), b = once(7), c = once(8);

    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.routed, b.routed);
    EXPECT_EQ(a.routedPerServer, b.routedPerServer);
    EXPECT_DOUBLE_EQ(a.fleetPower, b.fleetPower);
    EXPECT_DOUBLE_EQ(a.avgLatencyUs, b.avgLatencyUs);
    EXPECT_DOUBLE_EQ(a.p99LatencyUs, b.p99LatencyUs);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(a.perServer[i].coreEnergy,
                         b.perServer[i].coreEnergy);
    }
    // A different top seed produces a different run.
    EXPECT_NE(a.perServer[0].coreEnergy, c.perServer[0].coreEnergy);
}

TEST(Fleet, PerServerStreamsDiffer)
{
    // Derived per-server seeds are pairwise distinct...
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 64; ++i)
        seeds.push_back(sim::deriveSeed(42, i));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());

    // ...and servers fed identical even splits still simulate
    // independent streams (service draws differ per server).
    FleetSim fleet(smallFleet("round-robin", 2),
                   workload::WorkloadProfile::memcached(), 20e3);
    const auto r = fleet.run(sim::fromMs(60.0), sim::fromMs(6.0));
    EXPECT_NE(r.perServer[0].coreEnergy, r.perServer[1].coreEnergy);
    EXPECT_NE(r.perServer[0].avgLatencyUs,
              r.perServer[1].avgLatencyUs);
}

TEST(Fleet, PackFirstConsolidatesAndDeepensSpareIdle)
{
    const auto profile = workload::WorkloadProfile::memcached();
    const double qps = 60e3;
    auto run = [&](const std::string &routing) {
        FleetSim fleet(smallFleet(routing, 8), profile, qps);
        return fleet.run(sim::fromMs(150.0), sim::fromMs(15.0));
    };
    const auto packed = run("pack-first");
    const auto spread = run("round-robin");

    // Same offered load, very different placement: pack-first
    // concentrates traffic and parks spare servers in deeper idle
    // than any round-robin server reaches.
    EXPECT_GT(packed.busiestShareOfLoad, 2.0 / 8);
    EXPECT_NEAR(spread.busiestShareOfLoad, 1.0 / 8, 0.01);
    EXPECT_GT(packed.maxServerDeepShare, spread.maxServerDeepShare);
    EXPECT_GT(packed.maxServerDeepShare, 0.95);
    // The spread in per-server deep residency is the signature.
    EXPECT_GT(packed.maxServerDeepShare - packed.minServerDeepShare,
              spread.maxServerDeepShare - spread.minServerDeepShare);
}

TEST(Fleet, TraceDrivenFleetRoutesEveryArrival)
{
    // 2 ms of arrivals every 50 us, looped over the horizon.
    workload::ArrivalTrace trace(
        std::vector<sim::Tick>(40, sim::fromUs(50.0)));
    auto fc = smallFleet("round-robin", 2);
    FleetSim fleet(fc, workload::WorkloadProfile::memcached(), 20e3);
    fleet.setArrivalTrace(trace);
    const auto r = fleet.run(sim::fromMs(20.0), 0);
    // 20 ms at one arrival per 50 us = ~400 arrivals.
    EXPECT_NEAR(static_cast<double>(r.routed), 400.0, 2.0);
    EXPECT_EQ(r.routed, r.routedPerServer[0] + r.routedPerServer[1]);
}

TEST(Fleet, IdlePromotionKeepsEnergyIdentity)
{
    // Low load on a legacy config triggers frequent C1 -> C6 tick
    // promotions; the energy meter must still agree with the
    // residency-weighted power sum (promotion entry flows are
    // accounted as C0 at active power like every other transition).
    server::ServerConfig cfg = server::ServerConfig::legacyC1C6();
    cfg.idlePromotion = true;
    server::ServerSim srv(
        cfg, workload::WorkloadProfile::memcached(), 5e3);
    const auto r = srv.run(sim::fromSec(0.4), sim::fromMs(40.0));
    EXPECT_GT(deepIdleShare(r.residency), 0.5); // promotions fired

    core::AwCoreModel aw_model;
    const analysis::CStatePowerModel model(
        server::StatePowers::fromModels(aw_model.ppa()));
    const double estimated = model.baselineAvgPower(r.residency);
    EXPECT_NEAR(estimated, r.avgCorePower, r.avgCorePower * 0.005);
}

TEST(FleetDeathTest, RejectsBadParameters)
{
    const auto profile = workload::WorkloadProfile::memcached();
    auto fc = smallFleet("round-robin");
    fc.servers = 0;
    EXPECT_EXIT(FleetSim(fc, profile, 1e3),
                testing::ExitedWithCode(1), "server");
    auto bad = smallFleet("warp-route");
    EXPECT_EXIT(FleetSim(bad, profile, 1e3),
                testing::ExitedWithCode(1), "unknown routing");
    EXPECT_EXIT(FleetSim(smallFleet("round-robin"), profile, 0.0),
                testing::ExitedWithCode(1), "positive");
}

} // namespace
