/**
 * @file
 * Unit tests for the power-capping and thermal-coupling subsystem:
 * the RC thermal model's closed form, the RAPL-style stepping
 * controller's escalation order and hysteresis, the fleet budget
 * planner's conservation law, the cap-aware headroom routing
 * policy, and the end-to-end identities ServerSim must satisfy
 * with the subsystem armed (generous caps are invisible, tight
 * caps throttle, the cap overrides the PM-QoS floor).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "cap/powercap.hh"
#include "cluster/diurnal.hh"
#include "cluster/fleet.hh"
#include "cluster/routing.hh"
#include "exp/spec.hh"
#include "server/server_sim.hh"
#include "sim/random.hh"

namespace {

using namespace aw;
using namespace aw::cap;

// ----------------------------------------------- RC thermal model

TEST(RcThermal, MatchesTheClosedFormSolution)
{
    ThermalParams p;
    p.ambientC = 45.0;
    p.resistanceCPerW = 0.6;
    p.capacitanceJPerC = 1.0; // tau = 0.6 s
    RcThermalModel model(p, 0);
    EXPECT_DOUBLE_EQ(model.temperature(), 45.0);

    // One step at constant 20 W: exponential relaxation toward the
    // 45 + 20 * 0.6 = 57 C steady state.
    const double watts = 20.0;
    const double dt = 0.25;
    const double tau = p.resistanceCPerW * p.capacitanceJPerC;
    const double tss = p.ambientC + watts * p.resistanceCPerW;
    const double expect =
        tss + (p.ambientC - tss) * std::exp(-dt / tau);
    EXPECT_NEAR(model.advance(sim::fromSec(dt), watts), expect,
                1e-9);
    EXPECT_DOUBLE_EQ(model.steadyStateC(watts), tss);
}

TEST(RcThermal, IsIndependentOfTheSamplingCadence)
{
    // The closed-form integration's point: chopping one constant-
    // power interval into many control samples must not move the
    // temperature (the trace depends on the power, never on how
    // often the loop looks).
    ThermalParams p;
    RcThermalModel coarse(p, 0);
    RcThermalModel fine(p, 0);
    const double watts = 30.0;
    coarse.advance(sim::fromSec(0.5), watts);
    for (int i = 1; i <= 500; ++i)
        fine.advance(sim::fromSec(0.001 * i), watts);
    EXPECT_NEAR(coarse.temperature(), fine.temperature(), 1e-9);
}

// ---------------------------------------------- stepping controller

CapConfig
cappedConfig(double watts)
{
    CapConfig cfg;
    cfg.capWatts = watts;
    return cfg;
}

TEST(PowerCapController, EscalatesLadderClampsBeforeForcedIdle)
{
    // 8 ladder levels: indices 1..7 walk the level cap down from 6
    // to 0 with no naps; indices 8..14 hold the floor and add duty
    // quanta of 1/8 up to 7/8 -- RAPL frequency clipping first,
    // intel_powerclamp idle injection only beyond the floor.
    PowerCapController ctl(cappedConfig(10.0), 8);
    EXPECT_EQ(ctl.maxThrottleIndex(), 14u);
    EXPECT_FALSE(ctl.decision().throttled);
    EXPECT_EQ(ctl.decision().levelCap, 7u);

    for (std::size_t i = 1; i <= 7; ++i) {
        const auto d = ctl.step(12.0, 0.0); // over budget
        EXPECT_TRUE(d.throttled);
        EXPECT_EQ(d.levelCap, 7 - i);
        EXPECT_DOUBLE_EQ(d.forcedIdleShare, 0.0);
    }
    for (std::size_t k = 1; k <= 7; ++k) {
        const auto d = ctl.step(12.0, 0.0);
        EXPECT_EQ(d.levelCap, 0u);
        EXPECT_DOUBLE_EQ(d.forcedIdleShare, k / 8.0);
    }
    // Saturated: further overshoot cannot escalate past 7/8 duty.
    EXPECT_EQ(ctl.step(12.0, 0.0), ctl.decision());
}

TEST(PowerCapController, HysteresisBandHoldsTheIndex)
{
    CapConfig cfg = cappedConfig(10.0);
    cfg.hysteresis = 0.05;
    PowerCapController ctl(cfg, 8);
    ctl.step(11.0, 0.0);
    EXPECT_EQ(ctl.throttleIndex(), 1u);
    // In the dead band [9.5, 10]: neither over nor comfortably
    // under, so the controller holds instead of oscillating.
    ctl.step(9.7, 0.0);
    EXPECT_EQ(ctl.throttleIndex(), 1u);
    ctl.step(9.4, 0.0);
    EXPECT_EQ(ctl.throttleIndex(), 0u);
}

TEST(PowerCapController, ThermalTripLatchesUntilRelease)
{
    CapConfig cfg = cappedConfig(10.0);
    cfg.thermalEnabled = true; // trip 85 C, release 82 C defaults
    PowerCapController ctl(cfg, 8);
    // Under budget but hot: the trip forces escalation anyway.
    ctl.step(5.0, 86.0);
    EXPECT_TRUE(ctl.thermalTripped());
    EXPECT_EQ(ctl.throttleIndex(), 1u);
    // Between release and trip the latch holds.
    ctl.step(5.0, 83.0);
    EXPECT_TRUE(ctl.thermalTripped());
    EXPECT_EQ(ctl.throttleIndex(), 2u);
    // At or below the release point it lets go and the under-budget
    // sample steps back down.
    ctl.step(5.0, 82.0);
    EXPECT_FALSE(ctl.thermalTripped());
    EXPECT_EQ(ctl.throttleIndex(), 1u);
}

TEST(PowerCapController, ZeroBudgetMeansUncappedUntilThermalTrip)
{
    CapConfig cfg;
    cfg.thermalEnabled = true;
    PowerCapController ctl(cfg, 8);
    // No watt budget: any measured power is fine while cool.
    ctl.step(500.0, 50.0);
    EXPECT_EQ(ctl.throttleIndex(), 0u);
    ctl.step(500.0, 86.0);
    EXPECT_EQ(ctl.throttleIndex(), 1u);
}

TEST(PowerCapController, SetBudgetRedistributionTakesEffect)
{
    PowerCapController ctl(cappedConfig(10.0), 8);
    ctl.step(12.0, 0.0);
    EXPECT_EQ(ctl.throttleIndex(), 1u);
    // The fleet planner hands this server more headroom: the same
    // measured power is now comfortably under budget.
    ctl.setBudget(20.0);
    EXPECT_DOUBLE_EQ(ctl.budget(), 20.0);
    ctl.step(12.0, 0.0);
    EXPECT_EQ(ctl.throttleIndex(), 0u);
}

TEST(CapConfigValidate, RejectsNonPhysicalParameters)
{
    CapConfig cfg;
    cfg.capWatts = -1.0;
    EXPECT_DEATH(cfg.validate(), "budget");

    cfg = cappedConfig(10.0);
    cfg.controlInterval = 0;
    EXPECT_DEATH(cfg.validate(), "control interval");

    cfg = cappedConfig(10.0);
    cfg.napPeriod = 0;
    EXPECT_DEATH(cfg.validate(), "nap period");

    cfg = cappedConfig(10.0);
    cfg.hysteresis = 1.0;
    EXPECT_DEATH(cfg.validate(), "hysteresis");

    cfg = CapConfig{};
    cfg.thermalEnabled = true;
    cfg.thermal.resistanceCPerW = 0.0;
    EXPECT_DEATH(cfg.validate(), "thermal R and C");

    cfg = CapConfig{};
    cfg.thermalEnabled = true;
    cfg.thermal.tripC = cfg.thermal.releaseC;
    EXPECT_DEATH(cfg.validate(), "release");

    cfg = CapConfig{};
    cfg.thermalEnabled = true;
    cfg.thermal.tripC = 50.0;
    cfg.thermal.releaseC = 48.0;
    cfg.thermal.ambientC = 60.0;
    EXPECT_DEATH(cfg.validate(), "ambient");
}

// --------------------------------------------- fleet budget planner

TEST(FleetBudgetPlanner, ZeroDemandParksEveryServerAtTheBase)
{
    const FleetBudgetPlanner planner(20.0, 4);
    EXPECT_DOUBLE_EQ(planner.nominalWatts(), 20.0);
    EXPECT_DOUBLE_EQ(planner.baseWatts(),
                     20.0 * FleetBudgetPlanner::kBaseShare);
    // All-idle epoch: every server -- including never-routed spares
    // -- gets the identical base budget, which is what keeps the
    // homogeneous-idle fast path's slot reuse valid.
    const auto budgets = planner.epochBudgets({0, 0, 0, 0});
    for (const auto b : budgets)
        EXPECT_DOUBLE_EQ(b, planner.baseWatts());
}

TEST(FleetBudgetPlanner, ConservesTheFleetBudget)
{
    const FleetBudgetPlanner planner(20.0, 4);
    const auto budgets = planner.epochBudgets({3, 1, 0, 0});
    // Pool = 4 * (20 - 12) = 32 W dealt by demand share.
    EXPECT_DOUBLE_EQ(budgets[0], 12.0 + 32.0 * 3.0 / 4.0);
    EXPECT_DOUBLE_EQ(budgets[1], 12.0 + 32.0 * 1.0 / 4.0);
    EXPECT_DOUBLE_EQ(budgets[2], 12.0);
    EXPECT_DOUBLE_EQ(budgets[3], 12.0);
    const double total =
        std::accumulate(budgets.begin(), budgets.end(), 0.0);
    EXPECT_NEAR(total, 4 * 20.0, 1e-9);
}

TEST(FleetBudgetPlanner, DiesOnBadConstructionOrMismatchedCounts)
{
    EXPECT_DEATH(FleetBudgetPlanner(0.0, 4), "positive");
    EXPECT_DEATH(FleetBudgetPlanner(20.0, 0), "at least one");
    const FleetBudgetPlanner planner(20.0, 4);
    EXPECT_DEATH(planner.epochBudgets({1, 2}), "routed counts");
}

// ------------------------------------------ route-to-headroom

/** A scripted balancer view for routing-policy unit tests. */
class FakeView final : public cluster::FleetView
{
  public:
    std::vector<unsigned> out;
    std::vector<double> head; //!< empty = use the base default

    std::size_t servers() const override { return out.size(); }
    unsigned outstanding(std::size_t i) const override
    {
        return out[i];
    }
    double headroomWatts(std::size_t i) const override
    {
        return head.empty() ? cluster::FleetView::headroomWatts(i)
                            : head[i];
    }
};

TEST(RouteToHeadroom, PicksTheServerWithTheMostWattHeadroom)
{
    auto policy = cluster::makeRoutingPolicy("route-to-headroom", 0);
    ASSERT_STREQ(policy->name(), "route-to-headroom");
    sim::Rng rng(1);
    FakeView view;
    view.out = {0, 0, 0};
    view.head = {4.0, 9.5, 2.0};
    EXPECT_EQ(policy->route(view, rng), 1u);
    // Ties break to the lowest index (determinism contract).
    view.head = {7.0, 7.0, 3.0};
    EXPECT_EQ(policy->route(view, rng), 0u);
}

TEST(RouteToHeadroom, DegradesToLeastOutstandingWithoutBudgets)
{
    // Uncapped views answer -outstanding, so headroom routing is
    // exactly least-outstanding on them.
    auto headroom =
        cluster::makeRoutingPolicy("route-to-headroom", 0);
    auto least =
        cluster::makeRoutingPolicy("least-outstanding", 0);
    sim::Rng rng(1);
    FakeView view;
    view.out = {5, 2, 7, 2};
    EXPECT_EQ(headroom->route(view, rng), least->route(view, rng));
    EXPECT_EQ(headroom->route(view, rng), 1u);
}

// ----------------------------------------- ServerSim end to end

server::ServerConfig
awConfig()
{
    auto cfg = exp::configByName("aw");
    cfg.seed = 42;
    return cfg;
}

TEST(CapServerSim, GenerousCapReproducesTheUncappedRun)
{
    // A budget the server never reaches must be invisible: the
    // control loop samples but never throttles, and sampling draws
    // no randomness and perturbs no core, so the run's results are
    // bit-identical to the uncapped reference.
    const auto profile = exp::profileByName("memcached");
    server::ServerSim plain(awConfig(), profile, 200e3);
    const auto base = plain.run(sim::fromSec(0.2), sim::fromSec(0.02));

    auto cfg = awConfig();
    cfg.cap.capWatts = 1000.0;
    server::ServerSim capped(cfg, profile, 200e3);
    const auto r = capped.run(sim::fromSec(0.2), sim::fromSec(0.02));

    EXPECT_EQ(r.requests, base.requests);
    EXPECT_DOUBLE_EQ(r.packagePower, base.packagePower);
    EXPECT_DOUBLE_EQ(r.p99LatencyUs, base.p99LatencyUs);
    EXPECT_DOUBLE_EQ(r.capThrottleShare, 0.0);
    EXPECT_EQ(r.forcedIdleNaps, 0u);
}

TEST(CapServerSim, TightCapThrottlesAndForcesNaps)
{
    auto cfg = awConfig();
    cfg.cap.capWatts = 12.0;
    const auto profile = exp::profileByName("memcached");
    server::ServerSim srv(cfg, profile, 200e3);
    const auto r = srv.run(sim::fromSec(0.2), sim::fromSec(0.02));

    server::ServerSim plain(awConfig(), profile, 200e3);
    const auto base = plain.run(sim::fromSec(0.2), sim::fromSec(0.02));

    EXPECT_GT(r.capThrottleShare, 0.5);
    EXPECT_GT(r.forcedIdleNaps, 0u);
    EXPECT_LT(r.packagePower, base.packagePower);
    EXPECT_GT(r.p99LatencyUs, base.p99LatencyUs);
}

TEST(CapServerSim, CapOverridesThePmQosFrequencyFloor)
{
    // Precedence cap -> QoS -> governor: an 8 us SLO floors the
    // DVFS ladder at the top, but the cap is a safety limit and
    // clamps straight through it -- the capped run's power must
    // fall well below what the floored ladder would draw.
    const auto profile = exp::profileByName("memcached");
    auto cfg = awConfig();
    cfg.freqPolicy = "performance";
    cfg.sloUs = 8.0;
    server::ServerSim floored(cfg, profile, 200e3);
    const auto base =
        floored.run(sim::fromSec(0.2), sim::fromSec(0.02));

    cfg.cap.capWatts = 12.0;
    server::ServerSim capped(cfg, profile, 200e3);
    const auto r = capped.run(sim::fromSec(0.2), sim::fromSec(0.02));

    EXPECT_GT(r.capThrottleShare, 0.5);
    EXPECT_LT(r.packagePower, 0.8 * base.packagePower);
}

TEST(CapServerSim, ThermalOnlyModeTripsAndRecordsTheTemperature)
{
    // No watt budget at all: a low trip point alone must engage the
    // same throttle ladder once the RC model crosses it.
    auto cfg = awConfig();
    cfg.cap.thermalEnabled = true;
    cfg.cap.thermal.tripC = 50.0;
    cfg.cap.thermal.releaseC = 48.0;
    cfg.cap.thermal.capacitanceJPerC = 0.1; // fast tau: 60 ms
    const auto profile = exp::profileByName("memcached");
    server::ServerSim srv(cfg, profile, 200e3);
    const auto r = srv.run(sim::fromSec(0.2), sim::fromSec(0.02));
    EXPECT_GE(r.maxTempC, 50.0);
    EXPECT_GT(r.capThrottleShare, 0.0);
}

// ------------------------------------------- fleet redistribution

TEST(CapFleet, BudgetSchedulesAreFleetThreadInvariant)
{
    // The planner runs in the serial balancer pass, so per-server
    // budget schedules -- and everything downstream of them -- must
    // be bit-identical at any fleetThreads.
    cluster::FleetConfig fc;
    fc.servers = 4;
    fc.server = awConfig();
    fc.server.idlePromotion = true;
    fc.server.cap.capWatts = 16.0;
    fc.routing = "route-to-headroom";
    fc.seed = 42;
    fc.epochSeconds = 0.05;
    fc.schedule =
        cluster::RateSchedule::flashCrowd(sim::fromSec(0.2), 3.0);
    const auto profile = exp::profileByName("memcached");

    cluster::FleetSim serial(fc, profile, 150e3);
    const auto a = serial.run(sim::fromSec(0.2), sim::fromSec(0.02));
    fc.fleetThreads = 8;
    cluster::FleetSim parallel(fc, profile, 150e3);
    const auto b =
        parallel.run(sim::fromSec(0.2), sim::fromSec(0.02));

    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.fleetPower, b.fleetPower);
    EXPECT_DOUBLE_EQ(a.p99LatencyUs, b.p99LatencyUs);
    EXPECT_DOUBLE_EQ(a.capThrottleShare, b.capThrottleShare);
    EXPECT_EQ(a.forcedIdleNaps, b.forcedIdleNaps);
    EXPECT_GT(a.capThrottleShare, 0.0);
}

TEST(CapFleet, RedistributionShiftsHeadroomTowardTheLoad)
{
    // A skew-routed capped flash crowd: with redistribution the
    // loaded servers run on bigger budgets (paid for by the idle
    // spares' headroom), so the fleet clears the surge with a
    // better tail than rigid per-server caps allow.
    cluster::FleetConfig fc;
    fc.servers = 4;
    fc.server = awConfig();
    fc.server.idlePromotion = true;
    fc.server.cap.capWatts = 14.0;
    fc.routing = "pack-first";
    fc.seed = 42;
    fc.epochSeconds = 0.02;
    fc.schedule =
        cluster::RateSchedule::flashCrowd(sim::fromSec(0.3), 3.0);
    const auto profile = exp::profileByName("memcached");

    cluster::FleetSim with(fc, profile, 150e3);
    const auto a = with.run(sim::fromSec(0.3), sim::fromSec(0.03));
    fc.capRedistribution = false;
    cluster::FleetSim without(fc, profile, 150e3);
    const auto b =
        without.run(sim::fromSec(0.3), sim::fromSec(0.03));

    EXPECT_LT(a.p99LatencyUs, b.p99LatencyUs);
}

} // namespace
