/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/event_queue.hh"

namespace {

using namespace aw::sim;

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30, [&] { fired.push_back(3); });
    q.schedule(10, [&] { fired.push_back(1); });
    q.schedule(20, [&] { fired.push_back(2); });
    while (!q.empty())
        q.pop().cb();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 5; ++i)
        q.schedule(42, [&fired, i] { fired.push_back(i); });
    while (!q.empty())
        q.pop().cb();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(10, [&] { fired = true; });
    q.schedule(20, [] {});
    q.cancel(id);
    while (!q.empty())
        q.pop().cb();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    q.pop().cb();
    q.cancel(id); // must not disturb anything
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.cancel(999999);
    q.cancel(kInvalidEventId);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PendingTracksLifecycle)
{
    EventQueue q;
    const EventId id = q.schedule(5, [] {});
    EXPECT_TRUE(q.pending(id));
    q.pop();
    EXPECT_FALSE(q.pending(id));
}

TEST(EventQueue, NextTickSkipsCancelled)
{
    EventQueue q;
    const EventId early = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(early);
    EXPECT_EQ(q.nextTick(), Tick(20));
}

TEST(EventQueue, EmptyQueueNextTickIsMax)
{
    EventQueue q;
    EXPECT_EQ(q.nextTick(), kMaxTick);
    EXPECT_TRUE(q.empty());
}

TEST(Simulator, RunsToCompletion)
{
    Simulator simr;
    int count = 0;
    simr.schedule(100, [&] { ++count; });
    simr.schedule(200, [&] { ++count; });
    const Tick end = simr.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(end, Tick(200));
    EXPECT_EQ(simr.eventsExecuted(), 2u);
}

TEST(Simulator, HorizonStopsExecution)
{
    Simulator simr;
    int count = 0;
    simr.schedule(100, [&] { ++count; });
    simr.schedule(200, [&] { ++count; });
    simr.schedule(300, [&] { ++count; });
    const Tick end = simr.run(250);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(end, Tick(250));
    // Resume to drain the rest.
    simr.run();
    EXPECT_EQ(count, 3);
}

TEST(Simulator, EventAtHorizonRuns)
{
    Simulator simr;
    bool fired = false;
    simr.schedule(100, [&] { fired = true; });
    simr.run(100);
    EXPECT_TRUE(fired);
}

TEST(Simulator, ScheduleInIsRelative)
{
    Simulator simr;
    Tick fired_at = 0;
    simr.schedule(50, [&] {
        simr.scheduleIn(25, [&] { fired_at = simr.now(); });
    });
    simr.run();
    EXPECT_EQ(fired_at, Tick(75));
}

TEST(Simulator, NowAdvancesWithEvents)
{
    Simulator simr;
    std::vector<Tick> seen;
    simr.schedule(10, [&] { seen.push_back(simr.now()); });
    simr.schedule(30, [&] { seen.push_back(simr.now()); });
    simr.run();
    EXPECT_EQ(seen, (std::vector<Tick>{10, 30}));
}

TEST(Simulator, CascadedEvents)
{
    // Events scheduling further events, like the core FSM does.
    Simulator simr;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 10)
            simr.scheduleIn(5, chain);
    };
    simr.scheduleIn(5, chain);
    simr.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(simr.now(), Tick(50));
}

TEST(SimulatorDeathTest, SchedulingInThePastPanics)
{
    Simulator simr;
    simr.schedule(100, [] {});
    simr.run();
    EXPECT_DEATH(simr.schedule(50, [] {}), "past");
}

TEST(Simulator, EmptyRunWithHorizonAdvancesTime)
{
    Simulator simr;
    const Tick end = simr.run(1234);
    EXPECT_EQ(end, Tick(1234));
    EXPECT_EQ(simr.now(), Tick(1234));
}

TEST(Simulator, CancelThroughSimulator)
{
    Simulator simr;
    bool fired = false;
    const EventId id = simr.schedule(10, [&] { fired = true; });
    simr.cancel(id);
    simr.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(simr.idle());
}

} // namespace
