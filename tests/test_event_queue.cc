/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace {

using namespace aw::sim;

TEST(EventQueue, OrdersByTime)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(30, [&] { fired.push_back(3); });
    q.schedule(10, [&] { fired.push_back(1); });
    q.schedule(20, [&] { fired.push_back(2); });
    while (!q.empty())
        q.pop().cb();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 5; ++i)
        q.schedule(42, [&fired, i] { fired.push_back(i); });
    while (!q.empty())
        q.pop().cb();
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(10, [&] { fired = true; });
    q.schedule(20, [] {});
    q.cancel(id);
    while (!q.empty())
        q.pop().cb();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    q.pop().cb();
    q.cancel(id); // must not disturb anything
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.cancel(999999);
    q.cancel(kInvalidEventId);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PendingTracksLifecycle)
{
    EventQueue q;
    const EventId id = q.schedule(5, [] {});
    EXPECT_TRUE(q.pending(id));
    q.pop();
    EXPECT_FALSE(q.pending(id));
}

TEST(EventQueue, NextTickSkipsCancelled)
{
    EventQueue q;
    const EventId early = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(early);
    EXPECT_EQ(q.nextTick(), Tick(20));
}

TEST(EventQueue, EmptyQueueNextTickIsMax)
{
    EventQueue q;
    EXPECT_EQ(q.nextTick(), kMaxTick);
    EXPECT_TRUE(q.empty());
}

TEST(Simulator, RunsToCompletion)
{
    Simulator simr;
    int count = 0;
    simr.schedule(100, [&] { ++count; });
    simr.schedule(200, [&] { ++count; });
    const Tick end = simr.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(end, Tick(200));
    EXPECT_EQ(simr.eventsExecuted(), 2u);
}

TEST(Simulator, HorizonStopsExecution)
{
    Simulator simr;
    int count = 0;
    simr.schedule(100, [&] { ++count; });
    simr.schedule(200, [&] { ++count; });
    simr.schedule(300, [&] { ++count; });
    const Tick end = simr.run(250);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(end, Tick(250));
    // Resume to drain the rest.
    simr.run();
    EXPECT_EQ(count, 3);
}

TEST(Simulator, EventAtHorizonRuns)
{
    Simulator simr;
    bool fired = false;
    simr.schedule(100, [&] { fired = true; });
    simr.run(100);
    EXPECT_TRUE(fired);
}

TEST(Simulator, ScheduleInIsRelative)
{
    Simulator simr;
    Tick fired_at = 0;
    simr.schedule(50, [&] {
        simr.scheduleIn(25, [&] { fired_at = simr.now(); });
    });
    simr.run();
    EXPECT_EQ(fired_at, Tick(75));
}

TEST(Simulator, NowAdvancesWithEvents)
{
    Simulator simr;
    std::vector<Tick> seen;
    simr.schedule(10, [&] { seen.push_back(simr.now()); });
    simr.schedule(30, [&] { seen.push_back(simr.now()); });
    simr.run();
    EXPECT_EQ(seen, (std::vector<Tick>{10, 30}));
}

TEST(Simulator, CascadedEvents)
{
    // Events scheduling further events, like the core FSM does.
    Simulator simr;
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 10)
            simr.scheduleIn(5, chain);
    };
    simr.scheduleIn(5, chain);
    simr.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(simr.now(), Tick(50));
}

TEST(SimulatorDeathTest, SchedulingInThePastPanics)
{
    Simulator simr;
    simr.schedule(100, [] {});
    simr.run();
    EXPECT_DEATH(simr.schedule(50, [] {}), "past");
}

TEST(Simulator, EmptyRunWithHorizonAdvancesTime)
{
    Simulator simr;
    const Tick end = simr.run(1234);
    EXPECT_EQ(end, Tick(1234));
    EXPECT_EQ(simr.now(), Tick(1234));
}

TEST(Simulator, CancelThroughSimulator)
{
    Simulator simr;
    bool fired = false;
    const EventId id = simr.schedule(10, [&] { fired = true; });
    simr.cancel(id);
    simr.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(simr.idle());
}

// Regression suite for the structural same-tick FIFO guarantee: the
// sequence-number tie-break must hold through cancellations, slot
// reuse and interleaved scheduling, not just in the happy path.

TEST(EventQueueFifo, SameTickFifoSurvivesInterleavedCancels)
{
    EventQueue q;
    std::vector<int> fired;
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(q.schedule(7, [&fired, i] {
            fired.push_back(i);
        }));
    // Cancel a prefix, middle and suffix entry; order of the
    // survivors must be untouched.
    q.cancel(ids[0]);
    q.cancel(ids[3]);
    q.cancel(ids[7]);
    while (!q.empty())
        q.pop().cb();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 5, 6}));
}

TEST(EventQueueFifo, SameTickFifoSurvivesSlotReuse)
{
    EventQueue q;
    std::vector<int> fired;
    // Churn slots first so later same-tick events land in recycled
    // slots in scrambled slot order.
    for (int i = 0; i < 5; ++i)
        q.schedule(1, [] {});
    while (!q.empty())
        q.pop().cb();
    for (int i = 0; i < 10; ++i)
        q.schedule(99, [&fired, i] { fired.push_back(i); });
    while (!q.empty())
        q.pop().cb();
    EXPECT_EQ(fired,
              (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(EventQueueFifo, LaterTickScheduledFirstStillFiresLater)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(50, [&] { fired.push_back(50); });
    q.schedule(10, [&] { fired.push_back(10); });
    q.schedule(50, [&] { fired.push_back(51); });
    q.schedule(10, [&] { fired.push_back(11); });
    while (!q.empty())
        q.pop().cb();
    EXPECT_EQ(fired, (std::vector<int>{10, 11, 50, 51}));
}

TEST(EventQueueFifo, MixedTickStressMatchesReferenceOrder)
{
    // Deterministic pseudo-random schedule/pop interleavings vs a
    // reference executed order: (when, schedule index) ascending.
    EventQueue q;
    std::uint64_t lcg = 12345;
    auto rnd = [&lcg](std::uint64_t mod) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return (lcg >> 33) % mod;
    };
    struct Ref
    {
        Tick when;
        int seq;
    };
    std::vector<Ref> expected;
    std::vector<std::pair<Tick, int>> fired;
    int seq = 0;
    for (int round = 0; round < 50; ++round) {
        const int burst = 1 + static_cast<int>(rnd(6));
        for (int i = 0; i < burst; ++i) {
            const Tick when = 1000 + rnd(8); // heavy tick ties
            const int s = seq++;
            expected.push_back(Ref{when, s});
            q.schedule(when, [&fired, when, s] {
                fired.emplace_back(when, s);
            });
        }
    }
    while (!q.empty())
        q.pop().cb();
    std::stable_sort(expected.begin(), expected.end(),
                     [](const Ref &a, const Ref &b) {
                         if (a.when != b.when)
                             return a.when < b.when;
                         return a.seq < b.seq;
                     });
    ASSERT_EQ(fired.size(), expected.size());
    for (std::size_t i = 0; i < fired.size(); ++i) {
        EXPECT_EQ(fired[i].first, expected[i].when) << "at " << i;
        EXPECT_EQ(fired[i].second, expected[i].seq) << "at " << i;
    }
}

TEST(EventQueueFifo, PendingIsPerScheduleNotPerSlot)
{
    EventQueue q;
    const EventId first = q.schedule(5, [] {});
    q.pop();
    EXPECT_FALSE(q.pending(first));
    // The recycled slot's new event must not resurrect the old id.
    const EventId second = q.schedule(6, [] {});
    EXPECT_NE(first, second);
    EXPECT_FALSE(q.pending(first));
    EXPECT_TRUE(q.pending(second));
    q.cancel(first); // stale id: must not disturb the live event
    EXPECT_TRUE(q.pending(second));
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueFifo, CancelDestroysTheCallbackImmediately)
{
    // The closure's captures must be released at cancel() time, not
    // when the stale heap key eventually surfaces.
    auto token = std::make_shared<int>(42);
    std::weak_ptr<int> watch = token;
    EventQueue q;
    const EventId id = q.schedule(10, [held = std::move(token)] {
        (void)held;
    });
    q.schedule(20, [] {});
    EXPECT_FALSE(watch.expired());
    q.cancel(id);
    EXPECT_TRUE(watch.expired());
    while (!q.empty())
        q.pop().cb();
}

TEST(EventQueueFifo, LargeCaptureFallsBackToHeapCorrectly)
{
    // Captures beyond the inline buffer take the heap path; the
    // behavior contract is identical.
    EventQueue q;
    std::array<std::uint64_t, 32> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    q.schedule(4, [payload, &sum] {
        for (const auto v : payload)
            sum += v;
    });
    q.pop().cb();
    EXPECT_EQ(sum, 32u * 0 + [&] {
        std::uint64_t s = 0;
        for (std::size_t i = 0; i < 32; ++i)
            s += i * 3 + 1;
        return s;
    }());
}

TEST(EventQueueFifo, SelfCancelDuringCallbackIsANoop)
{
    Simulator simr;
    int fired = 0;
    EventId self = kInvalidEventId;
    self = simr.schedule(10, [&] {
        ++fired;
        simr.cancel(self); // already firing: must be harmless
    });
    simr.schedule(20, [&] { ++fired; });
    simr.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(simr.idle());
}

} // namespace
