/**
 * @file
 * awperf coverage: scenario-registry round-trips, the aw-perf/1
 * JSON schema contract, and the check_perf.py gate parsing the
 * harness's own output (both the accepting and the rejecting
 * directions). The binary path comes from the AWPERF_BIN compile
 * definition; the gate script from AW_CHECK_PERF_PY.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/perf.hh"

namespace {

using namespace aw;

#ifndef AWPERF_BIN
#define AWPERF_BIN "./awperf"
#endif
#ifndef AW_CHECK_PERF_PY
#define AW_CHECK_PERF_PY "scripts/check_perf.py"
#endif

/** Run a command, capture stdout+stderr, return (exit_code, output). */
std::pair<int, std::string>
runCommand(const std::string &cmd)
{
    std::array<char, 4096> buf{};
    std::string out;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe)
        return {-1, ""};
    while (fgets(buf.data(), buf.size(), pipe))
        out += buf.data();
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

bool
havePython3()
{
    return runCommand("python3 -c 'pass'").first == 0;
}

std::string
tmpPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------- registry (library)

TEST(PerfRegistry, PinnedScenariosPresentInOrder)
{
    const auto &scenarios = exp::perfScenarios();
    ASSERT_EQ(scenarios.size(), 8u);
    EXPECT_EQ(scenarios[0].name, "single_memcached");
    EXPECT_EQ(scenarios[1].name, "fleet_sweep");
    EXPECT_EQ(scenarios[2].name, "governors_axis");
    EXPECT_EQ(scenarios[3].name, "fleet_sweep_timeline");
    EXPECT_EQ(scenarios[4].name, "fleet_sweep_trace");
    EXPECT_EQ(scenarios[5].name, "fleet_sweep_dvfs");
    EXPECT_EQ(scenarios[6].name, "fleet_sweep_cap");
    EXPECT_EQ(scenarios[7].name, "fleet_10k");
    for (const auto &s : scenarios) {
        EXPECT_FALSE(s.description.empty());
        EXPECT_TRUE(static_cast<bool>(s.run));
    }
}

TEST(PerfRegistry, FindRoundTripsEveryName)
{
    for (const auto &s : exp::perfScenarios()) {
        const auto *found = exp::findPerfScenario(s.name);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found, &s);
        EXPECT_EQ(found->description, s.description);
    }
    EXPECT_EQ(exp::findPerfScenario("no_such_scenario"), nullptr);
}

TEST(PerfRegistry, MeasurementsCarryDeterministicTotals)
{
    // Scenario totals are simulation results: two measurements of
    // the same scenario must agree exactly (only wall time varies).
    const auto *s = exp::findPerfScenario("governors_axis");
    ASSERT_NE(s, nullptr);
    const auto a = exp::measurePerfScenario(*s, 1);
    const auto b = exp::measurePerfScenario(*s, 1);
    EXPECT_EQ(a.totals.events, b.totals.events);
    EXPECT_EQ(a.totals.requests, b.totals.requests);
    EXPECT_DOUBLE_EQ(a.totals.simSeconds, b.totals.simSeconds);
    EXPECT_GT(a.totals.events, 0u);
    EXPECT_GT(a.totals.requests, 0u);
    EXPECT_GT(a.wallSeconds, 0.0);
    // 12 grid cells x 1 server x 0.33 s simulated.
    EXPECT_DOUBLE_EQ(a.totals.simSeconds, 12 * 0.33);
}

TEST(PerfJson, SchemaCarriesEveryDocumentedKey)
{
    exp::PerfMeasurement m;
    m.name = "single_memcached";
    m.repeat = 3;
    m.wallSeconds = 0.5;
    m.totals.simSeconds = 1.1;
    m.totals.events = 1000;
    m.totals.requests = 200;
    const std::string json = exp::perfToJson({m});
    for (const char *key :
         {"\"schema\": \"aw-perf/1\"", "\"generator\": \"awperf\"",
          "\"scenarios\"", "\"name\"", "\"repeat\"", "\"wall_s\"",
          "\"sim_s\"", "\"events\"", "\"requests\"",
          "\"sim_per_wall\"", "\"events_per_s\"",
          "\"requests_per_s\""}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "missing " << key << " in\n"
            << json;
    }
}

TEST(PerfRegistry, TimelineScenarioExecutesTheSameEventStream)
{
    // The sampler's passivity, pinned at the perf layer: the
    // timeline variant of the fleet sweep must execute exactly the
    // same number of kernel events and complete exactly the same
    // requests as the plain sweep -- the only thing telemetry may
    // cost is wall clock, and that cost is what the perf baseline
    // gates.
    const auto *plain = exp::findPerfScenario("fleet_sweep");
    const auto *timeline =
        exp::findPerfScenario("fleet_sweep_timeline");
    ASSERT_NE(plain, nullptr);
    ASSERT_NE(timeline, nullptr);
    const auto a = exp::measurePerfScenario(*plain, 1);
    const auto b = exp::measurePerfScenario(*timeline, 1);
    EXPECT_EQ(a.totals.events, b.totals.events);
    EXPECT_EQ(a.totals.requests, b.totals.requests);
    EXPECT_DOUBLE_EQ(a.totals.simSeconds, b.totals.simSeconds);
}

TEST(PerfRegistry, TraceScenarioExecutesTheSameEventStream)
{
    // Same passivity pin for the request tracer: fleet_sweep_trace
    // must execute exactly the same kernel events and complete
    // exactly the same requests as the plain sweep, or the tracer
    // has perturbed the simulation it claims merely to observe.
    const auto *plain = exp::findPerfScenario("fleet_sweep");
    const auto *trace = exp::findPerfScenario("fleet_sweep_trace");
    ASSERT_NE(plain, nullptr);
    ASSERT_NE(trace, nullptr);
    const auto a = exp::measurePerfScenario(*plain, 1);
    const auto b = exp::measurePerfScenario(*trace, 1);
    EXPECT_EQ(a.totals.events, b.totals.events);
    EXPECT_EQ(a.totals.requests, b.totals.requests);
    EXPECT_DOUBLE_EQ(a.totals.simSeconds, b.totals.simSeconds);
}

// ------------------------------------------------------ CLI (tool)

TEST(AwperfTool, HelpAndListExitZero)
{
    const auto help =
        runCommand(std::string(AWPERF_BIN) + " --help");
    EXPECT_EQ(help.first, 0);
    EXPECT_NE(help.second.find("--json"), std::string::npos);

    const auto list =
        runCommand(std::string(AWPERF_BIN) + " --list");
    EXPECT_EQ(list.first, 0);
    for (const auto &s : exp::perfScenarios())
        EXPECT_NE(list.second.find(s.name), std::string::npos);
}

TEST(AwperfTool, UnknownScenarioFailsWithKnownList)
{
    const auto [code, out] = runCommand(
        std::string(AWPERF_BIN) + " --scenarios bogus");
    EXPECT_NE(code, 0);
    EXPECT_NE(out.find("unknown scenario"), std::string::npos);
    EXPECT_NE(out.find("fleet_sweep"), std::string::npos);
}

TEST(AwperfTool, JsonArtifactMatchesTheLibraryRendering)
{
    const std::string path = tmpPath("awperf_schema_test.json");
    const auto [code, out] = runCommand(
        std::string(AWPERF_BIN) +
        " --scenarios governors_axis --repeat 1 --quiet --json " +
        path);
    ASSERT_EQ(code, 0) << out;
    const std::string json = readFile(path);
    std::remove(path.c_str());

    // Schema identity and scenario content.
    EXPECT_NE(json.find("\"schema\": \"aw-perf/1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"name\": \"governors_axis\""),
              std::string::npos);

    // The tool's bytes are the library's bytes, wall clock aside:
    // strip the timing-dependent fields and compare the rest
    // against a library measurement of the same scenario.
    const auto *s = exp::findPerfScenario("governors_axis");
    ASSERT_NE(s, nullptr);
    const auto m = exp::measurePerfScenario(*s, 1);
    const std::string expected = exp::perfToJson({m});
    auto stripTiming = [](std::string text) {
        for (const char *key : {"\"wall_s\"", "\"sim_per_wall\"",
                                "\"events_per_s\"",
                                "\"requests_per_s\""}) {
            auto pos = text.find(key);
            while (pos != std::string::npos) {
                const auto comma = text.find(',', pos);
                text.erase(pos, comma - pos + 1);
                pos = text.find(key, pos);
            }
        }
        return text;
    };
    EXPECT_EQ(stripTiming(json), stripTiming(expected));
}

// ------------------------------------------- check_perf.py (gate)

TEST(CheckPerfGate, AcceptsItsOwnHarnessOutput)
{
    if (!havePython3())
        GTEST_SKIP() << "python3 not available";
    const std::string path = tmpPath("awperf_gate_self.json");
    const auto gen = runCommand(
        std::string(AWPERF_BIN) +
        " --scenarios governors_axis --repeat 1 --quiet --json " +
        path);
    ASSERT_EQ(gen.first, 0) << gen.second;

    // A document always passes against itself (ratio 1.0).
    const auto [code, out] =
        runCommand("python3 " + std::string(AW_CHECK_PERF_PY) +
                   " " + path + " " + path);
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("PASS"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CheckPerfGate, RejectsARegressionAndSchemaDrift)
{
    if (!havePython3())
        GTEST_SKIP() << "python3 not available";
    const std::string cur = tmpPath("awperf_gate_cur.json");
    const std::string base = tmpPath("awperf_gate_base.json");

    exp::PerfMeasurement m;
    m.name = "fleet_sweep";
    m.repeat = 1;
    m.totals.simSeconds = 10.0;
    m.totals.events = 1000000;
    m.totals.requests = 100000;

    m.wallSeconds = 1.0; // baseline: 1M events/s
    std::ofstream(base) << exp::perfToJson({m});
    m.wallSeconds = 3.0; // current: 3x slower -- must trip the gate
    std::ofstream(cur) << exp::perfToJson({m});

    const auto regress =
        runCommand("python3 " + std::string(AW_CHECK_PERF_PY) +
                   " " + cur + " " + base);
    EXPECT_NE(regress.first, 0);
    EXPECT_NE(regress.second.find("regressed"), std::string::npos);

    // Within the 2x allowance the same pair passes.
    m.wallSeconds = 1.8;
    std::ofstream(cur) << exp::perfToJson({m});
    const auto ok =
        runCommand("python3 " + std::string(AW_CHECK_PERF_PY) +
                   " " + cur + " " + base);
    EXPECT_EQ(ok.first, 0) << ok.second;

    // Schema drift (wrong schema id) is a hard failure.
    std::ofstream(cur) << "{\"schema\": \"bogus/9\", "
                          "\"scenarios\": []}";
    const auto drift =
        runCommand("python3 " + std::string(AW_CHECK_PERF_PY) +
                   " " + cur + " " + base);
    EXPECT_NE(drift.first, 0);
    EXPECT_NE(drift.second.find("schema"), std::string::npos);

    std::remove(cur.c_str());
    std::remove(base.c_str());
}

TEST(CheckPerfGate, NanAndInfiniteValuesAreSchemaErrors)
{
    // Python's json.load parses NaN/Infinity literals, and every
    // comparison with NaN is False -- so a NaN metric used to sail
    // through the gate as a silent pass. It must be a schema error.
    if (!havePython3())
        GTEST_SKIP() << "python3 not available";
    const std::string cur = tmpPath("awperf_gate_nan_cur.json");
    const std::string base = tmpPath("awperf_gate_nan_base.json");

    exp::PerfMeasurement m;
    m.name = "fleet_sweep";
    m.repeat = 1;
    m.wallSeconds = 1.0;
    m.totals.simSeconds = 10.0;
    m.totals.events = 1000000;
    m.totals.requests = 100000;
    std::ofstream(base) << exp::perfToJson({m});

    auto entry = [](const char *events_per_s) {
        return std::string(
                   "{\"schema\": \"aw-perf/1\", \"scenarios\": "
                   "[{\"name\": \"fleet_sweep\", \"repeat\": 1, "
                   "\"wall_s\": 1.0, \"sim_s\": 10.0, "
                   "\"events\": 1000000, \"requests\": 100000, "
                   "\"sim_per_wall\": 10.0, \"events_per_s\": ") +
               events_per_s +
               ", \"requests_per_s\": 100000.0}]}";
    };
    for (const char *bad : {"NaN", "Infinity", "-Infinity"}) {
        std::ofstream(cur) << entry(bad);
        const auto [code, out] =
            runCommand("python3 " + std::string(AW_CHECK_PERF_PY) +
                       " " + cur + " " + base);
        EXPECT_NE(code, 0) << bad;
        EXPECT_NE(out.find("finite"), std::string::npos)
            << bad << ": " << out;
    }
    // A negative metric is equally malformed.
    std::ofstream(cur) << entry("-5.0");
    const auto neg =
        runCommand("python3 " + std::string(AW_CHECK_PERF_PY) +
                   " " + cur + " " + base);
    EXPECT_NE(neg.first, 0);
    EXPECT_NE(neg.second.find("negative"), std::string::npos)
        << neg.second;

    std::remove(cur.c_str());
    std::remove(base.c_str());
}

TEST(CheckPerfGate, ZeroEventsBaselineFailsInsteadOfPassing)
{
    // A broken (zero-events) baseline entry makes every ratio 0,
    // which used to read as "no regression" forever -- and divided
    // by zero on the way. It must fail loudly and name the cure.
    if (!havePython3())
        GTEST_SKIP() << "python3 not available";
    const std::string cur = tmpPath("awperf_gate_zero_cur.json");
    const std::string base = tmpPath("awperf_gate_zero_base.json");

    exp::PerfMeasurement m;
    m.name = "fleet_sweep";
    m.repeat = 1;
    m.wallSeconds = 1.0;
    m.totals.simSeconds = 10.0;
    m.totals.events = 1000000;
    m.totals.requests = 100000;
    std::ofstream(cur) << exp::perfToJson({m});
    m.totals.events = 0; // baseline measured nothing
    std::ofstream(base) << exp::perfToJson({m});

    const auto [code, out] =
        runCommand("python3 " + std::string(AW_CHECK_PERF_PY) +
                   " " + cur + " " + base);
    EXPECT_NE(code, 0);
    EXPECT_NE(out.find("non-positive baseline"), std::string::npos)
        << out;
    EXPECT_NE(out.find("regenerate the baseline"),
              std::string::npos);

    std::remove(cur.c_str());
    std::remove(base.c_str());
}

TEST(CheckPerfGate, NewScenarioIsReportedButNotGated)
{
    // The rollout path for a new scenario (how fleet_sweep_timeline
    // itself landed): present in the current document, absent from
    // the committed baseline -- the gate reports it as new and
    // passes, so adding a scenario and refreshing the baseline can
    // happen in the same PR without a chicken-and-egg failure.
    if (!havePython3())
        GTEST_SKIP() << "python3 not available";
    const std::string cur = tmpPath("awperf_gate_new_cur.json");
    const std::string base = tmpPath("awperf_gate_new_base.json");

    exp::PerfMeasurement old_one;
    old_one.name = "fleet_sweep";
    old_one.repeat = 1;
    old_one.wallSeconds = 1.0;
    old_one.totals.simSeconds = 10.0;
    old_one.totals.events = 1000000;
    old_one.totals.requests = 100000;
    exp::PerfMeasurement fresh = old_one;
    fresh.name = "fleet_sweep_timeline";

    std::ofstream(base) << exp::perfToJson({old_one});
    std::ofstream(cur) << exp::perfToJson({old_one, fresh});

    const auto [code, out] =
        runCommand("python3 " + std::string(AW_CHECK_PERF_PY) +
                   " " + cur + " " + base);
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("new (not gated)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("fleet_sweep_timeline"), std::string::npos);

    std::remove(cur.c_str());
    std::remove(base.c_str());
}

} // namespace
