/**
 * @file
 * Unit tests for the core unit inventory: the floorplan aggregates
 * the AgileWatts power/area model is built on.
 */

#include <gtest/gtest.h>

#include "uarch/core_units.hh"

namespace {

using namespace aw::uarch;

TEST(UnitInventory, UfpgDomainIsSeventyPercent)
{
    const auto inv = UnitInventory::skylakeServer();
    EXPECT_NEAR(inv.areaFraction(PowerDomain::Ufpg), 0.70, 1e-9);
    EXPECT_NEAR(inv.leakageFraction(PowerDomain::Ufpg), 0.70, 1e-9);
}

TEST(UnitInventory, CacheDomainIsRoughlyThirtyPercent)
{
    const auto inv = UnitInventory::skylakeServer();
    EXPECT_NEAR(inv.areaFraction(PowerDomain::CacheSleep), 0.30,
                0.01);
}

TEST(UnitInventory, TotalsSumToOne)
{
    const auto inv = UnitInventory::skylakeServer();
    EXPECT_NEAR(inv.totalAreaFraction(), 1.0, 0.005);
    EXPECT_NEAR(inv.totalLeakageFraction(), 1.0, 0.005);
}

TEST(UnitInventory, UfpgToAvxRatioIsFourPointFive)
{
    // The Sec 5.3 in-rush sizing: the UFPG domain has ~4.5x the
    // area of the AVX units.
    const auto inv = UnitInventory::skylakeServer();
    EXPECT_NEAR(inv.ufpgToAvxAreaRatio(), 4.5, 0.1);
}

TEST(UnitInventory, AvxUnitsAreInUfpgDomain)
{
    const auto inv = UnitInventory::skylakeServer();
    for (const auto &u : inv.units()) {
        if (u.isAvx)
            EXPECT_EQ(u.domain, PowerDomain::Ufpg) << u.name;
    }
}

TEST(UnitInventory, EveryUfpgUnitHasARetentionTechnique)
{
    const auto inv = UnitInventory::skylakeServer();
    for (const auto &u : inv.units()) {
        if (u.domain == PowerDomain::Ufpg) {
            EXPECT_TRUE(u.retention.has_value()) << u.name;
        } else {
            EXPECT_FALSE(u.retention.has_value()) << u.name;
        }
    }
}

TEST(UnitInventory, MicrocodeUsesUngatedSram)
{
    const auto inv = UnitInventory::skylakeServer();
    const auto &ucode = inv.unit("microcode");
    ASSERT_TRUE(ucode.retention.has_value());
    EXPECT_EQ(*ucode.retention,
              aw::power::RetentionTechnique::UngatedSram);
}

TEST(UnitInventory, DistributedContextUsesSrpg)
{
    const auto inv = UnitInventory::skylakeServer();
    const auto &lsu = inv.unit("load_store");
    ASSERT_TRUE(lsu.retention.has_value());
    EXPECT_EQ(*lsu.retention,
              aw::power::RetentionTechnique::Srpg);
}

TEST(UnitInventory, AlwaysOnSnoopDetectorIsTiny)
{
    const auto inv = UnitInventory::skylakeServer();
    EXPECT_LT(inv.areaFraction(PowerDomain::AlwaysOn), 0.01);
    EXPECT_GT(inv.areaFraction(PowerDomain::AlwaysOn), 0.0);
}

TEST(UnitInventoryDeathTest, UnknownUnitPanics)
{
    const auto inv = UnitInventory::skylakeServer();
    EXPECT_DEATH(inv.unit("flux_capacitor"), "no unit");
}

TEST(UnitInventoryDeathTest, EmptyInventoryPanics)
{
    EXPECT_DEATH(UnitInventory({}), "empty");
}

TEST(UnitInventory, CustomInventory)
{
    std::vector<CoreUnit> units;
    units.push_back(CoreUnit{"a", PowerDomain::Ufpg, 0.6, 0.5,
                             aw::power::RetentionTechnique::Srpg,
                             false});
    units.push_back(CoreUnit{"b", PowerDomain::CacheSleep, 0.4, 0.5,
                             std::nullopt, false});
    const UnitInventory inv(std::move(units));
    EXPECT_DOUBLE_EQ(inv.areaFraction(PowerDomain::Ufpg), 0.6);
    EXPECT_DOUBLE_EQ(inv.leakageFraction(PowerDomain::CacheSleep),
                     0.5);
}

} // namespace
