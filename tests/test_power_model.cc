/**
 * @file
 * Unit tests for the analytical power model (Eqs. 1-4) and the
 * latency-degradation model.
 */

#include <gtest/gtest.h>

#include "analysis/power_model.hh"
#include "core/aw_core.hh"

namespace {

using namespace aw;
using namespace aw::analysis;
using namespace aw::cstate;

class PowerModelTest : public ::testing::Test
{
  protected:
    PowerModelTest()
        : model(server::StatePowers::fromModels(aw_model.ppa()))
    {
    }

    static ResidencySnapshot
    snapshot(double c0, double c1, double c1e, double c6)
    {
        ResidencySnapshot r;
        r.share[index(CStateId::C0)] = c0;
        r.share[index(CStateId::C1)] = c1;
        r.share[index(CStateId::C1E)] = c1e;
        r.share[index(CStateId::C6)] = c6;
        r.window = sim::fromSec(1.0);
        return r;
    }

    core::AwCoreModel aw_model;
    CStatePowerModel model;
};

TEST_F(PowerModelTest, Eq2HandComputed)
{
    // 50% C0 (4 W) + 50% C1 (1.44 W) = 2.72 W.
    const auto r = snapshot(0.5, 0.5, 0.0, 0.0);
    EXPECT_NEAR(model.baselineAvgPower(r), 2.72, 1e-9);
}

TEST_F(PowerModelTest, Eq2AllStates)
{
    const auto r = snapshot(0.25, 0.25, 0.25, 0.25);
    EXPECT_NEAR(model.baselineAvgPower(r),
                0.25 * (4.0 + 1.44 + 0.88 + 0.1), 1e-9);
}

TEST_F(PowerModelTest, MotivationalUpperBounds)
{
    // Sec 2: search at 50% load -> 23%; search at 25% -> 41%;
    // key-value at 20% -> 55%.
    const auto search50 = snapshot(0.50, 0.45, 0.0, 0.05);
    const auto search25 = snapshot(0.25, 0.55, 0.0, 0.20);
    const auto kv20 = snapshot(0.20, 0.80, 0.0, 0.0);
    EXPECT_NEAR(model.idealDeepStateSavings(search50) * 100, 23.0,
                1.0);
    EXPECT_NEAR(model.idealDeepStateSavings(search25) * 100, 41.0,
                1.0);
    EXPECT_NEAR(model.idealDeepStateSavings(kv20) * 100, 55.0, 1.0);
}

TEST_F(PowerModelTest, RemapMovesC1FamilyOntoAwStates)
{
    const auto r = snapshot(0.3, 0.5, 0.2, 0.0);
    const auto m = model.remapForAw(r, 0.0, 0.0);
    EXPECT_DOUBLE_EQ(m.shareOf(CStateId::C1), 0.0);
    EXPECT_DOUBLE_EQ(m.shareOf(CStateId::C1E), 0.0);
    EXPECT_DOUBLE_EQ(m.shareOf(CStateId::C6A), 0.5);
    EXPECT_DOUBLE_EQ(m.shareOf(CStateId::C6AE), 0.2);
    EXPECT_NEAR(m.totalShare(), 1.0, 1e-12);
}

TEST_F(PowerModelTest, RemapConservesTotalShare)
{
    const auto r = snapshot(0.4, 0.4, 0.1, 0.1);
    const auto m = model.remapForAw(r, 0.5, 10000.0);
    EXPECT_NEAR(m.totalShare(), 1.0, 1e-9);
}

TEST_F(PowerModelTest, FrequencyDegradationInflatesC0)
{
    const auto r = snapshot(0.5, 0.5, 0.0, 0.0);
    const auto m = model.remapForAw(r, 1.0, 0.0);
    // C0 grows by 0.5 * 1% * 1.0 = 0.005.
    EXPECT_NEAR(m.shareOf(CStateId::C0), 0.505, 1e-9);
    EXPECT_NEAR(m.shareOf(CStateId::C6A), 0.495, 1e-9);
}

TEST_F(PowerModelTest, TransitionOverheadInflatesC0)
{
    const auto r = snapshot(0.5, 0.5, 0.0, 0.0);
    // 100k transitions/s * 100 ns = 1% of time.
    const auto m = model.remapForAw(r, 0.0, 100e3);
    EXPECT_NEAR(m.shareOf(CStateId::C0), 0.51, 1e-9);
}

TEST_F(PowerModelTest, AwPowerIsLowerThanBaseline)
{
    const auto r = snapshot(0.3, 0.6, 0.1, 0.0);
    const auto m = model.remapForAw(r, 0.5, 1000.0);
    EXPECT_LT(model.awAvgPower(m), model.baselineAvgPower(r));
}

TEST_F(PowerModelTest, Eq4SavingsHandComputed)
{
    const auto r = snapshot(0.2, 0.8, 0.0, 0.0);
    const double measured = model.baselineAvgPower(r); // 1.952 W
    const double expected =
        0.8 *
        (1.44 - model.powers().idle[index(CStateId::C6A)]) /
        measured;
    EXPECT_NEAR(model.awSavingsVsMeasured(r, measured), expected,
                1e-9);
    // ~47% for this residency mix.
    EXPECT_NEAR(model.awSavingsVsMeasured(r, measured), 0.47, 0.02);
}

TEST_F(PowerModelTest, Eq4UsesMeasuredDenominator)
{
    const auto r = snapshot(0.2, 0.8, 0.0, 0.0);
    // Doubling the measured power halves the relative savings.
    const double s1 = model.awSavingsVsMeasured(r, 2.0);
    const double s2 = model.awSavingsVsMeasured(r, 4.0);
    EXPECT_NEAR(s1, 2.0 * s2, 1e-9);
}

TEST_F(PowerModelTest, LatencyDegradationWorstVsExpected)
{
    const auto d = awLatencyDegradation(
        10.0 /*avg lat us*/, 7.4 /*avg svc us*/, 117.0 /*net us*/,
        0.4 /*scalability*/, 0.3 /*transitions per request*/);
    // Worst assumes a full 0.1 us per query; expected only 0.03 us.
    EXPECT_GT(d.worstCaseServerFrac, d.expectedServerFrac);
    // End-to-end is diluted by the network constant.
    EXPECT_LT(d.worstCaseE2eFrac, d.worstCaseServerFrac / 5.0);
    // All under ~1.5% like Fig 8c.
    EXPECT_LT(d.worstCaseServerFrac, 0.015);
}

TEST_F(PowerModelTest, LatencyDegradationHandNumbers)
{
    const auto d =
        awLatencyDegradation(10.0, 10.0, 117.0, 1.0, 1.0);
    // added_worst = 0.1 us + 10 us * 1% = 0.2 us -> 2% of 10 us.
    EXPECT_NEAR(d.worstCaseServerFrac, 0.02, 1e-9);
    EXPECT_NEAR(d.expectedServerFrac, 0.02, 1e-9);
    EXPECT_NEAR(d.worstCaseE2eFrac, 0.2 / 127.0, 1e-9);
}

TEST_F(PowerModelTest, ZeroLatencyGivesZeroDegradation)
{
    const auto d = awLatencyDegradation(0.0, 5.0, 117.0, 0.5, 0.5);
    EXPECT_DOUBLE_EQ(d.worstCaseServerFrac, 0.0);
}

TEST_F(PowerModelTest, StatePowersComeFromPpa)
{
    const auto &p = model.powers();
    EXPECT_NEAR(p.idle[index(CStateId::C6A)], 0.30, 0.01);
    EXPECT_NEAR(p.idle[index(CStateId::C6AE)], 0.235, 0.01);
    EXPECT_DOUBLE_EQ(p.idle[index(CStateId::C1)], 1.44);
    EXPECT_DOUBLE_EQ(p.activeP1, 4.0);
}

TEST_F(PowerModelTest, RemapCannotStealMoreThanIdleShare)
{
    // Extreme transition rate: the steal saturates at the idle
    // share and C0 tops out at 1.0.
    const auto r = snapshot(0.9, 0.1, 0.0, 0.0);
    const auto m = model.remapForAw(r, 1.0, 10e6);
    EXPECT_NEAR(m.shareOf(CStateId::C0), 1.0, 1e-9);
    EXPECT_NEAR(m.totalShare(), 1.0, 1e-9);
}

} // namespace
